// Package positbench reproduces "On the Compressibility of Floating-Point
// Data in Posit and IEEE-754 Representation" (Rodriguez & Burtscher, SC
// Workshops '25): a study of how well general-purpose lossless compressors
// and LC-synthesized pipelines compress scientific float32 data when it is
// re-encoded as posit<32,3>.
//
// The library lives under internal/: the posit codec and arithmetic
// (internal/posit), the five compressor classes (internal/compress/...),
// the LC pipeline-synthesis framework (internal/lc), the synthetic
// SDRBench substitutes (internal/sdrbench), and the study engine
// (internal/core). Executables are under cmd/ and runnable examples under
// examples/. The benchmarks in bench_test.go regenerate every table and
// figure of the paper; see DESIGN.md and EXPERIMENTS.md.
package positbench
