module positbench

go 1.22
