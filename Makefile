# Build, test, and robustness gates for positbench.
#
#   make check       vet + build + unit tests (the tier-1 gate)
#   make race        unit tests under the race detector
#   make fuzz-smoke  10 s of fuzzing per fuzz target (seeded with
#                    known-bad frames; catches decode-path panics fast)
#   make test-parallel  the parallel-engine test layer, race-enabled and
#                    run twice (catches order-dependent scheduling bugs)
#   make bench       serial-vs-parallel throughput; writes BENCH_compress.json
#   make ci          everything above, in order

GO ?= go
FUZZTIME ?= 10s
BENCH_WORKERS ?= 4

.PHONY: all check vet build test race test-parallel bench fuzz-smoke ci

all: check

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency layer, twice under the race detector: the second run sees
# different goroutine schedules, which is what shakes out ordering bugs.
test-parallel:
	$(GO) test -race -count=2 -run 'Parallel|Stream|Equivalence' ./internal/compress/...

# One pass of each throughput benchmark, recorded to BENCH_compress.json so
# serial-vs-parallel speedups are diffable across commits.
bench:
	$(GO) test ./internal/compress -run '^$$' -bench '^BenchmarkStream' -benchtime 2x \
		-args -bench-json=$(CURDIR)/BENCH_compress.json -bench-workers=$(BENCH_WORKERS)

# Run every Fuzz* target in the module for FUZZTIME each. `go test -fuzz`
# only accepts one target per invocation, so targets are discovered with
# -list and run one by one.
fuzz-smoke:
	@set -e; for pkg in $$($(GO) list ./...); do \
		targets=$$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); \
		for t in $$targets; do \
			echo "fuzz $$pkg $$t"; \
			$(GO) test -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) $$pkg; \
		done; \
	done

ci: check race test-parallel fuzz-smoke
