# Build, test, and robustness gates for positbench.
#
#   make check       vet + build + unit tests (the tier-1 gate)
#   make race        unit tests under the race detector
#   make fuzz-smoke  10 s of fuzzing per fuzz target (seeded with
#                    known-bad frames; catches decode-path panics fast)
#   make test-parallel  the parallel-engine test layer, race-enabled and
#                    run twice (catches order-dependent scheduling bugs)
#   make test-server the positd HTTP layer, race-enabled and run twice
#   make smoke-server  boot a real positd, curl a compress/decompress
#                    roundtrip through it, diff byte-identity
#   make bench       serial-vs-parallel throughput; writes BENCH_compress.json
#   make ci          everything above, in order

GO ?= go
FUZZTIME ?= 10s
BENCH_WORKERS ?= 4

.PHONY: all check vet build test race test-parallel test-server smoke-server bench fuzz-smoke ci

all: check

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency layer, twice under the race detector: the second run sees
# different goroutine schedules, which is what shakes out ordering bugs.
test-parallel:
	$(GO) test -race -count=2 -run 'Parallel|Stream|Equivalence' ./internal/compress/...

# The HTTP service layer, twice under the race detector: handlers stream
# through the parallel engine, so they inherit its scheduling sensitivity.
test-server:
	$(GO) test -race -count=2 ./internal/server/... ./cmd/positd/...

# End-to-end smoke over a real process and real sockets: boot positd on a
# random port, push a body through compress then decompress with curl, and
# require byte identity. The -addr-file handshake avoids port races.
smoke-server:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/positd ./cmd/positd; \
	$$tmp/positd -addr 127.0.0.1:0 -addr-file $$tmp/addr >$$tmp/positd.log 2>&1 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "positd never wrote its address"; cat $$tmp/positd.log; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	curl -sSf "http://$$addr/healthz" >/dev/null; \
	head -c 262144 /dev/urandom >$$tmp/in.bin; \
	curl -sSf --data-binary @$$tmp/in.bin "http://$$addr/v1/compress/zstd" -o $$tmp/out.z; \
	curl -sSf --data-binary @$$tmp/out.z "http://$$addr/v1/decompress" -o $$tmp/out.bin; \
	cmp $$tmp/in.bin $$tmp/out.bin; \
	curl -sSf "http://$$addr/metrics" | grep -q '"codecs"'; \
	kill -TERM $$pid; wait $$pid; \
	echo "smoke-server: roundtrip byte-identical, drain clean"

# One pass of each throughput benchmark, recorded to BENCH_compress.json so
# serial-vs-parallel speedups are diffable across commits.
bench:
	$(GO) test ./internal/compress -run '^$$' -bench '^BenchmarkStream' -benchtime 2x \
		-args -bench-json=$(CURDIR)/BENCH_compress.json -bench-workers=$(BENCH_WORKERS)

# Run every Fuzz* target in the module for FUZZTIME each. `go test -fuzz`
# only accepts one target per invocation, so targets are discovered with
# -list and run one by one.
fuzz-smoke:
	@set -e; for pkg in $$($(GO) list ./...); do \
		targets=$$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); \
		for t in $$targets; do \
			echo "fuzz $$pkg $$t"; \
			$(GO) test -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) $$pkg; \
		done; \
	done

ci: check race test-parallel test-server smoke-server fuzz-smoke
