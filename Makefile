# Build, test, and robustness gates for positbench.
#
#   make check       vet + build + unit tests (the tier-1 gate)
#   make race        unit tests under the race detector
#   make fuzz-smoke  10 s of fuzzing per fuzz target (seeded with
#                    known-bad frames; catches decode-path panics fast)
#   make ci          everything above, in order

GO ?= go
FUZZTIME ?= 10s

.PHONY: all check vet build test race fuzz-smoke ci

all: check

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every Fuzz* target in the module for FUZZTIME each. `go test -fuzz`
# only accepts one target per invocation, so targets are discovered with
# -list and run one by one.
fuzz-smoke:
	@set -e; for pkg in $$($(GO) list ./...); do \
		targets=$$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); \
		for t in $$targets; do \
			echo "fuzz $$pkg $$t"; \
			$(GO) test -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) $$pkg; \
		done; \
	done

ci: check race fuzz-smoke
