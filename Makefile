# Build, test, and robustness gates for positbench.
#
#   make check       vet + build + unit tests (the tier-1 gate)
#   make race        unit tests under the race detector
#   make fuzz-smoke  10 s of fuzzing per fuzz target (seeded with
#                    known-bad frames; catches decode-path panics fast)
#   make test-parallel  the parallel-engine test layer, race-enabled and
#                    run twice (catches order-dependent scheduling bugs)
#   make test-engine the work-stealing scheduler and chunk engine package,
#                    race-enabled and run twice, plus the bzip2c stage-
#                    pipeline byte-identity pin: steal races, park/unpark,
#                    and close-drain ordering only vary across schedules
#   make test-predict  the predictive codec family (internal/predict and
#                    positpack v2), race-enabled and run twice
#   make test-server the positd HTTP layer, race-enabled and run twice
#   make test-advisor  the adaptive codec selection layer (internal/advisor
#                    and cmd/positadvise), race-enabled and run twice: the
#                    decision cache's single-flight coalescing is goroutine
#                    choreography, so schedules are the thing to vary
#   make test-gateway  the resilience + gateway layers, race-enabled and
#                    run twice (includes the in-process chaos soak)
#   make test-range  the random-access wall: container trailer + ReaderAt,
#                    the content-addressed chunk cache, and the positd
#                    object/range handlers, race-enabled and run twice
#                    (single-flight fills and cache eviction are goroutine
#                    choreography, so schedules are the thing to vary)
#   make smoke-server  boot a real positd, curl a compress/decompress
#                    roundtrip through it, diff byte-identity
#   make soak-smoke  ~5 s positload run against a race-built positd:
#                    zero 5xx / transport errors / roundtrip mismatches,
#                    and the engine gauges drained afterwards
#   make soak-auto   positload with the -auto arm against a race-built
#                    positd: advisor decisions flow, the cache gets hits,
#                    and auto's p50 stays within one latency-histogram
#                    bucket (2x) of direct compress — the coarse overhead
#                    gate the log2-bucketed histogram can support
#   make soak-gateway  chaos soak over real processes: positload through a
#                    race-built positgw over 3 positd backends, one backend
#                    kill -9'd and restarted mid-run; requires zero client
#                    failures and exact status-class reconciliation between
#                    the positload report and the gateway's /metrics
#   make soak-range  range-read chaos soak: an indexed object replicated to
#                    3 positd backends behind a race-built positgw, a burst
#                    of byte-compared Range reads through the front, the
#                    owning backend kill -9'd mid-burst and later restored;
#                    requires zero failed or byte-wrong reads and chunk-cache
#                    hits on the backends afterwards
#   make bench       serial-vs-parallel throughput; writes BENCH_compress.json
#   make bench-smoke tiny-input benchmark pass under -race: catches data
#                    races and crashes on the hot paths without waiting for
#                    real measurements
#   make bench-diff  compare BENCH_NEW against BENCH_OLD with cmd/benchdiff;
#                    exits non-zero past BENCH_THRESHOLD percent regression
#   make bench-scaling  per-core scaling gate: sweep workers 1,2,4,8 per
#                    codec and direction, fail if parallel falls below
#                    serial anywhere, and diff scaling efficiency against
#                    the checked-in baseline when on same-core hardware
#   make ci          everything above, in order

GO ?= go
FUZZTIME ?= 10s
BENCH_WORKERS ?= 4
# Default baseline: HEAD-before-PR7 measured on the same hardware and day as
# the current report. The older results/BENCH_pre_pr4.json is kept for
# history, but its absolute numbers came from a faster machine state and
# cross-day diffs against it measure the environment, not the code.
BENCH_OLD ?= results/BENCH_pre_pr7.json
BENCH_NEW ?= BENCH_compress.json
BENCH_THRESHOLD ?= 10
# Scaling gate knobs: the checked-in baseline only gates efficiency when the
# measuring machine has the same core count it was recorded on; the
# parallel->=serial invariant gates everywhere. 1 MiB keeps the sweep fast —
# the gate compares ratios, not absolute MB/s.
SCALING_BASE ?= results/BENCH_scaling_base.json
SCALING_THRESHOLD ?= 10
SCALING_BYTES ?= 1048576

.PHONY: all check vet build test race test-parallel test-engine test-predict test-server test-advisor test-gateway test-range smoke-server soak-smoke soak-auto soak-gateway soak-range bench bench-smoke bench-diff bench-scaling fuzz-smoke ci

SOAK_DURATION ?= 5s
SOAK_QPS ?= 80
GW_SOAK_DURATION ?= 6s
GW_SOAK_QPS ?= 40

all: check

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race instrumentation is a 10-20x slowdown and the study integration test
# already takes ~40 s uninstrumented, so the default 10 m per-package test
# timeout is not enough on small runners.
race:
	$(GO) test -race -timeout 30m ./...

# The concurrency layer, twice under the race detector: the second run sees
# different goroutine schedules, which is what shakes out ordering bugs.
test-parallel:
	$(GO) test -race -count=2 -run 'Parallel|Stream|Equivalence' ./internal/compress/...

# The chunk engine package end to end — scheduler, deques, steal order,
# serial-fallback policy, alloc gates — plus the bzip2c stage-pipeline
# byte-identity pin. Race-enabled and run twice: everything here is
# goroutine choreography, so varied schedules are the test.
test-engine:
	$(GO) test -race -count=2 ./internal/compress
	$(GO) test -race -count=2 -run 'PipelineByteIdentity' ./internal/compress/bzip2c

# The predictive codec family, twice under the race detector: the codecs
# share pooled predictor state across the engine's worker goroutines, so a
# second run with different schedules is the cheapest ordering fuzz for the
# pool discipline (and the golden/property wall reruns for free).
test-predict:
	$(GO) test -race -count=2 ./internal/predict/... ./internal/positpack/...

# The HTTP service layer, twice under the race detector: handlers stream
# through the parallel engine, so they inherit its scheduling sensitivity.
test-server:
	$(GO) test -race -count=2 ./internal/server/... ./cmd/positd/...

# The adaptive-selection layer, twice under the race detector: concurrent
# auto requests race for the decision cache's single-flight leadership, so
# a second run with different schedules is the cheapest ordering fuzz.
test-advisor:
	$(GO) test -race -count=2 ./internal/advisor/... ./cmd/positadvise/...

# The random-access layer, twice under the race detector: the trailer
# parser and ReaderAt are pure code, but the chunk cache's single-flight
# fills and LRU eviction race 32 readers per test, and the positd range
# handlers stream through the shared cache — varied schedules are the test.
test-range:
	$(GO) test -race -count=2 ./internal/container/... ./internal/chunkcache/...
	$(GO) test -race -count=2 -run 'Range|Object|Read|Trailer|Compress' ./internal/server/...

# The resilience primitives and the gateway, twice under the race detector:
# retries, hedging, breakers, and probing are all goroutine choreography,
# so a second run with different schedules is the cheapest ordering fuzz.
test-gateway:
	$(GO) test -race -count=2 ./internal/resilience/... ./internal/gateway/...

# End-to-end smoke over a real process and real sockets: boot positd on a
# random port, push a body through compress then decompress with curl, and
# require byte identity. The -addr-file handshake avoids port races.
smoke-server:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/positd ./cmd/positd; \
	$$tmp/positd -addr 127.0.0.1:0 -addr-file $$tmp/addr >$$tmp/positd.log 2>&1 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "positd never wrote its address"; cat $$tmp/positd.log; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	curl -sSf "http://$$addr/healthz" >/dev/null; \
	head -c 262144 /dev/urandom >$$tmp/in.bin; \
	curl -sSf --data-binary @$$tmp/in.bin "http://$$addr/v1/compress/zstd" -o $$tmp/out.z; \
	curl -sSf --data-binary @$$tmp/out.z "http://$$addr/v1/decompress" -o $$tmp/out.bin; \
	cmp $$tmp/in.bin $$tmp/out.bin; \
	curl -sSf "http://$$addr/metrics" | grep -q '"codecs"'; \
	kill -TERM $$pid; wait $$pid; \
	echo "smoke-server: roundtrip byte-identical, drain clean"

# Soak smoke: a short open-loop positload burst against a positd built
# with the race detector. The run itself fails on any 5xx, transport
# error, or roundtrip mismatch (positload exits 1); afterwards the engine
# gauges must have drained back to zero and the daemon must stop clean.
soak-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -race -o $$tmp/positd ./cmd/positd; \
	$(GO) build -o $$tmp/positload ./cmd/positload; \
	$$tmp/positd -addr 127.0.0.1:0 -addr-file $$tmp/addr >$$tmp/positd.log 2>&1 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "positd never wrote its address"; cat $$tmp/positd.log; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	$$tmp/positload -addr-file $$tmp/addr -duration $(SOAK_DURATION) -qps $(SOAK_QPS) >$$tmp/report.json; \
	drained=0; for i in $$(seq 1 100); do \
		curl -sSf "http://$$addr/metrics" >$$tmp/metrics.json; \
		if grep -q '"queue_depth": 0' $$tmp/metrics.json && grep -q '"inflight": 0' $$tmp/metrics.json && grep -q '"workers_busy": 0' $$tmp/metrics.json; \
			then drained=1; break; fi; \
		sleep 0.1; \
	done; \
	[ $$drained = 1 ] || { echo "gauges never drained"; cat $$tmp/metrics.json; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	echo "soak-smoke: clean run, gauges drained"

# Auto-mode soak: positload mixes /v1/compress/auto into the workload (one
# auto roundtrip per 2 direct codec ops). The run must be clean, the
# advisor must have made decisions and — because the generator cycles a
# fixed body set — served repeats from its cache, and auto's p50 must stay
# within 2x of direct compress. 2x is one bucket of the log2 latency
# histogram: the smallest overhead gate that instrument can support, far
# above the <5% the advisor actually costs on cache hits, so a pass means
# "no pathological decision cost", not "free". positd is left unraced here
# (soak-smoke already races it): a raced server crawls through the first
# pass over the body set, which is exactly the all-miss phase, and the
# cache-hit assertion needs the workload to come back around.
soak-auto:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/positd ./cmd/positd; \
	$(GO) build -o $$tmp/positload ./cmd/positload; \
	$$tmp/positd -addr 127.0.0.1:0 -addr-file $$tmp/addr >$$tmp/positd.log 2>&1 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "positd never wrote its address"; cat $$tmp/positd.log; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	$$tmp/positload -addr-file $$tmp/addr -duration $(SOAK_DURATION) -grace 3s \
		-qps $(SOAK_QPS) -codecs zstd -auto 2 -values 4096 >$$tmp/report.json; \
	grep -q '"auto"' $$tmp/report.json || { echo "report has no auto section"; cat $$tmp/report.json; exit 1; }; \
	curl -sSf "http://$$addr/metrics" >$$tmp/metrics.json; \
	decisions=$$(grep -o '"decisions": *[0-9]*' $$tmp/metrics.json | grep -o '[0-9]*$$'); \
	hits=$$(grep -o '"cache_hits": *[0-9]*' $$tmp/metrics.json | grep -o '[0-9]*$$'); \
	[ "$${decisions:-0}" -gt 0 ] || { echo "advisor made no decisions"; exit 1; }; \
	[ "$${hits:-0}" -gt 0 ] || { echo "repeated bodies never hit the decision cache"; exit 1; }; \
	autop50=$$(grep -A4 '"auto"' $$tmp/report.json | grep -o '"p50_us": *[0-9]*' | head -1 | grep -o '[0-9]*$$'); \
	compp50=$$(grep -A4 '"compress"' $$tmp/report.json | grep -o '"p50_us": *[0-9]*' | head -1 | grep -o '[0-9]*$$'); \
	[ -n "$$autop50" ] && [ -n "$$compp50" ] || { echo "missing latency sections"; cat $$tmp/report.json; exit 1; }; \
	[ "$$autop50" -le $$((2 * compp50)) ] || { echo "auto p50 $${autop50}us > 2x compress p50 $${compp50}us"; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	echo "soak-auto: $$decisions decisions, $$hits cache hits, auto p50 $${autop50}us vs compress $${compp50}us"

# Chaos soak over real processes and real sockets: three positd backends
# behind a race-built positgw, positload driving a verified workload
# through the front while one backend is kill -9'd and later restarted on
# its original address. positload must exit 0 (no 5xx, no transport
# errors, no mismatches — the gateway masked the crash), and afterwards
# the generator's status_* counts must equal the gateway's responses_*
# counters exactly, with zero client aborts. positd is left unraced here
# (soak-smoke already races it) so one CPU can feed the raced gateway.
soak-gateway:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$gw $$b1 $$b2 $$b3 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -race -o $$tmp/positgw ./cmd/positgw; \
	$(GO) build -o $$tmp/positd ./cmd/positd; \
	$(GO) build -o $$tmp/positload ./cmd/positload; \
	for i in 1 2 3; do \
		$$tmp/positd -addr 127.0.0.1:0 -addr-file $$tmp/b$$i.addr >$$tmp/b$$i.log 2>&1 & eval b$$i=$$!; \
	done; \
	for i in 1 2 3; do \
		for j in $$(seq 1 100); do [ -s $$tmp/b$$i.addr ] && break; sleep 0.1; done; \
		[ -s $$tmp/b$$i.addr ] || { echo "backend $$i never wrote its address"; cat $$tmp/b$$i.log; exit 1; }; \
	done; \
	backends=$$(cat $$tmp/b1.addr),$$(cat $$tmp/b2.addr),$$(cat $$tmp/b3.addr); \
	$$tmp/positgw -addr 127.0.0.1:0 -addr-file $$tmp/gw.addr -backends $$backends \
		-breaker-threshold 2 -breaker-cooldown 100ms -probe-interval 50ms \
		-fail-threshold 2 -rise-threshold 1 -hedge-after 1s -quiet >$$tmp/gw.log 2>&1 & gw=$$!; \
	for j in $$(seq 1 100); do [ -s $$tmp/gw.addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/gw.addr ] || { echo "gateway never wrote its address"; cat $$tmp/gw.log; exit 1; }; \
	gwaddr=$$(cat $$tmp/gw.addr); \
	$$tmp/positload -addr-file $$tmp/gw.addr -duration $(GW_SOAK_DURATION) -grace 3s \
		-qps $(GW_SOAK_QPS) -codecs gzip -values 4096 >$$tmp/report.json & ld=$$!; \
	sleep 2; \
	victim=$$(cat $$tmp/b2.addr); \
	kill -9 $$b2; echo "soak-gateway: kill -9 backend 2 ($$victim)"; \
	sleep 1; \
	$$tmp/positd -addr $$victim -addr-file $$tmp/b2.addr >>$$tmp/b2.log 2>&1 & b2=$$!; \
	echo "soak-gateway: restarted backend 2 on $$victim"; \
	wait $$ld || { echo "positload FAILED"; cat $$tmp/report.json; tail -20 $$tmp/gw.log; exit 1; }; \
	curl -sSf "http://$$gwaddr/metrics" >$$tmp/gw-metrics.json; \
	for cls in 2xx 4xx 429 5xx; do \
		want=$$(grep -o "\"status_$$cls\": *[0-9]*" $$tmp/report.json | grep -o '[0-9]*$$'); \
		got=$$(grep -o "\"responses_$$cls\": *[0-9]*" $$tmp/gw-metrics.json | grep -o '[0-9]*$$'); \
		[ "$$got" = "$$want" ] || { echo "responses_$$cls: gateway counted $$got, positload received $$want"; exit 1; }; \
	done; \
	grep -q '"responses_499": 0' $$tmp/gw-metrics.json || { echo "gateway recorded client aborts"; exit 1; }; \
	grep -q '"aborted_mid_stream": 0' $$tmp/gw-metrics.json || { echo "gateway aborted relays mid-stream"; exit 1; }; \
	retries=$$(grep -o '"retries_total": *[0-9]*' $$tmp/gw-metrics.json | grep -o '[0-9]*$$'); \
	kill -TERM $$gw; wait $$gw; \
	kill -TERM $$b1 $$b2 $$b3; wait $$b1 $$b2 $$b3; \
	echo "soak-gateway: crash masked, counters reconciled exactly (retries=$$retries)"

# Range-read chaos soak over real processes: an indexed object is written
# with compressbench -zs, PUT to all three positd backends (the replication
# that makes failover meaningful), and a burst of Range reads runs through
# a race-built positgw with every response byte-compared against a slice of
# the original input. Mid-burst the owning backend — the one the gateway's
# object-key sharding sent every read to — is kill -9'd; the burst must
# keep returning byte-exact 206es off the surviving replicas. The victim is
# then restarted, the object restored to it (the store is in-memory), and
# the burst finishes. Gate: zero failed or byte-wrong reads end to end, and
# the backends' chunk caches must show hits (the burst repeats windows, so
# a cold cache on every read means the cache is broken, not unlucky).
soak-range:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$gw $$b1 $$b2 $$b3 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -race -o $$tmp/positgw ./cmd/positgw; \
	$(GO) build -o $$tmp/positd ./cmd/positd; \
	$(GO) build -o $$tmp/compressbench ./cmd/compressbench; \
	seq 1 200000 | head -c 1048576 >$$tmp/in.bin; \
	$$tmp/compressbench -zs gzip -chunk 65536 $$tmp/in.bin $$tmp/obj.pbs; \
	for i in 1 2 3; do \
		$$tmp/positd -addr 127.0.0.1:0 -addr-file $$tmp/b$$i.addr >$$tmp/b$$i.log 2>&1 & eval b$$i=$$!; \
	done; \
	for i in 1 2 3; do \
		for j in $$(seq 1 100); do [ -s $$tmp/b$$i.addr ] && break; sleep 0.1; done; \
		[ -s $$tmp/b$$i.addr ] || { echo "backend $$i never wrote its address"; cat $$tmp/b$$i.log; exit 1; }; \
		curl -sSf -X PUT --data-binary @$$tmp/obj.pbs "http://$$(cat $$tmp/b$$i.addr)/v1/objects/soak" >/dev/null; \
	done; \
	backends=$$(cat $$tmp/b1.addr),$$(cat $$tmp/b2.addr),$$(cat $$tmp/b3.addr); \
	$$tmp/positgw -addr 127.0.0.1:0 -addr-file $$tmp/gw.addr -backends $$backends \
		-breaker-threshold 2 -breaker-cooldown 100ms -probe-interval 50ms \
		-fail-threshold 2 -rise-threshold 1 -hedge-after 1s -quiet >$$tmp/gw.log 2>&1 & gw=$$!; \
	for j in $$(seq 1 100); do [ -s $$tmp/gw.addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/gw.addr ] || { echo "gateway never wrote its address"; cat $$tmp/gw.log; exit 1; }; \
	gwaddr=$$(cat $$tmp/gw.addr); \
	rr() { \
		a=$$1; n=$$2; \
		code=$$(curl -s -o $$tmp/got -w '%{http_code}' -H "Range: bytes=$$a-$$((a + n - 1))" "http://$$gwaddr/v1/read/soak") || { echo "range $$a:$$n: transport error"; return 1; }; \
		[ "$$code" = 206 ] || { echo "range $$a:$$n: status $$code, want 206"; return 1; }; \
		tail -c +$$((a + 1)) $$tmp/in.bin | head -c $$n >$$tmp/want; \
		cmp -s $$tmp/want $$tmp/got || { echo "range $$a:$$n: bytes differ"; return 1; }; \
	}; \
	windows="0:3000 131072:65536 524288:4096 700001:12345 1000000:48576"; \
	burst() { \
		for pass in $$(seq 1 $$1); do \
			for wdw in $$windows; do rr $${wdw%:*} $${wdw#*:} || return 1; done; \
		done; \
	}; \
	burst 3 || { echo "soak-range: warm burst failed"; tail -20 $$tmp/gw.log; exit 1; }; \
	victim=; \
	for i in 1 2 3; do \
		n=$$(curl -sSf "http://$$(cat $$tmp/b$$i.addr)/metrics" | grep -o '"range_reads_206": *[0-9]*' | grep -o '[0-9]*$$'); \
		[ "$${n:-0}" -gt 0 ] && { victim=$$i; break; }; \
	done; \
	[ -n "$$victim" ] || { echo "no backend served the range burst?"; exit 1; }; \
	case $$victim in 1) vpid=$$b1;; 2) vpid=$$b2;; 3) vpid=$$b3;; esac; \
	vaddr=$$(cat $$tmp/b$$victim.addr); \
	kill -9 $$vpid; echo "soak-range: kill -9 owning backend $$victim ($$vaddr) mid-burst"; \
	burst 2 || { echo "soak-range: burst failed after backend kill"; tail -20 $$tmp/gw.log; exit 1; }; \
	$$tmp/positd -addr $$vaddr -addr-file $$tmp/b$$victim.addr >>$$tmp/b$$victim.log 2>&1 & \
	case $$victim in 1) b1=$$!;; 2) b2=$$!;; 3) b3=$$!;; esac; \
	for j in $$(seq 1 100); do curl -sf "http://$$vaddr/healthz" >/dev/null && break; sleep 0.1; done; \
	curl -sSf -X PUT --data-binary @$$tmp/obj.pbs "http://$$vaddr/v1/objects/soak" >/dev/null; \
	echo "soak-range: backend $$victim restarted on $$vaddr, object restored"; \
	burst 1 || { echo "soak-range: burst failed after backend restart"; tail -20 $$tmp/gw.log; exit 1; }; \
	hits=0; \
	for i in 1 2 3; do \
		h=$$(curl -sSf "http://$$(cat $$tmp/b$$i.addr)/metrics" | grep -A3 '"chunk_cache"' | grep -o '"hits": *[0-9]*' | grep -o '[0-9]*$$'); \
		hits=$$((hits + $${h:-0})); \
	done; \
	[ "$$hits" -gt 0 ] || { echo "repeated windows never hit any backend chunk cache"; exit 1; }; \
	rreqs=$$(curl -sSf "http://$$gwaddr/metrics" | grep -o '"range_requests": *[0-9]*' | grep -o '[0-9]*$$'); \
	kill -TERM $$gw; wait $$gw; \
	kill -TERM $$b1 $$b2 $$b3; wait $$b1 $$b2 $$b3; \
	echo "soak-range: 30 range reads byte-exact across a backend crash ($$rreqs through the gateway, $$hits chunk-cache hits)"

# Throughput benchmarks, recorded to BENCH_compress.json so serial-vs-
# parallel speedups are diffable across commits. Three repetitions, best
# observed per metric recorded (see recordBench): on a shared runner a
# single CPU-steal spike otherwise poisons whichever codec it lands on and
# trips the bench-diff gate with a phantom regression.
bench:
	$(GO) test ./internal/compress -run '^$$' -bench '^BenchmarkStream' -benchtime 2x -count=3 \
		-args -bench-json=$(CURDIR)/BENCH_compress.json -bench-workers-sweep

# The benchmark harness itself, raced on a tiny input: one pass of every
# serial and parallel stream benchmark with 256 KiB instead of 4 MiB, so the
# race detector covers the pooled hot paths (buffer recycling, job reuse,
# read-ahead slots) in seconds. No JSON is written — the numbers from a race
# build mean nothing.
bench-smoke:
	$(GO) test -race ./internal/compress -run '^$$' -bench '^BenchmarkStream' -benchtime 1x \
		-args -bench-bytes=262144 -bench-workers=$(BENCH_WORKERS)

# Perf-regression gate: diff a fresh report against the recorded baseline.
bench-diff:
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_THRESHOLD) $(BENCH_OLD) $(BENCH_NEW)

# Per-core scaling gate: measure the workers 1,2,4,8 curve for every codec
# and direction, then fail if parallel falls below serial anywhere or if
# scaling efficiency regressed against the checked-in baseline (skipped
# automatically when the core counts differ — a laptop is not gated
# against the CI box).
bench-scaling:
	$(GO) run ./cmd/compressbench -workers-sweep -sweep-bytes $(SCALING_BYTES) -sweep-json $(CURDIR)/BENCH_scaling.json
	$(GO) run ./cmd/benchdiff -scaling -threshold $(SCALING_THRESHOLD) $(SCALING_BASE) $(CURDIR)/BENCH_scaling.json

# Run every Fuzz* target in the module for FUZZTIME each. `go test -fuzz`
# only accepts one target per invocation, so targets are discovered with
# -list and run one by one.
fuzz-smoke:
	@set -e; for pkg in $$($(GO) list ./...); do \
		targets=$$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); \
		for t in $$targets; do \
			echo "fuzz $$pkg $$t"; \
			$(GO) test -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) $$pkg; \
		done; \
	done

ci: check race test-parallel test-engine test-predict test-server test-advisor test-gateway test-range smoke-server soak-smoke soak-auto soak-gateway soak-range bench-smoke bench-scaling fuzz-smoke
