package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positbench/internal/posit"
)

func TestRunAllInputs(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-values", "1024"}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 28 { // 14 inputs x (.f32 + .posit)
		t.Fatalf("files: %d", len(entries))
	}
	// Files must be the same size in both encodings.
	f32, err := os.ReadFile(filepath.Join(dir, "vx.f32"))
	if err != nil {
		t.Fatal(err)
	}
	pos, err := os.ReadFile(filepath.Join(dir, "vx.f32.posit"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f32) != 4096 || len(pos) != 4096 {
		t.Fatalf("sizes %d %d", len(f32), len(pos))
	}
	// Posit file must be the real conversion of the float file.
	floats, err := posit.DecodeFloat32LE(f32)
	if err != nil {
		t.Fatal(err)
	}
	words, err := posit.DecodeWordsLE(pos)
	if err != nil {
		t.Fatal(err)
	}
	for i := range floats {
		if uint64(words[i]) != posit.Posit32e3.FromFloat32(floats[i]) {
			t.Fatalf("word %d mismatch", i)
		}
	}
	if !strings.Contains(out.String(), "QRAIN") {
		t.Error("output missing inputs")
	}
}

func TestRunSingleInput(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-values", "256", "-input", "vx.f32"}, &out); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		t.Fatalf("files: %d", len(entries))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-input", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown input accepted")
	}
	if err := run([]string{"-values", "-5"}, &bytes.Buffer{}); err == nil {
		t.Fatal("negative values accepted")
	}
	if err := run([]string{"-bogusflag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
