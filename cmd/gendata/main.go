// Command gendata materializes the synthetic SDRBench-substitute inputs as
// .f32 (IEEE-754 binary32, little-endian) and .posit (posit<32,3>,
// little-endian) files.
//
// Usage:
//
//	gendata [-dir out] [-values N] [-input NAME]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"positbench/internal/posit"
	"positbench/internal/sdrbench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gendata: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	dir := fs.String("dir", "data", "output directory")
	values := fs.Int("values", sdrbench.DefaultValues, "float32 values per input")
	input := fs.String("input", "", "generate only the named input (default: all 14)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *values <= 0 {
		return fmt.Errorf("-values must be positive")
	}

	specs := sdrbench.Inputs()
	if *input != "" {
		spec, err := sdrbench.ByName(*input)
		if err != nil {
			return err
		}
		specs = []sdrbench.InputSpec{spec}
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for _, spec := range specs {
		floats := spec.Generate(*values)
		f32 := posit.EncodeFloat32LE(floats)
		words := posit.Posit32e3.FromFloat32Slice(nil, floats)
		pos := posit.EncodeWordsLE(words)
		f32Path := filepath.Join(*dir, spec.Name)
		if err := os.WriteFile(f32Path, f32, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(f32Path+".posit", pos, 0o644); err != nil {
			return err
		}
		st := posit.Posit32e3.RoundtripStats(floats)
		fmt.Fprintf(stdout, "%-26s %8d bytes  posit<32,3> precise %.2f%%\n",
			spec.Name, len(f32), st.PrecisePct())
	}
	return nil
}
