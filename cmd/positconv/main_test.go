package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positbench/internal/posit"
)

func writeF32(t *testing.T, dir string, vals []float32) string {
	t.Helper()
	path := filepath.Join(dir, "in.f32")
	if err := os.WriteFile(path, posit.EncodeFloat32LE(vals), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertBothWays(t *testing.T) {
	dir := t.TempDir()
	vals := []float32{1, 2.5, -0.75, 0, 100}
	in := writeF32(t, dir, vals)
	positPath := filepath.Join(dir, "out.posit")
	backPath := filepath.Join(dir, "back.f32")

	var out bytes.Buffer
	if err := run([]string{"-to-posit", in, positPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "100.00% exact") {
		t.Fatalf("output: %s", out.String())
	}
	if err := run([]string{"-to-float", positPath, backPath}, &out); err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	floats, err := posit.DecodeFloat32LE(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if floats[i] != vals[i] {
			t.Fatalf("value %d: %g != %g", i, floats[i], vals[i])
		}
	}
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	in := writeF32(t, dir, []float32{1, 0, float32(math.Ldexp(1.0000001, 120))})
	var out bytes.Buffer
	if err := run([]string{"-stats", in}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "3 values") || !strings.Contains(s, "exact roundtrips: 2") {
		t.Fatalf("stats output: %s", s)
	}
	// es=2 must also work.
	out.Reset()
	if err := run([]string{"-stats", "-es", "2", in}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "posit<32,2>") {
		t.Fatalf("es=2 output: %s", out.String())
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	in := writeF32(t, dir, []float32{1})
	var out bytes.Buffer
	if err := run([]string{in}, &out); err == nil {
		t.Fatal("missing mode accepted")
	}
	if err := run([]string{"-stats"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-stats", filepath.Join(dir, "missing")}, &out); err == nil {
		t.Fatal("nonexistent file accepted")
	}
	if err := run([]string{"-to-posit", in}, &out); err == nil {
		t.Fatal("missing output path accepted")
	}
	if err := run([]string{"-stats", "-es", "9", in}, &out); err == nil {
		t.Fatal("bad es accepted")
	}
	// Ragged file length.
	bad := filepath.Join(dir, "bad.f32")
	os.WriteFile(bad, []byte{1, 2, 3}, 0o644)
	if err := run([]string{"-stats", bad}, &out); err == nil {
		t.Fatal("ragged file accepted")
	}
}

// Corrupt or truncated input files must produce a one-line error (non-zero
// exit), never a panic.
func TestCorruptInput(t *testing.T) {
	dir := t.TempDir()
	ragged := filepath.Join(dir, "ragged.bin")
	if err := os.WriteFile(ragged, []byte{1, 2, 3, 4, 5}, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.bin")
	cases := []struct {
		name string
		args []string
	}{
		{"StatsRagged", []string{"-stats", ragged}},
		{"ToPositRagged", []string{"-to-posit", ragged, out}},
		{"ToFloatRagged", []string{"-to-float", ragged, out}},
		{"MissingFile", []string{"-stats", filepath.Join(dir, "missing.f32")}},
		{"BadES", []string{"-stats", "-es", "40", ragged}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sink bytes.Buffer
			err := run(tc.args, &sink)
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnostic is not one line: %q", err.Error())
			}
		})
	}
}
