// Command positconv converts raw little-endian .f32 files to posit<32,es>
// encoding and back, reporting the Section 4.2 roundtrip-precision
// statistics.
//
// Usage:
//
//	positconv -to-posit  [-es 3] input.f32  output.posit
//	positconv -to-float  [-es 3] input.posit output.f32
//	positconv -stats     [-es 3] input.f32
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"positbench/internal/ieee"
	"positbench/internal/posit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("positconv: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("positconv", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	toPosit := fs.Bool("to-posit", false, "convert .f32 -> posit words")
	toFloat := fs.Bool("to-float", false, "convert posit words -> .f32")
	statsOnly := fs.Bool("stats", false, "report precision statistics only")
	es := fs.Uint("es", 3, "maximum posit exponent bits (2 or 3 are the studied configs)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := posit.Config{N: 32, ES: *es}
	if err := cfg.Validate(); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) < 1 {
		return fmt.Errorf("need an input file; see -h")
	}
	data, err := os.ReadFile(rest[0])
	if err != nil {
		return err
	}

	switch {
	case *statsOnly:
		floats, err := posit.DecodeFloat32LE(data)
		if err != nil {
			return err
		}
		st := cfg.RoundtripStats(floats)
		sum := ieee.Summarize(floats)
		fmt.Fprintf(stdout, "%s: %d values\n", rest[0], st.Total)
		fmt.Fprintf(stdout, "  %s exact roundtrips: %d (%.2f%%), max abs error %g\n",
			cfg, st.Exact, st.PrecisePct(), st.MaxAbsE)
		fmt.Fprintf(stdout, "  zeros %d, subnormals %d, normals %d, inf %d, nan %d\n",
			sum.Zeros, sum.Subnormals, sum.Normals, sum.Infs, sum.NaNs)
		fmt.Fprintf(stdout, "  finite range [%g, %g], |v| range [%g, %g]\n",
			sum.MinFinite, sum.MaxFinite, sum.MinAbs, sum.MaxAbs)
		return nil
	case *toPosit:
		if len(rest) != 2 {
			return fmt.Errorf("need input and output paths")
		}
		out, st, err := cfg.ConvertFileF32ToPosit(data)
		if err != nil {
			return err
		}
		if err := os.WriteFile(rest[1], out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s: %d values, %.2f%% exact under %s\n",
			rest[1], st.Total, st.PrecisePct(), cfg)
		return nil
	case *toFloat:
		if len(rest) != 2 {
			return fmt.Errorf("need input and output paths")
		}
		words, err := posit.DecodeWordsLE(data)
		if err != nil {
			return err
		}
		floats := cfg.ToFloat32Slice(nil, words)
		if err := os.WriteFile(rest[1], posit.EncodeFloat32LE(floats), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s: %d values\n", rest[1], len(floats))
		return nil
	default:
		return fmt.Errorf("pick one of -to-posit, -to-float, -stats")
	}
}
