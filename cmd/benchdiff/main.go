// Command benchdiff compares two BENCH_compress.json throughput reports and
// fails when a codec regresses: the perf-regression gate for `make bench`.
//
// Usage:
//
//	benchdiff [-threshold 10] OLD.json NEW.json
//
// Each (codec, workers) pair present in both reports is compared on every
// recorded throughput (serial/parallel x compress/decode). Deltas are
// printed as a table; any metric more than -threshold percent below the old
// report makes the exit code 1. Pairs present in only one report are listed
// but do not fail the gate, so adding or retiring a codec does not require
// regenerating history in the same commit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"positbench/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 10, "max tolerated regression, percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] OLD.json NEW.json")
		return 2
	}
	oldRep, err := stats.ReadBenchJSON(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	newRep, err := stats.ReadBenchJSON(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	diff := stats.DiffBench(oldRep, newRep, *threshold)
	fmt.Fprint(out, diff.Table())
	if len(diff.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed more than %.0f%%\n", len(diff.Regressions), *threshold)
		return 1
	}
	return 0
}
