// Command benchdiff compares two BENCH_compress.json throughput reports and
// fails when a codec regresses: the perf-regression gate for `make bench`.
//
// Usage:
//
//	benchdiff [-threshold 10] OLD.json NEW.json
//	benchdiff -scaling [-threshold 10] [BASELINE.json] NEW.json
//
// In the default mode each (codec, workers) pair present in both reports is
// compared on every recorded throughput (serial/parallel x
// compress/decode). Deltas are printed as a table; any metric more than
// -threshold percent below the old report makes the exit code 1. Pairs
// present in only one report are listed but do not fail the gate, so adding
// or retiring a codec does not require regenerating history in the same
// commit.
//
// With -scaling the inputs are per-core scaling reports (one row per
// (codec, workers), as written by `compressbench -workers-sweep` or `make
// bench`'s worker sweep). The new report is first checked against the
// intra-run invariant — parallel must not fall below serial at any worker
// count — and then, when a baseline is given and was measured on the same
// core count, scaling efficiency (speedup / workers) is gated against it.
// A baseline from different hardware is reported and skipped, not failed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"positbench/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 10, "max tolerated regression, percent")
	scaling := fs.Bool("scaling", false, "treat inputs as per-core scaling reports: gate parallel-vs-serial and scaling efficiency instead of raw throughput")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scaling {
		return runScaling(fs.Args(), *threshold, out)
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] OLD.json NEW.json")
		return 2
	}
	oldRep, err := stats.ReadBenchJSON(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	newRep, err := stats.ReadBenchJSON(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	diff := stats.DiffBench(oldRep, newRep, *threshold)
	fmt.Fprint(out, diff.Table())
	if len(diff.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed more than %.0f%%\n", len(diff.Regressions), *threshold)
		return 1
	}
	return 0
}

func runScaling(args []string, threshold float64, out io.Writer) int {
	var basePath, newPath string
	switch len(args) {
	case 1:
		newPath = args[0]
	case 2:
		basePath, newPath = args[0], args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff -scaling [-threshold PCT] [BASELINE.json] NEW.json")
		return 2
	}
	newRep, err := stats.ReadBenchJSON(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	failures := 0
	intra := stats.CheckScaling(newRep, threshold)
	for _, p := range intra {
		fmt.Fprintln(out, "FAIL", p)
	}
	failures += len(intra)
	if len(intra) == 0 {
		fmt.Fprintf(out, "ok: parallel >= serial for all %d scaling rows (num_cpu=%d)\n", len(newRep.Results), newRep.NumCPU)
	}
	if basePath != "" {
		baseRep, err := stats.ReadBenchJSON(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 2
		}
		probs, compared := stats.CheckScalingRegress(baseRep, newRep, threshold)
		switch {
		case !compared && newRep.NumCPU == 1:
			fmt.Fprintln(out, "skip: 1-CPU machine falls back to the serial path; no efficiency to compare")
		case !compared:
			fmt.Fprintf(out, "skip: baseline measured on %d CPUs, this run on %d; efficiency not comparable\n",
				baseRep.NumCPU, newRep.NumCPU)
		case len(probs) == 0:
			fmt.Fprintln(out, "ok: scaling efficiency within tolerance of baseline")
		default:
			for _, p := range probs {
				fmt.Fprintln(out, "FAIL", p)
			}
			failures += len(probs)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d scaling check(s) failed\n", failures)
		return 1
	}
	return 0
}
