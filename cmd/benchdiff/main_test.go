package main

import (
	"path/filepath"
	"strings"
	"testing"

	"positbench/internal/stats"
)

func writeReport(t *testing.T, dir, name string, results ...stats.BenchResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := stats.WriteBenchJSON(path, &stats.BenchReport{GOMAXPROCS: 1, NumCPU: 1, Results: results}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json",
		stats.BenchResult{Codec: "xz", Workers: 4, SerialMBps: 2.0, ParallelMBps: 2.0})
	samePath := writeReport(t, dir, "same.json",
		stats.BenchResult{Codec: "xz", Workers: 4, SerialMBps: 2.05, ParallelMBps: 1.95})
	slowPath := writeReport(t, dir, "slow.json",
		stats.BenchResult{Codec: "xz", Workers: 4, SerialMBps: 1.0, ParallelMBps: 2.0})

	var out strings.Builder
	if code := run([]string{oldPath, samePath}, &out); code != 0 {
		t.Fatalf("within-threshold diff exited %d, want 0\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{oldPath, slowPath}, &out); code != 1 {
		t.Fatalf("-50%% regression exited %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "<< regression") {
		t.Fatalf("regression not marked in output:\n%s", out.String())
	}
	out.Reset()
	// A huge threshold tolerates the drop.
	if code := run([]string{"-threshold", "60", oldPath, slowPath}, &out); code != 0 {
		t.Fatalf("60%% threshold exited %d, want 0", code)
	}
	// Usage and missing-file errors are exit 2.
	if code := run([]string{oldPath}, &out); code != 2 {
		t.Fatal("missing arg did not exit 2")
	}
	if code := run([]string{filepath.Join(dir, "nope.json"), samePath}, &out); code != 2 {
		t.Fatal("unreadable old report did not exit 2")
	}
}

func TestRunScalingMode(t *testing.T) {
	dir := t.TempDir()
	healthy := writeReport(t, dir, "healthy.json",
		stats.BenchResult{Codec: "xz", Workers: 1, SerialMBps: 10, ParallelMBps: 9.8, SerialDecodeMBps: 40, ParallelDecodeMBps: 41},
		stats.BenchResult{Codec: "xz", Workers: 4, SerialMBps: 10, ParallelMBps: 9.6, SerialDecodeMBps: 40, ParallelDecodeMBps: 42})
	slowDecode := writeReport(t, dir, "slowdec.json",
		stats.BenchResult{Codec: "xz", Workers: 4, SerialMBps: 10, ParallelMBps: 9.8, SerialDecodeMBps: 40, ParallelDecodeMBps: 20})

	var out strings.Builder
	if code := run([]string{"-scaling", healthy}, &out); code != 0 {
		t.Fatalf("healthy scaling report exited %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok: parallel >= serial") {
		t.Fatalf("missing intra-run ok line:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-scaling", slowDecode}, &out); code != 1 {
		t.Fatalf("parallel-decode-below-serial report exited %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "parallel decode") {
		t.Fatalf("decode failure not named:\n%s", out.String())
	}
	out.Reset()
	// The fixtures are 1-CPU reports: the efficiency diff must announce the
	// serial-fallback skip rather than compare noise against noise.
	if code := run([]string{"-scaling", healthy, healthy}, &out); code != 0 {
		t.Fatalf("self-baseline exited %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip: 1-CPU machine") {
		t.Fatalf("missing 1-CPU skip line:\n%s", out.String())
	}
	out.Reset()
	// Same multi-core hardware: the comparison runs and passes on itself.
	multi := filepath.Join(dir, "multi.json")
	if err := stats.WriteBenchJSON(multi, &stats.BenchReport{GOMAXPROCS: 4, NumCPU: 4, Results: []stats.BenchResult{
		{Codec: "xz", Workers: 4, SerialMBps: 10, ParallelMBps: 32, SerialDecodeMBps: 40, ParallelDecodeMBps: 120},
	}}); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-scaling", multi, multi}, &out); code != 0 {
		t.Fatalf("multi-core self-baseline exited %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "scaling efficiency within tolerance") {
		t.Fatalf("missing efficiency ok line:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-scaling"}, &out); code != 2 {
		t.Fatal("missing args did not exit 2")
	}
}
