// Command positload is the open-loop traffic generator and soak-test
// driver for positd. It fires a mixed compress/decompress/convert workload
// built from the sdrbench-shaped synthetic inputs at a target rate,
// verifies every compress response by decompressing it back, and prints a
// JSON report (per-codec byte bookkeeping, status counts, latency
// percentiles) to stdout.
//
// Usage:
//
//	positload -url http://127.0.0.1:8080 [-qps N] [-duration D] [-grace D]
//	          [-inflight N] [-codecs a,b] [-convert-every N] [-auto N]
//	          [-values N] [-seed N] [-retry-429 N]
//	positload -addr-file PATH ...   # read the target from a positd addr file
//
// -auto N mixes one POST /v1/compress/auto roundtrip in per N direct codec
// operations: the server's advisor picks the codec, and the report books
// those bytes per chosen codec (the X-Positd-Codec response header) under
// "auto", reconcilable against the server's codecs.<name>.auto metrics.
//
// -grace lets operations already in flight at the end of -duration finish
// instead of being cut off, which a soak needs when it reconciles this
// report's status counts exactly against a server's /metrics. -retry-429
// re-sends shed requests that carry a Retry-After header, honoring the
// advertised delay; retries are reported under retried_429.
//
// Exit status is 0 when the run saw no server errors, transport errors, or
// roundtrip mismatches; 1 otherwise (shed load — 429s and dropped ticks —
// is expected under deliberate overload and does not fail the run).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"positbench/internal/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("positload", flag.ContinueOnError)
	var (
		url      = fs.String("url", "", "positd base URL, e.g. http://127.0.0.1:8080")
		addrFile = fs.String("addr-file", "", "read the target address from this positd -addr-file instead of -url")
		qps      = fs.Float64("qps", 50, "target operation start rate (open loop)")
		duration = fs.Duration("duration", 5*time.Second, "run length")
		grace    = fs.Duration("grace", 0, "extra time for in-flight operations to finish after the last tick")
		retry429 = fs.Int("retry-429", 0, "max re-sends per operation after a 429 with Retry-After; 0 selects the default, <0 disables")
		inflight = fs.Int("inflight", 16, "max concurrently running operations; excess ticks are dropped")
		codecs   = fs.String("codecs", "gzip,bzip2", "comma-separated codec mix for compress/decompress traffic")
		convert  = fs.Int("convert-every", 4, "mix one /v1/convert op per N codec ops; <0 disables")
		auto     = fs.Int("auto", 0, "mix one /v1/compress/auto roundtrip per N codec ops; <=0 disables")
		values   = fs.Int("values", 16384, "float32 values per generated request body")
		seed     = fs.Int64("seed", 1, "workload RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := *url
	if base == "" && *addrFile != "" {
		raw, err := os.ReadFile(*addrFile)
		if err != nil {
			log.Printf("positload: read addr-file: %v", err)
			return 2
		}
		addr := strings.TrimSpace(string(raw))
		if strings.HasPrefix(addr, ":") {
			addr = "127.0.0.1" + addr
		}
		base = "http://" + addr
	}
	if base == "" {
		log.Printf("positload: -url or -addr-file required")
		return 2
	}

	rep, err := load.Run(context.Background(), load.Config{
		BaseURL:      strings.TrimRight(base, "/"),
		QPS:          *qps,
		Duration:     *duration,
		Grace:        *grace,
		Retry429:     *retry429,
		MaxInflight:  *inflight,
		Codecs:       strings.Split(*codecs, ","),
		ConvertEvery: *convert,
		AutoEvery:    *auto,
		Values:       *values,
		Seed:         *seed,
	})
	if err != nil {
		log.Printf("positload: %v", err)
		return 2
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "positload: FAILED: 5xx=%d transport=%d mismatches=%d\n",
			rep.Status5xx, rep.Transport, rep.Mismatches)
		return 1
	}
	return 0
}
