// Command positadvise is the offline face of the adaptive codec advisor:
// point it at float/posit data files and it reports, as JSON, which codec
// (or LC pipeline) the advisor would pick for each — the same decision
// positd's POST /v1/compress/auto makes per request, but with the full
// evidence trail (stream fingerprint, every trial candidate's sampled
// ratio and timing) that the server only exposes as response headers.
//
// Usage:
//
//	positadvise [-sample N] [-hint a,b] [-compact] FILE...
//	positadvise < data.f32            # single input on stdin
//
// Unlike the server, which can only sniff the head of a stream it must
// then replay, positadvise has the whole file and samples seeded windows
// spread across it, so its decisions are deterministic for a given file
// and also robust to data whose character drifts after the header.
//
// Exit status is 0 when every input was advised, 1 otherwise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"positbench/internal/advisor"
	"positbench/internal/compress/all"
)

// advice is one input's JSON document.
type advice struct {
	File     string           `json:"file"`
	Bytes    int              `json:"bytes"`
	Decision advisor.Decision `json:"decision"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("positadvise: ")
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout))
}

func run(args []string, stdin io.Reader, stdout io.Writer) int {
	fs := flag.NewFlagSet("positadvise", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sample := fs.Int("sample", advisor.DefaultSampleBytes, "sample-size budget in bytes")
	hintsFlag := fs.String("hint", "", "comma-separated codec constraint (e.g. gzip,zstd,lc)")
	compact := fs.Bool("compact", false, "one JSON line per input instead of indented documents")
	if err := fs.Parse(args); err != nil {
		log.Print(err)
		return 1
	}

	adv, err := advisor.New(advisor.Config{Codecs: all.Codecs(), SampleBytes: *sample})
	if err != nil {
		log.Print(err)
		return 1
	}
	var hints []string
	if *hintsFlag != "" {
		hints = strings.Split(*hintsFlag, ",")
	}

	enc := json.NewEncoder(stdout)
	if !*compact {
		enc.SetIndent("", "  ")
	}
	advise := func(name string, data []byte) error {
		dec, err := adv.Decide(context.Background(), advisor.Sample(data, adv.SampleBytes()), hints, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return enc.Encode(advice{File: name, Bytes: len(data), Decision: dec})
	}

	if fs.NArg() == 0 {
		data, err := io.ReadAll(stdin)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := advise("-", data); err != nil {
			log.Print(err)
			return 1
		}
		return 0
	}
	status := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Print(err)
			status = 1
			continue
		}
		if err := advise(path, data); err != nil {
			log.Print(err)
			status = 1
		}
	}
	return status
}
