package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positbench/internal/posit"
)

// waveFile writes n float32 values of a smooth wave to dir.
func waveFile(t *testing.T, dir string, n int) string {
	t.Helper()
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i)/64) * 100)
	}
	path := filepath.Join(dir, "wave.f32")
	if err := os.WriteFile(path, posit.EncodeFloat32LE(vals), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

type adviceDoc struct {
	File     string `json:"file"`
	Bytes    int    `json:"bytes"`
	Decision struct {
		Codec       string  `json:"codec"`
		Source      string  `json:"source"`
		Confidence  float64 `json:"confidence"`
		Fingerprint struct {
			Key string `json:"key"`
		} `json:"fingerprint"`
		Candidates []struct {
			Codec   string `json:"codec"`
			CompLen int    `json:"comp_len"`
		} `json:"candidates"`
	} `json:"decision"`
}

func TestAdviseFile(t *testing.T) {
	path := waveFile(t, t.TempDir(), 8192)
	var out bytes.Buffer
	if code := run([]string{path}, nil, &out); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	var doc adviceDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if doc.File != path || doc.Bytes != 4*8192 {
		t.Fatalf("doc header = %q/%d", doc.File, doc.Bytes)
	}
	if doc.Decision.Codec == "" || doc.Decision.Fingerprint.Key == "" {
		t.Fatalf("incomplete decision: %+v", doc.Decision)
	}
	if len(doc.Decision.Candidates) == 0 {
		t.Fatal("offline advice must carry the full candidate evidence")
	}

	// Same file, fresh process state: the decision (pick, fingerprint,
	// candidate sizes — everything but wall-clock timings) must repeat.
	var again bytes.Buffer
	if code := run([]string{path}, nil, &again); code != 0 {
		t.Fatalf("second run exit %d", code)
	}
	var doc2 adviceDoc
	if err := json.Unmarshal(again.Bytes(), &doc2); err != nil {
		t.Fatal(err)
	}
	if doc2.Decision.Codec != doc.Decision.Codec ||
		doc2.Decision.Fingerprint.Key != doc.Decision.Fingerprint.Key ||
		doc2.Decision.Confidence != doc.Decision.Confidence {
		t.Fatalf("advice not deterministic: %+v vs %+v", doc.Decision, doc2.Decision)
	}
	for i := range doc.Decision.Candidates {
		a, b := doc.Decision.Candidates[i], doc2.Decision.Candidates[i]
		if a.Codec != b.Codec || a.CompLen != b.CompLen {
			t.Fatalf("candidate %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestAdviseStdinAndHints(t *testing.T) {
	vals := make([]float32, 4096)
	for i := range vals {
		vals[i] = float32(i % 17)
	}
	data := posit.EncodeFloat32LE(vals)

	var out bytes.Buffer
	if code := run([]string{"-compact", "-hint", "gzip"}, bytes.NewReader(data), &out); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	if lines := strings.Count(strings.TrimSpace(out.String()), "\n"); lines != 0 {
		t.Fatalf("-compact emitted %d extra lines", lines)
	}
	var doc adviceDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.File != "-" || doc.Decision.Codec != "gzip" {
		t.Fatalf("hinted stdin advice = %q/%q, want -/gzip", doc.File, doc.Decision.Codec)
	}

	if code := run([]string{"-hint", "nope"}, bytes.NewReader(data), io.Discard); code == 0 {
		t.Fatal("unknown hint must fail")
	}
}

func TestAdviseMissingFile(t *testing.T) {
	if code := run([]string{filepath.Join(t.TempDir(), "absent.f32")}, nil, io.Discard); code != 1 {
		t.Fatalf("missing file exit = %d, want 1", code)
	}
}
