// Command compressbench runs any subset of the study's codecs over files
// and prints a compression-ratio table plus geometric means, optionally
// verifying every roundtrip. It can also act as a framed (de)compressor:
// -z writes a self-identifying container blob, -d routes a blob to the
// right decoder by its frame header and rejects corrupt, truncated, or
// oversized input with a one-line diagnostic and a non-zero exit.
//
// Usage:
//
//	compressbench [-codecs xz,bzip2] [-p N] [-verify] [-json] file1 [file2 ...]
//	compressbench -z xz input output.pbcf
//	compressbench -d [-max-out N] input.pbcf output
//	compressbench -zs xz [-chunk N] input output.pbs     (indexed v2 stream)
//	compressbench -ds [-max-out N] input.pbs output      (decode a stream)
//	compressbench -index input.pbs                       (trailer report)
//	compressbench -range off:len [-max-out N] input.pbs output
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/container"
	"positbench/internal/lc"
	"positbench/internal/stats"
	"positbench/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("compressbench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("compressbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	names := fs.String("codecs", strings.Join(all.Names(), ","),
		"comma-separated codec subset (add 'lc' for the LC pipeline search)")
	jsonOut := fs.Bool("json", false,
		"emit the ratio report as JSON; cell failures are embedded per cell and the exit code is non-zero")
	verify := fs.Bool("verify", false, "roundtrip-verify every compression")
	workers := fs.Int("p", 0, "max concurrent file x codec runs (0 = GOMAXPROCS)")
	zName := fs.String("z", "", "compress one file into a framed blob with the named codec")
	dFlag := fs.Bool("d", false, "decompress a framed blob, routing by its frame header")
	maxOut := fs.Int64("max-out", 0, "decode size limit in bytes for -d (0 = default)")
	zsName := fs.String("zs", "", "compress one file into an indexed (seekable) chunked stream with the named codec")
	dsFlag := fs.Bool("ds", false, "decompress a chunked stream (v1 or indexed v2), routing by its first frame header")
	chunkSize := fs.Int("chunk", 0, "chunk size in bytes for -zs (0 = default)")
	indexFlag := fs.Bool("index", false, "report the seek-index trailer of a stream: chunks, layout, overhead")
	rangeSpec := fs.String("range", "", "decode only the window off:len of an indexed stream (e.g. -range 65536:4096)")
	workersSweep := fs.Bool("workers-sweep", false,
		"measure per-core scaling curves (codec x direction x workers 1,2,4,8) over the input files (or a synthetic field) and emit a BENCH JSON report instead of the ratio table")
	sweepOut := fs.String("sweep-json", "", "write the -workers-sweep report to this path instead of stdout")
	sweepBytes := fs.Int("sweep-bytes", 0, "synthetic input size for -workers-sweep when no files are given (0 = 4 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if *zsName != "" || *dsFlag {
		return runStream(*zsName, *dsFlag, *chunkSize, *maxOut, files, stdout)
	}
	if *indexFlag || *rangeSpec != "" {
		return runIndexed(*indexFlag, *rangeSpec, *maxOut, files, stdout)
	}
	if *zName != "" || *dFlag {
		return runFramed(*zName, *dFlag, *maxOut, files, stdout)
	}
	if *workersSweep {
		return runSweep(*names, *sweepOut, *sweepBytes, files, stdout)
	}
	if len(files) == 0 {
		return fmt.Errorf("need at least one input file")
	}

	var codecs []compress.Codec
	wantLC := false
	for _, n := range strings.Split(*names, ",") {
		n = strings.TrimSpace(n)
		if n == "lc" {
			wantLC = true
			continue
		}
		c, err := all.Get(n)
		if err != nil {
			return err
		}
		codecs = append(codecs, c)
	}

	// Every file x codec cell (plus one LC search per file) runs in a
	// bounded worker pool; results land in per-cell slots so the rendered
	// table is deterministic regardless of completion order.
	nFiles, nCols := len(files), len(codecs)
	if wantLC {
		nCols++
	}
	type cell struct {
		ratio float64
		label string
	}
	cells := make([]cell, nFiles*nCols)
	errs := make([]error, nFiles*nCols)
	data := make([][]byte, nFiles)
	readErrs := make([]error, nFiles)
	for i, path := range files {
		data[i], readErrs[i] = os.ReadFile(path)
		if readErrs[i] != nil && !*jsonOut {
			// Table mode fails fast; JSON mode keeps going and embeds the
			// read failure in every cell of that file's row.
			return readErrs[i]
		}
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, nw)
	var wg sync.WaitGroup
	runCell := func(idx int, fn func() (cell, error)) {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			cells[idx], errs[idx] = fn()
		}()
	}
	for fi := range files {
		fi := fi
		if readErrs[fi] != nil {
			for ci := 0; ci < nCols; ci++ {
				errs[fi*nCols+ci] = readErrs[fi]
			}
			continue
		}
		for ci, c := range codecs {
			c := c
			runCell(fi*nCols+ci, func() (cell, error) {
				var compLen int
				var err error
				if *verify {
					compLen, err = compress.Roundtrip(c, data[fi])
				} else {
					var comp []byte
					comp, err = c.Compress(data[fi])
					compLen = len(comp)
				}
				if err != nil {
					return cell{}, err
				}
				r := compress.Ratio(len(data[fi]), compLen)
				return cell{ratio: r, label: fmt.Sprintf("%.3f", r)}, nil
			})
		}
		if wantLC {
			runCell(fi*nCols+len(codecs), func() (cell, error) {
				rs, err := lc.SearchAll(data[fi])
				if err != nil {
					return cell{}, err
				}
				best := rs[0]
				if *verify {
					pipe, err := best.Pipeline()
					if err != nil {
						return cell{}, err
					}
					if _, err := compress.Roundtrip(lc.NewCodec(pipe), data[fi]); err != nil {
						return cell{}, err
					}
				}
				return cell{ratio: best.Ratio, label: fmt.Sprintf("%.3f (%s|%s|%s)",
					best.Ratio, best.Names[0], best.Names[1], best.Names[2])}, nil
			})
		}
	}
	wg.Wait()
	colName := func(ci int) string {
		if ci < len(codecs) {
			return codecs[ci].Name()
		}
		return "lc"
	}

	// JSON mode renders every cell — including the failed ones — and then
	// fails the run if anything failed, so CI gets both the full picture and
	// a red exit.
	if *jsonOut {
		var rep stats.RatioReport
		for ci := 0; ci < nCols; ci++ {
			rep.Codecs = append(rep.Codecs, colName(ci))
		}
		for fi, path := range files {
			rf := stats.RatioFile{File: filepath.Base(path), SizeBytes: len(data[fi])}
			for ci := 0; ci < nCols; ci++ {
				idx := fi*nCols + ci
				rc := stats.RatioCell{Codec: colName(ci)}
				if errs[idx] != nil {
					rc.Error = errs[idx].Error()
				} else {
					rc.Ratio = cells[idx].ratio
					if colName(ci) == "lc" {
						rc.Detail = cells[idx].label
					}
				}
				rf.Cells = append(rf.Cells, rc)
			}
			rep.Files = append(rep.Files, rf)
		}
		rep.Finish()
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			return err
		}
		if rep.Errors > 0 {
			return fmt.Errorf("%d of %d cells failed", rep.Errors, len(files)*nCols)
		}
		return nil
	}

	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	table := stats.NewTable(append([]string{"File", "Size"}, codecNames(codecs, wantLC)...)...)
	ratios := map[string][]float64{}
	for fi, path := range files {
		row := []interface{}{filepath.Base(path), len(data[fi])}
		for ci := 0; ci < nCols; ci++ {
			cl := cells[fi*nCols+ci]
			ratios[colName(ci)] = append(ratios[colName(ci)], cl.ratio)
			row = append(row, cl.label)
		}
		table.AddRow(row...)
	}
	geoRow := []interface{}{"geomean", ""}
	for _, c := range codecs {
		geoRow = append(geoRow, fmt.Sprintf("%.3f", stats.GeoMean(ratios[c.Name()])))
	}
	if wantLC {
		geoRow = append(geoRow, fmt.Sprintf("%.3f", stats.GeoMean(ratios["lc"])))
	}
	table.AddRow(geoRow...)
	fmt.Fprint(stdout, table.String())
	return nil
}

// runSweep implements -workers-sweep: per-core scaling curves in the
// BENCH_compress.json schema, shared with `make bench-scaling` through
// internal/sweep so the CLI and the CI gate measure identically. Input
// files are concatenated into the benchmark payload; with no files a
// synthetic smooth float field stands in.
func runSweep(names, outPath string, sweepBytes int, files []string, stdout io.Writer) error {
	var codecs []compress.Codec
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "lc" {
			continue // the LC search is a ratio tool, not a streaming codec
		}
		c, err := all.Get(n)
		if err != nil {
			return err
		}
		codecs = append(codecs, c)
	}
	var input []byte
	for _, path := range files {
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		input = append(input, blob...)
	}
	rep, err := sweep.Run(sweep.Options{Codecs: codecs, Input: input, Bytes: sweepBytes})
	if err != nil {
		return err
	}
	if outPath != "" {
		return stats.WriteBenchJSON(outPath, rep)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = stdout.Write(blob)
	return err
}

// runFramed implements the -z / -d single-file modes over the container
// frame. Decode failures surface as one-line errors, never panics: the
// framed codec path validates magic, codec identity, declared length
// (against the -max-out cap), and both checksums.
func runFramed(zName string, dFlag bool, maxOut int64, files []string, stdout io.Writer) error {
	if zName != "" && dFlag {
		return fmt.Errorf("pick one of -z or -d")
	}
	if len(files) != 2 {
		return fmt.Errorf("need input and output paths")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	if zName != "" {
		c, err := all.Get(zName)
		if err != nil {
			return err
		}
		blob, err := c.Compress(data)
		if err != nil {
			return err
		}
		if err := os.WriteFile(files[1], blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s: %d -> %d bytes (%s frame)\n", files[1], len(data), len(blob), c.Name())
		return nil
	}
	name, err := container.Identify(data)
	if err != nil {
		return fmt.Errorf("%s: %w", files[0], err)
	}
	c, err := all.Get(name)
	if err != nil {
		return fmt.Errorf("%s: frame names codec %q: %w", files[0], name, err)
	}
	out, err := compress.DecompressLimits(c, data, compress.DecodeLimits{MaxOutputBytes: maxOut})
	if err != nil {
		return fmt.Errorf("%s: %w", files[0], err)
	}
	if err := os.WriteFile(files[1], out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d bytes (%s frame verified)\n", files[1], len(out), name)
	return nil
}

// runStream implements -zs / -ds over the chunked stream wire format.
// -zs always writes the indexed v2 layout: every chunk is recorded in the
// trailer the ReaderAt seeks by, and a v1 reader never notices it.
func runStream(zsName string, dsFlag bool, chunkSize int, maxOut int64, files []string, stdout io.Writer) error {
	if zsName != "" && dsFlag {
		return fmt.Errorf("pick one of -zs or -ds")
	}
	if len(files) != 2 {
		return fmt.Errorf("need input and output paths")
	}
	if zsName != "" {
		c, err := all.Get(zsName)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(files[0])
		if err != nil {
			return err
		}
		f, err := os.Create(files[1])
		if err != nil {
			return err
		}
		b := container.NewIndexBuilder()
		w := compress.NewWriter(c, f, chunkSize)
		w.SetIndexSink(b)
		if _, err := w.Write(data); err != nil {
			f.Close()
			return err
		}
		if err := w.Close(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		ix := b.Index()
		fmt.Fprintf(stdout, "wrote %s: %d -> %d bytes, %d chunks, %d-byte trailer (%s indexed stream)\n",
			files[1], len(data), ix.DataLen+ix.TrailerLen, len(ix.Chunks), ix.TrailerLen, c.Name())
		return nil
	}

	data, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	name, err := streamCodecName(data)
	if err != nil {
		return fmt.Errorf("%s: %w", files[0], err)
	}
	c, err := all.Get(name)
	if err != nil {
		return fmt.Errorf("%s: stream names codec %q: %w", files[0], name, err)
	}
	r := compress.NewReaderLimits(c, bytes.NewReader(data), compress.DecodeLimits{MaxOutputBytes: maxOut})
	out, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%s: %w", files[0], err)
	}
	if err := os.WriteFile(files[1], out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d bytes (%s stream verified)\n", files[1], len(out), name)
	return nil
}

// streamCodecName identifies the codec of a chunked stream from its first
// frame: uvarint prefix, then a container frame header.
func streamCodecName(data []byte) (string, error) {
	length, used := binary.Uvarint(data)
	if used <= 0 {
		return "", fmt.Errorf("unreadable stream frame prefix")
	}
	if length == 0 {
		return "", fmt.Errorf("stream opens with its terminator")
	}
	h, _, err := container.ParseHeader(data[used:])
	if err != nil {
		return "", err
	}
	return h.Codec, nil
}

// runIndexed implements -index and -range over an indexed stream: the
// trailer report, and windowed decodes that fetch only the overlapping
// chunks.
func runIndexed(indexFlag bool, rangeSpec string, maxOut int64, files []string, stdout io.Writer) error {
	if len(files) == 0 {
		return fmt.Errorf("need an indexed stream path")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	ix, err := container.ParseTrailer(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return fmt.Errorf("%s: %w", files[0], err)
	}

	if indexFlag {
		total := ix.DataLen + ix.TrailerLen
		fmt.Fprintf(stdout, "%s: %d chunks, %d raw bytes -> %d stream bytes\n",
			files[0], len(ix.Chunks), ix.RawLen, total)
		fmt.Fprintf(stdout, "  data %d bytes, trailer %d bytes (%.4f%% overhead, %.1f bytes/chunk)\n",
			ix.DataLen, ix.TrailerLen,
			100*float64(ix.TrailerLen)/float64(total),
			float64(ix.TrailerLen)/float64(max(len(ix.Chunks), 1)))
		if len(ix.Chunks) > 0 {
			fmt.Fprintf(stdout, "  chunk raw size %d bytes (first), %d bytes (last)\n",
				ix.Chunks[0].RawLen, ix.Chunks[len(ix.Chunks)-1].RawLen)
		}
		if rangeSpec == "" {
			return nil
		}
	}

	var off, length int64
	if _, err := fmt.Sscanf(rangeSpec, "%d:%d", &off, &length); err != nil {
		return fmt.Errorf("-range %q: want off:len", rangeSpec)
	}
	if len(files) != 2 {
		return fmt.Errorf("need input and output paths for -range")
	}
	name, err := streamCodecName(data)
	if err != nil {
		return fmt.Errorf("%s: %w", files[0], err)
	}
	c, err := all.Get(name)
	if err != nil {
		return fmt.Errorf("%s: stream names codec %q: %w", files[0], name, err)
	}
	ra := container.NewReaderAtIndex(bytes.NewReader(data), ix, c, container.ReaderAtOptions{
		Limits: compress.DecodeLimits{MaxOutputBytes: maxOut},
	})
	rr, err := ra.Range(off, length)
	if err != nil {
		return err
	}
	out, err := io.ReadAll(rr)
	if err != nil {
		return fmt.Errorf("%s: range %d:%d: %w", files[0], off, length, err)
	}
	if err := os.WriteFile(files[1], out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d of %d raw bytes via %d of %d chunks (%d of %d compressed bytes fetched)\n",
		files[1], len(out), ix.RawLen, rr.Chunks(), len(ix.Chunks),
		rr.CompBytes(), ix.CompBytes(0, len(ix.Chunks)))
	return nil
}

func codecNames(codecs []compress.Codec, withLC bool) []string {
	var names []string
	for _, c := range codecs {
		names = append(names, c.Name())
	}
	if withLC {
		names = append(names, "lc (best pipeline)")
	}
	return names
}
