// Command compressbench runs any subset of the study's codecs over files
// and prints a compression-ratio table plus geometric means, optionally
// verifying every roundtrip. It can also act as a framed (de)compressor:
// -z writes a self-identifying container blob, -d routes a blob to the
// right decoder by its frame header and rejects corrupt, truncated, or
// oversized input with a one-line diagnostic and a non-zero exit.
//
// Usage:
//
//	compressbench [-codecs xz,bzip2] [-verify] file1 [file2 ...]
//	compressbench -z xz input output.pbcf
//	compressbench -d [-max-out N] input.pbcf output
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/container"
	"positbench/internal/lc"
	"positbench/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("compressbench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("compressbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	names := fs.String("codecs", strings.Join(all.Names(), ","),
		"comma-separated codec subset (add 'lc' for the LC pipeline search)")
	verify := fs.Bool("verify", false, "roundtrip-verify every compression")
	zName := fs.String("z", "", "compress one file into a framed blob with the named codec")
	dFlag := fs.Bool("d", false, "decompress a framed blob, routing by its frame header")
	maxOut := fs.Int64("max-out", 0, "decode size limit in bytes for -d (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if *zName != "" || *dFlag {
		return runFramed(*zName, *dFlag, *maxOut, files, stdout)
	}
	if len(files) == 0 {
		return fmt.Errorf("need at least one input file")
	}

	var codecs []compress.Codec
	wantLC := false
	for _, n := range strings.Split(*names, ",") {
		n = strings.TrimSpace(n)
		if n == "lc" {
			wantLC = true
			continue
		}
		c, err := all.Get(n)
		if err != nil {
			return err
		}
		codecs = append(codecs, c)
	}

	table := stats.NewTable(append([]string{"File", "Size"}, codecNames(codecs, wantLC)...)...)
	ratios := map[string][]float64{}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		row := []interface{}{filepath.Base(path), len(data)}
		for _, c := range codecs {
			var compLen int
			if *verify {
				compLen, err = compress.Roundtrip(c, data)
			} else {
				var comp []byte
				comp, err = c.Compress(data)
				compLen = len(comp)
			}
			if err != nil {
				return err
			}
			r := compress.Ratio(len(data), compLen)
			ratios[c.Name()] = append(ratios[c.Name()], r)
			row = append(row, fmt.Sprintf("%.3f", r))
		}
		if wantLC {
			rs, err := lc.SearchAll(data)
			if err != nil {
				return err
			}
			best := rs[0]
			if *verify {
				pipe, err := best.Pipeline()
				if err != nil {
					return err
				}
				if _, err := compress.Roundtrip(lc.NewCodec(pipe), data); err != nil {
					return err
				}
			}
			ratios["lc"] = append(ratios["lc"], best.Ratio)
			row = append(row, fmt.Sprintf("%.3f (%s|%s|%s)", best.Ratio,
				best.Names[0], best.Names[1], best.Names[2]))
		}
		table.AddRow(row...)
	}
	geoRow := []interface{}{"geomean", ""}
	for _, c := range codecs {
		geoRow = append(geoRow, fmt.Sprintf("%.3f", stats.GeoMean(ratios[c.Name()])))
	}
	if wantLC {
		geoRow = append(geoRow, fmt.Sprintf("%.3f", stats.GeoMean(ratios["lc"])))
	}
	table.AddRow(geoRow...)
	fmt.Fprint(stdout, table.String())
	return nil
}

// runFramed implements the -z / -d single-file modes over the container
// frame. Decode failures surface as one-line errors, never panics: the
// framed codec path validates magic, codec identity, declared length
// (against the -max-out cap), and both checksums.
func runFramed(zName string, dFlag bool, maxOut int64, files []string, stdout io.Writer) error {
	if zName != "" && dFlag {
		return fmt.Errorf("pick one of -z or -d")
	}
	if len(files) != 2 {
		return fmt.Errorf("need input and output paths")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		return err
	}
	if zName != "" {
		c, err := all.Get(zName)
		if err != nil {
			return err
		}
		blob, err := c.Compress(data)
		if err != nil {
			return err
		}
		if err := os.WriteFile(files[1], blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s: %d -> %d bytes (%s frame)\n", files[1], len(data), len(blob), c.Name())
		return nil
	}
	name, err := container.Identify(data)
	if err != nil {
		return fmt.Errorf("%s: %w", files[0], err)
	}
	c, err := all.Get(name)
	if err != nil {
		return fmt.Errorf("%s: frame names codec %q: %w", files[0], name, err)
	}
	out, err := compress.DecompressLimits(c, data, compress.DecodeLimits{MaxOutputBytes: maxOut})
	if err != nil {
		return fmt.Errorf("%s: %w", files[0], err)
	}
	if err := os.WriteFile(files[1], out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d bytes (%s frame verified)\n", files[1], len(out), name)
	return nil
}

func codecNames(codecs []compress.Codec, withLC bool) []string {
	var names []string
	for _, c := range codecs {
		names = append(names, c.Name())
	}
	if withLC {
		names = append(names, "lc (best pipeline)")
	}
	return names
}
