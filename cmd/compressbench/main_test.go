package main

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeField(t *testing.T, dir, name string, n int) string {
	t.Helper()
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		v := float32(math.Sin(float64(i)/30) + 2)
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSubset(t *testing.T) {
	dir := t.TempDir()
	f1 := writeField(t, dir, "a.f32", 2000)
	f2 := writeField(t, dir, "b.f32", 1000)
	var out bytes.Buffer
	if err := run([]string{"-codecs", "lz4,gzip", "-verify", f1, f2}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"a.f32", "b.f32", "geomean", "lz4", "gzip"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "xz") {
		t.Error("unrequested codec in output")
	}
}

func TestRunWithLC(t *testing.T) {
	dir := t.TempDir()
	f := writeField(t, dir, "c.f32", 1500)
	var out bytes.Buffer
	if err := run([]string{"-codecs", "lz4,lc", f}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "|") { // pipeline string present
		t.Fatalf("LC pipeline missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no files accepted")
	}
	if err := run([]string{"-codecs", "nope", "x"}, &out); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if err := run([]string{"/definitely/missing/file"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Corrupt or truncated framed input must yield a one-line error from run
// (and thus a non-zero exit from main), never a panic or a stack trace.
func TestFramedRoundtripAndCorruptInput(t *testing.T) {
	dir := t.TempDir()
	orig := writeField(t, dir, "in.f32", 3000)
	blob := filepath.Join(dir, "in.pbcf")
	var out bytes.Buffer
	if err := run([]string{"-z", "gzip", orig, blob}, &out); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.f32")
	if err := run([]string{"-d", blob, back}, &out); err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(orig)
	got, _ := os.ReadFile(back)
	if !bytes.Equal(want, got) {
		t.Fatal("framed roundtrip mismatch")
	}

	frame, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0x01
	cases := []struct {
		name string
		data []byte
		args []string
	}{
		{"Truncated", frame[:len(frame)/2], nil},
		{"BitFlip", flipped, nil},
		{"Garbage", []byte("not a container frame at all"), nil},
		{"Empty", nil, nil},
		{"TooSmallLimit", frame, []string{"-max-out", "16"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := filepath.Join(dir, "bad.pbcf")
			if err := os.WriteFile(bad, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			args := append(append([]string{"-d"}, tc.args...), bad, filepath.Join(dir, "bad.out"))
			err := run(args, &out)
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnostic is not one line: %q", err.Error())
			}
		})
	}
}

func TestFramedModeErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-z", "gzip", "-d", "a", "b"}, &out); err == nil {
		t.Fatal("-z with -d accepted")
	}
	if err := run([]string{"-z", "gzip", "only-one-path"}, &out); err == nil {
		t.Fatal("missing output path accepted")
	}
	if err := run([]string{"-z", "nope", os.DevNull, "x"}, &out); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
