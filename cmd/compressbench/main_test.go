package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positbench/internal/stats"
)

func writeField(t *testing.T, dir, name string, n int) string {
	t.Helper()
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		v := float32(math.Sin(float64(i)/30) + 2)
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSubset(t *testing.T) {
	dir := t.TempDir()
	f1 := writeField(t, dir, "a.f32", 2000)
	f2 := writeField(t, dir, "b.f32", 1000)
	var out bytes.Buffer
	if err := run([]string{"-codecs", "lz4,gzip", "-verify", f1, f2}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"a.f32", "b.f32", "geomean", "lz4", "gzip"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "xz") {
		t.Error("unrequested codec in output")
	}
}

func TestRunWithLC(t *testing.T) {
	dir := t.TempDir()
	f := writeField(t, dir, "c.f32", 1500)
	var out bytes.Buffer
	if err := run([]string{"-codecs", "lz4,lc", f}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "|") { // pipeline string present
		t.Fatalf("LC pipeline missing:\n%s", out.String())
	}
}

// TestRunJSON checks the machine-readable report: valid schema, per-cell
// ratios, LC pipeline detail, and geomeans over requested codecs only.
func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	f1 := writeField(t, dir, "a.f32", 2000)
	f2 := writeField(t, dir, "b.f32", 1000)
	var out bytes.Buffer
	if err := run([]string{"-json", "-codecs", "lz4,gzip,lc", f1, f2}, &out); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	var rep stats.RatioReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a RatioReport: %v\n%s", err, out.String())
	}
	if want := []string{"lz4", "gzip", "lc"}; len(rep.Codecs) != len(want) {
		t.Fatalf("codecs = %v, want %v", rep.Codecs, want)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d on clean inputs", rep.Errors)
	}
	if len(rep.Files) != 2 || len(rep.Files[0].Cells) != 3 {
		t.Fatalf("report shape: %d files x %d cells", len(rep.Files), len(rep.Files[0].Cells))
	}
	for _, f := range rep.Files {
		for _, c := range f.Cells {
			if c.Ratio <= 0 {
				t.Fatalf("%s/%s ratio = %v", f.File, c.Codec, c.Ratio)
			}
			if c.Codec == "lc" && !strings.Contains(c.Detail, "|") {
				t.Fatalf("lc cell missing pipeline detail: %+v", c)
			}
		}
	}
	for _, codec := range []string{"lz4", "gzip", "lc"} {
		if rep.GeoMeans[codec] <= 0 {
			t.Fatalf("geomean missing for %s: %v", codec, rep.GeoMeans)
		}
	}
}

// TestRunJSONCellFailure: a failed row still renders (full picture for CI)
// but the run exits non-zero, and healthy rows keep their numbers.
func TestRunJSONCellFailure(t *testing.T) {
	dir := t.TempDir()
	good := writeField(t, dir, "good.f32", 1000)
	missing := filepath.Join(dir, "missing.f32")
	var out bytes.Buffer
	err := run([]string{"-json", "-codecs", "gzip", good, missing}, &out)
	if err == nil {
		t.Fatal("run with a failed cell exited clean")
	}
	var rep stats.RatioReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("failed run still must emit the report: %v\n%s", err, out.String())
	}
	if rep.Errors != 1 {
		t.Fatalf("errors = %d, want 1", rep.Errors)
	}
	if rep.Files[0].Cells[0].Error != "" || rep.Files[0].Cells[0].Ratio <= 0 {
		t.Fatalf("healthy cell damaged: %+v", rep.Files[0].Cells[0])
	}
	if rep.Files[1].Cells[0].Error == "" {
		t.Fatalf("failed cell missing its error: %+v", rep.Files[1].Cells[0])
	}
	if rep.GeoMeans["gzip"] <= 0 {
		t.Fatalf("geomean must still cover the healthy cells: %v", rep.GeoMeans)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no files accepted")
	}
	if err := run([]string{"-codecs", "nope", "x"}, &out); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if err := run([]string{"/definitely/missing/file"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Corrupt or truncated framed input must yield a one-line error from run
// (and thus a non-zero exit from main), never a panic or a stack trace.
func TestFramedRoundtripAndCorruptInput(t *testing.T) {
	dir := t.TempDir()
	orig := writeField(t, dir, "in.f32", 3000)
	blob := filepath.Join(dir, "in.pbcf")
	var out bytes.Buffer
	if err := run([]string{"-z", "gzip", orig, blob}, &out); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.f32")
	if err := run([]string{"-d", blob, back}, &out); err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(orig)
	got, _ := os.ReadFile(back)
	if !bytes.Equal(want, got) {
		t.Fatal("framed roundtrip mismatch")
	}

	frame, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0x01
	cases := []struct {
		name string
		data []byte
		args []string
	}{
		{"Truncated", frame[:len(frame)/2], nil},
		{"BitFlip", flipped, nil},
		{"Garbage", []byte("not a container frame at all"), nil},
		{"Empty", nil, nil},
		{"TooSmallLimit", frame, []string{"-max-out", "16"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := filepath.Join(dir, "bad.pbcf")
			if err := os.WriteFile(bad, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			args := append(append([]string{"-d"}, tc.args...), bad, filepath.Join(dir, "bad.out"))
			err := run(args, &out)
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnostic is not one line: %q", err.Error())
			}
		})
	}
}

func TestFramedModeErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-z", "gzip", "-d", "a", "b"}, &out); err == nil {
		t.Fatal("-z with -d accepted")
	}
	if err := run([]string{"-z", "gzip", "only-one-path"}, &out); err == nil {
		t.Fatal("missing output path accepted")
	}
	if err := run([]string{"-z", "nope", os.DevNull, "x"}, &out); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
