// Command lcsearch enumerates every 3-stage LC pipeline on one or more
// files and prints the leaderboard, mirroring the paper's Section 4.3
// methodology (global best pipeline by geometric mean, or per-file bests).
//
// Usage:
//
//	lcsearch [-top 10] [-per-file] file1 [file2 ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"positbench/internal/lc"
	"positbench/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcsearch: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lcsearch", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	top := fs.Int("top", 10, "pipelines to show per leaderboard")
	perFile := fs.Bool("per-file", false, "report each file's own best pipeline instead of the global leaderboard")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("need at least one input file")
	}
	fmt.Fprintf(stdout, "searching %d pipelines over %d components\n",
		lc.PipelineCount(), len(lc.Components()))

	inputs := make([][]byte, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		inputs[i] = data
	}
	perInput, err := lc.SearchAllMulti(inputs)
	if err != nil {
		return err
	}

	if *perFile {
		best, err := lc.SelectPerFile(perInput)
		if err != nil {
			return err
		}
		t := stats.NewTable("File", "Best pipeline", "Ratio")
		var rs []float64
		for i, r := range best {
			t.AddRow(filepath.Base(files[i]),
				r.Names[0]+"|"+r.Names[1]+"|"+r.Names[2],
				fmt.Sprintf("%.3f", r.Ratio))
			rs = append(rs, r.Ratio)
		}
		t.AddRow("geomean", "", fmt.Sprintf("%.3f", stats.GeoMean(rs)))
		fmt.Fprint(stdout, t.String())
		return nil
	}

	pipe, results, err := lc.SelectGlobal(perInput)
	if err != nil {
		return err
	}
	var rs []float64
	for _, r := range results {
		rs = append(rs, r.Ratio)
	}
	fmt.Fprintf(stdout, "global best pipeline: %s (geomean %.3f)\n\n", pipe, stats.GeoMean(rs))
	for i, f := range files {
		fmt.Fprintf(stdout, "top pipelines for %s:\n", filepath.Base(f))
		n := *top
		if n > len(perInput[i]) {
			n = len(perInput[i])
		}
		t := stats.NewTable("Pipeline", "Bytes", "Ratio")
		for _, r := range perInput[i][:n] {
			t.AddRow(r.Names[0]+"|"+r.Names[1]+"|"+r.Names[2], r.Size,
				fmt.Sprintf("%.3f", r.Ratio))
		}
		fmt.Fprint(stdout, t.String())
		fmt.Fprintln(stdout)
	}
	return nil
}
