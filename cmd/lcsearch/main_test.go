package main

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeField(t *testing.T, dir, name string, n int) string {
	t.Helper()
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		v := float32(math.Sin(float64(i)/25) * 5)
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGlobalLeaderboard(t *testing.T) {
	dir := t.TempDir()
	f1 := writeField(t, dir, "a.f32", 1024)
	f2 := writeField(t, dir, "b.f32", 512)
	var out bytes.Buffer
	if err := run([]string{"-top", "3", f1, f2}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "global best pipeline:") {
		t.Fatalf("missing global line:\n%s", s)
	}
	if !strings.Contains(s, "top pipelines for a.f32") || !strings.Contains(s, "top pipelines for b.f32") {
		t.Fatalf("missing per-file leaderboards:\n%s", s)
	}
}

func TestPerFileMode(t *testing.T) {
	dir := t.TempDir()
	f := writeField(t, dir, "a.f32", 800)
	var out bytes.Buffer
	if err := run([]string{"-per-file", f}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "geomean") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no files accepted")
	}
	if err := run([]string{"/no/such/file"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}
