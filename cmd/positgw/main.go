// Command positgw fronts a fleet of positd backends with a resilient,
// sharding reverse proxy: consistent-hash routing, idempotency-aware
// retries with capped exponential backoff, latency-triggered hedging, a
// circuit breaker and active health checks per backend, and a graceful
// drain that flips /readyz before the listener closes.
//
// Usage:
//
//	positgw -backends host:port,host:port,... [-addr :8090]
//	        [-max-tries N] [-per-try-timeout D] [-hedge-after D]
//	        [-max-buffer N] [-breaker-threshold N] [-breaker-cooldown D]
//	        [-probe-interval D] [-probe-path P] [-drain D] [-drain-grace D]
//	        [-addr-file PATH] [-quiet]
//
// On SIGINT/SIGTERM the gateway first flips its own /readyz to 503, waits
// -drain-grace so upstream balancers observe the flip while the listener
// still answers, then drains in-flight requests for up to -drain. The exit
// code reports whether the drain completed (0) or was cut off (1).
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"positbench/internal/gateway"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// writeAddrFile records a bound address via atomic rename, so a polling
// script never reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func run(args []string) int {
	fs := flag.NewFlagSet("positgw", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8090", "listen address (host:port; port 0 picks a free port)")
		addrFile   = fs.String("addr-file", "", "write the bound listen address to this file once serving (for scripts)")
		backends   = fs.String("backends", "", "comma-separated positd backends (host:port or http://host:port); required")
		maxTries   = fs.Int("max-tries", 0, "max backends one request may be tried against; 0 selects the default")
		perTry     = fs.Duration("per-try-timeout", 0, "deadline for each individual try; 0 selects the default, <0 disables")
		hedgeAfter = fs.Duration("hedge-after", 0, "launch a hedge try when the current one stalls this long; 0 selects the default, <0 disables")
		maxBuffer  = fs.Int64("max-buffer", 0, "request/response buffering cap, bytes; larger bodies stream once, unretried; 0 selects the default")
		brkThresh  = fs.Int("breaker-threshold", 0, "consecutive failures that open a backend's circuit breaker; 0 selects the default")
		brkCool    = fs.Duration("breaker-cooldown", 0, "time a breaker stays open before a half-open probe; 0 selects the default")
		probeEvery = fs.Duration("probe-interval", 0, "active health-check period; 0 selects the default, <0 disables")
		probePath  = fs.String("probe-path", "", "backend readiness endpoint; default /readyz")
		failThresh = fs.Int("fail-threshold", 0, "consecutive probe failures that eject a backend; 0 selects the default")
		riseThresh = fs.Int("rise-threshold", 0, "consecutive probe successes that recover a backend; 0 selects the default")
		drain      = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight requests")
		drainGrace = fs.Duration("drain-grace", time.Second, "pause between flipping /readyz unready and closing the listener")
		traces     = fs.Int("traces", 0, "gateway-trace ring size; 0 selects the default, <0 disables tracing")
		quiet      = fs.Bool("quiet", false, "silence the per-request access log")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *backends == "" {
		log.Printf("positgw: -backends is required")
		return 2
	}
	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}

	var accessLog io.Writer
	if *quiet {
		accessLog = io.Discard
	}
	gw, err := gateway.New(gateway.Config{
		Backends:         list,
		MaxTries:         *maxTries,
		PerTryTimeout:    *perTry,
		HedgeAfter:       *hedgeAfter,
		MaxBufferBytes:   *maxBuffer,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		ProbeInterval:    *probeEvery,
		ProbeTimeout:     0,
		ProbePath:        *probePath,
		FailThreshold:    *failThresh,
		RiseThreshold:    *riseThresh,
		TraceCapacity:    *traces,
		AccessLog:        accessLog,
	})
	if err != nil {
		log.Printf("positgw: %v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("positgw: listen %s: %v", *addr, err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, bound); err != nil {
			log.Printf("positgw: write addr-file: %v", err)
			return 1
		}
		defer os.Remove(*addrFile)
	}

	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	gw.StartProbes(probeCtx)

	hs := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("positgw: serving on %s, backends %s", bound, strings.Join(gw.Backends(), ", "))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-stop:
		// Drain ordering: advertise unready first, keep answering while
		// balancers notice, then stop accepting and let in-flight work
		// finish.
		log.Printf("positgw: %v: flipping /readyz, draining in %v", sig, *drainGrace)
		gw.SetDraining(true)
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("positgw: drain cut off: %v", err)
			hs.Close()
			return 1
		}
		log.Printf("positgw: drained clean")
		return 0
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Printf("positgw: serve: %v", err)
			return 1
		}
		return 0
	}
}
