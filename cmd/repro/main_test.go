package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTablesOnly(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "table1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bzip2") {
		t.Fatalf("table1 output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exp", "table2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CESM") {
		t.Fatalf("table2 output:\n%s", out.String())
	}
}

func TestPrecisionExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "precision", "-values", "4096"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "geomean") || !strings.Contains(s, "es=3") {
		t.Fatalf("precision output:\n%s", s)
	}
}

func TestFig5Experiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "fig5", "-values", "4096"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "AEROD") {
		t.Fatalf("fig5 output:\n%s", out.String())
	}
}

func TestVerboseProgressGoesToStderr(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "table3", "-values", "1024", "-v"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "prepared") {
		t.Errorf("expected progress on stderr, got %q", errOut.String())
	}
	if strings.Contains(out.String(), "prepared") {
		t.Error("progress leaked to stdout")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// Bad arguments must produce a one-line error (non-zero exit), not a usage
// panic or stack trace.
func TestBadArguments(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"UnknownExperiment", []string{"-exp", "fig99"}},
		{"UnknownFlag", []string{"-definitely-not-a-flag"}},
		{"BadValues", []string{"-values", "not-a-number"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			err := run(tc.args, &out, &errOut)
			if err == nil {
				t.Fatal("bad arguments accepted")
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnostic is not one line: %q", err.Error())
			}
		})
	}
}
