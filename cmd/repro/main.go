// Command repro regenerates every table and figure of the paper from the
// synthetic SDRBench substitutes:
//
//	Table 1   compressor inventory
//	Table 2   dataset inventory
//	Table 3   input inventory
//	precision Section 4.2 posit<32,3> vs <32,2> conversion precision
//	fig3      geomean compression ratios, IEEE encoding
//	fig4      geomean compression ratios, posit encoding (+ deltas)
//	fig5      biased-exponent histograms per input
//	fig6      per-file vs global LC pipelines
//
// Usage:
//
//	repro [-exp all|table1|table2|table3|precision|fig3|fig4|fig5|fig6|ext|auto]
//	      [-values N] [-p N] [-verify] [-v]
//
// The "ext" experiment runs this work's extension: the special-purpose
// posit field compressor (internal/positpack) against the best
// general-purpose codec per input. The "auto" experiment scores the
// adaptive codec advisor (internal/advisor): its sample-driven pick per
// input, as an eighth column next to the seven registry codecs, against
// the exhaustive per-file best.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"positbench/internal/core"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	exp := fs.String("exp", "all", "experiment to reproduce")
	values := fs.Int("values", sdrbench.DefaultValues, "float32 values per input")
	verify := fs.Bool("verify", false, "roundtrip-verify every compression")
	workers := fs.Int("p", 0, "worker parallelism for input prep and codec runs (0 = GOMAXPROCS)")
	verbose := fs.Bool("v", false, "print per-measurement progress")
	csvDir := fs.String("csv", "", "also write per-figure CSV files into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	needStudy := map[string]bool{
		"all": true, "table3": true, "precision": true,
		"fig3": true, "fig4": true, "fig5": true, "fig6": true, "ext": true,
		"auto": true,
	}
	needLC := map[string]bool{"all": true, "fig3": true, "fig4": true, "fig6": true}

	switch *exp {
	case "table1":
		fmt.Fprintln(stdout, "Table 1: evaluated compressors")
		fmt.Fprint(stdout, core.Table1())
		return nil
	case "table2":
		fmt.Fprintln(stdout, "Table 2: datasets")
		fmt.Fprint(stdout, core.Table2())
		return nil
	}
	if !needStudy[*exp] {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	// -p bounds both the study's goroutines and the posit batch converters
	// they call into (otherwise each converter fans out to GOMAXPROCS on
	// its own and the effective parallelism multiplies).
	posit.SetBatchWorkers(*workers)
	opts := core.Options{
		ValuesPerInput: *values,
		WithLC:         needLC[*exp],
		Verify:         *verify,
		Workers:        *workers,
	}
	if *verbose {
		opts.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	st, err := core.Run(opts)
	if err != nil {
		return err
	}
	if *csvDir != "" {
		if err := st.WriteCSVs(*csvDir); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote CSV files to %s\n", *csvDir)
	}

	show := func(name string) bool { return *exp == "all" || *exp == name }
	if show("table1") || *exp == "all" {
		fmt.Fprintln(stdout, "Table 1: evaluated compressors")
		fmt.Fprint(stdout, core.Table1())
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "Table 2: datasets")
		fmt.Fprint(stdout, core.Table2())
		fmt.Fprintln(stdout)
	}
	if show("table3") {
		fmt.Fprintln(stdout, "Table 3: inputs")
		fmt.Fprint(stdout, st.Table3())
		fmt.Fprintln(stdout)
	}
	if show("precision") {
		fmt.Fprintln(stdout, "Section 4.2: posit conversion precision (% of exactly preserved values)")
		fmt.Fprint(stdout, st.RenderPrecision())
		fmt.Fprintln(stdout)
	}
	if show("fig3") {
		fmt.Fprint(stdout, core.RenderFigure("Figure 3: geomean compression ratios, IEEE float encoding", st.Figure3(), false))
		fmt.Fprintln(stdout)
	}
	if show("fig4") {
		fmt.Fprint(stdout, core.RenderFigure("Figure 4: geomean compression ratios, posit<32,3> encoding", st.Figure4(), true))
		fmt.Fprintln(stdout)
	}
	if show("fig5") {
		fmt.Fprintln(stdout, "Figure 5: % of values per biased exponent")
		fmt.Fprint(stdout, st.Figure5())
		fmt.Fprintln(stdout)
	}
	if show("fig6") {
		out, err := st.RenderFigure6()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "Figure 6: global vs per-file LC pipelines")
		fmt.Fprint(stdout, out)
		fmt.Fprintln(stdout)
	}
	if show("ext") {
		out, err := st.RenderSpecialPurpose()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "Extension: special-purpose posit compressor (positpack) on posit data")
		fmt.Fprint(stdout, out)
		fmt.Fprintln(stdout)
	}
	if show("auto") {
		out, err := st.RenderAutoStudy()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "Extension: adaptive codec selection (advisor pick vs per-file best)")
		fmt.Fprint(stdout, out)
		fmt.Fprintln(stdout)
	}
	if *exp == "all" {
		fmt.Fprintln(stdout, "All measurements:")
		fmt.Fprint(stdout, st.RenderMeasurements())
	}
	return nil
}
