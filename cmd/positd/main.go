// Command positd serves the positbench codec registry and conversion
// pipeline over HTTP: streaming compression and decompression, float32 <->
// posit batch conversion, and IEEE-754 field analysis, with the production
// posture (body caps, decode limits, admission control, request deadlines,
// graceful drain) configured from flags.
//
// Usage:
//
//	positd [-addr :8080] [-max-body N] [-max-out N] [-inflight N]
//	       [-timeout D] [-chunk N] [-workers N] [-drain D] [-drain-grace D]
//	       [-addr-file PATH] [-pprof ADDR] [-traces N]
//	       [-store-bytes N] [-cache-bytes N]
//
// -pprof exposes net/http/pprof and GET /debug/traces (the recent-request
// trace ring) on its own listener, never on the serving mux: profiling and
// trace endpoints leak heap contents and request shapes, and must not
// share the public address. Bind it to loopback (e.g. -pprof
// 127.0.0.1:6060).
//
// The process runs until SIGINT or SIGTERM, then drains: the listener
// closes immediately, in-flight requests get up to -drain to finish, and
// the exit code reports whether the drain completed (0) or was cut off (1).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"positbench/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// writeAddrFile records a bound address via atomic rename, so a polling
// script never reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func run(args []string) int {
	fs := flag.NewFlagSet("positd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile   = fs.String("addr-file", "", "write the bound listen address to this file once serving (for scripts)")
		maxBody    = fs.Int64("max-body", server.DefaultMaxBodyBytes, "hard cap on any request body, bytes")
		maxOut     = fs.Int64("max-out", 0, "cap on decoded bytes per chunk; 0 selects the compress package default")
		inflight   = fs.Int("inflight", server.DefaultMaxInflight, "max concurrently served API requests; excess load is shed with 429")
		timeout    = fs.Duration("timeout", server.DefaultRequestTimeout, "per-request deadline; <0 disables")
		chunk      = fs.Int("chunk", 0, "streaming chunk size, bytes; 0 selects the compress package default")
		workers    = fs.Int("workers", 0, "worker pool size per request; 0 selects GOMAXPROCS")
		drain      = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight requests")
		drainGrace = fs.Duration("drain-grace", 0, "pause between flipping /readyz unready and closing the listener, so balancers stop routing here first")
		pprofAt    = fs.String("pprof", "", "expose net/http/pprof and /debug/traces on this separate address (empty disables; keep it on loopback)")
		traces     = fs.Int("traces", 0, "request-trace ring size; 0 selects the default, <0 disables tracing")
		storeBytes = fs.Int64("store-bytes", server.DefaultMaxStoreBytes, "object store budget, bytes; PUTs past it are refused with 507")
		cacheBytes = fs.Int64("cache-bytes", server.DefaultChunkCacheBytes, "decoded chunk cache budget, bytes; <0 disables the cache")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv, err := server.New(server.Config{
		MaxBodyBytes:    *maxBody,
		MaxOutputBytes:  *maxOut,
		MaxInflight:     *inflight,
		RequestTimeout:  *timeout,
		ChunkSize:       *chunk,
		Workers:         *workers,
		TraceCapacity:   *traces,
		MaxStoreBytes:   *storeBytes,
		ChunkCacheBytes: *cacheBytes,
	})
	if err != nil {
		log.Printf("positd: %v", err)
		return 1
	}
	// Unready until the listener is actually accepting: a router probing
	// /readyz during startup must not route here yet.
	srv.SetReady(false)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("positd: listen %s: %v", *addr, err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, bound); err != nil {
			log.Printf("positd: write addr-file: %v", err)
			return 1
		}
		defer os.Remove(*addrFile)
	}

	if *pprofAt != "" {
		// A dedicated mux on a dedicated listener: the serving mux never
		// learns these routes, so a misconfigured proxy cannot reach them
		// through the public address.
		pln, err := net.Listen("tcp", *pprofAt)
		if err != nil {
			log.Printf("positd: pprof listen %s: %v", *pprofAt, err)
			return 1
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Request traces ride the debug listener for the same reason as
		// pprof: span trees carry request paths and sizes.
		pmux.Handle("/debug/traces", srv.DebugTracesHandler())
		ps := &http.Server{Handler: pmux}
		defer ps.Close() // debug-only: no drain, just stop with the process
		go func() {
			if err := ps.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("positd: pprof serve: %v", err)
			}
		}()
		if *addrFile != "" {
			// Scripts resolving a :0 pprof port read <addr-file>.pprof.
			if err := writeAddrFile(*addrFile+".pprof", pln.Addr().String()); err != nil {
				log.Printf("positd: write pprof addr-file: %v", err)
				return 1
			}
			defer os.Remove(*addrFile + ".pprof")
		}
		log.Printf("positd: pprof on %s", pln.Addr())
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	srv.SetReady(true)
	log.Printf("positd: serving on %s", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-stop:
		// Drain ordering: flip /readyz first and keep the listener open for
		// -drain-grace, so health checkers observe unready and eject this
		// backend before connections start being refused; then drain.
		log.Printf("positd: %v: flipping /readyz, draining for up to %v", sig, *drain)
		srv.SetReady(false)
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("positd: drain cut off: %v", err)
			hs.Close()
			return 1
		}
		log.Printf("positd: drained clean")
		return 0
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Printf("positd: serve: %v", err)
			return 1
		}
		return 0
	}
}
