// Command positd serves the positbench codec registry and conversion
// pipeline over HTTP: streaming compression and decompression, float32 <->
// posit batch conversion, and IEEE-754 field analysis, with the production
// posture (body caps, decode limits, admission control, request deadlines,
// graceful drain) configured from flags.
//
// Usage:
//
//	positd [-addr :8080] [-max-body N] [-max-out N] [-inflight N]
//	       [-timeout D] [-chunk N] [-workers N] [-drain D] [-addr-file PATH]
//
// The process runs until SIGINT or SIGTERM, then drains: the listener
// closes immediately, in-flight requests get up to -drain to finish, and
// the exit code reports whether the drain completed (0) or was cut off (1).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"positbench/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("positd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile = fs.String("addr-file", "", "write the bound listen address to this file once serving (for scripts)")
		maxBody  = fs.Int64("max-body", server.DefaultMaxBodyBytes, "hard cap on any request body, bytes")
		maxOut   = fs.Int64("max-out", 0, "cap on decoded bytes per chunk; 0 selects the compress package default")
		inflight = fs.Int("inflight", server.DefaultMaxInflight, "max concurrently served API requests; excess load is shed with 429")
		timeout  = fs.Duration("timeout", server.DefaultRequestTimeout, "per-request deadline; <0 disables")
		chunk    = fs.Int("chunk", 0, "streaming chunk size, bytes; 0 selects the compress package default")
		workers  = fs.Int("workers", 0, "worker pool size per request; 0 selects GOMAXPROCS")
		drain    = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv, err := server.New(server.Config{
		MaxBodyBytes:   *maxBody,
		MaxOutputBytes: *maxOut,
		MaxInflight:    *inflight,
		RequestTimeout: *timeout,
		ChunkSize:      *chunk,
		Workers:        *workers,
	})
	if err != nil {
		log.Printf("positd: %v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("positd: listen %s: %v", *addr, err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Atomic rename so a polling script never reads a half-written file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			log.Printf("positd: write addr-file: %v", err)
			return 1
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Printf("positd: write addr-file: %v", err)
			return 1
		}
		defer os.Remove(*addrFile)
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("positd: serving on %s", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-stop:
		log.Printf("positd: %v: draining for up to %v", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("positd: drain cut off: %v", err)
			hs.Close()
			return 1
		}
		log.Printf("positd: drained clean")
		return 0
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Printf("positd: serve: %v", err)
			return 1
		}
		return 0
	}
}
