package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunServeAndDrain boots the daemon on a random port, round-trips a
// body through it, then sends SIGTERM and expects a clean (exit 0) drain.
func TestRunServeAndDrain(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	exitC := make(chan int, 1)
	go func() {
		exitC <- run([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-drain", "5s"})
	}()

	addr := waitForAddr(t, addrFile)
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	orig := bytes.Repeat([]byte("positd smoke payload "), 512)
	comp := postOK(t, base+"/v1/compress/gzip", orig)
	back := postOK(t, base+"/v1/decompress", comp)
	if !bytes.Equal(back, orig) {
		t.Fatalf("roundtrip mismatch: %d in, %d out", len(orig), len(back))
	}

	// SIGTERM to our own process reaches the daemon's signal handler.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitC:
		if code != 0 {
			t.Fatalf("run exited %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if _, err := os.Stat(addrFile); !os.IsNotExist(err) {
		t.Fatalf("addr-file not cleaned up: %v", err)
	}
}

// TestRunPprofListener verifies the -pprof endpoints answer on their own
// listener and are NOT routed through the serving mux.
func TestRunPprofListener(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	exitC := make(chan int, 1)
	go func() {
		exitC <- run([]string{"-addr", "127.0.0.1:0", "-pprof", "127.0.0.1:0", "-addr-file", addrFile, "-drain", "5s"})
	}()

	addr := waitForAddr(t, addrFile)
	pprofAddr := waitForAddr(t, addrFile+".pprof")

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof listener: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof endpoints are reachable through the serving mux")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitC:
		if code != 0 {
			t.Fatalf("run exited %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}

// TestRunDrainGraceFlipsReadyz pins the drain ordering: after SIGTERM the
// daemon answers 503 on /readyz (and still 200 on /healthz) while the
// listener stays open for -drain-grace, then exits clean.
func TestRunDrainGraceFlipsReadyz(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	exitC := make(chan int, 1)
	go func() {
		exitC <- run([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-drain", "5s", "-drain-grace", "700ms"})
	}()
	addr := waitForAddr(t, addrFile)
	base := "http://" + addr

	status := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			return -1
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", got)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Within the grace window the listener must still answer — unready on
	// /readyz, alive on /healthz.
	deadline := time.Now().Add(600 * time.Millisecond)
	flipped := false
	for time.Now().Before(deadline) {
		if status("/readyz") == http.StatusServiceUnavailable {
			flipped = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !flipped {
		t.Fatal("readyz never flipped to 503 during the drain grace")
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during drain grace = %d, want 200 (liveness must not flip)", got)
	}
	select {
	case code := <-exitC:
		if code != 0 {
			t.Fatalf("run exited %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after the drain grace")
	}
}

func TestRunBadFlags(t *testing.T) {
	if code := run([]string{"-addr"}); code != 2 {
		t.Fatalf("bad flags exited %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:bogus"}); code != 1 {
		t.Fatalf("bad listen address exited %d, want 1", code)
	}
}

func waitForAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if blob, err := os.ReadFile(path); err == nil {
			return strings.TrimSpace(string(blob))
		}
		if time.Now().After(deadline) {
			t.Fatal("addr-file never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postOK(t *testing.T, url string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s = %d: %s", url, resp.StatusCode, out)
	}
	return out
}
