package positbench_test

// One benchmark per table and figure of the paper, plus ablations over the
// design choices DESIGN.md calls out. Each benchmark both times the
// regeneration and reports the headline metric of its artifact via
// b.ReportMetric, so `go test -bench=.` reprints the paper's numbers.
//
// Benchmarks run at a reduced per-input size (benchValues) so the full
// suite finishes in minutes; cmd/repro regenerates the same artifacts at
// full scale.

import (
	"sync"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/compress/bzip2c"
	"positbench/internal/compress/xzc"
	"positbench/internal/core"
	"positbench/internal/ieee"
	"positbench/internal/lc"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
	"positbench/internal/stats"
)

const benchValues = 1 << 15 // 128 KiB per input

var (
	studyOnce sync.Once
	study     *core.Study
	studyErr  error
)

// benchStudy runs the full study (with LC) once and caches it.
func benchStudy(b *testing.B) *core.Study {
	studyOnce.Do(func() {
		study, studyErr = core.Run(core.Options{
			ValuesPerInput: benchValues,
			WithLC:         true,
		})
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return study
}

// BenchmarkTable1Compressors regenerates the compressor inventory.
func BenchmarkTable1Compressors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Datasets regenerates the dataset inventory.
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3InputGeneration regenerates all 14 synthetic inputs.
func BenchmarkTable3InputGeneration(b *testing.B) {
	specs := sdrbench.Inputs()
	b.SetBytes(int64(len(specs) * benchValues * 4))
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			if len(spec.Generate(benchValues)) != benchValues {
				b.Fatal("bad generation")
			}
		}
	}
}

// BenchmarkPrecisionStudy regenerates Section 4.2: the es=3 vs es=2
// roundtrip-precision geomeans over all 14 inputs.
func BenchmarkPrecisionStudy(b *testing.B) {
	inputs := make([][]float32, 0, 14)
	for _, spec := range sdrbench.Inputs() {
		inputs = append(inputs, spec.Generate(benchValues))
	}
	b.ResetTimer()
	var g3, g2 float64
	for i := 0; i < b.N; i++ {
		var l3, l2 []float64
		for _, vals := range inputs {
			l3 = append(l3, posit.Posit32e3.RoundtripStats(vals).PrecisePct())
			l2 = append(l2, posit.Posit32.RoundtripStats(vals).PrecisePct())
		}
		g3, g2 = stats.GeoMean(l3), stats.GeoMean(l2)
	}
	b.ReportMetric(g3, "es3-precise-%")
	b.ReportMetric(g2, "es2-precise-%")
}

// BenchmarkFig3FloatRatios regenerates Figure 3 (geomean compression
// ratios on IEEE data) and reports each codec's ratio.
func BenchmarkFig3FloatRatios(b *testing.B) {
	st := benchStudy(b)
	b.ResetTimer()
	var bars []core.FigureBar
	for i := 0; i < b.N; i++ {
		bars = st.Figure3()
	}
	for _, bar := range bars {
		b.ReportMetric(bar.Ratio, bar.Codec+"-CR")
	}
}

// BenchmarkFig4PositRatios regenerates Figure 4 (geomean ratios on posit
// data) and reports each codec's percentage delta against IEEE.
func BenchmarkFig4PositRatios(b *testing.B) {
	st := benchStudy(b)
	b.ResetTimer()
	var bars []core.FigureBar
	for i := 0; i < b.N; i++ {
		bars = st.Figure4()
	}
	for _, bar := range bars {
		b.ReportMetric(bar.Ratio, bar.Codec+"-CR")
		b.ReportMetric(bar.DeltaPct, bar.Codec+"-delta-%")
	}
}

// BenchmarkFig5ExponentHistogram regenerates the per-input biased-exponent
// distributions.
func BenchmarkFig5ExponentHistogram(b *testing.B) {
	inputs := make([][]float32, 0, 14)
	for _, spec := range sdrbench.Inputs() {
		inputs = append(inputs, spec.Generate(benchValues))
	}
	b.SetBytes(int64(len(inputs) * benchValues * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, vals := range inputs {
			var h ieee.Histogram
			h.AddSlice(vals)
			if h.Total == 0 {
				b.Fatal("empty histogram")
			}
		}
	}
}

// BenchmarkFig6PerFileLC regenerates Figure 6: per-file LC pipelines vs the
// single global pipeline, reporting the percentage gains.
func BenchmarkFig6PerFileLC(b *testing.B) {
	st := benchStudy(b)
	b.ResetTimer()
	var res []core.Figure6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = st.Figure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.GainPct, string(r.Encoding)+"-perfile-gain-%")
	}
}

// --- ablations ---------------------------------------------------------------

// BenchmarkAblationES sweeps the posit exponent-field width, the design
// choice Section 4.2 justifies: es=3 keeps far more values exact than the
// standard es=2 on data with wide dynamic range.
func BenchmarkAblationES(b *testing.B) {
	vals := mustInput(b, "QRAINf48.bin.f32")
	for _, es := range []uint{0, 1, 2, 3, 4} {
		cfg := posit.Config{N: 32, ES: es}
		b.Run(cfg.String(), func(b *testing.B) {
			var pct float64
			for i := 0; i < b.N; i++ {
				pct = cfg.RoundtripStats(vals).PrecisePct()
			}
			b.ReportMetric(pct, "precise-%")
		})
	}
}

// BenchmarkAblationXZWindow sweeps the xz-class dictionary size, the
// property the paper credits for XZ's lead over the other dictionary
// coders. The input deliberately contains redundancy at ~190 KiB distance
// (a repeated field snapshot, as checkpointed simulation output has), so
// only windows larger than that can exploit it.
func BenchmarkAblationXZWindow(b *testing.B) {
	first := posit.EncodeFloat32LE(mustInput(b, "PRES-98x1200x1200.f32"))
	second := posit.EncodeFloat32LE(mustInput(b, "RH-98x1200x1200.f32"))
	data := append(append(append([]byte(nil), first...), second[:64<<10]...), first...)
	for _, window := range []int{1 << 15, 1 << 17, 1 << 20, 8 << 20} {
		codec := xzc.NewParams(window, 128)
		b.Run(byteSize(window), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var r float64
			for i := 0; i < b.N; i++ {
				comp, err := codec.Compress(data)
				if err != nil {
					b.Fatal(err)
				}
				r = compress.Ratio(len(data), len(comp))
			}
			b.ReportMetric(r, "CR")
		})
	}
}

// BenchmarkAblationBzip2Block sweeps the bzip2-class block size (-1 ... -9).
func BenchmarkAblationBzip2Block(b *testing.B) {
	data := posit.EncodeFloat32LE(mustInput(b, "ICEFRAC_1_1800_3600.f32"))
	for _, block := range []int{100 * 1000, 300 * 1000, 900 * 1000} {
		codec := bzip2c.NewBlockSize(block)
		b.Run(byteSize(block), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var r float64
			for i := 0; i < b.N; i++ {
				comp, err := codec.Compress(data)
				if err != nil {
					b.Fatal(err)
				}
				r = compress.Ratio(len(data), len(comp))
			}
			b.ReportMetric(r, "CR")
		})
	}
}

// BenchmarkAblationLCStages compares the best 1-, 2-, and 3-stage LC
// pipelines (NUL padding makes shallower pipelines a subset of the search).
func BenchmarkAblationLCStages(b *testing.B) {
	data := posit.EncodeFloat32LE(mustInput(b, "einspline.f32"))
	results, err := lc.SearchAll(data)
	if err != nil {
		b.Fatal(err)
	}
	best := func(maxReal int) float64 {
		for _, r := range results {
			real := 0
			for _, n := range r.Names {
				if n != "NUL" {
					real++
				}
			}
			if real <= maxReal {
				return r.Ratio
			}
		}
		return 0
	}
	b.Run("stages", func(b *testing.B) {
		var r1, r2, r3 float64
		for i := 0; i < b.N; i++ {
			r1, r2, r3 = best(1), best(2), best(3)
		}
		b.ReportMetric(r1, "1-stage-CR")
		b.ReportMetric(r2, "2-stage-CR")
		b.ReportMetric(r3, "3-stage-CR")
	})
}

// BenchmarkCodecsThroughput measures end-to-end compress throughput of
// every codec on one representative input in both encodings.
func BenchmarkCodecsThroughput(b *testing.B) {
	vals := mustInput(b, "PRES-98x1200x1200.f32")
	ieeeBytes := posit.EncodeFloat32LE(vals)
	positBytes := posit.EncodeWordsLE(posit.Posit32e3.FromFloat32Slice(nil, vals))
	for _, enc := range []struct {
		name string
		data []byte
	}{{"ieee", ieeeBytes}, {"posit", positBytes}} {
		for _, codec := range all.Codecs() {
			b.Run(codec.Name()+"/"+enc.name, func(b *testing.B) {
				b.SetBytes(int64(len(enc.data)))
				var r float64
				for i := 0; i < b.N; i++ {
					comp, err := codec.Compress(enc.data)
					if err != nil {
						b.Fatal(err)
					}
					r = compress.Ratio(len(enc.data), len(comp))
				}
				b.ReportMetric(r, "CR")
			})
		}
	}
}

// BenchmarkDecompressThroughput measures decompression speed for every
// codec — together with BenchmarkCodecsThroughput this covers the
// throughput study the paper defers to future work.
func BenchmarkDecompressThroughput(b *testing.B) {
	vals := mustInput(b, "PRES-98x1200x1200.f32")
	for _, enc := range []struct {
		name string
		data []byte
	}{
		{"ieee", posit.EncodeFloat32LE(vals)},
		{"posit", posit.EncodeWordsLE(posit.Posit32e3.FromFloat32Slice(nil, vals))},
	} {
		for _, codec := range all.Codecs() {
			comp, err := codec.Compress(enc.data)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(codec.Name()+"/"+enc.name, func(b *testing.B) {
				b.SetBytes(int64(len(enc.data)))
				for i := 0; i < b.N; i++ {
					if _, err := codec.Decompress(comp); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPositConversionThroughput measures the float->posit->float
// conversion pipeline, the cost a posit-storing workflow pays once per file.
func BenchmarkPositConversionThroughput(b *testing.B) {
	vals := mustInput(b, "velocity_x.f32")
	words := make([]uint32, len(vals))
	back := make([]float32, len(vals))
	b.SetBytes(int64(8 * len(vals)))
	for i := 0; i < b.N; i++ {
		posit.Posit32e3.FromFloat32Slice(words, vals)
		posit.Posit32e3.ToFloat32Slice(back, words)
	}
}

func mustInput(b *testing.B, name string) []float32 {
	b.Helper()
	spec, err := sdrbench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return spec.Generate(benchValues)
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return mustItoa(n>>20) + "MiB"
	case n >= 1000:
		return mustItoa(n/1000) + "kB"
	default:
		return mustItoa(n) + "B"
	}
}

func mustItoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
