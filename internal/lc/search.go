package lc

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Result is one pipeline's outcome on one input.
type Result struct {
	Names [PipelineDepth]string // stage names (stable identity for maps)
	Size  int                   // compressed size in bytes (incl. 4-byte header)
	Ratio float64               // original/compressed
}

// Pipeline reconstructs the pipeline for a result.
func (r Result) Pipeline() (Pipeline, error) {
	return NewPipeline(r.Names[:]...)
}

// headerBytes is the LC container overhead (stage count + IDs), charged to
// every pipeline so sizes are comparable with the other codecs.
const headerBytes = 1 + PipelineDepth

// SearchAll evaluates every 3-stage pipeline over the component library on
// data, in parallel, and returns results sorted best (largest ratio) first.
// Ties break lexicographically on the pipeline string so output is
// deterministic.
func SearchAll(data []byte) ([]Result, error) {
	lib := Components()
	nl := len(lib)
	results := make([]Result, 0, nl*nl*nl)
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, s1 := range lib {
		wg.Add(1)
		sem <- struct{}{}
		go func(s1 Component) {
			defer wg.Done()
			defer func() { <-sem }()
			t1, err := s1.Forward(data)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", s1.Name(), err)
				}
				mu.Unlock()
				return
			}
			local := make([]Result, 0, nl*nl)
			for _, s2 := range lib {
				t2, err := s2.Forward(t1)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s|%s: %w", s1.Name(), s2.Name(), err)
					}
					mu.Unlock()
					return
				}
				for _, s3 := range lib {
					t3, err := s3.Forward(t2)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("%s|%s|%s: %w", s1.Name(), s2.Name(), s3.Name(), err)
						}
						mu.Unlock()
						return
					}
					size := len(t3) + headerBytes
					local = append(local, Result{
						Names: [PipelineDepth]string{s1.Name(), s2.Name(), s3.Name()},
						Size:  size,
						Ratio: float64(len(data)) / float64(size),
					})
				}
			}
			mu.Lock()
			results = append(results, local...)
			mu.Unlock()
		}(s1)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sortResults(results)
	return results, nil
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Size != rs[j].Size {
			return rs[i].Size < rs[j].Size
		}
		return pipeKey(rs[i].Names) < pipeKey(rs[j].Names)
	})
}

func pipeKey(names [PipelineDepth]string) string {
	return names[0] + "|" + names[1] + "|" + names[2]
}

// SearchAllMulti runs SearchAll on every input, preserving order. The
// result sets can be fed to both SelectGlobal and SelectPerFile without
// re-running the (expensive) search.
func SearchAllMulti(inputs [][]byte) ([][]Result, error) {
	perInput := make([][]Result, len(inputs))
	for i, data := range inputs {
		rs, err := SearchAll(data)
		if err != nil {
			return nil, err
		}
		perInput[i] = rs
	}
	return perInput, nil
}

// SelectPerFile picks each input's individually best pipeline from
// precomputed search results (the paper's Figure 6 per-file mode).
func SelectPerFile(perInput [][]Result) ([]Result, error) {
	out := make([]Result, len(perInput))
	for i, rs := range perInput {
		if len(rs) == 0 {
			return nil, fmt.Errorf("lc: input %d has no results", i)
		}
		out[i] = rs[0]
	}
	return out, nil
}

// BestPerFile returns, for each input, the best pipeline found on that
// input alone, preserving input order.
func BestPerFile(inputs [][]byte) ([]Result, error) {
	perInput, err := SearchAllMulti(inputs)
	if err != nil {
		return nil, err
	}
	return SelectPerFile(perInput)
}

// BestGlobal runs the search on every input and returns the single pipeline
// with the highest geometric-mean ratio across all inputs (the paper's
// Section 4.3 selection rule), plus its per-input results.
func BestGlobal(inputs [][]byte) (Pipeline, []Result, error) {
	perInput, err := SearchAllMulti(inputs)
	if err != nil {
		return Pipeline{}, nil, err
	}
	return SelectGlobal(perInput)
}

// SelectGlobal picks the single pipeline with the highest geometric-mean
// ratio across all precomputed result sets.
func SelectGlobal(perInput [][]Result) (Pipeline, []Result, error) {
	inputs := perInput // alias: only the length is used below
	if len(inputs) == 0 {
		return Pipeline{}, nil, fmt.Errorf("lc: no inputs")
	}
	// Accumulate log-ratios per pipeline key.
	type acc struct {
		sumLog float64
		count  int
		names  [PipelineDepth]string
	}
	accs := make(map[string]*acc)
	for _, rs := range perInput {
		for _, r := range rs {
			k := pipeKey(r.Names)
			a, ok := accs[k]
			if !ok {
				a = &acc{names: r.Names}
				accs[k] = a
			}
			a.sumLog += math.Log(r.Ratio)
			a.count++
		}
	}
	bestKey := ""
	bestMean := math.Inf(-1)
	for k, a := range accs {
		if a.count != len(inputs) {
			continue // pipeline failed on some input; not eligible
		}
		mean := a.sumLog / float64(len(inputs))
		if mean > bestMean || (mean == bestMean && k < bestKey) {
			bestMean, bestKey = mean, k
		}
	}
	if bestKey == "" {
		return Pipeline{}, nil, fmt.Errorf("lc: no pipeline succeeded on all inputs")
	}
	names := accs[bestKey].names
	pipe, err := NewPipeline(names[:]...)
	if err != nil {
		return Pipeline{}, nil, err
	}
	// Collect this pipeline's per-input results.
	results := make([]Result, len(inputs))
	for i, rs := range perInput {
		for _, r := range rs {
			if pipeKey(r.Names) == bestKey {
				results[i] = r
				break
			}
		}
	}
	return pipe, results, nil
}

// PipelineCount reports the size of the search space.
func PipelineCount() int {
	n := len(Components())
	return n * n * n
}
