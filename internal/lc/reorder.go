package lc

import (
	"fmt"

	"positbench/internal/bitio"
)

// Reorder components: size-preserving layout shuffles that group bits or
// bytes with similar statistics so a later coding stage can exploit them.

// bitT is the bit transpose ("bit shuffle"): plane 31 of every word first,
// then plane 30, ... down to plane 0. The middle stage of the paper's best
// posit pipeline.
type bitT struct{}

func (bitT) Name() string { return "BIT" }

func (bitT) Forward(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	n := len(words)
	out := bitio.PutUvarint(nil, uint64(n))
	out = bitio.PutUvarint(out, uint64(len(tail)))
	planeBytes := (n + 7) / 8
	planes := make([]byte, 32*planeBytes)
	for plane := 31; plane >= 0; plane-- {
		row := planes[(31-plane)*planeBytes:]
		sh := uint(plane)
		i := 0
		for ; i+8 <= n; i += 8 {
			b := byte(words[i]>>sh&1)<<7 |
				byte(words[i+1]>>sh&1)<<6 |
				byte(words[i+2]>>sh&1)<<5 |
				byte(words[i+3]>>sh&1)<<4 |
				byte(words[i+4]>>sh&1)<<3 |
				byte(words[i+5]>>sh&1)<<2 |
				byte(words[i+6]>>sh&1)<<1 |
				byte(words[i+7]>>sh&1)
			row[i/8] = b
		}
		for ; i < n; i++ {
			row[i/8] |= byte(words[i]>>sh&1) << (7 - uint(i)%8)
		}
	}
	out = append(out, planes...)
	return append(out, tail...), nil
}

func (bitT) Inverse(src []byte) ([]byte, error) {
	n64, k, err := bitio.Uvarint(src)
	if err != nil {
		return nil, fmt.Errorf("lc/BIT: %w", err)
	}
	src = src[k:]
	tailLen, k, err := bitio.Uvarint(src)
	if err != nil {
		return nil, fmt.Errorf("lc/BIT: %w", err)
	}
	src = src[k:]
	n := int(n64)
	planeBytes := (n + 7) / 8
	need := 32*planeBytes + int(tailLen)
	if len(src) != need {
		return nil, fmt.Errorf("lc/BIT: have %d bytes, need %d", len(src), need)
	}
	words := make([]uint32, n)
	for plane := 31; plane >= 0; plane-- {
		row := src[(31-plane)*planeBytes:]
		sh := uint(plane)
		for i := 0; i < n; i++ {
			bit := uint32(row[i/8]>>(7-uint(i)%8)) & 1
			words[i] |= bit << sh
		}
	}
	return joinWords(words, src[32*planeBytes:]), nil
}

// byteT is the byte transpose: byte plane 0 of every word, then plane 1,
// plane 2, plane 3 (the classic "shuffle" filter from HDF5/blosc).
type byteT struct{}

func (byteT) Name() string { return "BYTE" }

func (byteT) Forward(src []byte) ([]byte, error) {
	n := len(src) / 4
	tail := src[4*n:]
	out := bitio.PutUvarint(nil, uint64(n))
	out = bitio.PutUvarint(out, uint64(len(tail)))
	for plane := 0; plane < 4; plane++ {
		for i := 0; i < n; i++ {
			out = append(out, src[4*i+plane])
		}
	}
	return append(out, tail...), nil
}

func (byteT) Inverse(src []byte) ([]byte, error) {
	n64, k, err := bitio.Uvarint(src)
	if err != nil {
		return nil, fmt.Errorf("lc/BYTE: %w", err)
	}
	src = src[k:]
	tailLen, k, err := bitio.Uvarint(src)
	if err != nil {
		return nil, fmt.Errorf("lc/BYTE: %w", err)
	}
	src = src[k:]
	n := int(n64)
	if len(src) != 4*n+int(tailLen) {
		return nil, fmt.Errorf("lc/BYTE: have %d bytes, need %d", len(src), 4*n+int(tailLen))
	}
	out := make([]byte, 4*n, 4*n+int(tailLen))
	for plane := 0; plane < 4; plane++ {
		for i := 0; i < n; i++ {
			out[4*i+plane] = src[plane*n+i]
		}
	}
	return append(out, src[4*n:]...), nil
}
