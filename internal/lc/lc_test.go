package lc

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"positbench/internal/compress/codectest"
	"testing"
	"testing/quick"
)

// Every component must exactly invert its forward transform on arbitrary
// byte strings, including ragged (non-word-aligned) ones.
func TestComponentInvertibility(t *testing.T) {
	for _, c := range Components() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			cases := [][]byte{
				nil,
				{0},
				{1, 2, 3},       // ragged
				{1, 2, 3, 4, 5}, // word + tail
				make([]byte, 4096),
				floatField(1024),
				positLike(1024),
			}
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 5; i++ {
				b := make([]byte, rng.Intn(3000))
				rng.Read(b)
				cases = append(cases, b)
			}
			for i, src := range cases {
				fwd, err := c.Forward(src)
				if err != nil {
					t.Fatalf("case %d: forward: %v", i, err)
				}
				back, err := c.Inverse(fwd)
				if err != nil {
					t.Fatalf("case %d: inverse: %v", i, err)
				}
				if !bytes.Equal(back, src) {
					t.Fatalf("case %d: roundtrip mismatch (len %d -> %d -> %d)",
						i, len(src), len(fwd), len(back))
				}
			}
		})
	}
}

func TestComponentInvertibilityQuick(t *testing.T) {
	for _, c := range Components() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(src []byte) bool {
				fwd, err := c.Forward(src)
				if err != nil {
					return false
				}
				back, err := c.Inverse(fwd)
				return err == nil && bytes.Equal(back, src)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestZigzagNegabinary(t *testing.T) {
	for _, v := range []uint32{0, 1, 0xFFFFFFFF, 0x80000000, 42, 0x7FFFFFFF} {
		if unzigzag(zigzag(v)) != v {
			t.Fatalf("zigzag roundtrip %#x", v)
		}
		if fromNegabinary(toNegabinary(v)) != v {
			t.Fatalf("negabinary roundtrip %#x", v)
		}
	}
	// Small-magnitude deltas map to small codes.
	if zigzag(1) != 2 || zigzag(0xFFFFFFFF) != 1 { // -1 -> 1
		t.Fatal("zigzag mapping")
	}
	// Negabinary of 0 and small values stays small.
	if toNegabinary(0) != 0 {
		t.Fatal("negabinary(0)")
	}
}

func TestByName(t *testing.T) {
	for _, c := range Components() {
		got, err := ByName(c.Name())
		if err != nil || got.Name() != c.Name() {
			t.Fatalf("ByName(%s): %v", c.Name(), err)
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("want error")
	}
}

func TestPaperPipelines(t *testing.T) {
	// The two pipelines the paper's LC search selected.
	for _, names := range [][]string{
		{"DIFFMS", "RARE", "RAZE"}, // best single pipeline for float data
		{"DIFFNB", "BIT", "RZE"},   // best single pipeline for posit data
	} {
		p, err := NewPipeline(names...)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range [][]byte{floatField(4096), positLike(4096)} {
			comp, err := p.Apply(src)
			if err != nil {
				t.Fatal(err)
			}
			back, err := p.Invert(comp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, src) {
				t.Fatalf("%s: roundtrip failed", p)
			}
			if len(comp) >= len(src) {
				t.Errorf("%s: no compression on smooth data: %d -> %d", p, len(src), len(comp))
			}
		}
	}
}

func TestPipelineString(t *testing.T) {
	p, err := NewPipeline("DIFFMS", "RARE", "RAZE")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "DIFFMS|RARE|RAZE" {
		t.Fatalf("got %q", p.String())
	}
	if _, err := NewPipeline("BOGUS"); err == nil {
		t.Fatal("want error")
	}
}

func TestCodecSelfDescribing(t *testing.T) {
	p, err := NewPipeline("DIFFNB", "BIT", "RZE")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCodec(p)
	src := floatField(2048)
	comp, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh codec with a different pipeline must still decompress it,
	// because the pipeline IDs are in the container.
	other, err := NewPipeline("NUL", "NUL", "NUL")
	if err != nil {
		t.Fatal(err)
	}
	back, err := NewCodec(other).Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("self-describing decompress failed")
	}
	if c.Name() != "lc" {
		t.Fatal("name")
	}
}

func TestCodecBadContainer(t *testing.T) {
	c := NewCodec(Pipeline{})
	if _, err := c.Decompress(nil); err == nil {
		t.Fatal("empty container accepted")
	}
	if _, err := c.Decompress([]byte{3, 1}); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := c.Decompress([]byte{1, 200, 0, 0}); err == nil {
		t.Fatal("bad component id accepted")
	}
}

func TestSearchAllFindsCompressor(t *testing.T) {
	src := floatField(4096)
	rs, err := SearchAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != PipelineCount() {
		t.Fatalf("got %d results, want %d", len(rs), PipelineCount())
	}
	best := rs[0]
	if best.Ratio <= 1.2 {
		t.Fatalf("best pipeline ratio %.3f too low on smooth float data", best.Ratio)
	}
	// Results must be sorted by size.
	for i := 1; i < len(rs); i++ {
		if rs[i].Size < rs[i-1].Size {
			t.Fatal("results not sorted")
		}
	}
	// Best pipeline must actually roundtrip at the reported size.
	p, err := best.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	comp, err := p.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp)+headerBytes != best.Size {
		t.Fatalf("size mismatch: %d vs %d", len(comp)+headerBytes, best.Size)
	}
	back, err := p.Invert(comp)
	if err != nil || !bytes.Equal(back, src) {
		t.Fatal("best pipeline does not roundtrip")
	}
}

func TestSearchDeterminism(t *testing.T) {
	src := positLike(2048)
	a, err := SearchAll(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchAll(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic search at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBestGlobal(t *testing.T) {
	inputs := [][]byte{floatField(2048), floatField(1024), positLike(2048)}
	pipe, results, err := BestGlobal(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(inputs) {
		t.Fatalf("results %d", len(results))
	}
	// The global pipeline's geomean must be <= the per-file geomean.
	perFile, err := BestPerFile(inputs)
	if err != nil {
		t.Fatal(err)
	}
	var gLog, pLog float64
	for i := range inputs {
		gLog += math.Log(results[i].Ratio)
		pLog += math.Log(perFile[i].Ratio)
	}
	if gLog > pLog+1e-9 {
		t.Fatalf("global pipeline %s beat per-file selection: %g > %g", pipe, gLog, pLog)
	}
	if _, _, err := BestGlobal(nil); err == nil {
		t.Fatal("empty input list accepted")
	}
}

func TestRecursiveBitmap(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{1},
		make([]byte, 1000),              // all zero: recursion pays off hugely
		bytes.Repeat([]byte{255}, 1000), // dense
	}
	sparse := make([]byte, 1000)
	sparse[17], sparse[500] = 3, 9
	cases = append(cases, sparse)
	for i, c := range cases {
		enc := encodeBitmapBody(c)
		dec, used, err := decodeBitmapBody(enc, len(c))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if used != len(enc) {
			t.Fatalf("case %d: consumed %d of %d", i, used, len(enc))
		}
		if !bytes.Equal(dec, c) {
			t.Fatalf("case %d: mismatch", i)
		}
	}
	allZero := make([]byte, 100000)
	if got := len(encodeBitmapBody(allZero)); got > 40 {
		t.Fatalf("all-zero bitmap should collapse recursively: %d bytes", got)
	}
	if _, _, err := decodeBitmapBody(nil, 5); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, _, err := decodeBitmapBody([]byte{9}, 5); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// floatField builds a smooth little-endian float32 field.
func floatField(n int) []byte {
	out := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		v := float32(math.Sin(float64(i)/40)*3 + 10)
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// positLike builds a stream with long zero-ish prefixes per word,
// resembling posit-encoded smooth data.
func positLike(n int) []byte {
	out := make([]byte, 4*n)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		w := uint32(0x40000000) | uint32(rng.Intn(1<<12))
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out
}

func BenchmarkSearchAll(b *testing.B) {
	src := floatField(1 << 12)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchAll(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaperFloatPipeline(b *testing.B) {
	p, err := NewPipeline("DIFFMS", "RARE", "RAZE")
	if err != nil {
		b.Fatal(err)
	}
	src := floatField(1 << 16)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Apply(src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	p, err := NewPipeline("DIFFMS", "RARE", "RAZE")
	if err != nil {
		t.Fatal(err)
	}
	codectest.FaultInjection(t, NewCodec(p))
}
