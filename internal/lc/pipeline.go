package lc

import (
	"fmt"
	"strings"

	"positbench/internal/compress"
)

// PipelineDepth is the number of stages the study searches over, matching
// the paper's 3-stage pipelines.
const PipelineDepth = 3

// Pipeline is an ordered composition of components; stage outputs feed the
// next stage, and the final stage's output is the compressed data.
type Pipeline struct {
	Stages []Component
}

// NewPipeline builds a pipeline from component names, e.g.
// NewPipeline("DIFFMS", "RARE", "RAZE").
func NewPipeline(names ...string) (Pipeline, error) {
	p := Pipeline{Stages: make([]Component, len(names))}
	for i, nm := range names {
		c, err := ByName(nm)
		if err != nil {
			return Pipeline{}, err
		}
		p.Stages[i] = c
	}
	return p, nil
}

// String renders "DIFFMS|RARE|RAZE".
func (p Pipeline) String() string {
	names := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		names[i] = s.Name()
	}
	return strings.Join(names, "|")
}

// Apply runs all forward stages.
func (p Pipeline) Apply(src []byte) ([]byte, error) {
	cur := src
	for _, s := range p.Stages {
		var err error
		cur, err = s.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("lc: stage %s: %w", s.Name(), err)
		}
	}
	return cur, nil
}

// Invert runs all inverse stages in reverse order with no output bound; use
// InvertLimit on untrusted input.
func (p Pipeline) Invert(comp []byte) ([]byte, error) {
	return p.InvertLimit(comp, 0)
}

// InvertLimit runs all inverse stages in reverse order, holding every
// intermediate (and the final output) under maxOut bytes (maxOut <= 0 means
// unbounded). Stages implementing LimitedInverter enforce the bound before
// allocating; for the rest the intermediate is checked after the stage runs.
func (p Pipeline) InvertLimit(comp []byte, maxOut int) ([]byte, error) {
	cur := comp
	for i := len(p.Stages) - 1; i >= 0; i-- {
		s := p.Stages[i]
		var err error
		if li, ok := s.(LimitedInverter); ok && maxOut > 0 {
			cur, err = li.InverseLimit(cur, maxOut)
		} else {
			cur, err = s.Inverse(cur)
		}
		if err != nil {
			return nil, fmt.Errorf("lc: inverse stage %s: %w", s.Name(), err)
		}
		if maxOut > 0 && len(cur) > maxOut {
			return nil, compress.Errorf(compress.ErrLimitExceeded, "lc: stage %s output %d exceeds cap %d", s.Name(), len(cur), maxOut)
		}
	}
	return cur, nil
}

// Codec wraps a pipeline as a self-describing compress.Codec: the component
// IDs travel in the container so any LC-compressed buffer decompresses
// without out-of-band pipeline knowledge.
type Codec struct {
	pipe Pipeline
}

// NewCodec wraps p.
func NewCodec(p Pipeline) *Codec { return &Codec{pipe: p} }

// Pipeline returns the wrapped pipeline.
func (c *Codec) Pipeline() Pipeline { return c.pipe }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "lc" }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	return compress.Info{Name: "lc", Version: c.pipe.String(), Source: "LC framework pipeline (synthesized)"}
}

// Compress implements compress.Codec. Layout: one byte per stage (component
// ID), then the final stage output.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	lib := Components()
	out := make([]byte, 0, len(src)/2+8)
	out = append(out, byte(len(c.pipe.Stages)))
	for _, s := range c.pipe.Stages {
		id := -1
		for i, l := range lib {
			if l.Name() == s.Name() {
				id = i
				break
			}
		}
		if id < 0 {
			return nil, fmt.Errorf("lc: component %s not in library", s.Name())
		}
		out = append(out, byte(id))
	}
	body, err := c.pipe.Apply(src)
	if err != nil {
		return nil, err
	}
	return append(out, body...), nil
}

// Decompress implements compress.Codec with default decode limits.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited: the self-describing header
// is validated and every inverse stage runs under the resolved output cap.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	if len(comp) < 1 {
		return nil, compress.Errorf(compress.ErrTruncated, "lc: empty container")
	}
	nStages := int(comp[0])
	if len(comp) < 1+nStages {
		return nil, compress.Errorf(compress.ErrTruncated, "lc: truncated header")
	}
	lib := Components()
	p := Pipeline{Stages: make([]Component, nStages)}
	for i := 0; i < nStages; i++ {
		id := int(comp[1+i])
		if id >= len(lib) {
			return nil, compress.Errorf(compress.ErrCorrupt, "lc: bad component id %d", id)
		}
		p.Stages[i] = lib[id]
	}
	maxOut := lim.OutputCap(len(comp))
	outCap := int(^uint(0) >> 1)
	if maxOut < int64(outCap) {
		outCap = int(maxOut)
	}
	return p.InvertLimit(comp[1+nStages:], outCap)
}

var _ compress.Codec = (*Codec)(nil)
var _ compress.Describer = (*Codec)(nil)
var _ compress.Limited = (*Codec)(nil)
