package lc

// Predictor components: same-length word transforms that turn value
// correlation between neighbors into small (or sparse) residuals.

// diff emits the two's-complement difference sequence ("delta modulation").
type diff struct{}

func (diff) Name() string { return "DIFF" }

func (diff) Forward(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	prev := uint32(0)
	for i, w := range words {
		words[i] = w - prev
		prev = w
	}
	return joinWords(words, tail), nil
}

func (diff) Inverse(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	acc := uint32(0)
	for i, d := range words {
		acc += d
		words[i] = acc
	}
	return joinWords(words, tail), nil
}

// diffMS emits differences in magnitude-sign (zigzag) form: small positive
// and negative deltas both map to values with many leading zero bits.
// This is the first stage of the paper's best float pipeline.
type diffMS struct{}

func (diffMS) Name() string { return "DIFFMS" }

func zigzag(d uint32) uint32   { return d<<1 ^ uint32(int32(d)>>31) }
func unzigzag(z uint32) uint32 { return z>>1 ^ -(z & 1) }

func (diffMS) Forward(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	prev := uint32(0)
	for i, w := range words {
		words[i] = zigzag(w - prev)
		prev = w
	}
	return joinWords(words, tail), nil
}

func (diffMS) Inverse(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	acc := uint32(0)
	for i, z := range words {
		acc += unzigzag(z)
		words[i] = acc
	}
	return joinWords(words, tail), nil
}

// diffNB emits differences in negabinary (base -2) form, the first stage of
// the paper's best posit pipeline. Negabinary also maps small-magnitude
// deltas to small codes but distributes sign information across the bits,
// which interacts well with bit-plane transposition.
type diffNB struct{}

func (diffNB) Name() string { return "DIFFNB" }

const nbMask = 0xAAAAAAAA

func toNegabinary(x uint32) uint32   { return (x + nbMask) ^ nbMask }
func fromNegabinary(n uint32) uint32 { return (n ^ nbMask) - nbMask }

func (diffNB) Forward(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	prev := uint32(0)
	for i, w := range words {
		words[i] = toNegabinary(w - prev)
		prev = w
	}
	return joinWords(words, tail), nil
}

func (diffNB) Inverse(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	acc := uint32(0)
	for i, n := range words {
		acc += fromNegabinary(n)
		words[i] = acc
	}
	return joinWords(words, tail), nil
}

// xorDelta replaces each word with its XOR against the previous word:
// identical prefixes become leading zeros without carry propagation.
type xorDelta struct{}

func (xorDelta) Name() string { return "XOR" }

func (xorDelta) Forward(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	prev := uint32(0)
	for i, w := range words {
		words[i] = w ^ prev
		prev = w
	}
	return joinWords(words, tail), nil
}

func (xorDelta) Inverse(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	acc := uint32(0)
	for i, d := range words {
		acc ^= d
		words[i] = acc
	}
	return joinWords(words, tail), nil
}
