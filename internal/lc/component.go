// Package lc implements the LC compression-pipeline synthesis framework:
// a library of invertible data transformations ("components") that are
// composed into fixed-depth pipelines, plus an exhaustive parallel search
// that finds the best pipeline for an input or a corpus.
//
// Components interpret their input as little-endian 32-bit words where that
// matters (every stage named in the paper does), with any ragged tail bytes
// carried through verbatim, so arbitrary compositions stay lossless on
// arbitrary inputs.
package lc

import (
	"encoding/binary"
	"fmt"
)

// Component is one invertible pipeline stage.
type Component interface {
	// Name is the stage identifier used in pipeline strings ("DIFFMS").
	Name() string
	// Forward transforms src; the result may have any length.
	Forward(src []byte) ([]byte, error)
	// Inverse exactly undoes Forward.
	Inverse(src []byte) ([]byte, error)
}

// Components returns the full component library in canonical (ID) order.
// Index in this slice is the component's wire ID, so the order is part of
// the LC container format.
func Components() []Component {
	return []Component{
		nul{},                                // 0
		diff{},                               // 1
		diffMS{},                             // 2
		diffNB{},                             // 3
		xorDelta{},                           // 4
		bitT{},                               // 5
		byteT{},                              // 6
		rle{},                                // 7
		rze{},                                // 8
		newRARE(),                            // 9
		newRAZE(),                            // 10
		huf{},                                // 11
		diffStride{name: "DIFF4", stride: 4}, // 12
		xorStride{name: "XOR4", stride: 4},   // 13
	}
}

// ByName returns the named component.
func ByName(name string) (Component, error) {
	for _, c := range Components() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("lc: unknown component %q", name)
}

// splitWords views the word-aligned prefix of src as little-endian uint32s
// and returns the ragged tail separately.
func splitWords(src []byte) ([]uint32, []byte) {
	n := len(src) / 4
	words := make([]uint32, n)
	for i := 0; i < n; i++ {
		words[i] = binary.LittleEndian.Uint32(src[4*i:])
	}
	return words, src[4*n:]
}

// joinWords serializes words little-endian and appends tail.
func joinWords(words []uint32, tail []byte) []byte {
	out := make([]byte, 4*len(words)+len(tail))
	for i, w := range words {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	copy(out[4*len(words):], tail)
	return out
}

// nul is the identity stage; its presence in the library means the 3-stage
// search space contains every 1- and 2-stage pipeline as well.
type nul struct{}

func (nul) Name() string                       { return "NUL" }
func (nul) Forward(src []byte) ([]byte, error) { return append([]byte(nil), src...), nil }
func (nul) Inverse(src []byte) ([]byte, error) { return append([]byte(nil), src...), nil }
