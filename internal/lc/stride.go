package lc

// Stride-aware predictor components. Scientific arrays are often
// interleaved records or multidimensional grids, where the best predictor
// for a word is not its immediate neighbor but the word one record (or one
// row) back. A stride-4 delta turns such interleaving into near-zero
// residuals that the coder stages can exploit. These extend the component
// library beyond the stages named in the paper, in the spirit of LC's
// larger real library.

// diffStride emits per-lane two's-complement deltas with a fixed word
// stride: word i is predicted by word i-stride.
type diffStride struct {
	name   string
	stride int
}

func (d diffStride) Name() string { return d.name }

func (d diffStride) Forward(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	n := len(words)
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		if i >= d.stride {
			out[i] = words[i] - words[i-d.stride]
		} else {
			out[i] = words[i]
		}
	}
	return joinWords(out, tail), nil
}

func (d diffStride) Inverse(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	n := len(words)
	for i := d.stride; i < n; i++ {
		words[i] += words[i-d.stride]
	}
	return joinWords(words, tail), nil
}

// xorStride is the carry-free variant: per-lane XOR against the word one
// stride back.
type xorStride struct {
	name   string
	stride int
}

func (x xorStride) Name() string { return x.name }

func (x xorStride) Forward(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	n := len(words)
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		if i >= x.stride {
			out[i] = words[i] ^ words[i-x.stride]
		} else {
			out[i] = words[i]
		}
	}
	return joinWords(out, tail), nil
}

func (x xorStride) Inverse(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	n := len(words)
	for i := x.stride; i < n; i++ {
		words[i] ^= words[i-x.stride]
	}
	return joinWords(words, tail), nil
}
