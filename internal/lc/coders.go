package lc

import (
	"fmt"
	"math/bits"

	"positbench/internal/bitio"
	"positbench/internal/compress"
	"positbench/internal/huffman"
	"positbench/internal/mtf"
)

// LimitedInverter is implemented by components whose Inverse can allocate
// output much larger than its input (the word counts in RZE/RARE/RAZE/HUF
// headers and RLE runs are attacker-controlled). InverseLimit must return
// compress.ErrLimitExceeded before materializing output beyond maxOut bytes;
// maxOut <= 0 means unbounded.
type LimitedInverter interface {
	InverseLimit(src []byte, maxOut int) ([]byte, error)
}

// checkDeclaredWords validates output sizes declared in a stage header
// (nWords words of four bytes plus tailLen ragged bytes) against the stage's
// output cap. Counts beyond 2^56 are rejected outright so the size math
// cannot overflow.
func checkDeclaredWords(stage string, nWords, tailLen uint64, maxOut int) error {
	const absurd = uint64(1) << 56
	if nWords > absurd || tailLen > absurd {
		return compress.Errorf(compress.ErrCorrupt, "lc/%s: absurd declared size (%d words, %d tail)", stage, nWords, tailLen)
	}
	if maxOut > 0 && nWords*4+tailLen > uint64(maxOut) {
		return compress.Errorf(compress.ErrLimitExceeded, "lc/%s: declared output %d exceeds cap %d", stage, nWords*4+tailLen, maxOut)
	}
	return nil
}

// Coder components: size-reducing stages. RZE/RARE/RAZE implement the
// zero/repeat suppression schemes the paper describes, including the
// recursively self-compressed bitmaps.

// --- recursive bitmap codec -------------------------------------------------

// encodeBitmapBody compresses b by zero-byte suppression, recursing on its
// own occupancy bitmap as long as that pays off ("compressed ... repeatedly
// with the same algorithm"). Layout: flag byte (0 = stored, 1 = recursive),
// then either the raw bytes or the encoded occupancy bitmap followed by the
// nonzero bytes.
func encodeBitmapBody(b []byte) []byte {
	if len(b) < 16 {
		return append([]byte{0}, b...)
	}
	sub := make([]byte, (len(b)+7)/8)
	var nz []byte
	for i, v := range b {
		if v != 0 {
			sub[i/8] |= 1 << (7 - i%8)
			nz = append(nz, v)
		}
	}
	inner := encodeBitmapBody(sub)
	if 1+len(inner)+len(nz) < 1+len(b) {
		out := make([]byte, 0, 1+len(inner)+len(nz))
		out = append(out, 1)
		out = append(out, inner...)
		return append(out, nz...)
	}
	return append([]byte{0}, b...)
}

// decodeBitmapBody reconstructs n bytes, returning them and the number of
// encoded bytes consumed.
func decodeBitmapBody(src []byte, n int) ([]byte, int, error) {
	if len(src) < 1 {
		return nil, 0, compress.Errorf(compress.ErrTruncated, "lc: truncated bitmap")
	}
	flag := src[0]
	switch flag {
	case 0:
		if len(src) < 1+n {
			return nil, 0, compress.Errorf(compress.ErrTruncated, "lc: truncated stored bitmap")
		}
		return src[1 : 1+n], 1 + n, nil
	case 1:
		subLen := (n + 7) / 8
		sub, used, err := decodeBitmapBody(src[1:], subLen)
		if err != nil {
			return nil, 0, err
		}
		pos := 1 + used
		out := make([]byte, n)
		for i := 0; i < n; i++ {
			if sub[i/8]>>(7-i%8)&1 == 1 {
				if pos >= len(src) {
					return nil, 0, compress.Errorf(compress.ErrTruncated, "lc: truncated bitmap payload")
				}
				out[i] = src[pos]
				pos++
			}
		}
		return out, pos, nil
	default:
		return nil, 0, compress.Errorf(compress.ErrCorrupt, "lc: bad bitmap flag %d", flag)
	}
}

// packFlags packs one bit per word, MSB-first.
func packFlags(flags []bool) []byte {
	out := make([]byte, (len(flags)+7)/8)
	for i, f := range flags {
		if f {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}

// --- RLE ---------------------------------------------------------------------

// rle is byte-level run-length coding (the RLE1 scheme shared with the
// bzip2-class codec).
type rle struct{}

func (rle) Name() string { return "RLE" }

func (rle) Forward(src []byte) ([]byte, error) { return mtf.RLE1(src), nil }
func (rle) Inverse(src []byte) ([]byte, error) { return mtf.UnRLE1(src) }

func (rle) InverseLimit(src []byte, maxOut int) ([]byte, error) {
	return mtf.UnRLE1Limit(src, maxOut)
}

// --- RZE ---------------------------------------------------------------------

// rze suppresses all-zero words: a recursively compressed occupancy bitmap
// plus the nonzero words. "Similar to RAZE, except it operates on all bits
// of each word."
type rze struct{}

func (rze) Name() string { return "RZE" }

func (rze) Forward(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	flags := make([]bool, len(words))
	var nz []uint32
	for i, w := range words {
		if w != 0 {
			flags[i] = true
			nz = append(nz, w)
		}
	}
	out := bitio.PutUvarint(nil, uint64(len(words)))
	out = bitio.PutUvarint(out, uint64(len(tail)))
	out = append(out, encodeBitmapBody(packFlags(flags))...)
	out = append(out, joinWords(nz, tail)...)
	return out, nil
}

func (rze) Inverse(src []byte) ([]byte, error) { return rze{}.InverseLimit(src, 0) }

func (rze) InverseLimit(src []byte, maxOut int) ([]byte, error) {
	n64, k, err := bitio.Uvarint(src)
	if err != nil {
		return nil, fmt.Errorf("lc/RZE: %w", err)
	}
	src = src[k:]
	tailLen, k, err := bitio.Uvarint(src)
	if err != nil {
		return nil, fmt.Errorf("lc/RZE: %w", err)
	}
	src = src[k:]
	// An all-zero occupancy bitmap compresses recursively to a few bytes, so
	// a tiny input can declare an enormous word count; bound it before the
	// bitmap (and the word slice) are allocated.
	if err := checkDeclaredWords("RZE", n64, tailLen, maxOut); err != nil {
		return nil, err
	}
	n := int(n64)
	bm, used, err := decodeBitmapBody(src, (n+7)/8)
	if err != nil {
		return nil, fmt.Errorf("lc/RZE: %w", err)
	}
	src = src[used:]
	words := make([]uint32, n)
	pos := 0
	for i := 0; i < n; i++ {
		if bm[i/8]>>(7-i%8)&1 == 1 {
			if pos+4 > len(src) {
				return nil, compress.Errorf(compress.ErrTruncated, "lc/RZE: truncated words")
			}
			words[i] = uint32(src[pos]) | uint32(src[pos+1])<<8 | uint32(src[pos+2])<<16 | uint32(src[pos+3])<<24
			pos += 4
		}
	}
	if len(src)-pos != int(tailLen) {
		return nil, compress.Errorf(compress.ErrCorrupt, "lc/RZE: tail mismatch")
	}
	return joinWords(words, src[pos:]), nil
}

// --- RARE / RAZE ---------------------------------------------------------------

// topCoder implements the shared structure of RARE and RAZE: a per-word
// flag (top k bits repeat / are zero), the k-bit tops of unflagged words,
// and the (32-k)-bit bottoms of all words. k is chosen per block to
// minimize the pre-bitmap-compression size.
type topCoder struct {
	name string
	// flagged reports, per word, the leading-bit count that makes the word
	// flaggable at a given k: for RARE the number of leading bits equal to
	// the previous word's, for RAZE the number of leading zero bits.
	leadBits func(w, prev uint32) int
}

func (t topCoder) Name() string { return t.name }

func (t topCoder) Forward(src []byte) ([]byte, error) {
	words, tail := splitWords(src)
	n := len(words)
	// Histogram of lead-bit counts -> flagged(k) via suffix sums.
	var hist [33]int
	prev := uint32(0)
	for _, w := range words {
		hist[t.leadBits(w, prev)]++
		prev = w
	}
	bestK, bestCost := 1, int64(1)<<62
	flaggedAtLeast := 0
	for k := 32; k >= 1; k-- {
		flaggedAtLeast += hist[k]
		if k > 31 {
			continue
		}
		// bits: bitmap n + tops (n-flagged)*k + bottoms n*(32-k)
		cost := int64(n) + int64(n-flaggedAtLeast)*int64(k) + int64(n)*int64(32-k)
		if cost < bestCost {
			bestCost, bestK = cost, k
		}
	}
	k := bestK
	flags := make([]bool, n)
	prev = 0
	tops := bitio.NewWriter(n/2 + 8)
	bottoms := bitio.NewWriter(n*4 + 8)
	for i, w := range words {
		if t.leadBits(w, prev) >= k {
			flags[i] = true
		} else {
			tops.WriteBits(uint64(w>>(32-uint(k))), uint(k))
		}
		bottoms.WriteBits(uint64(w)&(1<<(32-uint(k))-1), 32-uint(k))
		prev = w
	}
	out := bitio.PutUvarint(nil, uint64(n))
	out = bitio.PutUvarint(out, uint64(len(tail)))
	out = append(out, byte(k))
	out = append(out, encodeBitmapBody(packFlags(flags))...)
	tb := tops.Bytes()
	out = bitio.PutUvarint(out, uint64(len(tb)))
	out = append(out, tb...)
	out = append(out, bottoms.Bytes()...)
	return append(out, tail...), nil
}

func (t topCoder) Inverse(src []byte) ([]byte, error) { return t.InverseLimit(src, 0) }

func (t topCoder) InverseLimit(src []byte, maxOut int) ([]byte, error) {
	n64, used, err := bitio.Uvarint(src)
	if err != nil {
		return nil, fmt.Errorf("lc/%s: %w", t.name, err)
	}
	src = src[used:]
	tailLen64, used, err := bitio.Uvarint(src)
	if err != nil {
		return nil, fmt.Errorf("lc/%s: %w", t.name, err)
	}
	src = src[used:]
	if len(src) < 1 {
		return nil, compress.Errorf(compress.ErrTruncated, "lc/%s: missing k", t.name)
	}
	k := int(src[0])
	src = src[1:]
	if k < 1 || k > 31 {
		return nil, compress.Errorf(compress.ErrCorrupt, "lc/%s: bad k=%d", t.name, k)
	}
	if err := checkDeclaredWords(t.name, n64, tailLen64, maxOut); err != nil {
		return nil, err
	}
	n := int(n64)
	bm, used, err := decodeBitmapBody(src, (n+7)/8)
	if err != nil {
		return nil, fmt.Errorf("lc/%s: %w", t.name, err)
	}
	src = src[used:]
	topsLen64, used, err := bitio.Uvarint(src)
	if err != nil {
		return nil, fmt.Errorf("lc/%s: %w", t.name, err)
	}
	src = src[used:]
	topsLen := int(topsLen64)
	if topsLen64 > uint64(len(src)) {
		return nil, compress.Errorf(compress.ErrTruncated, "lc/%s: truncated tops", t.name)
	}
	tops := bitio.NewReader(src[:topsLen])
	src = src[topsLen:]
	bottomBytes := (n*(32-k) + 7) / 8
	if len(src) != bottomBytes+int(tailLen64) {
		return nil, compress.Errorf(compress.ErrCorrupt, "lc/%s: have %d bytes, need %d", t.name, len(src), bottomBytes+int(tailLen64))
	}
	bottoms := bitio.NewReader(src[:bottomBytes])
	words := make([]uint32, n)
	prev := uint32(0)
	for i := 0; i < n; i++ {
		var top uint32
		if bm[i/8]>>(7-i%8)&1 == 1 {
			top = t.flaggedTop(prev, k)
		} else {
			v, err := tops.ReadBits(uint(k))
			if err != nil {
				return nil, fmt.Errorf("lc/%s: tops: %w", t.name, err)
			}
			top = uint32(v)
		}
		bot, err := bottoms.ReadBits(32 - uint(k))
		if err != nil {
			return nil, fmt.Errorf("lc/%s: bottoms: %w", t.name, err)
		}
		w := top<<(32-uint(k)) | uint32(bot)
		words[i] = w
		prev = w
	}
	return joinWords(words, src[bottomBytes:]), nil
}

// flaggedTop reconstructs the implied top bits of a flagged word.
func (t topCoder) flaggedTop(prev uint32, k int) uint32 {
	if t.name == "RAZE" {
		return 0
	}
	return prev >> (32 - uint(k))
}

// rare flags words whose top k bits repeat the previous word's.
type rare struct{ topCoder }

func newRARE() rare {
	return rare{topCoder{
		name: "RARE",
		leadBits: func(w, prev uint32) int {
			return bits.LeadingZeros32(w ^ prev)
		},
	}}
}

// raze flags words whose top k bits are zero.
type raze struct{ topCoder }

func newRAZE() raze {
	return raze{topCoder{
		name: "RAZE",
		leadBits: func(w, prev uint32) int {
			return bits.LeadingZeros32(w)
		},
	}}
}

// --- HUF ----------------------------------------------------------------------

// huf is a canonical byte-Huffman terminal coder with a stored-mode escape
// for incompressible input.
type huf struct{}

func (huf) Name() string { return "HUF" }

func (huf) Forward(src []byte) ([]byte, error) {
	freqs := make([]int, 256)
	for _, b := range src {
		freqs[b]++
	}
	lengths, err := huffman.BuildLengths(freqs, huffman.MaxBits)
	if err != nil {
		return nil, err
	}
	enc, err := huffman.NewEncoder(lengths)
	if err != nil {
		return nil, err
	}
	w := bitio.NewWriter(len(src)/2 + 160)
	if err := huffman.WriteLengths(w, lengths); err != nil {
		return nil, err
	}
	for _, b := range src {
		enc.Encode(w, int(b))
	}
	body := w.Bytes()
	if len(body) >= len(src) {
		out := append(bitio.PutUvarint([]byte{0}, uint64(len(src))), src...)
		return out, nil
	}
	return append(bitio.PutUvarint([]byte{1}, uint64(len(src))), body...), nil
}

func (huf) Inverse(src []byte) ([]byte, error) { return huf{}.InverseLimit(src, 0) }

func (huf) InverseLimit(src []byte, maxOut int) ([]byte, error) {
	if len(src) < 1 {
		return nil, compress.Errorf(compress.ErrTruncated, "lc/HUF: empty input")
	}
	mode := src[0]
	n64, used, err := bitio.Uvarint(src[1:])
	if err != nil {
		return nil, fmt.Errorf("lc/HUF: %w", err)
	}
	src = src[1+used:]
	// Every coded symbol costs at least one bit, so an honest n never
	// exceeds 8x the remaining input; checking it (and the cap) before the
	// output allocation keeps a tampered count from forcing a huge make.
	if n64 > uint64(len(src))*8 {
		return nil, compress.Errorf(compress.ErrCorrupt, "lc/HUF: declared length %d exceeds 8x input", n64)
	}
	if maxOut > 0 && n64 > uint64(maxOut) {
		return nil, compress.Errorf(compress.ErrLimitExceeded, "lc/HUF: declared length %d exceeds cap %d", n64, maxOut)
	}
	n := int(n64)
	switch mode {
	case 0:
		if len(src) != n {
			return nil, compress.Errorf(compress.ErrCorrupt, "lc/HUF: stored length mismatch")
		}
		return append([]byte(nil), src...), nil
	case 1:
		r := bitio.NewReader(src)
		lengths, err := huffman.ReadLengths(r, 256)
		if err != nil {
			return nil, fmt.Errorf("lc/HUF: %w", err)
		}
		dec, err := huffman.NewDecoder(lengths)
		if err != nil {
			return nil, fmt.Errorf("lc/HUF: %w", err)
		}
		out := make([]byte, n)
		for i := range out {
			s, err := dec.Decode(r)
			if err != nil {
				return nil, fmt.Errorf("lc/HUF: %w", err)
			}
			out[i] = byte(s)
		}
		return out, nil
	default:
		return nil, compress.Errorf(compress.ErrCorrupt, "lc/HUF: bad mode %d", mode)
	}
}
