package lc

import (
	"fmt"
	"testing"
)

// Per-component throughput: forward and inverse MB/s for every stage in
// the library, on smooth float data.
func BenchmarkComponentForward(b *testing.B) {
	src := floatField(1 << 16)
	for _, c := range Components() {
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Forward(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComponentInverse(b *testing.B) {
	src := floatField(1 << 16)
	for _, c := range Components() {
		fwd, err := c.Forward(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Inverse(fwd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func ExamplePipeline() {
	p, err := NewPipeline("DIFFMS", "RARE", "RAZE")
	if err != nil {
		panic(err)
	}
	fmt.Println(p)
	// Output: DIFFMS|RARE|RAZE
}
