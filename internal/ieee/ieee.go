// Package ieee provides field-level analysis of IEEE-754 binary32 data:
// value classification and biased-exponent histograms. It backs the paper's
// Figure 5 (percentage of floats per exponent value) and the discussion of
// which inputs contain zeros, subnormals, and extreme magnitudes.
package ieee

import (
	"fmt"
	"math"
	"strings"
)

// Class categorizes a binary32 value.
type Class int

// Value classes.
const (
	Zero Class = iota
	Subnormal
	Normal
	Inf
	NaN
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Zero:
		return "zero"
	case Subnormal:
		return "subnormal"
	case Normal:
		return "normal"
	case Inf:
		return "inf"
	case NaN:
		return "nan"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Fields is the bit-level decomposition of a binary32 value.
type Fields struct {
	Sign     uint32 // 0 or 1
	Exponent uint32 // biased, 0..255
	Mantissa uint32 // 23 bits
}

// Split decomposes the bits of f.
func Split(f float32) Fields {
	b := math.Float32bits(f)
	return Fields{
		Sign:     b >> 31,
		Exponent: b >> 23 & 0xFF,
		Mantissa: b & 0x7FFFFF,
	}
}

// Classify returns the class of f.
func Classify(f float32) Class {
	fl := Split(f)
	switch fl.Exponent {
	case 0:
		if fl.Mantissa == 0 {
			return Zero
		}
		return Subnormal
	case 255:
		if fl.Mantissa == 0 {
			return Inf
		}
		return NaN
	default:
		return Normal
	}
}

// Histogram counts values by biased exponent (0..255). Zeros and subnormals
// land in bin 0; infinities and NaNs in bin 255, matching how Figure 5
// buckets the raw exponent field.
type Histogram struct {
	Bins  [256]int
	Total int
}

// Add accumulates one value.
func (h *Histogram) Add(f float32) {
	h.Bins[Split(f).Exponent]++
	h.Total++
}

// AddSlice accumulates a slice.
func (h *Histogram) AddSlice(fs []float32) {
	for _, f := range fs {
		h.Bins[Split(f).Exponent]++
	}
	h.Total += len(fs)
}

// Pct returns the percentage of values in bin e.
func (h *Histogram) Pct(e int) float64 {
	if h.Total == 0 {
		return 0
	}
	return 100 * float64(h.Bins[e]) / float64(h.Total)
}

// Mode returns the biased exponent with the most values.
func (h *Histogram) Mode() int {
	best, bestN := 0, -1
	for e, n := range h.Bins {
		if n > bestN {
			best, bestN = e, n
		}
	}
	return best
}

// Summary aggregates classification counts for one input.
type Summary struct {
	Total      int
	Zeros      int
	Subnormals int
	Normals    int
	Infs       int
	NaNs       int
	MinFinite  float64 // most negative finite value
	MaxFinite  float64 // most positive finite value
	MinAbs     float64 // smallest nonzero magnitude
	MaxAbs     float64 // largest magnitude
}

// Summarize scans fs once and reports counts plus range information.
func Summarize(fs []float32) Summary {
	s := Summary{MinFinite: math.Inf(1), MaxFinite: math.Inf(-1), MinAbs: math.Inf(1)}
	for _, f := range fs {
		s.Total++
		switch Classify(f) {
		case Zero:
			s.Zeros++
		case Subnormal:
			s.Subnormals++
		case Normal:
			s.Normals++
		case Inf:
			s.Infs++
			continue
		case NaN:
			s.NaNs++
			continue
		}
		v := float64(f)
		if v < s.MinFinite {
			s.MinFinite = v
		}
		if v > s.MaxFinite {
			s.MaxFinite = v
		}
		if a := math.Abs(v); a > 0 {
			if a < s.MinAbs {
				s.MinAbs = a
			}
			if a > s.MaxAbs {
				s.MaxAbs = a
			}
		}
	}
	return s
}

// RenderASCII renders the histogram as a text plot: one row per populated
// exponent bucket group, used by cmd/repro for Figure 5.
func (h *Histogram) RenderASCII(width int) string {
	if width <= 0 {
		width = 60
	}
	maxPct := 0.0
	for e := range h.Bins {
		if p := h.Pct(e); p > maxPct {
			maxPct = p
		}
	}
	if maxPct == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for e := 0; e < 256; e++ {
		p := h.Pct(e)
		if p < 0.01 {
			continue
		}
		n := int(p / maxPct * float64(width))
		fmt.Fprintf(&b, "%3d |%-*s| %6.2f%%\n", e, width, strings.Repeat("#", n), p)
	}
	return b.String()
}
