package ieee

import (
	"math"
	"strings"
	"testing"
)

func TestSplit(t *testing.T) {
	f := Split(1.0)
	if f.Sign != 0 || f.Exponent != 127 || f.Mantissa != 0 {
		t.Fatalf("Split(1.0) = %+v", f)
	}
	f = Split(-2.5)
	if f.Sign != 1 || f.Exponent != 128 || f.Mantissa != 1<<21 {
		t.Fatalf("Split(-2.5) = %+v", f)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		f float32
		c Class
	}{
		{0, Zero},
		{float32(math.Copysign(0, -1)), Zero},
		{1.0, Normal},
		{-123.5, Normal},
		{math.Float32frombits(1), Subnormal},
		{math.Float32frombits(0x007FFFFF), Subnormal},
		{float32(math.Inf(1)), Inf},
		{float32(math.Inf(-1)), Inf},
		{float32(math.NaN()), NaN},
	}
	for _, tc := range cases {
		if got := Classify(tc.f); got != tc.c {
			t.Errorf("Classify(%g) = %v, want %v", tc.f, got, tc.c)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		Zero: "zero", Subnormal: "subnormal", Normal: "normal",
		Inf: "inf", NaN: "nan", Class(99): "Class(99)",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.AddSlice([]float32{1, 1.5, 2, 0.25})
	h.Add(0)
	if h.Total != 5 {
		t.Fatalf("total %d", h.Total)
	}
	if h.Bins[127] != 2 { // 1 and 1.5
		t.Fatalf("bin 127 = %d", h.Bins[127])
	}
	if h.Bins[128] != 1 || h.Bins[125] != 1 || h.Bins[0] != 1 {
		t.Fatalf("bins: %v %v %v", h.Bins[128], h.Bins[125], h.Bins[0])
	}
	if got := h.Pct(127); got != 40 {
		t.Fatalf("Pct = %g", got)
	}
	if h.Mode() != 127 {
		t.Fatalf("Mode = %d", h.Mode())
	}
	var empty Histogram
	if empty.Pct(0) != 0 {
		t.Fatal("empty Pct")
	}
}

func TestSummarize(t *testing.T) {
	fs := []float32{0, 1, -4, math.Float32frombits(1),
		float32(math.Inf(1)), float32(math.NaN()), 1e30, -1e-30}
	s := Summarize(fs)
	if s.Total != 8 || s.Zeros != 1 || s.Subnormals != 1 || s.Infs != 1 || s.NaNs != 1 {
		t.Fatalf("%+v", s)
	}
	if s.Normals != 4 {
		t.Fatalf("normals %d", s.Normals)
	}
	if s.MaxFinite != float64(float32(1e30)) || s.MinFinite != -4 {
		t.Fatalf("range %g..%g", s.MinFinite, s.MaxFinite)
	}
	if s.MaxAbs != float64(float32(1e30)) {
		t.Fatalf("maxabs %g", s.MaxAbs)
	}
	if s.MinAbs >= 1e-30 {
		t.Fatalf("minabs %g", s.MinAbs)
	}
}

func TestRenderASCII(t *testing.T) {
	var h Histogram
	h.AddSlice([]float32{1, 1, 1, 2})
	out := h.RenderASCII(20)
	if !strings.Contains(out, "127") || !strings.Contains(out, "#") {
		t.Fatalf("render:\n%s", out)
	}
	var empty Histogram
	if empty.RenderASCII(0) != "(empty)\n" {
		t.Fatal("empty render")
	}
}
