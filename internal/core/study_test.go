package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
)

// smallStudy runs the full study (with LC) at reduced scale, shared across
// tests via sync-once style caching.
var cachedStudy *Study

func smallStudy(t *testing.T) *Study {
	t.Helper()
	if cachedStudy != nil {
		return cachedStudy
	}
	st, err := Run(Options{
		ValuesPerInput: 1 << 15, // 128 KiB per input: fast but structured
		WithLC:         true,
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedStudy = st
	return st
}

func TestStudyMeasurementsComplete(t *testing.T) {
	st := smallStudy(t)
	// 5 general codecs + the predictive pair + lc, 14 inputs, 2 encodings.
	want := 8 * 14 * 2
	if len(st.Measurements) != want {
		t.Fatalf("got %d measurements, want %d", len(st.Measurements), want)
	}
	for _, m := range st.Measurements {
		if m.Ratio <= 0 {
			t.Fatalf("bad ratio in %+v", m)
		}
		if m.OrigLen != 4<<15 {
			t.Fatalf("unexpected original size %d", m.OrigLen)
		}
	}
	names := st.CodecNames()
	if len(names) != 8 {
		t.Fatalf("codec names: %v", names)
	}
}

func TestStudyShapeMatchesPaper(t *testing.T) {
	st := smallStudy(t)
	get := func(name string, enc Encoding) float64 { return st.GeoMeanRatio(name, enc) }

	for _, enc := range []Encoding{EncIEEE, EncPosit} {
		xz, lcr, bz := get("xz", enc), get("lc", enc), get("bzip2", enc)
		gz, zs, l4 := get("gzip", enc), get("zstd", enc), get("lz4", enc)
		// Paper Figures 3 and 4: xz highest; lz4 lowest; gzip ~ zstd in the
		// middle; lc and bzip2 between xz and gzip.
		if !(xz > bz && xz > gz && xz > zs && xz > l4) {
			t.Errorf("%s: xz (%.3f) must lead bzip2 %.3f gzip %.3f zstd %.3f lz4 %.3f",
				enc, xz, bz, gz, zs, l4)
		}
		if !(l4 < gz && l4 < zs && l4 < bz && l4 < xz && l4 < lcr) {
			t.Errorf("%s: lz4 (%.3f) must trail all others", enc, l4)
		}
		if lcr <= gz {
			t.Errorf("%s: lc (%.3f) should beat gzip (%.3f)", enc, lcr, gz)
		}
	}

	// Figure 4's headline: bzip2 gains on posit data while xz/gzip/zstd/lc
	// lose a little and lz4 is roughly unchanged.
	bars := st.Figure4()
	delta := map[string]float64{}
	for _, b := range bars {
		delta[b.Codec] = b.DeltaPct
	}
	// At the reduced test scale the absolute bzip2 gain can hover around
	// zero (the BWT needs more context); the scale-robust claim is that
	// bzip2 is the most posit-friendly of the dictionary+entropy codecs.
	// cmd/repro at full scale shows the strictly positive gain
	// (EXPERIMENTS.md: +1.55% vs the paper's +1.74%).
	if delta["bzip2"] < -1.0 {
		t.Errorf("bzip2 delta %.2f%%, paper reports an increase on posit data", delta["bzip2"])
	}
	for _, name := range []string{"xz", "gzip", "zstd"} {
		if delta["bzip2"] <= delta[name] {
			t.Errorf("bzip2 delta %.2f%% should exceed %s delta %.2f%%",
				delta["bzip2"], name, delta[name])
		}
	}
	for _, name := range []string{"xz", "gzip", "zstd"} {
		if delta[name] > 1.0 {
			t.Errorf("%s delta %.2f%%: paper reports a small reduction on posit data", name, delta[name])
		}
		if delta[name] < -15 {
			t.Errorf("%s delta %.2f%%: reduction implausibly large", name, delta[name])
		}
	}
	if d := delta["lz4"]; d < -6 || d > 6 {
		t.Errorf("lz4 delta %.2f%%: paper reports parity on both encodings", d)
	}
}

func TestPrecisionStudy(t *testing.T) {
	st := smallStudy(t)
	rows, g3, g2 := st.Precision()
	if len(rows) != 14 {
		t.Fatalf("rows %d", len(rows))
	}
	if g3 < 93 || g3 > 99.5 {
		t.Errorf("es=3 geomean %.2f, want ~97", g3)
	}
	if g2 >= g3 {
		t.Errorf("es=2 (%.2f) must be below es=3 (%.2f)", g2, g3)
	}
	out := st.RenderPrecision()
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "QRAIN") {
		t.Error("render missing rows")
	}
}

func TestFigure6(t *testing.T) {
	st := smallStudy(t)
	res, err := st.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results %d", len(res))
	}
	for _, r := range res {
		// Per-file pipelines can only improve on the single global one.
		if r.GainPct < -1e-9 {
			t.Errorf("%s: per-file LC lost to global: %+v", r.Encoding, r)
		}
		if r.GlobalPipeline == "" {
			t.Errorf("%s: empty pipeline", r.Encoding)
		}
	}
	txt, err := st.RenderFigure6()
	if err != nil || !strings.Contains(txt, "ieee") {
		t.Errorf("render: %v\n%s", err, txt)
	}
}

func TestRenderers(t *testing.T) {
	st := smallStudy(t)
	if s := Table1(); !strings.Contains(s, "bzip2") || !strings.Contains(s, "xz") {
		t.Error("Table1 missing codecs")
	}
	if s := Table2(); !strings.Contains(s, "CESM") {
		t.Error("Table2 missing datasets")
	}
	if s := st.Table3(); !strings.Contains(s, "vx.f32") {
		t.Error("Table3 missing inputs")
	}
	fig3 := RenderFigure("Figure 3", st.Figure3(), false)
	if !strings.Contains(fig3, "#") {
		t.Error("Figure 3 render empty")
	}
	fig4 := RenderFigure("Figure 4", st.Figure4(), true)
	if !strings.Contains(fig4, "vs float") {
		t.Error("Figure 4 render missing deltas")
	}
	if s := st.Figure5(); !strings.Contains(s, "AEROD") {
		t.Error("Figure 5 render missing inputs")
	}
	if s := st.RenderMeasurements(); !strings.Contains(s, "posit") {
		t.Error("measurement dump empty")
	}
}

func TestRatioLookup(t *testing.T) {
	st := smallStudy(t)
	m, ok := st.Ratio("xz", "vx.f32", EncIEEE)
	if !ok || m.Ratio <= 0 {
		t.Fatalf("lookup failed: %+v %v", m, ok)
	}
	if _, ok := st.Ratio("nope", "vx.f32", EncIEEE); ok {
		t.Fatal("bogus codec found")
	}
}

func TestStudyWithoutLC(t *testing.T) {
	st, err := Run(Options{
		ValuesPerInput: 1 << 10,
		Codecs:         []compress.Codec{all.Codecs()[2]}, // lz4 only: fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Measurements) != 14*2 {
		t.Fatalf("measurements %d", len(st.Measurements))
	}
	if _, err := st.Figure6(); err == nil {
		t.Fatal("Figure6 must require WithLC")
	}
}

func TestWriteCSVs(t *testing.T) {
	st := smallStudy(t)
	dir := t.TempDir()
	if err := st.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig3.csv", "fig4.csv", "fig5.csv", "fig6.csv", "precision.csv", "measurements.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: only %d lines", name, len(lines))
		}
	}
	// fig4.csv must include a delta column for every codec.
	b, _ := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if !strings.Contains(string(b), "delta_pct_vs_ieee") {
		t.Error("fig4.csv missing delta column")
	}
	// measurements has 8 codecs x 14 inputs x 2 encodings + header.
	b, _ = os.ReadFile(filepath.Join(dir, "measurements.csv"))
	if got := len(strings.Split(strings.TrimSpace(string(b)), "\n")); got != 8*14*2+1 {
		t.Errorf("measurements.csv rows: %d", got)
	}
}

func TestNarrowStorageStudy(t *testing.T) {
	st := smallStudy(t)
	rows, err := st.NarrowStorageStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		// Half-width storage plus compression must beat plain-xz-on-f32
		// in effective ratio whenever the data is at all compressible.
		if r.EffectiveGain <= 1 {
			t.Errorf("%s: effective gain %.3f", r.Input, r.EffectiveGain)
		}
		if r.PrecisePct <= 0 || r.PrecisePct > 100 {
			t.Errorf("%s: precise %.2f", r.Input, r.PrecisePct)
		}
	}
	out, err := st.RenderNarrowStorage()
	if err != nil || !strings.Contains(out, "geomean") {
		t.Fatalf("render: %v", err)
	}
}

func TestSpecialPurposeStudy(t *testing.T) {
	st := smallStudy(t)
	rows, err := st.SpecialPurposeStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.PackRatio <= 0 || r.GeneralRatio <= 0 || r.BestGeneral == "" {
			t.Errorf("bad row %+v", r)
		}
	}
	out, err := st.RenderSpecialPurpose()
	if err != nil || !strings.Contains(out, "positpack") == false && out == "" {
		t.Fatalf("render: %v", err)
	}
}
