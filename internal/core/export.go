package core

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: one file per figure/table so external plotting tools can
// regenerate the paper's graphics from a study run.

// WriteCSVs writes every artifact the study can produce into dir:
// fig3.csv, fig4.csv, fig5.csv, precision.csv, measurements.csv, and (when
// the study ran with LC) fig6.csv.
func (st *Study) WriteCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name string
		fn   func(w *csv.Writer) error
	}{
		{"fig3.csv", st.writeFig3CSV},
		{"fig4.csv", st.writeFig4CSV},
		{"fig5.csv", st.writeFig5CSV},
		{"precision.csv", st.writePrecisionCSV},
		{"measurements.csv", st.writeMeasurementsCSV},
	}
	if st.LCPerFileFloat != nil {
		writers = append(writers, struct {
			name string
			fn   func(w *csv.Writer) error
		}{"fig6.csv", st.writeFig6CSV})
	}
	for _, spec := range writers {
		if err := writeCSVFile(filepath.Join(dir, spec.name), spec.fn); err != nil {
			return fmt.Errorf("core: %s: %w", spec.name, err)
		}
	}
	return nil
}

func writeCSVFile(path string, fn func(w *csv.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := fn(w); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (st *Study) writeFig3CSV(w *csv.Writer) error {
	if err := w.Write([]string{"codec", "geomean_ratio_ieee"}); err != nil {
		return err
	}
	for _, bar := range st.Figure3() {
		if err := w.Write([]string{bar.Codec, ftoa(bar.Ratio)}); err != nil {
			return err
		}
	}
	return nil
}

func (st *Study) writeFig4CSV(w *csv.Writer) error {
	if err := w.Write([]string{"codec", "geomean_ratio_posit", "delta_pct_vs_ieee"}); err != nil {
		return err
	}
	for _, bar := range st.Figure4() {
		if err := w.Write([]string{bar.Codec, ftoa(bar.Ratio), ftoa(bar.DeltaPct)}); err != nil {
			return err
		}
	}
	return nil
}

func (st *Study) writeFig5CSV(w *csv.Writer) error {
	if err := w.Write([]string{"input", "biased_exponent", "pct_of_values"}); err != nil {
		return err
	}
	for _, in := range st.Inputs {
		for e := 0; e < 256; e++ {
			if in.Histogram.Bins[e] == 0 {
				continue
			}
			if err := w.Write([]string{in.Spec.Name, strconv.Itoa(e), ftoa(in.Histogram.Pct(e))}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (st *Study) writePrecisionCSV(w *csv.Writer) error {
	if err := w.Write([]string{"input", "precise_pct_es3", "precise_pct_es2"}); err != nil {
		return err
	}
	rows, g3, g2 := st.Precision()
	for _, r := range rows {
		if err := w.Write([]string{r.Input, ftoa(r.PreciseES3), ftoa(r.PreciseES2)}); err != nil {
			return err
		}
	}
	return w.Write([]string{"geomean", ftoa(g3), ftoa(g2)})
}

func (st *Study) writeMeasurementsCSV(w *csv.Writer) error {
	if err := w.Write([]string{"codec", "input", "encoding", "original_bytes", "compressed_bytes", "ratio"}); err != nil {
		return err
	}
	for _, m := range st.Measurements {
		err := w.Write([]string{m.Codec, m.Input, string(m.Encoding),
			strconv.Itoa(m.OrigLen), strconv.Itoa(m.CompLen), ftoa(m.Ratio)})
		if err != nil {
			return err
		}
	}
	return nil
}

func (st *Study) writeFig6CSV(w *csv.Writer) error {
	if err := w.Write([]string{"encoding", "global_pipeline", "global_geomean", "perfile_geomean", "gain_pct"}); err != nil {
		return err
	}
	res, err := st.Figure6()
	if err != nil {
		return err
	}
	for _, r := range res {
		err := w.Write([]string{string(r.Encoding), r.GlobalPipeline,
			ftoa(r.GlobalGeoMean), ftoa(r.PerFileGeoMean), ftoa(r.GainPct)})
		if err != nil {
			return err
		}
	}
	return nil
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
