// Package core implements the paper's experiment: the compressibility of
// the 14 SDRBench inputs encoded as IEEE-754 binary32 versus posit<32,3>,
// measured over the registry codecs (the paper's five general-purpose
// classes plus the predictive fpc32/fpc-posit family) and LC-synthesized
// pipelines. It exposes one structured result type per table and figure.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/ieee"
	"positbench/internal/lc"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
	"positbench/internal/stats"
)

// Encoding names a number representation of an input file.
type Encoding string

// The two encodings under study.
const (
	EncIEEE  Encoding = "ieee"  // IEEE-754 binary32, little-endian
	EncPosit Encoding = "posit" // posit<32,3>, little-endian
)

// Options configures a study run.
type Options struct {
	// ValuesPerInput is the number of float32 values generated per input
	// (default sdrbench.DefaultValues = 1 Mi values = 4 MiB).
	ValuesPerInput int
	// Codecs are the codecs to evaluate (default the full registry).
	Codecs []compress.Codec
	// WithLC adds the LC compressor: a full pipeline search per encoding,
	// global best pipeline (Figures 3/4) and per-file best (Figure 6).
	WithLC bool
	// Verify roundtrips every compression and fails on any mismatch.
	Verify bool
	// Workers bounds the concurrent input preparations and codec runs
	// (default GOMAXPROCS; the CLIs' -p flag lands here).
	Workers int
	// Progress, if non-nil, receives one line per completed step.
	Progress func(format string, args ...interface{})
}

func (o *Options) fill() {
	if o.ValuesPerInput == 0 {
		o.ValuesPerInput = sdrbench.DefaultValues
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Codecs == nil {
		o.Codecs = all.Codecs()
	}
	if o.Progress == nil {
		o.Progress = func(string, ...interface{}) {}
	}
}

// Input is one prepared study input: the synthetic float data and its
// posit<32,3> re-encoding, plus conversion statistics for both es values.
type Input struct {
	Spec       sdrbench.InputSpec
	Floats     []float32
	FloatBytes []byte // .f32 little-endian serialization
	PositBytes []byte // posit<32,3> little-endian serialization (same size)
	StatsES3   posit.ConvertStats
	StatsES2   posit.ConvertStats
	Histogram  ieee.Histogram // biased-exponent histogram (Figure 5)
}

// Bytes returns the input's serialized bytes under enc.
func (in *Input) Bytes(enc Encoding) []byte {
	if enc == EncPosit {
		return in.PositBytes
	}
	return in.FloatBytes
}

// Measurement is one codec x input x encoding result.
type Measurement struct {
	Codec    string
	Input    string
	Encoding Encoding
	OrigLen  int
	CompLen  int
	Ratio    float64
}

// Study holds everything a run produced.
type Study struct {
	Opts         Options
	Inputs       []*Input
	Measurements []Measurement // all codecs including "lc", both encodings

	// LC artifacts (set when Opts.WithLC).
	LCFloatPipeline lc.Pipeline // global best on IEEE inputs
	LCPositPipeline lc.Pipeline // global best on posit inputs
	LCPerFileFloat  []lc.Result // per-input best, IEEE (Figure 6)
	LCPerFilePosit  []lc.Result // per-input best, posit (Figure 6)
}

// PrepareInputs generates the 14 synthetic inputs and their posit
// conversions in parallel, at most workers at a time (<= 0 means
// GOMAXPROCS).
func PrepareInputs(nValues, workers int, progress func(string, ...interface{})) []*Input {
	if progress == nil {
		progress = func(string, ...interface{}) {}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	specs := sdrbench.Inputs()
	inputs := make([]*Input, len(specs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, spec sdrbench.InputSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			floats := spec.Generate(nValues)
			words3 := posit.Posit32e3.FromFloat32Slice(nil, floats)
			in := &Input{
				Spec:       spec,
				Floats:     floats,
				FloatBytes: posit.EncodeFloat32LE(floats),
				PositBytes: posit.EncodeWordsLE(words3),
				StatsES3:   posit.Posit32e3.RoundtripStats(floats),
				StatsES2:   posit.Posit32.RoundtripStats(floats),
			}
			in.Histogram.AddSlice(floats)
			inputs[i] = in
		}(i, spec)
	}
	wg.Wait()
	progress("prepared %d inputs (%d values each)", len(inputs), nValues)
	return inputs
}

// Run executes the full study.
func Run(opts Options) (*Study, error) {
	opts.fill()
	st := &Study{Opts: opts}
	st.Inputs = PrepareInputs(opts.ValuesPerInput, opts.Workers, opts.Progress)

	// General-purpose codecs: every codec x input x encoding cell runs in
	// its own goroutine slot; results land in preallocated indices.
	type cell struct {
		codec compress.Codec
		input *Input
		enc   Encoding
		idx   int
	}
	var cells []cell
	for _, c := range opts.Codecs {
		for _, in := range st.Inputs {
			for _, enc := range []Encoding{EncIEEE, EncPosit} {
				cells = append(cells, cell{c, in, enc, len(cells)})
			}
		}
	}
	st.Measurements = make([]Measurement, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, opts.Workers)
	var wg sync.WaitGroup
	for _, cl := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(cl cell) {
			defer wg.Done()
			defer func() { <-sem }()
			data := cl.input.Bytes(cl.enc)
			var compLen int
			var err error
			if opts.Verify {
				compLen, err = compress.Roundtrip(cl.codec, data)
			} else {
				var comp []byte
				comp, err = cl.codec.Compress(data)
				compLen = len(comp)
			}
			if err != nil {
				errs[cl.idx] = err
				return
			}
			st.Measurements[cl.idx] = Measurement{
				Codec:    cl.codec.Name(),
				Input:    cl.input.Spec.Name,
				Encoding: cl.enc,
				OrigLen:  len(data),
				CompLen:  compLen,
				Ratio:    compress.Ratio(len(data), compLen),
			}
			opts.Progress("%-6s %-26s %-5s ratio %.3f",
				cl.codec.Name(), cl.input.Spec.Name, cl.enc,
				st.Measurements[cl.idx].Ratio)
		}(cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	if opts.WithLC {
		if err := st.runLC(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// runLC performs the pipeline search per encoding and appends "lc"
// measurements using each encoding's global-best pipeline.
func (st *Study) runLC() error {
	for _, enc := range []Encoding{EncIEEE, EncPosit} {
		data := make([][]byte, len(st.Inputs))
		for i, in := range st.Inputs {
			data[i] = in.Bytes(enc)
		}
		perInput, err := lc.SearchAllMulti(data)
		if err != nil {
			return fmt.Errorf("lc search (%s): %w", enc, err)
		}
		pipe, results, err := lc.SelectGlobal(perInput)
		if err != nil {
			return fmt.Errorf("lc selection (%s): %w", enc, err)
		}
		perFile, err := lc.SelectPerFile(perInput)
		if err != nil {
			return fmt.Errorf("lc per-file (%s): %w", enc, err)
		}
		if enc == EncIEEE {
			st.LCFloatPipeline, st.LCPerFileFloat = pipe, perFile
		} else {
			st.LCPositPipeline, st.LCPerFilePosit = pipe, perFile
		}
		for i, in := range st.Inputs {
			st.Measurements = append(st.Measurements, Measurement{
				Codec:    "lc",
				Input:    in.Spec.Name,
				Encoding: enc,
				OrigLen:  len(data[i]),
				CompLen:  results[i].Size,
				Ratio:    results[i].Ratio,
			})
		}
		st.Opts.Progress("lc global pipeline (%s): %s", enc, pipe)
		if st.Opts.Verify {
			codec := lc.NewCodec(pipe)
			for i := range st.Inputs {
				if _, err := compress.Roundtrip(codec, data[i]); err != nil {
					return fmt.Errorf("lc verify: %w", err)
				}
			}
		}
	}
	return nil
}

// CodecNames lists the measured codec names in figure order (registry
// codecs alphabetically as the paper's figures do, with lc included when
// present).
func (st *Study) CodecNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, m := range st.Measurements {
		if !seen[m.Codec] {
			seen[m.Codec] = true
			names = append(names, m.Codec)
		}
	}
	return names
}

// GeoMeanRatio aggregates one codec's ratios over all inputs under enc.
func (st *Study) GeoMeanRatio(codec string, enc Encoding) float64 {
	var ratios []float64
	for _, m := range st.Measurements {
		if m.Codec == codec && m.Encoding == enc {
			ratios = append(ratios, m.Ratio)
		}
	}
	return stats.GeoMean(ratios)
}

// Ratio returns the measurement for one codec x input x encoding cell.
func (st *Study) Ratio(codec, input string, enc Encoding) (Measurement, bool) {
	for _, m := range st.Measurements {
		if m.Codec == codec && m.Input == input && m.Encoding == enc {
			return m, true
		}
	}
	return Measurement{}, false
}
