package core

import (
	"context"
	"fmt"

	"positbench/internal/advisor"
	"positbench/internal/stats"
)

// Adaptive-selection extension: score the advisor's offline picks against
// the study's own exhaustive measurements.

// AutoRow is one input x encoding advisor decision, scored with the
// study's full-input measurement of the chosen codec.
type AutoRow struct {
	Input     string
	Encoding  Encoding
	Chosen    string
	Source    string
	AutoRatio float64 // chosen codec's measured full-input ratio
	Best      string  // per-file best registry codec
	BestRatio float64
}

// AutoStudy replays the advisor offline over every prepared input: the
// input's bytes are sampled with the same seeded multi-window scheme
// cmd/positadvise uses on files, the advisor trial-compresses the sample,
// and its pick is scored with the study's existing measurement for that
// codec — no recompression of the full input. LC candidates are disabled
// so every possible pick has a registry measurement to score against;
// that makes "auto" an eighth column next to the seven registry codecs.
func (st *Study) AutoStudy() ([]AutoRow, error) {
	adv, err := advisor.New(advisor.Config{
		Codecs:      st.Opts.Codecs,
		LCPipelines: []string{}, // non-nil and empty: registry codecs only
		Workers:     st.Opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: building advisor: %w", err)
	}
	eligible := map[string]bool{}
	for _, name := range adv.Names() {
		eligible[name] = true
	}
	rows := make([]AutoRow, 0, 2*len(st.Inputs))
	for _, in := range st.Inputs {
		for _, enc := range []Encoding{EncIEEE, EncPosit} {
			data := in.Bytes(enc)
			sample := advisor.Sample(data, adv.SampleBytes())
			dec, err := adv.Decide(context.Background(), sample, nil, nil)
			if err != nil {
				return nil, fmt.Errorf("core: advising %s (%s): %w", in.Spec.Name, enc, err)
			}
			row := AutoRow{Input: in.Spec.Name, Encoding: enc, Chosen: dec.Codec, Source: dec.Source}
			if m, ok := st.Ratio(dec.Codec, in.Spec.Name, enc); ok {
				row.AutoRatio = m.Ratio
			} else {
				return nil, fmt.Errorf("core: advisor chose %q but the study never measured it on %s (%s)",
					dec.Codec, in.Spec.Name, enc)
			}
			for _, m := range st.Measurements {
				if m.Input == in.Spec.Name && m.Encoding == enc && eligible[m.Codec] && m.Ratio > row.BestRatio {
					row.Best, row.BestRatio = m.Codec, m.Ratio
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AutoGeoMeans aggregates one encoding's auto and per-file-best ratios.
func AutoGeoMeans(rows []AutoRow, enc Encoding) (auto, best float64) {
	var autos, bests []float64
	for _, r := range rows {
		if r.Encoding == enc {
			autos = append(autos, r.AutoRatio)
			bests = append(bests, r.BestRatio)
		}
	}
	return stats.GeoMean(autos), stats.GeoMean(bests)
}

// RenderAutoStudy renders the adaptive-selection extension: the advisor's
// sample-driven pick per input next to the exhaustive per-file best, with
// per-encoding geomeans and the relative gap the acceptance gate watches.
func (st *Study) RenderAutoStudy() (string, error) {
	rows, err := st.AutoStudy()
	if err != nil {
		return "", err
	}
	t := stats.NewTable("Input", "enc", "auto pick", "auto CR", "best codec", "best CR")
	for _, r := range rows {
		t.AddRow(r.Input, string(r.Encoding), r.Chosen, fmt.Sprintf("%.3f", r.AutoRatio),
			r.Best, fmt.Sprintf("%.3f", r.BestRatio))
	}
	out := t.String()
	for _, enc := range []Encoding{EncIEEE, EncPosit} {
		auto, best := AutoGeoMeans(rows, enc)
		gapPct := 0.0
		if best > 0 {
			gapPct = 100 * (best - auto) / best
		}
		out += fmt.Sprintf("geomean (%s): auto %.3f vs per-file best %.3f (gap %.2f%%)\n",
			enc, auto, best, gapPct)
	}
	return out, nil
}
