package core

import (
	"fmt"

	"positbench/internal/compress"
	"positbench/internal/posit"
	"positbench/internal/positpack"
	"positbench/internal/stats"
)

// Extension experiments beyond the paper (its Section 6 future work).

// SpecialPurposeRow compares the field-aware posit compressor against the
// best general-purpose result on one input's posit encoding.
type SpecialPurposeRow struct {
	Input        string
	PackRatio    float64 // positpack on the posit encoding
	BestGeneral  string  // name of the best general-purpose codec
	GeneralRatio float64
}

// SpecialPurposeStudy runs positpack over every input's posit encoding and
// pairs it with the study's best general-purpose measurement (requires the
// study to have been run).
func (st *Study) SpecialPurposeStudy() ([]SpecialPurposeRow, error) {
	codec, err := positpack.New(posit.Posit32e3)
	if err != nil {
		return nil, err
	}
	rows := make([]SpecialPurposeRow, 0, len(st.Inputs))
	for _, in := range st.Inputs {
		var compLen int
		if st.Opts.Verify {
			compLen, err = compress.Roundtrip(codec, in.PositBytes)
		} else {
			var comp []byte
			comp, err = codec.Compress(in.PositBytes)
			compLen = len(comp)
		}
		if err != nil {
			return nil, fmt.Errorf("positpack on %s: %w", in.Spec.Name, err)
		}
		row := SpecialPurposeRow{
			Input:     in.Spec.Name,
			PackRatio: compress.Ratio(len(in.PositBytes), compLen),
		}
		for _, m := range st.Measurements {
			if m.Input == in.Spec.Name && m.Encoding == EncPosit && m.Ratio > row.GeneralRatio {
				row.BestGeneral, row.GeneralRatio = m.Codec, m.Ratio
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// NarrowStorageRow is one input's result for the paper's Section 5.1
// discussion: storing float32 data as half-width posit<16,2> halves the
// file before compression even starts, at the cost of precision.
type NarrowStorageRow struct {
	Input         string
	PrecisePct    float64 // % of float32 values that survive the posit16 roundtrip
	XZRatioF32    float64 // xz on the original float32 bytes
	EffectiveGain float64 // float32 size / compressed posit16 size
}

// NarrowStorageStudy converts every input to posit<16,2>, compresses the
// half-size stream with the xz-class codec, and reports the effective
// storage ratio relative to the original float32 bytes (requires the study
// to have been run so the xz float measurements exist).
func (st *Study) NarrowStorageStudy() ([]NarrowStorageRow, error) {
	codec, err := st.xzCodec()
	if err != nil {
		return nil, err
	}
	rows := make([]NarrowStorageRow, 0, len(st.Inputs))
	for _, in := range st.Inputs {
		words := make([]uint16, len(in.Floats))
		for i, f := range in.Floats {
			words[i] = uint16(posit.Posit16.FromFloat32(f))
		}
		buf := make([]byte, 2*len(words))
		for i, w := range words {
			buf[2*i] = byte(w)
			buf[2*i+1] = byte(w >> 8)
		}
		comp, err := codec.Compress(buf)
		if err != nil {
			return nil, fmt.Errorf("narrow storage on %s: %w", in.Spec.Name, err)
		}
		row := NarrowStorageRow{
			Input:         in.Spec.Name,
			PrecisePct:    posit.Posit16.RoundtripStats(in.Floats).PrecisePct(),
			EffectiveGain: float64(len(in.FloatBytes)) / float64(len(comp)),
		}
		if m, ok := st.Ratio("xz", in.Spec.Name, EncIEEE); ok {
			row.XZRatioF32 = m.Ratio
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// xzCodec finds the study's xz codec instance (or a fresh one).
func (st *Study) xzCodec() (compress.Codec, error) {
	for _, c := range st.Opts.Codecs {
		if c.Name() == "xz" {
			return c, nil
		}
	}
	return nil, fmt.Errorf("core: study ran without the xz codec")
}

// RenderNarrowStorage renders the Section 5.1 storage-saving extension.
func (st *Study) RenderNarrowStorage() (string, error) {
	rows, err := st.NarrowStorageStudy()
	if err != nil {
		return "", err
	}
	t := stats.NewTable("Input", "posit16 precise %", "xz CR (f32)", "effective CR (posit16+xz)")
	var gains, bases []float64
	for _, r := range rows {
		t.AddRow(r.Input, fmt.Sprintf("%.2f", r.PrecisePct),
			fmt.Sprintf("%.3f", r.XZRatioF32), fmt.Sprintf("%.3f", r.EffectiveGain))
		gains = append(gains, r.EffectiveGain)
		bases = append(bases, r.XZRatioF32)
	}
	t.AddRow("geomean", "", fmt.Sprintf("%.3f", stats.GeoMean(bases)),
		fmt.Sprintf("%.3f", stats.GeoMean(gains)))
	return t.String(), nil
}

// RenderSpecialPurpose renders the extension comparison.
func (st *Study) RenderSpecialPurpose() (string, error) {
	rows, err := st.SpecialPurposeStudy()
	if err != nil {
		return "", err
	}
	t := stats.NewTable("Input", "positpack CR", "best general", "its CR")
	var packs, gens []float64
	for _, r := range rows {
		t.AddRow(r.Input, fmt.Sprintf("%.3f", r.PackRatio), r.BestGeneral,
			fmt.Sprintf("%.3f", r.GeneralRatio))
		packs = append(packs, r.PackRatio)
		gens = append(gens, r.GeneralRatio)
	}
	t.AddRow("geomean", fmt.Sprintf("%.3f", stats.GeoMean(packs)), "",
		fmt.Sprintf("%.3f", stats.GeoMean(gens)))
	return t.String(), nil
}
