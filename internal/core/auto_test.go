package core

import (
	"strings"
	"testing"
)

// TestAutoStudy checks the adaptive-selection extension: every input x
// encoding cell gets a decision the study actually measured, per-file best
// is never below the auto pick, and the geomean gap stays inside the 1%
// acceptance envelope the advisor is built to hold.
func TestAutoStudy(t *testing.T) {
	st := smallStudy(t)
	rows, err := st.AutoStudy()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(st.Inputs); len(rows) != want {
		t.Fatalf("got %d auto rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Chosen == "" || r.AutoRatio <= 0 {
			t.Fatalf("bad decision row %+v", r)
		}
		if r.Chosen == "lc" {
			t.Fatalf("offline auto study must stick to registry codecs, chose lc on %s", r.Input)
		}
		if r.BestRatio < r.AutoRatio {
			t.Fatalf("per-file best %.3f below auto pick %.3f on %s (%s)",
				r.BestRatio, r.AutoRatio, r.Input, r.Encoding)
		}
	}
	for _, enc := range []Encoding{EncIEEE, EncPosit} {
		auto, best := AutoGeoMeans(rows, enc)
		if auto <= 0 || best <= 0 {
			t.Fatalf("degenerate geomeans auto=%.3f best=%.3f (%s)", auto, best, enc)
		}
		if gap := 100 * (best - auto) / best; gap > 1.0 {
			t.Errorf("auto geomean %.3f trails per-file best %.3f by %.2f%% (%s), want <= 1%%",
				auto, best, gap, enc)
		}
	}
}

// TestAutoStudyDeterministic pins that two offline replays pick the same
// codecs: the sampler is seeded and the advisor breaks ties stably.
func TestAutoStudyDeterministic(t *testing.T) {
	st := smallStudy(t)
	a, err := st.AutoStudy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.AutoStudy()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Chosen != b[i].Chosen {
			t.Fatalf("replay diverged on %s (%s): %q vs %q",
				a[i].Input, a[i].Encoding, a[i].Chosen, b[i].Chosen)
		}
	}
}

func TestRenderAutoStudy(t *testing.T) {
	st := smallStudy(t)
	out, err := st.RenderAutoStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"auto pick", "geomean (ieee)", "geomean (posit)", "gap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered auto study missing %q:\n%s", want, out)
		}
	}
}
