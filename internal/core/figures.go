package core

import (
	"fmt"
	"sort"
	"strings"

	"positbench/internal/compress/all"
	"positbench/internal/sdrbench"
	"positbench/internal/stats"
)

// This file turns a Study into the paper's tables and figures, each as a
// structured value plus a text renderer used by cmd/repro and the
// EXPERIMENTS.md generator.

// Table1 returns the compressor inventory (paper Table 1).
func Table1() string {
	t := stats.NewTable("Name", "Version", "Source")
	for _, info := range all.Infos() {
		t.AddRow(info.Name, info.Version, info.Source)
	}
	return t.String()
}

// Table2 returns the dataset inventory (paper Table 2).
func Table2() string {
	t := stats.NewTable("Name", "Description")
	for _, d := range sdrbench.Datasets() {
		t.AddRow(d.Name, d.Description)
	}
	return t.String()
}

// Table3 renders the input inventory (paper Table 3) with both the paper's
// original sizes and this run's generated sizes.
func (st *Study) Table3() string {
	t := stats.NewTable("Name", "Dataset", "Paper size", "Generated size")
	for _, in := range st.Inputs {
		t.AddRow(in.Spec.Name, in.Spec.Dataset, in.Spec.PaperSize,
			fmt.Sprintf("%d MB", len(in.FloatBytes)>>20))
	}
	return t.String()
}

// FigureBar is one bar of Figures 3, 4, or 6.
type FigureBar struct {
	Codec    string
	Ratio    float64 // geometric-mean compression ratio
	DeltaPct float64 // Figure 4: % change vs the IEEE ratio (0 for Fig. 3)
}

// Figure3 returns geometric-mean ratios per codec on IEEE data.
func (st *Study) Figure3() []FigureBar {
	var bars []FigureBar
	for _, name := range st.CodecNames() {
		bars = append(bars, FigureBar{Codec: name, Ratio: st.GeoMeanRatio(name, EncIEEE)})
	}
	sortBars(bars)
	return bars
}

// Figure4 returns geometric-mean ratios per codec on posit data, with the
// percentage delta against the same codec's IEEE ratio.
func (st *Study) Figure4() []FigureBar {
	var bars []FigureBar
	for _, name := range st.CodecNames() {
		ieeeRatio := st.GeoMeanRatio(name, EncIEEE)
		positRatio := st.GeoMeanRatio(name, EncPosit)
		bars = append(bars, FigureBar{
			Codec:    name,
			Ratio:    positRatio,
			DeltaPct: stats.PctDelta(ieeeRatio, positRatio),
		})
	}
	sortBars(bars)
	return bars
}

func sortBars(bars []FigureBar) {
	sort.Slice(bars, func(i, j int) bool { return bars[i].Codec < bars[j].Codec })
}

// RenderFigure renders bars as an ASCII horizontal bar chart.
func RenderFigure(title string, bars []FigureBar, withDelta bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxR := 0.0
	for _, bar := range bars {
		if bar.Ratio > maxR {
			maxR = bar.Ratio
		}
	}
	for _, bar := range bars {
		b.WriteString(stats.Bar(bar.Codec, bar.Ratio, maxR, 50))
		if withDelta {
			fmt.Fprintf(&b, "  (%+.2f%% vs float)", bar.DeltaPct)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure5 renders the biased-exponent distribution of every input.
func (st *Study) Figure5() string {
	var b strings.Builder
	for _, in := range st.Inputs {
		fmt.Fprintf(&b, "--- %s (%s) ---\n", in.Spec.Name, in.Spec.Dataset)
		b.WriteString(in.Histogram.RenderASCII(50))
	}
	return b.String()
}

// PrecisionRow is one input's Section 4.2 result.
type PrecisionRow struct {
	Input      string
	PreciseES3 float64 // % exact roundtrips under posit<32,3>
	PreciseES2 float64 // % exact roundtrips under posit<32,2>
}

// Precision returns the Section 4.2 study: per-input precise percentages
// and the two geometric means that motivated es=3.
func (st *Study) Precision() (rows []PrecisionRow, geoES3, geoES2 float64) {
	var l3, l2 []float64
	for _, in := range st.Inputs {
		r := PrecisionRow{
			Input:      in.Spec.Name,
			PreciseES3: in.StatsES3.PrecisePct(),
			PreciseES2: in.StatsES2.PrecisePct(),
		}
		rows = append(rows, r)
		l3 = append(l3, r.PreciseES3)
		l2 = append(l2, r.PreciseES2)
	}
	return rows, stats.GeoMean(l3), stats.GeoMean(l2)
}

// RenderPrecision renders the Section 4.2 table.
func (st *Study) RenderPrecision() string {
	rows, g3, g2 := st.Precision()
	t := stats.NewTable("Input", "es=3 precise %", "es=2 precise %")
	for _, r := range rows {
		t.AddRow(r.Input, fmt.Sprintf("%.2f", r.PreciseES3), fmt.Sprintf("%.2f", r.PreciseES2))
	}
	t.AddRow("geomean", fmt.Sprintf("%.2f", g3), fmt.Sprintf("%.2f", g2))
	return t.String()
}

// Figure6Result compares the single global LC pipeline against per-file
// pipelines for one encoding.
type Figure6Result struct {
	Encoding       Encoding
	GlobalPipeline string
	GlobalGeoMean  float64
	PerFileGeoMean float64
	GainPct        float64 // per-file improvement over global, in %
}

// Figure6 computes the per-file-LC comparison (requires Opts.WithLC).
func (st *Study) Figure6() ([]Figure6Result, error) {
	if st.LCPerFileFloat == nil || st.LCPerFilePosit == nil {
		return nil, fmt.Errorf("core: study ran without LC; enable Options.WithLC")
	}
	var out []Figure6Result
	for _, enc := range []Encoding{EncIEEE, EncPosit} {
		perFile := st.LCPerFileFloat
		pipe := st.LCFloatPipeline
		if enc == EncPosit {
			perFile = st.LCPerFilePosit
			pipe = st.LCPositPipeline
		}
		var pf []float64
		for _, r := range perFile {
			pf = append(pf, r.Ratio)
		}
		global := st.GeoMeanRatio("lc", enc)
		perFileGeo := stats.GeoMean(pf)
		out = append(out, Figure6Result{
			Encoding:       enc,
			GlobalPipeline: pipe.String(),
			GlobalGeoMean:  global,
			PerFileGeoMean: perFileGeo,
			GainPct:        stats.PctDelta(global, perFileGeo),
		})
	}
	return out, nil
}

// RenderFigure6 renders the comparison.
func (st *Study) RenderFigure6() (string, error) {
	res, err := st.Figure6()
	if err != nil {
		return "", err
	}
	t := stats.NewTable("Encoding", "Global pipeline", "Global CR", "Per-file CR", "Gain")
	for _, r := range res {
		t.AddRow(string(r.Encoding), r.GlobalPipeline,
			fmt.Sprintf("%.3f", r.GlobalGeoMean),
			fmt.Sprintf("%.3f", r.PerFileGeoMean),
			fmt.Sprintf("%+.2f%%", r.GainPct))
	}
	return t.String(), nil
}

// RenderMeasurements renders every raw measurement (the study's appendix).
func (st *Study) RenderMeasurements() string {
	t := stats.NewTable("Codec", "Input", "Encoding", "Original", "Compressed", "Ratio")
	ms := append([]Measurement(nil), st.Measurements...)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Codec != ms[j].Codec {
			return ms[i].Codec < ms[j].Codec
		}
		if ms[i].Input != ms[j].Input {
			return ms[i].Input < ms[j].Input
		}
		return ms[i].Encoding < ms[j].Encoding
	})
	for _, m := range ms {
		t.AddRow(m.Codec, m.Input, string(m.Encoding), m.OrigLen, m.CompLen,
			fmt.Sprintf("%.3f", m.Ratio))
	}
	return t.String()
}
