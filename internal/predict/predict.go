// Package predict implements the FCM/DFCM predictive codec family for
// 32-bit word streams (FPC/pFPC-class, after Burtscher & Ratanaworabhan):
// two hash-table value predictors run over the stream, the better one is
// selected per block, and the XOR residual between value and prediction is
// coded by its leading-zero count. On smooth float or posit data the
// predictors land close to the true value, the residual's high bits cancel,
// and most words collapse to a 4-bit "perfectly predicted" bucket.
//
// The package exposes one codec under two registry names: "fpc32" codes
// residuals as plain LZC bucket + remainder bits (fastest), and "fpc-posit"
// (constructed by positpack.NewV2) splits residuals into sign / LZC-bucket /
// mantissa planes with a per-block Huffman code over the buckets, trading a
// little speed for ratio on posit<32,3> word streams whose regime-heavy top
// bits predict well.
package predict

import (
	"math/bits"
	"sync"

	"positbench/internal/bitio"
)

// blockWords is the predictor-selection granularity: for each block of this
// many 32-bit words the encoder emits one selection byte choosing FCM or
// DFCM, whichever codes the block smaller. 4096 words = 16 KiB keeps the
// selection overhead under 0.007% while adapting within a chunk.
const blockWords = 4096

const (
	minTableBits = 4
	maxTableBits = 12
)

// tableBitsFor sizes the predictor hash tables from the word count of one
// compression call. Tables are a pure function of the input length, so the
// decoder derives the identical size from the declared length and no table
// parameters travel in the stream. Small inputs get small tables (cheap to
// clear); large chunks cap at 2^12 entries, the pFPC sweet spot where the
// tables stay resident in L1/L2.
func tableBitsFor(words int) uint {
	b := uint(bits.Len(uint(words)))
	if b < minTableBits {
		return minTableBits
	}
	if b > maxTableBits {
		return maxTableBits
	}
	return b
}

// fcmHash advances the FCM context hash after seeing value v. The shift/xor
// constants are the 32-bit adaptation of FPC's 64-bit hash: six bits of old
// context survive each step, and only the value's high (sign/exponent/regime)
// bits enter the hash, so nearby floats share a context.
func fcmHash(h, v, mask uint32) uint32 {
	return ((h << 6) ^ (v >> 21)) & mask
}

// dfcmHash advances the DFCM context hash after seeing delta (v - last).
func dfcmHash(h, delta, mask uint32) uint32 {
	return ((h << 2) ^ (delta >> 21)) & mask
}

// bucketOf maps a residual's significant-bit count onto a 4-bit LZC bucket.
// Bucket 0 is reserved for the exact-prediction residual 0; buckets 1..15
// each cover two significant-bit counts (2b+1 and 2b+2, bucket 1 also
// absorbing 1..2), so the remainder is coded in level(bucket) bits.
func bucketOf(r uint32) int {
	sig := bits.Len32(r)
	if sig == 0 {
		return 0
	}
	b := (sig - 1) / 2
	if b < 1 {
		return 1
	}
	return b
}

// level is the number of remainder bits coded for a bucket: 0 for the
// perfectly predicted bucket, otherwise the largest significant-bit count
// the bucket covers (2b+2, capped at the word width).
func level(b int) uint {
	if b <= 0 {
		return 0
	}
	l := uint(2*b + 2)
	if l > 32 {
		l = 32
	}
	return l
}

// predictors bundles the FCM and DFCM state for one compression or
// decompression call. Both predictors are always updated with the true
// value regardless of which one a block selects, so the decoder — which
// learns the selection from the stream — stays in lockstep with the
// encoder's tables.
type predictors struct {
	fcm   []uint32 // FCM table: context hash -> predicted next value
	dfcm  []uint32 // DFCM table: context hash -> predicted next delta
	mask  uint32
	hf    uint32 // FCM context hash
	hd    uint32 // DFCM context hash
	last  uint32 // previous true value (DFCM base)
	fpred uint32 // current FCM prediction (fcm[hf])
	dpred uint32 // current DFCM prediction (dfcm[hd] + last)
}

// reset clears the tables for a table size of tb bits and zeroes the
// context. Compression is a pure function of the input: every call starts
// from this state, which is what makes parallel chunk output byte-identical
// to serial and lets chunk boundaries reset cleanly.
func (p *predictors) reset(tb uint) {
	size := 1 << tb
	if cap(p.fcm) < size {
		p.fcm = make([]uint32, size)
		p.dfcm = make([]uint32, size)
	}
	p.fcm = p.fcm[:size]
	p.dfcm = p.dfcm[:size]
	for i := range p.fcm {
		p.fcm[i] = 0
	}
	for i := range p.dfcm {
		p.dfcm[i] = 0
	}
	p.mask = uint32(size - 1)
	p.hf, p.hd, p.last = 0, 0, 0
	p.fpred = 0
	p.dpred = 0
}

// predict loads both predictions for the next word. Call exactly once
// before the matching update.
func (p *predictors) predict() (fcmPred, dfcmPred uint32) {
	p.fpred = p.fcm[p.hf]
	p.dpred = p.dfcm[p.hd] + p.last
	return p.fpred, p.dpred
}

// update trains both predictors on the true value v.
func (p *predictors) update(v uint32) {
	p.fcm[p.hf] = v
	p.hf = fcmHash(p.hf, v, p.mask)
	delta := v - p.last
	p.dfcm[p.hd] = delta
	p.hd = dfcmHash(p.hd, delta, p.mask)
	p.last = v
}

// state is the pooled per-call scratch: predictor tables, per-block residual
// buffers for both candidate predictors, and the bit writer/reader. Pooling
// it keeps the steady-state chunk pipeline allocation-free.
type state struct {
	p    predictors
	fres [blockWords]uint32 // FCM residuals for the current block
	dres [blockWords]uint32 // DFCM residuals for the current block
	res  [blockWords]uint32 // decode-side residual buffer
	sel  []byte             // per-block predictor selection bytes
	bw   *bitio.Writer
	br   *bitio.Reader
}

var statePool = sync.Pool{
	New: func() interface{} {
		return &state{bw: bitio.NewWriter(4096), br: bitio.NewReader(nil)}
	},
}

func getState(tb uint) *state {
	st := statePool.Get().(*state)
	st.p.reset(tb)
	st.bw.Reset()
	return st
}

func putState(st *state) { statePool.Put(st) }
