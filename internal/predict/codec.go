package predict

import (
	"encoding/binary"

	"positbench/internal/bitio"
	"positbench/internal/compress"
	"positbench/internal/huffman"
)

// Stream layout (inside the registry's container frame, which supplies the
// magic, codec identity, CRCs, and declared-length check):
//
//	uvarint originalLen
//	mode byte                  0 = plain LZC, 1 = split planes, 2 = stored
//	mode 2: originalLen raw bytes, end of stream
//	tail bytes                 originalLen % 4 raw bytes (words are 32-bit)
//	selection bytes            one per 4096-word block: 0 = FCM, 1 = DFCM
//	bit payload                per-block residual coding, byte-aligned at end
//
// Plain payload, per word: 4-bit LZC bucket, then level(bucket) residual
// bits. Split payload, per block: a Huffman length table over the 16 bucket
// symbols (huffman.WriteLengths), the block's bucket symbols Huffman-coded,
// then one sign bit (residual bit 31) per bucket-15 residual (smaller
// buckets provably have bit 31 clear), then min(level, 31) low mantissa
// bits per nonzero residual. Stored mode is the
// incompressible-input escape: the encoder falls back to it whenever coding
// would expand past the raw bytes, bounding worst-case expansion to the
// uvarint plus one mode byte.
const (
	modePlain  = 0
	modeSplit  = 1
	modeStored = 2
)

// Force pins the per-block predictor selection, primarily so fuzz targets
// can drive each predictor's code path in isolation. The decoder reads the
// selection from the stream, so streams from any Force setting interoperate.
type Force int

const (
	// ForceAuto selects the cheaper predictor per block (the default).
	ForceAuto Force = iota
	// ForceFCM always selects the finite-context-method predictor.
	ForceFCM
	// ForceDFCM always selects the differential FCM predictor.
	ForceDFCM
)

// Config tunes a predictive codec instance.
type Config struct {
	// Split routes residuals through the sign/LZC/mantissa plane split with
	// a per-block Huffman code over the buckets instead of plain 4-bit
	// bucket coding. Better ratio on regime-heavy posit words, slightly
	// slower.
	Split bool
	// Force pins predictor selection; see Force.
	Force Force
}

// Codec is the FCM/DFCM predictive compressor over 32-bit word streams.
// Inputs of any byte length are accepted: the 0–3 bytes past the last whole
// word travel raw. The zero value is not usable; construct with New or
// NewNamed.
type Codec struct {
	name string
	cfg  Config
}

// New returns the "fpc32" codec: plain LZC coding, automatic per-block
// predictor selection — the speed-oriented family member for float32 words.
func New() *Codec { return NewNamed("fpc32", Config{}) }

// NewNamed returns a predictive codec with an explicit registry name and
// configuration. positpack.NewV2 uses this to build "fpc-posit".
func NewNamed(name string, cfg Config) *Codec {
	return &Codec{name: name, cfg: cfg}
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return c.name }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	mode := "plain LZC residuals"
	if c.cfg.Split {
		mode = "sign/LZC/mantissa split residuals"
	}
	return compress.Info{
		Name:    c.name,
		Version: "1.0",
		Source:  "FCM/DFCM value prediction (FPC/pFPC class), " + mode,
	}
}

// DecodeIsLight implements compress.LightDecoder: decoding is table lookups
// and bit reads at memory-bandwidth-class speed, so on a single CPU the
// parallel engine's pool overhead costs more than it can recover.
func (c *Codec) DecodeIsLight() bool { return true }

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	return c.CompressAppend(nil, src)
}

// CompressAppend implements compress.AppendCompressor.
func (c *Codec) CompressAppend(dst, src []byte) ([]byte, error) {
	n := len(src)
	dst = bitio.PutUvarint(dst, uint64(n))
	if n == 0 {
		return dst, nil
	}
	words := n >> 2
	tail := src[n&^3:]
	if words == 0 {
		dst = append(dst, modeStored)
		return append(dst, src...), nil
	}

	st := getState(tableBitsFor(words))
	defer putState(st)
	sel := st.sel[:0]
	var err error
	for base := 0; base < words; base += blockWords {
		m := words - base
		if m > blockWords {
			m = blockWords
		}
		choice := c.selectAndResiduals(st, src[4*base:], m)
		sel = append(sel, choice)
		res := st.fres[:m]
		if choice == 1 {
			res = st.dres[:m]
		}
		if c.cfg.Split {
			err = encodeSplitBlock(st.bw, res)
		} else {
			encodePlainBlock(st.bw, res)
		}
		if err != nil {
			return nil, err
		}
	}
	st.sel = sel
	payload := st.bw.Bytes()

	if 1+len(tail)+len(sel)+len(payload) >= 1+n {
		dst = append(dst, modeStored)
		return append(dst, src...), nil
	}
	mode := byte(modePlain)
	if c.cfg.Split {
		mode = modeSplit
	}
	dst = append(dst, mode)
	dst = append(dst, tail...)
	dst = append(dst, sel...)
	return append(dst, payload...), nil
}

// selectAndResiduals computes the FCM and DFCM residuals for one block of m
// words starting at src, trains both predictors on the true values, and
// returns the selection byte (0 = FCM, 1 = DFCM) under the codec's Force
// policy. In automatic mode the block's plain-coding bit cost decides;
// ties go to FCM, matching the decoder's expectation of deterministic
// streams.
func (c *Codec) selectAndResiduals(st *state, src []byte, m int) byte {
	fcost, dcost := 0, 0
	for i := 0; i < m; i++ {
		v := binary.LittleEndian.Uint32(src[4*i:])
		fp, dp := st.p.predict()
		st.p.update(v)
		fr, dr := v^fp, v^dp
		st.fres[i] = fr
		st.dres[i] = dr
		fcost += 4 + int(level(bucketOf(fr)))
		dcost += 4 + int(level(bucketOf(dr)))
	}
	switch c.cfg.Force {
	case ForceFCM:
		return 0
	case ForceDFCM:
		return 1
	}
	if dcost < fcost {
		return 1
	}
	return 0
}

// encodePlainBlock writes each residual as a 4-bit bucket followed by
// level(bucket) low bits.
func encodePlainBlock(bw *bitio.Writer, res []uint32) {
	for _, r := range res {
		b := bucketOf(r)
		bw.WriteBits(uint64(b), 4)
		if l := level(b); l > 0 {
			bw.WriteBits(uint64(r), l)
		}
	}
}

// encodeSplitBlock writes the block as three planes: Huffman-coded bucket
// symbols (table first), then the sign bits of nonzero residuals, then
// their low mantissa bits. Grouping like bits lets the bucket plane carry
// almost all the entropy on well-predicted data.
func encodeSplitBlock(bw *bitio.Writer, res []uint32) error {
	var freqs [16]int
	for _, r := range res {
		freqs[bucketOf(r)]++
	}
	lengths, err := huffman.BuildLengths(freqs[:], huffman.MaxBits)
	if err != nil {
		return err
	}
	enc, err := huffman.NewEncoder(lengths)
	if err != nil {
		return err
	}
	if err := huffman.WriteLengths(bw, lengths); err != nil {
		return err
	}
	for _, r := range res {
		enc.Encode(bw, bucketOf(r))
	}
	// Sign plane: residual bit 31 is provably zero for every bucket below
	// 15 (their levels cap at 30 significant bits), so only full-width
	// residuals carry a sign bit.
	for _, r := range res {
		if bucketOf(r) == 15 {
			bw.WriteBit(uint(r >> 31))
		}
	}
	for _, r := range res {
		b := bucketOf(r)
		if b == 0 {
			continue
		}
		l := level(b)
		if l > 31 {
			l = 31
		}
		bw.WriteBits(uint64(r&0x7fffffff), l)
	}
	return nil
}

// Decompress implements compress.Codec with default limits.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	return c.DecompressAppendLimits(nil, comp, lim)
}

// DecompressAppendLimits implements compress.AppendDecompressor. The output
// buffer grows with actual decode progress (never from the declared length
// alone), so a hostile header cannot force a large allocation past the
// limit check.
func (c *Codec) DecompressAppendLimits(dst, comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	n64, used, err := bitio.Uvarint(comp)
	if err != nil {
		return nil, err
	}
	if err := lim.CheckDeclared(n64, len(comp)); err != nil {
		return nil, err
	}
	n := int(n64)
	if n == 0 {
		return dst, nil
	}
	rest := comp[used:]
	if len(rest) == 0 {
		return nil, compress.Errorf(compress.ErrTruncated, "predict: missing mode byte")
	}
	mode := rest[0]
	rest = rest[1:]
	switch mode {
	case modeStored:
		if len(rest) < n {
			return nil, compress.Errorf(compress.ErrTruncated, "predict: stored payload %d of %d bytes", len(rest), n)
		}
		return append(dst, rest[:n]...), nil
	case modePlain, modeSplit:
	default:
		return nil, compress.Errorf(compress.ErrCorrupt, "predict: unknown mode %d", mode)
	}
	words := n >> 2
	tailLen := n & 3
	if words == 0 {
		return nil, compress.Errorf(compress.ErrCorrupt, "predict: mode %d with no whole words", mode)
	}
	if len(rest) < tailLen {
		return nil, compress.Errorf(compress.ErrTruncated, "predict: missing tail bytes")
	}
	tail := rest[:tailLen]
	rest = rest[tailLen:]
	nblocks := (words + blockWords - 1) / blockWords
	if len(rest) < nblocks {
		return nil, compress.Errorf(compress.ErrTruncated, "predict: %d selection bytes, need %d", len(rest), nblocks)
	}
	sel := rest[:nblocks]
	rest = rest[nblocks:]

	st := getState(tableBitsFor(words))
	defer putState(st)
	st.br.Reset(rest)

	for blk := 0; blk < nblocks; blk++ {
		m := words - blk*blockWords
		if m > blockWords {
			m = blockWords
		}
		res := st.res[:m]
		if mode == modePlain {
			err = decodePlainBlock(st.br, res)
		} else {
			err = decodeSplitBlock(st.br, res)
		}
		if err != nil {
			return nil, err
		}
		useDFCM := false
		switch sel[blk] {
		case 0:
		case 1:
			useDFCM = true
		default:
			return nil, compress.Errorf(compress.ErrCorrupt, "predict: selection byte %d", sel[blk])
		}
		dst = grow(dst, 4*m)
		out := dst[len(dst)-4*m:]
		for i, r := range res {
			fp, dp := st.p.predict()
			v := fp ^ r
			if useDFCM {
				v = dp ^ r
			}
			st.p.update(v)
			binary.LittleEndian.PutUint32(out[4*i:], v)
		}
	}
	return append(dst, tail...), nil
}

// decodePlainBlock inverts encodePlainBlock.
func decodePlainBlock(br *bitio.Reader, res []uint32) error {
	for i := range res {
		b, err := br.ReadBits(4)
		if err != nil {
			return err
		}
		var r uint64
		if l := level(int(b)); l > 0 {
			if r, err = br.ReadBits(l); err != nil {
				return err
			}
		}
		res[i] = uint32(r)
	}
	return nil
}

// decodeSplitBlock inverts encodeSplitBlock. Bucket symbols land in res as
// an intermediate, then the sign and mantissa planes rebuild the residuals
// in place.
func decodeSplitBlock(br *bitio.Reader, res []uint32) error {
	lengths, err := huffman.ReadLengths(br, 16)
	if err != nil {
		return err
	}
	dec, err := huffman.NewDecoder(lengths)
	if err != nil {
		return compress.Errorf(compress.ErrCorrupt, "predict: bucket code: %v", err)
	}
	for i := range res {
		sym, err := dec.Decode(br)
		if err != nil {
			return err
		}
		res[i] = uint32(sym)
	}
	for i, b := range res {
		if b == 15 {
			s, err := br.ReadBit()
			if err != nil {
				return err
			}
			res[i] = b | uint32(s)<<31 // bucket in the low nibble, sign parked at bit 31
		}
	}
	for i, packed := range res {
		b := int(packed & 0xf)
		if b == 0 {
			continue
		}
		l := level(b)
		if l > 31 {
			l = 31
		}
		m, err := br.ReadBits(l)
		if err != nil {
			return err
		}
		res[i] = packed&0x80000000 | uint32(m)
	}
	return nil
}

// grow extends dst by need bytes, doubling capacity as actual output
// materializes.
func grow(dst []byte, need int) []byte {
	if cap(dst)-len(dst) >= need {
		return dst[:len(dst)+need]
	}
	newCap := 2 * cap(dst)
	if newCap < len(dst)+need {
		newCap = len(dst) + need
	}
	if newCap < 1024 {
		newCap = 1024
	}
	nd := make([]byte, len(dst)+need, newCap)
	copy(nd, dst)
	return nd
}

var (
	_ compress.Codec              = (*Codec)(nil)
	_ compress.AppendCompressor   = (*Codec)(nil)
	_ compress.AppendDecompressor = (*Codec)(nil)
	_ compress.Limited            = (*Codec)(nil)
	_ compress.Describer          = (*Codec)(nil)
	_ compress.LightDecoder       = (*Codec)(nil)
)
