package predict

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positbench/internal/bitio"
	"positbench/internal/compress"
	"positbench/internal/compress/codectest"
	"positbench/internal/compress/lz4c"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
)

var updateGolden = flag.Bool("update", false, "regenerate predict golden vector files")

// newSplit builds the split-plane family member under test, with the same
// configuration positpack.NewV2 uses (that wrapper has its own suite).
func newSplit() *Codec { return NewNamed("fpc-split", Config{Split: true}) }

func TestConformancePlain(t *testing.T) { codectest.Run(t, New()) }
func TestConformanceSplit(t *testing.T) { codectest.Run(t, newSplit()) }

func TestConformanceForced(t *testing.T) {
	// The forced-predictor configs are what the fuzz targets drive; they
	// must clear the same wall as automatic selection.
	codectest.Run(t, NewNamed("fpc-fcm", Config{Force: ForceFCM}))
	codectest.Run(t, NewNamed("fpc-dfcm", Config{Split: true, Force: ForceDFCM}))
}

// repeatU32 builds a constant word stream.
func repeatU32(v uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// wordBytes packs uint32s little-endian, the codec's word format.
func wordBytes(vals ...uint32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// residuals runs one predictor over vals exactly as the encoder does and
// returns the XOR residual stream.
func residuals(vals []uint32, useDFCM bool, tb uint) []uint32 {
	var p predictors
	p.reset(tb)
	out := make([]uint32, len(vals))
	for i, v := range vals {
		fp, dp := p.predict()
		p.update(v)
		if useDFCM {
			out[i] = v ^ dp
		} else {
			out[i] = v ^ fp
		}
	}
	return out
}

// Hand-derived anchors: with zeroed tables and values below 2^21 the hashes
// stay at slot 0, so the predictions can be traced on paper.
//
// FCM over [5,5,5,5]: the first prediction is 0 (residual 5); from then on
// slot 0 holds 5 and every residual is 0.
//
// DFCM over [5,5,5,5]: pred(w1)=0 (residual 5); after w1 the delta table
// holds 5, so pred(w2)=5+5=10 and residual 5^10=0xF; after w2 the stored
// delta is 0, so w3 and w4 predict 5 exactly.
//
// DFCM over the stride [0,4,8,12]: the first two deltas miss (residuals 0
// and 4), then the learned delta 4 predicts the rest exactly.
func TestResidualAnchors(t *testing.T) {
	cases := []struct {
		name string
		vals []uint32
		dfcm bool
		want []uint32
	}{
		{"fcm-constant", []uint32{5, 5, 5, 5}, false, []uint32{5, 0, 0, 0}},
		{"dfcm-constant", []uint32{5, 5, 5, 5}, true, []uint32{5, 0xF, 0, 0}},
		{"dfcm-stride", []uint32{0, 4, 8, 12}, true, []uint32{0, 4, 0, 0}},
		{"fcm-stride-misses", []uint32{0, 4, 8, 12}, false, []uint32{0, 4, 12, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := residuals(tc.vals, tc.dfcm, tableBitsFor(len(tc.vals)))
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Errorf("residual[%d] = %#x, want %#x (all: %#x)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}

func TestBucketLevelTable(t *testing.T) {
	// Every significant-bit count must land in a bucket whose level covers
	// it, and buckets must fit the 4-bit field.
	for sig := 0; sig <= 32; sig++ {
		var r uint32
		if sig > 0 {
			r = 1 << uint(sig-1)
		}
		b := bucketOf(r)
		if b < 0 || b > 15 {
			t.Fatalf("sig %d: bucket %d out of 4-bit range", sig, b)
		}
		if uint(sig) > level(b) {
			t.Fatalf("sig %d: bucket %d level %d cannot represent the residual", sig, b, level(b))
		}
		if sig == 0 && b != 0 || sig > 0 && b == 0 {
			t.Fatalf("sig %d: bucket %d breaks the zero-residual reservation", sig, b)
		}
	}
}

// goldenCases are short deterministic streams whose compressed bytes are
// pinned in testdata: any change to the stream format, hash constants,
// bucket table, or selection policy shows up as a diff, not silent drift.
// Regenerate deliberately with:
//
//	go test ./internal/predict -run TestGoldenVectors -update
func goldenCases() []struct {
	name string
	data []byte
} {
	smooth := make([]uint32, 64)
	for i := range smooth {
		smooth[i] = math.Float32bits(float32(math.Sin(float64(i)/9) + 2))
	}
	stride := make([]uint32, 64)
	for i := range stride {
		stride[i] = uint32(i) * 4096
	}
	return []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"tail-only", []byte{1, 2, 3}},
		{"constant", wordBytes(repeatU32(0x40a00000, 16)...)},
		{"stride", wordBytes(stride...)},
		{"smooth-sine", wordBytes(smooth...)},
		{"smooth-with-tail", append(wordBytes(smooth...), 0xAA, 0xBB)},
	}
}

func TestGoldenVectors(t *testing.T) {
	codecs := []*Codec{New(), newSplit()}
	for _, c := range codecs {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			path := filepath.Join("testdata", "golden_"+c.Name()+".txt")
			if *updateGolden {
				var b strings.Builder
				fmt.Fprintf(&b, "# %s golden vectors: case hex(compressed)\n", c.Name())
				for _, gc := range goldenCases() {
					comp, err := c.Compress(gc.data)
					if err != nil {
						t.Fatal(err)
					}
					fmt.Fprintf(&b, "%s %s\n", gc.name, hex.EncodeToString(comp))
				}
				if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			file, err := os.Open(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			defer file.Close()
			want := map[string]string{}
			sc := bufio.NewScanner(file)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				parts := strings.Fields(line)
				if len(parts) == 1 {
					want[parts[0]] = "" // empty input compresses to header only? never: uvarint 0
				} else {
					want[parts[0]] = parts[1]
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			for _, gc := range goldenCases() {
				comp, err := c.Compress(gc.data)
				if err != nil {
					t.Fatal(err)
				}
				got := hex.EncodeToString(comp)
				w, ok := want[gc.name]
				if !ok {
					t.Errorf("case %q missing from golden file (regenerate with -update)", gc.name)
					continue
				}
				if got != w {
					t.Errorf("case %q compressed bytes drifted:\n got %s\nwant %s", gc.name, got, w)
				}
				back, err := c.Decompress(comp)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(back, gc.data) {
					t.Errorf("case %q golden stream does not roundtrip", gc.name)
				}
			}
		})
	}
}

// Perfectly predictable streams must compress to near the coding floor:
// 4 bits per word plain (1 bit per word split) plus per-block overhead.
func TestPerfectPredictionFloor(t *testing.T) {
	const n = 64 << 10 // bytes
	words := n / 4
	constant := wordBytes(repeatU32(math.Float32bits(3.25), words)...)
	stride := make([]uint32, words)
	for i := range stride {
		stride[i] = 1<<20 + uint32(i)*8192
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"constant", constant},
		{"stride", wordBytes(stride...)},
	}
	for _, c := range []*Codec{New(), newSplit()} {
		for _, tc := range cases {
			t.Run(c.Name()+"/"+tc.name, func(t *testing.T) {
				comp, err := c.Compress(tc.data)
				if err != nil {
					t.Fatal(err)
				}
				// Floor: 4 bits/word + selection bytes + header slack. The
				// first words of each predictor warm-up cost a few full
				// residuals; 64 bytes of slack covers them.
				limit := n/8 + n/16384 + 64
				if len(comp) > limit {
					t.Errorf("%s: %d bytes -> %d, want <= %d (near-perfect prediction floor)", tc.name, n, len(comp), limit)
				}
				back, err := c.Decompress(comp)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(back, tc.data) {
					t.Error("roundtrip mismatch")
				}
			})
		}
	}
}

// Compression is a pure function: pooled predictor state must reset between
// calls, so compressing B after A yields the same bytes as compressing B
// fresh. This is the property that makes parallel chunk output byte-equal
// to serial (codectest.StreamEquivalence then checks the engines
// themselves).
func TestStateResetsBetweenCalls(t *testing.T) {
	a := wordBytes(func() []uint32 {
		vals := make([]uint32, 5000)
		for i := range vals {
			vals[i] = uint32(i*i) * 2654435761
		}
		return vals
	}()...)
	b := sdrbenchBytes(t, 0, 4096)

	c := New()
	fresh, err := c.Compress(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Compress(a); err != nil { // dirty the pooled tables
			t.Fatal(err)
		}
		again, err := c.Compress(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fresh, again) {
			t.Fatalf("iteration %d: compressing the same input after other work changed the output (state leaked across calls)", i)
		}
	}
}

// sdrbenchBytes returns input spec i as a little-endian float32 byte stream.
func sdrbenchBytes(t *testing.T, i, n int) []byte {
	t.Helper()
	vals := sdrbench.Inputs()[i].Generate(n)
	out := make([]byte, 4*len(vals))
	for j, v := range vals {
		binary.LittleEndian.PutUint32(out[4*j:], math.Float32bits(v))
	}
	return out
}

// The acceptance bar from the issue: the predictive family must beat at
// least one existing registry codec's ratio on an sdrbench input. lz4 is
// the honest comparison — the paper's own result is that byte-oriented LZ
// cannot compress smooth float data, while a value predictor can.
func TestBeatsLZ4OnSdrbench(t *testing.T) {
	data := sdrbenchBytes(t, 2, 64<<10) // EXAALT dataset1.y: smooth MD field, lz4 ratio ~1.0
	for _, c := range []compress.Codec{New(), newSplit()} {
		pc, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		lc, err := lz4c.New().Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		pr := compress.Ratio(len(data), len(pc))
		lr := compress.Ratio(len(data), len(lc))
		t.Logf("%s: ratio %.3f vs lz4 %.3f on EXAALT dataset1.y", c.Name(), pr, lr)
		if pr <= lr {
			t.Errorf("%s ratio %.3f does not beat lz4 %.3f on a smooth sdrbench field", c.Name(), pr, lr)
		}
	}
}

// Posit words compress at least as well: the regime bits make the top of
// the word even more predictable.
func TestPositWordsCompress(t *testing.T) {
	vals := sdrbench.Inputs()[1].Generate(32 << 10)
	wordsP := posit.Posit32e3.FromFloat32Slice(nil, vals)
	data := posit.EncodeWordsLE(wordsP)
	c := newSplit()
	comp, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if r := compress.Ratio(len(data), len(comp)); r < 1.2 {
		t.Errorf("split codec ratio %.3f on posit<32,3> words, want >= 1.2", r)
	}
	back, err := c.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Error("posit word roundtrip mismatch")
	}
}

// Incompressible input must take the stored escape and stay within a few
// header bytes of the original.
func TestStoredFallbackBound(t *testing.T) {
	data := make([]byte, 64<<10)
	st := uint64(0x9E3779B97F4A7C15)
	for i := range data {
		st = st*6364136223846793005 + 1442695040888963407
		data[i] = byte(st >> 56)
	}
	for _, c := range []*Codec{New(), newSplit()} {
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(comp) > len(data)+8 {
			t.Errorf("%s: incompressible input expanded %d -> %d, stored fallback missing", c.Name(), len(data), len(comp))
		}
		back, err := c.Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Error("stored-mode roundtrip mismatch")
		}
	}
}

// Decode-side hostility: declared lengths past the cap must trip
// ErrLimitExceeded before any allocation-by-header, and structural garbage
// must map onto the shared taxonomy.
func TestDecodeLimitsAndTaxonomy(t *testing.T) {
	c := New()
	huge := bitio.PutUvarint(nil, 1<<40)
	if _, err := c.DecompressLimits(append(huge, modePlain), compress.DecodeLimits{MaxOutputBytes: 4096}); !errors.Is(err, compress.ErrLimitExceeded) {
		t.Errorf("huge declared length: %v, want ErrLimitExceeded", err)
	}
	bad := bitio.PutUvarint(nil, 8)
	bad = append(bad, 7) // unknown mode
	bad = append(bad, make([]byte, 16)...)
	if _, err := c.Decompress(bad); !errors.Is(err, compress.ErrCorrupt) {
		t.Errorf("unknown mode: %v, want ErrCorrupt", err)
	}
	comp, err := c.Compress(sdrbenchBytes(t, 0, 2048))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 2, len(comp) / 2, len(comp) - 1} {
		if _, err := c.Decompress(comp[:cut]); !errors.Is(err, compress.ErrCorrupt) {
			t.Errorf("truncation to %d: %v, want the corrupt taxonomy", cut, err)
		}
	}
}
