package predict

import (
	"bytes"
	"math"
	"testing"

	"positbench/internal/bitio"
	"positbench/internal/compress"
	"positbench/internal/compress/codectest"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
)

// fuzzSeedBytes is a deterministic sdrbench slice: real float structure so
// the fuzzer starts from streams that exercise the predictors, not just
// the stored fallback.
func fuzzSeedBytes(i, n int) []byte {
	vals := sdrbench.Inputs()[i].Generate(n)
	out := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		out = bitio.PutU32(out, math.Float32bits(v))
	}
	return out
}

// fuzzSeedPosit is the same field as posit<32,3> words, the fpc-posit
// input shape.
func fuzzSeedPosit(i, n int) []byte {
	vals := sdrbench.Inputs()[i].Generate(n)
	return posit.EncodeWordsLE(posit.Posit32e3.FromFloat32Slice(nil, vals))
}

// FuzzFCMRoundtrip pins the FCM code path: selection is forced so every
// block's residuals come from the finite-context predictor.
func FuzzFCMRoundtrip(f *testing.F) {
	f.Add(fuzzSeedBytes(0, 512))
	f.Add(fuzzSeedPosit(2, 512))
	codectest.FuzzRoundtrip(f, NewNamed("fpc-fcm", Config{Force: ForceFCM}))
}

// FuzzDFCMRoundtrip pins the DFCM path, in split-plane mode so the Huffman
// bucket coder fuzzes too.
func FuzzDFCMRoundtrip(f *testing.F) {
	f.Add(fuzzSeedBytes(4, 512))
	f.Add(fuzzSeedPosit(6, 512))
	codectest.FuzzRoundtrip(f, NewNamed("fpc-dfcm", Config{Split: true, Force: ForceDFCM}))
}

// FuzzResidualDecode is the decode-side target for the LZC residual parser:
// arbitrary bytes hit the uvarint header, mode byte, selection bytes, and
// both block decoders. Decoding may fail but must never panic or outgrow
// the decode limits; inputs that do decode must re-encode losslessly
// through the roundtrip the other direction.
func FuzzResidualDecode(f *testing.F) {
	plain := New()
	split := newSplit()
	for _, seed := range [][]byte{fuzzSeedBytes(1, 256), fuzzSeedPosit(3, 256)} {
		if comp, err := plain.Compress(seed); err == nil {
			f.Add(comp)
			f.Add(comp[:len(comp)/2]) // truncated mid-payload
			flip := append([]byte(nil), comp...)
			flip[len(flip)/3] ^= 0x40 // bit flip in the selection/payload region
			f.Add(flip)
		}
		if comp, err := split.Compress(seed); err == nil {
			f.Add(comp)
			f.Add(comp[:len(comp)-1])
		}
		f.Add(seed) // raw floats as hostile compressed input
	}
	f.Add([]byte{0})                              // declared empty
	f.Add(bitio.PutUvarint(nil, 1<<40))         // hostile declared length
	f.Add(append(bitio.PutUvarint(nil, 64), 7)) // unknown mode
	lim := compress.DecodeLimits{MaxOutputBytes: 1 << 24}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []*Codec{plain, split} {
			out, err := c.DecompressLimits(data, lim)
			if err != nil {
				continue
			}
			if limit := lim.OutputCap(len(data)); int64(len(out)) > limit {
				t.Fatalf("%s decoded %d bytes from %d input, over the %d cap", c.Name(), len(out), len(data), limit)
			}
			comp, err := c.Compress(out)
			if err != nil {
				t.Fatalf("%s re-compress of decoded output: %v", c.Name(), err)
			}
			back, err := c.Decompress(comp)
			if err != nil || !bytes.Equal(back, out) {
				t.Fatalf("%s re-roundtrip of decoded output failed: %v", c.Name(), err)
			}
		}
	})
}
