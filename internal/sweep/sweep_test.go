package sweep

import (
	"testing"
	"time"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/stats"
)

// TestRunShape pins the report format the CI gate consumes: one row per
// (codec, workers) with serial throughput re-measured on every row, sorted,
// speedups filled, and hardware recorded.
func TestRunShape(t *testing.T) {
	gz, err := all.Get("gzip")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{
		Codecs:  []compress.Codec{gz},
		Workers: []int{1, 2},
		Bytes:   64 << 10,
		Chunk:   16 << 10,
		MinTime: time.Millisecond,
		MinIter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rep.Results))
	}
	if rep.NumCPU < 1 || rep.GOMAXPROCS < 1 {
		t.Errorf("hardware not recorded: %+v", rep)
	}
	for i, r := range rep.Results {
		if r.Codec != "gzip" || r.Workers != []int{1, 2}[i] {
			t.Errorf("row %d: got (%s,%d)", i, r.Codec, r.Workers)
		}
		for name, v := range map[string]float64{
			"serial_mb_s":          r.SerialMBps,
			"parallel_mb_s":        r.ParallelMBps,
			"serial_decode_mb_s":   r.SerialDecodeMBps,
			"parallel_decode_mb_s": r.ParallelDecodeMBps,
			"speedup":              r.Speedup,
			"decode_speedup":       r.DecodeSpeedup,
		} {
			if v <= 0 {
				t.Errorf("row %d: %s not measured", i, name)
			}
		}
	}
	// Serial columns are paired with each parallel point (not copied), so
	// rows carry independent — but same-ballpark — serial measurements.
	s0, s1 := rep.Results[0].SerialMBps, rep.Results[1].SerialMBps
	if s0 <= 0 || s1 <= 0 {
		t.Error("serial throughput missing from a curve row")
	}
	// The report must satisfy its own intra-run gate with a generous noise
	// tolerance (tiny inputs on a loaded runner are jittery).
	if probs := stats.CheckScaling(rep, 60); len(probs) != 0 {
		t.Errorf("self-check failed: %v", probs)
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("Run with no codecs did not error")
	}
}

func TestSyntheticInputDeterministic(t *testing.T) {
	a, b := SyntheticInput(4096), SyntheticInput(4096)
	if len(a) != 4096 {
		t.Fatalf("len = %d", len(a))
	}
	if string(a) != string(b) {
		t.Error("synthetic input not deterministic")
	}
}
