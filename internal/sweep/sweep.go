// Package sweep measures per-core scaling curves for the streaming
// compression engine: serial vs parallel throughput for every codec,
// direction, and worker count, reported in the BENCH_compress.json schema
// (one BenchResult row per (codec, workers) pair, serial columns measured
// alongside each parallel point so each row is a self-contained,
// drift-free speedup sample).
//
// The package is the shared measurement core behind `compressbench
// -workers-sweep` and the `make bench-scaling` CI gate; cmd/benchdiff
// consumes the reports it produces.
package sweep

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"positbench/internal/compress"
	"positbench/internal/stats"
)

// DefaultWorkers is the canonical per-core curve: enough points to see the
// knee on small machines without a quadratic benchmark budget.
var DefaultWorkers = []int{1, 2, 4, 8}

// Options configures a scaling sweep. Zero values select the defaults
// noted on each field.
type Options struct {
	Codecs  []compress.Codec // required: codecs to measure
	Workers []int            // parallel worker counts; default DefaultWorkers
	Bytes   int              // synthetic input size; default 4 MiB
	Chunk   int              // stream chunk size; default 1 MiB
	Input   []byte           // explicit input; overrides Bytes when non-nil
	MinTime time.Duration    // minimum measuring time per point; default 300ms
	MinIter int              // minimum iterations per point; default 2
}

func (o *Options) fill() {
	if len(o.Workers) == 0 {
		o.Workers = DefaultWorkers
	}
	if o.Bytes <= 0 {
		o.Bytes = 4 << 20
	}
	if o.Chunk <= 0 {
		o.Chunk = 1 << 20
	}
	if o.Input == nil {
		o.Input = SyntheticInput(o.Bytes)
	}
	if o.MinTime <= 0 {
		o.MinTime = 300 * time.Millisecond
	}
	if o.MinIter <= 0 {
		o.MinIter = 2
	}
}

// SyntheticInput builds n bytes of smooth float32 field with light noise,
// the same flavour of data as the study's SDRBench-style inputs, so
// per-codec throughput is measured on realistic entropy.
func SyntheticInput(n int) []byte {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 0, n)
	for i := 0; i < n/4; i++ {
		v := float32(math.Sin(float64(i)/97) + 0.01*rng.NormFloat64())
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// Run measures the scaling curve for every codec in o and returns the
// report. Serial throughput is re-measured alongside every parallel point,
// iteration-interleaved in the same time window, so each row's speedup
// ratio is drift-free (see measurePair) — serial columns therefore vary
// slightly from row to row, and each row is self-contained.
func Run(o Options) (*stats.BenchReport, error) {
	o.fill()
	if len(o.Codecs) == 0 {
		return nil, fmt.Errorf("sweep: no codecs")
	}
	rep := &stats.BenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if rep.NumCPU == 1 {
		rep.Note = "1-CPU machine: the parallel engine falls back to the serial path, so every speedup is ~1.0 by construction; compare absolute MB/s only against runs on the same hardware"
	}
	for _, c := range o.Codecs {
		stream, err := encodeStream(c, o)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: %w", c.Name(), err)
		}
		for _, w := range o.Workers {
			serEnc, parEnc, err := measurePair(o, len(o.Input),
				serialEncodeFn(c, o), parallelEncodeFn(c, o, w))
			if err != nil {
				return nil, fmt.Errorf("sweep: %s w=%d: %w", c.Name(), w, err)
			}
			serDec, parDec, err := measurePair(o, len(o.Input),
				serialDecodeFn(c, o, stream), parallelDecodeFn(c, o, stream, w))
			if err != nil {
				return nil, fmt.Errorf("sweep: %s w=%d: %w", c.Name(), w, err)
			}
			rep.Results = append(rep.Results, stats.BenchResult{
				Codec:              c.Name(),
				Workers:            w,
				InputBytes:         int64(len(o.Input)),
				ChunkBytes:         o.Chunk,
				SerialMBps:         serEnc,
				ParallelMBps:       parEnc,
				SerialDecodeMBps:   serDec,
				ParallelDecodeMBps: parDec,
			})
		}
	}
	rep.Fill()
	return rep, nil
}

// measurePair alternates serialFn and parallelFn until both MinTime and
// MinIter are satisfied, returning the best observed single-iteration
// throughput of each in MB/s. Interleaving is the point: on a shared
// runner the machine slowly speeds up and down (cgroup throttling, noisy
// neighbours), and two measurements taken in different windows disagree by
// tens of percent even for identical code. Sampling both sides of the
// ratio in the same window cancels that drift. Best-of matches the repo's
// bench recorder: a CPU-steal spike poisons any single run (and a mean),
// while the best of several is reproducibly close to what the hardware
// sustains.
func measurePair(o Options, nBytes int, serialFn, parallelFn func() error) (serBest, parBest float64, err error) {
	start := time.Now()
	for iter := 0; iter < o.MinIter || time.Since(start) < o.MinTime; iter++ {
		for _, side := range []struct {
			fn   func() error
			best *float64
		}{{serialFn, &serBest}, {parallelFn, &parBest}} {
			t0 := time.Now()
			if err := side.fn(); err != nil {
				return 0, 0, err
			}
			if e := time.Since(t0); e > 0 {
				if mbps := float64(nBytes) / e.Seconds() / 1e6; mbps > *side.best {
					*side.best = mbps
				}
			}
		}
	}
	return serBest, parBest, nil
}

// encodeStream produces the compressed stream the decode measurements
// replay, outside any timing window.
func encodeStream(c compress.Codec, o Options) ([]byte, error) {
	var dst bytes.Buffer
	w := compress.NewWriter(c, &dst, o.Chunk)
	if _, err := w.Write(o.Input); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return dst.Bytes(), nil
}

func serialEncodeFn(c compress.Codec, o Options) func() error {
	var dst bytes.Buffer
	return func() error {
		dst.Reset()
		w := compress.NewWriter(c, &dst, o.Chunk)
		if _, err := w.Write(o.Input); err != nil {
			return err
		}
		return w.Close()
	}
}

func parallelEncodeFn(c compress.Codec, o Options, workers int) func() error {
	var dst bytes.Buffer
	return func() error {
		dst.Reset()
		w := compress.NewParallelWriter(c, &dst, o.Chunk, workers)
		if _, err := w.Write(o.Input); err != nil {
			return err
		}
		return w.Close()
	}
}

func serialDecodeFn(c compress.Codec, o Options, stream []byte) func() error {
	out := make([]byte, len(o.Input))
	return func() error {
		_, err := io.ReadFull(compress.NewReader(c, bytes.NewReader(stream)), out)
		return err
	}
}

func parallelDecodeFn(c compress.Codec, o Options, stream []byte, workers int) func() error {
	out := make([]byte, len(o.Input))
	return func() error {
		r := compress.NewParallelReader(c, bytes.NewReader(stream), workers)
		defer r.Close()
		_, err := io.ReadFull(r, out)
		return err
	}
}
