// Seek-index trailer: container format v2. A v2 stream is a v1 chunked
// stream (uvarint-prefixed frames, 0x00 terminator) followed by an index
// trailer that maps every chunk to its byte range, so a reader can seek to
// EOF, discover the index, and decode only the chunks a `[off,len)` window
// touches. v1 readers stop at the terminator and never see the trailer; v1
// streams have no trailer and ParseTrailer reports ErrNoTrailer, the signal
// to fall back to sequential decode. Either way the bytes come out right —
// the trailer buys seeks, never correctness.
//
// Layout, appended immediately after the stream terminator (integers
// little-endian; varints unsigned LEB128):
//
//	body:
//	    uvarint chunk count
//	    per chunk, in stream order:
//	        uvarint frame offset   absolute offset of the frame payload
//	                               (after its uvarint length prefix)
//	        uvarint compLen        compressed payload length
//	        uvarint rawLen         decoded chunk length
//	        4 bytes                CRC-32C of the compressed payload
//	        16 bytes               truncated SHA-256 of the compressed payload
//	footer (fixed 17 bytes, last in the file):
//	    4 bytes   CRC-32C of the body
//	    8 bytes   uint64 body length
//	    1 byte    trailer version (1)
//	    4 bytes   magic "PBIX"
//
// Discovery reads the footer from EOF, walks back over the body, and
// verifies magic, version, CRC, and every record against the file bounds.
// The trailer carries its own magic and CRC precisely so a truncated or
// bit-flipped tail degrades to "no trailer" or a typed error — never to an
// index that points a range read at the wrong bytes.
package container

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"

	"positbench/internal/chunkcache"
	"positbench/internal/compress"
)

// TrailerMagic identifies a positbench index trailer at EOF.
var TrailerMagic = [4]byte{'P', 'B', 'I', 'X'}

// TrailerVersion is the current trailer format version.
const TrailerVersion = 1

// HashLen is the per-chunk content-hash width (SHA-256 truncated).
const HashLen = 16

// trailerFooterLen is the fixed footer: body CRC + body length + version +
// magic.
const trailerFooterLen = 4 + 8 + 1 + 4

// minRecordLen is the smallest encodable chunk record: three 1-byte
// varints, the CRC, and the hash. Bounds record count against body length
// before any allocation proportional to the declared count.
const minRecordLen = 3 + 4 + HashLen

// MaxTrailerBytes caps how large a declared trailer body a reader will
// buffer; a tampered footer cannot demand an unbounded allocation.
const MaxTrailerBytes = 64 << 20

// ErrNoTrailer reports a stream without an index trailer — a v1 stream, or
// a tail too mangled to even claim to be one. It is deliberately NOT part
// of the corrupt taxonomy: the stream may be perfectly valid, it just
// cannot be seeked, and callers answer it with a sequential decode.
var ErrNoTrailer = errors.New("container: stream has no index trailer")

// ChunkRef is one chunk's index record plus its position in the raw
// (decoded) byte space, reconstructed at parse time from the running sum of
// rawLen.
type ChunkRef struct {
	Offset  int64         // absolute offset of the frame payload
	CompLen int64         // compressed payload length
	RawOff  int64         // offset of this chunk's first byte in the decoded stream
	RawLen  int64         // decoded chunk length
	CRC     uint32        // CRC-32C of the compressed payload
	Hash    [HashLen]byte // truncated SHA-256 of the compressed payload
}

// CacheKey derives the content-addressed cache key for this chunk: the
// hash, with the CRC and raw length folded in so a forged hash alone cannot
// address another chunk's cached bytes.
func (ref *ChunkRef) CacheKey() chunkcache.Key {
	var k chunkcache.Key
	copy(k[:HashLen], ref.Hash[:])
	binary.LittleEndian.PutUint32(k[HashLen:], ref.CRC)
	binary.LittleEndian.PutUint32(k[HashLen+4:], uint32(ref.RawLen))
	return k
}

// Index is a parsed (or freshly built) seek index over a chunked stream.
type Index struct {
	Chunks     []ChunkRef
	RawLen     int64 // total decoded stream length
	TrailerLen int64 // encoded trailer size in bytes (body + footer)
	DataLen    int64 // stream bytes before the trailer, terminator included
}

// Locate returns the half-open chunk range [first, last) whose raw bytes
// overlap the window [off, off+length). An empty window (or one past EOF)
// yields first == last.
func (ix *Index) Locate(off, length int64) (first, last int) {
	if length <= 0 || off >= ix.RawLen || off+length <= 0 {
		return 0, 0
	}
	end := off + length
	if end > ix.RawLen {
		end = ix.RawLen
	}
	// First chunk whose exclusive end exceeds off.
	first = sortSearch(len(ix.Chunks), func(i int) bool {
		c := &ix.Chunks[i]
		return c.RawOff+c.RawLen > off
	})
	// First chunk starting at or past the window end.
	last = sortSearch(len(ix.Chunks), func(i int) bool {
		return ix.Chunks[i].RawOff >= end
	})
	return first, last
}

// CompBytes sums the compressed payload bytes of chunks [first, last) — the
// bytes a range read actually fetches, reported by compressbench -index.
func (ix *Index) CompBytes(first, last int) int64 {
	var n int64
	for i := first; i < last; i++ {
		n += ix.Chunks[i].CompLen
	}
	return n
}

// sortSearch is sort.Search without the package dependency (binary search
// for the smallest i in [0, n) with f(i) true).
func sortSearch(n int, f func(int) bool) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ChunkHash is the trailer's per-chunk content hash: SHA-256 of the
// compressed payload, truncated to HashLen bytes.
func ChunkHash(comp []byte) [HashLen]byte {
	sum := sha256.Sum256(comp)
	var h [HashLen]byte
	copy(h[:], sum[:HashLen])
	return h
}

// IndexBuilder accumulates chunk records as a stream writer emits frames
// and serializes the trailer at Close. It implements compress.IndexSink:
// attach with (*compress.Writer).SetIndexSink or the ParallelWriter
// equivalent before the first Write.
type IndexBuilder struct {
	ix Index
}

// NewIndexBuilder returns an empty builder.
func NewIndexBuilder() *IndexBuilder { return &IndexBuilder{} }

// AddChunk records one emitted frame (compress.IndexSink).
func (b *IndexBuilder) AddChunk(frameOff int64, comp []byte, rawLen int) {
	b.ix.Chunks = append(b.ix.Chunks, ChunkRef{
		Offset:  frameOff,
		CompLen: int64(len(comp)),
		RawOff:  b.ix.RawLen,
		RawLen:  int64(rawLen),
		CRC:     Checksum(comp),
		Hash:    ChunkHash(comp),
	})
	b.ix.RawLen += int64(rawLen)
}

// Index returns the accumulated index. Valid once the stream is closed;
// TrailerLen and DataLen are set after WriteTrailer runs.
func (b *IndexBuilder) Index() *Index { return &b.ix }

// AppendTrailer serializes the trailer onto dst and returns the extended
// slice.
func (b *IndexBuilder) AppendTrailer(dst []byte) []byte {
	bodyStart := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(b.ix.Chunks)))
	for i := range b.ix.Chunks {
		c := &b.ix.Chunks[i]
		dst = binary.AppendUvarint(dst, uint64(c.Offset))
		dst = binary.AppendUvarint(dst, uint64(c.CompLen))
		dst = binary.AppendUvarint(dst, uint64(c.RawLen))
		dst = binary.LittleEndian.AppendUint32(dst, c.CRC)
		dst = append(dst, c.Hash[:]...)
	}
	body := dst[bodyStart:]
	dst = binary.LittleEndian.AppendUint32(dst, Checksum(body))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(body)))
	dst = append(dst, TrailerVersion)
	dst = append(dst, TrailerMagic[:]...)
	return dst
}

// WriteTrailer writes the encoded trailer to dst (compress.IndexSink),
// returning its length.
func (b *IndexBuilder) WriteTrailer(dst io.Writer) (int64, error) {
	blob := b.AppendTrailer(nil)
	b.ix.TrailerLen = int64(len(blob))
	if len(b.ix.Chunks) > 0 {
		last := &b.ix.Chunks[len(b.ix.Chunks)-1]
		b.ix.DataLen = last.Offset + last.CompLen + 1 // + terminator
	} else {
		b.ix.DataLen = 1
	}
	n, err := dst.Write(blob)
	return int64(n), err
}

// ParseTrailer discovers and validates the index trailer of a stream of the
// given size readable through src. It returns ErrNoTrailer when the tail
// does not carry the trailer magic (a v1 stream — fall back to sequential
// decode), and a taxonomy error (ErrCorrupt / ErrTruncated / ErrVersion /
// ErrLimitExceeded) when a trailer is present but inconsistent. On success
// every record is bounds-checked against the file: offsets strictly
// increase, frames stay inside the data region, and the terminator byte
// sits exactly where the trailer says the data ends.
func ParseTrailer(src io.ReaderAt, size int64) (*Index, error) {
	if size < trailerFooterLen+1 {
		// Too short to hold a footer after even an empty stream.
		return nil, ErrNoTrailer
	}
	var foot [trailerFooterLen]byte
	if _, err := src.ReadAt(foot[:], size-trailerFooterLen); err != nil {
		return nil, compress.Errorf(compress.ErrTruncated, "container: trailer footer: %v", err)
	}
	if [4]byte(foot[13:17]) != TrailerMagic {
		return nil, ErrNoTrailer
	}
	if foot[12] != TrailerVersion {
		return nil, compress.Errorf(compress.ErrVersion, "container: trailer version %d (supported: %d)", foot[12], TrailerVersion)
	}
	bodyLen := binary.LittleEndian.Uint64(foot[4:12])
	if bodyLen > MaxTrailerBytes {
		return nil, compress.Errorf(compress.ErrLimitExceeded, "container: trailer body declares %d bytes, limit %d", bodyLen, int64(MaxTrailerBytes))
	}
	trailerLen := int64(bodyLen) + trailerFooterLen
	if trailerLen+1 > size {
		// The terminator byte must precede the trailer.
		return nil, compress.Errorf(compress.ErrTruncated, "container: trailer (%d bytes) does not fit a %d-byte stream", trailerLen, size)
	}
	body := make([]byte, bodyLen)
	if _, err := src.ReadAt(body, size-trailerLen); err != nil {
		return nil, compress.Errorf(compress.ErrTruncated, "container: trailer body: %v", err)
	}
	if got := Checksum(body); got != binary.LittleEndian.Uint32(foot[0:4]) {
		return nil, compress.Errorf(compress.ErrCorrupt, "container: trailer checksum %08x, want %08x", got, binary.LittleEndian.Uint32(foot[0:4]))
	}
	dataEnd := size - trailerLen // end of the data region; terminator at dataEnd-1
	var term [1]byte
	if _, err := src.ReadAt(term[:], dataEnd-1); err != nil {
		return nil, compress.Errorf(compress.ErrTruncated, "container: stream terminator: %v", err)
	}
	if term[0] != 0 {
		return nil, compress.Errorf(compress.ErrCorrupt, "container: byte before trailer is %#02x, want stream terminator", term[0])
	}

	count, used := binary.Uvarint(body)
	if used <= 0 {
		return nil, uvarintErr("trailer chunk count", used)
	}
	rest := body[used:]
	if count > uint64(len(rest))/minRecordLen {
		return nil, compress.Errorf(compress.ErrCorrupt, "container: trailer declares %d chunks in %d body bytes", count, len(body))
	}
	ix := &Index{
		Chunks:     make([]ChunkRef, 0, count),
		TrailerLen: trailerLen,
		DataLen:    dataEnd,
	}
	var prevEnd int64 // exclusive end of the previous frame payload
	for i := uint64(0); i < count; i++ {
		var ref ChunkRef
		off, used := binary.Uvarint(rest)
		if used <= 0 {
			return nil, uvarintErr("trailer chunk offset", used)
		}
		rest = rest[used:]
		compLen, used := binary.Uvarint(rest)
		if used <= 0 {
			return nil, uvarintErr("trailer chunk length", used)
		}
		rest = rest[used:]
		rawLen, used := binary.Uvarint(rest)
		if used <= 0 {
			return nil, uvarintErr("trailer raw length", used)
		}
		rest = rest[used:]
		if len(rest) < 4+HashLen {
			return nil, compress.Errorf(compress.ErrTruncated, "container: trailer record %d cut short", i)
		}
		ref.CRC = binary.LittleEndian.Uint32(rest)
		copy(ref.Hash[:], rest[4:4+HashLen])
		rest = rest[4+HashLen:]

		if off > uint64(dataEnd) || compLen > uint64(dataEnd) || rawLen > uint64(1)<<62 {
			return nil, compress.Errorf(compress.ErrCorrupt, "container: trailer record %d out of bounds", i)
		}
		ref.Offset, ref.CompLen, ref.RawLen = int64(off), int64(compLen), int64(rawLen)
		if ref.RawLen < 1 {
			// The writers never emit empty chunks; a zero rawLen record is a
			// duplicate-or-padding tamper, not a real chunk.
			return nil, compress.Errorf(compress.ErrCorrupt, "container: trailer record %d declares empty chunk", i)
		}
		// Each frame payload is preceded by a >= 1-byte length prefix, so
		// consecutive payloads cannot touch; equality or overlap means
		// duplicated or out-of-order records.
		if ref.Offset <= prevEnd {
			return nil, compress.Errorf(compress.ErrCorrupt, "container: trailer record %d offset %d not after previous frame end %d", i, ref.Offset, prevEnd)
		}
		if ref.Offset+ref.CompLen > dataEnd-1 {
			return nil, compress.Errorf(compress.ErrCorrupt, "container: trailer record %d overruns data region", i)
		}
		prevEnd = ref.Offset + ref.CompLen
		ref.RawOff = ix.RawLen
		ix.RawLen += ref.RawLen
		ix.Chunks = append(ix.Chunks, ref)
	}
	if len(rest) != 0 {
		return nil, compress.Errorf(compress.ErrCorrupt, "container: %d trailing bytes after trailer records", len(rest))
	}
	return ix, nil
}

var _ compress.IndexSink = (*IndexBuilder)(nil)
