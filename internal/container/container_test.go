package container

import (
	"bytes"
	"errors"
	"testing"

	"positbench/internal/compress"
)

// stub is a trivial codec: payload = 0xEE marker + src.
type stub struct{}

func (stub) Name() string { return "stub" }
func (stub) Compress(src []byte) ([]byte, error) {
	return append([]byte{0xEE}, src...), nil
}
func (stub) Decompress(comp []byte) ([]byte, error) {
	if len(comp) < 1 || comp[0] != 0xEE {
		return nil, compress.Errorf(compress.ErrCorrupt, "stub: bad marker")
	}
	return append([]byte(nil), comp[1:]...), nil
}

// panicky always panics on decode; the frame wrapper must contain it.
type panicky struct{ stub }

func (panicky) Decompress([]byte) ([]byte, error) { panic("panicky: boom") }

func TestFrameRoundtrip(t *testing.T) {
	c := Wrap(stub{})
	for _, src := range [][]byte{nil, {0}, []byte("hello container"), bytes.Repeat([]byte{7}, 10000)} {
		frame, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(frame, Magic[:]) {
			t.Fatalf("frame missing magic: % x", frame[:8])
		}
		back, err := c.Decompress(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("roundtrip mismatch: %d in, %d out", len(src), len(back))
		}
	}
}

func TestDecodeRejections(t *testing.T) {
	frame, err := Wrap(stub{}).Compress([]byte("the payload under test"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"Empty", func(f []byte) []byte { return nil }, compress.ErrTruncated},
		{"MagicPrefix", func(f []byte) []byte { return f[:3] }, compress.ErrTruncated},
		{"WrongMagic", func(f []byte) []byte { f[0] ^= 0xFF; return f }, compress.ErrBadMagic},
		{"Version", func(f []byte) []byte { f[4] = 99; return f }, compress.ErrVersion},
		{"NameLenZero", func(f []byte) []byte { f[5] = 0; return f }, compress.ErrCorrupt},
		{"TruncatedHeader", func(f []byte) []byte { return f[:7] }, compress.ErrTruncated},
		{"TruncatedPayload", func(f []byte) []byte { return f[:len(f)-5] }, compress.ErrTruncated},
		{"TrailingGarbage", func(f []byte) []byte { return append(f, 0xAB) }, compress.ErrCorrupt},
		{"PayloadFlip", func(f []byte) []byte { f[len(f)-1] ^= 1; return f }, compress.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mutate(append([]byte(nil), frame...))
			_, _, err := Decode(buf)
			if err == nil {
				t.Fatal("corrupt frame accepted")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err %v, want %v", err, tc.wantErr)
			}
			if !errors.Is(err, compress.ErrCorrupt) {
				t.Fatalf("err %v should refine ErrCorrupt", err)
			}
		})
	}
}

func TestWrongCodecName(t *testing.T) {
	frame, err := Wrap(stub{}).Compress([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	name, err := Identify(frame)
	if err != nil || name != "stub" {
		t.Fatalf("Identify: %q, %v", name, err)
	}
	// A frame for codec "stub" handed to a differently-named decoder.
	other := Wrap(passthroughNamed{"other"})
	if _, err := other.Decompress(frame); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("cross-codec decode: %v", err)
	}
}

type passthroughNamed struct{ name string }

func (p passthroughNamed) Name() string                           { return p.name }
func (p passthroughNamed) Compress(src []byte) ([]byte, error)    { return src, nil }
func (p passthroughNamed) Decompress(comp []byte) ([]byte, error) { return comp, nil }

func TestDeclaredLengthLimit(t *testing.T) {
	// A frame whose declared original length is far beyond the limit must
	// trip ErrLimitExceeded before the inner decoder runs.
	huge := make([]byte, 1<<16)
	frame, err := Encode("stub", huge, append([]byte{0xEE}, huge...))
	if err != nil {
		t.Fatal(err)
	}
	c := WrapLimits(stub{}, compress.DecodeLimits{MaxOutputBytes: 4096})
	if _, err := c.Decompress(frame); !errors.Is(err, compress.ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
	// The same frame decodes under default limits.
	if out, err := Wrap(stub{}).Decompress(frame); err != nil || len(out) != len(huge) {
		t.Fatalf("default limits: %d bytes, %v", len(out), err)
	}
}

func TestOutputVerification(t *testing.T) {
	// A payload that decodes fine but to the wrong bytes must be caught by
	// the output checksum. Craft a frame whose orig metadata disagrees with
	// the payload's true content.
	frame, err := Encode("stub", []byte("expected content"), append([]byte{0xEE}, []byte("actual content")...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wrap(stub{}).Decompress(frame); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestPanicContainment(t *testing.T) {
	frame, err := Wrap(panicky{}).Compress([]byte("boom fodder"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Wrap(panicky{}).Decompress(frame)
	if out != nil || !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("panic not contained: %v", err)
	}
}

func TestWrapIdempotent(t *testing.T) {
	inner := stub{}
	w := Wrap(inner)
	ww := Wrap(w)
	if ww.Unwrap() != compress.Codec(inner) {
		t.Fatal("double Wrap nested frames")
	}
}

func TestParseHeaderPrefix(t *testing.T) {
	src := []byte("payload for header sniffing")
	frame, err := Wrap(stub{}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	// The full frame parses.
	h, n, err := ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.Codec != "stub" {
		t.Fatalf("codec %q", h.Codec)
	}
	if h.OrigLen != uint64(len(src)) {
		t.Fatalf("orig len %d, want %d", h.OrigLen, len(src))
	}
	if h.PayloadLen != uint64(len(frame)-n) {
		t.Fatalf("payload len %d, frame has %d after header", h.PayloadLen, len(frame)-n)
	}
	// Any prefix of at least MaxHeaderLen bytes parses identically: this is
	// the contract the serving path's codec sniffing relies on.
	if len(frame) > MaxHeaderLen {
		h2, n2, err := ParseHeader(frame[:MaxHeaderLen])
		if err != nil || h2 != h || n2 != n {
			t.Fatalf("prefix parse diverged: %+v %d %v", h2, n2, err)
		}
	}
	// The exact header length is sufficient.
	h3, n3, err := ParseHeader(frame[:n])
	if err != nil || h3 != h || n3 != n {
		t.Fatalf("exact-header parse diverged: %+v %d %v", h3, n3, err)
	}
	// One byte short of the header is ErrTruncated.
	if _, _, err := ParseHeader(frame[:n-1]); !errors.Is(err, compress.ErrTruncated) {
		t.Fatalf("short header: %v, want ErrTruncated", err)
	}
	// Garbage is ErrBadMagic.
	if _, _, err := ParseHeader([]byte("not a frame")); !errors.Is(err, compress.ErrBadMagic) {
		t.Fatalf("garbage: %v, want ErrBadMagic", err)
	}
}

func TestParseHeaderAgreesWithDecode(t *testing.T) {
	frame, err := Wrap(stub{}).Compress(bytes.Repeat([]byte{3}, 4096))
	if err != nil {
		t.Fatal(err)
	}
	hp, n, err := ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	hd, payload, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if hp != hd {
		t.Fatalf("headers diverge: %+v vs %+v", hp, hd)
	}
	if !bytes.Equal(frame[n:], payload) {
		t.Fatal("header length does not locate the payload")
	}
}
