package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"positbench/internal/compress"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden container fixtures")

// goldenCodec is a deterministic identity codec: fixtures built with it pin
// the container/trailer layout itself, independent of any real codec's
// output drifting.
var goldenCodec = Wrap(passthroughNamed{name: "stored"})

// goldenInput is the fixture payload: deterministic, multi-chunk with a
// partial tail (4.5 chunks at the 1 KiB fixture chunk size).
func goldenInput() []byte { return patternData(4<<10 + 512) }

const goldenChunk = 1 << 10

func goldenPath(name string) string { return filepath.Join("testdata", name) }

func writeOrLoad(t *testing.T, name string, got []byte) []byte {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (run with -update to create): %v", path, err)
	}
	return want
}

// TestGoldenV2Stream pins the v2 (indexed) stream byte for byte: any drift
// in the frame layout, the chunking, or the trailer encoding is a test
// failure, not a silent format change.
func TestGoldenV2Stream(t *testing.T) {
	stream, ix := buildIndexed(t, goldenCodec, goldenInput(), goldenChunk)
	want := writeOrLoad(t, "v2_stored_indexed.bin", stream)
	if !bytes.Equal(stream, want) {
		t.Fatalf("v2 indexed stream drifted from golden fixture (%d vs %d bytes)", len(stream), len(want))
	}

	// Pin the trailer layout structurally too, so a failure diagnoses
	// itself: footer fields first, then the records.
	foot := stream[len(stream)-trailerFooterLen:]
	if [4]byte(foot[13:17]) != TrailerMagic {
		t.Fatalf("trailer magic = %q", foot[13:17])
	}
	if foot[12] != TrailerVersion {
		t.Fatalf("trailer version = %d", foot[12])
	}
	bodyLen := binary.LittleEndian.Uint64(foot[4:12])
	body := stream[len(stream)-trailerFooterLen-int(bodyLen) : len(stream)-trailerFooterLen]
	if got := Checksum(body); got != binary.LittleEndian.Uint32(foot[0:4]) {
		t.Fatalf("trailer body CRC = %08x, footer says %08x", got, binary.LittleEndian.Uint32(foot[0:4]))
	}
	if count, _ := binary.Uvarint(body); count != 5 {
		t.Fatalf("trailer declares %d chunks, want 5", count)
	}
	parsed, err := ParseTrailer(bytes.NewReader(stream), int64(len(stream)))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.RawLen != ix.RawLen || len(parsed.Chunks) != len(ix.Chunks) {
		t.Fatalf("parsed index (%d chunks, %d raw) != built (%d, %d)",
			len(parsed.Chunks), parsed.RawLen, len(ix.Chunks), ix.RawLen)
	}
}

// TestGoldenV1ForwardCompat pins a trailer-less v1 stream and proves the
// forward-compat contract forever: v2 code decodes it sequentially and
// reports ErrNoTrailer — never a hard failure — when asked to seek.
func TestGoldenV1ForwardCompat(t *testing.T) {
	data := goldenInput()
	var sink bytes.Buffer
	w := compress.NewWriter(goldenCodec, &sink, goldenChunk)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := writeOrLoad(t, "v1_stored.bin", sink.Bytes())
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("v1 stream drifted from golden fixture (%d vs %d bytes)", sink.Len(), len(want))
	}

	back, err := io.ReadAll(compress.NewReader(goldenCodec, bytes.NewReader(want)))
	if err != nil {
		t.Fatalf("sequential decode of pinned v1 fixture: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("pinned v1 fixture no longer decodes to the original payload")
	}
	if _, err := NewReaderAt(bytes.NewReader(want), int64(len(want)), goldenCodec, ReaderAtOptions{}); !errors.Is(err, ErrNoTrailer) {
		t.Fatalf("v1 fixture seek attempt: err = %v, want ErrNoTrailer", err)
	}
}
