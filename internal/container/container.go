// Package container defines the framed envelope every compressed blob
// travels in: magic bytes, a format version, the codec identifier, the
// declared original length, and CRC-32C checksums of both the compressed
// payload and the decompressed output. The frame is what lets the serving
// path distinguish "wrong codec" from "bit rot" from "truncated upload" and
// reject all three with a typed error before committing resources.
//
// Layout (all integers little-endian; varints are unsigned LEB128):
//
//	offset 0   magic "PBCF" (4 bytes)
//	offset 4   version (1 byte, currently 1)
//	offset 5   codec-name length m (1 byte, 1..MaxCodecName)
//	offset 6   codec name (m bytes, e.g. "xz")
//	...        uvarint original (decompressed) length
//	...        uvarint payload (compressed) length
//	...        CRC-32C of the payload (4 bytes)
//	...        CRC-32C of the original data (4 bytes)
//	...        payload
//
// Wrap turns any compress.Codec into one that emits and verifies this
// envelope end-to-end.
package container

import (
	"encoding/binary"
	"hash/crc32"

	"positbench/internal/compress"
)

// Version is the current frame format version.
const Version = 1

// MaxCodecName bounds the codec-identifier field.
const MaxCodecName = 32

// Magic identifies a positbench container frame.
var Magic = [4]byte{'P', 'B', 'C', 'F'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the frame's CRC-32C.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, crcTable) }

// Header is the parsed frame metadata.
type Header struct {
	Codec      string // codec name the payload was compressed with
	OrigLen    uint64 // declared decompressed length
	PayloadLen uint64 // declared compressed payload length
	PayloadCRC uint32 // CRC-32C of the compressed payload
	OrigCRC    uint32 // CRC-32C of the decompressed output
}

// Encode frames payload, recording orig's length and checksum so Decode +
// VerifyOutput can prove end-to-end integrity.
func Encode(codecName string, orig, payload []byte) ([]byte, error) {
	if codecName == "" || len(codecName) > MaxCodecName {
		return nil, compress.Errorf(compress.ErrCorrupt, "container: codec name %q out of range", codecName)
	}
	out := make([]byte, 0, len(payload)+len(codecName)+32)
	out = append(out, Magic[:]...)
	out = append(out, Version)
	out = append(out, byte(len(codecName)))
	out = append(out, codecName...)
	out = binary.AppendUvarint(out, uint64(len(orig)))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, Checksum(payload))
	out = binary.LittleEndian.AppendUint32(out, Checksum(orig))
	return append(out, payload...), nil
}

// MaxHeaderLen bounds the encoded header: magic, version, name length, a
// maximal codec name, two maximal uvarints, and both checksums. Peeking
// this many bytes from a stream is always enough to ParseHeader a frame.
const MaxHeaderLen = len(Magic) + 2 + MaxCodecName + 2*binary.MaxVarintLen64 + 8

// ParseHeader parses the frame envelope from the start of b, which need not
// contain the payload: the returned count is the header's encoded length,
// so b[n:] is where the payload begins. Serving paths use it to identify
// the codec of an incoming stream from a bounded prefix before committing
// any resources to the body. Errors carry the usual taxonomy (ErrBadMagic,
// ErrVersion, ErrTruncated, ErrCorrupt).
func ParseHeader(b []byte) (Header, int, error) {
	var h Header
	for i := 0; i < len(Magic); i++ {
		if i >= len(b) {
			return h, 0, compress.Errorf(compress.ErrTruncated, "container: %d-byte frame shorter than magic", len(b))
		}
		if b[i] != Magic[i] {
			return h, 0, compress.Errorf(compress.ErrBadMagic, "container: magic %q", b[:i+1])
		}
	}
	rest := b[len(Magic):]
	if len(rest) < 2 {
		return h, 0, compress.Errorf(compress.ErrTruncated, "container: missing version/name header")
	}
	if rest[0] != Version {
		return h, 0, compress.Errorf(compress.ErrVersion, "container: version %d (supported: %d)", rest[0], Version)
	}
	nameLen := int(rest[1])
	rest = rest[2:]
	if nameLen < 1 || nameLen > MaxCodecName {
		return h, 0, compress.Errorf(compress.ErrCorrupt, "container: codec name length %d", nameLen)
	}
	if len(rest) < nameLen {
		return h, 0, compress.Errorf(compress.ErrTruncated, "container: truncated codec name")
	}
	h.Codec = string(rest[:nameLen])
	rest = rest[nameLen:]
	var used int
	if h.OrigLen, used = binary.Uvarint(rest); used <= 0 {
		return h, 0, uvarintErr("original length", used)
	}
	rest = rest[used:]
	if h.PayloadLen, used = binary.Uvarint(rest); used <= 0 {
		return h, 0, uvarintErr("payload length", used)
	}
	rest = rest[used:]
	if len(rest) < 8 {
		return h, 0, compress.Errorf(compress.ErrTruncated, "container: truncated checksums")
	}
	h.PayloadCRC = binary.LittleEndian.Uint32(rest)
	h.OrigCRC = binary.LittleEndian.Uint32(rest[4:])
	return h, len(b) - len(rest) + 8, nil
}

// Decode parses and validates a frame, returning the header and the payload
// (aliasing frame). It verifies the magic, version, structural lengths, and
// the payload checksum; the output-side checks happen in VerifyOutput once
// the payload has been decompressed.
func Decode(frame []byte) (Header, []byte, error) {
	h, n, err := ParseHeader(frame)
	if err != nil {
		return h, nil, err
	}
	rest := frame[n:]
	if h.PayloadLen > uint64(len(rest)) {
		return h, nil, compress.Errorf(compress.ErrTruncated, "container: payload %d bytes declared, %d present", h.PayloadLen, len(rest))
	}
	if h.PayloadLen < uint64(len(rest)) {
		return h, nil, compress.Errorf(compress.ErrCorrupt, "container: %d trailing bytes after payload", uint64(len(rest))-h.PayloadLen)
	}
	if got := Checksum(rest); got != h.PayloadCRC {
		return h, nil, compress.Errorf(compress.ErrCorrupt, "container: payload checksum %08x, want %08x", got, h.PayloadCRC)
	}
	return h, rest, nil
}

func uvarintErr(field string, n int) error {
	if n == 0 {
		return compress.Errorf(compress.ErrTruncated, "container: truncated %s", field)
	}
	return compress.Errorf(compress.ErrCorrupt, "container: overlong %s varint", field)
}

// VerifyOutput checks the decompressed output against the header's declared
// length and checksum, completing the end-to-end integrity proof.
func VerifyOutput(h Header, out []byte) error {
	if uint64(len(out)) != h.OrigLen {
		return compress.Errorf(compress.ErrCorrupt, "container: decoded %d bytes, frame declares %d", len(out), h.OrigLen)
	}
	if got := Checksum(out); got != h.OrigCRC {
		return compress.Errorf(compress.ErrCorrupt, "container: output checksum %08x, want %08x", got, h.OrigCRC)
	}
	return nil
}

// Identify returns the codec name of a frame without validating the
// payload; cmd tools use it to route a file to the right decoder.
func Identify(frame []byte) (string, error) {
	h, _, err := Decode(frame)
	if err != nil && h.Codec == "" {
		return "", err
	}
	return h.Codec, nil
}
