package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"positbench/internal/chunkcache"
	"positbench/internal/compress"
)

// buildIndexed writes data through the serial stream writer with an
// IndexBuilder attached and returns the v2 stream plus the builder's index.
func buildIndexed(t *testing.T, c compress.Codec, data []byte, chunk int) ([]byte, *Index) {
	t.Helper()
	var sink bytes.Buffer
	b := NewIndexBuilder()
	w := compress.NewWriter(c, &sink, chunk)
	w.SetIndexSink(b)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes(), b.Index()
}

// patternData is deterministic mildly-structured test input.
func patternData(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i>>3)
	}
	return out
}

func TestTrailerRoundtrip(t *testing.T) {
	c := Wrap(stub{})
	data := patternData(10 << 10)
	stream, built := buildIndexed(t, c, data, 1<<10)

	ix, err := ParseTrailer(bytes.NewReader(stream), int64(len(stream)))
	if err != nil {
		t.Fatalf("ParseTrailer: %v", err)
	}
	if len(ix.Chunks) != 10 || len(ix.Chunks) != len(built.Chunks) {
		t.Fatalf("parsed %d chunks, built %d, want 10", len(ix.Chunks), len(built.Chunks))
	}
	if ix.RawLen != int64(len(data)) {
		t.Fatalf("RawLen = %d, want %d", ix.RawLen, len(data))
	}
	if ix.DataLen+ix.TrailerLen != int64(len(stream)) {
		t.Fatalf("DataLen %d + TrailerLen %d != stream %d", ix.DataLen, ix.TrailerLen, len(stream))
	}
	for i := range ix.Chunks {
		if ix.Chunks[i] != built.Chunks[i] {
			t.Fatalf("chunk %d: parsed %+v, built %+v", i, ix.Chunks[i], built.Chunks[i])
		}
	}
	// The per-chunk records must point at real frame payloads: re-hash the
	// bytes they reference.
	for i, ref := range ix.Chunks {
		frame := stream[ref.Offset : ref.Offset+ref.CompLen]
		if Checksum(frame) != ref.CRC {
			t.Fatalf("chunk %d: CRC does not cover the referenced bytes", i)
		}
		if ChunkHash(frame) != ref.Hash {
			t.Fatalf("chunk %d: hash does not cover the referenced bytes", i)
		}
	}
}

func TestParseTrailerFallbackSignals(t *testing.T) {
	c := Wrap(stub{})
	data := patternData(4 << 10)
	// A v1 stream (no sink, no trailer).
	var v1 bytes.Buffer
	w := compress.NewWriter(c, &v1, 1<<10)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		blob []byte
	}{
		{"V1Stream", v1.Bytes()},
		{"Empty", nil},
		{"Terminator", []byte{0}},
		{"Tiny", []byte{1, 2, 3}},
	} {
		if _, err := ParseTrailer(bytes.NewReader(tc.blob), int64(len(tc.blob))); !errors.Is(err, ErrNoTrailer) {
			t.Errorf("%s: err = %v, want ErrNoTrailer", tc.name, err)
		}
	}
}

func TestParseTrailerValidation(t *testing.T) {
	c := Wrap(stub{})
	stream, _ := buildIndexed(t, c, patternData(4<<10), 1<<10)
	foot := len(stream) - trailerFooterLen

	mutate := func(f func(mut []byte) []byte) []byte {
		return f(append([]byte(nil), stream...))
	}
	cases := []struct {
		name     string
		blob     []byte
		sentinel error
	}{
		{"BadVersion", mutate(func(m []byte) []byte { m[foot+12] = 9; return m }), compress.ErrVersion},
		{"BodyCRCFlip", mutate(func(m []byte) []byte { m[foot] ^= 1; return m }), compress.ErrCorrupt},
		{"BodyLenHuge", mutate(func(m []byte) []byte {
			binary.LittleEndian.PutUint64(m[foot+4:], MaxTrailerBytes+1)
			return m
		}), compress.ErrLimitExceeded},
		{"BodyLenOverrun", mutate(func(m []byte) []byte {
			binary.LittleEndian.PutUint64(m[foot+4:], uint64(len(stream)))
			return m
		}), compress.ErrTruncated},
		{"TerminatorGone", mutate(func(m []byte) []byte {
			// Make the byte before the body non-zero by shifting the claimed
			// body start: shrink bodyLen by one and fix the CRC over the
			// shrunk body so only the terminator check can object.
			bodyLen := binary.LittleEndian.Uint64(m[foot+4:])
			body := m[foot-int(bodyLen)+1 : foot]
			binary.LittleEndian.PutUint64(m[foot+4:], bodyLen-1)
			binary.LittleEndian.PutUint32(m[foot:], Checksum(body))
			return m
		}), compress.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrailer(bytes.NewReader(tc.blob), int64(len(tc.blob)))
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want %v", err, tc.sentinel)
			}
		})
	}
}

// TestRangeReadTouchedChunks pins the acceptance criterion on the engine
// counters: a range read of a large multi-chunk container decodes only the
// chunks overlapping the window — at most ceil(len/chunk)+1 — and fetches
// only their compressed bytes.
func TestRangeReadTouchedChunks(t *testing.T) {
	c := Wrap(stub{})
	const chunk = 4 << 10
	data := patternData(64 * chunk)
	stream, _ := buildIndexed(t, c, data, chunk)
	ra, err := NewReaderAt(bytes.NewReader(stream), int64(len(stream)), c, ReaderAtOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const off, length = 10*chunk + 123, 3*chunk + 17
	before := compress.EngineSnapshot()
	rr, err := ra.Range(off, length)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[off:off+length]) {
		t.Fatal("range content mismatch")
	}
	after := compress.EngineSnapshot()

	maxChunks := int64(length/chunk) + 2 // ceil(len/chunk)+1 with len%chunk != 0
	if d := after.RangeChunks - before.RangeChunks; d > maxChunks || d < 1 {
		t.Fatalf("range read decoded %d chunks, bound is %d", d, maxChunks)
	}
	if d := after.RangeReads - before.RangeReads; d < 1 {
		t.Fatalf("range_reads delta = %d, want >= 1", d)
	}
	if d := after.RangeBytesIn - before.RangeBytesIn; d <= 0 || d >= int64(len(stream)) {
		t.Fatalf("range read fetched %d compressed bytes of a %d-byte stream; want a strict subset", d, len(stream))
	}
	if d := after.RangeBytesOut - before.RangeBytesOut; d < int64(length) {
		t.Fatalf("range_bytes_out delta = %d, want >= %d", d, length)
	}
}

// TestReaderAtConcurrent exercises the stateless ReadAt path from many
// goroutines sharing one cache; run under -race via `make test-range`.
func TestReaderAtConcurrent(t *testing.T) {
	c := Wrap(stub{})
	const chunk = 2 << 10
	data := patternData(16 * chunk)
	stream, _ := buildIndexed(t, c, data, chunk)
	cache := chunkcache.New(1 << 20)
	ra, err := NewReaderAt(bytes.NewReader(stream), int64(len(stream)), c, ReaderAtOptions{Cache: cache, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 50; i++ {
				off := (g*977 + i*131) % len(data)
				n := (i*53)%4096 + 1
				p := make([]byte, n)
				rn, err := ra.ReadAt(p, int64(off))
				if err != nil && err != io.EOF {
					done <- err
					return
				}
				end := off + rn
				if !bytes.Equal(p[:rn], data[off:end]) {
					done <- errors.New("concurrent ReadAt content mismatch")
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Snapshot()
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("cache stats do not reconcile: %d + %d != %d", st.Hits, st.Misses, st.Lookups)
	}
}

// FuzzTrailerParse throws arbitrary bytes at the trailer parser: it must
// never panic, and when it does accept a trailer, every record must respect
// the file bounds and a bounded read through the ReaderAt must not panic
// either — it may only error through the taxonomy.
func FuzzTrailerParse(f *testing.F) {
	c := Wrap(stub{})
	var sink bytes.Buffer
	w := compress.NewWriter(c, &sink, 512)
	w.SetIndexSink(NewIndexBuilder())
	if _, err := w.Write(patternData(2048)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := sink.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-9])
	f.Add([]byte{0})
	mut := append([]byte(nil), valid...)
	mut[len(mut)-20] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, blob []byte) {
		ix, err := ParseTrailer(bytes.NewReader(blob), int64(len(blob)))
		if err != nil {
			if !errors.Is(err, ErrNoTrailer) && !errors.Is(err, compress.ErrCorrupt) && !errors.Is(err, compress.ErrLimitExceeded) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
			return
		}
		var prevEnd int64
		for i, ref := range ix.Chunks {
			if ref.Offset <= prevEnd || ref.CompLen < 0 || ref.Offset+ref.CompLen >= ix.DataLen {
				t.Fatalf("accepted out-of-bounds record %d: %+v (dataLen %d)", i, ref, ix.DataLen)
			}
			prevEnd = ref.Offset + ref.CompLen
		}
		ra := NewReaderAtIndex(bytes.NewReader(blob), ix, c, ReaderAtOptions{
			Limits: compress.DecodeLimits{MaxOutputBytes: 1 << 16},
		})
		rr, err := ra.Range(0, 1<<16)
		if err != nil {
			return
		}
		if _, err := io.Copy(io.Discard, rr); err != nil &&
			!errors.Is(err, compress.ErrCorrupt) && !errors.Is(err, compress.ErrLimitExceeded) {
			t.Fatalf("read error outside taxonomy: %v", err)
		}
	})
}
