package container

import (
	"time"

	"positbench/internal/compress"
	"positbench/internal/trace"
)

// Codec wraps an inner compress.Codec so every compressed blob travels in a
// verified frame: Compress appends the envelope, Decompress validates
// magic, version, codec identity, declared length (against DecodeLimits),
// and both checksums before returning data. Any panic escaping the inner
// decoder is converted to ErrCorrupt, so a framed codec never takes down
// its caller on hostile input.
type Codec struct {
	inner compress.Codec
	lim   compress.DecodeLimits
}

// Wrap frames c with default decode limits. If c is already framed it is
// returned unchanged.
func Wrap(c compress.Codec) *Codec { return WrapLimits(c, compress.DecodeLimits{}) }

// WrapLimits frames c with explicit decode limits.
func WrapLimits(c compress.Codec, lim compress.DecodeLimits) *Codec {
	if fc, ok := c.(*Codec); ok {
		return &Codec{inner: fc.inner, lim: lim}
	}
	return &Codec{inner: c, lim: lim}
}

// Unwrap returns the inner, unframed codec.
func (c *Codec) Unwrap() compress.Codec { return c.inner }

// Name implements compress.Codec; the frame is transparent in result tables.
func (c *Codec) Name() string { return c.inner.Name() }

// DecodeIsLight implements compress.LightDecoder by forwarding the inner
// codec's hint: CRC verification adds memory-bandwidth-class work, so the
// frame never changes a codec's weight class.
func (c *Codec) DecodeIsLight() bool { return compress.DecodeIsLight(c.inner) }

// Info implements compress.Describer when the inner codec does.
func (c *Codec) Info() compress.Info {
	if d, ok := c.inner.(compress.Describer); ok {
		return d.Info()
	}
	return compress.Info{Name: c.inner.Name()}
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	payload, err := c.inner.Compress(src)
	if err != nil {
		return nil, err
	}
	return Encode(c.inner.Name(), src, payload)
}

// CompressAppendTrace implements compress.TracedCompressor: the inner
// codec's stage spans (when it has them) plus a frame-encode stage for the
// envelope, so a trace shows where container overhead sits relative to the
// real compression work.
func (c *Codec) CompressAppendTrace(dst, src []byte, sp *trace.Span) ([]byte, error) {
	payload, err := compress.CompressAppendTrace(c.inner, nil, src, sp)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	frame, err := Encode(c.inner.Name(), src, payload)
	if err != nil {
		return nil, err
	}
	sp.AddStage("frame-encode", time.Since(t0), int64(len(payload)), int64(len(frame)))
	return append(dst, frame...), nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, c.lim)
}

// DecompressLimits implements compress.Limited.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	return c.decompressLimits(comp, lim, nil)
}

// DecompressAppendLimitsTrace implements compress.TracedDecompressor:
// frame-decode and frame-verify stages around the inner codec's own.
func (c *Codec) DecompressAppendLimitsTrace(dst, comp []byte, lim compress.DecodeLimits, sp *trace.Span) ([]byte, error) {
	out, err := c.decompressLimits(comp, lim, sp)
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}

func (c *Codec) decompressLimits(comp []byte, lim compress.DecodeLimits, sp *trace.Span) (out []byte, err error) {
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	h, payload, err := Decode(comp)
	if err != nil {
		return nil, err
	}
	if h.Codec != c.inner.Name() {
		return nil, compress.Errorf(compress.ErrCorrupt, "container: frame for codec %q, decoder is %q", h.Codec, c.inner.Name())
	}
	if err := lim.CheckDeclared(h.OrigLen, len(comp)); err != nil {
		return nil, err
	}
	if sp != nil {
		sp.AddStage("frame-decode", time.Since(t0), int64(len(comp)), int64(len(payload)))
	}
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, compress.Errorf(compress.ErrCorrupt, "container: %s decoder panic: %v", h.Codec, p)
		}
	}()
	out, err = compress.DecompressAppendLimitsTrace(c.inner, nil, payload, lim, sp)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		t0 = time.Now()
	}
	if err := VerifyOutput(h, out); err != nil {
		return nil, err
	}
	if sp != nil {
		sp.AddStage("frame-verify", time.Since(t0), int64(len(out)), 0)
	}
	return out, nil
}

var (
	_ compress.Codec              = (*Codec)(nil)
	_ compress.Describer          = (*Codec)(nil)
	_ compress.Limited            = (*Codec)(nil)
	_ compress.TracedCompressor   = (*Codec)(nil)
	_ compress.TracedDecompressor = (*Codec)(nil)
)
