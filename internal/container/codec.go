package container

import (
	"positbench/internal/compress"
)

// Codec wraps an inner compress.Codec so every compressed blob travels in a
// verified frame: Compress appends the envelope, Decompress validates
// magic, version, codec identity, declared length (against DecodeLimits),
// and both checksums before returning data. Any panic escaping the inner
// decoder is converted to ErrCorrupt, so a framed codec never takes down
// its caller on hostile input.
type Codec struct {
	inner compress.Codec
	lim   compress.DecodeLimits
}

// Wrap frames c with default decode limits. If c is already framed it is
// returned unchanged.
func Wrap(c compress.Codec) *Codec { return WrapLimits(c, compress.DecodeLimits{}) }

// WrapLimits frames c with explicit decode limits.
func WrapLimits(c compress.Codec, lim compress.DecodeLimits) *Codec {
	if fc, ok := c.(*Codec); ok {
		return &Codec{inner: fc.inner, lim: lim}
	}
	return &Codec{inner: c, lim: lim}
}

// Unwrap returns the inner, unframed codec.
func (c *Codec) Unwrap() compress.Codec { return c.inner }

// Name implements compress.Codec; the frame is transparent in result tables.
func (c *Codec) Name() string { return c.inner.Name() }

// Info implements compress.Describer when the inner codec does.
func (c *Codec) Info() compress.Info {
	if d, ok := c.inner.(compress.Describer); ok {
		return d.Info()
	}
	return compress.Info{Name: c.inner.Name()}
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	payload, err := c.inner.Compress(src)
	if err != nil {
		return nil, err
	}
	return Encode(c.inner.Name(), src, payload)
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, c.lim)
}

// DecompressLimits implements compress.Limited.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) (out []byte, err error) {
	h, payload, err := Decode(comp)
	if err != nil {
		return nil, err
	}
	if h.Codec != c.inner.Name() {
		return nil, compress.Errorf(compress.ErrCorrupt, "container: frame for codec %q, decoder is %q", h.Codec, c.inner.Name())
	}
	if err := lim.CheckDeclared(h.OrigLen, len(comp)); err != nil {
		return nil, err
	}
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, compress.Errorf(compress.ErrCorrupt, "container: %s decoder panic: %v", h.Codec, p)
		}
	}()
	out, err = compress.DecompressLimits(c.inner, payload, lim)
	if err != nil {
		return nil, err
	}
	if err := VerifyOutput(h, out); err != nil {
		return nil, err
	}
	return out, nil
}

var (
	_ compress.Codec     = (*Codec)(nil)
	_ compress.Describer = (*Codec)(nil)
	_ compress.Limited   = (*Codec)(nil)
)
