package container

import (
	"fmt"
	"io"

	"positbench/internal/chunkcache"
	"positbench/internal/compress"
)

// Random access over an indexed (v2) chunked stream. ReaderAt maps a raw
// `[off,len)` window to the minimal chunk set via the trailer index,
// fetches only those frames, verifies each against its indexed CRC-32C,
// and decodes them — in parallel through the work-stealing engine when the
// window spans several chunks, and through an optional content-addressed
// cache so repeated windows (or identical chunks across objects) decode
// once.

// ReaderAtOptions tunes a ReaderAt. The zero value is usable: default
// decode limits, GOMAXPROCS workers, no cache.
type ReaderAtOptions struct {
	// Limits bounds every per-chunk decode, exactly as the stream readers do.
	Limits compress.DecodeLimits
	// Workers bounds parallel chunk decodes inside one ReadAt call;
	// <= 0 selects GOMAXPROCS. RangeReader streams chunk-at-a-time and
	// ignores it.
	Workers int
	// Cache, when non-nil, memoizes decoded chunks content-addressed by
	// the trailer's chunk hash (pinned by CRC and raw length).
	Cache *chunkcache.Cache
}

// ReaderAt provides random access into an indexed stream. ReadAt is
// stateless and safe for concurrent use; Range returns a stateful
// sequential reader over one window.
type ReaderAt struct {
	src   io.ReaderAt
	codec compress.Codec
	ix    *Index
	opt   ReaderAtOptions
}

// NewReaderAt discovers the index trailer of the stream readable through
// src (size bytes long) and returns a ReaderAt over it. A stream without a
// trailer yields ErrNoTrailer — the caller falls back to sequential decode;
// a present-but-inconsistent trailer yields a taxonomy error.
func NewReaderAt(src io.ReaderAt, size int64, codec compress.Codec, opt ReaderAtOptions) (*ReaderAt, error) {
	ix, err := ParseTrailer(src, size)
	if err != nil {
		return nil, err
	}
	return NewReaderAtIndex(src, ix, codec, opt), nil
}

// NewReaderAtIndex is NewReaderAt for a caller that already holds the
// parsed index (a store that validated it at ingest keeps and reuses it).
func NewReaderAtIndex(src io.ReaderAt, ix *Index, codec compress.Codec, opt ReaderAtOptions) *ReaderAt {
	return &ReaderAt{src: src, codec: codec, ix: ix, opt: opt}
}

// Size returns the total decoded stream length.
func (r *ReaderAt) Size() int64 { return r.ix.RawLen }

// Index returns the parsed seek index.
func (r *ReaderAt) Index() *Index { return r.ix }

// chunk fetches, verifies, and decodes chunk i, through the cache when one
// is attached. The returned slice is shared with the cache — read-only.
func (r *ReaderAt) chunk(i int) (data []byte, cached bool, err error) {
	ref := &r.ix.Chunks[i]
	fill := func() ([]byte, error) {
		frame := make([]byte, ref.CompLen)
		if _, err := r.src.ReadAt(frame, ref.Offset); err != nil {
			return nil, compress.Errorf(compress.ErrTruncated, "container: chunk %d frame: %v", i, err)
		}
		if got := Checksum(frame); got != ref.CRC {
			return nil, compress.Errorf(compress.ErrCorrupt, "container: chunk %d checksum %08x, index declares %08x", i, got, ref.CRC)
		}
		out, err := compress.DecompressLimits(r.codec, frame, r.opt.Limits)
		if err != nil {
			return nil, err
		}
		if int64(len(out)) != ref.RawLen {
			return nil, compress.Errorf(compress.ErrCorrupt, "container: chunk %d decoded %d bytes, index declares %d", i, len(out), ref.RawLen)
		}
		compress.AccountRangeChunk(ref.CompLen, ref.RawLen)
		return out, nil
	}
	if r.opt.Cache != nil {
		return r.opt.Cache.GetOrFill(ref.CacheKey(), fill)
	}
	data, err = fill()
	return data, false, err
}

// ReadAt implements io.ReaderAt over the decoded byte space: it decodes
// only the chunks overlapping [off, off+len(p)), in parallel when the
// window spans more than one. Reads past EOF return io.EOF with the bytes
// that exist, per the io.ReaderAt contract.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("container: negative read offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off >= r.ix.RawLen {
		return 0, io.EOF
	}
	want := int64(len(p))
	short := false
	if off+want > r.ix.RawLen {
		want = r.ix.RawLen - off
		short = true
	}
	compress.AccountRangeRead()
	first, last := r.ix.Locate(off, want)
	outs := make([][]byte, last-first)
	errs := make([]error, last-first)
	compress.RunParallel(r.opt.Workers, last-first, func(i int) {
		outs[i], _, errs[i] = r.chunk(first + i)
	})
	var n int
	for i, out := range outs {
		if errs[i] != nil {
			return n, errs[i] // first error in stream order wins
		}
		ref := &r.ix.Chunks[first+i]
		lo := off + int64(n) - ref.RawOff
		n += copy(p[n:], out[lo:])
	}
	if short {
		return n, io.EOF
	}
	return n, nil
}

// Range returns a sequential reader over the decoded window
// [off, off+length). length < 0 means "to end of stream"; windows are
// clamped at EOF. Unlike wrapping ReadAt in an io.SectionReader — which
// would re-decode a chunk for every 32 KiB copy step — the RangeReader
// decodes each touched chunk exactly once and streams it out.
func (r *ReaderAt) Range(off, length int64) (*RangeReader, error) {
	if off < 0 {
		return nil, fmt.Errorf("container: negative range offset %d", off)
	}
	end := r.ix.RawLen
	if off > end {
		off = end
	}
	if length >= 0 && length < end-off {
		end = off + length
	}
	rr := &RangeReader{r: r, off: off, end: end}
	rr.next, rr.last = r.ix.Locate(off, end-off)
	if end > off {
		compress.AccountRangeRead()
	}
	return rr, nil
}

// RangeReader streams one decoded window chunk by chunk. Not safe for
// concurrent use.
type RangeReader struct {
	r    *ReaderAt
	off  int64 // next raw byte to deliver
	end  int64 // exclusive window end
	next int   // next chunk index to decode
	last int   // exclusive chunk bound
	cur  []byte
	err  error

	chunks    int   // chunks touched (decoded or served from cache)
	cacheHits int   // of those, served from cache
	compBytes int64 // compressed bytes of touched chunks
}

// Chunks reports how many chunks the window touched so far; the
// conformance wall bounds it at ceil(len/chunkSize)+1.
func (rr *RangeReader) Chunks() int { return rr.chunks }

// CacheHits reports how many touched chunks came out of the cache.
func (rr *RangeReader) CacheHits() int { return rr.cacheHits }

// CompBytes reports the compressed bytes of the touched chunks — what the
// range read fetched instead of the whole stream.
func (rr *RangeReader) CompBytes() int64 { return rr.compBytes }

// Read implements io.Reader.
func (rr *RangeReader) Read(p []byte) (int, error) {
	if rr.err != nil {
		return 0, rr.err
	}
	for len(rr.cur) == 0 {
		if rr.off >= rr.end || rr.next >= rr.last {
			rr.err = io.EOF
			return 0, io.EOF
		}
		i := rr.next
		rr.next++
		out, cached, err := rr.r.chunk(i)
		if err != nil {
			rr.err = err
			return 0, err
		}
		ref := &rr.r.ix.Chunks[i]
		rr.chunks++
		rr.compBytes += ref.CompLen
		if cached {
			rr.cacheHits++
		}
		lo := rr.off - ref.RawOff
		hi := ref.RawLen
		if ref.RawOff+hi > rr.end {
			hi = rr.end - ref.RawOff
		}
		rr.cur = out[lo:hi]
	}
	n := copy(p, rr.cur)
	rr.cur = rr.cur[n:]
	rr.off += int64(n)
	return n, nil
}

var (
	_ io.ReaderAt = (*ReaderAt)(nil)
	_ io.Reader   = (*RangeReader)(nil)
)
