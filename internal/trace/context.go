package trace

import "context"

// ctxKey is the private context key for span propagation.
type ctxKey struct{}

// NewContext returns ctx carrying sp. A nil span returns ctx unchanged, so
// disabled tracing adds no context allocation on the request path.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil when tracing is off.
// The nil return composes: every Span method no-ops on nil, so callers
// never branch.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
