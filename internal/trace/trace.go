// Package trace is positbench's in-process request tracer: a lightweight
// span tree recording where the time and bytes of one request go (queue
// wait vs worker time in the parallel engine, BWT vs Huffman vs range-coder
// phases inside a codec), plus a fixed-size ring buffer of recently
// finished traces for the /debug/traces endpoint.
//
// The design goal is that *disabled* tracing costs nearly nothing: every
// Span method is safe on a nil receiver and returns immediately, so
// instrumented code holds a nil *Span and pays one predictable branch per
// call — no time.Now, no allocation, no atomic. Code that would do real
// work to feed a span (timing a phase, formatting an attribute) must gate
// it on Enabled().
//
// Concurrency: one Span's methods may be called from multiple goroutines
// (the parallel engine attributes chunk work from its workers), so child
// registration and mutation take a per-span mutex. The ring buffer is
// lock-free-ish: writers claim a slot with one atomic increment and publish
// with one atomic pointer store; readers snapshot pointers without blocking
// writers.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// maxChildren bounds one span's direct children so an adversarial or
// enormous stream (millions of chunks) cannot grow a trace without bound.
// Children past the cap are counted, not stored.
const maxChildren = 512

// maxAttrs bounds per-span attributes the same way.
const maxAttrs = 32

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed region of a request. Spans form a tree under a root
// created by Tracer.Start; a nil *Span is the disabled tracer and all its
// methods no-op.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero until End
	bytesIn  int64
	bytesOut int64
	attrs    []Attr
	children []*Span
	dropped  int // children beyond maxChildren

	root *rootState // non-nil only on root spans
}

// rootState ties a root span back to its tracer for publication on End.
type rootState struct {
	tracer *Tracer
	id     string
	done   atomic.Bool // first End wins; later Ends are no-ops
}

// Enabled reports whether the span records anything. Instrumented code uses
// it to gate work done purely to feed the span (time.Now calls, string
// formatting).
func (s *Span) Enabled() bool { return s != nil }

// Child opens a sub-span named name, started now. It is safe to call from
// multiple goroutines on the same parent. On a nil span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.adopt(c)
	return c
}

// adopt registers c as a child, dropping (but counting) children past the
// cap. Dropped children still record into their own subtree; they are just
// invisible in the exported trace.
func (s *Span) adopt(c *Span) {
	s.mu.Lock()
	if len(s.children) < maxChildren {
		s.children = append(s.children, c)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
}

// AddStage attaches an already-measured phase as a completed child span:
// callers that time a phase themselves (or aggregate one phase across
// parallel workers) report it in a single call. The recorded interval is
// [now-d, now]; for phases summed across concurrent workers the duration is
// CPU-like and may exceed the parent's wall time.
func (s *Span) AddStage(name string, d time.Duration, bytesIn, bytesOut int64) {
	if s == nil {
		return
	}
	now := time.Now()
	c := &Span{name: name, start: now.Add(-d), end: now, bytesIn: bytesIn, bytesOut: bytesOut}
	s.adopt(c)
}

// SetBytes records the span's input/output byte counts.
func (s *Span) SetBytes(in, out int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.bytesIn, s.bytesOut = in, out
	s.mu.Unlock()
}

// AddBytes accumulates into the span's byte counts (used by spans that see
// their data incrementally).
func (s *Span) AddBytes(in, out int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.bytesIn += in
	s.bytesOut += out
	s.mu.Unlock()
}

// Annotate attaches a key=value attribute.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.attrs) < maxAttrs {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// End closes the span. Ending a root span exports the whole tree into its
// tracer's ring buffer; unfinished descendants are exported with the root's
// end time so a dropped End cannot hold a trace hostage. End is idempotent
// on roots and harmless to repeat elsewhere.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
	if s.root != nil && s.root.done.CompareAndSwap(false, true) {
		s.root.tracer.publish(s)
	}
}

// SpanData is the exported, immutable form of one span, relative to the
// trace's start so a JSON consumer can lay out a flame view directly.
type SpanData struct {
	Name     string      `json:"name"`
	StartUS  int64       `json:"start_us"` // offset from trace start
	DurUS    int64       `json:"dur_us"`
	BytesIn  int64       `json:"bytes_in,omitempty"`
	BytesOut int64       `json:"bytes_out,omitempty"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Dropped  int         `json:"dropped_children,omitempty"`
	Children []*SpanData `json:"children,omitempty"`
}

// Trace is one finished request's span tree, as stored in the ring.
type Trace struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	Root  *SpanData `json:"root"`
}

// export freezes the span subtree. base is the trace start; fallbackEnd
// closes any span still open at export time.
func (s *Span) export(base, fallbackEnd time.Time) *SpanData {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = fallbackEnd
	}
	d := &SpanData{
		Name:     s.name,
		StartUS:  s.start.Sub(base).Microseconds(),
		DurUS:    end.Sub(s.start).Microseconds(),
		BytesIn:  s.bytesIn,
		BytesOut: s.bytesOut,
		Attrs:    append([]Attr(nil), s.attrs...),
		Dropped:  s.dropped,
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.export(base, fallbackEnd))
	}
	return d
}

// Tracer owns the ring buffer of recent traces. A nil *Tracer is the
// disabled tracer: Start returns a nil span and Snapshot returns nil.
type Tracer struct {
	slots []atomic.Pointer[Trace]
	seq   atomic.Uint64
}

// DefaultCapacity is the ring size New selects for capacity <= 0.
const DefaultCapacity = 128

// New returns a tracer retaining the last capacity finished traces.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{slots: make([]atomic.Pointer[Trace], capacity)}
}

// Start opens a root span for one request. id is the request's correlation
// ID (exported with the trace); name labels the root span. On a nil tracer
// it returns nil, which disables the whole subtree for free.
func (t *Tracer) Start(name, id string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		name:  name,
		start: time.Now(),
		root:  &rootState{tracer: t, id: id},
	}
}

// publish freezes a finished root into the next ring slot.
func (t *Tracer) publish(root *Span) {
	root.mu.Lock()
	end := root.end
	root.mu.Unlock()
	tr := &Trace{ID: root.root.id, Start: root.start, Root: root.export(root.start, end)}
	slot := (t.seq.Add(1) - 1) % uint64(len(t.slots))
	t.slots[slot].Store(tr)
}

// Snapshot returns the retained traces, most recent first. It never blocks
// writers; a trace published concurrently may or may not appear.
func (t *Tracer) Snapshot() []*Trace {
	if t == nil {
		return nil
	}
	n := t.seq.Load()
	capN := uint64(len(t.slots))
	if n > capN {
		n = capN
	}
	out := make([]*Trace, 0, n)
	next := t.seq.Load()
	for i := uint64(0); i < capN && uint64(len(out)) < n; i++ {
		// Walk backwards from the most recently claimed slot.
		slot := (next - 1 - i + capN*2) % capN
		if tr := t.slots[slot].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Len reports how many traces have ever been published (not the ring size).
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Capacity reports the ring size (0 on a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}
