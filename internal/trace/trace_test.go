package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	if sp.Enabled() {
		t.Fatal("nil span reports enabled")
	}
	// Every method must be a no-op, not a panic.
	c := sp.Child("x")
	if c != nil {
		t.Fatalf("nil span produced a live child %v", c)
	}
	sp.AddStage("y", time.Millisecond, 1, 2)
	sp.SetBytes(1, 2)
	sp.AddBytes(3, 4)
	sp.Annotate("k", "v")
	sp.End()
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if sp := tr.Start("req", "id"); sp != nil {
		t.Fatalf("nil tracer produced a live span %v", sp)
	}
	if snap := tr.Snapshot(); snap != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", snap)
	}
	if tr.Len() != 0 {
		t.Fatal("nil tracer has nonzero length")
	}
}

func TestSpanTreeExport(t *testing.T) {
	tr := New(4)
	root := tr.Start("compress", "req-1")
	root.Annotate("codec", "bzip2")
	chunk := root.Child("chunk")
	chunk.AddStage("queue-wait", 3*time.Millisecond, 0, 0)
	work := chunk.Child("compress")
	work.SetBytes(1000, 100)
	work.End()
	chunk.End()
	root.SetBytes(1000, 100)
	root.End()

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(snap))
	}
	got := snap[0]
	if got.ID != "req-1" || got.Root.Name != "compress" {
		t.Fatalf("trace = %+v", got)
	}
	if len(got.Root.Children) != 1 {
		t.Fatalf("root has %d children, want 1", len(got.Root.Children))
	}
	ch := got.Root.Children[0]
	if ch.Name != "chunk" || len(ch.Children) != 2 {
		t.Fatalf("chunk span = %+v", ch)
	}
	names := map[string]bool{}
	for _, c := range ch.Children {
		names[c.Name] = true
	}
	if !names["queue-wait"] || !names["compress"] {
		t.Fatalf("chunk children = %v", names)
	}
	for _, c := range ch.Children {
		if c.Name == "queue-wait" && c.DurUS < 2900 {
			t.Errorf("queue-wait duration %dus, want >= 2900", c.DurUS)
		}
		if c.Name == "compress" && (c.BytesIn != 1000 || c.BytesOut != 100) {
			t.Errorf("compress bytes = %d/%d", c.BytesIn, c.BytesOut)
		}
	}
	if len(got.Root.Attrs) != 1 || got.Root.Attrs[0].Key != "codec" {
		t.Errorf("root attrs = %v", got.Root.Attrs)
	}
	// The exported document must be JSON-serializable (the /debug/traces
	// contract).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		sp := tr.Start("r", fmt.Sprintf("id-%d", i))
		sp.End()
	}
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d traces, want ring capacity 3", len(snap))
	}
	// Most recent first.
	for i, want := range []string{"id-9", "id-8", "id-7"} {
		if snap[i].ID != want {
			t.Errorf("snap[%d].ID = %s, want %s", i, snap[i].ID, want)
		}
	}
	if tr.Len() != 10 {
		t.Errorf("Len = %d, want 10", tr.Len())
	}
}

func TestConcurrentChildrenAndPublish(t *testing.T) {
	tr := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.Start("req", fmt.Sprintf("g%d-%d", g, i))
				var cwg sync.WaitGroup
				for w := 0; w < 4; w++ {
					cwg.Add(1)
					go func() {
						defer cwg.Done()
						c := root.Child("chunk")
						c.AddBytes(10, 1)
						c.AddStage("stage", time.Microsecond, 0, 0)
						c.End()
					}()
				}
				cwg.Wait()
				root.End()
			}
		}(g)
	}
	// Concurrent readers must never block or crash on in-flight publishes.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	if tr.Len() != 8*50 {
		t.Fatalf("published %d traces, want %d", tr.Len(), 8*50)
	}
	for _, trc := range tr.Snapshot() {
		if len(trc.Root.Children) != 4 {
			t.Fatalf("trace %s has %d chunk spans, want 4", trc.ID, len(trc.Root.Children))
		}
	}
}

func TestChildCapCountsDropped(t *testing.T) {
	tr := New(1)
	root := tr.Start("req", "big")
	for i := 0; i < maxChildren+10; i++ {
		root.Child("c").End()
	}
	root.End()
	got := tr.Snapshot()[0].Root
	if len(got.Children) != maxChildren {
		t.Fatalf("exported %d children, want cap %d", len(got.Children), maxChildren)
	}
	if got.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", got.Dropped)
	}
}

func TestContextRoundtrip(t *testing.T) {
	ctx := context.Background()
	if sp := FromContext(ctx); sp != nil {
		t.Fatal("empty context yielded a span")
	}
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatal("nil span changed the context")
	}
	tr := New(1)
	sp := tr.Start("req", "id")
	ctx2 := NewContext(ctx, sp)
	if got := FromContext(ctx2); got != sp {
		t.Fatalf("FromContext = %v, want %v", got, sp)
	}
}

func TestDoubleEndPublishesOnce(t *testing.T) {
	tr := New(4)
	sp := tr.Start("req", "once")
	sp.End()
	sp.End()
	if tr.Len() != 1 {
		t.Fatalf("published %d traces after double End, want 1", tr.Len())
	}
}

func TestUnfinishedChildExportedWithRootEnd(t *testing.T) {
	tr := New(1)
	root := tr.Start("req", "leak")
	root.Child("never-ended") // simulate a dropped End
	time.Sleep(2 * time.Millisecond)
	root.End()
	got := tr.Snapshot()[0].Root.Children[0]
	if got.DurUS <= 0 {
		t.Fatalf("unfinished child exported with non-positive duration %dus", got.DurUS)
	}
}
