package compress

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"positbench/internal/trace"
)

// Streaming adapters: wrap any block Codec in an io.WriteCloser /
// io.Reader pair using a chunked container (uvarint compressed-chunk
// length prefixes, zero-length terminator), so multi-gigabyte files can be
// processed without holding them in memory.

// DefaultChunkSize is the streaming granularity; large enough that the
// block codecs reach their full ratios, small enough to bound memory.
const DefaultChunkSize = 4 << 20

// Writer compresses a stream chunk by chunk.
type Writer struct {
	codec  Codec
	dst    io.Writer
	buf    []byte
	comp   []byte // reused compressed-chunk buffer
	hdr    [binary.MaxVarintLen64]byte
	chunk  int
	closed bool
	span   *trace.Span // parents per-chunk spans; nil = untraced
	sink   IndexSink   // opt-in seek-index sink; nil = plain stream
	pos    int64       // absolute stream offset of the next frame
}

// SetSpan attaches sp as the parent of this writer's per-chunk spans. Call
// it before the first Write; a nil span (the default) disables tracing at
// the cost of one branch per chunk.
func (w *Writer) SetSpan(sp *trace.Span) { w.span = sp }

// SetIndexSink attaches sink to receive the frame layout as it is written;
// Close then appends the sink's trailer after the stream terminator. Call
// it before the first Write. A nil sink (the default) leaves the output
// byte-identical to an unindexed stream.
func (w *Writer) SetIndexSink(sink IndexSink) { w.sink = sink }

// NewWriter returns a streaming compressor writing to dst. chunkSize <= 0
// selects DefaultChunkSize.
func NewWriter(codec Codec, dst io.Writer, chunkSize int) *Writer {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Writer{codec: codec, dst: dst, chunk: chunkSize}
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("compress: write after Close")
	}
	total := len(p)
	for len(p) > 0 {
		room := w.chunk - len(w.buf)
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
		p = p[room:]
		if len(w.buf) == w.chunk {
			if err := w.flush(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (w *Writer) flush() error {
	chunk := w.span.Child("chunk") // nil-safe: nil span yields nil chunk
	cs := chunk.Child("compress")
	t0 := time.Now()
	comp, err := CompressAppendTrace(w.codec, w.comp[:0], w.buf, cs)
	engine.compressBusyNS.Add(int64(time.Since(t0)))
	cs.SetBytes(int64(len(w.buf)), int64(len(comp)))
	cs.End()
	if err != nil {
		chunk.End()
		return err
	}
	engine.compressChunks.Add(1)
	engine.compressBytesIn.Add(int64(len(w.buf)))
	engine.compressBytesOut.Add(int64(len(comp)))
	w.comp = comp
	t1 := time.Now()
	n, err := writeFrame(w.dst, w.hdr[:], comp)
	if err != nil {
		chunk.End()
		return err
	}
	w.pos += n
	if w.sink != nil {
		w.sink.AddChunk(w.pos-int64(len(comp)), comp, len(w.buf))
	}
	if chunk != nil {
		chunk.AddStage("frame-write", time.Since(t1), 0, int64(len(comp)))
		chunk.SetBytes(int64(len(w.buf)), int64(len(comp)))
		chunk.End()
	}
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the final chunk and writes the stream terminator.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.flush(); err != nil {
			return err
		}
	}
	if _, err := w.dst.Write([]byte{0}); err != nil {
		return err
	}
	if w.sink != nil {
		if _, err := w.sink.WriteTrailer(w.dst); err != nil {
			return err
		}
	}
	return nil
}

// Reader decompresses a stream produced by Writer.
type Reader struct {
	codec Codec
	src   *bufio.Reader
	lim   DecodeLimits
	buf   []byte
	comp  []byte // reused compressed-chunk buffer
	out   []byte // reused decoded-chunk buffer; r.buf slices it
	done  bool
	err   error
	span  *trace.Span // parents per-chunk spans; nil = untraced
}

// SetSpan attaches sp as the parent of this reader's per-chunk spans. Call
// it before the first Read.
func (r *Reader) SetSpan(sp *trace.Span) { r.span = sp }

// NewReader returns a streaming decompressor over src with default decode
// limits. The codec must match the one used for writing.
func NewReader(codec Codec, src io.Reader) *Reader {
	return NewReaderLimits(codec, src, DecodeLimits{})
}

// NewReaderLimits returns a streaming decompressor that enforces lim on
// every chunk: a tampered chunk-length prefix cannot trigger an allocation
// past the limits, and each chunk decompresses under them.
func NewReaderLimits(codec Codec, src io.Reader, lim DecodeLimits) *Reader {
	return &Reader{codec: codec, src: bufio.NewReader(src), lim: lim}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for len(r.buf) == 0 {
		if r.done {
			r.err = io.EOF
			return 0, io.EOF
		}
		if err := r.nextChunk(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// nextChunk reads and decodes the next frame. It only runs once r.buf is
// fully drained, so the previous chunk's buffers are safe to reuse: Read
// hands callers copies, never the backing arrays.
func (r *Reader) nextChunk() error {
	var t0 time.Time
	if r.span.Enabled() {
		t0 = time.Now()
	}
	comp, err := readFrameInto(r.src, r.lim, r.comp[:0])
	if err != nil {
		return err
	}
	if comp == nil {
		r.done = true
		return nil
	}
	r.comp = comp
	chunk := r.span.Child("chunk")
	if chunk != nil {
		chunk.AddStage("frame-read", time.Since(t0), int64(len(comp)), 0)
	}
	ds := chunk.Child("decompress")
	t1 := time.Now()
	out, err := DecompressAppendLimitsTrace(r.codec, r.out[:0], comp, r.lim, ds)
	engine.decompressBusyNS.Add(int64(time.Since(t1)))
	ds.SetBytes(int64(len(comp)), int64(len(out)))
	ds.End()
	if err != nil {
		chunk.End()
		return err
	}
	engine.decompressChunks.Add(1)
	engine.decompressBytesIn.Add(int64(len(comp)))
	engine.decompressBytesOut.Add(int64(len(out)))
	if chunk != nil {
		chunk.SetBytes(int64(len(comp)), int64(len(out)))
		chunk.End()
	}
	r.out = out
	r.buf = out
	return nil
}

var (
	_ io.WriteCloser = (*Writer)(nil)
	_ io.Reader      = (*Reader)(nil)
)
