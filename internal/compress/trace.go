package compress

import (
	"positbench/internal/trace"
)

// Tracing capabilities. Codecs that can attribute their work to internal
// pipeline stages (BWT vs Huffman vs range coder) implement the *Trace
// variants; the engines call them through the helpers below only when a
// live span is present, so a codec's untraced hot path never sees a span
// check.

// TracedCompressor is implemented by codecs that can report per-stage
// timings while compressing. The span is never nil when the engines call
// this; implementations attach stage children to it.
type TracedCompressor interface {
	CompressAppendTrace(dst, src []byte, sp *trace.Span) ([]byte, error)
}

// TracedDecompressor is the decode-side capability.
type TracedDecompressor interface {
	DecompressAppendLimitsTrace(dst, comp []byte, lim DecodeLimits, sp *trace.Span) ([]byte, error)
}

// CompressAppendTrace compresses src with c, attaching per-stage spans to
// sp when the codec supports it. A nil sp (tracing disabled) or an untraced
// codec takes exactly the CompressAppend path.
func CompressAppendTrace(c Codec, dst, src []byte, sp *trace.Span) ([]byte, error) {
	if sp != nil {
		if tc, ok := c.(TracedCompressor); ok {
			return tc.CompressAppendTrace(dst, src, sp)
		}
	}
	return CompressAppend(c, dst, src)
}

// DecompressAppendLimitsTrace is the decode-side twin of
// CompressAppendTrace.
func DecompressAppendLimitsTrace(c Codec, dst, comp []byte, lim DecodeLimits, sp *trace.Span) ([]byte, error) {
	if sp != nil {
		if td, ok := c.(TracedDecompressor); ok {
			return td.DecompressAppendLimitsTrace(dst, comp, lim, sp)
		}
	}
	return DecompressAppendLimits(c, dst, comp, lim)
}
