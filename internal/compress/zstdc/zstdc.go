// Package zstdc implements the zstd-class codec: LZ77 with a 1 MiB window
// and lazy parsing, followed by a fast entropy stage (canonical Huffman over
// literals and over gamma-bucketed literal-length / match-length / offset
// codes). This mirrors Zstandard's design point between gzip (small window)
// and xz (context-modelled arithmetic coding).
package zstdc

import (
	"fmt"
	"math/bits"

	"positbench/internal/bitio"
	"positbench/internal/compress"
	"positbench/internal/huffman"
	"positbench/internal/lz77"
)

const (
	defaultWindow = 1 << 20
	minMatch      = lz77.MinMatch
	numValCodes   = 40 // gamma bucket codes for lengths/offsets
)

// Codec is the zstd-class compressor.
type Codec struct {
	window int
	depth  int
}

// New returns a codec at maximum-effort settings (`zstd -19`-like).
func New() *Codec { return &Codec{window: defaultWindow, depth: 96} }

// NewParams returns a codec with explicit window and search depth.
func NewParams(window, depth int) *Codec { return &Codec{window: window, depth: depth} }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "zstd" }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	return compress.Info{Name: "zstd", Version: "lz-huff", Source: "models Zstandard 1.5.1 --best (1 MiB window LZ + entropy stage)"}
}

type sequence struct {
	litLen   int
	matchLen int
	offset   int
}

// valCode gamma-buckets a non-negative value: code k covers [2^k-1, 2^(k+1)-2]
// with k extra bits.
func valCode(v int) (code int, extra uint64, ebits uint) {
	u := uint64(v) + 1
	code = bits.Len64(u) - 1
	return code, u - 1<<uint(code), uint(code)
}

func valDecode(code int, extra uint64) int {
	return int(1<<uint(code) + extra - 1)
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	var seqs []sequence
	var lits []byte
	m := lz77.NewMatcher(src, c.window, c.depth)
	pos, litStart := 0, 0
	for pos < len(src) {
		dist, mlen := m.FindMatch(pos, len(src)-pos)
		m.Insert(pos)
		if mlen < minMatch {
			pos++
			continue
		}
		if pos+1 < len(src) {
			// Lazy one-step parse: if a strictly longer match starts one
			// byte later, emit this byte as a literal and let the next
			// iteration take that match.
			if _, l2 := m.FindMatch(pos+1, len(src)-pos-1); l2 > mlen {
				pos++
				continue
			}
		}
		seqs = append(seqs, sequence{litLen: pos - litStart, matchLen: mlen, offset: dist})
		lits = append(lits, src[litStart:pos]...)
		for i := pos + 1; i < pos+mlen; i++ {
			m.Insert(i)
		}
		pos += mlen
		litStart = pos
	}
	lastLits := src[litStart:]
	lits = append(lits, lastLits...)

	// Entropy stage.
	litFreq := make([]int, 256)
	for _, b := range lits {
		litFreq[b]++
	}
	llFreq := make([]int, numValCodes)
	mlFreq := make([]int, numValCodes)
	ofFreq := make([]int, numValCodes)
	for _, s := range seqs {
		cll, _, _ := valCode(s.litLen)
		cml, _, _ := valCode(s.matchLen - minMatch)
		cof, _, _ := valCode(s.offset - 1)
		llFreq[cll]++
		mlFreq[cml]++
		ofFreq[cof]++
	}
	litLen, err := huffman.BuildLengths(litFreq, huffman.MaxBits)
	if err != nil {
		return nil, err
	}
	llLen, err := huffman.BuildLengths(llFreq, huffman.MaxBits)
	if err != nil {
		return nil, err
	}
	mlLen, err := huffman.BuildLengths(mlFreq, huffman.MaxBits)
	if err != nil {
		return nil, err
	}
	ofLen, err := huffman.BuildLengths(ofFreq, huffman.MaxBits)
	if err != nil {
		return nil, err
	}
	litEnc, err := huffman.NewEncoder(litLen)
	if err != nil {
		return nil, err
	}
	llEnc, err := huffman.NewEncoder(llLen)
	if err != nil {
		return nil, err
	}
	mlEnc, err := huffman.NewEncoder(mlLen)
	if err != nil {
		return nil, err
	}
	ofEnc, err := huffman.NewEncoder(ofLen)
	if err != nil {
		return nil, err
	}

	hdr := bitio.PutUvarint(nil, uint64(len(src)))
	hdr = bitio.PutUvarint(hdr, uint64(len(seqs)))
	hdr = bitio.PutUvarint(hdr, uint64(len(lits)))
	hdr = bitio.PutUvarint(hdr, uint64(len(lastLits)))
	w := bitio.NewWriter(len(src)/2 + 64)
	w.WriteBytes(hdr)
	for _, tbl := range [][]uint8{litLen, llLen, mlLen, ofLen} {
		if err := huffman.WriteLengths(w, tbl); err != nil {
			return nil, err
		}
	}
	for _, b := range lits {
		litEnc.Encode(w, int(b))
	}
	for _, s := range seqs {
		cll, ell, nll := valCode(s.litLen)
		llEnc.Encode(w, cll)
		w.WriteBits(ell, nll)
		cml, eml, nml := valCode(s.matchLen - minMatch)
		mlEnc.Encode(w, cml)
		w.WriteBits(eml, nml)
		cof, eof, nof := valCode(s.offset - 1)
		ofEnc.Encode(w, cof)
		w.WriteBits(eof, nof)
	}
	return w.Bytes(), nil
}

// Decompress implements compress.Codec with default decode limits.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited: the declared output size is
// validated against lim before literals or sequences are materialized.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	inputLen := len(comp)
	var hdr [4]uint64
	for i := range hdr {
		v, n, err := bitio.Uvarint(comp)
		if err != nil {
			return nil, fmt.Errorf("zstd: header: %w", err)
		}
		hdr[i] = v
		comp = comp[n:]
	}
	origSize, nSeq, nLits, lastLits := hdr[0], hdr[1], hdr[2], hdr[3]
	if err := lim.CheckDeclared(origSize, inputLen); err != nil {
		return nil, err
	}
	if nLits > origSize || lastLits > nLits {
		return nil, compress.Errorf(compress.ErrCorrupt, "zstd: inconsistent header")
	}
	r := bitio.NewReader(comp)
	var decs [4]*huffman.Decoder
	sizes := [4]int{256, numValCodes, numValCodes, numValCodes}
	for i := range decs {
		lengths, err := huffman.ReadLengths(r, sizes[i])
		if err != nil {
			return nil, fmt.Errorf("zstd: table %d: %w", i, err)
		}
		decs[i], err = huffman.NewDecoder(lengths)
		if err != nil {
			return nil, fmt.Errorf("zstd: table %d: %w", i, err)
		}
	}
	litDec, llDec, mlDec, ofDec := decs[0], decs[1], decs[2], decs[3]
	if nLits > uint64(r.Remaining()) {
		return nil, compress.Errorf(compress.ErrTruncated, "zstd: literal count %d exceeds input bits", nLits)
	}
	lits := make([]byte, nLits)
	for i := range lits {
		s, err := litDec.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("zstd: literals: %w", err)
		}
		lits[i] = byte(s)
	}
	readVal := func(dec *huffman.Decoder) (int, error) {
		code, err := dec.Decode(r)
		if err != nil {
			return 0, err
		}
		if code >= numValCodes {
			return 0, compress.Errorf(compress.ErrCorrupt, "zstd: bad value code %d", code)
		}
		extra, err := r.ReadBits(uint(code))
		if err != nil {
			return 0, err
		}
		return valDecode(code, extra), nil
	}
	// Cap the initial allocation: origSize is attacker-controlled input.
	capacity := origSize
	if capacity > 1<<20 {
		capacity = 1 << 20
	}
	out := make([]byte, 0, capacity)
	litPos := 0
	for i := uint64(0); i < nSeq; i++ {
		ll, err := readVal(llDec)
		if err != nil {
			return nil, err
		}
		ml, err := readVal(mlDec)
		if err != nil {
			return nil, err
		}
		of, err := readVal(ofDec)
		if err != nil {
			return nil, err
		}
		ml += minMatch
		of++
		if litPos+ll > len(lits) {
			return nil, compress.Errorf(compress.ErrCorrupt, "zstd: literal overrun")
		}
		out = append(out, lits[litPos:litPos+ll]...)
		litPos += ll
		if uint64(len(out)+ml) > origSize {
			return nil, compress.Errorf(compress.ErrCorrupt, "zstd: match overruns output")
		}
		out, err = lz77.AppendMatch(out, of, ml, int(origSize))
		if err != nil {
			return nil, fmt.Errorf("zstd: %w", err)
		}
	}
	if litPos+int(lastLits) != len(lits) {
		return nil, compress.Errorf(compress.ErrCorrupt, "zstd: trailing literal accounting mismatch")
	}
	out = append(out, lits[litPos:]...)
	if uint64(len(out)) != origSize {
		return nil, compress.Errorf(compress.ErrCorrupt, "zstd: size mismatch: got %d want %d", len(out), origSize)
	}
	return out, nil
}

// DecodeIsLight implements compress.LightDecoder: table-driven sequence
// execution decodes at hundreds of MB/s, so on a 1-CPU host the parallel
// engine's pool overhead outweighs any read-ahead it could buy.
func (c *Codec) DecodeIsLight() bool { return true }

var _ compress.Codec = (*Codec)(nil)
var _ compress.Describer = (*Codec)(nil)
var _ compress.Limited = (*Codec)(nil)
var _ compress.LightDecoder = (*Codec)(nil)
