package compress_test

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
)

// TestSerialFallbackPolicyEveryRegistryCodec pins the engine's fallback
// decision for every codec in the registry, both directions: the serial
// path engages exactly when workers == 1 or only one CPU is available,
// regardless of codec weight. No codec gets a bespoke policy — the
// BENCH_compress.json history showed parallel decode at 0.90-0.98x of
// serial for bzip2/fpc32/fpc-posit at workers=4 on one core, and the fix
// is uniform, so the pin is too.
func TestSerialFallbackPolicyEveryRegistryCodec(t *testing.T) {
	data := make([]byte, 8<<10)
	for i := range data {
		data[i] = byte(i >> 3)
	}
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	for _, c := range all.Raw() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			var enc bytes.Buffer
			w := compress.NewWriter(c, &enc, 2048)
			if _, err := w.Write(data); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			stream := enc.Bytes()

			cases := []struct {
				name       string
				gomaxprocs int
				workers    int
				fallback   bool
			}{
				{"workers=1 multi-cpu", 2, 1, true},
				{"workers=4 multi-cpu", 2, 4, false},
				{"workers=0 multi-cpu", 2, 0, false},
				{"workers=1 one-cpu", 1, 1, true},
				{"workers=4 one-cpu", 1, 4, true},
				{"workers=0 one-cpu", 1, 0, true},
			}
			for _, tc := range cases {
				runtime.GOMAXPROCS(tc.gomaxprocs)

				pw := compress.NewParallelWriter(c, io.Discard, 2048, tc.workers)
				if got := pw.SerialFallback(); got != tc.fallback {
					t.Errorf("%s: writer fallback = %v, want %v", tc.name, got, tc.fallback)
				}
				pw.Close()

				pr := compress.NewParallelReader(c, bytes.NewReader(stream), tc.workers)
				if got := pr.SerialFallback(); got != tc.fallback {
					t.Errorf("%s: reader fallback = %v, want %v", tc.name, got, tc.fallback)
				}
				pr.Close()
			}
			runtime.GOMAXPROCS(2)
		})
	}
}
