package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// passthrough is a trivial Codec for exercising the streaming layer.
type passthrough struct{}

func (passthrough) Name() string { return "pass" }
func (passthrough) Compress(src []byte) ([]byte, error) {
	out := append([]byte{0xA5}, src...) // marker so empty chunks are visible
	return out, nil
}
func (passthrough) Decompress(comp []byte) ([]byte, error) {
	if len(comp) < 1 || comp[0] != 0xA5 {
		return nil, io.ErrUnexpectedEOF
	}
	return append([]byte(nil), comp[1:]...), nil
}

func streamRoundtrip(t *testing.T, data []byte, chunk int) {
	t.Helper()
	var sink bytes.Buffer
	w := NewWriter(passthrough{}, &sink, chunk)
	// Write in awkward piece sizes.
	rng := rand.New(rand.NewSource(int64(len(data))))
	rest := data
	for len(rest) > 0 {
		n := rng.Intn(1000) + 1
		if n > len(rest) {
			n = len(rest)
		}
		if _, err := w.Write(rest[:n]); err != nil {
			t.Fatal(err)
		}
		rest = rest[n:]
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	back, err := io.ReadAll(NewReader(passthrough{}, &sink))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("stream roundtrip: %d in, %d out", len(data), len(back))
	}
}

func TestStreamRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 100, 4096, 100000} {
		data := make([]byte, size)
		rng.Read(data)
		for _, chunk := range []int{1, 64, 4096, 0} {
			streamRoundtrip(t, data, chunk)
		}
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(passthrough{}, &sink, 16)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestStreamTruncated(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(passthrough{}, &sink, 16)
	w.Write(bytes.Repeat([]byte{7}, 100))
	w.Close()
	full := sink.Bytes()
	// Cut off the terminator and part of the last chunk.
	for _, cut := range []int{len(full) - 1, len(full) / 2, 1} {
		r := NewReader(passthrough{}, bytes.NewReader(full[:cut]))
		if _, err := io.ReadAll(r); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestStreamEmptyInput(t *testing.T) {
	r := NewReader(passthrough{}, bytes.NewReader(nil))
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("empty stream accepted (missing terminator)")
	}
}

func TestStreamSmallReads(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(passthrough{}, &sink, 32)
	payload := []byte("the streaming layer must survive one-byte reads and writes")
	w.Write(payload)
	w.Close()
	r := NewReader(passthrough{}, &sink)
	var got []byte
	one := make([]byte, 1)
	for {
		n, err := r.Read(one)
		if n > 0 {
			got = append(got, one[0])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
	// Reads after EOF keep returning EOF.
	if _, err := r.Read(one); err != io.EOF {
		t.Fatalf("post-EOF read: %v", err)
	}
}

// failing decompresses nothing: every chunk decode fails.
type failing struct{ passthrough }

func (failing) Decompress(comp []byte) ([]byte, error) {
	return nil, Errorf(ErrCorrupt, "failing: always")
}

func TestStreamDecompressFailure(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(passthrough{}, &sink, 16)
	w.Write([]byte("payload that will not decode"))
	w.Close()
	r := NewReader(failing{}, &sink)
	_, err := io.ReadAll(r)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode failure surfaced as %v, want ErrCorrupt", err)
	}
	// The error is sticky across subsequent reads.
	if _, err2 := r.Read(make([]byte, 1)); err2 != err {
		t.Fatalf("second read: %v, want the original error", err2)
	}
}

func TestStreamMismatchedLength(t *testing.T) {
	// A chunk whose uvarint prefix declares more bytes than the stream
	// holds must surface ErrTruncated, not hang or misdecode.
	var sink bytes.Buffer
	w := NewWriter(passthrough{}, &sink, 16)
	w.Write([]byte("0123456789abcdef0123"))
	w.Close()
	full := sink.Bytes()
	mut := append([]byte(nil), full...)
	mut[0] += 40 // inflate the first chunk's declared length
	if _, err := io.ReadAll(NewReader(passthrough{}, bytes.NewReader(mut))); !errors.Is(err, ErrTruncated) {
		t.Fatalf("inflated chunk length: %v, want ErrTruncated", err)
	}
	// Deflating the prefix leaves trailing bytes that misparse; any error is
	// acceptable, silence is not.
	mut = append([]byte(nil), full...)
	mut[0] -= 5
	if back, err := io.ReadAll(NewReader(passthrough{}, bytes.NewReader(mut))); err == nil {
		t.Fatalf("deflated chunk length silently decoded %d bytes", len(back))
	}
}

func TestStreamChunkLengthBomb(t *testing.T) {
	// A forged 1 EiB chunk-length prefix must trip the limit check before
	// any allocation proportional to it.
	var stream []byte
	stream = binary.AppendUvarint(stream, 1<<60)
	stream = append(stream, 0xA5, 1, 2, 3)
	r := NewReaderLimits(passthrough{}, bytes.NewReader(stream), DecodeLimits{MaxOutputBytes: 1 << 20})
	if _, err := io.ReadAll(r); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("chunk bomb: %v, want ErrLimitExceeded", err)
	}
}
