package compress

import "sync/atomic"

// Process-wide engine gauges and counters. The serving layer polls these
// for /metrics, so they are always on: every update is one atomic add (no
// allocation, no lock), which is noise against compressing even the
// smallest permitted chunk. Gauges (queue depth, busy/alive workers)
// aggregate across every live engine in the process — per-request pools
// included — which is exactly the fleet-level view a saturation question
// needs.
type engineCounters struct {
	queueDepth   atomic.Int64 // chunks submitted to a pool, not yet picked up
	workersAlive atomic.Int64 // pool goroutines currently running
	workersBusy  atomic.Int64 // pool goroutines currently inside a codec call

	queueWaitNS atomic.Int64 // cumulative submit -> worker-pickup time

	// Work-stealing scheduler counters. Every chunk submitted to a
	// scheduler is executed exactly once, either by the worker that owns
	// the deque it landed in (a local hit) or by a thief — so after any
	// engine drains, schedSubmitted == schedLocalHits + schedSteals, an
	// invariant the positload soak reconciles end to end.
	schedSubmitted atomic.Int64 // chunks handed to a work-stealing scheduler
	schedLocalHits atomic.Int64 // chunks executed from the worker's own deque
	schedSteals    atomic.Int64 // chunks stolen from another worker's deque

	// workerDepth holds per-worker-slot queue depth gauges, aggregated
	// across every live scheduler (worker index mod engineDepthSlots). The
	// spread across slots is the live view of how well stealing levels a
	// skewed chunk-size distribution.
	workerDepth [engineDepthSlots]atomic.Int64

	compressChunks   atomic.Int64
	compressBusyNS   atomic.Int64
	compressBytesIn  atomic.Int64
	compressBytesOut atomic.Int64

	decompressChunks   atomic.Int64
	decompressBusyNS   atomic.Int64
	decompressBytesIn  atomic.Int64
	decompressBytesOut atomic.Int64

	// Range-read counters live apart from the stream decompress counters so
	// the existing soak reconciliations (which equate decompress_chunks with
	// frames fetched) stay exact: a random-access window decodes chunks the
	// stream path never saw. rangeChunks counts chunks actually decoded —
	// cache hits are visible only in the chunk-cache stats.
	rangeReads    atomic.Int64
	rangeChunks   atomic.Int64
	rangeBytesIn  atomic.Int64 // compressed bytes fetched for range decodes
	rangeBytesOut atomic.Int64 // raw bytes produced by range decodes
}

// engineDepthSlots bounds the per-worker depth gauge array; schedulers
// wider than this fold onto the slots mod engineDepthSlots.
const engineDepthSlots = 8

var engine engineCounters

// EngineStats is one consistent-enough snapshot of the engine counters
// (fields are read individually; the engine keeps running underneath).
type EngineStats struct {
	QueueDepth   int64 `json:"queue_depth"`
	WorkersAlive int64 `json:"workers_alive"`
	WorkersBusy  int64 `json:"workers_busy"`

	QueueWaitNS int64 `json:"queue_wait_ns_total"`

	SchedSubmitted    int64   `json:"sched_submitted"`
	SchedLocalHits    int64   `json:"sched_local_hits"`
	SchedSteals       int64   `json:"sched_steals"`
	WorkerQueueDepths []int64 `json:"worker_queue_depths"`

	CompressChunks   int64 `json:"compress_chunks"`
	CompressBusyNS   int64 `json:"compress_busy_ns_total"`
	CompressBytesIn  int64 `json:"compress_bytes_in"`
	CompressBytesOut int64 `json:"compress_bytes_out"`

	DecompressChunks   int64 `json:"decompress_chunks"`
	DecompressBusyNS   int64 `json:"decompress_busy_ns_total"`
	DecompressBytesIn  int64 `json:"decompress_bytes_in"`
	DecompressBytesOut int64 `json:"decompress_bytes_out"`

	RangeReads    int64 `json:"range_reads"`
	RangeChunks   int64 `json:"range_chunks"`
	RangeBytesIn  int64 `json:"range_bytes_in"`
	RangeBytesOut int64 `json:"range_bytes_out"`
}

// EngineSnapshot reads the current counter values.
func EngineSnapshot() EngineStats {
	depths := make([]int64, engineDepthSlots)
	for i := range depths {
		depths[i] = engine.workerDepth[i].Load()
	}
	return EngineStats{
		QueueDepth:         engine.queueDepth.Load(),
		WorkersAlive:       engine.workersAlive.Load(),
		WorkersBusy:        engine.workersBusy.Load(),
		QueueWaitNS:        engine.queueWaitNS.Load(),
		SchedSubmitted:     engine.schedSubmitted.Load(),
		SchedLocalHits:     engine.schedLocalHits.Load(),
		SchedSteals:        engine.schedSteals.Load(),
		WorkerQueueDepths:  depths,
		CompressChunks:     engine.compressChunks.Load(),
		CompressBusyNS:     engine.compressBusyNS.Load(),
		CompressBytesIn:    engine.compressBytesIn.Load(),
		CompressBytesOut:   engine.compressBytesOut.Load(),
		DecompressChunks:   engine.decompressChunks.Load(),
		DecompressBusyNS:   engine.decompressBusyNS.Load(),
		DecompressBytesIn:  engine.decompressBytesIn.Load(),
		DecompressBytesOut: engine.decompressBytesOut.Load(),
		RangeReads:         engine.rangeReads.Load(),
		RangeChunks:        engine.rangeChunks.Load(),
		RangeBytesIn:       engine.rangeBytesIn.Load(),
		RangeBytesOut:      engine.rangeBytesOut.Load(),
	}
}
