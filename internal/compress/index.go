package compress

import (
	"io"
	"runtime"
)

// Random-access support for the chunked stream format. The writers know the
// exact frame layout as they emit it — offset of every payload, its
// compressed and raw lengths — so they can feed an IndexSink that later
// serializes a seek index (the container trailer). The sink is opt-in: the
// default stream is byte-identical to what PR-1 shipped, the hot path pays
// one nil check per chunk, and the alloc gates keep holding.

// IndexSink receives the frame layout of a chunked stream as it is written
// and serializes it after the stream terminator. Implemented by
// container.IndexBuilder; defined here so the stream writers need no
// dependency on the container's trailer format.
//
// AddChunk is called once per emitted frame, in stream order, with the
// absolute offset of the frame payload (after its uvarint length prefix),
// the compressed payload (valid only for the duration of the call), and the
// raw chunk length. WriteTrailer is called by Close exactly once, after the
// terminator byte, and returns the number of trailer bytes written.
type IndexSink interface {
	AddChunk(frameOff int64, comp []byte, rawLen int)
	WriteTrailer(dst io.Writer) (int64, error)
}

// RunParallel executes fn(0..n-1) on the work-stealing engine — the same
// scheduler shape the chunk pipelines run on, visible in the same
// sched_submitted/sched_steals counters. Range reads use it to decode the
// chunks of a multi-chunk window concurrently. It falls back to an inline
// loop when the parallelism cannot pay for its own handoffs (one worker,
// one item, or a 1-CPU host), mirroring the serial-fallback policy of the
// stream engines. fn must be safe for concurrent calls; RunParallel returns
// only after every call has finished.
func RunParallel(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	s := newWorkStealing(workers, n, 0, func(_ int, _ bool, i int) { fn(i) })
	for i := 0; i < n; i++ {
		s.submit(i)
	}
	s.close()
}

// AccountRangeRead records one random-access window resolution against the
// engine counters (a ReadAt call or a RangeReader stream).
func AccountRangeRead() { engine.rangeReads.Add(1) }

// AccountRangeChunk records one chunk decoded on behalf of a range read:
// bytesIn is the compressed frame size actually fetched, bytesOut the raw
// chunk size produced. Cache hits do not call this — the counter is the
// ground truth for "how many chunks did random access really decode", which
// the conformance wall bounds at ceil(len/chunk)+1 per window.
func AccountRangeChunk(bytesIn, bytesOut int64) {
	engine.rangeChunks.Add(1)
	engine.rangeBytesIn.Add(bytesIn)
	engine.rangeBytesOut.Add(bytesOut)
}
