package all

import (
	"positbench/internal/compress/codectest"
	"testing"
)

func TestRegistry(t *testing.T) {
	cs := Codecs()
	if len(cs) != 5 {
		t.Fatalf("want the paper's 5 codecs, got %d", len(cs))
	}
	want := []string{"bzip2", "gzip", "lz4", "xz", "zstd"}
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("missing codec %q", w)
		}
	}
}

func TestGet(t *testing.T) {
	for _, n := range Names() {
		c, err := Get(n)
		if err != nil || c.Name() != n {
			t.Errorf("Get(%s): %v", n, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestInfos(t *testing.T) {
	infos := Infos()
	if len(infos) != 5 {
		t.Fatalf("infos: %d", len(infos))
	}
	for _, info := range infos {
		if info.Name == "" || info.Version == "" || info.Source == "" {
			t.Errorf("incomplete info: %+v", info)
		}
	}
}

func TestFreshInstances(t *testing.T) {
	// Codecs() must return fresh instances (no shared state across callers).
	a, b := Codecs(), Codecs()
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("codec %d shared between calls", i)
		}
	}
}

func TestStreamEquivalence(t *testing.T) {
	// The serial-vs-parallel equivalence contract must hold for every
	// registry codec, framed exactly as the study runs them.
	for _, c := range Codecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			t.Parallel()
			codectest.StreamEquivalence(t, c)
		})
	}
}

func TestFaultInjection(t *testing.T) {
	// Every registry codec is framed, so the harness's strongest contract
	// applies: all corruption is detected, nothing panics, nothing
	// allocates past the decode limits.
	for _, c := range Codecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			t.Parallel()
			codectest.FaultInjection(t, c)
		})
	}
}
