package all

import (
	"positbench/internal/compress"
	"positbench/internal/compress/codectest"
	"testing"
)

func TestRegistry(t *testing.T) {
	cs := Codecs()
	if len(cs) != 7 {
		t.Fatalf("want the paper's 5 codecs plus the predictive pair, got %d", len(cs))
	}
	want := []string{"bzip2", "gzip", "lz4", "xz", "zstd", "fpc32", "fpc-posit"}
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("missing codec %q", w)
		}
	}
}

func TestGet(t *testing.T) {
	for _, n := range Names() {
		c, err := Get(n)
		if err != nil || c.Name() != n {
			t.Errorf("Get(%s): %v", n, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestInfos(t *testing.T) {
	infos := Infos()
	if len(infos) != 7 {
		t.Fatalf("infos: %d", len(infos))
	}
	for _, info := range infos {
		if info.Name == "" || info.Version == "" || info.Source == "" {
			t.Errorf("incomplete info: %+v", info)
		}
	}
}

func TestFreshInstances(t *testing.T) {
	// Codecs() must return fresh instances (no shared state across callers).
	a, b := Codecs(), Codecs()
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("codec %d shared between calls", i)
		}
	}
}

// The light-decoder hint drives the 1-CPU serial fallback, so its per-codec
// policy is part of the registry contract: byte-copy/table-lookup decoders
// are light, entropy-heavy ones are not, and the container frame forwards
// the inner codec's answer.
func TestLightDecoderPolicy(t *testing.T) {
	want := map[string]bool{
		"bzip2": false, "gzip": false, "xz": false,
		"lz4": true, "zstd": true, "fpc32": true, "fpc-posit": true,
	}
	for _, c := range Codecs() {
		if got := compress.DecodeIsLight(c); got != want[c.Name()] {
			t.Errorf("framed %s: DecodeIsLight = %v, want %v", c.Name(), got, want[c.Name()])
		}
	}
}

// TestConformanceCoversRegistry is the registry meta-test: every codec in
// the registry runs the full codectest suite, framed exactly as the study
// uses it, and afterwards the codectest.Exercised record must contain every
// registered name. Adding a codec to Raw() without conformance coverage
// fails here — the wall cannot be skipped silently. (The subtests are not
// parallel on purpose: they must complete before the coverage check.)
func TestConformanceCoversRegistry(t *testing.T) {
	for _, c := range Codecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			codectest.Run(t, c)
		})
	}
	ex := codectest.Exercised()
	for _, name := range Names() {
		if !ex[name] {
			t.Errorf("registry codec %q was never exercised by codectest.Run", name)
		}
	}
}

func TestStreamEquivalence(t *testing.T) {
	// The serial-vs-parallel equivalence contract must hold for every
	// registry codec, framed exactly as the study runs them.
	for _, c := range Codecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			t.Parallel()
			codectest.StreamEquivalence(t, c)
		})
	}
}

func TestFaultInjection(t *testing.T) {
	// Every registry codec is framed, so the harness's strongest contract
	// applies: all corruption is detected, nothing panics, nothing
	// allocates past the decode limits.
	for _, c := range Codecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			t.Parallel()
			codectest.FaultInjection(t, c)
		})
	}
}
