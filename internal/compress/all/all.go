// Package all assembles the full codec registry used by the study: the five
// general-purpose compressor classes in the order the paper's figures list
// them, followed by the repo's own predictive float codecs (fpc32 and
// fpc-posit, the FCM/DFCM family). The LC pipeline compressor is added
// separately by the study engine because its pipeline is chosen per
// encoding.
package all

import (
	"fmt"

	"positbench/internal/compress"
	"positbench/internal/compress/bzip2c"
	"positbench/internal/compress/gzipc"
	"positbench/internal/compress/lz4c"
	"positbench/internal/compress/xzc"
	"positbench/internal/compress/zstdc"
	"positbench/internal/container"
	"positbench/internal/positpack"
	"positbench/internal/predict"
)

// Codecs returns fresh instances of the registry codecs: the paper's five
// general-purpose classes at maximum-effort settings (the paper's --best
// flags) plus the predictive family. Every codec is wrapped in the framed
// container so its output is self-identifying and its decode path is
// checksummed and resource-limited.
func Codecs() []compress.Codec {
	return wrap(Raw())
}

// Raw returns the registry codecs without the container frame, for callers
// that need the bare compressed streams (e.g. byte-exact interop tests).
func Raw() []compress.Codec {
	return []compress.Codec{
		bzip2c.New(),
		gzipc.New(),
		lz4c.New(),
		xzc.New(),
		zstdc.New(),
		predict.New(),
		positpack.NewV2(),
	}
}

func wrap(cs []compress.Codec) []compress.Codec {
	out := make([]compress.Codec, len(cs))
	for i, c := range cs {
		out[i] = container.Wrap(c)
	}
	return out
}

// Get returns the named codec, or an error listing the valid names.
func Get(name string) (compress.Codec, error) {
	for _, c := range Codecs() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("compress: unknown codec %q (have %v)", name, Names())
}

// Names lists the registry's codec names in table order.
func Names() []string {
	cs := Codecs()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name()
	}
	return names
}

// Infos returns Table 1 metadata for every codec.
func Infos() []compress.Info {
	cs := Codecs()
	infos := make([]compress.Info, 0, len(cs))
	for _, c := range cs {
		if d, ok := c.(compress.Describer); ok {
			infos = append(infos, d.Info())
		} else {
			infos = append(infos, compress.Info{Name: c.Name()})
		}
	}
	return infos
}
