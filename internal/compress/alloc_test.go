package compress_test

// Allocation-regression tests for the streaming engine's buffer pooling:
// once the pools are warm, compressing or decompressing a chunk through the
// parallel engine must not allocate for codecs that implement the Append
// capabilities (gzip, lz4, and fpc32). A regression here silently reintroduces
// per-chunk garbage at multi-GB/s rates.
//
// GC is disabled before the pools are warmed: a collection would clear the
// sync.Pools and charge their refill to the steady state.

import (
	"bytes"
	"io"
	"runtime"
	"runtime/debug"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/compress/gzipc"
	"positbench/internal/compress/lz4c"
	"positbench/internal/predict"
)

const allocChunk = 64 << 10

// gzipDecodeAllowance is the per-chunk allocation budget for gzip decode.
// compress/flate allocates link sub-tables inside huffmanDecoder.init for
// every dynamic-Huffman block with codes longer than 9 bits; that is
// internal to the stdlib and not reachable from the Reset API. Our pooling
// must add nothing on top of it.
const gzipDecodeAllowance = 3

// allocData is compressible but non-trivial, so both codecs exercise their
// match-finding paths.
func allocData(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte((i * 131) >> 3)
	}
	return out
}

// allocCase pairs a codec with its decode-side allocation budget.
type allocCase struct {
	codec    compress.Codec
	decAllow float64
}

func allocCases() map[string]allocCase {
	return map[string]allocCase{
		"gzip": {codec: gzipc.New(), decAllow: gzipDecodeAllowance},
		"lz4":  {codec: lz4c.New(), decAllow: 0},
		// fpc32 (plain mode) pools its predictor tables, residual buffers,
		// and bit reader/writer; the split-mode sibling is excluded because
		// per-block Huffman construction allocates by design.
		"fpc32": {codec: predict.New(), decAllow: 0},
	}
}

// allocSlack absorbs stray runtime allocations from the engine's worker
// goroutines (stack growth, scheduler internals) that land inside the
// process-wide malloc window. A real per-chunk regression costs at least
// 1.0 allocs/chunk, so a fractional budget still catches it.
const allocSlack = 0.25

// mallocsPer runs f count times and returns the number of heap allocations
// per call. The caller must have disabled GC (see noGC).
func mallocsPer(count int, f func()) float64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < count; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(count)
}

// noGC turns the collector off for the remainder of the test, after one
// final collection so nothing is pending inside the measured window. It
// also skips the test under the race detector, whose instrumentation
// allocates on its own and makes malloc counts meaningless.
func noGC(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	old := debug.SetGCPercent(-1)
	t.Cleanup(func() { debug.SetGCPercent(old) })
	runtime.GC()
}

func TestParallelWriterChunkAllocs(t *testing.T) {
	src := allocData(allocChunk)
	for name, tc := range allocCases() {
		t.Run(name, func(t *testing.T) {
			noGC(t)
			w := compress.NewParallelWriter(tc.codec, io.Discard, allocChunk, 1)
			defer w.Close()
			// Warm the job pool, the codec's encoder pool, and every buffer
			// to its steady-state capacity.
			for i := 0; i < 8; i++ {
				if _, err := w.Write(src); err != nil {
					t.Fatal(err)
				}
			}
			got := mallocsPer(16, func() {
				if _, err := w.Write(src); err != nil {
					t.Fatal(err)
				}
			})
			if got > allocSlack {
				t.Errorf("steady-state compress of one chunk: %.2f allocs, want 0", got)
			}
		})
	}
}

func TestParallelReaderChunkAllocs(t *testing.T) {
	const chunks = 48
	src := allocData(allocChunk)
	for name, tc := range allocCases() {
		t.Run(name, func(t *testing.T) {
			var stream bytes.Buffer
			w := compress.NewParallelWriter(tc.codec, &stream, allocChunk, 1)
			for i := 0; i < chunks; i++ {
				if _, err := w.Write(src); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			noGC(t)
			// workers=1 routes through the serial fallback, so this doubles
			// as the bench-smoke for that path staying allocation-free.
			r := compress.NewParallelReader(tc.codec, bytes.NewReader(stream.Bytes()), 1)
			defer r.Close()
			buf := make([]byte, allocChunk)
			readChunk := func() {
				if _, err := io.ReadFull(r, buf); err != nil {
					t.Fatal(err)
				}
			}
			// Warm-up: with one worker and one read-ahead slot, a few chunks
			// cycle every pooled slot to steady-state capacity.
			for i := 0; i < 8; i++ {
				readChunk()
			}
			got := mallocsPer(32, readChunk)
			if got > tc.decAllow+allocSlack {
				t.Errorf("steady-state decompress of one chunk: %.2f allocs, want <= %.0f", got, tc.decAllow)
			}
		})
	}
}
