package compress_test

import (
	"bytes"
	"fmt"
	"io"

	"positbench/internal/compress"
	"positbench/internal/compress/gzipc"
)

func ExampleRoundtrip() {
	data := bytes.Repeat([]byte("scientific data "), 1000)
	n, err := compress.Roundtrip(gzipc.New(), data)
	if err != nil {
		panic(err)
	}
	fmt.Printf("lossless, ratio %.0fx\n", compress.Ratio(len(data), n))
	// Output: lossless, ratio 184x
}

func ExampleNewWriter() {
	var sink bytes.Buffer
	w := compress.NewWriter(gzipc.New(), &sink, 0)
	io.WriteString(w, "stream me")
	w.Close()
	back, _ := io.ReadAll(compress.NewReader(gzipc.New(), &sink))
	fmt.Println(string(back))
	// Output: stream me
}
