package compress

import (
	"sync"
	"sync/atomic"
)

// Work-stealing scheduler for the chunk engines. ParallelWriter and
// ParallelReader used to feed a single shared channel that every worker
// received from; that shape serializes small chunks behind large ones (a
// worker holding a 4 MiB chunk blocks nothing, but a full channel does) and
// charges every chunk a channel handoff even when its own worker is idle.
// Here each worker owns a bounded ring deque: the submitter spreads chunks
// round-robin, owners pop newest-first (cache-warm), and an idle worker
// steals oldest-first from a victim picked by a seeded generator — so a
// skewed chunk-size distribution keeps every worker busy and the common
// case (own deque non-empty) is one uncontended mutex, no channel.
//
// The deques are rings of pointers sized at construction: submitting a
// chunk never allocates, preserving the 0-allocs/chunk gates in
// alloc_test.go. The engines bound in-flight chunks at workers+1 (their
// order/slots channel capacity), and submit sizes every deque to hold the
// whole bound, so a push cannot fail even if stealing piles the remaining
// work onto one deque.

// wsDeque is one worker's bounded chunk queue: a mutex-guarded ring. The
// owner pushes and pops at the tail (LIFO keeps the freshest chunk, whose
// source bytes are still cache-warm); thieves take from the head (FIFO
// takes the stalest, largest-backlog end). The mutex is uncontended unless
// a steal races the owner, which is exactly when contention is worth it.
type wsDeque[T any] struct {
	mu    sync.Mutex
	buf   []T
	head  int // index of the oldest element (steal end)
	count int
}

func (d *wsDeque[T]) push(t T) bool {
	d.mu.Lock()
	if d.count == len(d.buf) {
		d.mu.Unlock()
		return false
	}
	d.buf[(d.head+d.count)%len(d.buf)] = t
	d.count++
	d.mu.Unlock()
	return true
}

func (d *wsDeque[T]) popTail() (t T, ok bool) {
	d.mu.Lock()
	if d.count > 0 {
		d.count--
		i := (d.head + d.count) % len(d.buf)
		t, ok = d.buf[i], true
		var zero T
		d.buf[i] = zero
	}
	d.mu.Unlock()
	return t, ok
}

func (d *wsDeque[T]) popHead() (t T, ok bool) {
	d.mu.Lock()
	if d.count > 0 {
		t, ok = d.buf[d.head], true
		var zero T
		d.buf[d.head] = zero
		d.head = (d.head + 1) % len(d.buf)
		d.count--
	}
	d.mu.Unlock()
	return t, ok
}

// wsRand is a splitmix64 stream: deterministic for a given seed, good
// enough to decorrelate victim choices across workers. Each worker owns
// one, so steal order is reproducible when the scheduler seed is pinned —
// the property the deterministic steal-order test locks down.
type wsRand struct{ state uint64 }

func (r *wsRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stealStart returns the first victim (excluding self) worker i probes on
// its next steal sweep; the sweep then walks the remaining workers in ring
// order. Factored out so tests can pin the deterministic-seed property
// without racing real workers.
func stealStart(r *wsRand, self, workers int) int {
	v := int(r.next() % uint64(workers-1))
	if v >= self {
		v++
	}
	return v
}

// wsSeed provides distinct default seeds per scheduler, deterministic
// within a process run. Tests pass explicit seeds instead.
var wsSeed atomic.Uint64

// wsScheduler runs exec over submitted items on a fixed set of workers with
// per-worker deques and random-victim stealing. One producer submits; close
// waits until every submitted item has been executed and all workers have
// exited. Items are never dropped: a worker only parks when every deque is
// empty, and only exits when the scheduler is closed and nothing is
// pending.
type wsScheduler[T any] struct {
	exec    func(worker int, stolen bool, t T)
	deques  []wsDeque[T]
	rngs    []wsRand
	pending atomic.Int64 // submitted, not yet popped by any worker

	mu     sync.Mutex // parking lot: guards closed and the condvar sleep
	cond   *sync.Cond
	closed bool

	wg       sync.WaitGroup
	next     int // round-robin submission cursor (single producer)
	closeOne sync.Once
}

// newWorkStealing starts workers goroutines executing exec. depth bounds
// each deque; the engines pass their whole in-flight bound so pushes cannot
// fail. seed pins the steal order; pass 0 for a process-unique default.
func newWorkStealing[T any](workers, depth int, seed uint64, exec func(worker int, stolen bool, t T)) *wsScheduler[T] {
	if seed == 0 {
		seed = wsSeed.Add(0x720b3f4d) * 0x9e3779b97f4a7c15
	}
	s := &wsScheduler[T]{
		exec:   exec,
		deques: make([]wsDeque[T], workers),
		rngs:   make([]wsRand, workers),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.deques {
		s.deques[i].buf = make([]T, depth)
		s.rngs[i].state = seed + uint64(i)*0xa0761d6478bd642f
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// submit queues t, preferring the round-robin target deque so work spreads
// before any stealing is needed. The engines bound in-flight items at the
// total deque capacity, so the scan always finds room; the inline-exec tail
// is a belt-and-braces fallback that keeps the counters reconciled even if
// that invariant were ever broken.
func (s *wsScheduler[T]) submit(t T) {
	engine.schedSubmitted.Add(1)
	w := s.next
	s.next++
	if s.next == len(s.deques) {
		s.next = 0
	}
	for i := 0; i < len(s.deques); i++ {
		v := w + i
		if v >= len(s.deques) {
			v -= len(s.deques)
		}
		if s.deques[v].push(t) {
			engine.workerDepth[v%engineDepthSlots].Add(1)
			s.pending.Add(1)
			s.mu.Lock()
			s.cond.Signal()
			s.mu.Unlock()
			return
		}
	}
	engine.schedLocalHits.Add(1)
	s.exec(w, false, t)
}

// close marks the scheduler done and joins the workers after they drain
// every pending item. Safe to call more than once.
func (s *wsScheduler[T]) close() {
	s.closeOne.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.wg.Wait()
}

func (s *wsScheduler[T]) worker(i int) {
	defer s.wg.Done()
	engine.workersAlive.Add(1)
	defer engine.workersAlive.Add(-1)
	for {
		if t, ok := s.deques[i].popTail(); ok {
			engine.schedLocalHits.Add(1)
			engine.workerDepth[i%engineDepthSlots].Add(-1)
			s.pending.Add(-1)
			s.exec(i, false, t)
			continue
		}
		if t, victim, ok := s.steal(i); ok {
			engine.schedSteals.Add(1)
			engine.workerDepth[victim%engineDepthSlots].Add(-1)
			s.pending.Add(-1)
			s.exec(i, true, t)
			continue
		}
		// Park. pending is re-checked under the lock: submit increments it
		// after the push and signals under the same lock, so a wakeup is
		// never lost between our empty sweep and the Wait.
		s.mu.Lock()
		for s.pending.Load() == 0 && !s.closed {
			s.cond.Wait()
		}
		done := s.closed && s.pending.Load() == 0
		s.mu.Unlock()
		if done {
			return
		}
	}
}

// steal sweeps the other workers' deques from a seeded random start,
// taking the oldest item of the first non-empty victim.
func (s *wsScheduler[T]) steal(i int) (t T, victim int, ok bool) {
	n := len(s.deques)
	if n == 1 {
		return t, 0, false
	}
	v := stealStart(&s.rngs[i], i, n)
	for j := 0; j < n-1; j++ {
		if v >= n {
			v -= n
		}
		if v == i {
			v++
			if v >= n {
				v -= n
			}
		}
		if t, ok = s.deques[v].popHead(); ok {
			return t, v, true
		}
		v++
	}
	return t, 0, false
}
