package compress_test

import (
	"bytes"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/compress/bzip2c"
	"positbench/internal/compress/xzc"
	"positbench/internal/trace"
)

// stageNames flattens a span's direct children into a name set.
func stageNames(sp *trace.SpanData) map[string]bool {
	out := make(map[string]bool, len(sp.Children))
	for _, c := range sp.Children {
		out[c.Name] = true
	}
	return out
}

func TestCodecStageSpans(t *testing.T) {
	src := bytes.Repeat([]byte("posit regime bytes cluster under block sorting "), 2000)
	cases := []struct {
		codec       compress.Codec
		compStages  []string
		decompStage []string
	}{
		{bzip2c.New(), []string{"rle1", "bwt", "mtf-rle2", "huffman"},
			[]string{"huffman", "mtf", "bwt-inverse", "rle1-inverse"}},
		{xzc.New(), []string{"model-init", "opt-parse", "rc-finish"},
			[]string{"model-init", "rc-decode"}},
	}
	for _, tc := range cases {
		t.Run(tc.codec.Name(), func(t *testing.T) {
			tr := trace.New(2)
			root := tr.Start("codec", tc.codec.Name())

			cs := root.Child("compress")
			comp, err := compress.CompressAppendTrace(tc.codec, nil, src, cs)
			cs.End()
			if err != nil {
				t.Fatal(err)
			}
			ds := root.Child("decompress")
			back, err := compress.DecompressAppendLimitsTrace(tc.codec, nil, comp, compress.DecodeLimits{}, ds)
			ds.End()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, src) {
				t.Fatal("traced roundtrip mismatch")
			}
			// Traced output must be byte-identical to the untraced path.
			plain, err := compress.CompressAppend(tc.codec, nil, src)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(comp, plain) {
				t.Fatal("traced compression differs from untraced output")
			}
			root.End()

			got := tr.Snapshot()[0].Root
			cgot := stageNames(got.Children[0])
			for _, want := range tc.compStages {
				if !cgot[want] {
					t.Errorf("compress span missing stage %q (got %v)", want, cgot)
				}
			}
			dgot := stageNames(got.Children[1])
			for _, want := range tc.decompStage {
				if !dgot[want] {
					t.Errorf("decompress span missing stage %q (got %v)", want, dgot)
				}
			}
		})
	}
}

// identityCodec has no traced capability, so the traced helpers must fall
// through to the plain paths.
type identityCodec struct{}

func (identityCodec) Name() string { return "identity" }
func (identityCodec) Compress(src []byte) ([]byte, error) {
	return append([]byte(nil), src...), nil
}
func (identityCodec) Decompress(comp []byte) ([]byte, error) {
	return append([]byte(nil), comp...), nil
}

func TestTraceFallThrough(t *testing.T) {
	tr := trace.New(2)
	root := tr.Start("plain", "p")
	codec := identityCodec{}
	src := []byte("fall through")
	comp, err := compress.CompressAppendTrace(codec, nil, src, root)
	if err != nil {
		t.Fatal(err)
	}
	back, err := compress.DecompressAppendLimitsTrace(codec, nil, comp, compress.DecodeLimits{}, root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("fall-through roundtrip mismatch")
	}
	root.End()
}
