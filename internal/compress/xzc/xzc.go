// Package xzc implements the xz-class codec: a large-window (8 MiB) LZ77
// parse entropy-coded with an adaptive binary range coder using LZMA's
// context models (literal coders keyed on the previous byte, length coders
// with low/mid/high trees, distance slots with aligned footer bits, and a
// repeated-distance register). The combination of a big dictionary and
// context-modelled arithmetic coding is why XZ wins in the paper.
package xzc

import (
	"fmt"
	"math/bits"
	"time"

	"positbench/internal/bitio"
	"positbench/internal/compress"
	"positbench/internal/lz77"
	"positbench/internal/rangecoder"
	"positbench/internal/trace"
)

const (
	defaultWindow = 8 << 20
	minMatch      = lz77.MinMatch // regular matches
	minRepMatch   = 2             // rep0 matches may be shorter
	lenBase       = 2             // lengths are coded as len-lenBase, 0..271
	maxLenCode    = 271
	numSlots      = 64
	alignBits     = 4
	posStates     = 4 // pb=2: contexts keyed on pos&3, matching xz defaults
)

// Codec is the xz-class compressor.
type Codec struct {
	window int
	depth  int
}

// New returns a codec at maximum-effort settings (`xz -9`-like).
func New() *Codec { return &Codec{window: defaultWindow, depth: 128} }

// NewParams returns a codec with explicit window and search depth.
func NewParams(window, depth int) *Codec { return &Codec{window: window, depth: depth} }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "xz" }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	return compress.Info{Name: "xz", Version: "lzma-rc", Source: "models XZ 5.4.1 -9 (LZMA: 8 MiB dictionary + range coder)"}
}

// models holds every adaptive context; encoder and decoder must construct
// and update them identically.
type models struct {
	isMatch  []rangecoder.Prob   // [2*4]: context = (previous op was a match, pos&3)
	isRep    []rangecoder.Prob   // [1]: rep0 vs new distance
	literals [][]rangecoder.Prob // 0x300 probs per context (LZMA literal coder)
	lenCoder *lenCoder
	repLen   *lenCoder
	slots    []*rangecoder.BitTree // [4] by length context
	specPos  []*rangecoder.BitTree // per slot 4..13: reverse footer trees
	align    *rangecoder.BitTree
}

func newModels() *models {
	m := &models{
		isMatch:  rangecoder.NewProbs(2 * posStates),
		isRep:    rangecoder.NewProbs(4),
		lenCoder: newLenCoder(),
		repLen:   newLenCoder(),
		align:    rangecoder.NewBitTree(alignBits),
	}
	m.literals = make([][]rangecoder.Prob, 8)
	for i := range m.literals {
		m.literals[i] = rangecoder.NewProbs(0x300)
	}
	m.slots = make([]*rangecoder.BitTree, 4)
	for i := range m.slots {
		m.slots[i] = rangecoder.NewBitTree(6)
	}
	m.specPos = make([]*rangecoder.BitTree, 14)
	for slot := 4; slot < 14; slot++ {
		m.specPos[slot] = rangecoder.NewBitTree(uint(slot/2 - 1))
	}
	return m
}

// lenCoder is LZMA's three-range length model: 0-7 (low tree), 8-15 (mid
// tree), 16-271 (high tree).
type lenCoder struct {
	choice []rangecoder.Prob // [2]
	low    *rangecoder.BitTree
	mid    *rangecoder.BitTree
	high   *rangecoder.BitTree
}

func newLenCoder() *lenCoder {
	return &lenCoder{
		choice: rangecoder.NewProbs(2),
		low:    rangecoder.NewBitTree(3),
		mid:    rangecoder.NewBitTree(3),
		high:   rangecoder.NewBitTree(8),
	}
}

func (lc *lenCoder) encode(e *rangecoder.Encoder, v uint32) {
	switch {
	case v < 8:
		e.EncodeBit(&lc.choice[0], 0)
		lc.low.Encode(e, v)
	case v < 16:
		e.EncodeBit(&lc.choice[0], 1)
		e.EncodeBit(&lc.choice[1], 0)
		lc.mid.Encode(e, v-8)
	default:
		e.EncodeBit(&lc.choice[0], 1)
		e.EncodeBit(&lc.choice[1], 1)
		lc.high.Encode(e, v-16)
	}
}

func (lc *lenCoder) decode(d *rangecoder.Decoder) uint32 {
	if d.DecodeBit(&lc.choice[0]) == 0 {
		return lc.low.Decode(d)
	}
	if d.DecodeBit(&lc.choice[1]) == 0 {
		return lc.mid.Decode(d) + 8
	}
	return lc.high.Decode(d) + 16
}

// lenToCtx selects the distance-slot tree from the match length.
func lenToCtx(mlen int) int {
	c := mlen - lenBase
	if c > 3 {
		c = 3
	}
	return c
}

// distSlot computes the LZMA position slot of d1 = dist-1.
func distSlot(d1 uint32) int {
	if d1 < 4 {
		return int(d1)
	}
	n := bits.Len32(d1) - 1
	return n<<1 | int(d1>>(n-1)&1)
}

func encodeDistance(e *rangecoder.Encoder, m *models, lenCtx int, dist int) {
	d1 := uint32(dist - 1)
	slot := distSlot(d1)
	m.slots[lenCtx].Encode(e, uint32(slot))
	if slot < 4 {
		return
	}
	nb := uint(slot/2 - 1)
	base := uint32(2|slot&1) << nb
	rest := d1 - base
	if slot < 14 {
		m.specPos[slot].EncodeReverse(e, rest)
		return
	}
	e.EncodeDirect(rest>>alignBits, nb-alignBits)
	m.align.EncodeReverse(e, rest&(1<<alignBits-1))
}

func decodeDistance(d *rangecoder.Decoder, m *models, lenCtx int) int {
	slot := int(m.slots[lenCtx].Decode(d))
	if slot < 4 {
		return slot + 1
	}
	nb := uint(slot/2 - 1)
	base := uint32(2|slot&1) << nb
	var rest uint32
	if slot < 14 {
		rest = m.specPos[slot].DecodeReverse(d)
	} else {
		rest = d.DecodeDirect(nb-alignBits) << alignBits
		rest |= m.align.DecodeReverse(d)
	}
	return int(base+rest) + 1
}

// encodeRepIndex codes which of the four cached distances is reused,
// using LZMA's unary tree (index 0 is cheapest).
func encodeRepIndex(e *rangecoder.Encoder, m *models, idx int) {
	if idx == 0 {
		e.EncodeBit(&m.isRep[1], 0)
		return
	}
	e.EncodeBit(&m.isRep[1], 1)
	if idx == 1 {
		e.EncodeBit(&m.isRep[2], 0)
		return
	}
	e.EncodeBit(&m.isRep[2], 1)
	e.EncodeBit(&m.isRep[3], idx-2)
}

func decodeRepIndex(d *rangecoder.Decoder, m *models) int {
	if d.DecodeBit(&m.isRep[1]) == 0 {
		return 0
	}
	if d.DecodeBit(&m.isRep[2]) == 0 {
		return 1
	}
	return 2 + d.DecodeBit(&m.isRep[3])
}

func litCtx(src []byte, pos int) int {
	if pos == 0 {
		return 0
	}
	return int(src[pos-1] >> 5)
}

// encodeLiteral codes b under the LZMA literal model. When the previous
// operation was a match, the byte at the last match distance (matchByte)
// steers the probability tree bitwise until the first mismatch — the
// "matched literal" mode that exploits strided similarity in binary data.
func encodeLiteral(e *rangecoder.Encoder, probs []rangecoder.Prob, b byte, matched bool, matchByte byte) {
	node := uint32(1)
	if matched {
		for i := 7; i >= 0; i-- {
			matchBit := uint32(matchByte>>uint(i)) & 1
			bit := int(b>>uint(i)) & 1
			e.EncodeBit(&probs[(1+matchBit)<<8+node], bit)
			node = node<<1 | uint32(bit)
			if matchBit != uint32(bit) {
				for i--; i >= 0; i-- {
					bit := int(b>>uint(i)) & 1
					e.EncodeBit(&probs[node], bit)
					node = node<<1 | uint32(bit)
				}
				return
			}
		}
		return
	}
	for i := 7; i >= 0; i-- {
		bit := int(b>>uint(i)) & 1
		e.EncodeBit(&probs[node], bit)
		node = node<<1 | uint32(bit)
	}
}

// decodeLiteral mirrors encodeLiteral.
func decodeLiteral(d *rangecoder.Decoder, probs []rangecoder.Prob, matched bool, matchByte byte) byte {
	// Both modes use the register-local batch walks so the range state stays
	// out of memory across all eight bits.
	if matched {
		return byte(d.DecodeTreeMatched(probs, matchByte))
	}
	return byte(d.DecodeTree(probs, 8))
}

// Compress implements compress.Codec.
// Compress implements compress.Codec using a chunked price-based optimal
// parse (LZMA's GetOptimum approach): within each horizon, dynamic
// programming over literal / rep-match / fresh-match transitions priced
// from the live adaptive probabilities chooses the cheapest encoding; only
// a prefix of each horizon is emitted so boundary truncation never affects
// the output.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	return c.compress(src, nil)
}

// CompressAppendTrace implements compress.TracedCompressor: same output as
// Compress, plus model-init / opt-parse / rc-finish stage spans on sp.
func (c *Codec) CompressAppendTrace(dst, src []byte, sp *trace.Span) ([]byte, error) {
	out, err := c.compress(src, sp)
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}

func (c *Codec) compress(src []byte, sp *trace.Span) ([]byte, error) {
	out := bitio.PutUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return out, nil
	}
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	enc := newOptEncoder(c, src)
	if sp != nil {
		sp.AddStage("model-init", time.Since(t0), int64(len(src)), 0)
		t0 = time.Now()
	}
	if err := enc.run(); err != nil {
		return nil, err
	}
	if sp != nil {
		sp.AddStage("opt-parse", time.Since(t0), int64(len(src)), 0)
		t0 = time.Now()
	}
	out = append(out, enc.e.Finish()...)
	if sp != nil {
		sp.AddStage("rc-finish", time.Since(t0), 0, int64(len(out)))
	}
	return out, nil
}

const (
	optHorizon = 512 // DP window per chunk
	optEmit    = 384 // emitted prefix per chunk (rest re-parsed)
	niceLen    = 128 // matches this long are taken greedily
	costInf    = ^uint32(0)
)

type optEncoder struct {
	c         *Codec
	src       []byte
	e         *rangecoder.Encoder
	m         *models
	matcher   *lz77.Matcher
	reps      [4]int
	prevMatch int
	pos       int
	inserted  int // matcher watermark

	// per-chunk DP state
	cost      []uint32
	from      []int32
	dist      []int32 // 0 = literal
	rep0s     []int32 // most recent match distance along the best path
	matchBuf  []lz77.Match
	lenTab    []uint32 // fresh-match length prices (index len-lenBase)
	repLenTab []uint32
}

func newOptEncoder(c *Codec, src []byte) *optEncoder {
	return &optEncoder{
		c:         c,
		src:       src,
		e:         rangecoder.NewEncoder(len(src)/2 + 64),
		m:         newModels(),
		matcher:   lz77.NewMatcher(src, c.window, c.depth),
		reps:      [4]int{1, 2, 3, 4},
		cost:      make([]uint32, optHorizon+1),
		from:      make([]int32, optHorizon+1),
		dist:      make([]int32, optHorizon+1),
		rep0s:     make([]int32, optHorizon+1),
		lenTab:    make([]uint32, maxLenCode+1),
		repLenTab: make([]uint32, maxLenCode+1),
	}
}

func (o *optEncoder) ensureInserted(through int) {
	if through > len(o.src) {
		through = len(o.src)
	}
	if through > o.inserted {
		o.matcher.InsertRange(o.inserted, through)
		o.inserted = through
	}
}

// emitLiteral encodes the literal at o.pos and advances.
func (o *optEncoder) emitLiteral() {
	e, m, src, pos := o.e, o.m, o.src, o.pos
	e.EncodeBit(&m.isMatch[o.prevMatch*posStates+pos&3], 0)
	var matchByte byte
	matched := o.prevMatch == 1 && o.reps[0] <= pos
	if matched {
		matchByte = src[pos-o.reps[0]]
	}
	encodeLiteral(e, m.literals[litCtx(src, pos)], src[pos], matched, matchByte)
	o.prevMatch = 0
	o.pos++
}

// emitMatch encodes a match, choosing the rep form when dist is cached.
func (o *optEncoder) emitMatch(dist, length int) {
	e, m := o.e, o.m
	e.EncodeBit(&m.isMatch[o.prevMatch*posStates+o.pos&3], 1)
	repIdx := -1
	for i, r := range o.reps {
		if r == dist {
			repIdx = i
			break
		}
	}
	if repIdx >= 0 {
		e.EncodeBit(&m.isRep[0], 1)
		encodeRepIndex(e, m, repIdx)
		m.repLen.encode(e, uint32(length-lenBase))
		copy(o.reps[1:repIdx+1], o.reps[:repIdx])
		o.reps[0] = dist
	} else {
		e.EncodeBit(&m.isRep[0], 0)
		m.lenCoder.encode(e, uint32(length-lenBase))
		encodeDistance(e, m, lenToCtx(length), dist)
		o.reps[3], o.reps[2], o.reps[1], o.reps[0] = o.reps[2], o.reps[1], o.reps[0], dist
	}
	o.prevMatch = 1
	o.pos += length
}

// litPriceAt prices the literal at absolute position p. When the previous
// op on the path was a match, the literal is coded in matched mode and its
// price depends on the byte at the path's rep0 distance.
func (o *optEncoder) litPriceAt(p int, matched bool, matchByte byte) uint32 {
	probs := o.m.literals[litCtx(o.src, p)]
	b := o.src[p]
	price := uint32(0)
	node := uint32(1)
	if matched {
		for i := 7; i >= 0; i-- {
			matchBit := uint32(matchByte>>uint(i)) & 1
			bit := int(b>>uint(i)) & 1
			price += probs[(1+matchBit)<<8+node].Price(bit)
			node = node<<1 | uint32(bit)
			if matchBit != uint32(bit) {
				for i--; i >= 0; i-- {
					bit := int(b>>uint(i)) & 1
					price += probs[node].Price(bit)
					node = node<<1 | uint32(bit)
				}
				return price
			}
		}
		return price
	}
	for i := 7; i >= 0; i-- {
		bit := int(b>>uint(i)) & 1
		price += probs[node].Price(bit)
		node = node<<1 | uint32(bit)
	}
	return price
}

func (lc *lenCoder) fillPrices(tab []uint32) {
	c0, c1 := lc.choice[0], lc.choice[1]
	for v := 0; v <= maxLenCode; v++ {
		switch {
		case v < 8:
			tab[v] = c0.Price(0) + lc.low.Price(uint32(v))
		case v < 16:
			tab[v] = c0.Price(1) + c1.Price(0) + lc.mid.Price(uint32(v-8))
		default:
			tab[v] = c0.Price(1) + c1.Price(1) + lc.high.Price(uint32(v-16))
		}
	}
}

func (o *optEncoder) repIndexPrice(idx int) uint32 {
	m := o.m
	switch idx {
	case 0:
		return m.isRep[1].Price(0)
	case 1:
		return m.isRep[1].Price(1) + m.isRep[2].Price(0)
	case 2:
		return m.isRep[1].Price(1) + m.isRep[2].Price(1) + m.isRep[3].Price(0)
	default:
		return m.isRep[1].Price(1) + m.isRep[2].Price(1) + m.isRep[3].Price(1)
	}
}

func (o *optEncoder) distPrice(lenCtx, dist int) uint32 {
	m := o.m
	d1 := uint32(dist - 1)
	slot := distSlot(d1)
	price := m.slots[lenCtx].Price(uint32(slot))
	if slot < 4 {
		return price
	}
	nb := uint(slot/2 - 1)
	rest := d1 - uint32(2|slot&1)<<nb
	if slot < 14 {
		return price + m.specPos[slot].PriceReverse(rest)
	}
	return price + rangecoder.DirectPrice(nb-alignBits) + m.align.PriceReverse(rest&(1<<alignBits-1))
}

// run drives the chunked optimal parse over the whole input.
func (o *optEncoder) run() error {
	src := o.src
	for o.pos < len(src) {
		// Greedy shortcut: take very long matches immediately.
		if o.takeNiceMatch() {
			continue
		}
		o.parseChunk()
	}
	return nil
}

// takeNiceMatch emits a match greedily if one of at least niceLen bytes is
// available at the current position, returning whether it did.
func (o *optEncoder) takeNiceMatch() bool {
	pos, src := o.pos, o.src
	maxL := len(src) - pos
	if maxL > maxLenCode+lenBase {
		maxL = maxLenCode + lenBase
	}
	if maxL < niceLen {
		return false
	}
	o.ensureInserted(pos + 1)
	bestDist, bestLen := 0, 0
	for _, r := range o.reps {
		if r <= pos {
			if l := lz77.MatchLen(src, pos-r, pos, maxL); l > bestLen {
				bestDist, bestLen = r, l
			}
		}
	}
	if bestLen < niceLen {
		if d, l := o.matcher.FindMatch(pos, maxL); l > bestLen {
			bestDist, bestLen = d, l
		}
	}
	if bestLen < niceLen {
		return false
	}
	o.ensureInserted(pos + bestLen)
	o.emitMatch(bestDist, bestLen)
	return true
}

// parseChunk runs the DP over one horizon and emits the chosen prefix.
func (o *optEncoder) parseChunk() {
	src, m := o.src, o.m
	pos := o.pos
	h := optHorizon
	if rem := len(src) - pos; rem < h {
		h = rem
	}
	o.ensureInserted(pos + h)
	cost, from, dist, rep0s := o.cost, o.from, o.dist, o.rep0s
	for i := 0; i <= h; i++ {
		cost[i] = costInf
	}
	cost[0] = 0
	from[0], dist[0] = -1, 0
	rep0s[0] = int32(o.reps[0])
	o.m.lenCoder.fillPrices(o.lenTab)
	o.m.repLen.fillPrices(o.repLenTab)

	for i := 0; i < h; i++ {
		ci := cost[i]
		if ci == costInf {
			continue
		}
		p := pos + i
		pm := 0
		if i > 0 && dist[i] != 0 {
			pm = 1
		} else if i == 0 {
			pm = o.prevMatch
		}
		psCtx := pm*posStates + p&3
		// Literal.
		litMatched := pm == 1 && int(rep0s[i]) <= p
		var mb byte
		if litMatched {
			mb = src[p-int(rep0s[i])]
		}
		if lp := ci + m.isMatch[psCtx].Price(0) + o.litPriceAt(p, litMatched, mb); lp < cost[i+1] {
			cost[i+1] = lp
			from[i+1] = int32(i)
			dist[i+1] = 0
			rep0s[i+1] = rep0s[i]
		}
		maxL := h - i
		if maxL > maxLenCode+lenBase {
			maxL = maxLenCode + lenBase
		}
		if maxL < minRepMatch {
			continue
		}
		matchBase := ci + m.isMatch[psCtx].Price(1)
		// Rep candidates: the path's own rep0 plus the chunk-entry cache
		// (emission re-resolves the exact form; this is a price model).
		repBase := matchBase + m.isRep[0].Price(1)
		nodeRep0 := int(rep0s[i])
		repCands := [5]int{nodeRep0, 0, 0, 0, 0}
		nCands := 1
		for _, r := range o.reps {
			if r != nodeRep0 {
				repCands[nCands] = r
				nCands++
			}
		}
		for idx := 0; idx < nCands && idx < 4; idx++ {
			r := repCands[idx]
			if r > p {
				continue
			}
			l := lz77.MatchLen(src, p-r, p, maxL)
			if l < minRepMatch {
				continue
			}
			base := repBase + o.repIndexPrice(idx)
			for L := minRepMatch; L <= l; L++ {
				if cp := base + o.repLenTab[L-lenBase]; cp < cost[i+L] {
					cost[i+L] = cp
					from[i+L] = int32(i)
					dist[i+L] = int32(r)
					rep0s[i+L] = int32(r)
				}
			}
		}
		// Fresh matches.
		if maxL >= minMatch {
			freshBase := matchBase + m.isRep[0].Price(0)
			o.matchBuf = o.matcher.FindMatches(p, maxL, o.matchBuf[:0])
			prevLen := minMatch - 1
			for _, mt := range o.matchBuf {
				dp4 := freshBase + o.distPrice(2, mt.Dist)
				dp5 := freshBase + o.distPrice(3, mt.Dist)
				for L := prevLen + 1; L <= mt.Len; L++ {
					dp := dp5
					if L == minMatch {
						dp = dp4
					}
					if cp := dp + o.lenTab[L-lenBase]; cp < cost[i+L] {
						cost[i+L] = cp
						from[i+L] = int32(i)
						dist[i+L] = int32(mt.Dist)
						rep0s[i+L] = int32(mt.Dist)
					}
				}
				prevLen = mt.Len
			}
		}
	}

	// Backtrack the cheapest path to the horizon, then emit its prefix.
	type op struct {
		at, len int
		dist    int
	}
	var ops []op
	for j := h; j > 0; {
		i := int(from[j])
		ops = append(ops, op{at: i, len: j - i, dist: int(dist[j])})
		j = i
	}
	emitLimit := optEmit
	if h < optHorizon {
		emitLimit = h // file tail: emit everything
	}
	for k := len(ops) - 1; k >= 0; k-- {
		opk := ops[k]
		if opk.at >= emitLimit {
			break
		}
		if opk.dist == 0 {
			o.emitLiteral()
		} else {
			o.emitMatch(opk.dist, opk.len)
		}
	}
}

// Decompress implements compress.Codec with default decode limits.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited: the declared output size is
// validated against lim before the output buffer grows.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	return c.decompressLimits(comp, lim, nil)
}

// DecompressAppendLimitsTrace implements compress.TracedDecompressor,
// attaching model-init / rc-decode stage spans to sp.
func (c *Codec) DecompressAppendLimitsTrace(dst, comp []byte, lim compress.DecodeLimits, sp *trace.Span) ([]byte, error) {
	out, err := c.decompressLimits(comp, lim, sp)
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}

func (c *Codec) decompressLimits(comp []byte, lim compress.DecodeLimits, sp *trace.Span) ([]byte, error) {
	size, n, err := bitio.Uvarint(comp)
	if err != nil {
		return nil, fmt.Errorf("xz: %w", err)
	}
	if err := lim.CheckDeclared(size, len(comp)); err != nil {
		return nil, err
	}
	if size == 0 {
		return []byte{}, nil
	}
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	d := rangecoder.NewDecoder(comp[n:])
	m := newModels()
	// Cap the initial allocation: size is attacker-controlled input.
	capacity := size
	if capacity > 1<<20 {
		capacity = 1 << 20
	}
	out := make([]byte, 0, capacity)
	if sp != nil {
		sp.AddStage("model-init", time.Since(t0), int64(len(comp)), 0)
		t0 = time.Now()
	}
	reps := [4]int{1, 2, 3, 4}
	prevMatch := 0
	for uint64(len(out)) < size {
		if d.Err() != nil {
			return nil, fmt.Errorf("xz: %w", d.Err())
		}
		if prevMatch == 0 {
			// Literal-follows-literal steady state: the fused run decoder
			// consumes symbols until the next match flag (or end of block).
			var hitMatch bool
			out, hitMatch = d.DecodeLiteralRun(m.isMatch[:posStates], m.literals, out, int(size))
			if !hitMatch {
				break
			}
		} else {
			if d.DecodeBit(&m.isMatch[prevMatch*posStates+len(out)&3]) == 0 {
				ctx := 0
				if len(out) > 0 {
					ctx = int(out[len(out)-1] >> 5)
				}
				var matchByte byte
				matched := reps[0] <= len(out)
				if matched {
					matchByte = out[len(out)-reps[0]]
				}
				out = append(out, decodeLiteral(d, m.literals[ctx], matched, matchByte))
				prevMatch = 0
				continue
			}
		}
		var length, dist int
		if d.DecodeBit(&m.isRep[0]) == 1 {
			idx := decodeRepIndex(d, m)
			length = int(m.repLen.decode(d)) + lenBase
			dist = reps[idx]
			copy(reps[1:idx+1], reps[:idx])
			reps[0] = dist
		} else {
			length = int(m.lenCoder.decode(d)) + lenBase
			dist = decodeDistance(d, m, lenToCtx(length))
			reps[3], reps[2], reps[1], reps[0] = reps[2], reps[1], reps[0], dist
		}
		if uint64(len(out)+length) > size {
			return nil, compress.Errorf(compress.ErrCorrupt, "xz: match overruns output")
		}
		out, err = lz77.AppendMatch(out, dist, length, int(size))
		if err != nil {
			return nil, fmt.Errorf("xz: %w", err)
		}
		prevMatch = 1
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("xz: %w", d.Err())
	}
	if sp != nil {
		sp.AddStage("rc-decode", time.Since(t0), int64(len(comp)), int64(len(out)))
	}
	return out, nil
}

var _ compress.Codec = (*Codec)(nil)
var _ compress.Describer = (*Codec)(nil)
var _ compress.Limited = (*Codec)(nil)
var _ compress.TracedCompressor = (*Codec)(nil)
var _ compress.TracedDecompressor = (*Codec)(nil)
