package xzc

import (
	"bytes"
	"math/rand"
	"testing"

	"positbench/internal/rangecoder"
)

func TestDistSlot(t *testing.T) {
	cases := []struct {
		d1   uint32
		slot int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 3},
		{4, 4}, {5, 4}, {6, 5}, {7, 5},
		{8, 6}, {11, 6}, {12, 7}, {15, 7},
		{16, 8}, {1 << 20, 40},
	}
	for _, tc := range cases {
		if got := distSlot(tc.d1); got != tc.slot {
			t.Errorf("distSlot(%d) = %d, want %d", tc.d1, got, tc.slot)
		}
	}
}

func TestDistanceRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := []int{1, 2, 3, 4, 5, 64, 127, 128, 1000, 65536, 1 << 20, 8<<20 - 1}
	for i := 0; i < 200; i++ {
		dists = append(dists, rng.Intn(8<<20)+1)
	}
	e := rangecoder.NewEncoder(4096)
	em := newModels()
	for i, d := range dists {
		encodeDistance(e, em, i%4, d)
	}
	buf := e.Finish()
	dec := rangecoder.NewDecoder(buf)
	dm := newModels()
	for i, want := range dists {
		if got := decodeDistance(dec, dm, i%4); got != want {
			t.Fatalf("dist %d: got %d want %d", i, got, want)
		}
	}
}

func TestLenCoderRoundtrip(t *testing.T) {
	e := rangecoder.NewEncoder(4096)
	elc := newLenCoder()
	var vals []uint32
	for v := uint32(0); v <= maxLenCode; v += 3 {
		vals = append(vals, v)
	}
	vals = append(vals, 0, 7, 8, 15, 16, maxLenCode)
	for _, v := range vals {
		elc.encode(e, v)
	}
	buf := e.Finish()
	d := rangecoder.NewDecoder(buf)
	dlc := newLenCoder()
	for i, want := range vals {
		if got := dlc.decode(d); got != want {
			t.Fatalf("len %d: got %d want %d", i, got, want)
		}
	}
}

func TestRepIndexRoundtrip(t *testing.T) {
	e := rangecoder.NewEncoder(256)
	em := newModels()
	idxs := []int{0, 1, 2, 3, 3, 2, 1, 0, 0, 0, 1}
	for _, idx := range idxs {
		encodeRepIndex(e, em, idx)
	}
	buf := e.Finish()
	d := rangecoder.NewDecoder(buf)
	dm := newModels()
	for i, want := range idxs {
		if got := decodeRepIndex(d, dm); got != want {
			t.Fatalf("idx %d: got %d want %d", i, got, want)
		}
	}
}

func TestLiteralCoderModes(t *testing.T) {
	e := rangecoder.NewEncoder(4096)
	probs := rangecoder.NewProbs(0x300)
	type lit struct {
		b       byte
		matched bool
		mb      byte
	}
	rng := rand.New(rand.NewSource(2))
	var lits []lit
	for i := 0; i < 500; i++ {
		lits = append(lits, lit{byte(rng.Intn(256)), rng.Intn(2) == 1, byte(rng.Intn(256))})
	}
	for _, l := range lits {
		encodeLiteral(e, probs, l.b, l.matched, l.mb)
	}
	buf := e.Finish()
	d := rangecoder.NewDecoder(buf)
	dprobs := rangecoder.NewProbs(0x300)
	for i, l := range lits {
		if got := decodeLiteral(d, dprobs, l.matched, l.mb); got != l.b {
			t.Fatalf("lit %d: got %d want %d", i, got, l.b)
		}
	}
}

func TestMatchedLiteralsCheapWhenPredicted(t *testing.T) {
	// When matchByte == b throughout, matched-mode literals must cost far
	// less than unmatched ones.
	enc := func(matched bool) int {
		e := rangecoder.NewEncoder(4096)
		probs := rangecoder.NewProbs(0x300)
		for i := 0; i < 2000; i++ {
			b := byte(i * 37)
			encodeLiteral(e, probs, b, matched, b)
		}
		return len(e.Finish())
	}
	if m, u := enc(true), enc(false); m >= u/2 {
		t.Fatalf("matched-mode %d bytes vs unmatched %d: no prediction gain", m, u)
	}
}

func TestOptimalBeatsNaiveOnStrided(t *testing.T) {
	// 4-byte-strided data with small per-record deltas: the optimal parser
	// must exploit rep distances and produce strong compression.
	n := 1 << 16
	data := make([]byte, n)
	v := uint32(0x42000000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i += 4 {
		v += uint32(rng.Intn(16))
		data[i] = byte(v)
		data[i+1] = byte(v >> 8)
		data[i+2] = byte(v >> 16)
		data[i+3] = byte(v >> 24)
	}
	c := New()
	comp, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decompress(comp)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatal("roundtrip")
	}
	if ratio := float64(len(data)) / float64(len(comp)); ratio < 3 {
		t.Fatalf("strided data ratio %.2f, expected > 3", ratio)
	}
}

func TestNiceMatchShortcut(t *testing.T) {
	// Long uniform runs exercise takeNiceMatch; output must stay tiny.
	data := bytes.Repeat([]byte{0xAB}, 1<<20)
	c := New()
	comp, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) > 4096 {
		t.Fatalf("uniform megabyte compressed to %d bytes", len(comp))
	}
	back, err := c.Decompress(comp)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatal("roundtrip")
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	c := New()
	if _, err := c.Decompress(nil); err == nil {
		t.Fatal("empty accepted")
	}
	// Declared size with random payload must fail or at least not panic.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		garbage := make([]byte, rng.Intn(100)+10)
		rng.Read(garbage)
		garbage[0] = 200 // plausible size varint
		c.Decompress(garbage)
	}
}
