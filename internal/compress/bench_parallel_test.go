package compress_test

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/stats"
)

// Serial-vs-parallel throughput regression benchmarks. Run via `make bench`,
// which passes -bench-json so the run leaves a diffable BENCH_compress.json
// behind; plain `go test -bench` works too and just skips the report.
// Speedups are relative to GOMAXPROCS on the measuring machine — the report
// records it so a ~1.0x result on a 1-CPU runner is not misread as a
// regression.

var (
	benchJSONPath = flag.String("bench-json", "", "write a BENCH_compress.json report to this path after the run")
	benchWorkers  = flag.Int("bench-workers", 4, "parallel worker count measured against the serial baseline")
	benchBytes    = flag.Int("bench-bytes", 4<<20, "benchmark input size; `make bench-smoke` shrinks it to run under -race")
	benchSweep    = flag.Bool("bench-workers-sweep", false, "measure the parallel benchmarks at workers 1,2,4,8 instead of only -bench-workers, producing per-core scaling curves in the JSON report")
)

const benchChunk = 1 << 20

// benchWorkerCounts resolves the parallel worker counts under measurement:
// the single -bench-workers point by default, the full per-core curve with
// -bench-workers-sweep.
func benchWorkerCounts() []int {
	if *benchSweep {
		return []int{1, 2, 4, 8}
	}
	return []int{*benchWorkers}
}

// The recorder keys parallel metrics by (codec, workers) so a sweep run
// yields one BenchResult row per curve point; serial metrics are
// per-codec and are copied onto every row of that codec's curve when the
// report is assembled, keeping each row a self-contained speedup sample.
var benchRecorder = struct {
	sync.Mutex
	serial   map[string]*stats.BenchResult
	parallel map[string]*stats.BenchResult
}{serial: map[string]*stats.BenchResult{}, parallel: map[string]*stats.BenchResult{}}

// recordBench keeps the best observed throughput per metric across -count
// repetitions: on a shared runner a CPU-steal spike poisons any single run
// (and would poison a mean), while the best of several runs is reproducibly
// close to what the hardware sustains. `make bench` passes -count=3.
// Serial measurements pass workers == 0.
func recordBench(codec string, workers int, parallel, decode bool, mbps float64) {
	benchRecorder.Lock()
	defer benchRecorder.Unlock()
	bucket, key := benchRecorder.serial, codec
	if parallel {
		bucket, key = benchRecorder.parallel, fmt.Sprintf("%s/w%d", codec, workers)
	}
	r := bucket[key]
	if r == nil {
		r = &stats.BenchResult{
			Codec:      codec,
			Workers:    workers,
			InputBytes: int64(*benchBytes),
			ChunkBytes: benchChunk,
		}
		bucket[key] = r
	}
	best := func(old float64) float64 {
		if mbps > old {
			return mbps
		}
		return old
	}
	switch {
	case decode && parallel:
		r.ParallelDecodeMBps = best(r.ParallelDecodeMBps)
	case decode:
		r.SerialDecodeMBps = best(r.SerialDecodeMBps)
	case parallel:
		r.ParallelMBps = best(r.ParallelMBps)
	default:
		r.SerialMBps = best(r.SerialMBps)
	}
}

func throughputMBps(b *testing.B, n int) float64 {
	if e := b.Elapsed(); e > 0 {
		return float64(n) * float64(b.N) / e.Seconds() / 1e6
	}
	return 0
}

// benchInput is a smooth float32 field with light noise — the same flavour of
// data as the SDRBench-style study inputs, so per-codec ratios are realistic.
var benchInput = sync.OnceValue(func() []byte {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 0, *benchBytes)
	for i := 0; i < *benchBytes/4; i++ {
		v := float32(math.Sin(float64(i)/97) + 0.01*rng.NormFloat64())
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
})

func BenchmarkStreamCompress(b *testing.B) {
	data := benchInput()
	for _, c := range all.Raw() {
		c := c
		b.Run(c.Name()+"/serial", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var dst bytes.Buffer
			for i := 0; i < b.N; i++ {
				dst.Reset()
				w := compress.NewWriter(c, &dst, benchChunk)
				if _, err := w.Write(data); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
			recordBench(c.Name(), 0, false, false, throughputMBps(b, len(data)))
		})
		for _, nw := range benchWorkerCounts() {
			nw := nw
			b.Run(fmt.Sprintf("%s/parallel-w%d", c.Name(), nw), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				var dst bytes.Buffer
				for i := 0; i < b.N; i++ {
					dst.Reset()
					w := compress.NewParallelWriter(c, &dst, benchChunk, nw)
					if _, err := w.Write(data); err != nil {
						b.Fatal(err)
					}
					if err := w.Close(); err != nil {
						b.Fatal(err)
					}
				}
				recordBench(c.Name(), nw, true, false, throughputMBps(b, len(data)))
			})
		}
	}
}

// BenchmarkStreamDecompress covers the read side; it feeds the decode
// columns of the JSON report so decode-path regressions gate alongside the
// compress direction.
func BenchmarkStreamDecompress(b *testing.B) {
	data := benchInput()
	for _, c := range all.Raw() {
		c := c
		var enc bytes.Buffer
		w := compress.NewWriter(c, &enc, benchChunk)
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		stream := enc.Bytes()
		out := make([]byte, len(data))
		b.Run(c.Name()+"/serial", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r := compress.NewReader(c, bytes.NewReader(stream))
				if _, err := io.ReadFull(r, out); err != nil {
					b.Fatal(err)
				}
			}
			recordBench(c.Name(), 0, false, true, throughputMBps(b, len(data)))
		})
		for _, nw := range benchWorkerCounts() {
			nw := nw
			b.Run(fmt.Sprintf("%s/parallel-w%d", c.Name(), nw), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				for i := 0; i < b.N; i++ {
					r := compress.NewParallelReader(c, bytes.NewReader(stream), nw)
					if _, err := io.ReadFull(r, out); err != nil {
						r.Close()
						b.Fatal(err)
					}
					r.Close()
				}
				recordBench(c.Name(), nw, true, true, throughputMBps(b, len(data)))
			})
		}
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	if *benchJSONPath != "" && len(benchRecorder.parallel) > 0 {
		report := &stats.BenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
		if report.NumCPU == 1 {
			report.Note = "1-CPU machine: the parallel engine falls back to the serial path, so per-core curves are flat at ~1.0 by construction; compare absolute MB/s only against runs on the same hardware"
		}
		// One row per (codec, workers) curve point; the codec's serial
		// throughputs repeat on every row so each is a self-contained
		// speedup sample (the format benchdiff -scaling consumes).
		for _, r := range benchRecorder.parallel {
			row := *r
			if s := benchRecorder.serial[row.Codec]; s != nil {
				row.SerialMBps = s.SerialMBps
				row.SerialDecodeMBps = s.SerialDecodeMBps
			}
			report.Results = append(report.Results, row)
		}
		if err := stats.WriteBenchJSON(*benchJSONPath, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
