package compress_test

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/stats"
)

// Serial-vs-parallel throughput regression benchmarks. Run via `make bench`,
// which passes -bench-json so the run leaves a diffable BENCH_compress.json
// behind; plain `go test -bench` works too and just skips the report.
// Speedups are relative to GOMAXPROCS on the measuring machine — the report
// records it so a ~1.0x result on a 1-CPU runner is not misread as a
// regression.

var (
	benchJSONPath = flag.String("bench-json", "", "write a BENCH_compress.json report to this path after the run")
	benchWorkers  = flag.Int("bench-workers", 4, "parallel worker count measured against the serial baseline")
	benchBytes    = flag.Int("bench-bytes", 4<<20, "benchmark input size; `make bench-smoke` shrinks it to run under -race")
)

const benchChunk = 1 << 20

var benchRecorder = struct {
	sync.Mutex
	results map[string]*stats.BenchResult
}{results: map[string]*stats.BenchResult{}}

// recordBench keeps the best observed throughput per metric across -count
// repetitions: on a shared runner a CPU-steal spike poisons any single run
// (and would poison a mean), while the best of several runs is reproducibly
// close to what the hardware sustains. `make bench` passes -count=3.
func recordBench(codec string, parallel, decode bool, mbps float64) {
	benchRecorder.Lock()
	defer benchRecorder.Unlock()
	r := benchRecorder.results[codec]
	if r == nil {
		r = &stats.BenchResult{
			Codec:      codec,
			Workers:    *benchWorkers,
			InputBytes: int64(*benchBytes),
			ChunkBytes: benchChunk,
		}
		benchRecorder.results[codec] = r
	}
	best := func(old float64) float64 {
		if mbps > old {
			return mbps
		}
		return old
	}
	switch {
	case decode && parallel:
		r.ParallelDecodeMBps = best(r.ParallelDecodeMBps)
	case decode:
		r.SerialDecodeMBps = best(r.SerialDecodeMBps)
	case parallel:
		r.ParallelMBps = best(r.ParallelMBps)
	default:
		r.SerialMBps = best(r.SerialMBps)
	}
}

func throughputMBps(b *testing.B, n int) float64 {
	if e := b.Elapsed(); e > 0 {
		return float64(n) * float64(b.N) / e.Seconds() / 1e6
	}
	return 0
}

// benchInput is a smooth float32 field with light noise — the same flavour of
// data as the SDRBench-style study inputs, so per-codec ratios are realistic.
var benchInput = sync.OnceValue(func() []byte {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 0, *benchBytes)
	for i := 0; i < *benchBytes/4; i++ {
		v := float32(math.Sin(float64(i)/97) + 0.01*rng.NormFloat64())
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
})

func BenchmarkStreamCompress(b *testing.B) {
	data := benchInput()
	for _, c := range all.Raw() {
		c := c
		b.Run(c.Name()+"/serial", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var dst bytes.Buffer
			for i := 0; i < b.N; i++ {
				dst.Reset()
				w := compress.NewWriter(c, &dst, benchChunk)
				if _, err := w.Write(data); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
			recordBench(c.Name(), false, false, throughputMBps(b, len(data)))
		})
		b.Run(fmt.Sprintf("%s/parallel-w%d", c.Name(), *benchWorkers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var dst bytes.Buffer
			for i := 0; i < b.N; i++ {
				dst.Reset()
				w := compress.NewParallelWriter(c, &dst, benchChunk, *benchWorkers)
				if _, err := w.Write(data); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
			recordBench(c.Name(), true, false, throughputMBps(b, len(data)))
		})
	}
}

// BenchmarkStreamDecompress covers the read side; it feeds the decode
// columns of the JSON report so decode-path regressions gate alongside the
// compress direction.
func BenchmarkStreamDecompress(b *testing.B) {
	data := benchInput()
	for _, c := range all.Raw() {
		c := c
		var enc bytes.Buffer
		w := compress.NewWriter(c, &enc, benchChunk)
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		stream := enc.Bytes()
		out := make([]byte, len(data))
		b.Run(c.Name()+"/serial", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r := compress.NewReader(c, bytes.NewReader(stream))
				if _, err := io.ReadFull(r, out); err != nil {
					b.Fatal(err)
				}
			}
			recordBench(c.Name(), false, true, throughputMBps(b, len(data)))
		})
		b.Run(fmt.Sprintf("%s/parallel-w%d", c.Name(), *benchWorkers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r := compress.NewParallelReader(c, bytes.NewReader(stream), *benchWorkers)
				if _, err := io.ReadFull(r, out); err != nil {
					r.Close()
					b.Fatal(err)
				}
				r.Close()
			}
			recordBench(c.Name(), true, true, throughputMBps(b, len(data)))
		})
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	if *benchJSONPath != "" && len(benchRecorder.results) > 0 {
		report := &stats.BenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
		if report.NumCPU == 1 {
			report.Note = "1-CPU machine: parallel speedups are ~1.0 by construction; compare absolute MB/s only against runs on the same hardware"
		}
		for _, r := range benchRecorder.results {
			report.Results = append(report.Results, *r)
		}
		if err := stats.WriteBenchJSON(*benchJSONPath, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
