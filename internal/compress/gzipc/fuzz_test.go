package gzipc

import (
	"testing"

	"positbench/internal/compress/codectest"
)

func FuzzRoundtrip(f *testing.F)  { codectest.FuzzRoundtrip(f, New()) }
func FuzzDecompress(f *testing.F) { codectest.FuzzDecompress(f, New()) }
