// Package gzipc provides the gzip-class codec: DEFLATE (LZ77 with a 32 KiB
// window plus canonical Huffman) at maximum effort. It wraps the standard
// library's compress/gzip, which implements the same algorithm as GNU gzip.
package gzipc

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"sync"

	"positbench/internal/compress"
)

// Codec is the gzip-class compressor.
type Codec struct {
	level int
	wpool sync.Pool // *gzWriter, Huffman/window state reused across chunks
	rpool sync.Pool // *gzReader
}

// gzWriter owns a gzip.Writer whose sink appends to buf, so compression
// reuses both the flate encoder state and the caller's output buffer.
type gzWriter struct {
	gw  *gzip.Writer
	buf []byte
}

func (z *gzWriter) Write(p []byte) (int, error) {
	z.buf = append(z.buf, p...)
	return len(p), nil
}

// gzReader pairs a gzip.Reader with the bytes.Reader it resets over, so
// decompression reuses the inflate state and window across chunks.
type gzReader struct {
	gr *gzip.Reader
	br bytes.Reader
}

// New returns a gzip codec at BestCompression, mirroring `gzip --best`.
func New() *Codec { return &Codec{level: gzip.BestCompression} }

// NewLevel returns a gzip codec at an explicit flate level (1..9).
func NewLevel(level int) *Codec { return &Codec{level: level} }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "gzip" }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	return compress.Info{Name: "gzip", Version: "go-flate", Source: "models GNU gzip 1.13 (DEFLATE, 32 KiB window + Huffman)"}
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	return c.CompressAppend(nil, src)
}

// CompressAppend implements compress.AppendCompressor, appending the gzip
// stream to dst and reusing its capacity. The encoder state itself is pooled
// per codec, so steady-state chunk compression does not allocate.
func (c *Codec) CompressAppend(dst, src []byte) ([]byte, error) {
	z, _ := c.wpool.Get().(*gzWriter)
	if z == nil {
		z = &gzWriter{}
		gw, err := gzip.NewWriterLevel(z, c.level)
		if err != nil {
			return nil, err
		}
		z.gw = gw
	}
	z.buf = dst[:0]
	z.gw.Reset(z)
	if _, err := z.gw.Write(src); err != nil {
		return nil, err
	}
	if err := z.gw.Close(); err != nil {
		return nil, err
	}
	out := z.buf
	z.buf = nil // ownership returns to the caller
	c.wpool.Put(z)
	return out, nil
}

// Decompress implements compress.Codec with default decode limits.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited. DEFLATE streams carry no
// declared output size, so the cap is enforced with a bounded read: one
// byte past the cap aborts the decode with ErrLimitExceeded.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	return c.DecompressAppendLimits(nil, comp, lim)
}

// DecompressAppendLimits implements compress.AppendDecompressor, appending
// the decoded stream to dst. The inflate state is pooled per codec, so
// steady-state chunk decompression does not allocate.
func (c *Codec) DecompressAppendLimits(dst, comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	z, _ := c.rpool.Get().(*gzReader)
	if z == nil {
		z = &gzReader{}
	}
	z.br.Reset(comp)
	var err error
	if z.gr == nil {
		z.gr, err = gzip.NewReader(&z.br)
	} else {
		err = z.gr.Reset(&z.br)
	}
	if err != nil {
		c.rpool.Put(z)
		return nil, mapErr(err)
	}
	maxOut := lim.OutputCap(len(comp))
	out := dst[:0]
	for {
		if len(out) == cap(out) {
			// Grow geometrically, bounded one byte past the cap so an
			// over-limit stream is detected without decoding all of it.
			newCap := int64(2 * cap(out))
			if newCap < 512 {
				newCap = 512
			}
			if newCap > maxOut+1 {
				newCap = maxOut + 1
			}
			if newCap <= int64(len(out)) {
				break
			}
			nb := make([]byte, len(out), newCap)
			copy(nb, out)
			out = nb
		}
		n, err := z.gr.Read(out[len(out):cap(out)])
		out = out[:len(out)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			c.rpool.Put(z)
			return nil, mapErr(err)
		}
	}
	c.rpool.Put(z)
	if int64(len(out)) > maxOut {
		return nil, compress.Errorf(compress.ErrLimitExceeded, "gzip: output exceeds decode cap %d", maxOut)
	}
	return out, nil
}

// mapErr translates stdlib gzip/flate errors into the decode taxonomy.
func mapErr(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return compress.Errorf(compress.ErrTruncated, "gzip: %v", err)
	}
	return compress.Errorf(compress.ErrCorrupt, "gzip: %v", err)
}

var _ compress.Codec = (*Codec)(nil)
var _ compress.Describer = (*Codec)(nil)
var _ compress.Limited = (*Codec)(nil)
var _ compress.AppendCompressor = (*Codec)(nil)
var _ compress.AppendDecompressor = (*Codec)(nil)
