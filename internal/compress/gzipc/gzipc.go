// Package gzipc provides the gzip-class codec: DEFLATE (LZ77 with a 32 KiB
// window plus canonical Huffman) at maximum effort. It wraps the standard
// library's compress/gzip, which implements the same algorithm as GNU gzip.
package gzipc

import (
	"bytes"
	"compress/gzip"
	"io"

	"positbench/internal/compress"
)

// Codec is the gzip-class compressor.
type Codec struct {
	level int
}

// New returns a gzip codec at BestCompression, mirroring `gzip --best`.
func New() *Codec { return &Codec{level: gzip.BestCompression} }

// NewLevel returns a gzip codec at an explicit flate level (1..9).
func NewLevel(level int) *Codec { return &Codec{level: level} }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "gzip" }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	return compress.Info{Name: "gzip", Version: "go-flate", Source: "models GNU gzip 1.13 (DEFLATE, 32 KiB window + Huffman)"}
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, c.level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

var _ compress.Codec = (*Codec)(nil)
var _ compress.Describer = (*Codec)(nil)
