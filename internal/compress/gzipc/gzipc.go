// Package gzipc provides the gzip-class codec: DEFLATE (LZ77 with a 32 KiB
// window plus canonical Huffman) at maximum effort. It wraps the standard
// library's compress/gzip, which implements the same algorithm as GNU gzip.
package gzipc

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"

	"positbench/internal/compress"
)

// Codec is the gzip-class compressor.
type Codec struct {
	level int
}

// New returns a gzip codec at BestCompression, mirroring `gzip --best`.
func New() *Codec { return &Codec{level: gzip.BestCompression} }

// NewLevel returns a gzip codec at an explicit flate level (1..9).
func NewLevel(level int) *Codec { return &Codec{level: level} }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "gzip" }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	return compress.Info{Name: "gzip", Version: "go-flate", Source: "models GNU gzip 1.13 (DEFLATE, 32 KiB window + Huffman)"}
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, c.level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress implements compress.Codec with default decode limits.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited. DEFLATE streams carry no
// declared output size, so the cap is enforced with a bounded reader: one
// byte past the cap aborts the decode with ErrLimitExceeded.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, mapErr(err)
	}
	defer r.Close()
	maxOut := lim.OutputCap(len(comp))
	out, err := io.ReadAll(io.LimitReader(r, maxOut+1))
	if err != nil {
		return nil, mapErr(err)
	}
	if int64(len(out)) > maxOut {
		return nil, compress.Errorf(compress.ErrLimitExceeded, "gzip: output exceeds decode cap %d", maxOut)
	}
	return out, nil
}

// mapErr translates stdlib gzip/flate errors into the decode taxonomy.
func mapErr(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return compress.Errorf(compress.ErrTruncated, "gzip: %v", err)
	}
	return compress.Errorf(compress.ErrCorrupt, "gzip: %v", err)
}

var _ compress.Codec = (*Codec)(nil)
var _ compress.Describer = (*Codec)(nil)
var _ compress.Limited = (*Codec)(nil)
