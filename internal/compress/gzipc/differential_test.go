package gzipc

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"positbench/internal/compress/codectest"
)

// Differential tests against the standard library's gzip implementation:
// every stream our codec emits must decode with compress/gzip, and every
// stream compress/gzip emits (at any level, with or without header
// metadata) must decode with our codec. The two directions together pin
// the codec to the RFC 1952 wire format, not merely to itself.

func TestDifferentialOursToStdlib(t *testing.T) {
	c := New()
	for _, in := range codectest.DifferentialInputs() {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			comp, err := c.Compress(in.Data)
			if err != nil {
				t.Fatal(err)
			}
			zr, err := gzip.NewReader(bytes.NewReader(comp))
			if err != nil {
				t.Fatalf("stdlib rejected our header: %v", err)
			}
			back, err := io.ReadAll(zr)
			if err != nil {
				t.Fatalf("stdlib decode: %v", err)
			}
			if err := zr.Close(); err != nil {
				t.Fatalf("stdlib checksum verification: %v", err)
			}
			if !bytes.Equal(back, in.Data) {
				t.Fatalf("stdlib decoded %d bytes, want %d", len(back), len(in.Data))
			}
		})
	}
}

func TestDifferentialStdlibToOurs(t *testing.T) {
	c := New()
	for _, in := range codectest.DifferentialInputs() {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			for _, level := range []int{gzip.BestSpeed, 6, gzip.BestCompression} {
				var buf bytes.Buffer
				zw, err := gzip.NewWriterLevel(&buf, level)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := zw.Write(in.Data); err != nil {
					t.Fatal(err)
				}
				if err := zw.Close(); err != nil {
					t.Fatal(err)
				}
				back, err := c.Decompress(buf.Bytes())
				if err != nil {
					t.Fatalf("level %d: our decode: %v", level, err)
				}
				if !bytes.Equal(back, in.Data) {
					t.Fatalf("level %d: decoded %d bytes, want %d", level, len(back), len(in.Data))
				}
			}
		})
	}
}

func TestDifferentialStdlibHeaderMetadata(t *testing.T) {
	// RFC 1952 headers may carry a name, comment, and mtime; our decoder
	// must skip them transparently.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Name = "input.f32"
	zw.Comment = "sdrbench sample"
	payload := []byte("posit streams under test")
	if _, err := zw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := New().Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("metadata-bearing stream misdecoded")
	}
}
