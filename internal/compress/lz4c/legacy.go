package lz4c

import (
	"encoding/binary"
	"fmt"

	"positbench/internal/compress"
	"positbench/internal/lz77"
)

// LegacyCodec emits LZ4's "legacy frame" container (the `lz4 -l` format):
// magic 0x184C2102 followed by blocks of up to 8 MiB input, each stored as
// a 4-byte little-endian compressed length plus an LZ4 block. The format is
// decodable by the reference lz4 tool, which cross-validates this
// package's block encoder against the real implementation.
type LegacyCodec struct {
	depth int
}

const (
	legacyMagic     = 0x184C2102
	legacyBlockSize = 8 << 20
)

// NewLegacy returns a legacy-frame codec with HC-depth search.
func NewLegacy() *LegacyCodec { return &LegacyCodec{depth: 64} }

// Name implements compress.Codec.
func (c *LegacyCodec) Name() string { return "lz4-legacy" }

// Info implements compress.Describer.
func (c *LegacyCodec) Info() compress.Info {
	return compress.Info{Name: "lz4-legacy", Version: "legacy-frame", Source: "LZ4 legacy container, decodable by the reference lz4 tool"}
}

// Compress implements compress.Codec.
func (c *LegacyCodec) Compress(src []byte) ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, legacyMagic)
	for off := 0; off < len(src) || (off == 0 && len(src) == 0); off += legacyBlockSize {
		if len(src) == 0 {
			break
		}
		end := off + legacyBlockSize
		if end > len(src) {
			end = len(src)
		}
		block, err := compressBlockLZ4(src[off:end], c.depth)
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(block)))
		out = append(out, block...)
	}
	return out, nil
}

// Decompress implements compress.Codec with default decode limits.
func (c *LegacyCodec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited. The legacy frame carries no
// uncompressed size, so the cap is enforced as blocks accumulate.
func (c *LegacyCodec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	if len(comp) < 4 {
		return nil, compress.Errorf(compress.ErrTruncated, "lz4-legacy: input shorter than magic")
	}
	if binary.LittleEndian.Uint32(comp) != legacyMagic {
		return nil, compress.Errorf(compress.ErrBadMagic, "lz4-legacy: magic %08x", binary.LittleEndian.Uint32(comp))
	}
	maxOut := lim.OutputCap(len(comp))
	comp = comp[4:]
	var out []byte
	for len(comp) > 0 {
		if len(comp) < 4 {
			return nil, compress.Errorf(compress.ErrTruncated, "lz4-legacy: truncated block header")
		}
		n := int(binary.LittleEndian.Uint32(comp))
		comp = comp[4:]
		if n == legacyMagic {
			// A concatenated legacy frame: keep going.
			continue
		}
		if n < 0 || n > len(comp) {
			return nil, compress.Errorf(compress.ErrTruncated, "lz4-legacy: block length %d exceeds input", n)
		}
		blockCap := legacyBlockSize
		if rem := maxOut - int64(len(out)); rem < int64(blockCap) {
			blockCap = int(rem)
		}
		block, err := decompressBlockLZ4(comp[:n], blockCap)
		if err != nil {
			return nil, err
		}
		out = append(out, block...)
		comp = comp[n:]
	}
	return out, nil
}

// compressBlockLZ4 encodes one raw LZ4 block (no length header: the legacy
// container carries sizes out of band).
func compressBlockLZ4(src []byte, depth int) ([]byte, error) {
	c := NewDepth(depth)
	withHeader, err := c.Compress(src)
	if err != nil {
		return nil, err
	}
	// Strip this package's uvarint length prefix to get the raw block.
	_, n, err := uvarintLen(withHeader)
	if err != nil {
		return nil, err
	}
	return withHeader[n:], nil
}

// decompressBlockLZ4 decodes one raw LZ4 block whose uncompressed size is
// unknown but bounded by maxOut.
func decompressBlockLZ4(block []byte, maxOut int) ([]byte, error) {
	out := make([]byte, 0, min(maxOut, 1<<20))
	i := 0
	for i < len(block) {
		token := block[i]
		i++
		nLit := int(token >> 4)
		var err error
		if nLit == tokenEscape {
			nLit, i, err = readLenExt(block, i, nLit)
			if err != nil {
				return nil, err
			}
		}
		if i+nLit > len(block) {
			return nil, compress.Errorf(compress.ErrTruncated, "lz4-legacy: literal overrun")
		}
		if len(out)+nLit > maxOut {
			return nil, compress.Errorf(compress.ErrLimitExceeded, "lz4-legacy: block exceeds %d bytes", maxOut)
		}
		out = append(out, block[i:i+nLit]...)
		i += nLit
		if i >= len(block) {
			break // final literal-only sequence
		}
		if i+2 > len(block) {
			return nil, compress.Errorf(compress.ErrTruncated, "lz4-legacy: missing offset")
		}
		dist := int(binary.LittleEndian.Uint16(block[i:]))
		i += 2
		mlen := int(token&0xF) + minMatch
		if token&0xF == tokenEscape {
			var ext int
			ext, i, err = readLenExt(block, i, 0)
			if err != nil {
				return nil, err
			}
			mlen += ext
		}
		out, err = lz77.AppendMatch(out, dist, mlen, maxOut)
		if err != nil {
			return nil, fmt.Errorf("lz4-legacy: %w", err)
		}
	}
	return out, nil
}

func uvarintLen(p []byte) (uint64, int, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, compress.Errorf(compress.ErrCorrupt, "lz4-legacy: bad length prefix")
	}
	return v, n, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ compress.Codec = (*LegacyCodec)(nil)
var _ compress.Describer = (*LegacyCodec)(nil)
var _ compress.Limited = (*LegacyCodec)(nil)
