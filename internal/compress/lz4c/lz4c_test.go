package lz4c

import (
	"testing"

	"positbench/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	codectest.Run(t, New())
}
