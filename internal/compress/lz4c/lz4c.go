// Package lz4c implements the lz4-class codec: byte-oriented LZ77 with a
// 64 KiB window and no entropy stage, using the LZ4 block format (4-bit
// token nibbles with 255-escape extension bytes). The missing entropy stage
// is the property the paper highlights: lowest ratios, highest speed.
package lz4c

import (
	"encoding/binary"
	"fmt"
	"sync"

	"positbench/internal/bitio"
	"positbench/internal/compress"
	"positbench/internal/lz77"
)

const (
	window      = 65535
	minMatch    = 4
	tailLits    = 12 // matches must not start within the final 12 bytes
	tokenEscape = 15
)

// Codec is the lz4-class compressor.
type Codec struct {
	depth int
}

// New returns an lz4 codec with high-compression search depth (HC mode,
// mirroring the paper's maximum-effort settings).
func New() *Codec { return &Codec{depth: 64} }

// NewDepth returns a codec with a custom chain-search depth.
func NewDepth(depth int) *Codec { return &Codec{depth: depth} }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "lz4" }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	return compress.Info{Name: "lz4", Version: "block-format", Source: "models lz4 1.04 HC (64 KiB window, no entropy stage)"}
}

// matcherPool recycles hash-chain state across chunks; Reset re-targets a
// pooled matcher without reallocating its tables.
var matcherPool = sync.Pool{New: func() any { return new(lz77.Matcher) }}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	return c.CompressAppend(nil, src)
}

// CompressAppend implements compress.AppendCompressor, appending the
// compressed block to dst and reusing its capacity.
func (c *Codec) CompressAppend(dst, src []byte) ([]byte, error) {
	if cap(dst) == 0 {
		dst = make([]byte, 0, len(src)/2+16)
	}
	out := bitio.PutUvarint(dst[:0], uint64(len(src)))
	if len(src) == 0 {
		return out, nil
	}
	m := matcherPool.Get().(*lz77.Matcher)
	m.Reset(src, window, c.depth)
	defer func() {
		m.Reset(nil, window, c.depth) // drop the src reference before pooling
		matcherPool.Put(m)
	}()
	litStart := 0
	pos := 0
	emit := func(litEnd, dist, mlen int) {
		nLit := litEnd - litStart
		token := byte(0)
		if nLit >= tokenEscape {
			token = tokenEscape << 4
		} else {
			token = byte(nLit) << 4
		}
		if mlen > 0 {
			if mlen-minMatch >= tokenEscape {
				token |= tokenEscape
			} else {
				token |= byte(mlen - minMatch)
			}
		}
		out = append(out, token)
		if nLit >= tokenEscape {
			out = appendLenExt(out, nLit-tokenEscape)
		}
		out = append(out, src[litStart:litEnd]...)
		if mlen > 0 {
			var off [2]byte
			binary.LittleEndian.PutUint16(off[:], uint16(dist))
			out = append(out, off[0], off[1])
			if mlen-minMatch >= tokenEscape {
				out = appendLenExt(out, mlen-minMatch-tokenEscape)
			}
		}
	}
	matchLimit := len(src) - tailLits
	for pos < matchLimit {
		dist, mlen := m.FindMatch(pos, matchLimit-pos)
		if mlen < minMatch {
			m.Insert(pos)
			pos++
			continue
		}
		emit(pos, dist, mlen)
		for i := 0; i < mlen; i++ {
			m.Insert(pos + i)
		}
		pos += mlen
		litStart = pos
	}
	// Final literal-only sequence.
	emit(len(src), 0, 0)
	return out, nil
}

func appendLenExt(out []byte, v int) []byte {
	for v >= 255 {
		out = append(out, 255)
		v -= 255
	}
	return append(out, byte(v))
}

// Decompress implements compress.Codec with default decode limits.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited: the declared size is checked
// against lim before any allocation, and every match copy is bounded.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	return c.DecompressAppendLimits(nil, comp, lim)
}

// DecompressAppendLimits implements compress.AppendDecompressor, appending
// the decoded block to dst and reusing its capacity.
func (c *Codec) DecompressAppendLimits(dst, comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	size, n, err := bitio.Uvarint(comp)
	if err != nil {
		return nil, fmt.Errorf("lz4: %w", err)
	}
	if err := lim.CheckDeclared(size, len(comp)); err != nil {
		return nil, err
	}
	comp = comp[n:]
	out := dst[:0]
	if uint64(cap(out)) < size {
		// Cap the initial allocation: size is attacker-controlled input.
		capacity := size
		if capacity > 1<<20 {
			capacity = 1 << 20
		}
		if uint64(cap(out)) < capacity {
			out = make([]byte, 0, capacity)
		}
	}
	i := 0
	for uint64(len(out)) < size {
		if i >= len(comp) {
			return nil, compress.Errorf(compress.ErrTruncated, "lz4: truncated stream")
		}
		token := comp[i]
		i++
		nLit := int(token >> 4)
		if nLit == tokenEscape {
			nLit, i, err = readLenExt(comp, i, nLit)
			if err != nil {
				return nil, err
			}
		}
		if i+nLit > len(comp) {
			return nil, compress.Errorf(compress.ErrTruncated, "lz4: literal overrun")
		}
		if uint64(len(out)+nLit) > size {
			return nil, compress.Errorf(compress.ErrCorrupt, "lz4: literals overrun declared size")
		}
		out = append(out, comp[i:i+nLit]...)
		i += nLit
		if uint64(len(out)) >= size {
			break // final sequence has no match part
		}
		if i+2 > len(comp) {
			return nil, compress.Errorf(compress.ErrTruncated, "lz4: missing offset")
		}
		dist := int(binary.LittleEndian.Uint16(comp[i:]))
		i += 2
		mlen := int(token&0xF) + minMatch
		if token&0xF == tokenEscape {
			var ext int
			ext, i, err = readLenExt(comp, i, 0)
			if err != nil {
				return nil, err
			}
			mlen += ext
		}
		if uint64(len(out)+mlen) > size {
			return nil, compress.Errorf(compress.ErrCorrupt, "lz4: match overruns declared size")
		}
		// Overlapping matches are the RLE mechanism; AppendMatch handles them.
		out, err = lz77.AppendMatch(out, dist, mlen, int(size))
		if err != nil {
			return nil, fmt.Errorf("lz4: %w", err)
		}
	}
	if uint64(len(out)) != size {
		return nil, compress.Errorf(compress.ErrCorrupt, "lz4: size mismatch: got %d want %d", len(out), size)
	}
	return out, nil
}

func readLenExt(comp []byte, i, base int) (int, int, error) {
	v := base
	for {
		if i >= len(comp) {
			return 0, i, compress.Errorf(compress.ErrTruncated, "lz4: truncated length")
		}
		b := comp[i]
		i++
		v += int(b)
		if b != 255 {
			return v, i, nil
		}
		if v > 1<<31 {
			return 0, i, compress.Errorf(compress.ErrCorrupt, "lz4: length overflow")
		}
	}
}

// DecodeIsLight implements compress.LightDecoder: LZ4 decode is pure byte
// copying, so on a 1-CPU host the parallel engine's pool overhead dominates
// and the serial fallback wins.
func (c *Codec) DecodeIsLight() bool { return true }

var _ compress.Codec = (*Codec)(nil)
var _ compress.Describer = (*Codec)(nil)
var _ compress.Limited = (*Codec)(nil)
var _ compress.AppendCompressor = (*Codec)(nil)
var _ compress.AppendDecompressor = (*Codec)(nil)
var _ compress.LightDecoder = (*Codec)(nil)
