package lz4c

import (
	"bytes"
	"encoding/binary"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"positbench/internal/compress/codectest"
)

func TestLegacyConformance(t *testing.T) {
	codectest.Run(t, NewLegacy())
}

func TestLegacyMagic(t *testing.T) {
	c := NewLegacy()
	comp, err := c.Compress([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(comp) != legacyMagic {
		t.Fatalf("magic: %x", comp[:4])
	}
	if _, err := c.Decompress([]byte{1, 2, 3, 4}); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := c.Decompress(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestLegacyMultiBlock(t *testing.T) {
	// >8 MiB forces two blocks. Use compressible data so this stays fast.
	data := bytes.Repeat([]byte("0123456789abcdef"), (9<<20)/16)
	c := NewLegacy()
	comp, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("multi-block roundtrip failed")
	}
}

// TestLegacyAgainstReferenceTool cross-validates the encoder with the real
// lz4 binary when one is installed; skipped otherwise.
func TestLegacyAgainstReferenceTool(t *testing.T) {
	lz4bin, err := exec.LookPath("lz4")
	if err != nil {
		t.Skip("lz4 binary not installed")
	}
	data := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 5000)
	comp, err := NewLegacy().Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "x.lz4")
	if err := os.WriteFile(in, comp, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(lz4bin, "-d", "-c", in).Output()
	if err != nil {
		t.Fatalf("reference lz4 rejected our frame: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("reference decode mismatch: %d vs %d bytes", len(out), len(data))
	}
}

func FuzzLegacyRoundtrip(f *testing.F) {
	codectest.FuzzRoundtrip(f, NewLegacy())
}
