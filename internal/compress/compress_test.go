package compress

import (
	"bytes"
	"errors"
	"testing"
)

func TestRatio(t *testing.T) {
	if r := Ratio(100, 50); r != 2 {
		t.Fatalf("Ratio = %g", r)
	}
	if r := Ratio(100, 0); r != 0 {
		t.Fatalf("zero compressed: %g", r)
	}
	if r := Ratio(0, 10); r != 0 {
		t.Fatalf("empty original: %g", r)
	}
}

// fakeCodec lets us exercise Roundtrip's failure paths.
type fakeCodec struct {
	compErr   error
	decompErr error
	corrupt   bool
}

func (f *fakeCodec) Name() string { return "fake" }
func (f *fakeCodec) Compress(src []byte) ([]byte, error) {
	if f.compErr != nil {
		return nil, f.compErr
	}
	return append([]byte(nil), src...), nil
}
func (f *fakeCodec) Decompress(comp []byte) ([]byte, error) {
	if f.decompErr != nil {
		return nil, f.decompErr
	}
	out := append([]byte(nil), comp...)
	if f.corrupt && len(out) > 0 {
		out[0] ^= 0xFF
	}
	return out, nil
}

func TestRoundtrip(t *testing.T) {
	src := []byte("hello world")
	n, err := Roundtrip(&fakeCodec{}, src)
	if err != nil || n != len(src) {
		t.Fatalf("roundtrip: %d %v", n, err)
	}
	if _, err := Roundtrip(&fakeCodec{compErr: errors.New("boom")}, src); err == nil {
		t.Fatal("compress error swallowed")
	}
	if _, err := Roundtrip(&fakeCodec{decompErr: errors.New("boom")}, src); err == nil {
		t.Fatal("decompress error swallowed")
	}
	if _, err := Roundtrip(&fakeCodec{corrupt: true}, src); err == nil {
		t.Fatal("corruption not detected")
	}
	if !bytes.Contains([]byte("fake: roundtrip mismatch"), []byte("fake")) {
		t.Fatal("sanity")
	}
}
