package compress

import (
	"errors"
	"testing"
)

func TestTaxonomyRefinement(t *testing.T) {
	for _, refined := range []error{ErrTruncated, ErrBadMagic, ErrVersion} {
		if !errors.Is(refined, ErrCorrupt) {
			t.Errorf("%v should refine ErrCorrupt", refined)
		}
	}
	if errors.Is(ErrLimitExceeded, ErrCorrupt) {
		t.Error("ErrLimitExceeded must not imply corrupt input")
	}
	if errors.Is(ErrCorrupt, ErrTruncated) {
		t.Error("refinement must not run upward")
	}
}

func TestErrorf(t *testing.T) {
	err := Errorf(ErrTruncated, "lz4: need %d bytes, have %d", 8, 3)
	if !errors.Is(err, ErrTruncated) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Errorf lost the sentinel chain: %v", err)
	}
	if got := err.Error(); got != "lz4: need 8 bytes, have 3: compress: truncated data" {
		t.Fatalf("message: %q", got)
	}
}

func TestOutputCap(t *testing.T) {
	var def DecodeLimits
	if got := def.OutputCap(0); got != expansionSlack {
		t.Fatalf("empty-input cap %d, want slack %d", got, expansionSlack)
	}
	if got := def.OutputCap(10); got != 10*DefaultMaxExpansionRatio+expansionSlack {
		t.Fatalf("small-input cap %d", got)
	}
	// Large inputs saturate at the byte cap rather than ratio*len.
	if got := def.OutputCap(1 << 30); got != DefaultMaxOutputBytes {
		t.Fatalf("large-input cap %d, want %d", got, DefaultMaxOutputBytes)
	}
	// Ratio overflow must clamp to the byte cap, not wrap negative.
	big := DecodeLimits{MaxExpansionRatio: 1 << 62}
	if got := big.OutputCap(1 << 20); got != DefaultMaxOutputBytes {
		t.Fatalf("overflow cap %d", got)
	}
	small := DecodeLimits{MaxOutputBytes: 100, MaxExpansionRatio: 2}
	if got := small.OutputCap(5); got != 100 {
		// 5*2+slack exceeds MaxOutputBytes, so the hard cap wins.
		t.Fatalf("tight cap %d", got)
	}
}

func TestCheckDeclared(t *testing.T) {
	lim := DecodeLimits{MaxOutputBytes: 4096, MaxExpansionRatio: 4}
	if err := lim.CheckDeclared(40, 10); err != nil {
		t.Fatalf("honest declaration rejected: %v", err)
	}
	err := lim.CheckDeclared(1<<40, 10)
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("tampered declaration: %v", err)
	}
}

// postHoc has no DecompressLimits; the dispatcher must bound it after the fact.
type postHoc struct{ out int }

func (p postHoc) Name() string                        { return "posthoc" }
func (p postHoc) Compress(src []byte) ([]byte, error) { return src, nil }
func (p postHoc) Decompress(comp []byte) ([]byte, error) {
	return make([]byte, p.out), nil
}

func TestDecompressLimitsFallback(t *testing.T) {
	lim := DecodeLimits{MaxOutputBytes: 64, MaxExpansionRatio: 1 << 40}
	if _, err := DecompressLimits(postHoc{out: 32}, []byte{1, 2, 3}, lim); err != nil {
		t.Fatalf("in-bounds output rejected: %v", err)
	}
	_, err := DecompressLimits(postHoc{out: 128}, []byte{1, 2, 3}, lim)
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("oversized output: %v", err)
	}
}
