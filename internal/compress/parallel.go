package compress

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"positbench/internal/trace"
)

// Parallel execution engine for the streaming layer. ParallelWriter and
// ParallelReader speak exactly the chunked container of Writer/Reader
// (uvarint compressed-chunk length prefixes, zero-length terminator), so the
// serial and parallel paths are interchangeable on the wire: a stream
// written by either is read by either, byte for byte.
//
// Ordering guarantee: chunks are compressed out of order across a bounded
// worker pool but frames are emitted strictly in submission order, so for a
// deterministic codec the parallel output is byte-identical to the serial
// output at the same chunk size.
//
// Memory bound: at most workers+1 chunks are in flight on either side (one
// filling/draining plus the pool's queue), so peak buffering is
// O(workers x chunkSize) plus the compressed copies of those same chunks.
//
// Error semantics: first error in stream order wins and is sticky,
// matching the serial path; ErrCorrupt/ErrTruncated/ErrLimitExceeded
// surface identically because both paths share the same frame parser and
// per-chunk DecompressLimits call.

// pwJob is one chunk moving through the writer's pool: src is the raw
// chunk, comp/err the compression result. ready (capacity 1) receives one
// token when comp is set; jobs are recycled through a pool, carrying both
// their src and comp buffers with them so steady-state compression reuses
// them. Pooling the buffers inside the job (a pointer) rather than as bare
// slices keeps the recycle path allocation-free: boxing a slice header into
// an interface would itself allocate per chunk.
type pwJob struct {
	src       []byte
	comp      []byte
	err       error
	ready     chan struct{}
	submitted time.Time   // when submit() enqueued the job (queue-wait metric)
	span      *trace.Span // per-chunk span; nil when the stream is untraced
}

// ParallelWriter compresses a stream chunk by chunk on a work-stealing
// scheduler, emitting frames in order. It is not safe for concurrent Write
// calls (like any io.Writer); the parallelism is internal.
type ParallelWriter struct {
	codec   Codec
	dst     io.Writer
	chunk   int
	workers int
	ctx     context.Context

	span *trace.Span // request span from the context; parents the chunk spans
	seq  int         // chunk index, for span labels

	cur     *pwJob               // chunk currently being filled by Write
	order   chan *pwJob          // submission order; capacity bounds in-flight chunks
	sched   *wsScheduler[*pwJob] // work-stealing compressors
	done    chan struct{}
	jobPool sync.Pool                   // pwJob shells with their ready channel and buffers
	hdr     [binary.MaxVarintLen64]byte // frame-header scratch for the emitter

	mu     sync.Mutex
	err    error
	closed bool

	// Index sink (opt-in). pos is the absolute stream offset of the next
	// frame; it is touched only by the emitter goroutine while the stream
	// flows and read by Close after <-w.done, which is the happens-before
	// edge that makes the handoff safe.
	sink IndexSink
	pos  int64

	// serial, when non-nil, replaces the whole scheduler: on a host where
	// the engine cannot overlap chunk compression with anything (one
	// worker, or one CPU), the scheduler shape only adds handoffs over the
	// buffer-reusing serial Writer, so construction falls back to it and
	// every method delegates. See NewParallelWriterContext.
	serial *Writer
}

// NewParallelWriter returns a parallel streaming compressor writing to dst.
// chunkSize <= 0 selects DefaultChunkSize; workers <= 0 selects
// runtime.GOMAXPROCS(0). With workers == 1 the output is still produced by
// a pool of one, byte-identical to the serial Writer. Close must be called
// to terminate the stream and release the pool's goroutines.
func NewParallelWriter(codec Codec, dst io.Writer, chunkSize, workers int) *ParallelWriter {
	return NewParallelWriterContext(context.Background(), codec, dst, chunkSize, workers)
}

// NewParallelWriterContext is NewParallelWriter bound to a context: once ctx
// is cancelled, pending chunks are skipped instead of compressed, the
// context error becomes the writer's sticky error, and Close still reclaims
// every goroutine. Serving paths use this so an abandoned request cannot
// leave a worker pool compressing for nobody.
func NewParallelWriterContext(ctx context.Context, codec Codec, dst io.Writer, chunkSize, workers int) *ParallelWriter {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || runtime.GOMAXPROCS(0) == 1 {
		// One worker — or one CPU, however many workers were asked for —
		// cannot overlap chunk compression with anything: the scheduler
		// shape only adds handoffs, goroutine switches, and per-chunk
		// buffer copies over the serial path, a measured regression on the
		// 1-CPU reference box. Delegate to the serial Writer, which reuses
		// its buffers across chunks; output is byte-identical.
		sw := NewWriter(codec, dst, chunkSize)
		sw.SetSpan(trace.FromContext(ctx))
		return &ParallelWriter{ctx: ctx, serial: sw}
	}
	w := &ParallelWriter{
		codec:   codec,
		dst:     dst,
		chunk:   chunkSize,
		workers: workers,
		ctx:     ctx,
		span:    trace.FromContext(ctx),
		order:   make(chan *pwJob, workers),
		done:    make(chan struct{}),
	}
	w.jobPool.New = func() interface{} { return &pwJob{ready: make(chan struct{}, 1)} }
	// Deque depth covers the whole in-flight bound (order's capacity plus
	// the job the emitter holds), so a push never fails even if stealing
	// concentrates the backlog on one deque.
	w.sched = newWorkStealing(workers, workers+2, 0, w.runJob)
	go w.emitter()
	return w
}

// SerialFallback reports whether the writer delegates to the serial path
// instead of running a scheduler — true with one worker or on a 1-CPU
// host, where parallelism cannot pay for its own handoffs.
func (w *ParallelWriter) SerialFallback() bool { return w.serial != nil }

// SetIndexSink attaches sink to receive the frame layout as it is emitted;
// Close then appends the sink's trailer after the stream terminator. Call
// it before the first Write. A nil sink (the default) leaves the output
// byte-identical to an unindexed stream. On CloseWithError or context
// cancellation no trailer is written — a poisoned stream must not grow a
// tail that makes it look seekable.
func (w *ParallelWriter) SetIndexSink(sink IndexSink) {
	if w.serial != nil {
		w.serial.SetIndexSink(sink)
		return
	}
	w.sink = sink
}

// runJob compresses one chunk on a scheduler worker.
func (w *ParallelWriter) runJob(worker int, stolen bool, job *pwJob) {
	engine.queueDepth.Add(-1)
	wait := time.Since(job.submitted)
	engine.queueWaitNS.Add(int64(wait))
	job.span.AddStage("queue-wait", wait, 0, 0)
	if job.span != nil {
		job.span.Annotate("worker", strconv.Itoa(worker))
		if stolen {
			job.span.Annotate("stolen", "1")
		}
	}
	if err := w.ctx.Err(); err != nil {
		job.err = err
	} else {
		engine.workersBusy.Add(1)
		t0 := time.Now()
		cs := job.span.Child("compress")
		job.comp, job.err = CompressAppendTrace(w.codec, job.comp[:0], job.src, cs)
		cs.SetBytes(int64(len(job.src)), int64(len(job.comp)))
		cs.End()
		engine.workersBusy.Add(-1)
		engine.compressBusyNS.Add(int64(time.Since(t0)))
		if job.err == nil {
			engine.compressChunks.Add(1)
			engine.compressBytesIn.Add(int64(len(job.src)))
			engine.compressBytesOut.Add(int64(len(job.comp)))
		}
	}
	job.ready <- struct{}{}
}

// emitter writes frames in submission order. After the first error it keeps
// draining so blocked producers and compressors always make progress, but
// emits nothing further.
func (w *ParallelWriter) emitter() {
	defer close(w.done)
	for job := range w.order {
		<-job.ready
		if err := w.firstErr(); err == nil {
			if job.err != nil {
				w.setErr(job.err)
			} else {
				var t0 time.Time
				if job.span != nil {
					t0 = time.Now()
				}
				n, err := writeFrame(w.dst, w.hdr[:], job.comp)
				if job.span != nil {
					job.span.AddStage("frame-write", time.Since(t0), 0, int64(len(job.comp)))
				}
				if err == nil {
					w.pos += n
					if w.sink != nil {
						w.sink.AddChunk(w.pos-int64(len(job.comp)), job.comp, len(job.src))
					}
				}
				w.setErr(err)
			}
		}
		if job.span != nil {
			if job.err != nil {
				job.span.Annotate("error", job.err.Error())
			}
			job.span.SetBytes(int64(len(job.src)), int64(len(job.comp)))
			job.span.End()
		}
		job.src, job.err, job.span = job.src[:0], nil, nil
		w.jobPool.Put(job)
	}
}

// writeFrame emits one chunk frame: uvarint(len+1) then the payload,
// returning the total bytes written so the writers can track absolute frame
// offsets for an IndexSink. hdr is the caller's persistent scratch (len >=
// binary.MaxVarintLen64): a local array would escape through the io.Writer
// interface and cost an allocation per frame.
func writeFrame(dst io.Writer, hdr, comp []byte) (int64, error) {
	n := binary.PutUvarint(hdr, uint64(len(comp))+1) // +1: 0 is the terminator
	if _, err := dst.Write(hdr[:n]); err != nil {
		return 0, err
	}
	if _, err := dst.Write(comp); err != nil {
		return int64(n), err
	}
	return int64(n) + int64(len(comp)), nil
}

func (w *ParallelWriter) setErr(err error) {
	if err == nil {
		return
	}
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

func (w *ParallelWriter) firstErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Write implements io.Writer. A compression or sink error from an earlier
// chunk surfaces on the next Write (or at Close) and is sticky.
func (w *ParallelWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("compress: write after Close")
	}
	if err := w.ctx.Err(); err != nil {
		w.setErr(err)
		return 0, err
	}
	if err := w.firstErr(); err != nil {
		return 0, err
	}
	if w.serial != nil {
		n, err := w.serial.Write(p)
		w.setErr(err)
		return n, err
	}
	if w.cur == nil {
		w.cur = w.jobPool.Get().(*pwJob)
	}
	total := len(p)
	for len(p) > 0 {
		room := w.chunk - len(w.cur.src)
		if room > len(p) {
			room = len(p)
		}
		w.cur.src = append(w.cur.src, p[:room]...)
		p = p[room:]
		if len(w.cur.src) == w.chunk {
			w.submit()
			if len(p) > 0 {
				w.cur = w.jobPool.Get().(*pwJob)
			}
		}
	}
	return total, nil
}

// submit hands the current chunk to the scheduler. Sending on order first
// preserves emission order; its capacity is the back-pressure bound.
func (w *ParallelWriter) submit() {
	job := w.cur
	w.cur = nil
	if w.span.Enabled() {
		job.span = w.span.Child("chunk")
		job.span.Annotate("idx", strconv.Itoa(w.seq))
	}
	w.seq++
	job.submitted = time.Now()
	w.order <- job
	engine.queueDepth.Add(1)
	w.sched.submit(job)
}

// Close flushes the final chunk, waits for the scheduler to drain, writes
// the stream terminator, and releases all goroutines. It is idempotent.
func (w *ParallelWriter) Close() error {
	if w.closed {
		return w.firstErr()
	}
	w.closed = true
	if w.serial != nil {
		if err := w.ctx.Err(); err != nil {
			w.setErr(err)
		}
		if err := w.firstErr(); err != nil {
			// Poisoned (CloseWithError or an earlier failure): the pending
			// partial chunk and the terminator are NOT emitted, exactly as
			// on the scheduler path.
			return err
		}
		err := w.serial.Close()
		w.setErr(err)
		return err
	}
	if w.cur != nil && len(w.cur.src) > 0 {
		w.submit()
	}
	close(w.order)
	w.sched.close()
	<-w.done
	if err := w.ctx.Err(); err != nil {
		w.setErr(err)
	}
	if err := w.firstErr(); err != nil {
		return err
	}
	_, err := w.dst.Write([]byte{0})
	if err == nil && w.sink != nil {
		_, err = w.sink.WriteTrailer(w.dst)
	}
	w.setErr(err)
	return err
}

// CloseWithError poisons the writer with err and then closes it: the
// pending partial chunk and the stream terminator are NOT emitted, and the
// pool is released. Serving paths use it to abandon a stream whose source
// failed, so a broken upload cannot flush a tail that masquerades as a
// valid stream. Frames already emitted before the error stay on the wire —
// the caller owns signalling the abort downstream.
func (w *ParallelWriter) CloseWithError(err error) error {
	if err == nil {
		return w.Close()
	}
	w.setErr(err)
	return w.Close()
}

// prSlot is one chunk moving through the reader's pool, in stream order.
// ready (capacity 1) receives one token when out is resolved. Slots are
// recycled once Read has fully drained them, carrying their comp and out
// buffers so steady-state streaming reuses both.
type prSlot struct {
	comp    []byte
	out     []byte
	err     error // io.EOF marks the clean end of stream
	ready   chan struct{}
	fetched time.Time   // when the fetcher enqueued the slot (queue-wait metric)
	span    *trace.Span // per-chunk span; nil when the stream is untraced
}

// ParallelReader decompresses a chunked stream with read-ahead workers:
// frames are fetched and decompressed concurrently while Read returns
// bytes strictly in stream order. It is not safe for concurrent Read
// calls; the parallelism is internal.
type ParallelReader struct {
	ctx      context.Context
	span     *trace.Span // request span from the context; parents the chunk spans
	seq      int         // chunk index, for span labels
	slots    chan *prSlot
	sched    *wsScheduler[*prSlot] // work-stealing decompressors
	stop     chan struct{}
	once     sync.Once
	finished chan struct{} // closed once the pool has fully drained
	finOnce  sync.Once
	wg       sync.WaitGroup // the fetcher; scheduler workers have their own

	buf      []byte
	cur      *prSlot // slot whose out buffer buf aliases; recycled when drained
	slotPool sync.Pool
	err      error

	// serial, when non-nil, replaces the whole pool: with one worker the
	// pipeline cannot overlap anything, so construction falls back to the
	// buffer-reusing serial Reader and every method delegates to it. See
	// NewParallelReaderContext.
	serial *Reader
}

// NewParallelReader returns a parallel streaming decompressor over src with
// default decode limits. workers <= 0 selects runtime.GOMAXPROCS(0).
func NewParallelReader(codec Codec, src io.Reader, workers int) *ParallelReader {
	return NewParallelReaderLimits(codec, src, DecodeLimits{}, workers)
}

// NewParallelReaderLimits returns a parallel streaming decompressor that
// enforces lim on every chunk, exactly as the serial Reader does. The
// reader shuts its pool down on EOF or first error; call Close to release
// it early when abandoning a stream mid-read.
func NewParallelReaderLimits(codec Codec, src io.Reader, lim DecodeLimits, workers int) *ParallelReader {
	return NewParallelReaderContext(context.Background(), codec, src, lim, workers)
}

// NewParallelReaderContext is NewParallelReaderLimits bound to a context:
// once ctx is cancelled the read-ahead pool stops fetching and decoding,
// Read surfaces the context error, and the pool's goroutines exit without
// waiting for EOF. Serving paths use this so request cancellation cannot
// leak in-flight decode workers.
func NewParallelReaderContext(ctx context.Context, codec Codec, src io.Reader, lim DecodeLimits, workers int) *ParallelReader {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || runtime.GOMAXPROCS(0) == 1 {
		// One worker cannot overlap fetch with decode: the scheduler shape
		// only adds handoffs, goroutine switches, and per-chunk buffer
		// copies over the serial path. The same holds on a 1-CPU host
		// (GOMAXPROCS=1) no matter how many workers were requested, for
		// EVERY codec: extra workers cannot add CPU, so the ready-channel
		// round-trip and prSlot churn are pure overhead — a measured
		// regression for bzip2/fpc32/fpc-posit at workers=4, not just the
		// light lz4/zstd class the old policy special-cased. Delegate to
		// the serial Reader, which reuses its buffers across chunks. Error
		// taxonomy and limits are identical — both paths share
		// readFrameInto.
		sr := NewReaderLimits(codec, src, lim)
		sr.SetSpan(trace.FromContext(ctx))
		return &ParallelReader{ctx: ctx, serial: sr}
	}
	r := &ParallelReader{
		ctx:      ctx,
		span:     trace.FromContext(ctx),
		slots:    make(chan *prSlot, workers),
		stop:     make(chan struct{}),
		finished: make(chan struct{}),
	}
	r.slotPool.New = func() interface{} { return &prSlot{ready: make(chan struct{}, 1)} }
	// Deque depth covers the whole in-flight bound (slots' capacity plus
	// the slot Read holds), so a push never fails even if stealing
	// concentrates the backlog on one deque.
	r.sched = newWorkStealing(workers, workers+2, 0, func(worker int, stolen bool, slot *prSlot) {
		r.runSlot(codec, lim, worker, stolen, slot)
	})
	r.wg.Add(1)
	go r.fetch(bufio.NewReader(src), lim)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				r.once.Do(func() { close(r.stop) })
			case <-r.finished:
			}
		}()
	}
	return r
}

// fetch parses frames in stream order, queueing each chunk for
// decompression. The terminal condition (terminator, truncation, limit
// trip, or I/O error) travels as a final pre-resolved slot so Read
// surfaces it after every earlier chunk, matching the serial path.
func (r *ParallelReader) fetch(src *bufio.Reader, lim DecodeLimits) {
	defer r.wg.Done()
	defer close(r.slots)
	for {
		slot := r.slotPool.Get().(*prSlot)
		slot.err, slot.span = nil, nil
		var t0 time.Time
		if r.span.Enabled() {
			t0 = time.Now()
		}
		comp, err := readFrameInto(src, lim, slot.comp[:0])
		if err != nil || comp == nil {
			if err == nil {
				err = io.EOF // clean terminator
			}
			slot.comp = nil
			slot.err = err
			slot.ready <- struct{}{}
			select {
			case r.slots <- slot:
			case <-r.stop:
			}
			return
		}
		slot.comp = comp
		if r.span.Enabled() {
			slot.span = r.span.Child("chunk")
			slot.span.Annotate("idx", strconv.Itoa(r.seq))
			slot.span.AddStage("frame-read", time.Since(t0), int64(len(comp)), 0)
		}
		r.seq++
		slot.fetched = time.Now()
		select {
		case r.slots <- slot:
		case <-r.stop:
			return
		}
		// The scheduler executes every submitted slot — resolving it with
		// the shutdown error if r.stop closed first — so the old hazard of
		// a slot visible on r.slots that no worker will ever touch cannot
		// occur: submit here never blocks and never drops.
		engine.queueDepth.Add(1)
		r.sched.submit(slot)
	}
}

// SerialFallback reports whether the reader delegates to the serial path
// instead of running a scheduler — true with one worker or on a 1-CPU
// host, where parallelism cannot pay for its own handoffs.
func (r *ParallelReader) SerialFallback() bool { return r.serial != nil }

// runSlot decompresses one chunk on a scheduler worker.
func (r *ParallelReader) runSlot(codec Codec, lim DecodeLimits, worker int, stolen bool, slot *prSlot) {
	engine.queueDepth.Add(-1)
	wait := time.Since(slot.fetched)
	engine.queueWaitNS.Add(int64(wait))
	slot.span.AddStage("queue-wait", wait, 0, 0)
	if slot.span != nil {
		slot.span.Annotate("worker", strconv.Itoa(worker))
		if stolen {
			slot.span.Annotate("stolen", "1")
		}
	}
	select {
	case <-r.stop:
		slot.err = r.closedErr()
	default:
		engine.workersBusy.Add(1)
		t0 := time.Now()
		ds := slot.span.Child("decompress")
		slot.out, slot.err = DecompressAppendLimitsTrace(codec, slot.out[:0], slot.comp, lim, ds)
		ds.SetBytes(int64(len(slot.comp)), int64(len(slot.out)))
		ds.End()
		engine.workersBusy.Add(-1)
		engine.decompressBusyNS.Add(int64(time.Since(t0)))
		if slot.err == nil {
			engine.decompressChunks.Add(1)
			engine.decompressBytesIn.Add(int64(len(slot.comp)))
			engine.decompressBytesOut.Add(int64(len(slot.out)))
		}
	}
	if slot.span != nil {
		if slot.err != nil {
			slot.span.Annotate("error", slot.err.Error())
		}
		slot.span.SetBytes(int64(len(slot.comp)), int64(len(slot.out)))
		slot.span.End()
	}
	slot.ready <- struct{}{}
}

// readFrameInto reads one chunk frame into buf (reusing its capacity),
// returning the compressed payload or (nil, nil) at the stream terminator.
// Errors carry the same taxonomy as the serial path.
func readFrameInto(src *bufio.Reader, lim DecodeLimits, buf []byte) ([]byte, error) {
	length, err := binary.ReadUvarint(src)
	if err != nil {
		if err == io.EOF {
			return nil, Errorf(ErrTruncated, "compress: missing stream terminator")
		}
		return nil, err
	}
	if length == 0 {
		return nil, nil
	}
	compLen := length - 1
	// A compressed chunk cannot usefully exceed the output cap by more than
	// the worst-case incompressible overhead; a tampered prefix past that is
	// rejected before any proportional allocation.
	maxOut := lim.MaxOutputBytes
	if maxOut <= 0 {
		maxOut = DefaultMaxOutputBytes
	}
	if compLen > uint64(maxOut)+uint64(expansionSlack) {
		return nil, Errorf(ErrLimitExceeded, "compress: chunk declares %d compressed bytes, limit %d", compLen, maxOut)
	}
	// The buffer grows geometrically with the bytes actually read, never all
	// at once from the declared length, so a tampered prefix on a short
	// stream costs nothing. A pooled buffer that has reached the steady-state
	// chunk size reads in one ReadFull with no allocation.
	need := int(compLen)
	buf = buf[:0]
	for len(buf) < need {
		if len(buf) == cap(buf) {
			grow := 2 * cap(buf)
			if grow < 4096 {
				grow = 4096
			}
			if grow > need {
				grow = need
			}
			nb := make([]byte, len(buf), grow)
			copy(nb, buf)
			buf = nb
		}
		end := cap(buf)
		if end > need {
			end = need
		}
		n, err := io.ReadFull(src, buf[len(buf):end])
		buf = buf[:len(buf)+n]
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, Errorf(ErrTruncated, "compress: chunk body: %d of %d bytes", len(buf), need)
			}
			return nil, fmt.Errorf("compress: chunk body: %w", err)
		}
	}
	return buf, nil
}

// closedErr is the sticky error for reads that raced pool shutdown: the
// context error when cancellation triggered it, a generic message when
// Close did.
func (r *ParallelReader) closedErr() error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("compress: parallel reader closed")
}

// Read implements io.Reader. The first error in stream order is sticky and
// shuts the pool down; a clean end of stream returns io.EOF likewise.
func (r *ParallelReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.serial != nil {
		// Single-worker fallback. The pool path surfaces cancellation and
		// keeps the first error sticky; mirror both so callers cannot tell
		// the modes apart.
		if err := r.ctx.Err(); err != nil {
			r.err = err
			return 0, r.err
		}
		n, err := r.serial.Read(p)
		if err != nil {
			r.err = err
		}
		return n, err
	}
	for len(r.buf) == 0 {
		if r.cur != nil {
			// The previous chunk is fully drained; its buffers go back to
			// the fetcher for reuse. Callers only ever saw copies.
			r.cur.span = nil // the span was ended by the decompressor
			r.slotPool.Put(r.cur)
			r.cur = nil
		}
		slot, ok := <-r.slots
		if !ok { // only after Close or context cancellation
			if err := r.ctx.Err(); err != nil {
				r.err = err
				r.shutdown()
			} else {
				r.err = fmt.Errorf("compress: read after Close")
			}
			return 0, r.err
		}
		<-slot.ready
		if slot.err != nil {
			r.err = slot.err
			r.shutdown()
			return 0, r.err
		}
		r.cur = slot
		r.buf = slot.out
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

func (r *ParallelReader) shutdown() {
	r.once.Do(func() { close(r.stop) })
	// Unblock any pending slots so the fetcher can exit, then wait for it;
	// only then is the scheduler quiescent (no more submits) and safe to
	// close, which drains every submitted slot. After shutdown returns, no
	// goroutines remain.
	go func() {
		for range r.slots {
		}
	}()
	r.wg.Wait()
	r.sched.close()
	r.finOnce.Do(func() { close(r.finished) })
}

// Close releases the read-ahead pool without consuming the rest of the
// stream. It is safe after EOF or an error, and idempotent.
func (r *ParallelReader) Close() error {
	if r.err == nil {
		r.err = fmt.Errorf("compress: read after Close")
	}
	if r.serial != nil {
		return nil
	}
	r.shutdown()
	return nil
}

var (
	_ io.WriteCloser = (*ParallelWriter)(nil)
	_ io.ReadCloser  = (*ParallelReader)(nil)
)
