// Package bzip2c implements the bzip2-class codec: RLE1, then per-block
// Burrows-Wheeler transform, move-to-front, RUNA/RUNB zero-run coding, and
// canonical Huffman. This is the algorithm family behind the paper's one
// counterintuitive result: block sorting groups the two's-complement regime
// bytes of posit data, so bzip2 compresses posits *better* than floats.
//
// Blocks are compressed independently with stage-level pipeline
// parallelism: three goroutines each own one stage (bwt | mtf+rle2 |
// huffman on encode, huffman | mtf | bwt-inverse on decode) and blocks
// flow through them in order, so block i's Huffman coding overlaps block
// i+1's MTF and block i+2's BWT. The goroutine count is fixed at three per
// call — not one per block as before — and output is deterministic
// regardless of scheduling; single-block and one-CPU calls run the stages
// inline with no goroutines at all.
package bzip2c

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"positbench/internal/bitio"
	"positbench/internal/bwt"
	"positbench/internal/compress"
	"positbench/internal/huffman"
	"positbench/internal/mtf"
	"positbench/internal/trace"
)

const (
	// DefaultBlockSize mirrors bzip2 -9's 900 kB blocks.
	DefaultBlockSize = 900 * 1000
	eobSymbol        = 257 // alphabet: RUNA, RUNB, 2..256 (bytes 1..255), EOB
	alphabetSize     = 258
)

// Codec is the bzip2-class compressor.
type Codec struct {
	blockSize int
}

// New returns a codec with bzip2 -9 block size (the --best setting).
func New() *Codec { return &Codec{blockSize: DefaultBlockSize} }

// NewBlockSize returns a codec with a custom block size.
func NewBlockSize(n int) *Codec {
	if n < 1024 {
		n = 1024
	}
	return &Codec{blockSize: n}
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return "bzip2" }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	return compress.Info{Name: "bzip2", Version: "bwt-block", Source: "models bzip2 1.1.0 -9 (RLE1+BWT+MTF+RLE2+Huffman, 900 kB blocks)"}
}

// stageClock accumulates per-stage CPU time across the block workers.
// Blocks compress in parallel, so the sums are CPU-like (they can exceed
// wall time); the traced entry points export them as completed stage spans.
// A nil clock keeps the untraced path free of time.Now calls.
type stageClock struct {
	bwtNS  atomic.Int64
	mtfNS  atomic.Int64
	huffNS atomic.Int64
}

func (sc *stageClock) add(dst *atomic.Int64, since time.Time) time.Time {
	now := time.Now()
	dst.Add(now.Sub(since).Nanoseconds())
	return now
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	return c.compress(src, nil, nil)
}

// CompressAppendTrace implements compress.TracedCompressor: same output as
// Compress, plus rle1 / bwt / mtf-rle2 / huffman stage spans on sp.
func (c *Codec) CompressAppendTrace(dst, src []byte, sp *trace.Span) ([]byte, error) {
	out, err := c.compress(src, sp, new(stageClock))
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}

func (c *Codec) compress(src []byte, sp *trace.Span, sc *stageClock) ([]byte, error) {
	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	pre := mtf.RLE1(src)
	var rle1 time.Duration
	if sc != nil {
		rle1 = time.Since(t0)
	}
	var blocks []encBlock
	for off := 0; off < len(pre); off += c.blockSize {
		end := off + c.blockSize
		if end > len(pre) {
			end = len(pre)
		}
		blocks = append(blocks, encBlock{block: pre[off:end]})
	}
	pipeline(len(blocks),
		func(i int) { blocks[i].bwtStage(sc) },
		func(i int) { blocks[i].mtfStage(sc) },
		func(i int) { blocks[i].huffStage(sc) },
	)
	for i := range blocks {
		if err := blocks[i].err; err != nil {
			return nil, err
		}
	}
	out := bitio.PutUvarint(nil, uint64(len(src)))
	out = bitio.PutUvarint(out, uint64(len(blocks)))
	for i := range blocks {
		out = bitio.PutUvarint(out, uint64(len(blocks[i].out)))
		out = append(out, blocks[i].out...)
	}
	if sp != nil && sc != nil {
		sp.AddStage("rle1", rle1, int64(len(src)), int64(len(pre)))
		sp.AddStage("bwt", time.Duration(sc.bwtNS.Load()), int64(len(pre)), 0)
		sp.AddStage("mtf-rle2", time.Duration(sc.mtfNS.Load()), 0, 0)
		sp.AddStage("huffman", time.Duration(sc.huffNS.Load()), 0, int64(len(out)))
	}
	return out, nil
}

// pipeline runs three stage functions over n blocks with stage-level
// overlap: stage 2 works on block i while stage 1 transforms block i+1 and
// stage 3 codes block i-1. The channels carry only block indexes, and each
// stage owns a block's state exclusively between its receive and its send,
// so the per-block states need no locking. Cost is fixed at three
// goroutines and two capacity-1 channels however many blocks flow through;
// with one block — or one CPU, where overlap cannot buy anything — the
// stages run inline on the caller's goroutine, byte-identical because the
// stages themselves are deterministic and assembly is in block order.
func pipeline(n int, s1, s2, s3 func(int)) {
	if n == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i := 0; i < n; i++ {
			s1(i)
			s2(i)
			s3(i)
		}
		return
	}
	c12 := make(chan int, 1)
	c23 := make(chan int, 1)
	done := make(chan struct{})
	go func() {
		defer close(c12)
		for i := 0; i < n; i++ {
			s1(i)
			c12 <- i
		}
	}()
	go func() {
		defer close(c23)
		for i := range c12 {
			s2(i)
			c23 <- i
		}
	}()
	go func() {
		defer close(done)
		for i := range c23 {
			s3(i)
		}
	}()
	<-done
}

// encBlock is one block moving through the encode pipeline; exactly one
// stage touches it at a time.
type encBlock struct {
	block   []byte // input (a window of the RLE1 stream)
	last    []byte // BWT output
	primary int
	syms    []uint16 // MTF + zero-run symbols, EOB-terminated
	out     []byte   // encoded block
	err     error
}

func (b *encBlock) bwtStage(sc *stageClock) {
	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	b.last, b.primary = bwt.Transform(b.block)
	if sc != nil {
		sc.add(&sc.bwtNS, t0)
	}
}

func (b *encBlock) mtfStage(sc *stageClock) {
	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	b.syms = append(mtf.EncodeZeroRuns(mtf.Encode(b.last)), eobSymbol)
	b.last = nil
	if sc != nil {
		sc.add(&sc.mtfNS, t0)
	}
}

func (b *encBlock) huffStage(sc *stageClock) {
	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	b.out, b.err = huffEncodeBlock(b.block, b.primary, b.syms)
	b.syms = nil
	if sc != nil {
		sc.add(&sc.huffNS, t0) // table build + selectors + symbol coding
	}
}

// groupSize is bzip2's symbol-group granularity for Huffman table
// switching.
const groupSize = 50

// numTables picks how many Huffman tables to use, following bzip2.
func numTables(nSyms int) int {
	switch {
	case nSyms < 200:
		return 2
	case nSyms < 600:
		return 3
	case nSyms < 1200:
		return 4
	case nSyms < 2400:
		return 5
	default:
		return 6
	}
}

// huffEncodeBlock is the encode pipeline's final stage: train the Huffman
// tables on the block's symbol stream and write the block payload.
func huffEncodeBlock(block []byte, primary int, syms []uint16) ([]byte, error) {
	nGroups := numTables(len(syms))
	nSel := (len(syms) + groupSize - 1) / groupSize
	// Initialize one table per contiguous chunk of the symbol stream, then
	// refine with a few assign-groups / rebuild-tables iterations (bzip2's
	// scheme). Post-BWT statistics drift along the block, so local tables
	// beat one global table.
	tables := make([][]uint8, nGroups)
	chunk := (len(syms) + nGroups - 1) / nGroups
	for t := 0; t < nGroups; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > len(syms) {
			hi = len(syms)
		}
		freqs := make([]int, alphabetSize)
		for _, s := range syms[lo:hi] {
			freqs[s]++
		}
		freqs[eobSymbol]++ // every table must be able to code EOB
		var err error
		tables[t], err = huffman.BuildLengths(freqs, huffman.MaxBits)
		if err != nil {
			return nil, err
		}
	}
	selectors := make([]int, nSel)
	for iter := 0; iter < 4; iter++ {
		// Assign each group its cheapest table.
		freqsPer := make([][]int, nGroups)
		for t := range freqsPer {
			freqsPer[t] = make([]int, alphabetSize)
		}
		for g := 0; g < nSel; g++ {
			lo, hi := g*groupSize, (g+1)*groupSize
			if hi > len(syms) {
				hi = len(syms)
			}
			bestT, bestCost := 0, int(^uint(0)>>1)
			for t := 0; t < nGroups; t++ {
				cost := 0
				for _, s := range syms[lo:hi] {
					l := int(tables[t][s])
					if l == 0 {
						l = 32 // unusable code: huge penalty
					}
					cost += l
				}
				if cost < bestCost {
					bestT, bestCost = t, cost
				}
			}
			selectors[g] = bestT
			for _, s := range syms[lo:hi] {
				freqsPer[bestT][s]++
			}
		}
		// Rebuild tables from their assigned groups.
		for t := 0; t < nGroups; t++ {
			freqsPer[t][eobSymbol]++
			var err error
			tables[t], err = huffman.BuildLengths(freqsPer[t], huffman.MaxBits)
			if err != nil {
				return nil, err
			}
		}
	}
	encs := make([]*huffman.Encoder, nGroups)
	for t := range tables {
		var err error
		encs[t], err = huffman.NewEncoder(tables[t])
		if err != nil {
			return nil, err
		}
	}

	w := bitio.NewWriter(len(block)/3 + 64)
	hdr := bitio.PutUvarint(nil, uint64(primary))
	hdr = bitio.PutUvarint(hdr, uint64(len(block)))
	hdr = bitio.PutUvarint(hdr, uint64(len(syms)))
	hdr = append(hdr, byte(nGroups))
	w.WriteBytes(hdr)
	for _, tbl := range tables {
		if err := huffman.WriteLengths(w, tbl); err != nil {
			return nil, err
		}
	}
	// Selectors, MTF-transformed then unary-coded (bzip2's format): table
	// switches are rare, so most selectors cost one bit.
	mtfOrder := make([]int, nGroups)
	for i := range mtfOrder {
		mtfOrder[i] = i
	}
	for _, sel := range selectors {
		j := 0
		for mtfOrder[j] != sel {
			j++
		}
		for i := 0; i < j; i++ {
			w.WriteBit(1)
		}
		w.WriteBit(0)
		copy(mtfOrder[1:j+1], mtfOrder[:j])
		mtfOrder[0] = sel
	}
	for i, s := range syms {
		enc := encs[selectors[i/groupSize]]
		enc.Encode(w, int(s))
	}
	return w.Bytes(), nil
}

// Decompress implements compress.Codec with default decode limits.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited. Block headers are validated
// against the input length before the block table is allocated, each worker
// converts panics on hostile data into errors (a panic in a goroutine would
// otherwise kill the process, bypassing any recover in the caller), and the
// RLE1 expansion is capped by lim.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	return c.decompress(comp, lim, nil, nil)
}

// DecompressAppendLimitsTrace implements compress.TracedDecompressor,
// attaching huffman / mtf / bwt-inverse / rle1-inverse stage spans to sp.
func (c *Codec) DecompressAppendLimitsTrace(dst, comp []byte, lim compress.DecodeLimits, sp *trace.Span) ([]byte, error) {
	out, err := c.decompress(comp, lim, sp, new(stageClock))
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}

// decodeClock reuses stageClock fields for the inverse pipeline: bwtNS
// holds bwt.Inverse time, mtfNS the RUNA/RUNB+MTF decode, huffNS the table
// reads and symbol decoding.
func (c *Codec) decompress(comp []byte, lim compress.DecodeLimits, sp *trace.Span, sc *stageClock) ([]byte, error) {
	maxOut := lim.OutputCap(len(comp))
	origSize, n, err := bitio.Uvarint(comp)
	if err != nil {
		return nil, fmt.Errorf("bzip2: %w", err)
	}
	if err := lim.CheckDeclared(origSize, len(comp)); err != nil {
		return nil, err
	}
	comp = comp[n:]
	nBlocks, n, err := bitio.Uvarint(comp)
	if err != nil {
		return nil, fmt.Errorf("bzip2: %w", err)
	}
	comp = comp[n:]
	// Each block costs at least one header byte, so a block count beyond the
	// remaining input is corrupt; checking before make() keeps a tampered
	// count from allocating an arbitrarily large table.
	if nBlocks > uint64(len(comp)) {
		return nil, compress.Errorf(compress.ErrCorrupt, "bzip2: %d blocks declared in %d bytes", nBlocks, len(comp))
	}
	blocks := make([][]byte, nBlocks)
	for i := range blocks {
		bl, n, err := bitio.Uvarint(comp)
		if err != nil {
			return nil, fmt.Errorf("bzip2: block %d header: %w", i, err)
		}
		comp = comp[n:]
		if uint64(len(comp)) < bl {
			return nil, compress.Errorf(compress.ErrTruncated, "bzip2: block %d truncated", i)
		}
		blocks[i] = comp[:bl]
		comp = comp[bl:]
	}
	dec := make([]decBlock, nBlocks)
	for i := range dec {
		dec[i].b = blocks[i]
	}
	pipeline(len(dec),
		func(i int) { dec[i].huffStage(maxOut, sc) },
		func(i int) { dec[i].mtfStage(sc) },
		func(i int) { dec[i].bwtStage(sc) },
	)
	for i := range dec {
		if err := dec[i].err; err != nil {
			return nil, fmt.Errorf("bzip2: block %d: %w", i, err)
		}
	}
	total := 0
	for i := range dec {
		total += len(dec[i].out)
	}
	pre := make([]byte, 0, total)
	for i := range dec {
		pre = append(pre, dec[i].out...)
	}
	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	out, err := mtf.UnRLE1Limit(pre, int(maxOut))
	if err != nil {
		return nil, fmt.Errorf("bzip2: %w", err)
	}
	if uint64(len(out)) != origSize {
		return nil, compress.Errorf(compress.ErrCorrupt, "bzip2: size mismatch: got %d want %d", len(out), origSize)
	}
	if sp != nil && sc != nil {
		sp.AddStage("huffman", time.Duration(sc.huffNS.Load()), 0, 0)
		sp.AddStage("mtf", time.Duration(sc.mtfNS.Load()), 0, 0)
		sp.AddStage("bwt-inverse", time.Duration(sc.bwtNS.Load()), 0, int64(len(pre)))
		sp.AddStage("rle1-inverse", time.Since(t0), int64(len(pre)), int64(len(out)))
	}
	return out, nil
}

// decBlock is one block moving through the decode pipeline; exactly one
// stage touches it at a time. Every stage runs behind guard: the input is
// untrusted, and a panic on a pipeline goroutine would kill the process,
// bypassing any recover in the caller.
type decBlock struct {
	b        []byte // encoded block payload
	primary  uint64
	blockLen uint64
	syms     []uint16 // decoded Huffman symbols
	last     []byte   // MTF + zero-run decode output
	out      []byte   // recovered block bytes
	err      error
}

// guard runs f, converting a panic on hostile data into an ErrCorrupt
// error in *err. Skips f entirely once an earlier stage has failed.
func guard(err *error, f func()) {
	if *err != nil {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			*err = compress.Errorf(compress.ErrCorrupt, "decoder panic: %v", p)
		}
	}()
	f()
}

func (d *decBlock) huffStage(maxOut int64, sc *stageClock) {
	guard(&d.err, func() {
		d.syms, d.primary, d.blockLen, d.err = huffDecodeBlock(d.b, maxOut, sc)
		d.b = nil
	})
}

func (d *decBlock) mtfStage(sc *stageClock) {
	guard(&d.err, func() {
		var t0 time.Time
		if sc != nil {
			t0 = time.Now()
		}
		// The fused zero-run + MTF decode must land exactly on blockLen
		// bytes, so blockLen doubles as the allocation bound for hostile
		// RUNA/RUNB streams.
		d.last, d.err = mtf.DecodeRunsMTFLimit(d.syms, int(d.blockLen))
		d.syms = nil
		if d.err == nil && len(d.last) != int(d.blockLen) {
			d.err = compress.Errorf(compress.ErrCorrupt, "block length mismatch: got %d want %d", len(d.last), d.blockLen)
		}
		if sc != nil {
			sc.add(&sc.mtfNS, t0)
		}
	})
}

func (d *decBlock) bwtStage(sc *stageClock) {
	guard(&d.err, func() {
		var t0 time.Time
		if sc != nil {
			t0 = time.Now()
		}
		d.out, d.err = bwt.Inverse(d.last, int(d.primary))
		d.last = nil
		if sc != nil {
			sc.add(&sc.bwtNS, t0)
		}
	})
}

// huffDecodeBlock is the decode pipeline's first stage: parse the block
// header, read the Huffman tables and selectors, and decode the symbol
// stream.
func huffDecodeBlock(b []byte, maxOut int64, sc *stageClock) (_ []uint16, primary, blockLen uint64, _ error) {
	primary, n, err := bitio.Uvarint(b)
	if err != nil {
		return nil, 0, 0, err
	}
	b = b[n:]
	blockLen, n, err = bitio.Uvarint(b)
	if err != nil {
		return nil, 0, 0, err
	}
	b = b[n:]
	nSyms64, n, err := bitio.Uvarint(b)
	if err != nil {
		return nil, 0, 0, err
	}
	b = b[n:]
	if blockLen > 1<<26 {
		return nil, 0, 0, compress.Errorf(compress.ErrCorrupt, "implausible block length %d", blockLen)
	}
	// RLE1 expands runs of exactly 4 by one count byte (at most +25%), so a
	// pre-RLE1 block beyond cap*5/4 cannot belong to an in-limit stream.
	if blockLen > uint64(maxOut)+uint64(maxOut)/4+64 {
		return nil, 0, 0, compress.Errorf(compress.ErrLimitExceeded, "block length %d exceeds decode cap %d", blockLen, maxOut)
	}
	nSyms := int(nSyms64)
	if nSyms < 1 || uint64(nSyms) > 2*blockLen+16 {
		return nil, 0, 0, compress.Errorf(compress.ErrCorrupt, "implausible symbol count %d", nSyms)
	}
	if len(b) < 1 {
		return nil, 0, 0, compress.Errorf(compress.ErrTruncated, "missing table count")
	}
	nGroups := int(b[0])
	b = b[1:]
	if nGroups < 1 || nGroups > 8 {
		return nil, 0, 0, compress.Errorf(compress.ErrCorrupt, "bad table count %d", nGroups)
	}
	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	r := bitio.NewReader(b)
	decs := make([]*huffman.Decoder, nGroups)
	for t := 0; t < nGroups; t++ {
		lengths, err := huffman.ReadLengths(r, alphabetSize)
		if err != nil {
			return nil, 0, 0, err
		}
		decs[t], err = huffman.NewDecoder(lengths)
		if err != nil {
			return nil, 0, 0, err
		}
	}
	nSel := (nSyms + groupSize - 1) / groupSize
	selectors := make([]int, nSel)
	mtfOrder := make([]int, nGroups)
	for i := range mtfOrder {
		mtfOrder[i] = i
	}
	for g := range selectors {
		j := 0
		for {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, 0, 0, err
			}
			if bit == 0 {
				break
			}
			j++
			if j >= nGroups {
				return nil, 0, 0, compress.Errorf(compress.ErrCorrupt, "selector out of range")
			}
		}
		sel := mtfOrder[j]
		selectors[g] = sel
		copy(mtfOrder[1:j+1], mtfOrder[:j])
		mtfOrder[0] = sel
	}
	// One Huffman table serves each 50-symbol group; each group decodes with
	// a single batch call. The spare slot lets every group pass its full
	// span even though the EOB symbol is never stored.
	syms := make([]uint16, nSyms)
	pos, consumed := 0, 0
	sawEOB := false
	for g := 0; g < nSel && consumed < nSyms; g++ {
		want := nSyms - consumed
		if want > groupSize {
			want = groupSize
		}
		k, saw, err := decs[selectors[g]].DecodeBatch(r, syms[pos:pos+want], eobSymbol)
		if err != nil {
			return nil, 0, 0, err
		}
		pos += k
		consumed += k
		if saw {
			consumed++ // the EOB itself
			if consumed != nSyms {
				return nil, 0, 0, compress.Errorf(compress.ErrCorrupt, "early EOB at symbol %d of %d", consumed-1, nSyms)
			}
			sawEOB = true
			break
		}
	}
	if !sawEOB || pos != nSyms-1 {
		return nil, 0, 0, compress.Errorf(compress.ErrCorrupt, "missing EOB")
	}
	syms = syms[:pos]
	if sc != nil {
		sc.add(&sc.huffNS, t0) // table reads + selector + symbol decode
	}
	return syms, primary, blockLen, nil
}

var _ compress.Codec = (*Codec)(nil)
var _ compress.Describer = (*Codec)(nil)
var _ compress.Limited = (*Codec)(nil)
var _ compress.TracedCompressor = (*Codec)(nil)
var _ compress.TracedDecompressor = (*Codec)(nil)
