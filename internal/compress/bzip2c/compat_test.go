package bzip2c

import (
	"bytes"
	"compress/bzip2"
	"io"
	"math/rand"
	"testing"

	"positbench/internal/compress/codectest"
)

// The compat codec's Decompress is the standard library's reference bzip2
// decoder, so the whole conformance suite cross-validates our encoder
// against an independent implementation of the format.
func TestCompatConformance(t *testing.T) {
	codectest.Run(t, NewCompat(9))
}

func TestCompatLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 250000)
	for i := range data {
		data[i] = byte(rng.Intn(8)) * 3
	}
	for _, level := range []int{1, 5, 9} {
		c := NewCompat(level)
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		// Decode with the stdlib reader directly.
		back, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(comp)))
		if err != nil {
			t.Fatalf("level %d: stdlib decode: %v", level, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("level %d: roundtrip mismatch", level)
		}
	}
	// Clamping.
	if NewCompat(0).level != 1 || NewCompat(99).level != 9 {
		t.Fatal("level clamping")
	}
}

func TestCompatHeaderBytes(t *testing.T) {
	c := NewCompat(9)
	comp, err := c.Compress([]byte("hello bzip2 world"))
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) < 10 || comp[0] != 'B' || comp[1] != 'Z' || comp[2] != 'h' || comp[3] != '9' {
		t.Fatalf("header: % x", comp[:4])
	}
}

func TestCompatMultiBlock(t *testing.T) {
	// Level 1 blocks are ~100 kB; 350 kB forces several blocks and
	// exercises the combined stream CRC.
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 350000)
	for i := range data {
		data[i] = byte(rng.Intn(64))
	}
	c := NewCompat(1)
	comp, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(comp)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("multi-block roundtrip failed")
	}
}

func TestCompatRunHeavy(t *testing.T) {
	// Long runs stress RLE1 boundaries and the RUNA/RUNB coder.
	var data []byte
	rng := rand.New(rand.NewSource(3))
	for len(data) < 300000 {
		data = append(data, bytes.Repeat([]byte{byte(rng.Intn(4))}, rng.Intn(1000)+1)...)
	}
	c := NewCompat(1)
	comp, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(comp)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("run-heavy roundtrip failed")
	}
}

func FuzzCompatRoundtrip(f *testing.F) {
	codectest.FuzzRoundtrip(f, NewCompat(1))
}
