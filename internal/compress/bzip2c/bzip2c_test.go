package bzip2c

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"positbench/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	codectest.Run(t, New())
}

// TestPipelineByteIdentity pins the stage pipeline's determinism: the
// three-goroutine encode and decode paths (taken when GOMAXPROCS > 1 and a
// call spans multiple blocks) must produce bytes identical to the inline
// serial path. A small block size turns modest inputs into many blocks so
// the pipeline actually overlaps stages.
func TestPipelineByteIdentity(t *testing.T) {
	c := NewBlockSize(2048)
	inputs := map[string][]byte{
		"zeros":  make([]byte, 20<<10),
		"random": randomBytes(24<<10, 7),
		"runs":   bytes.Repeat([]byte{0, 0, 0, 1, 2, 2, 9}, 4000),
	}
	for name, data := range inputs {
		t.Run(name, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(1)
			serial, sErr := c.Compress(data)
			serialBack, sdErr := c.Decompress(serial)
			runtime.GOMAXPROCS(4)
			piped, pErr := c.Compress(data)
			pipedBack, pdErr := c.Decompress(serial)
			runtime.GOMAXPROCS(prev)
			if sErr != nil || pErr != nil {
				t.Fatalf("compress: serial err %v, pipelined err %v", sErr, pErr)
			}
			if !bytes.Equal(serial, piped) {
				t.Fatalf("pipelined output differs from serial (%d vs %d bytes)", len(piped), len(serial))
			}
			if sdErr != nil || pdErr != nil {
				t.Fatalf("decompress: serial err %v, pipelined err %v", sdErr, pdErr)
			}
			if !bytes.Equal(serialBack, data) || !bytes.Equal(pipedBack, data) {
				t.Fatal("round-trip mismatch")
			}
		})
	}
}

func randomBytes(n int, seed int64) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}
