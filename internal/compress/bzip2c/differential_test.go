package bzip2c

import (
	"bytes"
	"compress/bzip2"
	"fmt"
	"io"
	"testing"

	"positbench/internal/compress/codectest"
)

// Differential tests against the standard library's bzip2 implementation.
// The compat codec emits the real .bz2 container, so every stream it
// produces must decode bit-exactly with compress/bzip2 — at every level
// and over every differential input family. The reverse direction (a
// stdlib-produced .bz2 into our decoder) is inherently covered because
// CompatCodec.Decompress *is* the stdlib decoder, and the stdlib ships no
// bzip2 writer to cross-produce streams with; the native bzip2c codec uses
// its own container and is out of scope here.

func TestDifferentialCompatToStdlib(t *testing.T) {
	for _, level := range []int{1, 9} {
		c := NewCompat(level)
		for _, in := range codectest.DifferentialInputs() {
			in, level := in, level
			t.Run(fmt.Sprintf("L%d/%s", level, in.Name), func(t *testing.T) {
				comp, err := c.Compress(in.Data)
				if err != nil {
					t.Fatal(err)
				}
				back, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(comp)))
				if err != nil {
					t.Fatalf("level %d: stdlib decode: %v", level, err)
				}
				if len(in.Data) == 0 {
					// A .bz2 stream with zero blocks decodes to nothing.
					if len(back) != 0 {
						t.Fatalf("empty input decoded to %d bytes", len(back))
					}
					return
				}
				if !bytes.Equal(back, in.Data) {
					t.Fatalf("level %d: stdlib decoded %d bytes, want %d", level, len(back), len(in.Data))
				}
			})
		}
	}
}

// The native codec and the compat codec implement the same pipeline in
// different containers; on identical input their decompressed outputs must
// agree with each other (and the original) even though the bytes differ.
func TestDifferentialNativeVsCompat(t *testing.T) {
	native, compat := New(), NewCompat(9)
	for _, in := range codectest.DifferentialInputs() {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			nc, err := native.Compress(in.Data)
			if err != nil {
				t.Fatal(err)
			}
			nb, err := native.Decompress(nc)
			if err != nil {
				t.Fatal(err)
			}
			cc, err := compat.Compress(in.Data)
			if err != nil {
				t.Fatal(err)
			}
			cb, err := compat.Decompress(cc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(nb, in.Data) || !bytes.Equal(cb, in.Data) {
				t.Fatalf("pipelines disagree: native %d bytes, compat %d bytes, want %d",
					len(nb), len(cb), len(in.Data))
			}
		})
	}
}
