package bzip2c

import (
	"bytes"
	"compress/bzip2"
	"errors"
	"fmt"
	"io"

	"positbench/internal/bitio"
	"positbench/internal/bwt"
	"positbench/internal/compress"
	"positbench/internal/huffman"
	"positbench/internal/mtf"
)

// CompatCodec emits the real bzip2 file format (.bz2): the exact container
// byte stream that the reference tools and Go's compress/bzip2 reader
// decode. Decompression is delegated to the standard library, so every
// roundtrip through this codec cross-validates the encoder against an
// independent reference implementation.
type CompatCodec struct {
	level int // 1..9: block size in 100 kB units
}

// NewCompat returns a .bz2-format codec at the given level (1..9).
func NewCompat(level int) *CompatCodec {
	if level < 1 {
		level = 1
	}
	if level > 9 {
		level = 9
	}
	return &CompatCodec{level: level}
}

// Name implements compress.Codec.
func (c *CompatCodec) Name() string { return "bzip2-compat" }

// Info implements compress.Describer.
func (c *CompatCodec) Info() compress.Info {
	return compress.Info{Name: "bzip2-compat", Version: fmt.Sprintf("bz2 -%d", c.level), Source: "bit-exact .bz2 container, decodable by reference decoders"}
}

// --- bzip2 CRC32 (poly 0x04C11DB7, MSB-first, not reflected) ----------------

var bzCRCTable [256]uint32

func init() {
	for i := 0; i < 256; i++ {
		c := uint32(i) << 24
		for j := 0; j < 8; j++ {
			if c&0x80000000 != 0 {
				c = c<<1 ^ 0x04C11DB7
			} else {
				c <<= 1
			}
		}
		bzCRCTable[i] = c
	}
}

func bzCRCUpdate(crc uint32, p []byte) uint32 {
	for _, b := range p {
		crc = crc<<8 ^ bzCRCTable[byte(crc>>24)^b]
	}
	return crc
}

// Compress implements compress.Codec, producing a well-formed .bz2 stream.
func (c *CompatCodec) Compress(src []byte) ([]byte, error) {
	w := bitio.NewWriter(len(src)/2 + 64)
	w.WriteBytes([]byte{'B', 'Z', 'h', byte('0' + c.level)})

	// RLE1 the whole input, then split into blocks of at most
	// level*100000-20 post-RLE1 bytes (bzip2's nblockMAX slack). The block
	// CRC covers the pre-RLE1 bytes each block consumes, so blocks are cut
	// on RLE1 group boundaries by re-running RLE1 incrementally.
	maxBlock := c.level*100000 - 20
	streamCRC := uint32(0)
	pos := 0
	for pos < len(src) || (len(src) == 0 && pos == 0) {
		if len(src) == 0 {
			break // empty stream: no blocks at all
		}
		blockRaw, blockRLE := takeRLE1Block(src[pos:], maxBlock)
		blockCRC := bzCRCUpdate(0xFFFFFFFF, src[pos:pos+blockRaw]) ^ 0xFFFFFFFF
		streamCRC = (streamCRC<<1 | streamCRC>>31) ^ blockCRC
		if err := writeCompatBlock(w, blockRLE, blockCRC); err != nil {
			return nil, err
		}
		pos += blockRaw
	}
	// Stream footer.
	w.WriteBits(0x177245, 24)
	w.WriteBits(0x385090, 24)
	w.WriteBits(uint64(streamCRC), 32)
	return w.Bytes(), nil
}

// takeRLE1Block consumes input from src, applying bzip2's RLE1, until the
// encoded block would exceed maxBlock bytes. It returns how many raw bytes
// were consumed and the RLE1-encoded block.
func takeRLE1Block(src []byte, maxBlock int) (rawLen int, rle []byte) {
	rle = make([]byte, 0, maxBlock)
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < 255+4 {
			run++
		}
		var enc int
		if run >= 4 {
			enc = 5
		} else {
			enc = run
		}
		if len(rle)+enc > maxBlock {
			break
		}
		if run >= 4 {
			rle = append(rle, b, b, b, b, byte(run-4))
		} else {
			for j := 0; j < run; j++ {
				rle = append(rle, b)
			}
		}
		i += run
	}
	return i, rle
}

// writeCompatBlock emits one compressed block in bzip2's exact bit format.
func writeCompatBlock(w *bitio.Writer, block []byte, blockCRC uint32) error {
	last, primary := bwt.Transform(block)

	// Used-byte map and the compacted MTF alphabet.
	var used [256]bool
	for _, b := range block {
		used[b] = true
	}
	var alphabet []byte
	for v := 0; v < 256; v++ {
		if used[v] {
			alphabet = append(alphabet, byte(v))
		}
	}
	nUsed := len(alphabet)
	if nUsed == 0 {
		return fmt.Errorf("bzip2-compat: empty block")
	}
	eob := nUsed + 1
	alphaSize := nUsed + 2

	// MTF over the compacted alphabet, with RUNA/RUNB zero-run coding.
	syms := compatMTF(last, alphabet)
	syms = append(syms, uint16(eob))

	// Huffman tables: groups of 50 symbols, 2..6 tables, refined like the
	// native codec but with every alphabet symbol guaranteed a code (the
	// format requires complete tables).
	nGroups := numTables(len(syms))
	nSel := (len(syms) + groupSize - 1) / groupSize
	tables := make([][]uint8, nGroups)
	chunk := (len(syms) + nGroups - 1) / nGroups
	buildCompat := func(freqs []int) ([]uint8, error) {
		for s := range freqs {
			freqs[s]++ // every symbol must receive a code
		}
		lengths, err := huffman.BuildLengths(freqs, 17)
		if err != nil {
			return nil, err
		}
		for s, l := range lengths {
			if l == 0 {
				return nil, fmt.Errorf("bzip2-compat: symbol %d got no code", s)
			}
		}
		return lengths, nil
	}
	for t := 0; t < nGroups; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > len(syms) {
			hi = len(syms)
		}
		freqs := make([]int, alphaSize)
		for _, s := range syms[lo:hi] {
			freqs[s]++
		}
		var err error
		if tables[t], err = buildCompat(freqs); err != nil {
			return err
		}
	}
	selectors := make([]int, nSel)
	for iter := 0; iter < 4; iter++ {
		freqsPer := make([][]int, nGroups)
		for t := range freqsPer {
			freqsPer[t] = make([]int, alphaSize)
		}
		for g := 0; g < nSel; g++ {
			lo, hi := g*groupSize, (g+1)*groupSize
			if hi > len(syms) {
				hi = len(syms)
			}
			bestT, bestCost := 0, int(^uint(0)>>1)
			for t := 0; t < nGroups; t++ {
				cost := 0
				for _, s := range syms[lo:hi] {
					cost += int(tables[t][s])
				}
				if cost < bestCost {
					bestT, bestCost = t, cost
				}
			}
			selectors[g] = bestT
			for _, s := range syms[lo:hi] {
				freqsPer[bestT][s]++
			}
		}
		for t := 0; t < nGroups; t++ {
			var err error
			if tables[t], err = buildCompat(freqsPer[t]); err != nil {
				return err
			}
		}
	}
	encs := make([]*huffman.Encoder, nGroups)
	for t := range tables {
		var err error
		if encs[t], err = huffman.NewEncoder(tables[t]); err != nil {
			return err
		}
	}

	// --- emit the block ---
	w.WriteBits(0x314159, 24)
	w.WriteBits(0x265359, 24)
	w.WriteBits(uint64(blockCRC), 32)
	w.WriteBit(0) // not randomized
	w.WriteBits(uint64(primary), 24)
	// Used map: 16 range bits, then 16 bits per used range.
	var ranges uint64
	for r := 0; r < 16; r++ {
		for v := 0; v < 16; v++ {
			if used[r*16+v] {
				ranges |= 1 << uint(15-r)
				break
			}
		}
	}
	w.WriteBits(ranges, 16)
	for r := 0; r < 16; r++ {
		if ranges>>uint(15-r)&1 == 0 {
			continue
		}
		var bitsOut uint64
		for v := 0; v < 16; v++ {
			if used[r*16+v] {
				bitsOut |= 1 << uint(15-v)
			}
		}
		w.WriteBits(bitsOut, 16)
	}
	w.WriteBits(uint64(nGroups), 3)
	w.WriteBits(uint64(nSel), 15)
	// Selectors: MTF + unary.
	mtfOrder := make([]int, nGroups)
	for i := range mtfOrder {
		mtfOrder[i] = i
	}
	for _, sel := range selectors {
		j := 0
		for mtfOrder[j] != sel {
			j++
		}
		for i := 0; i < j; i++ {
			w.WriteBit(1)
		}
		w.WriteBit(0)
		copy(mtfOrder[1:j+1], mtfOrder[:j])
		mtfOrder[0] = sel
	}
	// Code lengths: 5-bit start, then +1/-1 deltas per symbol.
	for t := 0; t < nGroups; t++ {
		cur := int(tables[t][0])
		w.WriteBits(uint64(cur), 5)
		for s := 0; s < alphaSize; s++ {
			target := int(tables[t][s])
			for cur < target {
				w.WriteBits(0b10, 2)
				cur++
			}
			for cur > target {
				w.WriteBits(0b11, 2)
				cur--
			}
			w.WriteBit(0)
		}
	}
	// Symbol stream.
	for i, s := range syms {
		encs[selectors[i/groupSize]].Encode(w, int(s))
	}
	return nil
}

// compatMTF move-to-fronts over the compacted used-byte alphabet and
// applies RUNA/RUNB zero-run coding, producing bzip2's symbol stream
// (without EOB).
func compatMTF(last []byte, alphabet []byte) []uint16 {
	order := append([]byte(nil), alphabet...)
	out := make([]uint16, 0, len(last))
	run := 0
	flushRun := func() {
		for run > 0 {
			if run&1 == 1 {
				out = append(out, mtf.RunA)
				run = (run - 1) / 2
			} else {
				out = append(out, mtf.RunB)
				run = (run - 2) / 2
			}
		}
	}
	for _, b := range last {
		j := 0
		for order[j] != b {
			j++
		}
		if j == 0 {
			run++
			continue
		}
		flushRun()
		out = append(out, uint16(j)+1)
		copy(order[1:j+1], order[:j])
		order[0] = b
	}
	flushRun()
	return out
}

// Decompress implements compress.Codec by delegating to the standard
// library's reference bzip2 decoder, with default decode limits.
func (c *CompatCodec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited. The .bz2 container carries
// no output size, so the cap is enforced with a bounded reader.
func (c *CompatCodec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	if len(comp) == 0 {
		return nil, compress.Errorf(compress.ErrTruncated, "bzip2-compat: empty input")
	}
	maxOut := lim.OutputCap(len(comp))
	out, err := io.ReadAll(io.LimitReader(bzip2.NewReader(bytes.NewReader(comp)), maxOut+1))
	if err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, compress.Errorf(compress.ErrTruncated, "bzip2-compat: %v", err)
		}
		return nil, compress.Errorf(compress.ErrCorrupt, "bzip2-compat: %v", err)
	}
	if int64(len(out)) > maxOut {
		return nil, compress.Errorf(compress.ErrLimitExceeded, "bzip2-compat: output exceeds decode cap %d", maxOut)
	}
	return out, nil
}

var _ compress.Codec = (*CompatCodec)(nil)
var _ compress.Describer = (*CompatCodec)(nil)
var _ compress.Limited = (*CompatCodec)(nil)
