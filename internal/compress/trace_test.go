package compress_test

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/compress/gzipc"
	"positbench/internal/trace"
)

// findChildren returns the direct children of sp named name.
func findChildren(sp *trace.SpanData, name string) []*trace.SpanData {
	var out []*trace.SpanData
	for _, c := range sp.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

func TestParallelEngineSpans(t *testing.T) {
	// The span shape under test (queue-wait under each chunk) only exists
	// on the scheduler path; on a 1-CPU runner construction would fall
	// back to the serial engine, so force the scheduler.
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	tr := trace.New(4)
	root := tr.Start("roundtrip", "t1")
	ctx := trace.NewContext(context.Background(), root)

	codec := gzipc.New()
	src := bytes.Repeat([]byte("floating point data "), 4096)
	var comp bytes.Buffer
	w := compress.NewParallelWriterContext(ctx, codec, &comp, 16<<10, 2)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := compress.NewParallelReaderContext(ctx, codec, bytes.NewReader(comp.Bytes()), compress.DecodeLimits{}, 2)
	back, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("roundtrip mismatch")
	}
	root.End()

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d traces, want 1", len(snap))
	}
	chunks := findChildren(snap[0].Root, "chunk")
	wantChunks := 2 * ((len(src) + 16<<10 - 1) / (16 << 10)) // write + read side
	if len(chunks) != wantChunks {
		t.Fatalf("got %d chunk spans, want %d", len(chunks), wantChunks)
	}
	var sawCompress, sawDecompress, sawQueueWait, sawFrameWrite, sawFrameRead bool
	for _, c := range chunks {
		if len(findChildren(c, "compress")) == 1 {
			sawCompress = true
			if c.BytesIn != 16<<10 {
				t.Errorf("compress chunk bytes_in = %d, want %d", c.BytesIn, 16<<10)
			}
		}
		if len(findChildren(c, "decompress")) == 1 {
			sawDecompress = true
			if c.BytesOut != 16<<10 {
				t.Errorf("decompress chunk bytes_out = %d, want %d", c.BytesOut, 16<<10)
			}
		}
		if len(findChildren(c, "queue-wait")) == 1 {
			sawQueueWait = true
		}
		sawFrameWrite = sawFrameWrite || len(findChildren(c, "frame-write")) == 1
		sawFrameRead = sawFrameRead || len(findChildren(c, "frame-read")) == 1
	}
	if !sawCompress || !sawDecompress || !sawQueueWait || !sawFrameWrite || !sawFrameRead {
		t.Fatalf("missing stages: compress=%v decompress=%v queue-wait=%v frame-write=%v frame-read=%v",
			sawCompress, sawDecompress, sawQueueWait, sawFrameWrite, sawFrameRead)
	}
}

func TestSerialEngineSpans(t *testing.T) {
	tr := trace.New(4)
	root := tr.Start("serial", "t2")
	codec := gzipc.New()
	src := bytes.Repeat([]byte("serial stream data "), 2048)

	var comp bytes.Buffer
	w := compress.NewWriter(codec, &comp, 8<<10)
	w.SetSpan(root)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := compress.NewReader(codec, bytes.NewReader(comp.Bytes()))
	r.SetSpan(root)
	back, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("roundtrip mismatch")
	}
	root.End()

	chunks := findChildren(tr.Snapshot()[0].Root, "chunk")
	if len(chunks) == 0 {
		t.Fatal("no chunk spans from the serial engine")
	}
	var sawCompress, sawDecompress bool
	for _, c := range chunks {
		sawCompress = sawCompress || len(findChildren(c, "compress")) == 1
		sawDecompress = sawDecompress || len(findChildren(c, "decompress")) == 1
	}
	if !sawCompress || !sawDecompress {
		t.Fatalf("missing serial stages: compress=%v decompress=%v", sawCompress, sawDecompress)
	}
}

// TestEngineCountersDrain checks the process-wide gauges return to zero
// once every engine is closed, and the cumulative counters move.
func TestEngineCountersDrain(t *testing.T) {
	before := compress.EngineSnapshot()
	codec := gzipc.New()
	src := bytes.Repeat([]byte("counter data "), 8192)
	var comp bytes.Buffer
	w := compress.NewParallelWriter(codec, &comp, 16<<10, 2)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := compress.NewParallelReader(codec, bytes.NewReader(comp.Bytes()), 2)
	if _, err := io.ReadAll(r); err != nil {
		t.Fatal(err)
	}
	r.Close()

	after := compress.EngineSnapshot()
	if after.QueueDepth != 0 {
		t.Errorf("queue depth after drain = %d, want 0", after.QueueDepth)
	}
	if got := after.CompressChunks - before.CompressChunks; got < 4 {
		t.Errorf("compress chunks delta = %d, want >= 4", got)
	}
	if got := after.DecompressChunks - before.DecompressChunks; got < 4 {
		t.Errorf("decompress chunks delta = %d, want >= 4", got)
	}
	if after.CompressBytesIn-before.CompressBytesIn != int64(len(src)) {
		t.Errorf("compress bytes_in delta = %d, want %d", after.CompressBytesIn-before.CompressBytesIn, len(src))
	}
	if after.DecompressBytesOut-before.DecompressBytesOut != int64(len(src)) {
		t.Errorf("decompress bytes_out delta = %d, want %d", after.DecompressBytesOut-before.DecompressBytesOut, len(src))
	}
	if after.CompressBusyNS <= before.CompressBusyNS {
		t.Error("compress busy time did not advance")
	}
	if after.QueueWaitNS < before.QueueWaitNS {
		t.Error("queue wait time went backwards")
	}
}
