package compress

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealOrderDeterministic pins the seeded victim selection: the same
// seed replays the same probe sequence, distinct seeds diverge, and self is
// never probed first. stealStart and wsRand are pure, so the property holds
// without racing real workers.
func TestStealOrderDeterministic(t *testing.T) {
	const workers = 5
	sequence := func(seed uint64, self int) []int {
		r := &wsRand{state: seed}
		var seq []int
		for i := 0; i < 64; i++ {
			v := stealStart(r, self, workers)
			if v == self || v < 0 || v >= workers {
				t.Fatalf("seed %#x: stealStart returned %d for self %d of %d", seed, v, self, workers)
			}
			seq = append(seq, v)
		}
		return seq
	}
	for self := 0; self < workers; self++ {
		a := sequence(0xfeed, self)
		b := sequence(0xfeed, self)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("self %d: same seed diverged at probe %d: %d vs %d", self, i, a[i], b[i])
			}
		}
	}
	a, b := sequence(0xfeed, 0), sequence(0xbeef, 0)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds replayed the same 64-probe victim sequence")
	}
	// The generator must reach every victim, not orbit a subset.
	seen := map[int]bool{}
	for _, v := range sequence(0x1234, 2) {
		seen[v] = true
	}
	if len(seen) != workers-1 {
		t.Fatalf("64 probes visited %d of %d victims", len(seen), workers-1)
	}
}

// TestSchedulerSkewedLoadBalances runs a skewed chunk-size distribution —
// one blocker an order of magnitude longer than the rest — and requires
// (a) every item executed exactly once and (b) at least one steal: the
// idle workers must raid the blocked worker's backlog rather than park.
func TestSchedulerSkewedLoadBalances(t *testing.T) {
	noLeaks(t)
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const workers = 4
	const items = 64
	var executed [items]atomic.Int32
	var steals atomic.Int32
	blockerRunning := make(chan struct{})
	release := make(chan struct{})
	s := newWorkStealing(workers, items+workers, 0xc0ffee, func(w int, stolen bool, it int) {
		executed[it].Add(1)
		if stolen {
			steals.Add(1)
		}
		if it == 0 {
			close(blockerRunning)
			<-release // the blocker: pins its worker until the end
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	})
	// Land the blocker alone, wait until a worker is pinned on it, then
	// submit the rest: every 4th item round-robins onto the pinned worker's
	// deque and can only finish via steals.
	s.submit(0)
	<-blockerRunning
	for i := 1; i < items; i++ {
		s.submit(i)
	}
	deadline := time.After(10 * time.Second)
	for done := false; !done; {
		select {
		case <-deadline:
			t.Fatal("scheduler did not drain the skewed load")
		default:
			done = true
			for i := 1; i < items; i++ {
				if executed[i].Load() == 0 {
					done = false
					break
				}
			}
			if !done {
				time.Sleep(time.Millisecond)
			}
		}
	}
	close(release)
	s.close()
	for i := range executed {
		if n := executed[i].Load(); n != 1 {
			t.Errorf("item %d executed %d times, want exactly 1", i, n)
		}
	}
	if steals.Load() == 0 {
		t.Error("no steals under a skewed load with a blocked worker")
	}
}

// TestSchedulerCloseDrains submits a burst and closes immediately: close
// must not return until every item ran, and no worker goroutine may leak.
func TestSchedulerCloseDrains(t *testing.T) {
	noLeaks(t)
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	var ran atomic.Int32
	s := newWorkStealing(3, 64, 7, func(w int, stolen bool, _ struct{}) {
		time.Sleep(50 * time.Microsecond)
		ran.Add(1)
	})
	for i := 0; i < 48; i++ {
		s.submit(struct{}{})
	}
	s.close()
	if got := ran.Load(); got != 48 {
		t.Fatalf("close returned with %d of 48 items executed", got)
	}
	s.close() // idempotent
}

// TestSchedulerCountersReconcile pins the /metrics invariant the positload
// soak checks end to end: submitted == local hits + steals after a drain,
// and every per-worker depth gauge returns to zero.
func TestSchedulerCountersReconcile(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	pre := EngineSnapshot()

	var wg sync.WaitGroup
	s := newWorkStealing(2, 34, 99, func(w int, stolen bool, _ int) {
		time.Sleep(20 * time.Microsecond)
		wg.Done()
	})
	const items = 200
	wg.Add(items)
	for i := 0; i < items; i++ {
		s.submit(i)
	}
	wg.Wait()
	s.close()

	snap := EngineSnapshot()
	subs := snap.SchedSubmitted - pre.SchedSubmitted
	local := snap.SchedLocalHits - pre.SchedLocalHits
	steals := snap.SchedSteals - pre.SchedSteals
	if subs < items {
		t.Fatalf("sched_submitted moved by %d, want >= %d", subs, items)
	}
	if local+steals != subs {
		t.Fatalf("scheduler leaked work: submitted %d != local %d + stolen %d", subs, local, steals)
	}
	for slot, depth := range snap.WorkerQueueDepths {
		if depth != pre.WorkerQueueDepths[slot] {
			t.Errorf("worker slot %d queue depth drifted: %d -> %d", slot, pre.WorkerQueueDepths[slot], depth)
		}
	}
}

// TestParallelReaderEarlyCloseScheduler closes a scheduler-path reader
// mid-stream: no goroutine leak, and the canonical read-after-Close error.
func TestParallelReaderEarlyCloseScheduler(t *testing.T) {
	noLeaks(t)
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	data := parallelData(256 << 10)
	stream := writeSerial(t, passthrough{}, data, 1024)
	r := NewParallelReader(passthrough{}, bytes.NewReader(stream), 4)
	if r.SerialFallback() {
		t.Fatal("expected the scheduler path under GOMAXPROCS(2) workers=4")
	}
	buf := make([]byte, 512)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("early Close: %v", err)
	}
	if _, err := r.Read(buf); err == nil || err.Error() != "compress: read after Close" {
		t.Fatalf("read-after-Close err = %v, want the canonical error", err)
	}
}

// errAfterCodec fails compression from the Nth call on; the scheduler path
// must surface the first error, stick to it, and still shut down cleanly.
type errAfterCodec struct {
	passthrough
	n     int32
	calls atomic.Int32
}

var errCodecBoom = errors.New("codec boom")

func (c *errAfterCodec) Compress(src []byte) ([]byte, error) {
	if c.calls.Add(1) > c.n {
		return nil, errCodecBoom
	}
	return c.passthrough.Compress(src)
}

func (c *errAfterCodec) Name() string { return "err-after" }

// TestParallelWriterStickyErrorScheduler pins first-error-wins on the
// scheduler path: after a chunk fails, Write and Close keep returning the
// same error and the engine tears down without leaking workers.
func TestParallelWriterStickyErrorScheduler(t *testing.T) {
	noLeaks(t)
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	var sink bytes.Buffer
	w := NewParallelWriter(&errAfterCodec{n: 2}, &sink, 1024, 4)
	if w.SerialFallback() {
		t.Fatal("expected the scheduler path under GOMAXPROCS(2) workers=4")
	}
	data := parallelData(64 << 10)
	var firstErr error
	for off := 0; off < len(data); off += 4096 {
		if _, err := w.Write(data[off : off+4096]); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		firstErr = w.Close()
	}
	if !errors.Is(firstErr, errCodecBoom) {
		t.Fatalf("first surfaced error = %v, want the codec error", firstErr)
	}
	if _, err := w.Write([]byte("more")); !errors.Is(err, errCodecBoom) {
		t.Fatalf("Write after failure = %v, want the sticky codec error", err)
	}
	if err := w.Close(); !errors.Is(err, errCodecBoom) {
		t.Fatalf("Close after failure = %v, want the sticky codec error", err)
	}
}
