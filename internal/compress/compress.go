// Package compress defines the lossless-codec interface shared by the five
// general-purpose compressor classes the study evaluates (bzip2-, gzip-,
// lz4-, xz-, and zstd-class) and by the LC pipeline compressors.
package compress

import (
	"bytes"
	"fmt"
)

// Codec is a lossless general-purpose compressor.
type Codec interface {
	// Name is the short identifier used in result tables ("xz", "bzip2", ...).
	Name() string
	// Compress returns a self-contained compressed representation of src.
	Compress(src []byte) ([]byte, error)
	// Decompress inverts Compress.
	Decompress(comp []byte) ([]byte, error)
}

// AppendCompressor is implemented by codecs that can compress into a
// caller-provided buffer. CompressAppend appends the compressed
// representation of src to dst (growing it as needed) and returns the
// result, which may alias dst's backing array. Implementations must not
// retain dst or src after returning; that ownership rule is what lets the
// streaming engine recycle chunk buffers through a pool.
type AppendCompressor interface {
	CompressAppend(dst, src []byte) ([]byte, error)
}

// AppendDecompressor is the decode-side capability: DecompressAppendLimits
// appends the decompressed output to dst under lim, with the same aliasing
// and non-retention rules as AppendCompressor.
type AppendDecompressor interface {
	DecompressAppendLimits(dst, comp []byte, lim DecodeLimits) ([]byte, error)
}

// CompressAppend compresses src with c, reusing dst's capacity when the
// codec supports it. Codecs without the capability fall back to Compress and
// return a fresh buffer (the caller's pool simply absorbs it).
func CompressAppend(c Codec, dst, src []byte) ([]byte, error) {
	if ac, ok := c.(AppendCompressor); ok {
		return ac.CompressAppend(dst, src)
	}
	return c.Compress(src)
}

// DecompressAppendLimits decompresses comp with c under lim, reusing dst's
// capacity when the codec supports it; other codecs fall back to
// DecompressLimits and return a fresh buffer.
func DecompressAppendLimits(c Codec, dst, comp []byte, lim DecodeLimits) ([]byte, error) {
	if ad, ok := c.(AppendDecompressor); ok {
		return ad.DecompressAppendLimits(dst, comp, lim)
	}
	return DecompressLimits(c, comp, lim)
}

// Info describes a codec for the Table 1 inventory.
type Info struct {
	Name    string // codec name as reported in tables
	Version string // implementation version
	Source  string // provenance note (original tool this class models)
}

// Describer is implemented by codecs that carry Table 1 metadata.
type Describer interface {
	Info() Info
}

// Ratio returns the compression ratio original/compressed. A ratio above
// 1.0 means the codec shrank the data.
func Ratio(originalLen, compressedLen int) float64 {
	if compressedLen == 0 {
		return 0
	}
	return float64(originalLen) / float64(compressedLen)
}

// Roundtrip compresses and decompresses src with c, verifying losslessness.
// It returns the compressed size. Used by tests and by the study's
// self-check mode.
func Roundtrip(c Codec, src []byte) (int, error) {
	comp, err := c.Compress(src)
	if err != nil {
		return 0, fmt.Errorf("%s: compress: %w", c.Name(), err)
	}
	back, err := c.Decompress(comp)
	if err != nil {
		return 0, fmt.Errorf("%s: decompress: %w", c.Name(), err)
	}
	if !bytes.Equal(back, src) {
		return 0, fmt.Errorf("%s: roundtrip mismatch: %d bytes in, %d bytes back", c.Name(), len(src), len(back))
	}
	return len(comp), nil
}
