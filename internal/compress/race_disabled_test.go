//go:build !race

package compress_test

// raceEnabled reports whether the race detector instruments this build;
// the allocation-regression tests skip themselves when it does.
const raceEnabled = false
