package compress

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzParallelReader differentially fuzzes the parallel decode path against
// the serial Reader on arbitrary stream bytes: both must agree on success
// vs failure and on the decoded prefix, and neither may panic, hang, or
// leak goroutines. Run by `make fuzz-smoke` along with every other target.
func FuzzParallelReader(f *testing.F) {
	// Valid streams of 0, 1, and several chunks.
	for _, size := range []int{0, 10, 3000} {
		var sink bytes.Buffer
		w := NewWriter(passthrough{}, &sink, 64)
		w.Write(parallelData(size))
		w.Close()
		f.Add(sink.Bytes())
	}
	// Known-bad frames: truncation, garbage, and a chunk-length bomb.
	f.Add([]byte{})
	f.Add([]byte{5, 0xA5, 1})
	f.Add(append(binary.AppendUvarint(nil, 1<<60), 0xA5, 1, 2, 3))
	lim := DecodeLimits{MaxOutputBytes: 1 << 20}
	f.Fuzz(func(t *testing.T, stream []byte) {
		serialOut, serialErr := io.ReadAll(NewReaderLimits(passthrough{}, bytes.NewReader(stream), lim))
		r := NewParallelReaderLimits(passthrough{}, bytes.NewReader(stream), lim, 4)
		parOut, parErr := io.ReadAll(r)
		r.Close()
		if (serialErr == nil) != (parErr == nil) {
			t.Fatalf("decode disagreement: serial err %v, parallel err %v", serialErr, parErr)
		}
		if !bytes.Equal(serialOut, parOut) {
			t.Fatalf("output disagreement: serial %d bytes, parallel %d bytes", len(serialOut), len(parOut))
		}
	})
}
