package compress

import (
	"errors"
	"fmt"
)

// Structured error taxonomy for the decode path. Every decoder in this
// repository returns errors that match exactly one of these sentinels under
// errors.Is, so callers can triage failures without string matching:
//
//	ErrCorrupt       the bytes are not a valid stream for this codec
//	ErrTruncated     the stream ends before the format says it should
//	ErrBadMagic      a framed container does not start with the magic bytes
//	ErrVersion       a framed container has an unsupported format version
//	ErrLimitExceeded decoding would exceed the configured DecodeLimits
//
// ErrTruncated, ErrBadMagic, and ErrVersion are refinements of ErrCorrupt:
// errors.Is(err, ErrCorrupt) is true for all four data-integrity failures,
// so "is this input bad?" is a single check. ErrLimitExceeded is a separate
// root because hitting a resource limit does not prove the input is invalid
// (the caller's limits may simply be smaller than an honest stream).
var (
	ErrCorrupt       = errors.New("compress: corrupt data")
	ErrTruncated     = refine("compress: truncated data", ErrCorrupt)
	ErrBadMagic      = refine("compress: bad magic bytes", ErrCorrupt)
	ErrVersion       = refine("compress: unsupported container version", ErrCorrupt)
	ErrLimitExceeded = errors.New("compress: decode resource limit exceeded")
)

// refinedError is a sentinel that also matches its parent sentinel.
type refinedError struct {
	msg    string
	parent error
}

func (e *refinedError) Error() string { return e.msg }
func (e *refinedError) Unwrap() error { return e.parent }

func refine(msg string, parent error) error { return &refinedError{msg: msg, parent: parent} }

// Errorf builds a decode error carrying both a formatted message and a
// taxonomy sentinel, e.g. Errorf(ErrCorrupt, "lz4: bad offset %d", d).
// The result matches the sentinel (and its parents) under errors.Is.
func Errorf(sentinel error, format string, args ...interface{}) error {
	return fmt.Errorf(format+": %w", append(args, sentinel)...)
}
