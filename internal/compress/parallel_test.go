package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// noLeaks fails the test if goroutines outlive the body. The runtime needs
// a moment to reap exiting goroutines, so the check retries briefly.
func noLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// parallelData builds a mildly compressible deterministic payload.
func parallelData(n int) []byte {
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(rng.Intn(7) * 36)
	}
	return buf
}

func writeParallel(t *testing.T, c Codec, data []byte, chunk, workers int) []byte {
	t.Helper()
	var sink bytes.Buffer
	w := NewParallelWriter(c, &sink, chunk, workers)
	// Awkward piece sizes, as the serial stream tests use.
	rng := rand.New(rand.NewSource(int64(len(data))))
	rest := data
	for len(rest) > 0 {
		n := rng.Intn(1000) + 1
		if n > len(rest) {
			n = len(rest)
		}
		if _, err := w.Write(rest[:n]); err != nil {
			t.Fatal(err)
		}
		rest = rest[n:]
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	return sink.Bytes()
}

func writeSerial(t *testing.T, c Codec, data []byte, chunk int) []byte {
	t.Helper()
	var sink bytes.Buffer
	w := NewWriter(c, &sink, chunk)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes()
}

// One worker must be byte-identical to the serial Writer, and any worker
// count must be byte-identical to one worker (ordering guarantee).
func TestParallelWriterMatchesSerial(t *testing.T) {
	noLeaks(t)
	for _, size := range []int{0, 1, 100, 4096, 100000} {
		data := parallelData(size)
		for _, chunk := range []int{1, 64, 4096, 0} {
			want := writeSerial(t, passthrough{}, data, chunk)
			for _, workers := range []int{1, 2, 4, 8} {
				got := writeParallel(t, passthrough{}, data, chunk, workers)
				if !bytes.Equal(got, want) {
					t.Fatalf("size=%d chunk=%d workers=%d: parallel stream differs from serial (%d vs %d bytes)",
						size, chunk, workers, len(got), len(want))
				}
			}
		}
	}
}

func TestParallelReaderMatchesSerial(t *testing.T) {
	noLeaks(t)
	for _, size := range []int{0, 1, 4096, 100000} {
		data := parallelData(size)
		stream := writeSerial(t, passthrough{}, data, 1024)
		for _, workers := range []int{1, 3, 8} {
			r := NewParallelReader(passthrough{}, bytes.NewReader(stream), workers)
			back, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("size=%d workers=%d: parallel read mismatch", size, workers)
			}
			// Reads after EOF keep returning EOF, as the serial Reader does.
			if _, err := r.Read(make([]byte, 1)); err != io.EOF {
				t.Fatalf("post-EOF read: %v", err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestParallelReaderSmallReads(t *testing.T) {
	noLeaks(t)
	payload := []byte("the parallel reader must survive one-byte reads as well")
	stream := writeSerial(t, passthrough{}, payload, 16)
	r := NewParallelReader(passthrough{}, bytes.NewReader(stream), 4)
	var got []byte
	one := make([]byte, 1)
	for {
		n, err := r.Read(one)
		if n > 0 {
			got = append(got, one[0])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestParallelWriterWriteAfterClose(t *testing.T) {
	noLeaks(t)
	var sink bytes.Buffer
	w := NewParallelWriter(passthrough{}, &sink, 16, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("write after close accepted")
	}
}

// brokenCompress fails on the chunk whose first byte is 0xFF.
type brokenCompress struct{ passthrough }

func (brokenCompress) Compress(src []byte) ([]byte, error) {
	if len(src) > 0 && src[0] == 0xFF {
		return nil, fmt.Errorf("brokenCompress: poisoned chunk")
	}
	return passthrough{}.Compress(src)
}

// A compression failure mid-stream surfaces on a later Write or at Close,
// is sticky, and leaves no goroutines behind.
func TestParallelWriterCompressError(t *testing.T) {
	noLeaks(t)
	var sink bytes.Buffer
	w := NewParallelWriter(brokenCompress{}, &sink, 4, 3)
	data := bytes.Repeat([]byte{1}, 40)
	data[8] = 0xFF // poisons the third chunk
	var firstErr error
	if _, err := w.Write(data); err != nil {
		firstErr = err
	}
	if err := w.Close(); firstErr == nil {
		firstErr = err
	}
	if firstErr == nil {
		t.Fatal("compression failure never surfaced")
	}
	if err := w.Close(); err == nil {
		t.Fatal("error not sticky across Close")
	}
}

// failNth fails decompression of the nth chunk it sees with ErrCorrupt.
type failNth struct {
	passthrough
	bad byte
}

func (f failNth) Decompress(comp []byte) ([]byte, error) {
	if len(comp) > 1 && comp[1] == f.bad {
		return nil, Errorf(ErrCorrupt, "failNth: poisoned chunk")
	}
	return f.passthrough.Decompress(comp)
}

// A decode failure on chunk k must surface after chunks < k were delivered
// intact (first-error-wins in stream order), even though later chunks are
// being decompressed concurrently; the error must match the serial path's
// taxonomy, and the pool must wind down.
func TestParallelReaderFirstErrorWins(t *testing.T) {
	noLeaks(t)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	stream := writeSerial(t, passthrough{}, data, 8) // chunks start at 0,8,16,...
	codec := failNth{bad: 24}                        // third chunk poisoned
	serialBack, serialErr := io.ReadAll(NewReader(codec, bytes.NewReader(stream)))
	for _, workers := range []int{1, 2, 8} {
		r := NewParallelReader(codec, bytes.NewReader(stream), workers)
		back, err := io.ReadAll(r)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("workers=%d: got %v, want ErrCorrupt", workers, err)
		}
		if !bytes.Equal(back, serialBack) {
			t.Fatalf("workers=%d: delivered %d bytes before the error, serial delivered %d",
				workers, len(back), len(serialBack))
		}
		if !errors.Is(serialErr, ErrCorrupt) {
			t.Fatalf("serial reference did not fail as expected: %v", serialErr)
		}
		// The error is sticky.
		if _, err2 := r.Read(make([]byte, 1)); err2 != err {
			t.Fatalf("second read: %v, want the original error", err2)
		}
	}
}

// Abandoning a stream mid-read via Close must release the read-ahead pool.
func TestParallelReaderEarlyClose(t *testing.T) {
	noLeaks(t)
	data := parallelData(100000)
	stream := writeSerial(t, passthrough{}, data, 512) // many chunks
	r := NewParallelReader(passthrough{}, bytes.NewReader(stream), 4)
	buf := make([]byte, 100)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := r.Read(buf); err == nil {
		t.Fatal("read after Close succeeded")
	}
}

func TestParallelReaderTruncatedAndBomb(t *testing.T) {
	noLeaks(t)
	data := parallelData(1000)
	stream := writeSerial(t, passthrough{}, data, 64)
	t.Run("Truncated", func(t *testing.T) {
		for _, cut := range []int{len(stream) - 1, len(stream) / 2, 1, 0} {
			r := NewParallelReader(passthrough{}, bytes.NewReader(stream[:cut]), 4)
			if _, err := io.ReadAll(r); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation at %d: %v, want an ErrCorrupt-class error", cut, err)
			}
		}
	})
	t.Run("ChunkLengthBomb", func(t *testing.T) {
		bomb := binary.AppendUvarint(nil, 1<<60)
		bomb = append(bomb, 0xA5, 1, 2, 3)
		r := NewParallelReaderLimits(passthrough{}, bytes.NewReader(bomb),
			DecodeLimits{MaxOutputBytes: 1 << 20}, 4)
		if _, err := io.ReadAll(r); !errors.Is(err, ErrLimitExceeded) {
			t.Fatalf("chunk bomb: %v, want ErrLimitExceeded", err)
		}
	})
}

// blockingReader yields one frame then blocks until released; Close on the
// ParallelReader must not wait for the underlying source.
type blockingReader struct {
	data    []byte
	off     int
	release chan struct{}
}

func (b *blockingReader) Read(p []byte) (int, error) {
	if b.off < len(b.data) {
		n := copy(p, b.data[b.off:])
		b.off += n
		return n, nil
	}
	<-b.release
	return 0, io.EOF
}

func TestParallelReaderCloseWithSlowSource(t *testing.T) {
	// The fetcher may be parked inside src.Read; Close cannot interrupt
	// that (io.Reader has no cancellation), but once the source returns,
	// everything must wind down. Verify no deadlock and eventual cleanup.
	data := parallelData(300)
	stream := writeSerial(t, passthrough{}, data, 100)
	src := &blockingReader{data: stream[:len(stream)-1], release: make(chan struct{})}
	r := NewParallelReader(passthrough{}, src, 2)
	buf := make([]byte, 50)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { r.Close(); close(done) }()
	close(src.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a slow source")
	}
}
