package compress

// DecodeLimits bounds the resources a decoder may commit on behalf of a
// (possibly hostile) compressed input. A tampered length field must trip
// ErrLimitExceeded before the decoder allocates, not OOM the process.
//
// The zero value selects the package defaults, so DecodeLimits{} is a safe
// "default limits" literal and plumbing code never branches on "no limits".
type DecodeLimits struct {
	// MaxOutputBytes caps the total decompressed size. 0 selects
	// DefaultMaxOutputBytes.
	MaxOutputBytes int64
	// MaxExpansionRatio caps decompressed size relative to the compressed
	// input (output <= input*ratio + a small slack for headers). 0 selects
	// DefaultMaxExpansionRatio.
	MaxExpansionRatio int64
}

const (
	// DefaultMaxOutputBytes bounds a single decode to 2 GiB.
	DefaultMaxOutputBytes = int64(2) << 30
	// DefaultMaxExpansionRatio is generous: the best real-world ratios on
	// float data are ~4x, and even pathological all-zero streams stay far
	// below 16384x per chunk at our block sizes.
	DefaultMaxExpansionRatio = int64(16384)
	// expansionSlack lets tiny inputs (empty payloads, bare headers)
	// decode without tripping the ratio check.
	expansionSlack = int64(1024)
)

// OutputCap resolves the effective output-byte cap for an input of
// inputLen compressed bytes: min(MaxOutputBytes, inputLen*ratio+slack).
func (l DecodeLimits) OutputCap(inputLen int) int64 {
	maxOut := l.MaxOutputBytes
	if maxOut <= 0 {
		maxOut = DefaultMaxOutputBytes
	}
	ratio := l.MaxExpansionRatio
	if ratio <= 0 {
		ratio = DefaultMaxExpansionRatio
	}
	in := int64(inputLen)
	if in > 0 && ratio > (maxOut-expansionSlack)/in {
		return maxOut // inputLen*ratio would overflow or exceed the hard cap
	}
	byRatio := in*ratio + expansionSlack
	if byRatio > maxOut {
		return maxOut
	}
	return byRatio
}

// CheckDeclared validates a length field read from untrusted input against
// the cap for inputLen compressed bytes, returning ErrLimitExceeded if the
// declared output could not have come from an honest stream within limits.
func (l DecodeLimits) CheckDeclared(declared uint64, inputLen int) error {
	if limit := l.OutputCap(inputLen); declared > uint64(limit) {
		return Errorf(ErrLimitExceeded, "declared output %d exceeds decode cap %d", declared, limit)
	}
	return nil
}

// Limited is implemented by codecs whose decoder enforces DecodeLimits
// internally (bounding allocation, not just validating after the fact).
type Limited interface {
	DecompressLimits(comp []byte, lim DecodeLimits) ([]byte, error)
}

// DecompressLimits decompresses with resource limits. Codecs implementing
// Limited enforce the limits during decoding; for others the output is
// checked after the fact (which still bounds what callers hold on to, but
// not the decoder's transient allocation).
func DecompressLimits(c Codec, comp []byte, lim DecodeLimits) ([]byte, error) {
	if lc, ok := c.(Limited); ok {
		return lc.DecompressLimits(comp, lim)
	}
	out, err := c.Decompress(comp)
	if err != nil {
		return nil, err
	}
	if int64(len(out)) > lim.OutputCap(len(comp)) {
		return nil, Errorf(ErrLimitExceeded, "%s: output %d exceeds decode cap %d", c.Name(), len(out), lim.OutputCap(len(comp)))
	}
	return out, nil
}
