package compress

// LightDecoder is implemented by codecs whose decompression runs at
// memory-bandwidth-class speed (byte copies, table lookups — no entropy
// modeling worth parallelizing). The parallel engine uses it as a
// scheduling hint: on a single-CPU host the worker pool cannot overlap
// anything, and for a light decoder the pool's channel hops and buffer
// copies cost more than the decode itself, so the engine falls back to the
// serial reader even when more workers were requested.
type LightDecoder interface {
	// DecodeIsLight reports whether decompression is cheap enough that
	// pool overhead dominates on a single CPU.
	DecodeIsLight() bool
}

// DecodeIsLight reports whether c advertises a light decode path.
func DecodeIsLight(c Codec) bool {
	ld, ok := c.(LightDecoder)
	return ok && ld.DecodeIsLight()
}
