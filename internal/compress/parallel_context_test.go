package compress

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// loopReader yields an endless cycle of data: a stream with no terminator,
// so only cancellation can end a read-ahead pool consuming it.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	n := copy(p, l.data[l.off:])
	l.off = (l.off + n) % len(l.data)
	return n, nil
}

func TestParallelWriterContextCancel(t *testing.T) {
	noLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	var sink bytes.Buffer
	w := NewParallelWriterContext(ctx, &fakeCodec{}, &sink, 8, 2)
	if _, err := w.Write(parallelData(64)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := w.Write([]byte{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Write after cancel: %v, want context.Canceled", err)
	}
	if err := w.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close after cancel: %v, want context.Canceled", err)
	}
	// The error is sticky across repeated Closes.
	if err := w.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("second Close: %v, want context.Canceled", err)
	}
}

func TestParallelWriterContextCancelBeforeWrite(t *testing.T) {
	noLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sink bytes.Buffer
	w := NewParallelWriterContext(ctx, &fakeCodec{}, &sink, 8, 2)
	if _, err := w.Write([]byte{1, 2, 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Write on cancelled ctx: %v", err)
	}
	if err := w.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close on cancelled ctx: %v", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("cancelled writer emitted %d bytes", sink.Len())
	}
}

func TestParallelReaderContextCancel(t *testing.T) {
	noLeaks(t)
	// One valid frame, cycled forever: the stream never terminates, so the
	// pool can only be reclaimed by cancellation.
	comp, err := (&fakeCodec{}).Compress(parallelData(64))
	if err != nil {
		t.Fatal(err)
	}
	var one bytes.Buffer
	var hdr [binary.MaxVarintLen64]byte
	if _, err := writeFrame(&one, hdr[:], comp); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := NewParallelReaderContext(ctx, &fakeCodec{}, &loopReader{data: one.Bytes()}, DecodeLimits{}, 2)
	buf := make([]byte, 32)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	cancel()
	// Read-ahead may hold a few already-decoded chunks; the cancellation
	// must surface within the pool's bounded buffering.
	for i := 0; i < 1000; i++ {
		if _, err = r.Read(buf); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Read after cancel: %v, want context.Canceled", err)
	}
	// Sticky.
	if _, err := r.Read(buf); !errors.Is(err, context.Canceled) {
		t.Fatalf("Read after error: %v, want context.Canceled", err)
	}
}

// TestParallelWriterCloseWithError checks the abort path serving handlers
// rely on: after a source error, nothing further reaches dst — no partial
// tail chunk, no terminator that would make a broken stream look complete.
func TestParallelWriterCloseWithError(t *testing.T) {
	defer noLeaks(t)
	var dst bytes.Buffer
	w := NewParallelWriter(&fakeCodec{}, &dst, 1<<20, 2)
	if _, err := w.Write([]byte("partial chunk, never to be flushed")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("source exploded")
	if err := w.CloseWithError(boom); !errors.Is(err, boom) {
		t.Fatalf("CloseWithError returned %v, want %v", err, boom)
	}
	if dst.Len() != 0 {
		t.Fatalf("aborted writer emitted %d bytes, want 0", dst.Len())
	}
	// Idempotent: a second Close reports the same sticky error.
	if err := w.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close after abort returned %v, want %v", err, boom)
	}
}

// TestParallelWriterCloseWithErrorNil degrades to a normal Close.
func TestParallelWriterCloseWithErrorNil(t *testing.T) {
	defer noLeaks(t)
	var dst bytes.Buffer
	w := NewParallelWriter(&fakeCodec{}, &dst, 8, 2)
	if _, err := w.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := w.CloseWithError(nil); err != nil {
		t.Fatal(err)
	}
	if dst.Len() == 0 {
		t.Fatal("clean CloseWithError(nil) emitted nothing")
	}
}

func TestParallelReaderContextCleanEOF(t *testing.T) {
	noLeaks(t)
	// A context that is never cancelled must not change behaviour: the
	// stream round-trips and ends in io.EOF.
	data := parallelData(1 << 12)
	stream := writeParallel(t, &fakeCodec{}, data, 256, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewParallelReaderContext(ctx, &fakeCodec{}, bytes.NewReader(stream), DecodeLimits{}, 3)
	back, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("roundtrip mismatch: %d in, %d out", len(data), len(back))
	}
}
