package compress

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
)

// One worker engages the serial fallback: the scheduler machinery is
// skipped entirely, both when workers=1 is explicit and when workers<=0
// resolves to GOMAXPROCS(0)==1 (the 1-CPU container case the regression
// hit). With real CPUs and workers>1 the scheduler runs.
func TestParallelReaderSerialFallbackEngages(t *testing.T) {
	stream := writeSerial(t, passthrough{}, parallelData(8<<10), 1024)

	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	r := NewParallelReader(passthrough{}, bytes.NewReader(stream), 1)
	if r.serial == nil {
		t.Fatal("workers=1 did not engage the serial fallback")
	}
	r.Close()

	r = NewParallelReader(passthrough{}, bytes.NewReader(stream), 2)
	if r.serial != nil {
		t.Fatal("workers=2 with real CPUs engaged the serial fallback; the scheduler should run")
	}
	r.Close()

	runtime.GOMAXPROCS(1)
	r = NewParallelReader(passthrough{}, bytes.NewReader(stream), 0)
	if r.serial == nil {
		t.Fatal("workers=0 under GOMAXPROCS(1) did not engage the serial fallback")
	}
	r.Close()
}

// lightCodec is a passthrough that advertises a light decode path, standing
// in for the lz4/zstd/fpc class.
type lightCodec struct{ passthrough }

func (lightCodec) DecodeIsLight() bool { return true }

// On a 1-CPU host, extra workers cannot add CPU for ANY codec: the
// fallback must engage even when more workers were requested, light and
// heavy alike. The old policy kept heavy codecs on the pool there, and
// BENCH_compress.json measured the cost: parallel decode at 0.90-0.98x of
// serial for bzip2/fpc32/fpc-posit at workers=4. With real CPUs available
// the hint changes nothing and the scheduler runs. (The per-registry-codec
// pin lives in TestSerialFallbackPolicyEveryRegistryCodec.)
func TestParallelReaderLightCodecFallback(t *testing.T) {
	stream := writeSerial(t, lightCodec{}, parallelData(8<<10), 1024)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	r := NewParallelReader(lightCodec{}, bytes.NewReader(stream), 4)
	if r.serial == nil {
		t.Fatal("light codec with workers=4 under GOMAXPROCS(1) did not engage the serial fallback")
	}
	r.Close()

	heavy := writeSerial(t, passthrough{}, parallelData(8<<10), 1024)
	r = NewParallelReader(passthrough{}, bytes.NewReader(heavy), 4)
	if r.serial == nil {
		t.Fatal("heavy codec with workers=4 under GOMAXPROCS(1) kept the scheduler; extra workers cannot add CPU on one core")
	}
	r.Close()

	runtime.GOMAXPROCS(2)
	r = NewParallelReader(lightCodec{}, bytes.NewReader(stream), 4)
	if r.serial != nil {
		t.Fatal("light codec with real CPUs available engaged the fallback; the scheduler should run")
	}
	r.Close()

	// And the fallback path must still decode correctly for the light
	// codec, workers>1 notwithstanding.
	runtime.GOMAXPROCS(1)
	r = NewParallelReader(lightCodec{}, bytes.NewReader(stream), 4)
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, parallelData(8<<10)) {
		t.Fatal("light-codec fallback decoded wrong bytes")
	}
}

// The fallback is observationally identical to the pool: same bytes, same
// post-EOF stickiness, same read-after-Close error, same cancellation.
// (The alloc win it buys is pinned by TestParallelReaderChunkAllocs, whose
// workers=1 reader now runs through this path.)
func TestParallelReaderSerialFallbackBehaves(t *testing.T) {
	noLeaks(t)
	data := parallelData(64 << 10)
	stream := writeParallel(t, passthrough{}, data, 1024, 4)

	r := NewParallelReader(passthrough{}, bytes.NewReader(stream), 1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll via fallback: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("fallback decoded %d bytes, want %d identical", len(got), len(data))
	}
	// Post-EOF reads stay io.EOF, as on the pool path.
	if _, err := r.Read(make([]byte, 8)); err != io.EOF {
		t.Fatalf("post-EOF Read err = %v, want io.EOF", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close after EOF: %v", err)
	}

	// Close before EOF poisons subsequent reads with the same error the
	// pool path uses.
	r = NewParallelReader(passthrough{}, bytes.NewReader(stream), 1)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := r.Read(make([]byte, 8)); err == nil || err.Error() != "compress: read after Close" {
		t.Fatalf("read-after-Close err = %v, want the canonical error", err)
	}

	// A cancelled context surfaces before any byte is produced.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r = NewParallelReaderContext(ctx, passthrough{}, bytes.NewReader(stream), DecodeLimits{}, 1)
	defer r.Close()
	if _, err := r.Read(make([]byte, 8)); err != context.Canceled {
		t.Fatalf("cancelled-context Read err = %v, want context.Canceled", err)
	}

	// Truncated input surfaces the shared frame-error taxonomy, not a bare
	// io error, exactly as the pool path does.
	r = NewParallelReader(passthrough{}, bytes.NewReader(stream[:len(stream)-3]), 1)
	defer r.Close()
	if _, err := io.ReadAll(r); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated stream err = %v, want ErrTruncated", err)
	}
}
