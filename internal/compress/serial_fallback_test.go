package compress

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
)

// One worker engages the serial fallback: the pool machinery is skipped
// entirely, both when workers=1 is explicit and when workers<=0 resolves
// to GOMAXPROCS(0)==1 (the 1-CPU container case the regression hit).
func TestParallelReaderSerialFallbackEngages(t *testing.T) {
	stream := writeSerial(t, passthrough{}, parallelData(8<<10), 1024)

	r := NewParallelReader(passthrough{}, bytes.NewReader(stream), 1)
	if r.serial == nil {
		t.Fatal("workers=1 did not engage the serial fallback")
	}
	r.Close()

	r = NewParallelReader(passthrough{}, bytes.NewReader(stream), 2)
	if r.serial != nil {
		t.Fatal("workers=2 engaged the serial fallback; the pool should run")
	}
	r.Close()

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	r = NewParallelReader(passthrough{}, bytes.NewReader(stream), 0)
	if r.serial == nil {
		t.Fatal("workers=0 under GOMAXPROCS(1) did not engage the serial fallback")
	}
	r.Close()
}

// The fallback is observationally identical to the pool: same bytes, same
// post-EOF stickiness, same read-after-Close error, same cancellation.
// (The alloc win it buys is pinned by TestParallelReaderChunkAllocs, whose
// workers=1 reader now runs through this path.)
func TestParallelReaderSerialFallbackBehaves(t *testing.T) {
	noLeaks(t)
	data := parallelData(64 << 10)
	stream := writeParallel(t, passthrough{}, data, 1024, 4)

	r := NewParallelReader(passthrough{}, bytes.NewReader(stream), 1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll via fallback: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("fallback decoded %d bytes, want %d identical", len(got), len(data))
	}
	// Post-EOF reads stay io.EOF, as on the pool path.
	if _, err := r.Read(make([]byte, 8)); err != io.EOF {
		t.Fatalf("post-EOF Read err = %v, want io.EOF", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close after EOF: %v", err)
	}

	// Close before EOF poisons subsequent reads with the same error the
	// pool path uses.
	r = NewParallelReader(passthrough{}, bytes.NewReader(stream), 1)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := r.Read(make([]byte, 8)); err == nil || err.Error() != "compress: read after Close" {
		t.Fatalf("read-after-Close err = %v, want the canonical error", err)
	}

	// A cancelled context surfaces before any byte is produced.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r = NewParallelReaderContext(ctx, passthrough{}, bytes.NewReader(stream), DecodeLimits{}, 1)
	defer r.Close()
	if _, err := r.Read(make([]byte, 8)); err != context.Canceled {
		t.Fatalf("cancelled-context Read err = %v, want context.Canceled", err)
	}

	// Truncated input surfaces the shared frame-error taxonomy, not a bare
	// io error, exactly as the pool path does.
	r = NewParallelReader(passthrough{}, bytes.NewReader(stream[:len(stream)-3]), 1)
	defer r.Close()
	if _, err := io.ReadAll(r); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated stream err = %v, want ErrTruncated", err)
	}
}
