package codectest

import (
	"bytes"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/container"
)

// FuzzRoundtrip drives a codec with fuzzed inputs: every input must
// compress and decompress back to itself.
func FuzzRoundtrip(f *testing.F, c compress.Codec) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{7}, 1000))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add(smoothFloatField(256))
	f.Fuzz(func(t *testing.T, data []byte) {
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		back, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("roundtrip mismatch: %d in, %d out", len(data), len(back))
		}
	})
}

// FuzzDecompress feeds arbitrary bytes to Decompress: it may error but
// must never panic, hang, or allocate past the decode limits. The seed
// corpus mixes valid streams (framed and bare) with known-bad frames —
// truncations, bit flips, and a length-tampered container envelope.
func FuzzDecompress(f *testing.F, c compress.Codec) {
	f.Add([]byte(nil))
	f.Add([]byte{0, 1, 2, 3})
	valid, _ := c.Compress(smoothFloatField(64))
	f.Add(valid)
	if len(valid) > 1 {
		f.Add(valid[:len(valid)/2]) // truncated
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0x10
		f.Add(flipped) // bit-flipped
	}
	inner := c
	if fc, ok := c.(*container.Codec); ok {
		inner = fc.Unwrap()
	}
	if payload, err := inner.Compress(smoothFloatField(64)); err == nil {
		f.Add(tamperedFrame(inner.Name(), 1<<40, payload)) // hostile declared length
	}
	lim := compress.DecodeLimits{MaxOutputBytes: 1 << 24}
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := compress.DecompressLimits(c, data, lim) // errors are fine; panics are not
		if err == nil {
			if limit := lim.OutputCap(len(data)); int64(len(out)) > limit {
				t.Fatalf("decode of %d bytes produced %d bytes, over the %d-byte cap", len(data), len(out), limit)
			}
		}
	})
}
