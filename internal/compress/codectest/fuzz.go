package codectest

import (
	"bytes"
	"testing"

	"positbench/internal/compress"
)

// FuzzRoundtrip drives a codec with fuzzed inputs: every input must
// compress and decompress back to itself.
func FuzzRoundtrip(f *testing.F, c compress.Codec) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{7}, 1000))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add(smoothFloatField(256))
	f.Fuzz(func(t *testing.T, data []byte) {
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		back, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("roundtrip mismatch: %d in, %d out", len(data), len(back))
		}
	})
}

// FuzzDecompress feeds arbitrary bytes to Decompress: it may error but
// must never panic or hang.
func FuzzDecompress(f *testing.F, c compress.Codec) {
	f.Add([]byte(nil))
	f.Add([]byte{0, 1, 2, 3})
	valid, _ := c.Compress(smoothFloatField(64))
	f.Add(valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		c.Decompress(data) // errors are fine; panics are not
	})
}
