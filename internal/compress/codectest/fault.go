package codectest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/container"
)

// faultSeed resolves the RNG seed for one randomized fault subtest and
// logs it, so any failure is reproducible from the test output alone:
// rerun with POSITBENCH_FAULT_SEED=<logged value> to replay the exact
// corruption sequence. Each subtest passes a distinct default so the
// stock runs stay byte-identical to what they always were.
func faultSeed(t *testing.T, def int64) int64 {
	t.Helper()
	seed := def
	if env := os.Getenv("POSITBENCH_FAULT_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 0, 64)
		if err != nil {
			t.Fatalf("POSITBENCH_FAULT_SEED=%q: %v", env, err)
		}
		seed = v
	}
	t.Logf("fault seed: %#x (override with POSITBENCH_FAULT_SEED)", seed)
	return seed
}

// faultLimits bounds every decode attempt in the fault harness: corrupted
// input may error or (for unframed codecs) misdecode, but it must never
// make the decoder allocate past this cap.
func faultLimits(sampleLen int) compress.DecodeLimits {
	return compress.DecodeLimits{MaxOutputBytes: int64(4*sampleLen + 4096)}
}

// FaultInjection exercises a codec's decode path against systematically
// corrupted inputs: truncation at every prefix length, sampled single-bit
// flips, tampered frame length and checksum fields, and random garbage.
// Every attempt must return an error or a bounded result — never panic,
// never allocate past the decode limits. Codecs already wrapped in the
// container frame are held to the stronger contract that every corruption
// is detected.
func FaultInjection(t *testing.T, c compress.Codec) {
	t.Helper()
	sample := smoothFloatField(512)
	comp, err := c.Compress(sample)
	if err != nil {
		t.Fatalf("compress sample: %v", err)
	}
	lim := faultLimits(len(sample))
	_, framed := c.(*container.Codec)

	t.Run("TruncateEveryPrefix", func(t *testing.T) {
		for cut := 0; cut < len(comp); cut++ {
			out, err := decodeNoPanic(t, c, comp[:cut], lim)
			if framed && err == nil {
				t.Fatalf("framed codec decoded a %d/%d-byte prefix without error", cut, len(comp))
			}
			if err == nil && bytes.Equal(out, sample) && cut < len(comp) {
				t.Fatalf("truncation to %d bytes silently decoded to the original", cut)
			}
		}
	})

	t.Run("BitFlips", func(t *testing.T) {
		rng := rand.New(rand.NewSource(faultSeed(t, 0x5eed)))
		nFlips := 64
		if totalBits := 8 * len(comp); nFlips > totalBits {
			nFlips = totalBits
		}
		for i := 0; i < nFlips; i++ {
			pos := rng.Intn(8 * len(comp))
			mut := append([]byte(nil), comp...)
			mut[pos/8] ^= 1 << uint(pos%8)
			if _, err := decodeNoPanic(t, c, mut, lim); framed && err == nil {
				t.Fatalf("framed codec accepted a bit flip at bit %d", pos)
			}
		}
	})

	t.Run("LengthTamper", func(t *testing.T) {
		// A frame declaring an absurd original length must trip
		// ErrLimitExceeded under a small cap — before the decoder commits
		// memory to it.
		inner := c
		if fc, ok := c.(*container.Codec); ok {
			inner = fc.Unwrap()
		}
		payload, err := inner.Compress(sample)
		if err != nil {
			t.Fatal(err)
		}
		frame := tamperedFrame(inner.Name(), 1<<40, payload)
		fc := container.WrapLimits(inner, compress.DecodeLimits{MaxOutputBytes: 4096})
		out, err := decodeNoPanic(t, fc, frame, compress.DecodeLimits{MaxOutputBytes: 4096})
		if !errors.Is(err, compress.ErrLimitExceeded) {
			t.Fatalf("tampered length: got (%d bytes, %v), want ErrLimitExceeded", len(out), err)
		}
	})

	t.Run("ChecksumTamper", func(t *testing.T) {
		inner := c
		if fc, ok := c.(*container.Codec); ok {
			inner = fc.Unwrap()
		}
		payload, err := inner.Compress(sample)
		if err != nil {
			t.Fatal(err)
		}
		fc := container.Wrap(inner)
		// Correct length, wrong output checksum: the payload decodes
		// cleanly, so only the end-to-end CRC can catch it.
		frame := tamperedFrame(inner.Name(), uint64(len(sample)), payload)
		if _, err := decodeNoPanic(t, fc, frame, lim); !errors.Is(err, compress.ErrCorrupt) {
			t.Fatalf("tampered output checksum: got %v, want ErrCorrupt", err)
		}
		// Corrupted payload byte: caught by the payload checksum.
		good, err := fc.Compress(sample)
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), good...)
		mut[len(mut)-1] ^= 0xFF
		if _, err := decodeNoPanic(t, fc, mut, lim); !errors.Is(err, compress.ErrCorrupt) {
			t.Fatalf("corrupted payload: got %v, want ErrCorrupt", err)
		}
	})

	t.Run("RandomGarbage", func(t *testing.T) {
		rng := rand.New(rand.NewSource(faultSeed(t, 0xbad)))
		for trial := 0; trial < 128; trial++ {
			buf := make([]byte, rng.Intn(2048))
			rng.Read(buf)
			if trial%4 == 0 && len(buf) >= 4 {
				copy(buf, container.Magic[:]) // exercise the post-magic parse
			}
			_, err := decodeNoPanic(t, c, buf, lim)
			if framed && err == nil {
				t.Fatalf("framed codec accepted %d bytes of garbage (trial %d)", len(buf), trial)
			}
		}
	})
}

// decodeNoPanic runs one decode attempt on possibly-hostile input,
// converting panics into test failures and enforcing the output cap.
func decodeNoPanic(t *testing.T, c compress.Codec, data []byte, lim compress.DecodeLimits) (out []byte, err error) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("decode of %d corrupted bytes panicked: %v", len(data), p)
		}
	}()
	out, err = compress.DecompressLimits(c, data, lim)
	if err == nil {
		if limit := lim.OutputCap(len(data)); int64(len(out)) > limit {
			t.Fatalf("decode of %d bytes produced %d bytes, over the %d-byte cap", len(data), len(out), limit)
		}
	}
	return out, err
}

// tamperedFrame hand-assembles a container frame with an attacker-chosen
// declared original length and a bogus output checksum; the payload and its
// checksum are internally consistent so the frame parses.
func tamperedFrame(codecName string, origLen uint64, payload []byte) []byte {
	out := append([]byte(nil), container.Magic[:]...)
	out = append(out, container.Version, byte(len(codecName)))
	out = append(out, codecName...)
	out = binary.AppendUvarint(out, origLen)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, container.Checksum(payload))
	out = binary.LittleEndian.AppendUint32(out, 0xDEADBEEF)
	return append(out, payload...)
}
