// Package codectest provides a conformance suite run against every codec:
// roundtrip correctness on structured and adversarial inputs, corruption
// rejection, and compression-effectiveness sanity floors.
package codectest

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"sync"
	"testing"

	"positbench/internal/compress"
)

// exercised records, per test binary, the codec names Run has been invoked
// on. The registry meta-test uses it to fail if a codec is registered
// without ever facing this suite — a new codec cannot silently skip the
// fault-injection / stream-equivalence wall.
var (
	exercisedMu sync.Mutex
	exercised   = map[string]bool{}
)

// Exercised returns a snapshot of the codec names Run has covered so far in
// this test binary.
func Exercised() map[string]bool {
	exercisedMu.Lock()
	defer exercisedMu.Unlock()
	out := make(map[string]bool, len(exercised))
	for k, v := range exercised {
		out[k] = v
	}
	return out
}

// Run exercises the full conformance suite on c.
func Run(t *testing.T, c compress.Codec) {
	t.Helper()
	exercisedMu.Lock()
	exercised[c.Name()] = true
	exercisedMu.Unlock()
	t.Run("Empty", func(t *testing.T) { roundtrip(t, c, nil) })
	t.Run("OneByte", func(t *testing.T) { roundtrip(t, c, []byte{42}) })
	t.Run("AllSame", func(t *testing.T) { roundtrip(t, c, bytes.Repeat([]byte{7}, 10000)) })
	t.Run("AllBytes", func(t *testing.T) {
		all := make([]byte, 256)
		for i := range all {
			all[i] = byte(i)
		}
		roundtrip(t, c, bytes.Repeat(all, 40))
	})
	t.Run("Random", func(t *testing.T) {
		rng := rand.New(rand.NewSource(1))
		buf := make([]byte, 65536)
		rng.Read(buf)
		roundtrip(t, c, buf)
	})
	t.Run("Text", func(t *testing.T) {
		txt := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 2000)
		n := roundtrip(t, c, txt)
		if n >= len(txt) {
			t.Errorf("repetitive text did not compress: %d -> %d", len(txt), n)
		}
	})
	t.Run("FloatField", func(t *testing.T) {
		// Byte-oriented LZ without an entropy stage (lz4) legitimately
		// cannot compress smooth float data — the paper's own result — so
		// only bound the expansion here.
		data := smoothFloatField(1 << 14)
		n := roundtrip(t, c, data)
		if n > len(data)+len(data)/64+64 {
			t.Errorf("smooth float field expanded too much: %d -> %d", len(data), n)
		}
	})
	t.Run("RunsAndNoise", func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		var buf []byte
		for len(buf) < 100000 {
			if rng.Intn(3) == 0 {
				chunk := make([]byte, rng.Intn(100)+1)
				rng.Read(chunk)
				buf = append(buf, chunk...)
			} else {
				buf = append(buf, bytes.Repeat([]byte{byte(rng.Intn(4))}, rng.Intn(500)+1)...)
			}
		}
		roundtrip(t, c, buf)
	})
	t.Run("Quick", func(t *testing.T) {
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 25; trial++ {
			n := rng.Intn(5000)
			buf := make([]byte, n)
			switch trial % 3 {
			case 0:
				rng.Read(buf)
			case 1:
				for i := range buf {
					buf[i] = byte(rng.Intn(3))
				}
			case 2:
				for i := range buf {
					buf[i] = byte(i / 7)
				}
			}
			roundtrip(t, c, buf)
		}
	})
	t.Run("Streaming", func(t *testing.T) {
		data := smoothFloatField(1 << 13)
		var sink bytes.Buffer
		w := compress.NewWriter(c, &sink, 1<<13) // several chunks
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		back, err := io.ReadAll(compress.NewReader(c, &sink))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("streaming roundtrip mismatch")
		}
	})
	t.Run("TruncatedInput", func(t *testing.T) {
		data := smoothFloatField(1 << 10)
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{0, 1, len(comp) / 2, len(comp) - 1} {
			if cut >= len(comp) {
				continue
			}
			if back, err := c.Decompress(comp[:cut]); err == nil && bytes.Equal(back, data) {
				t.Errorf("truncation to %d bytes silently decoded to the original", cut)
			}
		}
	})
	t.Run("FaultInjection", func(t *testing.T) { FaultInjection(t, c) })
	t.Run("StreamEquivalence", func(t *testing.T) { StreamEquivalence(t, c) })
	t.Run("RangeEquivalence", func(t *testing.T) { RangeEquivalence(t, c) })
}

func roundtrip(t *testing.T, c compress.Codec, src []byte) int {
	t.Helper()
	n, err := compress.Roundtrip(c, src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// smoothFloatField builds a little-endian float32 stream of a smooth 1-D
// field, the structure scientific inputs share.
func smoothFloatField(n int) []byte {
	out := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		v := float32(math.Sin(float64(i)/50) + 2)
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}
