package codectest

import "bytes"

// Input is one named payload for differential (cross-implementation)
// testing: our encoder against an independent reference decoder and vice
// versa. The families mirror what the study feeds the codecs: pure noise,
// SDRBench-like smooth float fields, and adversarial shapes (runs, cycles,
// degenerate sizes) that stress block and window boundaries.
type Input struct {
	Name string
	Data []byte
}

// DifferentialInputs returns the standard payload families. Data is
// deterministic, so failures reproduce.
func DifferentialInputs() []Input {
	cycle := make([]byte, 256)
	for i := range cycle {
		cycle[i] = byte(i)
	}
	return []Input{
		{"Empty", nil},
		{"OneByte", []byte{42}},
		{"Random", randomBytes(64<<10, 31)},
		{"SDRBenchLike", smoothFloatField(16 << 10)}, // 64 KiB float32 field
		{"Adversarial", runsAndNoise(64<<10, 33)},
		{"AllZero", make([]byte, 32<<10)},
		{"ByteCycle", bytes.Repeat(cycle, 128)},
	}
}
