package codectest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"positbench/internal/chunkcache"
	"positbench/internal/compress"
	"positbench/internal/container"
)

// RangeEquivalence is the random-access conformance wall: for codec c it
// builds an indexed (v2) stream and asserts that
//
//   - the trailer is invisible to v1 readers (sequential decode unchanged)
//     and identical whether the serial or parallel writer emitted it;
//   - every `[off,len)` window — off=0, len=0, chunk-boundary straddling,
//     tail-straddling, whole-file, past-EOF, and a seeded random sample —
//     decoded through RangeReader and through ReaderAt.ReadAt is
//     byte-identical to the corresponding slice of the full serial decode;
//   - a window only ever touches ceil(len/chunk)+1 chunks;
//   - with a content-addressed cache attached, replayed windows hit the
//     cache and still return exactly the same bytes;
//   - a tampered trailer never yields wrong bytes: sequential fallback or a
//     typed taxonomy error only (TrailerFaults).
func RangeEquivalence(t *testing.T, c compress.Codec) {
	t.Helper()
	const chunk = 8 << 10
	data := smoothFloatField(10 << 10) // 40 KiB -> 5 full chunks
	stream, _ := indexedStream(t, c, data, chunk)
	total := int64(len(data))
	lim := faultLimits(len(data))

	t.Run("TrailerInvisibleToV1", func(t *testing.T) {
		back, err := io.ReadAll(compress.NewReader(c, bytes.NewReader(stream)))
		if err != nil {
			t.Fatalf("sequential decode of indexed stream: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("sequential decode of indexed stream mismatch")
		}
	})
	t.Run("ParallelWriterTrailer", func(t *testing.T) {
		var sink bytes.Buffer
		b := container.NewIndexBuilder()
		w := compress.NewParallelWriter(c, &sink, chunk, 4)
		w.SetIndexSink(b)
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sink.Bytes(), stream) {
			t.Fatal("parallel writer's indexed stream differs from serial writer's")
		}
	})

	ra, err := container.NewReaderAt(bytes.NewReader(stream), int64(len(stream)), c, container.ReaderAtOptions{Limits: lim})
	if err != nil {
		t.Fatalf("NewReaderAt: %v", err)
	}
	if ra.Size() != total {
		t.Fatalf("Size() = %d, want %d", ra.Size(), total)
	}

	windows := []struct{ off, len int64 }{
		{0, 0}, {0, 1}, {0, total}, {0, -1},
		{total, 0}, {total, 5}, {total + 9, 4}, // at and past EOF
		{total - 1, 1}, {total - 7, 100}, // tail-straddling
		{1, total},               // clamped whole-file
		{chunk - 3, 7},           // chunk-boundary straddling
		{chunk, chunk},           // chunk-aligned
		{chunk + 1, 3*chunk - 2}, // multi-chunk interior
	}
	rng := rand.New(rand.NewSource(faultSeed(t, 0x7a11)))
	for i := 0; i < 12; i++ {
		windows = append(windows, struct{ off, len int64 }{rng.Int63n(total + 2), rng.Int63n(total / 2)})
	}

	want := func(off, length int64) []byte {
		if off >= total {
			return nil
		}
		end := total
		if length >= 0 && off+length < end {
			end = off + length
		}
		return data[off:end]
	}

	t.Run("Windows", func(t *testing.T) {
		for _, win := range windows {
			rr, err := ra.Range(win.off, win.len)
			if err != nil {
				t.Fatalf("Range(%d,%d): %v", win.off, win.len, err)
			}
			got, err := io.ReadAll(rr)
			if err != nil {
				t.Fatalf("Range(%d,%d) read: %v", win.off, win.len, err)
			}
			w := want(win.off, win.len)
			if !bytes.Equal(got, w) {
				t.Fatalf("Range(%d,%d): got %d bytes, want %d, or content mismatch", win.off, win.len, len(got), len(w))
			}
			if maxChunks := int(int64(len(w))/chunk) + 2; rr.Chunks() > maxChunks {
				t.Fatalf("Range(%d,%d): touched %d chunks, bound is %d", win.off, win.len, rr.Chunks(), maxChunks)
			}
		}
	})
	t.Run("ReadAt", func(t *testing.T) {
		par := container.NewReaderAtIndex(bytes.NewReader(stream), ra.Index(), c, container.ReaderAtOptions{Limits: lim, Workers: 4})
		for _, win := range windows {
			if win.len < 0 {
				continue
			}
			p := make([]byte, win.len)
			n, err := par.ReadAt(p, win.off)
			w := want(win.off, win.len)
			if err != nil && err != io.EOF {
				t.Fatalf("ReadAt(%d,%d): %v", win.off, win.len, err)
			}
			wantEOF := win.len > 0 && (int64(len(w)) < win.len || win.off >= total)
			if (err == io.EOF) != wantEOF {
				t.Fatalf("ReadAt(%d,%d): EOF mismatch (err=%v, want %d of %d bytes)", win.off, win.len, err, len(w), win.len)
			}
			if !bytes.Equal(p[:n], w) {
				t.Fatalf("ReadAt(%d,%d): content mismatch (%d bytes)", win.off, win.len, n)
			}
		}
	})
	t.Run("CachedReplay", func(t *testing.T) {
		cache := chunkcache.New(1 << 20)
		cra := container.NewReaderAtIndex(bytes.NewReader(stream), ra.Index(), c, container.ReaderAtOptions{Limits: lim, Cache: cache})
		for pass := 0; pass < 2; pass++ {
			for _, win := range windows {
				rr, err := cra.Range(win.off, win.len)
				if err != nil {
					t.Fatal(err)
				}
				got, err := io.ReadAll(rr)
				if err != nil {
					t.Fatalf("pass %d Range(%d,%d): %v", pass, win.off, win.len, err)
				}
				if !bytes.Equal(got, want(win.off, win.len)) {
					t.Fatalf("pass %d Range(%d,%d): cached content mismatch", pass, win.off, win.len)
				}
			}
		}
		st := cache.Snapshot()
		if st.Hits == 0 {
			t.Fatal("replayed windows produced no cache hits")
		}
		if st.Hits+st.Misses != st.Lookups {
			t.Fatalf("cache stats do not reconcile: %d hits + %d misses != %d lookups", st.Hits, st.Misses, st.Lookups)
		}
	})
	t.Run("EmptyStream", func(t *testing.T) {
		empty, _ := indexedStream(t, c, nil, chunk)
		era, err := container.NewReaderAt(bytes.NewReader(empty), int64(len(empty)), c, container.ReaderAtOptions{Limits: lim})
		if err != nil {
			t.Fatalf("empty indexed stream: %v", err)
		}
		if era.Size() != 0 {
			t.Fatalf("empty stream Size() = %d", era.Size())
		}
		rr, err := era.Range(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out, err := io.ReadAll(rr); err != nil || len(out) != 0 {
			t.Fatalf("empty range read: %d bytes, %v", len(out), err)
		}
	})
	t.Run("TrailerFaults", func(t *testing.T) { trailerFaults(t, c, stream, data, ra.Index(), lim) })
}

// indexedStream builds a v2 (trailer-carrying) stream through the serial
// writer.
func indexedStream(t *testing.T, c compress.Codec, data []byte, chunk int) ([]byte, *container.Index) {
	t.Helper()
	var sink bytes.Buffer
	b := container.NewIndexBuilder()
	w := compress.NewWriter(c, &sink, chunk)
	w.SetIndexSink(b)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes(), b.Index()
}

// trailerFaults mutates only the trailer region of an indexed stream —
// truncation at every prefix, a bit flip at every bit, and structurally
// tampered records (offset/CRC/hash tamper, duplicates, out-of-order) with
// the body CRC recomputed so the tamper survives the checksum gate — and
// asserts the contract: ErrNoTrailer (sequential fallback still yields the
// exact original bytes), a taxonomy error, or a successful parse whose
// reads still return exactly the original bytes. Never wrong bytes.
func trailerFaults(t *testing.T, c compress.Codec, stream, data []byte, ix *container.Index, lim compress.DecodeLimits) {
	t.Helper()
	dataLen := int(ix.DataLen)

	check := func(desc string, mut []byte, verifyFallback bool) {
		t.Helper()
		ra, err := container.NewReaderAt(bytes.NewReader(mut), int64(len(mut)), c, container.ReaderAtOptions{Limits: lim})
		if err != nil {
			if errors.Is(err, container.ErrNoTrailer) {
				if !verifyFallback {
					return
				}
				// The data region is untouched, so the v1 fallback must
				// still deliver the original bytes.
				out, rerr := io.ReadAll(compress.NewReaderLimits(c, bytes.NewReader(mut), lim))
				if rerr != nil || !bytes.Equal(out, data) {
					t.Fatalf("%s: sequential fallback broke: %d bytes, %v", desc, len(out), rerr)
				}
				return
			}
			if !errors.Is(err, compress.ErrCorrupt) && !errors.Is(err, compress.ErrLimitExceeded) {
				t.Fatalf("%s: error outside taxonomy: %v", desc, err)
			}
			return
		}
		// The tampered trailer parsed. Whatever it claims, a read must
		// produce the original bytes or fail with a typed error.
		rr, err := ra.Range(0, -1)
		if err != nil {
			t.Fatalf("%s: Range: %v", desc, err)
		}
		out, rerr := io.ReadAll(rr)
		if rerr != nil {
			if !errors.Is(rerr, compress.ErrCorrupt) && !errors.Is(rerr, compress.ErrLimitExceeded) {
				t.Fatalf("%s: read error outside taxonomy: %v", desc, rerr)
			}
			return
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("%s: tampered trailer yielded wrong bytes (%d, want %d)", desc, len(out), len(data))
		}
	}

	// Truncation at every prefix of the trailer region (the data region and
	// terminator stay intact). Decoding the fallback on every cut is
	// wasteful — the classification is checked everywhere, the fallback
	// bytes on a sample.
	for cut := dataLen; cut < len(stream); cut++ {
		check("truncation", stream[:cut], cut%7 == 0)
	}
	// A bit flip at every bit of the trailer.
	for pos := 8 * dataLen; pos < 8*len(stream); pos++ {
		mut := append([]byte(nil), stream...)
		mut[pos/8] ^= 1 << uint(pos%8)
		check("bit flip", mut, pos%97 == 0)
	}

	// Structural record tampering with a self-consistent checksum: rebuild
	// the trailer from modified records so only the record-level validation
	// can catch it.
	retrailer := func(desc string, mutate func(refs []container.ChunkRef) []container.ChunkRef) {
		refs := mutate(append([]container.ChunkRef(nil), ix.Chunks...))
		mut := append([]byte(nil), stream[:dataLen]...)
		check(desc, append(mut, encodeTrailer(refs)...), true)
	}
	retrailer("offset tamper", func(refs []container.ChunkRef) []container.ChunkRef {
		refs[1].Offset++
		return refs
	})
	retrailer("compLen tamper", func(refs []container.ChunkRef) []container.ChunkRef {
		refs[1].CompLen++
		return refs
	})
	retrailer("rawLen tamper", func(refs []container.ChunkRef) []container.ChunkRef {
		refs[1].RawLen++
		return refs
	})
	retrailer("CRC tamper", func(refs []container.ChunkRef) []container.ChunkRef {
		refs[2].CRC ^= 0xdeadbeef
		return refs
	})
	retrailer("hash tamper", func(refs []container.ChunkRef) []container.ChunkRef {
		refs[2].Hash[0] ^= 0xff
		return refs
	})
	retrailer("duplicate record", func(refs []container.ChunkRef) []container.ChunkRef {
		return append(refs[:2], append([]container.ChunkRef{refs[1]}, refs[2:]...)...)
	})
	retrailer("out-of-order records", func(refs []container.ChunkRef) []container.ChunkRef {
		refs[1], refs[2] = refs[2], refs[1]
		return refs
	})
	retrailer("zero-length record", func(refs []container.ChunkRef) []container.ChunkRef {
		refs[3].RawLen = 0
		return refs
	})
}

// encodeTrailer serializes chunk records into trailer wire format,
// recomputing the body checksum. It deliberately re-implements the layout
// (rather than calling IndexBuilder) so format drift between writer and
// tests is itself a failure, and so tests can encode records no honest
// builder would produce.
func encodeTrailer(refs []container.ChunkRef) []byte {
	var body []byte
	body = binary.AppendUvarint(body, uint64(len(refs)))
	for i := range refs {
		body = binary.AppendUvarint(body, uint64(refs[i].Offset))
		body = binary.AppendUvarint(body, uint64(refs[i].CompLen))
		body = binary.AppendUvarint(body, uint64(refs[i].RawLen))
		body = binary.LittleEndian.AppendUint32(body, refs[i].CRC)
		body = append(body, refs[i].Hash[:]...)
	}
	out := body
	out = binary.LittleEndian.AppendUint32(out, container.Checksum(body))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	out = append(out, container.TrailerVersion)
	out = append(out, container.TrailerMagic[:]...)
	return out
}
