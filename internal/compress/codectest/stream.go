package codectest

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"positbench/internal/compress"
)

// StreamEquivalence asserts that the parallel streaming engine is
// indistinguishable from the serial one for codec c:
//
//   - ParallelWriter output is byte-identical to serial Writer output for
//     every tested chunk size and worker count (ordering guarantee);
//   - each side's Reader decodes the other side's stream (wire
//     compatibility), and the ParallelReader reproduces the data at every
//     worker count;
//   - on fault-injected streams (truncations, bit flips) the serial and
//     parallel readers agree on success vs failure, on the delivered
//     prefix, and on the error taxonomy class (first-error-wins).
func StreamEquivalence(t *testing.T, c compress.Codec) {
	t.Helper()
	inputs := []struct {
		name string
		data []byte
	}{
		{"Empty", nil},
		{"OneByte", []byte{42}},
		{"Smooth", smoothFloatField(12 << 10)}, // 48 KiB of float structure
		{"Random", randomBytes(32<<10, 21)},
		{"Adversarial", runsAndNoise(32<<10, 22)},
	}
	workerCounts := []int{1, 2, 4}
	for _, in := range inputs {
		in := in
		t.Run(in.name, func(t *testing.T) {
			for _, chunk := range []int{8 << 10, 13000} {
				serial := serialStream(t, c, in.data, chunk)
				for _, w := range workerCounts {
					if got := parallelStream(t, c, in.data, chunk, w); !bytes.Equal(got, serial) {
						t.Fatalf("chunk=%d workers=%d: parallel stream differs from serial (%d vs %d bytes)",
							chunk, w, len(got), len(serial))
					}
				}
				// Cross-read both directions.
				for _, w := range workerCounts {
					r := compress.NewParallelReader(c, bytes.NewReader(serial), w)
					back, err := io.ReadAll(r)
					r.Close()
					if err != nil {
						t.Fatalf("chunk=%d workers=%d: parallel read of serial stream: %v", chunk, w, err)
					}
					if !bytes.Equal(back, in.data) {
						t.Fatalf("chunk=%d workers=%d: parallel read mismatch", chunk, w)
					}
				}
				back, err := io.ReadAll(compress.NewReader(c, bytes.NewReader(serial)))
				if err != nil || !bytes.Equal(back, in.data) {
					t.Fatalf("chunk=%d: serial re-read failed: %v", chunk, err)
				}
			}
		})
	}
	t.Run("FaultEquivalence", func(t *testing.T) { streamFaultEquivalence(t, c) })
}

// streamFaultEquivalence corrupts a small multi-chunk stream and checks
// that the serial and parallel decode paths fail identically.
func streamFaultEquivalence(t *testing.T, c compress.Codec) {
	t.Helper()
	data := smoothFloatField(2 << 10) // 8 KiB over 2 KiB chunks -> 4 chunks
	stream := serialStream(t, c, data, 2<<10)
	lim := faultLimits(len(data))

	check := func(desc string, mut []byte) {
		sOut, sErr := io.ReadAll(compress.NewReaderLimits(c, bytes.NewReader(mut), lim))
		r := compress.NewParallelReaderLimits(c, bytes.NewReader(mut), lim, 4)
		pOut, pErr := io.ReadAll(r)
		r.Close()
		if (sErr == nil) != (pErr == nil) {
			t.Fatalf("%s: serial err %v, parallel err %v", desc, sErr, pErr)
		}
		if !bytes.Equal(sOut, pOut) {
			t.Fatalf("%s: serial delivered %d bytes, parallel %d", desc, len(sOut), len(pOut))
		}
		for _, sentinel := range []error{compress.ErrCorrupt, compress.ErrTruncated, compress.ErrLimitExceeded} {
			if errors.Is(sErr, sentinel) != errors.Is(pErr, sentinel) {
				t.Fatalf("%s: taxonomy mismatch for %v: serial %v, parallel %v", desc, sentinel, sErr, pErr)
			}
		}
	}

	rng := rand.New(rand.NewSource(0xfa17))
	for i := 0; i < 10; i++ {
		cut := rng.Intn(len(stream))
		check("truncation", stream[:cut])
	}
	for i := 0; i < 24; i++ {
		pos := rng.Intn(8 * len(stream))
		mut := append([]byte(nil), stream...)
		mut[pos/8] ^= 1 << uint(pos%8)
		check("bit flip", mut)
	}
}

func serialStream(t *testing.T, c compress.Codec, data []byte, chunk int) []byte {
	t.Helper()
	var sink bytes.Buffer
	w := compress.NewWriter(c, &sink, chunk)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes()
}

func parallelStream(t *testing.T, c compress.Codec, data []byte, chunk, workers int) []byte {
	t.Helper()
	var sink bytes.Buffer
	w := compress.NewParallelWriter(c, &sink, chunk, workers)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes()
}

func randomBytes(n int, seed int64) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}

// runsAndNoise interleaves long runs with noise bursts, the stress shape
// the conformance suite uses.
func runsAndNoise(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var buf []byte
	for len(buf) < n {
		if rng.Intn(3) == 0 {
			chunk := make([]byte, rng.Intn(100)+1)
			rng.Read(chunk)
			buf = append(buf, chunk...)
		} else {
			buf = append(buf, bytes.Repeat([]byte{byte(rng.Intn(4))}, rng.Intn(500)+1)...)
		}
	}
	return buf[:n]
}
