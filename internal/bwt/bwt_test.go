package bwt

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naive computes the BWT by explicitly sorting all rotations.
func naive(s []byte) ([]byte, int) {
	n := len(s)
	rots := make([]int, n)
	for i := range rots {
		rots[i] = i
	}
	rot := func(start, j int) byte { return s[(start+j)%n] }
	sort.SliceStable(rots, func(a, b int) bool {
		for j := 0; j < n; j++ {
			ca, cb := rot(rots[a], j), rot(rots[b], j)
			if ca != cb {
				return ca < cb
			}
		}
		return rots[a] < rots[b] // identical rotations: stable by index
	})
	out := make([]byte, n)
	primary := 0
	for i, start := range rots {
		if start == 0 {
			primary = i
		}
		out[i] = s[(start+n-1)%n]
	}
	return out, primary
}

func TestKnownVector(t *testing.T) {
	// The classic example: "banana" rotations sort to BWT "nnbaaa".
	got, idx := Transform([]byte("banana"))
	if string(got) != "nnbaaa" {
		t.Fatalf("BWT(banana) = %q", got)
	}
	back, err := Inverse(got, idx)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != "banana" {
		t.Fatalf("inverse = %q", back)
	}
}

func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(64) + 1
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(4)) // small alphabet stresses ties
		}
		gotL, gotI := Transform(s)
		wantL, _ := naive(s)
		if !bytes.Equal(gotL, wantL) {
			t.Fatalf("s=%v: got %v want %v", s, gotL, wantL)
		}
		// The primary index may differ between equally sorted identical
		// rotations, but the inverse must still reproduce s.
		back, err := Inverse(gotL, gotI)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, s) {
			t.Fatalf("s=%v: inverse %v", s, back)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	if l, _ := Transform(nil); l != nil {
		t.Fatal("empty")
	}
	l, i := Transform([]byte{42})
	if len(l) != 1 || l[0] != 42 || i != 0 {
		t.Fatal("single byte")
	}
	back, err := Inverse(l, i)
	if err != nil || !bytes.Equal(back, []byte{42}) {
		t.Fatal("single byte inverse")
	}
	// All-identical input.
	s := bytes.Repeat([]byte{7}, 1000)
	l, i = Transform(s)
	back, err = Inverse(l, i)
	if err != nil || !bytes.Equal(back, s) {
		t.Fatal("uniform input")
	}
	// Invalid primary index.
	if _, err := Inverse([]byte{1, 2}, 5); err == nil {
		t.Fatal("want error for bad primary")
	}
	if _, err := Inverse([]byte{1, 2}, -1); err == nil {
		t.Fatal("want error for negative primary")
	}
	b, err := Inverse(nil, 0)
	if err != nil || b != nil {
		t.Fatal("empty inverse")
	}
}

func TestRoundtripQuick(t *testing.T) {
	f := func(s []byte) bool {
		l, i := Transform(s)
		back, err := Inverse(l, i)
		if err != nil {
			return false
		}
		return bytes.Equal(back, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := make([]byte, 1<<18)
	for i := range s {
		// Compressible structure: repeated phrases.
		s[i] = byte((i / 7 % 13) * (i % 3))
	}
	for i := 0; i < 1000; i++ {
		s[rng.Intn(len(s))] = byte(rng.Intn(256))
	}
	l, idx := Transform(s)
	back, err := Inverse(l, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, s) {
		t.Fatal("large roundtrip failed")
	}
}

func BenchmarkTransform(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := make([]byte, 1<<20)
	for i := range s {
		s[i] = byte(rng.Intn(16))
	}
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(s)
	}
}

func BenchmarkInverse(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	s := make([]byte, 1<<20)
	for i := range s {
		s[i] = byte(rng.Intn(16))
	}
	l, idx := Transform(s)
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Inverse(l, idx); err != nil {
			b.Fatal(err)
		}
	}
}
