// Package bwt implements the Burrows-Wheeler transform and its inverse.
// The forward transform sorts all cyclic rotations of the block (the same
// formulation bzip2 uses) with a counting-sort class-doubling algorithm,
// O(n log n) time and O(n) auxiliary space.
package bwt

import "positbench/internal/compress"

// Transform returns the last column of the sorted rotation matrix of s and
// the primary index (the row containing the original string). s is not
// modified. Blocks up to ~1<<31 bytes are supported.
func Transform(s []byte) ([]byte, int) {
	n := len(s)
	if n == 0 {
		return nil, 0
	}
	if n == 1 {
		return []byte{s[0]}, 0
	}
	p := sortRotations(s)
	out := make([]byte, n)
	primary := 0
	for i, start := range p {
		if start == 0 {
			primary = i
		}
		out[i] = s[(int(start)+n-1)%n]
	}
	return out, primary
}

// sortRotations returns the starting indices of the lexicographically
// sorted cyclic rotations of s.
func sortRotations(s []byte) []int32 {
	n := len(s)
	alpha := 256
	if n > alpha {
		alpha = n
	}
	p := make([]int32, n)  // rotation order
	c := make([]int32, n)  // equivalence class per position
	pn := make([]int32, n) // scratch order
	cn := make([]int32, n) // scratch classes
	cnt := make([]int32, alpha)

	// Round 0: counting sort by single byte.
	for _, b := range s {
		cnt[b]++
	}
	for i := 1; i < 256; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := n - 1; i >= 0; i-- {
		cnt[s[i]]--
		p[cnt[s[i]]] = int32(i)
	}
	c[p[0]] = 0
	classes := int32(1)
	for i := 1; i < n; i++ {
		if s[p[i]] != s[p[i-1]] {
			classes++
		}
		c[p[i]] = classes - 1
	}

	for k := 1; k < n && classes < int32(n); k <<= 1 {
		// Sort by the second half: shift starts back by k.
		for i := 0; i < n; i++ {
			pn[i] = p[i] - int32(k)
			if pn[i] < 0 {
				pn[i] += int32(n)
			}
		}
		// Stable counting sort by class of the first half.
		for i := int32(0); i < classes; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[c[pn[i]]]++
		}
		for i := int32(1); i < classes; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			cl := c[pn[i]]
			cnt[cl]--
			p[cnt[cl]] = pn[i]
		}
		// Recompute classes from (c[i], c[i+k]).
		cn[p[0]] = 0
		classes = 1
		for i := 1; i < n; i++ {
			a1 := c[p[i]]
			b1 := c[(int(p[i])+k)%n]
			a2 := c[p[i-1]]
			b2 := c[(int(p[i-1])+k)%n]
			if a1 != a2 || b1 != b2 {
				classes++
			}
			cn[p[i]] = classes - 1
		}
		c, cn = cn, c
	}
	return p
}

// Inverse reconstructs the original block from the last column and the
// primary index using the LF mapping.
func Inverse(last []byte, primary int) ([]byte, error) {
	n := len(last)
	if n == 0 {
		return nil, nil
	}
	if primary < 0 || primary >= n {
		return nil, compress.Errorf(compress.ErrCorrupt, "bwt: primary index %d out of range [0,%d)", primary, n)
	}
	// next[i]: row of the rotation that follows row i's rotation.
	var cnt [256]int
	for _, b := range last {
		cnt[b]++
	}
	var base [256]int
	sum := 0
	for v := 0; v < 256; v++ {
		base[v] = sum
		sum += cnt[v]
	}
	next := make([]int32, n)
	var seen [256]int
	for i, b := range last {
		next[base[b]+seen[b]] = int32(i)
		seen[b]++
	}
	out := make([]byte, n)
	row := next[primary]
	for i := 0; i < n; i++ {
		out[i] = last[row]
		row = next[row]
	}
	return out, nil
}
