// Package bwt implements the Burrows-Wheeler transform and its inverse.
// The forward transform sorts all cyclic rotations of the block (the same
// formulation bzip2 uses) with a counting-sort class-doubling algorithm,
// O(n log n) time and O(n) auxiliary space.
package bwt

import (
	"sync"

	"positbench/internal/compress"
)

// sortScratch carries the working arrays of the class-doubling sort and the
// inverse LF table across calls. bzip2c transforms one block per chunk, so
// without reuse every chunk paid five O(n) allocations here; the pool keeps
// steady-state streaming allocation-free. Buffers are only retained inside
// this package — callers never see pooled memory.
type sortScratch struct {
	p, c, pn, cn, cnt []int32
	next              []int32
}

var scratchPool = sync.Pool{New: func() any { return new(sortScratch) }}

// grow32 returns s resized to n, reallocating only when capacity is short.
func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// Transform returns the last column of the sorted rotation matrix of s and
// the primary index (the row containing the original string). s is not
// modified. Blocks up to ~1<<31 bytes are supported.
func Transform(s []byte) ([]byte, int) {
	n := len(s)
	if n == 0 {
		return nil, 0
	}
	if n == 1 {
		return []byte{s[0]}, 0
	}
	sc := scratchPool.Get().(*sortScratch)
	p := sc.sortRotations(s)
	out := make([]byte, n)
	primary := 0
	for i, start := range p {
		j := int(start) - 1
		if j < 0 {
			j += n
		}
		if start == 0 {
			primary = i
		}
		out[i] = s[j]
	}
	scratchPool.Put(sc)
	return out, primary
}

// sortRotations returns the starting indices of the lexicographically
// sorted cyclic rotations of s. The result aliases pooled scratch and is
// only valid until the scratch is returned to the pool.
func (sc *sortScratch) sortRotations(s []byte) []int32 {
	n := len(s)
	alpha := 256
	if n > alpha {
		alpha = n
	}
	sc.p = grow32(sc.p, n)   // rotation order
	sc.c = grow32(sc.c, n)   // equivalence class per position
	sc.pn = grow32(sc.pn, n) // scratch order
	sc.cn = grow32(sc.cn, n) // scratch classes
	sc.cnt = grow32(sc.cnt, alpha)
	p, c, pn, cn, cnt := sc.p, sc.c, sc.pn, sc.cn, sc.cnt

	// Round 0: counting sort by single byte.
	clear(cnt[:256])
	for _, b := range s {
		cnt[b]++
	}
	for i := 1; i < 256; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := n - 1; i >= 0; i-- {
		cnt[s[i]]--
		p[cnt[s[i]]] = int32(i)
	}
	c[p[0]] = 0
	classes := int32(1)
	for i := 1; i < n; i++ {
		if s[p[i]] != s[p[i-1]] {
			classes++
		}
		c[p[i]] = classes - 1
	}

	// Each doubling round is a stable counting sort by the class of the
	// first k characters; the loop exits as soon as every rotation sits in
	// its own class (fully ranked), which on low-entropy float data happens
	// well before k reaches n.
	for k := 1; k < n && classes < int32(n); k <<= 1 {
		// Sort by the second half: shift starts back by k.
		for i := 0; i < n; i++ {
			t := p[i] - int32(k)
			if t < 0 {
				t += int32(n)
			}
			pn[i] = t
		}
		// Stable counting sort by class of the first half.
		clear(cnt[:classes])
		for i := 0; i < n; i++ {
			cnt[c[pn[i]]]++
		}
		for i := int32(1); i < classes; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			cl := c[pn[i]]
			cnt[cl]--
			p[cnt[cl]] = pn[i]
		}
		// Recompute classes from (c[i], c[i+k]); indices stay in [0, 2n) so
		// a conditional subtract replaces the modulo.
		cn[p[0]] = 0
		classes = 1
		prev := int(p[0])
		prevB := prev + k
		if prevB >= n {
			prevB -= n
		}
		a2, b2 := c[prev], c[prevB]
		for i := 1; i < n; i++ {
			cur := int(p[i])
			curB := cur + k
			if curB >= n {
				curB -= n
			}
			a1, b1 := c[cur], c[curB]
			if a1 != a2 || b1 != b2 {
				classes++
			}
			cn[cur] = classes - 1
			a2, b2 = a1, b1
		}
		c, cn = cn, c
	}
	sc.c, sc.cn = c, cn // keep the swapped views so capacity is not lost
	return p
}

// Inverse reconstructs the original block from the last column and the
// primary index using the LF mapping. The permutation is one n-cycle, so a
// naive walk is a serial chain of n dependent random loads; Inverse also
// builds the inverse permutation and reconstructs from both ends at once,
// doubling the memory-level parallelism of the walk (the dominant cost on
// blocks that spill out of L2).
func Inverse(last []byte, primary int) ([]byte, error) {
	n := len(last)
	if n == 0 {
		return nil, nil
	}
	if primary < 0 || primary >= n {
		return nil, compress.Errorf(compress.ErrCorrupt, "bwt: primary index %d out of range [0,%d)", primary, n)
	}
	// next[i]: row of the rotation that follows row i's rotation.
	var cnt [256]int32
	for _, b := range last {
		cnt[b]++
	}
	var base [256]int32
	sum := int32(0)
	for v := 0; v < 256; v++ {
		base[v] = sum
		sum += cnt[v]
	}
	sc := scratchPool.Get().(*sortScratch)
	sc.next = grow32(sc.next, n)
	sc.pn = grow32(sc.pn, n)
	next, inv := sc.next, sc.pn
	// base[b] now doubles as the running rank counter: after the loop it has
	// advanced past every occurrence of b. inv (the forward FL mapping) is
	// the same rank computation written to sequential indices.
	for i, b := range last {
		r := base[b]
		base[b] = r + 1
		next[r] = int32(i)
		inv[i] = r
	}
	out := make([]byte, n)
	half := n / 2
	// Forward chain emits out[0], out[1], ...; backward chain (via the
	// inverse permutation) emits out[n-1], out[n-2], ... The two dependent
	// load chains overlap, so the walk runs at twice the effective MLP.
	const packLimit = 1 << 24
	if n < packLimit {
		// Pack the byte each row emits into the spare high bits of its chain
		// entry: the walk then touches one cache line per step instead of
		// two (chain entry + last[row]), and the walk is DRAM-latency bound.
		// The packing passes themselves are sequential streams.
		for r, b := range last {
			next[r] |= int32(b) << 24
			inv[r] |= int32(b) << 24
		}
		const mask = packLimit - 1
		rowF := next[primary] & mask
		rowB := int32(primary)
		for i, j := 0, n-1; i < half; i, j = i+1, j-1 {
			v := next[rowF]
			out[i] = byte(uint32(v) >> 24)
			rowF = v & mask
			v = inv[rowB]
			out[j] = byte(uint32(v) >> 24)
			rowB = v & mask
		}
		if n&1 == 1 {
			out[half] = byte(uint32(next[rowF]) >> 24)
		}
	} else {
		rowF := next[primary]
		rowB := int32(primary)
		for i, j := 0, n-1; i < half; i, j = i+1, j-1 {
			out[i] = last[rowF]
			rowF = next[rowF]
			out[j] = last[rowB]
			rowB = inv[rowB]
		}
		if n&1 == 1 {
			out[half] = last[rowF]
		}
	}
	scratchPool.Put(sc)
	return out, nil
}
