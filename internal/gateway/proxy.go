package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"positbench/internal/resilience"
	"positbench/internal/trace"
)

// errNoBackend means every eligible backend was already tried.
var errNoBackend = errors.New("gateway: no backend available")

// upstream is one try's successful outcome: the response, body-buffered up
// to the cap, plus the remaining stream and its release when it overflowed.
type upstream struct {
	status  int
	header  http.Header
	body    []byte
	rest    io.ReadCloser // non-nil when the body exceeded the buffer cap
	release func()        // ends the try's context; call once done with rest
	backend *backend
}

// dispose tears down a result that lost the race or finished relaying.
func (u *upstream) dispose() {
	if u.rest != nil {
		u.rest.Close()
	}
	if u.release != nil {
		u.release()
	}
}

// handleProxy is the catch-all data-plane route: shard, try, retry, hedge,
// relay.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	var sp *trace.Span
	if g.tracer != nil {
		sp = g.tracer.Start("proxy", r.Header.Get("X-Request-ID"))
		sp.Annotate("path", r.URL.Path)
		defer sp.End()
	}

	body, overflowed, err := readUpTo(r.Body, g.cfg.MaxBufferBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "body_read", err.Error())
		return
	}
	if isAutoCompress(r) {
		g.metrics.autoRequests.Add(1)
	}
	if _, ok := objectKey(r.URL.Path); ok {
		g.metrics.objectRequests.Add(1)
		if isRangeRead(r) {
			g.metrics.rangeRequests.Add(1)
		}
	}
	key := shardKey(r, body)
	st := newTryState(g.ring.sequence(key), len(g.backends))
	sp.Annotate("shard_key", strconv.FormatUint(key, 16))

	if overflowed {
		// The body cannot be replayed: stream it through exactly once, no
		// retries, no hedging. Half-streamed POSTs must never be resent.
		// Auto requests take this path too: the backend only samples the
		// stream head, so replay safety, not advice quality, is what the
		// buffering boundary protects.
		g.metrics.bodiesStreamed.Add(1)
		if isAutoCompress(r) {
			g.metrics.autoStreamed.Add(1)
		}
		sp.Annotate("mode", "streamed")
		g.proxyStreaming(w, r, body, st, sp)
		return
	}
	g.proxyBuffered(w, r, body, st, sp)
}

// isAutoCompress reports whether r asks a backend's advisor to pick the
// codec; the gateway surfaces those decisions in its own metrics.
func isAutoCompress(r *http.Request) bool {
	return r.Method == http.MethodPost && r.URL.Path == "/v1/compress/auto"
}

// isRangeRead reports whether r is a partial object read: GET /v1/read
// with a Range header or explicit ?off=/?len= window.
func isRangeRead(r *http.Request) bool {
	if r.Method != http.MethodGet || !strings.HasPrefix(r.URL.Path, "/v1/read/") {
		return false
	}
	if r.Header.Get("Range") != "" {
		return true
	}
	q := r.URL.Query()
	return q.Get("off") != "" || q.Get("len") != ""
}

// observeAutoChoice records which codec the backend's advisor chose for a
// successfully answered auto request, from the relayed response header.
func (g *Gateway) observeAutoChoice(r *http.Request, status int, hdr http.Header, sp *trace.Span) {
	if !isAutoCompress(r) || status < 200 || status >= 300 {
		return
	}
	if chosen := hdr.Get("X-Positd-Codec"); chosen != "" {
		g.metrics.recordAutoChosen(chosen)
		sp.Annotate("auto_codec", chosen)
	}
}

// proxyBuffered runs the full resilience plan over a replayable request.
func (g *Gateway) proxyBuffered(w http.ResponseWriter, r *http.Request, body []byte, st *tryState, sp *trace.Span) {
	hedge := g.cfg.HedgeAfter
	if hedge < 0 {
		hedge = 0
	}
	plan := resilience.Plan[*upstream]{
		Clock:      g.clock,
		HedgeAfter: hedge,
		Delay:      func(i int) time.Duration { return g.cfg.Backoff.Delay(i - 1) },
		Dispose:    func(u *upstream) { u.dispose() },
	}
	arms := make([]func(ctx context.Context) (*upstream, error), 0, g.cfg.MaxTries)
	for i := 0; i < g.cfg.MaxTries; i++ {
		arms = append(arms, func(ctx context.Context) (*upstream, error) {
			return g.tryBuffered(ctx, r, body, st)
		})
	}
	u, stats, err := plan.Do(r.Context(), arms)

	if retries := int64(stats.Launched) - 1 - int64(stats.Hedges); retries > 0 {
		g.metrics.retriesTotal.Add(retries)
	}
	g.metrics.hedgesLaunched.Add(int64(stats.Hedges))
	if stats.HedgeWon {
		g.metrics.hedgeWins.Add(1)
	}
	sp.Annotate("tries", strconv.Itoa(stats.Launched))
	if stats.Hedges > 0 {
		sp.Annotate("hedges", strconv.Itoa(stats.Hedges))
	}

	if err != nil {
		if r.Context().Err() != nil {
			sp.Annotate("outcome", "client_gone")
			writeError(w, statusClientClosedRequest, "client_closed_request",
				"client went away before a backend answered")
			return
		}
		// Forward the last retryable upstream answer (a 429 with its
		// Retry-After, or a 5xx) so the client reacts to the backend's own
		// signal; fall back to a synthetic 502 when no backend answered.
		if status, hdr, blob := st.lastFail(); status != 0 {
			sp.Annotate("outcome", "exhausted_"+strconv.Itoa(status))
			copyRelayHeaders(w.Header(), hdr)
			w.WriteHeader(status)
			w.Write(blob)
			return
		}
		sp.Annotate("outcome", "no_backend")
		g.metrics.noBackend.Add(1)
		writeError(w, http.StatusBadGateway, "no_backend", err.Error())
		return
	}

	sp.Annotate("backend", u.backend.name)
	sp.SetBytes(int64(len(body)), int64(len(u.body)))
	g.observeAutoChoice(r, u.status, u.header, sp)
	g.relay(w, u)
}

// proxyStreaming forwards an unbuffered (over-cap) request body in a
// single try.
func (g *Gateway) proxyStreaming(w http.ResponseWriter, r *http.Request, prefix []byte, st *tryState, sp *trace.Span) {
	b, forced := g.claim(st)
	if b == nil {
		g.metrics.noBackend.Add(1)
		writeError(w, http.StatusBadGateway, "no_backend", errNoBackend.Error())
		return
	}
	b.requests.Add(1)
	if forced {
		g.metrics.forcedTries.Add(1)
	}
	sp.Annotate("backend", b.name)
	req := g.upstreamRequest(r.Context(), r, b, io.MultiReader(bytes.NewReader(prefix), r.Body), r.ContentLength)
	resp, err := g.client.Do(req)
	if err != nil {
		b.breaker.Record(false)
		b.failures.Add(1)
		writeError(w, http.StatusBadGateway, "upstream_failure", err.Error())
		return
	}
	defer resp.Body.Close()
	b.breaker.Record(resp.StatusCode < 500)
	if resp.StatusCode >= 500 {
		b.failures.Add(1)
	}
	g.observeAutoChoice(r, resp.StatusCode, resp.Header, sp)
	copyRelayHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The status line is on the wire: kill the connection rather than
		// let a truncated body masquerade as a complete response.
		panic(http.ErrAbortHandler)
	}
}

// tryBuffered sends one try of a replayable request to the next backend in
// the preference order. Retryable outcomes (transport error, per-try
// timeout, 429, 5xx) return an error; everything else — including
// deterministic 4xx client errors — is a result to relay.
func (g *Gateway) tryBuffered(ctx context.Context, r *http.Request, body []byte, st *tryState) (*upstream, error) {
	b, forced := g.claim(st)
	if b == nil {
		return nil, errNoBackend
	}
	b.requests.Add(1)
	if forced {
		g.metrics.forcedTries.Add(1)
	}

	tctx, tcancel := context.WithCancel(ctx)
	var settleOnce sync.Once
	settled := make(chan struct{})
	settle := func() { settleOnce.Do(func() { close(settled) }) }
	var timedOut atomic.Bool
	if g.cfg.PerTryTimeout > 0 {
		go func() {
			select {
			case <-g.clock.After(g.cfg.PerTryTimeout):
				timedOut.Store(true)
				tcancel()
			case <-settled:
			}
		}()
	}
	fail := func(err error) (*upstream, error) {
		settle()
		tcancel()
		b.breaker.Record(false)
		b.failures.Add(1)
		if timedOut.Load() {
			err = fmt.Errorf("gateway: per-try timeout on %s: %w", b.name, err)
		}
		return nil, err
	}

	req := g.upstreamRequest(tctx, r, b, bytes.NewReader(body), int64(len(body)))
	resp, err := g.client.Do(req)
	if err != nil {
		return fail(err)
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<10))
		resp.Body.Close()
		st.saveFail(resp.StatusCode, resp.Header, blob)
		settle()
		tcancel()
		// A 429 is a healthy backend shedding load, not a failure the
		// breaker should count; a 5xx is.
		saturated := resp.StatusCode == http.StatusTooManyRequests
		b.breaker.Record(saturated)
		if !saturated {
			b.failures.Add(1)
		}
		return nil, fmt.Errorf("gateway: backend %s answered %d", b.name, resp.StatusCode)
	}

	buf, overflowed, err := readUpTo(resp.Body, g.cfg.MaxBufferBytes)
	if err != nil {
		// The backend died mid-body before the client saw anything: fully
		// retryable, the next try replays the request elsewhere.
		resp.Body.Close()
		return fail(fmt.Errorf("gateway: reading %s response: %w", b.name, err))
	}
	b.breaker.Record(true)
	u := &upstream{status: resp.StatusCode, header: resp.Header, body: buf, backend: b}
	if overflowed {
		// Stop the per-try watchdog and hand the live stream to the relay;
		// the try context stays open until release.
		settle()
		u.rest = resp.Body
		u.release = tcancel
	} else {
		resp.Body.Close()
		settle()
		tcancel()
	}
	return u, nil
}

// relay writes a winning upstream result to the client, streaming any
// over-cap remainder and aborting the connection on a mid-stream failure.
func (g *Gateway) relay(w http.ResponseWriter, u *upstream) {
	copyRelayHeaders(w.Header(), u.header)
	w.WriteHeader(u.status)
	w.Write(u.body)
	if u.rest != nil {
		if _, err := io.Copy(w, u.rest); err != nil {
			u.dispose()
			panic(http.ErrAbortHandler)
		}
	}
	u.dispose()
}

// shardKey picks the routing hash: an explicit X-Shard-Key wins, then the
// object key for object-tier routes, then the body fingerprint, then the
// path (for bodyless requests). Object routes must hash by key — not body
// — so a PUT and every later ranged GET of the same object land on the
// same backend preference order, and range requests find the chunks the
// upload left behind (and each other's warm chunk cache).
func shardKey(r *http.Request, body []byte) uint64 {
	if k := r.Header.Get("X-Shard-Key"); k != "" {
		return hashString(k)
	}
	if key, ok := objectKey(r.URL.Path); ok {
		return hashString("object:" + key)
	}
	if len(body) > 0 {
		return hashBytes(body)
	}
	return hashString(r.URL.Path)
}

// objectKey extracts the {key} segment of /v1/objects/{key} and
// /v1/read/{key}; reads and writes of one object must shard identically.
func objectKey(path string) (string, bool) {
	for _, prefix := range []string{"/v1/objects/", "/v1/read/"} {
		if rest, ok := strings.CutPrefix(path, prefix); ok && rest != "" && !strings.Contains(rest, "/") {
			return rest, true
		}
	}
	return "", false
}

// readUpTo reads rd until EOF or just past the cap. overflowed reports
// that rd has more to give; the returned bytes are then a prefix and rd
// continues where they stop.
func readUpTo(rd io.Reader, capBytes int64) (buf []byte, overflowed bool, err error) {
	if rd == nil {
		return nil, false, nil
	}
	var b bytes.Buffer
	n, err := io.Copy(&b, io.LimitReader(rd, capBytes+1))
	if err != nil {
		return nil, false, err
	}
	return b.Bytes(), n > capBytes, nil
}

// upstreamRequest rewrites the inbound request against one backend.
func (g *Gateway) upstreamRequest(ctx context.Context, r *http.Request, b *backend, body io.Reader, contentLength int64) *http.Request {
	u := *r.URL
	u.Scheme = b.url.Scheme
	u.Host = b.url.Host
	req, _ := http.NewRequestWithContext(ctx, r.Method, u.String(), body)
	req.Header = r.Header.Clone()
	stripHopByHop(req.Header)
	req.ContentLength = contentLength
	if host, _, ok := splitHostPort(r.RemoteAddr); ok {
		if prior := req.Header.Get("X-Forwarded-For"); prior != "" {
			req.Header.Set("X-Forwarded-For", prior+", "+host)
		} else {
			req.Header.Set("X-Forwarded-For", host)
		}
	}
	return req
}

// hopByHopHeaders never cross a proxy (RFC 9110 §7.6.1).
var hopByHopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func stripHopByHop(h http.Header) {
	for _, k := range hopByHopHeaders {
		h.Del(k)
	}
}

// copyRelayHeaders copies end-to-end response headers to the client.
func copyRelayHeaders(dst http.Header, src map[string][]string) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
	stripHopByHop(dst)
}

func splitHostPort(addr string) (host, port string, ok bool) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i], addr[i+1:], true
		}
	}
	return "", "", false
}
