package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestObjectKeyExtraction pins which paths shard by object key.
func TestObjectKeyExtraction(t *testing.T) {
	cases := []struct {
		path string
		key  string
		ok   bool
	}{
		{"/v1/objects/field.f32.gz", "field.f32.gz", true},
		{"/v1/read/field.f32.gz", "field.f32.gz", true},
		{"/v1/objects/", "", false},
		{"/v1/read/", "", false},
		{"/v1/read/a/b", "", false},
		{"/v1/compress/gzip", "", false},
		{"/v1/objects", "", false},
	}
	for _, tc := range cases {
		key, ok := objectKey(tc.path)
		if key != tc.key || ok != tc.ok {
			t.Errorf("objectKey(%q) = %q, %v; want %q, %v", tc.path, key, ok, tc.key, tc.ok)
		}
	}
}

// TestObjectRoutesShardByKey: a PUT and every later read of the same
// object key route to the same backend, regardless of body or window —
// while different keys can land elsewhere. Three recording backends, one
// object, four request shapes.
func TestObjectRoutesShardByKey(t *testing.T) {
	hits := make([]int, 3)
	urls := make([]string, 3)
	for i := 0; i < 3; i++ {
		i := i
		b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i]++
			io.Copy(io.Discard, r.Body)
			if r.Header.Get("Range") != "" || r.URL.Query().Get("off") != "" {
				w.Header().Set("Content-Range", "bytes 0-9/100")
				w.WriteHeader(http.StatusPartialContent)
			}
			w.Write([]byte("ok"))
		}))
		defer b.Close()
		urls[i] = b.URL
	}
	_, front := newTestGateway(t, urls, nil)

	do := func(method, path, rangeHdr string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, front.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rangeHdr != "" {
			req.Header.Set("Range", rangeHdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	do(http.MethodPut, "/v1/objects/shared-key", "")
	do(http.MethodGet, "/v1/read/shared-key", "")
	resp := do(http.MethodGet, "/v1/read/shared-key", "bytes=0-9")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range status = %d, want relayed 206", resp.StatusCode)
	}
	if resp.Header.Get("Content-Range") == "" {
		t.Fatal("Content-Range header not relayed through the gateway")
	}
	do(http.MethodGet, "/v1/read/shared-key?off=5&len=3", "")

	owner := -1
	for i, n := range hits {
		if n > 0 {
			if owner != -1 {
				t.Fatalf("object requests spread across backends: hits = %v", hits)
			}
			owner = i
		}
	}
	if owner == -1 || hits[owner] != 4 {
		t.Fatalf("expected all 4 object requests on one backend, got %v", hits)
	}
}

// TestGatewayRangeMetrics checks the object/range passthrough counters.
func TestGatewayRangeMetrics(t *testing.T) {
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	defer b.Close()
	_, front := newTestGateway(t, []string{b.URL}, nil)

	for _, req := range []struct{ method, path, rangeHdr string }{
		{http.MethodPut, "/v1/objects/m1", ""},
		{http.MethodGet, "/v1/read/m1", ""},
		{http.MethodGet, "/v1/read/m1", "bytes=0-9"},
		{http.MethodGet, "/v1/read/m1?off=1&len=2", ""},
		{http.MethodPost, "/v1/compress/gzip", ""}, // not an object route
	} {
		r, err := http.NewRequest(req.method, front.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if req.rangeHdr != "" {
			r.Header.Set("Range", req.rangeHdr)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		ObjectRequests int64 `json:"object_requests"`
		RangeRequests  int64 `json:"range_requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ObjectRequests != 4 {
		t.Fatalf("object_requests = %d, want 4", snap.ObjectRequests)
	}
	if snap.RangeRequests != 2 {
		t.Fatalf("range_requests = %d, want 2 (one Range header, one ?off)", snap.RangeRequests)
	}
}
