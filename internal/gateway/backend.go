package gateway

import (
	"net/url"
	"sync"
	"sync/atomic"

	"positbench/internal/resilience"
)

// backend is one positd instance behind the gateway: its address, circuit
// breaker, health-probe verdict, and per-backend counters.
type backend struct {
	url     *url.URL
	name    string // host:port, the stable key in metrics
	breaker *resilience.Breaker

	// ready is the active health checker's verdict. Backends start ready
	// (optimistic: the breaker covers the window before the first probe) and
	// are ejected after FailThreshold consecutive probe failures.
	ready atomic.Bool

	// Prober-goroutine-local consecutive counters (single writer).
	probeFails int
	probeRises int

	requests  atomic.Int64 // tries sent to this backend
	failures  atomic.Int64 // tries that failed (transport error or 5xx)
	ejections atomic.Int64 // ready -> ejected transitions
}

func (b *backend) Ready() bool { return b.ready.Load() }

// tryState is the shared per-request state the arms of one proxied request
// coordinate through: which backends have been tried, and the last
// retryable upstream response (429 or 5xx) kept for exhaustion forwarding.
type tryState struct {
	mu    sync.Mutex
	order []int // ring preference order
	tried []bool

	lastStatus int
	lastHeader map[string][]string
	lastBody   []byte
}

func newTryState(order []int, n int) *tryState {
	return &tryState{order: order, tried: make([]bool, n)}
}

// saveFail remembers a retryable upstream response so that, if every try
// fails, the client sees the backend's own answer (with its Retry-After)
// instead of a synthetic gateway error.
func (st *tryState) saveFail(status int, header map[string][]string, body []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lastStatus = status
	st.lastHeader = header
	st.lastBody = body
}

func (st *tryState) lastFail() (int, map[string][]string, []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastStatus, st.lastHeader, st.lastBody
}

// claim picks the next backend for a try, in three passes over the ring
// preference order:
//
//  1. untried, probe-ready, breaker admits — the healthy path;
//  2. untried, probe-ready, breaker refusing — forced through (fail-static:
//     when everything looks broken, trying a refusing backend beats
//     refusing the client);
//  3. any untried backend at all.
//
// The returned forced flag tells the caller the breaker did not admit the
// try itself; the outcome must still be Recorded so a forced success can
// close the breaker. claim returns nil when every backend has been tried.
func (g *Gateway) claim(st *tryState) (b *backend, forced bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, i := range st.order {
		cand := g.backends[i]
		if !st.tried[i] && cand.Ready() && cand.breaker.Allow() {
			st.tried[i] = true
			return cand, false
		}
	}
	for _, i := range st.order {
		if !st.tried[i] && g.backends[i].Ready() {
			st.tried[i] = true
			return g.backends[i], true
		}
	}
	for _, i := range st.order {
		if !st.tried[i] {
			st.tried[i] = true
			return g.backends[i], true
		}
	}
	return nil, false
}
