package gateway

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"positbench/internal/resilience"
)

// The active prober ejects a backend after FailThreshold consecutive
// failing probes and recovers it after RiseThreshold consecutive passes,
// with every probe tick driven by the fake clock.
func TestProberEjectsAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	var probes atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		probes.Add(1)
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		io.WriteString(w, "{}")
	}))
	defer backend.Close()

	fc := resilience.NewFakeClock(time.Time{})
	g, _ := newTestGateway(t, []string{backend.URL}, func(cfg *Config) {
		cfg.Clock = fc
		cfg.ProbeInterval = time.Second
		cfg.FailThreshold = 2
		cfg.RiseThreshold = 2
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g.StartProbes(ctx)

	// tick advances the fake clock one probe period and waits for the
	// prober to finish the probe (it re-arms its timer only afterwards).
	tick := func() {
		t.Helper()
		before := probes.Load()
		fc.BlockUntil(1)
		fc.Advance(time.Second)
		for i := 0; probes.Load() == before; i++ {
			if i > 5000 {
				t.Fatal("probe never ran after Advance")
			}
			time.Sleep(time.Millisecond)
		}
	}

	b := g.backends[0]
	tick()
	if !b.Ready() {
		t.Fatal("healthy backend ejected")
	}

	healthy.Store(false)
	tick()
	if !b.Ready() {
		t.Fatal("ejected after 1 failing probe, threshold is 2")
	}
	tick()
	if b.Ready() {
		t.Fatal("still ready after 2 failing probes")
	}
	if got := b.ejections.Load(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}

	healthy.Store(true)
	tick()
	if b.Ready() {
		t.Fatal("recovered after 1 passing probe, rise threshold is 2")
	}
	tick()
	if !b.Ready() {
		t.Fatal("still ejected after 2 passing probes")
	}
	if got := b.ejections.Load(); got != 1 {
		t.Fatalf("ejections = %d after recovery, want still 1", got)
	}
}

// An ejected backend is routed around immediately — and still reachable
// under fail-static when it is the only backend left.
func TestClaimSkipsEjectedBackend(t *testing.T) {
	var hits0 atomic.Int64
	b0 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits0.Add(1)
		io.WriteString(w, "b0")
	}))
	defer b0.Close()
	b1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "b1")
	}))
	defer b1.Close()
	g, front := newTestGateway(t, []string{b0.URL, b1.URL}, nil)

	key := keyOwnedBy(t, g, 0)
	g.backends[0].ready.Store(false) // prober verdict: ejected

	resp := postShard(t, front.URL+"/v1/x", key, "payload")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "b1" {
		t.Fatalf("request served by %q, want the non-ejected b1", body)
	}
	if hits0.Load() != 0 {
		t.Fatal("ejected backend was tried while a ready one existed")
	}

	// Fail-static: with every backend ejected, traffic still flows.
	g.backends[1].ready.Store(false)
	resp = postShard(t, front.URL+"/v1/x", key, "payload")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d with all backends ejected, want fail-static 200", resp.StatusCode)
	}
	if g.snapshot().ForcedTries == 0 {
		t.Fatal("fail-static try not counted in forced_tries")
	}
}
