package gateway

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"positbench/internal/resilience"
)

// A stalled shard owner is hedged after HedgeAfter on the fake clock: the
// hedge try wins on the next backend, the stalled try is cancelled, and
// the client sees one clean 200. No sleeps — the only time source is the
// injected clock.
func TestProxyHedgeStalledBackend(t *testing.T) {
	fc := resilience.NewFakeClock(time.Time{})
	started := make(chan struct{})
	cancelled := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Consume the body so the server's background read can observe the
		// gateway hanging up (an unread body defers close detection).
		io.Copy(io.Discard, r.Body)
		close(started)
		<-r.Context().Done() // hold the request until the gateway gives up on us
		close(cancelled)
	}))
	defer stall.Close()
	quick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hedged")
	}))
	defer quick.Close()

	g, front := newTestGateway(t, []string{stall.URL, quick.URL}, func(cfg *Config) {
		cfg.Clock = fc
		cfg.HedgeAfter = 100 * time.Millisecond
		cfg.PerTryTimeout = -1 // isolate the hedge timer as the only waiter
	})

	key := keyOwnedBy(t, g, 0)
	respCh := make(chan *http.Response, 1)
	go func() {
		respCh <- postShard(t, front.URL+"/v1/x", key, "payload")
	}()

	<-started        // the shard owner holds the first try
	fc.BlockUntil(1) // the hedge timer is armed
	fc.Advance(100 * time.Millisecond)

	resp := <-respCh
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "hedged" {
		t.Fatalf("got %d %q, want 200 from the hedge", resp.StatusCode, body)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled try was never cancelled after the hedge won")
	}
	snap := g.snapshot()
	if snap.HedgesLaunched != 1 || snap.HedgeWins != 1 {
		t.Fatalf("snapshot = %+v, want one winning hedge", snap)
	}
	if snap.RetriesTotal != 0 {
		t.Fatalf("retries_total = %d; the hedge must not count as a retry", snap.RetriesTotal)
	}
	if snap.Responses2xx != 1 {
		t.Fatalf("responses_2xx = %d, want exactly 1", snap.Responses2xx)
	}
}

// The per-try watchdog fails a try that never answers, and the retry path
// recovers — driven entirely by the fake clock.
func TestProxyPerTryTimeout(t *testing.T) {
	fc := resilience.NewFakeClock(time.Time{})
	started := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		close(started)
		<-r.Context().Done()
	}))
	defer stall.Close()
	quick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer quick.Close()

	g, front := newTestGateway(t, []string{stall.URL, quick.URL}, func(cfg *Config) {
		cfg.Clock = fc
		cfg.PerTryTimeout = time.Second
		cfg.HedgeAfter = -1 // retries only; the watchdog is the only waiter
		cfg.Backoff = resilience.Backoff{Base: time.Nanosecond, Max: time.Nanosecond, NoJitter: true}
	})

	key := keyOwnedBy(t, g, 0)
	respCh := make(chan *http.Response, 1)
	go func() {
		respCh <- postShard(t, front.URL+"/v1/x", key, "payload")
	}()

	<-started
	fc.BlockUntil(1) // the first try's watchdog
	fc.Advance(time.Second)
	fc.BlockUntil(1) // the backoff timer before the retry
	fc.Advance(time.Nanosecond)

	resp := <-respCh
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after the timed-out try failed over", resp.StatusCode)
	}
	if snap := g.snapshot(); snap.RetriesTotal != 1 {
		t.Fatalf("retries_total = %d, want 1", snap.RetriesTotal)
	}
}
