package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend owns
// Replicas virtual points; a key walks the ring clockwise from its hash and
// collects backends in first-encounter order, which gives every key a stable
// preference sequence: the same key always lands on the same backend while
// it is healthy, and fails over to the same second choice when it is not.
// Stability is what makes sharding useful to the backends (warm caches,
// consistent admission pressure) and what makes retries deterministic.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // number of distinct backends
}

type ringPoint struct {
	hash    uint64
	backend int
}

// defaultReplicas balances distribution evenness against ring size; 64
// virtual points per backend keeps the max/min load ratio near 1.2 for
// small clusters.
const defaultReplicas = 64

// newRing builds a ring over n backends with the given virtual-point count
// per backend (<= 0 selects defaultReplicas).
func newRing(n, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{n: n, points: make([]ringPoint, 0, n*replicas)}
	for b := 0; b < n; b++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hashString(fmt.Sprintf("backend-%d-vnode-%d", b, v)), backend: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// sequence returns all backend indices in the key's preference order: the
// owner first, then each distinct backend as the clockwise walk encounters
// it. len(result) == n always.
func (r *ring) sequence(key uint64) []int {
	order := make([]int, 0, r.n)
	if len(r.points) == 0 {
		return order
	}
	seen := make([]bool, r.n)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for i := 0; len(order) < r.n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			order = append(order, p.backend)
		}
	}
	return order
}

// hashBytes is FNV-1a 64 over b.
func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func hashString(s string) uint64 {
	return hashBytes([]byte(s))
}
