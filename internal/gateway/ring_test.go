package gateway

import (
	"fmt"
	"testing"
)

// Every key gets a stable, complete permutation of the backends.
func TestRingSequenceIsStablePermutation(t *testing.T) {
	r := newRing(5, 0)
	for i := 0; i < 200; i++ {
		key := hashString(fmt.Sprintf("key-%d", i))
		seq := r.sequence(key)
		if len(seq) != 5 {
			t.Fatalf("sequence(%d) has %d entries, want 5", key, len(seq))
		}
		seen := map[int]bool{}
		for _, b := range seq {
			if b < 0 || b >= 5 || seen[b] {
				t.Fatalf("sequence(%d) = %v is not a permutation", key, seq)
			}
			seen[b] = true
		}
		again := r.sequence(key)
		for j := range seq {
			if seq[j] != again[j] {
				t.Fatalf("sequence(%d) unstable: %v then %v", key, seq, again)
			}
		}
	}
}

// Keys spread across backends: no backend owns more than half of a large
// keyspace on a 4-node ring (perfect would be a quarter each).
func TestRingDistribution(t *testing.T) {
	const n, keys = 4, 4000
	r := newRing(n, 0)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.sequence(hashString(fmt.Sprintf("key-%d", i)))[0]]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("backend %d owns no keys: %v", b, counts)
		}
		if c > keys/2 {
			t.Fatalf("backend %d owns %d of %d keys: %v", b, c, keys, counts)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := newRing(0, 0).sequence(42); len(got) != 0 {
		t.Fatalf("empty ring sequence = %v", got)
	}
	if got := newRing(1, 0).sequence(42); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single ring sequence = %v", got)
	}
}
