package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// gwMetrics is the gateway's counter registry. Response-class counters are
// flat top-level JSON keys shaped to reconcile exactly against positload's
// report ("responses_2xx" here vs "status_2xx" there): every proxied
// request the gateway answers increments exactly one class, and every
// response the load generator receives increments exactly one class, so
// after a clean drain the two documents must agree number for number.
type gwMetrics struct {
	start time.Time

	responses2xx atomic.Int64
	responses3xx atomic.Int64
	responses4xx atomic.Int64 // excludes 429, mirroring positload's split
	responses429 atomic.Int64
	responses5xx atomic.Int64
	responses499 atomic.Int64 // client went away; never received, never reconciled

	retriesTotal     atomic.Int64 // failure-triggered extra tries
	hedgesLaunched   atomic.Int64 // latency-triggered extra tries
	hedgeWins        atomic.Int64 // requests won by a hedge try
	forcedTries      atomic.Int64 // tries sent past a refusing breaker (fail-static)
	noBackend        atomic.Int64 // requests that exhausted every backend
	abortedMidStream atomic.Int64 // connections aborted after the status line
	bodiesStreamed   atomic.Int64 // requests too large to buffer (single-try)

	// Object-tier passthrough: requests routed by object key rather than
	// body hash, and the subset that asked for a byte range.
	objectRequests atomic.Int64 // /v1/objects + /v1/read requests proxied
	rangeRequests  atomic.Int64 // of those, partial reads (Range or ?off/?len)

	// Adaptive-codec passthrough: the gateway never decides codecs itself,
	// but it watches POST /v1/compress/auto go by and surfaces what the
	// backends' advisors chose (the relayed X-Positd-Codec header).
	autoRequests atomic.Int64 // auto requests proxied
	autoStreamed atomic.Int64 // auto requests too large to buffer
	autoMu       sync.Mutex
	autoChosen   map[string]int64 // successful auto responses per chosen codec
}

func newGWMetrics() *gwMetrics {
	return &gwMetrics{start: time.Now(), autoChosen: map[string]int64{}}
}

// recordAutoChosen accounts one successful auto response by chosen codec.
func (m *gwMetrics) recordAutoChosen(codec string) {
	m.autoMu.Lock()
	m.autoChosen[codec]++
	m.autoMu.Unlock()
}

// autoChosenSnapshot copies the per-codec choice counters.
func (m *gwMetrics) autoChosenSnapshot() map[string]int64 {
	m.autoMu.Lock()
	defer m.autoMu.Unlock()
	out := make(map[string]int64, len(m.autoChosen))
	for k, v := range m.autoChosen {
		out[k] = v
	}
	return out
}

// statusClientClosedRequest mirrors positd's taxonomy for "the client went
// away before we could answer" (nginx's 499).
const statusClientClosedRequest = 499

// countResponse accounts one fully-delivered proxied response.
func (m *gwMetrics) countResponse(status int) {
	switch {
	case status >= 500:
		m.responses5xx.Add(1)
	case status == statusClientClosedRequest:
		m.responses499.Add(1)
	case status == http.StatusTooManyRequests:
		m.responses429.Add(1)
	case status >= 400:
		m.responses4xx.Add(1)
	case status >= 300:
		m.responses3xx.Add(1)
	default:
		m.responses2xx.Add(1)
	}
}

// backendExport is one backend's /metrics entry.
type backendExport struct {
	Ready        bool   `json:"ready"`
	BreakerState string `json:"breaker_state"`
	BreakerOpens uint64 `json:"breaker_opens"`
	Requests     int64  `json:"requests"`
	Failures     int64  `json:"failures"`
	Ejections    int64  `json:"ejections"`
}

// metricsSnapshot is the full GET /metrics document.
type metricsSnapshot struct {
	UptimeSeconds    float64                  `json:"uptime_seconds"`
	Draining         bool                     `json:"draining"`
	Responses2xx     int64                    `json:"responses_2xx"`
	Responses3xx     int64                    `json:"responses_3xx"`
	Responses4xx     int64                    `json:"responses_4xx"`
	Responses429     int64                    `json:"responses_429"`
	Responses5xx     int64                    `json:"responses_5xx"`
	Responses499     int64                    `json:"responses_499"`
	RetriesTotal     int64                    `json:"retries_total"`
	HedgesLaunched   int64                    `json:"hedges_launched"`
	HedgeWins        int64                    `json:"hedge_wins"`
	ForcedTries      int64                    `json:"forced_tries"`
	NoBackend        int64                    `json:"no_backend"`
	AbortedMidStream int64                    `json:"aborted_mid_stream"`
	BodiesStreamed   int64                    `json:"bodies_streamed"`
	ObjectRequests   int64                    `json:"object_requests"`
	RangeRequests    int64                    `json:"range_requests"`
	AutoRequests     int64                    `json:"auto_requests"`
	AutoStreamed     int64                    `json:"auto_streamed"`
	AutoChosen       map[string]int64         `json:"auto_chosen,omitempty"`
	TracesCaptured   uint64                   `json:"traces_captured"`
	Backends         map[string]backendExport `json:"backends"`
}

// snapshot assembles the /metrics document.
func (g *Gateway) snapshot() metricsSnapshot {
	m := g.metrics
	snap := metricsSnapshot{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Draining:         g.draining.Load(),
		Responses2xx:     m.responses2xx.Load(),
		Responses3xx:     m.responses3xx.Load(),
		Responses4xx:     m.responses4xx.Load(),
		Responses429:     m.responses429.Load(),
		Responses5xx:     m.responses5xx.Load(),
		Responses499:     m.responses499.Load(),
		RetriesTotal:     m.retriesTotal.Load(),
		HedgesLaunched:   m.hedgesLaunched.Load(),
		HedgeWins:        m.hedgeWins.Load(),
		ForcedTries:      m.forcedTries.Load(),
		NoBackend:        m.noBackend.Load(),
		AbortedMidStream: m.abortedMidStream.Load(),
		BodiesStreamed:   m.bodiesStreamed.Load(),
		ObjectRequests:   m.objectRequests.Load(),
		RangeRequests:    m.rangeRequests.Load(),
		AutoRequests:     m.autoRequests.Load(),
		AutoStreamed:     m.autoStreamed.Load(),
		AutoChosen:       m.autoChosenSnapshot(),
		Backends:         make(map[string]backendExport, len(g.backends)),
	}
	if g.tracer != nil {
		snap.TracesCaptured = g.tracer.Len()
	}
	for _, b := range g.backends {
		snap.Backends[b.name] = backendExport{
			Ready:        b.Ready(),
			BreakerState: b.breaker.State().String(),
			BreakerOpens: b.breaker.Opens(),
			Requests:     b.requests.Load(),
			Failures:     b.failures.Load(),
			Ejections:    b.ejections.Load(),
		}
	}
	return snap
}

// handleMetrics serves the counter registry as JSON.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(g.snapshot())
}

// accessRecord is one structured access-log line.
type accessRecord struct {
	Time      string `json:"ts"`
	RequestID string `json:"request_id"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	Route     string `json:"route"`
	Status    int    `json:"status"`
	Duration  string `json:"dur"`
	BytesIn   int64  `json:"bytes_in"`
	BytesOut  int64  `json:"bytes_out"`
	Remote    string `json:"remote,omitempty"`
	Aborted   bool   `json:"aborted,omitempty"`
}

// accessLogger serializes JSON lines to one writer.
type accessLogger struct {
	mu  sync.Mutex
	dst io.Writer
}

func (l *accessLogger) log(rec accessRecord) {
	blob, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dst.Write(append(blob, '\n'))
}
