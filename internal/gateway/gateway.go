// Package gateway implements positgw: a resilient reverse proxy that
// shards requests across a fleet of positd backends.
//
// Requests are routed by consistent hashing — an explicit X-Shard-Key
// header when the client has an affinity key, the request-body fingerprint
// otherwise — so the same payload keeps hitting the same backend while it
// is healthy. Around that placement sits a resilience layer built from
// positbench/internal/resilience:
//
//   - per-try timeouts with capped-exponential-backoff retries across the
//     ring's failover sequence,
//   - idempotency-aware retry policy: only requests whose bodies were fully
//     buffered (<= MaxBufferBytes) are retried or hedged; half-streamed
//     uploads are never replayed,
//   - latency-triggered hedging: a stalled try launches a second one on the
//     next backend, first success wins, the loser is cancelled,
//   - a circuit breaker per backend with half-open probing, plus fail-static
//     override when every backend looks broken,
//   - active health checking of each backend's /readyz with ejection and
//     rise-threshold recovery.
//
// Mid-stream upstream failures past the point where the client saw a 200
// abort the connection (http.ErrAbortHandler) rather than truncating
// silently: a partial body must never parse as a complete one, even though
// the container CRC would catch it one layer down.
package gateway

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sync/atomic"
	"time"

	"positbench/internal/resilience"
	"positbench/internal/trace"
)

// Config tunes a Gateway. The zero value of every field selects a
// production default; Backends is required.
type Config struct {
	// Backends are the positd base URLs (e.g. "http://127.0.0.1:9011").
	// A bare host:port gets "http://" prepended.
	Backends []string
	// Replicas is the virtual-point count per backend on the hash ring.
	Replicas int
	// MaxBufferBytes caps request- and response-body buffering. Bodies at
	// or under the cap make the request retry- and hedge-safe; larger ones
	// are streamed through exactly once. 0 selects DefaultMaxBufferBytes.
	MaxBufferBytes int64
	// MaxTries bounds how many backends one request may be sent to.
	// 0 selects min(DefaultMaxTries, len(Backends)).
	MaxTries int
	// PerTryTimeout bounds each individual try. 0 selects
	// DefaultPerTryTimeout; negative disables.
	PerTryTimeout time.Duration
	// HedgeAfter launches a hedge try when the current one has not resolved
	// in time. 0 selects DefaultHedgeAfter; negative disables hedging.
	HedgeAfter time.Duration
	// Backoff shapes the delay before failure-triggered retries.
	Backoff resilience.Backoff
	// BreakerThreshold and BreakerCooldown configure each backend's circuit
	// breaker (consecutive failures to open; time open before a half-open
	// probe). 0 selects the resilience defaults.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval is the active health-check period. 0 selects
	// DefaultProbeInterval; negative disables active probing.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request. 0 selects DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// ProbePath is the backend readiness endpoint. "" selects "/readyz".
	ProbePath string
	// FailThreshold ejects a backend after this many consecutive probe
	// failures; RiseThreshold recovers it after this many consecutive
	// successes. 0 selects the defaults (3 and 2).
	FailThreshold int
	RiseThreshold int
	// Clock drives retries, hedging, breakers, and probe scheduling. Nil
	// selects the system clock; tests inject resilience.FakeClock.
	Clock resilience.Clock
	// Transport performs the upstream requests. Nil selects a dedicated
	// transport with sane connection pooling.
	Transport http.RoundTripper
	// AccessLog receives one JSON line per proxied request. Nil selects
	// os.Stderr; io.Discard silences.
	AccessLog io.Writer
	// TraceCapacity sizes the ring of recent gateway traces. 0 selects
	// trace.DefaultCapacity; negative disables tracing.
	TraceCapacity int
}

// Defaults for the zero Config.
const (
	DefaultMaxBufferBytes = int64(8) << 20 // 8 MiB
	DefaultMaxTries       = 3
	DefaultPerTryTimeout  = 30 * time.Second
	DefaultHedgeAfter     = 250 * time.Millisecond
	DefaultProbeInterval  = time.Second
	DefaultProbeTimeout   = 2 * time.Second
	DefaultFailThreshold  = 3
	DefaultRiseThreshold  = 2
)

// Gateway is the positgw request handler. Create with New, mount via
// Handler, start active health checking with StartProbes.
type Gateway struct {
	cfg      Config
	backends []*backend
	ring     *ring
	clock    resilience.Clock
	client   *http.Client
	metrics  *gwMetrics
	access   *accessLogger
	tracer   *trace.Tracer // nil when tracing is disabled
	draining atomic.Bool
}

// New validates cfg, fills defaults, and returns a ready Gateway.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	if cfg.MaxBufferBytes <= 0 {
		cfg.MaxBufferBytes = DefaultMaxBufferBytes
	}
	if cfg.MaxTries <= 0 {
		cfg.MaxTries = DefaultMaxTries
	}
	if cfg.MaxTries > len(cfg.Backends) {
		cfg.MaxTries = len(cfg.Backends)
	}
	if cfg.PerTryTimeout == 0 {
		cfg.PerTryTimeout = DefaultPerTryTimeout
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.ProbePath == "" {
		cfg.ProbePath = "/readyz"
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.RiseThreshold <= 0 {
		cfg.RiseThreshold = DefaultRiseThreshold
	}
	if cfg.Clock == nil {
		cfg.Clock = resilience.System
	}
	if cfg.AccessLog == nil {
		cfg.AccessLog = os.Stderr
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	g := &Gateway{
		cfg:   cfg,
		clock: cfg.Clock,
		client: &http.Client{
			Transport: transport,
			// Relay 3xx verbatim; following them would hide the backend's
			// answer from the client.
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		},
		metrics: newGWMetrics(),
		access:  &accessLogger{dst: cfg.AccessLog},
	}
	if cfg.TraceCapacity >= 0 {
		g.tracer = trace.New(cfg.TraceCapacity)
	}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		u, err := parseBackendURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[u.Host] {
			return nil, fmt.Errorf("gateway: duplicate backend %q", u.Host)
		}
		seen[u.Host] = true
		b := &backend{
			url:     u,
			name:    u.Host,
			breaker: resilience.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		}
		b.ready.Store(true)
		g.backends = append(g.backends, b)
	}
	g.ring = newRing(len(g.backends), cfg.Replicas)
	return g, nil
}

// parseBackendURL normalizes one backend address to a scheme+host URL.
func parseBackendURL(raw string) (*url.URL, error) {
	if raw == "" {
		return nil, fmt.Errorf("gateway: empty backend address")
	}
	withScheme := raw
	if !hasScheme(raw) {
		withScheme = "http://" + raw
	}
	u, err := url.Parse(withScheme)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("gateway: bad backend address %q", raw)
	}
	return &url.URL{Scheme: u.Scheme, Host: u.Host}, nil
}

func hasScheme(s string) bool {
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == ':':
			return i+2 < len(s) && s[i+1] == '/' && s[i+2] == '/'
		case s[i] == '/' || s[i] == '.':
			return false
		}
	}
	return false
}

// SetDraining flips the gateway's own /readyz: true answers 503 so an
// upstream balancer stops sending new work before Shutdown closes the
// listener. Proxying continues while draining.
func (g *Gateway) SetDraining(v bool) { g.draining.Store(v) }

// Backends reports the configured backend names (host:port), ring order.
func (g *Gateway) Backends() []string {
	names := make([]string, len(g.backends))
	for i, b := range g.backends {
		names[i] = b.name
	}
	return names
}

// Tracer exposes the gateway's trace ring (nil when disabled); positgw
// mounts trace.Handler-style debug output off it.
func (g *Gateway) Tracer() *trace.Tracer { return g.tracer }

// Handler returns the gateway mux: ops endpoints plus the catch-all proxy.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", g.shell("healthz", http.HandlerFunc(g.handleHealthz)))
	mux.Handle("GET /readyz", g.shell("readyz", http.HandlerFunc(g.handleReadyz)))
	mux.Handle("GET /metrics", g.shell("metrics", http.HandlerFunc(g.handleMetrics)))
	mux.Handle("/", g.shell("proxy", http.HandlerFunc(g.handleProxy)))
	return mux
}

// shell is the outermost middleware on every route: panic recovery, the
// access log, and — on the proxy route only — the exact per-class response
// accounting the soak harness reconciles against the load generator.
func (g *Gateway) shell(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &countingWriter{ResponseWriter: w}
		rid := ensureRequestID(cw, r)
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					g.finish(route, cw, r, start, rid, true)
					panic(p)
				}
				if !cw.wrote {
					writeError(cw, http.StatusInternalServerError, "panic", "internal error")
				}
			}
			g.finish(route, cw, r, start, rid, false)
		}()
		next.ServeHTTP(cw, r)
	})
}

func (g *Gateway) finish(route string, cw *countingWriter, r *http.Request, start time.Time, rid string, aborted bool) {
	status := cw.status
	if !cw.wrote {
		status = http.StatusOK
	}
	if route == "proxy" {
		if aborted {
			// The client never got a complete response; counting a class
			// would double-book against the load generator's error count.
			g.metrics.abortedMidStream.Add(1)
		} else {
			g.metrics.countResponse(status)
		}
	}
	g.access.log(accessRecord{
		Time:      start.UTC().Format(time.RFC3339Nano),
		RequestID: rid,
		Method:    r.Method,
		Path:      r.URL.Path,
		Route:     route,
		Status:    status,
		Duration:  time.Since(start).Round(time.Microsecond).String(),
		BytesOut:  cw.bytes,
		BytesIn:   r.ContentLength,
		Remote:    r.RemoteAddr,
		Aborted:   aborted,
	})
}

// handleHealthz is gateway liveness: alive as long as the process serves.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"backends": len(g.backends),
	})
}

// handleReadyz is gateway readiness: 503 while draining or when no backend
// is available to take traffic.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := 0
	for _, b := range g.backends {
		if b.Ready() {
			ready++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	status := http.StatusOK
	state := "ready"
	switch {
	case g.draining.Load():
		status, state = http.StatusServiceUnavailable, "draining"
	case ready == 0:
		status, state = http.StatusServiceUnavailable, "no_ready_backends"
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"status":         state,
		"ready_backends": ready,
		"backends":       len(g.backends),
	})
}

// ensureRequestID propagates or mints the request ID and echoes it.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > 128 {
		var raw [8]byte
		rand.Read(raw[:])
		id = hex.EncodeToString(raw[:])
		r.Header.Set("X-Request-ID", id) // forwarded upstream as-is
	}
	w.Header().Set("X-Request-ID", id)
	return id
}

// countingWriter records status and body bytes for the access log and the
// response-class counters, and exposes whether the status line is on the
// wire (the abort path needs to know).
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (c *countingWriter) WriteHeader(status int) {
	if !c.wrote {
		c.wrote = true
		c.status = status
		c.ResponseWriter.WriteHeader(status)
	}
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if !c.wrote {
		c.wrote = true
		c.status = http.StatusOK
	}
	n, err := c.ResponseWriter.Write(p)
	c.bytes += int64(n)
	return n, err
}

func (c *countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (c *countingWriter) Unwrap() http.ResponseWriter { return c.ResponseWriter }

// writeError emits the same JSON error shape positd uses, so clients see
// one error contract whether the gateway or the backend answered.
func writeError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	blob, _ := json.Marshal(struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}{Error: msg, Kind: kind})
	w.Write(append(blob, '\n'))
}
