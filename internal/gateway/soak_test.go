package gateway

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"positbench/internal/load"
	"positbench/internal/server"
)

// soakBackend is a positd instance the chaos controller can kill -9 (Close
// drops the listener and every open connection, no drain) and later rebind
// on the same address, so the gateway's breakers, probes, and retries see a
// realistic crash/restart cycle.
type soakBackend struct {
	name    string
	handler http.Handler

	mu   sync.Mutex
	addr string // pinned after the first bind so restarts reuse it
	srv  *http.Server
}

func (b *soakBackend) Name() string { return b.name }

func (b *soakBackend) Restart() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	bind := b.addr
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	// The previous listener is closed synchronously by Kill, but give the
	// kernel a beat on a loaded runner anyway.
	for attempt := 0; attempt < 50; attempt++ {
		if ln, err = net.Listen("tcp", bind); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("rebind %s: %w", bind, err)
	}
	b.addr = ln.Addr().String()
	b.srv = &http.Server{Handler: b.handler}
	go b.srv.Serve(ln)
	return nil
}

func (b *soakBackend) Kill() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.srv == nil {
		return nil
	}
	err := b.srv.Close()
	b.srv = nil
	return err
}

// degradableBackend also misbehaves in place: while degraded its listener
// keeps accepting but every request gets a 503, so only the gateway's
// breakers and probes — not TCP errors — can route around it.
type degradableBackend struct {
	*soakBackend
	broken atomic.Bool
}

func (b *degradableBackend) Degrade() error { b.broken.Store(true); return nil }
func (b *degradableBackend) Recover() error { b.broken.Store(false); return nil }

func (b *degradableBackend) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b.broken.Load() {
			io.Copy(io.Discard, r.Body)
			writeError(w, http.StatusServiceUnavailable, "degraded", "chaos 503 injection")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// TestChaosSoak is the end-to-end resilience gate, in process: three real
// positd backends behind the gateway, a seeded chaos controller crash-
// looping one backend at a time, and positload driving a verified
// compress/decompress/convert workload through the front. The client must
// see zero failures, and afterwards the generator's status counts must
// reconcile exactly — number for number — with the gateway's response
// counters.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos soak")
	}

	var urls []string
	var targets []load.ChaosTarget
	backends := make([]*soakBackend, 3)
	for i := range backends {
		srv, err := server.New(server.Config{AccessLog: io.Discard, ChunkSize: 16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		b := &soakBackend{name: fmt.Sprintf("b%d", i), handler: srv.Handler()}
		if i == 0 {
			// One backend can also be degraded in place (503 injection),
			// so the soak covers the failure mode TCP cannot see.
			db := &degradableBackend{soakBackend: b}
			b.handler = db.wrap(srv.Handler())
			targets = append(targets, db)
		} else {
			targets = append(targets, b)
		}
		if err := b.Restart(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Kill() })
		backends[i] = b
		urls = append(urls, "http://"+b.addr)
	}

	g, err := New(Config{
		Backends: urls,
		// Crash-loop-speed resilience: trip breakers after 2 failures,
		// probe every 50ms, eject fast, recover fast.
		Backoff:          fastRetry,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		ProbeInterval:    50 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		FailThreshold:    2,
		RiseThreshold:    1,
		PerTryTimeout:    5 * time.Second,
		HedgeAfter:       300 * time.Millisecond,
		AccessLog:        io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	g.StartProbes(probeCtx)
	front := httptest.NewServer(g.Handler())
	defer front.Close()

	// Chaos runs until the load finishes; its context is cut when the run
	// returns, and Run always restarts the last victim before returning.
	chaosCtx, stopChaos := context.WithCancel(context.Background())
	chaos := &load.Chaos{
		Targets: targets,
		MinUp:   400 * time.Millisecond, MaxUp: 700 * time.Millisecond,
		MinDown: 150 * time.Millisecond, MaxDown: 350 * time.Millisecond,
		Log: testWriter{t},
	}
	eventsC := make(chan []load.ChaosEvent, 1)
	go func() {
		events, err := chaos.Run(chaosCtx)
		if err != nil {
			t.Error(err)
		}
		eventsC <- events
	}()

	rep, err := load.Run(context.Background(), load.Config{
		BaseURL:     front.URL,
		QPS:         50,
		Duration:    2500 * time.Millisecond,
		Grace:       3 * time.Second, // exact reconciliation needs no aborts
		MaxInflight: 8,
		Codecs:      []string{"gzip"},
		Values:      2048,
		Seed:        11,
	})
	stopChaos()
	events := <-eventsC
	if err != nil {
		t.Fatal(err)
	}

	kills, degrades := 0, 0
	for _, ev := range events {
		switch ev.Action {
		case "kill":
			kills++
		case "degrade":
			degrades++
		}
		if ev.Err != "" {
			t.Errorf("chaos action failed: %+v", ev)
		}
	}
	if kills+degrades == 0 {
		t.Fatal("the chaos controller never took a backend down; the soak proved nothing")
	}

	if rep.Failed() {
		t.Errorf("client saw failures through the gateway: 5xx=%d transport=%d mismatches=%d",
			rep.Status5xx, rep.Transport, rep.Mismatches)
	}
	if rep.Status2xx == 0 {
		t.Fatal("soak did no work")
	}

	snap := g.snapshot()
	t.Logf("soak: %d kills %d degrades, client 2xx=%d 4xx=%d 429=%d 5xx=%d; gateway retries=%d hedges=%d forced=%d",
		kills, degrades, rep.Status2xx, rep.Status4xx, rep.Status429, rep.Status5xx,
		snap.RetriesTotal, snap.HedgesLaunched, snap.ForcedTries)
	if snap.RetriesTotal == 0 && snap.HedgesLaunched == 0 {
		t.Error("kills mid-traffic produced no retries or hedges; the gateway cannot have masked anything")
	}
	// The reconciliation: every response positload received is a response
	// the gateway counted, class for class, with nothing left over. 499s
	// and aborted streams would break the balance — they must be zero.
	if snap.Responses499 != 0 || snap.AbortedMidStream != 0 {
		t.Errorf("soak aborted work: 499=%d aborted_mid_stream=%d, want 0/0",
			snap.Responses499, snap.AbortedMidStream)
	}
	type pair struct {
		name      string
		got, want int64
	}
	for _, p := range []pair{
		{"2xx", snap.Responses2xx, rep.Status2xx},
		{"4xx", snap.Responses4xx, rep.Status4xx},
		{"429", snap.Responses429, rep.Status429},
		{"5xx", snap.Responses5xx, rep.Status5xx},
	} {
		if p.got != p.want {
			t.Errorf("responses_%s: gateway counted %d, positload received %d", p.name, p.got, p.want)
		}
	}
}

// testWriter adapts t.Logf for the chaos controller's log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
