package gateway

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"positbench/internal/server"
)

// autoBody builds n float32 values of a smooth wave, the shape the advisor
// reliably classifies as float-like.
func autoBody(n int) []byte {
	out := make([]byte, 0, 4*n)
	for i := 0; i < n; i++ {
		v := float32(math.Sin(float64(i)/64) * 100)
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out
}

// TestProxyAutoPassthrough drives POST /v1/compress/auto through the
// gateway against a real positd backend, once buffered (replay-safe) and
// once past the buffer cap (streamed, single-try), and checks that the
// advisor's decision headers relay intact, the stream roundtrips through
// /v1/decompress, and the gateway's auto_* metrics account both shapes.
func TestProxyAutoPassthrough(t *testing.T) {
	srv, err := server.New(server.Config{AccessLog: io.Discard, ChunkSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	backend := httptest.NewServer(srv.Handler())
	defer backend.Close()
	g, front := newTestGateway(t, []string{backend.URL}, func(c *Config) {
		c.MaxBufferBytes = 64 << 10 // small cap so the second request streams
	})

	small := autoBody(4 << 10) // 16 KiB: buffered
	resp := postShard(t, front.URL+"/v1/compress/auto", "", string(small))
	comp, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buffered auto status = %d: %s", resp.StatusCode, comp)
	}
	chosen := resp.Header.Get("X-Positd-Codec")
	if chosen == "" {
		t.Fatal("gateway dropped the X-Positd-Codec decision header")
	}
	if resp.Header.Get("X-Positd-Auto-Source") == "" {
		t.Fatal("gateway dropped the X-Positd-Auto-Source decision header")
	}
	dresp := postShard(t, front.URL+"/v1/decompress", "", string(comp))
	back, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || !bytes.Equal(back, small) {
		t.Fatalf("auto roundtrip through gateway failed: status %d, %d bytes back", dresp.StatusCode, len(back))
	}

	large := autoBody(32 << 10) // 128 KiB: over the 64 KiB cap, streamed
	resp2 := postShard(t, front.URL+"/v1/compress/auto", "", string(large))
	comp2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("streamed auto status = %d", resp2.StatusCode)
	}
	if resp2.Header.Get("X-Positd-Codec") == "" {
		t.Fatal("streamed auto lost the decision header")
	}
	dresp2 := postShard(t, front.URL+"/v1/decompress", "", string(comp2))
	back2, _ := io.ReadAll(dresp2.Body)
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusOK || !bytes.Equal(back2, large) {
		t.Fatalf("streamed auto roundtrip failed: status %d, %d bytes back", dresp2.StatusCode, len(back2))
	}

	snap := g.snapshot()
	if snap.AutoRequests != 2 {
		t.Errorf("auto_requests = %d, want 2", snap.AutoRequests)
	}
	if snap.AutoStreamed != 1 {
		t.Errorf("auto_streamed = %d, want 1 (only the over-cap body)", snap.AutoStreamed)
	}
	var chosenTotal int64
	for _, n := range snap.AutoChosen {
		chosenTotal += n
	}
	if chosenTotal != 2 {
		t.Errorf("auto_chosen totals %d across %v, want 2", chosenTotal, snap.AutoChosen)
	}
	if snap.AutoChosen[chosen] == 0 {
		t.Errorf("auto_chosen missing the relayed codec %q: %v", chosen, snap.AutoChosen)
	}
	// Decompress traffic must not leak into the auto counters.
	if snap.Responses2xx != 4 {
		t.Errorf("responses_2xx = %d, want 4", snap.Responses2xx)
	}
}
