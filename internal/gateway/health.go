package gateway

import (
	"context"
	"io"
	"net/http"
)

// StartProbes launches one active health-check goroutine per backend; they
// stop when ctx ends. A backend is ejected from routing after
// FailThreshold consecutive probe failures and recovered after
// RiseThreshold consecutive successes — the rise threshold keeps a
// flapping backend from oscillating in and out of the pool on every probe.
//
// Probing is advisory, not authoritative: an ejected backend can still be
// tried under claim's fail-static passes, and the circuit breaker covers
// the window between a backend dying and the prober noticing.
func (g *Gateway) StartProbes(ctx context.Context) {
	if g.cfg.ProbeInterval < 0 {
		return
	}
	for _, b := range g.backends {
		go g.probeLoop(ctx, b)
	}
}

func (g *Gateway) probeLoop(ctx context.Context, b *backend) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-g.clock.After(g.cfg.ProbeInterval):
		}
		g.probeOnce(ctx, b)
	}
}

// probeOnce sends one readiness probe and applies the fail/rise counters.
// It is the backend's single writer for the probe state.
func (g *Gateway) probeOnce(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url.String()+g.cfg.ProbePath, nil)
	if err == nil {
		resp, derr := g.client.Do(req)
		if derr == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			ok = resp.StatusCode >= 200 && resp.StatusCode < 300
		}
	}
	if ok {
		b.probeFails = 0
		b.probeRises++
		if !b.Ready() && b.probeRises >= g.cfg.RiseThreshold {
			b.ready.Store(true)
		}
		return
	}
	b.probeRises = 0
	b.probeFails++
	if b.Ready() && b.probeFails >= g.cfg.FailThreshold {
		b.ready.Store(false)
		b.ejections.Add(1)
	}
}
