package gateway

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"positbench/internal/resilience"
)

// fastRetry removes wall-clock padding from retry paths under test.
var fastRetry = resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, NoJitter: true}

// newTestGateway builds a gateway over the given backends with test-speed
// resilience settings; callers override cfg fields via mutate.
func newTestGateway(t *testing.T, backendURLs []string, mutate func(*Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Backends:      backendURLs,
		Backoff:       fastRetry,
		ProbeInterval: -1, // probing is opt-in per test
		AccessLog:     io.Discard,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	front := httptest.NewServer(g.Handler())
	t.Cleanup(front.Close)
	return g, front
}

// keyOwnedBy finds an X-Shard-Key whose ring owner is backend idx.
func keyOwnedBy(t *testing.T, g *Gateway, idx int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if g.ring.sequence(hashString(k))[0] == idx {
			return k
		}
	}
	t.Fatalf("no key owned by backend %d", idx)
	return ""
}

func postShard(t *testing.T, url, key, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-Shard-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	return resp
}

func TestProxyRelaysSuccess(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Backend", "b0")
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}))
	defer backend.Close()
	g, front := newTestGateway(t, []string{backend.URL}, nil)

	resp := postShard(t, front.URL+"/v1/echo", "", "hello posits")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Backend"); got != "b0" {
		t.Fatalf("X-Backend = %q, backend headers not relayed", got)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no X-Request-ID on the relayed response")
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello posits" {
		t.Fatalf("body = %q, want the echo", body)
	}
	snap := g.snapshot()
	if snap.Responses2xx != 1 || snap.RetriesTotal != 0 {
		t.Fatalf("snapshot = %+v, want one clean 2xx", snap)
	}
}

// A 5xx from the shard owner is retried on the next ring backend; the
// client never sees the failure.
func TestProxyRetriesOn5xx(t *testing.T) {
	var hits0, hits1 atomic.Int64
	b0 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits0.Add(1)
		writeError(w, http.StatusInternalServerError, "boom", "injected")
	}))
	defer b0.Close()
	b1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits1.Add(1)
		io.WriteString(w, "recovered")
	}))
	defer b1.Close()
	g, front := newTestGateway(t, []string{b0.URL, b1.URL}, nil)

	resp := postShard(t, front.URL+"/v1/x", keyOwnedBy(t, g, 0), "payload")
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "recovered" {
		t.Fatalf("got %d %q, want 200 recovered", resp.StatusCode, body)
	}
	if hits0.Load() != 1 || hits1.Load() != 1 {
		t.Fatalf("hits = %d/%d, want exactly one try each", hits0.Load(), hits1.Load())
	}
	snap := g.snapshot()
	if snap.RetriesTotal != 1 || snap.Responses2xx != 1 || snap.Responses5xx != 0 {
		t.Fatalf("snapshot = %+v, want 1 retry and a clean 2xx", snap)
	}
	if be := snap.Backends[strings.TrimPrefix(b0.URL, "http://")]; be.Failures != 1 {
		t.Fatalf("backend0 failures = %d, want 1", be.Failures)
	}
}

// A dead backend (connection refused) is retried the same way.
func TestProxyRetriesDeadBackend(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // keep the address, kill the listener
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "alive")
	}))
	defer alive.Close()
	g, front := newTestGateway(t, []string{dead.URL, alive.URL}, nil)

	resp := postShard(t, front.URL+"/v1/x", keyOwnedBy(t, g, 0), "payload")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via failover", resp.StatusCode)
	}
	if snap := g.snapshot(); snap.RetriesTotal != 1 {
		t.Fatalf("retries = %d, want 1", snap.RetriesTotal)
	}
}

// When every backend sheds with 429, the client receives the backend's own
// 429 — Retry-After intact — not a synthetic gateway error, and no breaker
// counts it as a failure.
func TestProxy429ForwardedOnExhaustion(t *testing.T) {
	shed := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		writeError(w, http.StatusTooManyRequests, "saturated", "at limit")
	}
	b0 := httptest.NewServer(http.HandlerFunc(shed))
	defer b0.Close()
	b1 := httptest.NewServer(http.HandlerFunc(shed))
	defer b1.Close()
	g, front := newTestGateway(t, []string{b0.URL, b1.URL}, nil)

	resp := postShard(t, front.URL+"/v1/x", "", "payload")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want the backend's 7", got)
	}
	snap := g.snapshot()
	if snap.Responses429 != 1 || snap.Responses4xx != 0 || snap.Responses5xx != 0 {
		t.Fatalf("snapshot = %+v, want exactly one 429", snap)
	}
	for name, be := range snap.Backends {
		if be.BreakerState != "closed" {
			t.Fatalf("backend %s breaker %s after 429s, want closed", name, be.BreakerState)
		}
	}
}

// Deterministic client errors (4xx) are relayed, never retried.
func TestProxy4xxNotRetried(t *testing.T) {
	var hits atomic.Int64
	b0 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeError(w, http.StatusNotFound, "unknown_codec", "no such codec")
	}))
	defer b0.Close()
	b1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "should not be reached")
	}))
	defer b1.Close()
	g, front := newTestGateway(t, []string{b0.URL, b1.URL}, nil)

	resp := postShard(t, front.URL+"/v1/x", keyOwnedBy(t, g, 0), "payload")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want the backend's 404", resp.StatusCode)
	}
	if hits.Load() != 1 {
		t.Fatalf("backends saw %d requests, want 1 (no retry on 4xx)", hits.Load())
	}
	if snap := g.snapshot(); snap.Responses4xx != 1 || snap.RetriesTotal != 0 {
		t.Fatalf("snapshot = %+v, want one un-retried 4xx", snap)
	}
}

// With every backend unreachable the client gets one 502 and the gateway
// counts the exhaustion.
func TestProxyNoBackend(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	g, front := newTestGateway(t, []string{dead.URL}, nil)

	resp := postShard(t, front.URL+"/v1/x", "", "payload")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if snap := g.snapshot(); snap.NoBackend != 1 || snap.Responses5xx != 1 {
		t.Fatalf("snapshot = %+v, want one no_backend 502", snap)
	}
}

// A backend that dies mid-body on a buffered (small) response is invisible
// to the client: the gateway catches the truncation while buffering and
// replays the request on the next backend.
func TestProxyRetriesMidBodyCrashBuffered(t *testing.T) {
	crash := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "1000")
		w.Write(make([]byte, 100))
		panic(http.ErrAbortHandler) // sever the connection mid-body
	}))
	defer crash.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 1000))
	}))
	defer ok.Close()
	g, front := newTestGateway(t, []string{crash.URL, ok.URL}, nil)

	resp := postShard(t, front.URL+"/v1/x", keyOwnedBy(t, g, 0), "payload")
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK || len(body) != 1000 {
		t.Fatalf("got %d, %d bytes, err %v; want a clean 200 with 1000 bytes", resp.StatusCode, len(body), err)
	}
	if snap := g.snapshot(); snap.RetriesTotal != 1 || snap.Responses2xx != 1 {
		t.Fatalf("snapshot = %+v, want one transparent retry", snap)
	}
}

// A backend crash after the gateway has started streaming an over-cap
// response must surface as exactly one client error — an aborted
// connection — never as a silently truncated 200 body.
func TestProxyAbortsMidStreamCrash(t *testing.T) {
	crash := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "1048576")
		w.Write(make([]byte, 8192))
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	defer crash.Close()
	g, front := newTestGateway(t, []string{crash.URL}, func(cfg *Config) {
		cfg.MaxBufferBytes = 1024 // force the streaming relay path
	})

	resp := postShard(t, front.URL+"/v1/x", "", "payload")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; the crash happens after the status line", resp.StatusCode)
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("client read a complete body from a half-streamed response")
	}
	snap := g.snapshot()
	if snap.AbortedMidStream != 1 {
		t.Fatalf("aborted_mid_stream = %d, want 1", snap.AbortedMidStream)
	}
	if snap.Responses2xx != 0 {
		t.Fatalf("aborted response also counted as 2xx: %+v", snap)
	}
}

// Requests whose bodies exceed the buffer cap are streamed through exactly
// once: a failure is answered, not retried.
func TestProxyOversizedBodyNotRetried(t *testing.T) {
	var hits0, hits1 atomic.Int64
	b0 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits0.Add(1)
		io.Copy(io.Discard, r.Body)
		writeError(w, http.StatusInternalServerError, "boom", "injected")
	}))
	defer b0.Close()
	b1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits1.Add(1)
		io.WriteString(w, "ok")
	}))
	defer b1.Close()
	g, front := newTestGateway(t, []string{b0.URL, b1.URL}, func(cfg *Config) {
		cfg.MaxBufferBytes = 64
	})

	key := keyOwnedBy(t, g, 0)
	resp := postShard(t, front.URL+"/v1/x", key, strings.Repeat("x", 1024))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want the backend's 500 relayed un-retried", resp.StatusCode)
	}
	if hits0.Load() != 1 || hits1.Load() != 0 {
		t.Fatalf("hits = %d/%d: an unbuffered body was replayed", hits0.Load(), hits1.Load())
	}
	if snap := g.snapshot(); snap.BodiesStreamed != 1 || snap.RetriesTotal != 0 {
		t.Fatalf("snapshot = %+v, want one streamed body, zero retries", snap)
	}
}

// The same body keeps landing on the same backend; distinct bodies spread.
func TestProxyShardAffinity(t *testing.T) {
	var hits [3]atomic.Int64
	var urls []string
	for i := 0; i < 3; i++ {
		i := i
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			io.Copy(io.Discard, r.Body)
			io.WriteString(w, "ok")
		}))
		defer s.Close()
		urls = append(urls, s.URL)
	}
	_, front := newTestGateway(t, urls, nil)

	for i := 0; i < 10; i++ {
		resp := postShard(t, front.URL+"/v1/x", "", "the same payload every time")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	owners := 0
	for i := range hits {
		if n := hits[i].Load(); n == 10 {
			owners++
		} else if n != 0 {
			t.Fatalf("backend %d saw %d of 10 identical requests: affinity broken", i, n)
		}
	}
	if owners != 1 {
		t.Fatalf("%d backends owned the key, want exactly 1", owners)
	}

	for i := 0; i < 60; i++ {
		resp := postShard(t, front.URL+"/v1/x", "", fmt.Sprintf("distinct payload %d", i))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	spread := 0
	for i := range hits {
		if hits[i].Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("60 distinct payloads all hit one backend of %d", len(hits))
	}
}

// Once a backend's breaker opens, requests stop trying it: the shard owner
// is skipped at claim time instead of burning a retry per request.
func TestProxyBreakerSkipsOpenBackend(t *testing.T) {
	var hitsBad atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitsBad.Add(1)
		writeError(w, http.StatusInternalServerError, "boom", "injected")
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer good.Close()
	g, front := newTestGateway(t, []string{bad.URL, good.URL}, func(cfg *Config) {
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = time.Hour // stays open for the whole test
	})

	key := keyOwnedBy(t, g, 0)
	for i := 0; i < 5; i++ {
		resp := postShard(t, front.URL+"/v1/x", key, "payload")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want failover 200", i, resp.StatusCode)
		}
	}
	if got := hitsBad.Load(); got != 2 {
		t.Fatalf("failing backend saw %d tries, want 2 (then the breaker holds)", got)
	}
	snap := g.snapshot()
	be := snap.Backends[strings.TrimPrefix(bad.URL, "http://")]
	if be.BreakerState != "open" || be.BreakerOpens != 1 {
		t.Fatalf("bad backend breaker = %+v, want open once", be)
	}
	if snap.RetriesTotal != 2 {
		t.Fatalf("retries_total = %d, want 2 (only the pre-open requests)", snap.RetriesTotal)
	}
}

// The gateway's own readiness: 200 while serving, 503 once draining.
func TestGatewayReadyzDraining(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()
	g, front := newTestGateway(t, []string{backend.URL}, nil)

	get := func() int {
		resp, err := http.Get(front.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", got)
	}
	g.SetDraining(true)
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", got)
	}
	g.SetDraining(false)
	g.backends[0].ready.Store(false)
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz with zero ready backends = %d, want 503", got)
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends succeeded")
	}
	if _, err := New(Config{Backends: []string{"127.0.0.1:1", "127.0.0.1:1"}}); err == nil {
		t.Fatal("New with duplicate backends succeeded")
	}
	if _, err := New(Config{Backends: []string{"://bad"}}); err == nil {
		t.Fatal("New with an unparsable backend succeeded")
	}
	g, err := New(Config{Backends: []string{"127.0.0.1:9011", "http://127.0.0.1:9012"}, AccessLog: io.Discard})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := []string{"127.0.0.1:9011", "127.0.0.1:9012"}
	got := g.Backends()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", got, want)
		}
	}
	if g.cfg.MaxTries != 2 {
		t.Fatalf("MaxTries = %d, want clamped to backend count", g.cfg.MaxTries)
	}
}
