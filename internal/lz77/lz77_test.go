package lz77

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"positbench/internal/compress"
)

func TestFindsObviousMatch(t *testing.T) {
	src := []byte("abcdefgh--abcdefgh")
	m := NewMatcher(src, 1<<16, 32)
	for i := 0; i < 10; i++ {
		m.Insert(i)
	}
	dist, length := m.FindMatch(10, len(src)-10)
	if dist != 10 || length != 8 {
		t.Fatalf("got dist=%d len=%d, want 10,8", dist, length)
	}
}

func TestNoMatchOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 256)
	rng.Read(src)
	m := NewMatcher(src, 1<<16, 32)
	misses := 0
	for i := 0; i < len(src)-MinMatch; i++ {
		if d, l := m.FindMatch(i, len(src)-i); d == 0 && l == 0 {
			misses++
		}
		m.Insert(i)
	}
	if misses < 200 {
		t.Fatalf("random data should rarely match: %d misses", misses)
	}
}

func TestWindowLimit(t *testing.T) {
	pattern := []byte("0123456789ABCDEF")
	src := append(append([]byte{}, pattern...), make([]byte, 100)...)
	for i := 16; i < 116; i++ {
		src[i] = byte(i * 7)
	}
	src = append(src, pattern...)
	m := NewMatcher(src, 32, 64) // window too small to reach the first copy
	for i := 0; i+MinMatch <= len(src)-16; i++ {
		m.Insert(i)
	}
	if d, l := m.FindMatch(len(src)-16, 16); d != 0 || l != 0 {
		t.Fatalf("match beyond window reported: dist=%d len=%d", d, l)
	}
	m2 := NewMatcher(src, 1<<16, 64)
	for i := 0; i+MinMatch <= len(src)-16; i++ {
		m2.Insert(i)
	}
	if d, l := m2.FindMatch(len(src)-16, 16); d != 116 || l != 16 {
		t.Fatalf("wide window: dist=%d len=%d, want 116,16", d, l)
	}
}

func TestPrefersCloserOnTies(t *testing.T) {
	src := []byte("wxyz--wxyz--wxyz")
	m := NewMatcher(src, 1<<16, 64)
	for i := 0; i < 12; i++ {
		m.Insert(i)
	}
	dist, length := m.FindMatch(12, 4)
	if length != 4 || dist != 6 {
		t.Fatalf("got dist=%d len=%d, want 6,4", dist, length)
	}
}

func TestMatchLen(t *testing.T) {
	src := []byte("aaaaabaaaa")
	if got := MatchLen(src, 0, 6, 4); got != 4 {
		t.Fatalf("got %d", got)
	}
	if got := MatchLen(src, 0, 5, 5); got != 0 {
		t.Fatalf("got %d", got)
	}
}

func TestMatchesAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Compressible data: random phrases repeated.
	var src []byte
	phrases := make([][]byte, 16)
	for i := range phrases {
		phrases[i] = make([]byte, rng.Intn(30)+4)
		rng.Read(phrases[i])
	}
	for len(src) < 20000 {
		src = append(src, phrases[rng.Intn(16)]...)
	}
	m := NewMatcher(src, 1<<16, 32)
	found := 0
	for i := 0; i < len(src); i++ {
		if d, l := m.FindMatch(i, len(src)-i); l > 0 {
			if d <= 0 || i-d < 0 {
				t.Fatalf("invalid dist %d at %d", d, i)
			}
			if !bytes.Equal(src[i:i+l], src[i-d:i-d+l]) {
				t.Fatalf("reported match does not match at %d (d=%d l=%d)", i, d, l)
			}
			if l < MinMatch {
				t.Fatalf("short match %d", l)
			}
			found++
		}
		m.Insert(i)
	}
	if found < 1000 {
		t.Fatalf("too few matches on compressible data: %d", found)
	}
}

func TestTailPositions(t *testing.T) {
	src := []byte("abc")
	m := NewMatcher(src, 1<<16, 8)
	m.Insert(0) // no-op: too close to end
	if d, l := m.FindMatch(0, 3); d != 0 || l != 0 {
		t.Fatal("tail position must not match")
	}
	empty := NewMatcher(nil, 0, 0)
	if d, l := empty.FindMatch(0, 0); d != 0 || l != 0 {
		t.Fatal("empty source")
	}
}

func BenchmarkFindMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var src []byte
	phrase := make([]byte, 64)
	rng.Read(phrase)
	for len(src) < 1<<20 {
		if rng.Intn(2) == 0 {
			src = append(src, phrase...)
		} else {
			chunk := make([]byte, 64)
			rng.Read(chunk)
			src = append(src, chunk...)
		}
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMatcher(src, 1<<20, 16)
		for p := 0; p < len(src); p++ {
			m.FindMatch(p, len(src)-p)
			m.Insert(p)
		}
	}
}

func TestAppendMatch(t *testing.T) {
	out := []byte("abcd")
	out, err := AppendMatch(out, 4, 8, 0) // overlapping copy: abcdabcdabcd
	if err != nil || string(out) != "abcdabcdabcd" {
		t.Fatalf("overlap copy: %q, %v", out, err)
	}
	if _, err := AppendMatch([]byte("ab"), 3, 4, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("distance past start: %v", err)
	}
	if _, err := AppendMatch([]byte("ab"), 0, 4, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("zero distance: %v", err)
	}
	if _, err := AppendMatch([]byte("ab"), 1, 100, 50); !errors.Is(err, compress.ErrLimitExceeded) {
		t.Fatalf("capped output: %v", err)
	}
}
