// Package lz77 provides a hash-chain match finder shared by the LZ4-class,
// Zstd-class, and XZ-class codecs. The window size and chain-search depth
// are the knobs that differentiate those codecs' design points.
package lz77

import (
	"encoding/binary"
	"math/bits"

	"positbench/internal/compress"
)

const (
	// MinMatch is the shortest match the finder reports.
	MinMatch = 4
	hashLog  = 17
	hashSize = 1 << hashLog
)

// Matcher finds back-references in a fixed source buffer using hash chains
// keyed on 4-byte prefixes.
type Matcher struct {
	src    []byte
	window int // maximum match distance
	depth  int // maximum chain positions examined per query
	head   []int32
	prev   []int32
}

// NewMatcher prepares a matcher over src. window bounds match distances;
// depth bounds the work per position (higher = better matches, slower).
func NewMatcher(src []byte, window, depth int) *Matcher {
	if window <= 0 {
		window = 1 << 16
	}
	if depth <= 0 {
		depth = 16
	}
	m := &Matcher{head: make([]int32, hashSize)}
	m.Reset(src, window, depth)
	return m
}

// Reset re-targets the matcher at a new source buffer, reusing its hash
// tables so steady-state callers (e.g. chunked compressors) allocate only
// when src outgrows every earlier buffer. The same window/depth defaulting
// as NewMatcher applies.
func (m *Matcher) Reset(src []byte, window, depth int) {
	if window <= 0 {
		window = 1 << 16
	}
	if depth <= 0 {
		depth = 16
	}
	m.src, m.window, m.depth = src, window, depth
	if m.head == nil {
		m.head = make([]int32, hashSize)
	}
	for i := range m.head {
		m.head[i] = -1
	}
	if cap(m.prev) < len(src) {
		m.prev = make([]int32, len(src))
	}
	m.prev = m.prev[:len(src)]
}

func hash4(v uint32) uint32 {
	return v * 2654435761 >> (32 - hashLog)
}

func (m *Matcher) load4(pos int) uint32 {
	s := m.src
	return uint32(s[pos]) | uint32(s[pos+1])<<8 | uint32(s[pos+2])<<16 | uint32(s[pos+3])<<24
}

// Insert registers position pos in the hash chains. Positions must be
// inserted in increasing order; querying FindMatch(pos) only considers
// previously inserted positions.
func (m *Matcher) Insert(pos int) {
	if pos+MinMatch > len(m.src) {
		return
	}
	h := hash4(m.load4(pos))
	m.prev[pos] = m.head[h]
	m.head[h] = int32(pos)
}

// FindMatch returns the longest match for the data at pos against earlier
// inserted positions within the window, with maximum length maxLen.
// It returns (0,0) if no match of at least MinMatch exists. Ties prefer
// smaller distances.
func (m *Matcher) FindMatch(pos, maxLen int) (dist, length int) {
	if pos+MinMatch > len(m.src) {
		return 0, 0
	}
	if rem := len(m.src) - pos; maxLen > rem {
		maxLen = rem
	}
	cur4 := m.load4(pos)
	h := hash4(cur4)
	cand := m.head[h]
	limit := pos - m.window
	src := m.src
	best := MinMatch - 1
	for tries := m.depth; cand >= 0 && int(cand) >= limit && tries > 0; tries-- {
		c := int(cand)
		if c >= pos {
			// The matcher may be populated ahead of the query position.
			cand = m.prev[c]
			continue
		}
		// Quick rejects: the byte just past the current best must match (or
		// the candidate cannot improve on it), and the 4-byte prefix weeds
		// out hash collisions before the full extension.
		if best < maxLen && src[c+best] == src[pos+best] && m.load4(c) == cur4 {
			l := matchLen(src, c, pos, maxLen)
			if l > best {
				best, dist = l, pos-c
				if l >= maxLen {
					break
				}
			}
		}
		cand = m.prev[c]
	}
	if best < MinMatch {
		return 0, 0
	}
	return dist, best
}

// Match is a (distance, length) back-reference candidate.
type Match struct {
	Dist, Len int
}

// FindMatches appends strictly-lengthening match candidates at pos to dst:
// each entry has the smallest distance seen for its length, and lengths
// increase along the slice. Candidates at or beyond pos are skipped, so the
// matcher may be pre-populated ahead of the query position.
func (m *Matcher) FindMatches(pos, maxLen int, dst []Match) []Match {
	if pos+MinMatch > len(m.src) {
		return dst
	}
	if rem := len(m.src) - pos; maxLen > rem {
		maxLen = rem
	}
	cur4 := m.load4(pos)
	h := hash4(cur4)
	cand := m.head[h]
	limit := pos - m.window
	src := m.src
	best := MinMatch - 1
	for tries := m.depth; cand >= 0 && int(cand) >= limit && tries > 0; tries-- {
		c := int(cand)
		if c >= pos {
			cand = m.prev[c]
			continue
		}
		if best < maxLen && src[c+best] == src[pos+best] && m.load4(c) == cur4 {
			l := matchLen(src, c, pos, maxLen)
			if l > best {
				best = l
				dst = append(dst, Match{Dist: pos - c, Len: l})
				if l >= maxLen {
					break
				}
			}
		}
		cand = m.prev[c]
	}
	return dst
}

// InsertRange registers positions [from, to) in increasing order.
func (m *Matcher) InsertRange(from, to int) {
	for i := from; i < to; i++ {
		m.Insert(i)
	}
}

// matchLen counts equal bytes at a and b, up to max. It compares 8 bytes at
// a time with unaligned little-endian loads; the XOR of two equal words is
// zero, and on a mismatch the trailing zero count locates the first
// differing byte. max is clamped so the wide loads stay in bounds even if a
// caller passes a limit past the end of src.
func matchLen(src []byte, a, b, max int) int {
	if a > b {
		a, b = b, a
	}
	if rem := len(src) - b; max > rem {
		max = rem
	}
	n := 0
	for n+8 <= max {
		x := binary.LittleEndian.Uint64(src[a+n:]) ^ binary.LittleEndian.Uint64(src[b+n:])
		if x != 0 {
			return n + bits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for n < max && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// MatchLen is the exported equal-prefix counter used by codec encoders for
// match extension.
func MatchLen(src []byte, a, b, max int) int { return matchLen(src, a, b, max) }

// AppendMatch copies an LZ back-reference (dist bytes back, mlen bytes long,
// possibly overlapping) onto out, validating the reference against the bytes
// decoded so far and capping the total output at maxOut (maxOut <= 0 means
// unbounded). Every LZ-family decoder in this repository resolves matches
// through this helper so a tampered distance or length becomes a typed error
// instead of an out-of-bounds copy or an unbounded allocation.
func AppendMatch(out []byte, dist, mlen, maxOut int) ([]byte, error) {
	if mlen < 0 {
		return nil, compress.Errorf(compress.ErrCorrupt, "lz77: negative match length %d", mlen)
	}
	if dist <= 0 || dist > len(out) {
		return nil, compress.Errorf(compress.ErrCorrupt, "lz77: match distance %d outside %d decoded bytes", dist, len(out))
	}
	if maxOut > 0 && mlen > maxOut-len(out) {
		return nil, compress.Errorf(compress.ErrLimitExceeded, "lz77: match output exceeds %d bytes", maxOut)
	}
	start := len(out) - dist
	if mlen <= dist {
		// Disjoint source and destination: one bulk copy via append.
		return append(out, out[start:start+mlen]...), nil
	}
	// Overlapping match (dist < mlen): the copy must observe bytes it has
	// just produced (dist=1 repeats a single byte). Grow capacity without a
	// temporary, then double the written region until the match is resolved:
	// each copy's source is fully materialized and disjoint from its
	// destination.
	n := len(out)
	total := n + mlen
	for cap(out) < total {
		out = append(out[:cap(out)], 0)
	}
	out = out[:total]
	for n < total {
		n += copy(out[n:], out[start:n])
	}
	return out, nil
}
