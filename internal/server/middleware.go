package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// countingWriter wraps the ResponseWriter to record status and body bytes
// for metrics and the access log, and to let streaming handlers know
// whether the status line is already on the wire.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (c *countingWriter) WriteHeader(status int) {
	if !c.wrote {
		c.wrote = true
		c.status = status
		c.ResponseWriter.WriteHeader(status)
	}
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if !c.wrote {
		c.wrote = true
		c.status = http.StatusOK
	}
	n, err := c.ResponseWriter.Write(p)
	c.bytes += int64(n)
	return n, err
}

// Flush passes http.Flusher through so streamed responses are not held
// back by the wrapper.
func (c *countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// the deadline middleware and the full-duplex streaming handlers depend on.
func (c *countingWriter) Unwrap() http.ResponseWriter {
	return c.ResponseWriter
}

// shell is the outermost middleware on every route: panic recovery,
// per-route metrics, and the structured access log.
func (s *Server) shell(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &countingWriter{ResponseWriter: w}
		r, rid := ensureRequestID(cw, r)
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// A streaming handler aborted mid-body on purpose;
					// account for it, then let net/http kill the
					// connection.
					s.finish(route, cw, r, start, rid)
					panic(p)
				}
				// Anything else is a bug: answer 500 if the status line
				// has not been sent, and always keep serving.
				if !cw.wrote {
					writeErrorStatus(cw, http.StatusInternalServerError, "panic", "internal error")
				}
			}
			s.finish(route, cw, r, start, rid)
		}()
		next.ServeHTTP(cw, r)
	})
}

// finish records one completed request in metrics and the access log.
func (s *Server) finish(route string, cw *countingWriter, r *http.Request, start time.Time, rid string) {
	status := cw.status
	if !cw.wrote {
		status = http.StatusOK // handler sent nothing; net/http will 200
	}
	elapsed := time.Since(start)
	s.metrics.recordRequest(route, status, elapsed, cw.bytes)
	s.access.log(accessRecord{
		Time:      start.UTC().Format(time.RFC3339Nano),
		RequestID: rid,
		Method:    r.Method,
		Path:      r.URL.Path,
		Route:     route,
		Status:    status,
		Duration:  elapsed.Round(time.Microsecond).String(),
		BytesOut:  cw.bytes,
		BytesIn:   r.ContentLength,
		Remote:    r.RemoteAddr,
	})
}

// admit applies the bounded admission semaphore: requests beyond
// MaxInflight are shed immediately with 429 + Retry-After rather than
// queued, so saturation produces fast, explicit feedback instead of
// timeout pile-ups.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			s.metrics.inflight.Add(1)
			defer s.metrics.inflight.Add(-1)
			next.ServeHTTP(w, r)
		default:
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			writeErrorStatus(w, http.StatusTooManyRequests, "saturated",
				"server is at its in-flight request limit")
		}
	})
}

// retryAfterSeconds is the back-off hint on 429 responses.
const retryAfterSeconds = 1

// writeDeadlineSlack keeps the connection writable briefly after the read
// deadline fires, long enough to flush an error body.
const writeDeadlineSlack = 5 * time.Second

// deadline bounds the request end to end: the context deadline cancels
// worker pools (compress.NewParallelWriterContext and friends), and the
// connection read deadline unblocks handlers stuck in Body.Read on a
// stalled client.
func (s *Server) deadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.RequestTimeout <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// Best-effort: httptest and HTTP/1 support read deadlines; if the
		// transport does not, the context still bounds pool work. The write
		// deadline gets headroom past the read deadline so the error response
		// for a stalled upload can still reach the client.
		rc := http.NewResponseController(w)
		_ = rc.SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout))
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.RequestTimeout + writeDeadlineSlack))
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// accessRecord is one structured access-log line.
type accessRecord struct {
	Time      string `json:"ts"`
	RequestID string `json:"request_id"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	Route     string `json:"route"`
	Status    int    `json:"status"`
	Duration  string `json:"dur"`
	BytesIn   int64  `json:"bytes_in"`
	BytesOut  int64  `json:"bytes_out"`
	Remote    string `json:"remote,omitempty"`
}

// accessLogger serializes JSON lines to one writer.
type accessLogger struct {
	mu  sync.Mutex
	dst io.Writer
}

func (l *accessLogger) log(rec accessRecord) {
	blob, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dst.Write(append(blob, '\n'))
}
