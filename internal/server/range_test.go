package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/container"
)

// putObject uploads body as object key and returns the response, its raw
// body, and the parsed meta document on 201.
func putObject(t *testing.T, base, key string, body []byte) (*http.Response, []byte, objectMeta) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/objects/"+key, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT object: %v", err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	var meta objectMeta
	if resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(blob, &meta); err != nil {
			t.Fatalf("PUT meta not JSON: %v (%s)", err, blob)
		}
	}
	return resp, blob, meta
}

// getRange issues GET /v1/read/{key} with an optional Range header.
func getRange(t *testing.T, base, key, rangeHdr string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/read/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rangeHdr != "" {
		req.Header.Set("Range", rangeHdr)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET read: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, body
}

// compressVia round-trips orig through POST /v1/compress/{codec} and
// returns the (indexed) stream the server emitted.
func compressVia(t *testing.T, base, codec string, orig []byte, chunk int) []byte {
	t.Helper()
	resp, comp := postBytes(t, fmt.Sprintf("%s/v1/compress/%s?chunk=%d", base, codec, chunk), orig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d: %s", resp.StatusCode, comp)
	}
	return comp
}

// TestCompressEmitsTrailer pins the tentpole's server half: every stream
// POST /v1/compress emits now carries a parseable index trailer, and the
// trailer is invisible to the sequential /v1/decompress path.
func TestCompressEmitsTrailer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	orig := sampleF32(16 << 10) // 64 KiB
	comp := compressVia(t, ts.URL, "gzip", orig, 8192)

	ix, err := container.ParseTrailer(bytes.NewReader(comp), int64(len(comp)))
	if err != nil {
		t.Fatalf("compress output has no valid trailer: %v", err)
	}
	if ix.RawLen != int64(len(orig)) {
		t.Fatalf("trailer RawLen = %d, want %d", ix.RawLen, len(orig))
	}
	if want := (len(orig) + 8191) / 8192; len(ix.Chunks) != want {
		t.Fatalf("trailer indexes %d chunks, want %d", len(ix.Chunks), want)
	}
	resp, out := postBytes(t, ts.URL+"/v1/decompress", comp)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(out, orig) {
		t.Fatalf("decompress of indexed stream: status %d, %d bytes (want %d)",
			resp.StatusCode, len(out), len(orig))
	}
}

func TestObjectRangeRead(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	orig := sampleF32(16 << 10) // 64 KiB raw
	comp := compressVia(t, ts.URL, "gzip", orig, 8192)

	resp, _, meta := putObject(t, ts.URL, "field.f32.gz", comp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	if !meta.Indexed || meta.Codec != "gzip" || meta.RawLen != int64(len(orig)) || meta.Chunks != 8 {
		t.Fatalf("PUT meta = %+v", meta)
	}

	t.Run("FullRead", func(t *testing.T) {
		resp, body := getRange(t, ts.URL, "field.f32.gz", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if resp.Header.Get("Accept-Ranges") != "bytes" {
			t.Fatalf("Accept-Ranges = %q", resp.Header.Get("Accept-Ranges"))
		}
		if resp.Header.Get("X-Positd-Codec") != "gzip" {
			t.Fatalf("X-Positd-Codec = %q", resp.Header.Get("X-Positd-Codec"))
		}
		if !bytes.Equal(body, orig) {
			t.Fatalf("full read: %d bytes, want %d", len(body), len(orig))
		}
	})
	t.Run("PartialRange", func(t *testing.T) {
		const a, b = 10_000, 30_000 // inclusive, spans chunk boundaries
		resp, body := getRange(t, ts.URL, "field.f32.gz", fmt.Sprintf("bytes=%d-%d", a, b))
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("status = %d, want 206", resp.StatusCode)
		}
		wantCR := fmt.Sprintf("bytes %d-%d/%d", a, b, len(orig))
		if got := resp.Header.Get("Content-Range"); got != wantCR {
			t.Fatalf("Content-Range = %q, want %q", got, wantCR)
		}
		if !bytes.Equal(body, orig[a:b+1]) {
			t.Fatal("partial range content mismatch")
		}
	})
	t.Run("OpenEndedRange", func(t *testing.T) {
		resp, body := getRange(t, ts.URL, "field.f32.gz", "bytes=60000-")
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("status = %d, want 206", resp.StatusCode)
		}
		if !bytes.Equal(body, orig[60000:]) {
			t.Fatal("open-ended range content mismatch")
		}
	})
	t.Run("SuffixRange", func(t *testing.T) {
		resp, body := getRange(t, ts.URL, "field.f32.gz", "bytes=-1000")
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("status = %d, want 206", resp.StatusCode)
		}
		if !bytes.Equal(body, orig[len(orig)-1000:]) {
			t.Fatal("suffix range content mismatch")
		}
	})
	t.Run("QueryParams", func(t *testing.T) {
		resp, body := get(t, fmt.Sprintf("%s/v1/read/field.f32.gz?off=%d&len=%d", ts.URL, 8192+1, 4096))
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("status = %d, want 206", resp.StatusCode)
		}
		if !bytes.Equal(body, orig[8193:8193+4096]) {
			t.Fatal("?off/?len content mismatch")
		}
	})
	t.Run("Unsatisfiable", func(t *testing.T) {
		resp, body := getRange(t, ts.URL, "field.f32.gz", fmt.Sprintf("bytes=%d-", len(orig)))
		wantAPIError(t, resp, body, http.StatusRequestedRangeNotSatisfiable, "unsatisfiable_range")
		wantCR := fmt.Sprintf("bytes */%d", len(orig))
		if got := resp.Header.Get("Content-Range"); got != wantCR {
			t.Fatalf("416 Content-Range = %q, want %q", got, wantCR)
		}
	})
	t.Run("UnsatisfiableParams", func(t *testing.T) {
		resp, body := get(t, fmt.Sprintf("%s/v1/read/field.f32.gz?off=%d", ts.URL, len(orig)+5))
		wantAPIError(t, resp, body, http.StatusRequestedRangeNotSatisfiable, "unsatisfiable_range")
	})
	t.Run("MultiRangeIgnored", func(t *testing.T) {
		resp, body := getRange(t, ts.URL, "field.f32.gz", "bytes=0-99,200-299")
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, orig) {
			t.Fatalf("multi-range: status %d, %d bytes; want full 200", resp.StatusCode, len(body))
		}
	})
	t.Run("BadLenParam", func(t *testing.T) {
		resp, body := get(t, ts.URL+"/v1/read/field.f32.gz?off=0&len=0")
		wantAPIError(t, resp, body, http.StatusBadRequest, "bad_param")
	})
}

// TestReadV1Fallback pins the forward-compat contract end to end: an
// object uploaded as a trailer-less v1 stream stays fully readable, and a
// Range request against it degrades to a 200 full read — never an error.
func TestReadV1Fallback(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	orig := sampleF32(4 << 10)
	codec, _ := s.codec("gzip")
	var v1 bytes.Buffer
	w := compress.NewWriter(codec, &v1, 8192) // no index sink: v1 wire format
	if _, err := w.Write(orig); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	resp, _, meta := putObject(t, ts.URL, "legacy", v1.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	if meta.Indexed {
		t.Fatalf("v1 stream reported as indexed: %+v", meta)
	}
	resp2, body := getRange(t, ts.URL, "legacy", "bytes=100-199")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("ranged read of v1 object: status = %d, want 200 full fallback", resp2.StatusCode)
	}
	if resp2.Header.Get("Accept-Ranges") == "bytes" {
		t.Fatal("v1 object must not advertise Accept-Ranges")
	}
	if !bytes.Equal(body, orig) {
		t.Fatal("v1 fallback did not return the full object")
	}
}

// TestReadBareFrame stores a single container frame (the compressbench -z
// on-disk format) and reads it back whole.
func TestReadBareFrame(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	orig := sampleF32(1 << 10)
	codec, _ := s.codec("gzip")
	frame, err := codec.Compress(orig)
	if err != nil {
		t.Fatal(err)
	}
	resp, _, meta := putObject(t, ts.URL, "one-frame", frame)
	if resp.StatusCode != http.StatusCreated || meta.Indexed || !meta.Bare {
		t.Fatalf("PUT bare frame: status %d, meta %+v", resp.StatusCode, meta)
	}
	resp2, body := getRange(t, ts.URL, "one-frame", "")
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body, orig) {
		t.Fatalf("bare-frame read: status %d, %d bytes", resp2.StatusCode, len(body))
	}
}

func TestPutObjectValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxStoreBytes: 4 << 10})
	comp := compressVia(t, ts.URL, "gzip", sampleF32(256), 8192)

	t.Run("BadKey", func(t *testing.T) {
		resp, blob, _ := putObject(t, ts.URL, "no%2Fslashes", comp)
		wantAPIError(t, resp, blob, http.StatusBadRequest, "bad_key")
	})
	t.Run("EmptyBody", func(t *testing.T) {
		resp, _, _ := putObject(t, ts.URL, "empty", nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("CorruptTrailerRejected", func(t *testing.T) {
		bad := append([]byte(nil), comp...)
		bad[len(bad)-17] ^= 1 // flip a body-CRC byte in the 17-byte footer
		resp, _, _ := putObject(t, ts.URL, "corrupt", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("corrupt trailer accepted: status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("StoreFull", func(t *testing.T) {
		big := compressVia(t, ts.URL, "gzip", sampleF32(64<<10), 65536)
		if len(big) <= 4<<10 {
			t.Skipf("fixture compressed too well (%d bytes) to overflow the store", len(big))
		}
		resp, _, _ := putObject(t, ts.URL, "too-big", big)
		if resp.StatusCode != http.StatusInsufficientStorage {
			t.Fatalf("status = %d, want 507", resp.StatusCode)
		}
	})
	t.Run("UnknownObject", func(t *testing.T) {
		resp, body := getRange(t, ts.URL, "never-stored", "")
		wantAPIError(t, resp, body, http.StatusNotFound, "unknown_object")
	})
}

// TestMetricsCacheReconciliation replays one range request twice and checks
// the /metrics chunk-cache section against a client-side reconstruction of
// exactly which chunks the window touches: the first pass misses once per
// touched chunk, the replay hits once per touched chunk, and the cache
// invariants (hits+misses == lookups) hold in the exported document.
func TestMetricsCacheReconciliation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	orig := sampleF32(16 << 10)
	comp := compressVia(t, ts.URL, "gzip", orig, 8192)
	if resp, _, _ := putObject(t, ts.URL, "replay", comp); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	// The client computes the expected touched-chunk count from the
	// trailer it uploaded — the same arithmetic the server must do.
	ix, err := container.ParseTrailer(bytes.NewReader(comp), int64(len(comp)))
	if err != nil {
		t.Fatal(err)
	}
	const off, length = 9_000, 20_000
	first, last := ix.Locate(off, length)
	touched := int64(last - first)
	if touched < 2 {
		t.Fatalf("test window touches %d chunks; want a multi-chunk window", touched)
	}

	url := fmt.Sprintf("%s/v1/read/replay?off=%d&len=%d", ts.URL, off, length)
	for i := 0; i < 2; i++ {
		resp, body := get(t, url)
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("pass %d: status = %d", i, resp.StatusCode)
		}
		if !bytes.Equal(body, orig[off:off+length]) {
			t.Fatalf("pass %d: content mismatch", i)
		}
	}

	mresp, mbody := get(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}
	var snap struct {
		ChunkCache *struct {
			Lookups int64 `json:"lookups"`
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Entries int64 `json:"entries"`
		} `json:"chunk_cache"`
		ObjectStore *struct {
			RangeReads  int64 `json:"range_reads_206"`
			BytesServed int64 `json:"bytes_served"`
		} `json:"object_store"`
	}
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.ChunkCache == nil || snap.ObjectStore == nil {
		t.Fatalf("/metrics missing chunk_cache or object_store sections: %s", mbody)
	}
	cc := snap.ChunkCache
	if cc.Lookups != 2*touched {
		t.Fatalf("cache lookups = %d, want %d (two passes x %d touched chunks)", cc.Lookups, 2*touched, touched)
	}
	if cc.Misses != touched || cc.Hits != touched {
		t.Fatalf("cache hits/misses = %d/%d, want %d/%d (miss once, hit on replay)",
			cc.Hits, cc.Misses, touched, touched)
	}
	if cc.Hits+cc.Misses != cc.Lookups {
		t.Fatalf("cache invariant broken in /metrics: %d + %d != %d", cc.Hits, cc.Misses, cc.Lookups)
	}
	if snap.ObjectStore.RangeReads != 2 {
		t.Fatalf("object_store range_reads_206 = %d, want 2", snap.ObjectStore.RangeReads)
	}
	if snap.ObjectStore.BytesServed != 2*length {
		t.Fatalf("object_store bytes_served = %d, want %d", snap.ObjectStore.BytesServed, 2*length)
	}
}

// TestRangeReadTraced checks the observability satellite: a range read
// leaves a "range-read" child span annotated with the chunk accounting.
func TestRangeReadTraced(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	orig := sampleF32(8 << 10)
	comp := compressVia(t, ts.URL, "gzip", orig, 8192)
	if resp, _, _ := putObject(t, ts.URL, "traced", comp); resp.StatusCode != http.StatusCreated {
		t.Fatal("PUT failed")
	}
	if resp, _ := getRange(t, ts.URL, "traced", "bytes=1000-5000"); resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range status = %d", resp.StatusCode)
	}

	dbg := httptest.NewServer(s.DebugTracesHandler())
	defer dbg.Close()
	resp, body := get(t, dbg.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug traces status = %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, `"range-read"`) {
		t.Fatalf("no range-read span in /debug/traces:\n%s", text)
	}
	for _, key := range []string{`"chunks"`, `"cache_hits"`, `"off"`, `"len"`} {
		if !strings.Contains(text, key) {
			t.Fatalf("range-read span missing %s annotation", key)
		}
	}
}
