package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"positbench/internal/advisor"
	"positbench/internal/chunkcache"
	"positbench/internal/compress"
	"positbench/internal/stats"
)

// metrics is the server's expvar-style counter registry: cheap enough to
// update on every request, rich enough to answer "is p99 moving" and "what
// ratio are we actually delivering" from a single GET /metrics.
type metrics struct {
	start    time.Time
	inflight atomic.Int64
	rejected atomic.Int64 // admission 429s

	mu       sync.Mutex
	routes   map[string]*routeStats
	codecOps map[string]*codecStats // keyed codec|op
}

// routeStats aggregates one route's request counters.
type routeStats struct {
	Total    int64             `json:"total"`
	ByClass  map[string]int64  `json:"by_status_class"`
	BytesOut int64             `json:"bytes_out"`
	lat      stats.LatencyHist `json:"-"`
}

// codecStats aggregates one codec x operation's data-plane counters.
type codecStats struct {
	Ops      int64             `json:"ops"`
	BytesIn  int64             `json:"bytes_in"`
	BytesOut int64             `json:"bytes_out"`
	lat      stats.LatencyHist `json:"-"`
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		routes:   map[string]*routeStats{},
		codecOps: map[string]*codecStats{},
	}
}

func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status == statusClientClosedRequest:
		return "499"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// recordRequest accounts one finished request on its route.
func (m *metrics) recordRequest(route string, status int, d time.Duration, bytesOut int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.routes[route]
	if rs == nil {
		rs = &routeStats{ByClass: map[string]int64{}}
		m.routes[route] = rs
	}
	rs.Total++
	rs.ByClass[statusClass(status)]++
	rs.BytesOut += bytesOut
	rs.lat.Observe(d)
}

// recordCodec accounts one data-plane operation (op is "compress" or
// "decompress") with its byte flow.
func (m *metrics) recordCodec(codec, op string, d time.Duration, bytesIn, bytesOut int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := codec + "|" + op
	cs := m.codecOps[key]
	if cs == nil {
		cs = &codecStats{}
		m.codecOps[key] = cs
	}
	cs.Ops++
	cs.BytesIn += bytesIn
	cs.BytesOut += bytesOut
	cs.lat.Observe(d)
}

// latencyExport is the JSON rendering of a LatencyHist.
type latencyExport struct {
	MeanUS  int64                 `json:"mean_us"`
	P50US   int64                 `json:"p50_us"`
	P99US   int64                 `json:"p99_us"`
	Buckets []stats.LatencyBucket `json:"buckets,omitempty"`
}

func exportLatency(h *stats.LatencyHist) latencyExport {
	return latencyExport{
		MeanUS:  h.Mean().Microseconds(),
		P50US:   h.Quantile(0.5).Microseconds(),
		P99US:   h.Quantile(0.99).Microseconds(),
		Buckets: h.Snapshot(),
	}
}

// routeExport is one route's /metrics entry.
type routeExport struct {
	routeStats
	Latency latencyExport `json:"latency"`
}

// codecExport is one codec x op /metrics entry. Ratio is the aggregate
// original/compressed ratio over everything this codec has moved.
type codecExport struct {
	codecStats
	Ratio   float64       `json:"ratio,omitempty"`
	Latency latencyExport `json:"latency"`
}

// engineExport is the /metrics view of the process-wide chunk-engine
// counters: the raw gauges plus a derived worker-pool utilization.
type engineExport struct {
	compress.EngineStats
	// Utilization is busy workers over alive workers at snapshot time
	// (0 when no pool is running).
	Utilization float64 `json:"worker_utilization"`
	// TracesCaptured counts traces ever published to the debug ring.
	TracesCaptured uint64 `json:"traces_captured"`
}

// metricsSnapshot is the full GET /metrics document.
type metricsSnapshot struct {
	UptimeSeconds float64                           `json:"uptime_seconds"`
	Inflight      int64                             `json:"inflight"`
	Rejected429   int64                             `json:"rejected_429"`
	Engine        engineExport                      `json:"engine"`
	Advisor       *advisor.Stats                    `json:"advisor,omitempty"`
	ChunkCache    *chunkcache.Stats                 `json:"chunk_cache,omitempty"`
	ObjectStore   *objectStoreStats                 `json:"object_store,omitempty"`
	Requests      map[string]routeExport            `json:"requests"`
	Codecs        map[string]map[string]codecExport `json:"codecs"`
}

// snapshot assembles the /metrics document under the registry lock.
func (m *metrics) snapshot() metricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := metricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Inflight:      m.inflight.Load(),
		Rejected429:   m.rejected.Load(),
		Requests:      make(map[string]routeExport, len(m.routes)),
		Codecs:        map[string]map[string]codecExport{},
	}
	snap.Engine.EngineStats = compress.EngineSnapshot()
	if alive := snap.Engine.WorkersAlive; alive > 0 {
		snap.Engine.Utilization = float64(snap.Engine.WorkersBusy) / float64(alive)
	}
	for route, rs := range m.routes {
		snap.Requests[route] = routeExport{routeStats: *rs, Latency: exportLatency(&rs.lat)}
	}
	for key, cs := range m.codecOps {
		codec, op := splitKey(key)
		exp := codecExport{codecStats: *cs, Latency: exportLatency(&cs.lat)}
		// original/compressed regardless of direction: compress and auto
		// shrink in->out, decompress expands in->out.
		switch {
		case (op == "compress" || op == "auto") && cs.BytesOut > 0:
			exp.Ratio = float64(cs.BytesIn) / float64(cs.BytesOut)
		case op == "decompress" && cs.BytesIn > 0:
			exp.Ratio = float64(cs.BytesOut) / float64(cs.BytesIn)
		}
		if snap.Codecs[codec] == nil {
			snap.Codecs[codec] = map[string]codecExport{}
		}
		snap.Codecs[codec][op] = exp
	}
	return snap
}

func splitKey(key string) (codec, op string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}

// handleMetrics serves the counter registry as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.metrics.snapshot()
	snap.Engine.TracesCaptured = s.tracer.Len()
	advStats := s.advisor.Stats()
	snap.Advisor = &advStats
	if s.chunkCache != nil {
		cc := s.chunkCache.Snapshot()
		snap.ChunkCache = &cc
	}
	storeStats := s.store.snapshot()
	snap.ObjectStore = &storeStats
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

// healthzResponse is the GET /healthz body.
type healthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Inflight      int64   `json:"inflight"`
	Codecs        int     `json:"codecs"`
}

// handleHealthz answers liveness probes. It bypasses admission so a
// saturated server still reports alive (saturation is visible separately
// via inflight and rejected_429). Liveness never flips during drain —
// restarting a draining process would only lose the in-flight work.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Inflight:      s.metrics.inflight.Load(),
		Codecs:        len(s.names),
	})
}

// handleReadyz answers readiness probes: 200 while the server should
// receive new traffic, 503 before the listener is warmed up and again once
// a drain begins (see SetReady). Routers act on /readyz; supervisors act
// on /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status, state := http.StatusOK, "ready"
	if !s.ready.Load() {
		status, state = http.StatusServiceUnavailable, "unready"
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Status   string `json:"status"`
		Inflight int64  `json:"inflight"`
	}{Status: state, Inflight: s.metrics.inflight.Load()})
}
