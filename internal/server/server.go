// Package server implements positd's HTTP surface: a long-lived
// compression/conversion service over the codec registry. Six endpoints
// expose what the paper reproduction built —
//
//	POST /v1/compress/{codec}  stream a body into a framed chunked stream
//	POST /v1/compress/auto     same, with the codec chosen per stream by
//	                           the advisor (?hint= constrains candidates)
//	POST /v1/decompress        invert it, auto-detecting the codec from the
//	                           container frame header
//	POST /v1/convert           float32 <-> posit<n,es> batch conversion
//	POST /v1/analyze           IEEE field / posit-roundtrip statistics
//	GET  /v1/codecs            the registry inventory
//
// plus GET /healthz and GET /metrics for operations. The serving posture
// treats every request as untrusted and every resource as bounded: a hard
// body cap is enforced before any allocation, decode limits ride on every
// chunk, a bounded admission semaphore sheds load with 429 + Retry-After,
// request deadlines cancel in-flight worker pools through context, and the
// decode error taxonomy maps onto HTTP statuses (corruption -> 400, limit
// trips -> 413) so clients can triage without parsing messages.
package server

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"positbench/internal/advisor"
	"positbench/internal/chunkcache"
	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/container"
	"positbench/internal/lc"
	"positbench/internal/trace"
)

// Config tunes a Server. The zero value selects production defaults.
type Config struct {
	// Codecs is the registry to serve; nil selects all.Codecs().
	Codecs []compress.Codec
	// MaxBodyBytes caps every request body, enforced from Content-Length
	// before any read and by a bounding reader for chunked uploads.
	// 0 selects DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxOutputBytes caps the decoded size of any single chunk
	// (compress.DecodeLimits.MaxOutputBytes). 0 selects the compress
	// package default. Clients may lower (never raise) it per request
	// with ?max_out=N.
	MaxOutputBytes int64
	// MaxInflight bounds concurrently served API requests; excess load is
	// shed with 429 + Retry-After. 0 selects DefaultMaxInflight.
	MaxInflight int
	// RequestTimeout bounds each API request end to end; expiry cancels
	// the request context (stopping worker pools) and the connection's
	// read deadline. 0 selects DefaultRequestTimeout; negative disables.
	RequestTimeout time.Duration
	// ChunkSize is the streaming chunk granularity. 0 selects
	// compress.DefaultChunkSize. Clients may shrink it with ?chunk=N.
	ChunkSize int
	// Workers bounds each request's compression worker pool. 0 selects
	// GOMAXPROCS. Clients may lower it with ?workers=N.
	Workers int
	// AccessLog receives one JSON line per request. Nil selects
	// os.Stderr; use io.Discard to silence.
	AccessLog io.Writer
	// TraceCapacity sizes the ring buffer of recent request traces served
	// by DebugTracesHandler. 0 selects trace.DefaultCapacity; negative
	// disables tracing entirely (request spans are never created, leaving
	// only a nil-check per pipeline stage).
	TraceCapacity int
	// Advisor tunes POST /v1/compress/auto's codec advisor. The zero value
	// selects the advisor defaults with the server's own registry as the
	// candidate set.
	Advisor advisor.Config
	// MaxStoreBytes bounds the object tier (PUT /v1/objects/{key}); past it
	// uploads are refused with 507. 0 selects DefaultMaxStoreBytes.
	MaxStoreBytes int64
	// ChunkCacheBytes bounds the content-addressed decoded-chunk cache
	// behind GET /v1/read/{key}. 0 selects DefaultChunkCacheBytes;
	// negative disables caching (every read decodes).
	ChunkCacheBytes int64
}

// Defaults for the zero Config.
const (
	DefaultMaxBodyBytes    = int64(1) << 30 // 1 GiB
	DefaultMaxInflight     = 64
	DefaultRequestTimeout  = 5 * time.Minute
	DefaultMaxStoreBytes   = int64(256) << 20 // 256 MiB object tier
	DefaultChunkCacheBytes = int64(64) << 20  // 64 MiB decoded-chunk cache
)

// Server is the positd request handler. Create with New, mount via
// Handler.
type Server struct {
	cfg     Config
	codecs  map[string]compress.Codec
	names   []string // registry order, for /v1/codecs
	sem     chan struct{}
	metrics *metrics
	access  *accessLogger
	tracer  *trace.Tracer // nil when tracing is disabled
	advisor *advisor.Advisor
	ready   atomic.Bool // GET /readyz verdict; see SetReady

	store      *objectStore      // PUT /v1/objects tier
	chunkCache *chunkcache.Cache // nil when caching is disabled
}

// New validates cfg, fills defaults, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Codecs == nil {
		cfg.Codecs = all.Codecs()
	}
	if len(cfg.Codecs) == 0 {
		return nil, fmt.Errorf("server: empty codec registry")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = compress.DefaultChunkSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.AccessLog == nil {
		cfg.AccessLog = os.Stderr
	}
	if cfg.MaxStoreBytes <= 0 {
		cfg.MaxStoreBytes = DefaultMaxStoreBytes
	}
	if cfg.ChunkCacheBytes == 0 {
		cfg.ChunkCacheBytes = DefaultChunkCacheBytes
	}
	s := &Server{
		cfg:     cfg,
		codecs:  make(map[string]compress.Codec, len(cfg.Codecs)),
		sem:     make(chan struct{}, cfg.MaxInflight),
		metrics: newMetrics(),
		access:  &accessLogger{dst: cfg.AccessLog},
		store:   newObjectStore(cfg.MaxStoreBytes),
	}
	if cfg.ChunkCacheBytes > 0 {
		s.chunkCache = chunkcache.New(cfg.ChunkCacheBytes)
	}
	if cfg.TraceCapacity >= 0 {
		s.tracer = trace.New(cfg.TraceCapacity)
	}
	for _, c := range cfg.Codecs {
		if _, dup := s.codecs[c.Name()]; dup {
			return nil, fmt.Errorf("server: duplicate codec %q", c.Name())
		}
		s.codecs[c.Name()] = c
		s.names = append(s.names, c.Name())
	}
	if cfg.Advisor.Codecs == nil {
		cfg.Advisor.Codecs = cfg.Codecs
	}
	adv, err := advisor.New(cfg.Advisor)
	if err != nil {
		return nil, fmt.Errorf("server: advisor: %w", err)
	}
	s.advisor = adv
	if _, have := s.codecs["lc"]; !have && adv.Eligible("lc") {
		// Auto mode can elect an LC pipeline, so the registry needs an "lc"
		// entry for /v1/decompress (and direct /v1/compress/lc). LC streams
		// are self-describing — any instance decodes any pipeline — so one
		// default-pipeline codec serves the whole family.
		pipe, err := lc.NewPipeline(strings.Split(advisor.DefaultLCPipelines()[0], "|")...)
		if err != nil {
			return nil, fmt.Errorf("server: lc registry entry: %w", err)
		}
		lcCodec := container.Wrap(lc.NewCodec(pipe))
		s.codecs["lc"] = lcCodec
		s.names = append(s.names, "lc")
	}
	s.ready.Store(true)
	return s, nil
}

// SetReady flips the GET /readyz verdict. Liveness (/healthz) and
// readiness (/readyz) are deliberately split: a process is alive from New
// until exit, but only ready while it should receive new traffic. The
// daemon turns readiness off before the listener is accepting and again at
// the start of a drain, so load balancers and the positgw health checker
// stop routing to it before the listener actually closes.
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// Handler returns the fully middleware-wrapped route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	api := func(route string, h http.HandlerFunc) http.Handler {
		// Innermost to outermost: deadline, admission, tracing, then the
		// accounting/log/recovery shell shared with the ops routes. The
		// root span sits outside admission so shed requests still leave a
		// (tiny) trace, and inside the shell so the request ID exists.
		return s.shell(route, s.traced(route, s.admit(s.deadline(h))))
	}
	mux.Handle("POST /v1/compress/auto", api("auto", s.handleAuto))
	mux.Handle("POST /v1/compress/{codec}", api("compress", s.handleCompress))
	mux.Handle("POST /v1/decompress", api("decompress", s.handleDecompress))
	mux.Handle("POST /v1/convert", api("convert", s.handleConvert))
	mux.Handle("POST /v1/analyze", api("analyze", s.handleAnalyze))
	mux.Handle("PUT /v1/objects/{key}", api("put_object", s.handlePutObject))
	mux.Handle("GET /v1/objects/{key}", s.shell("stat_object", http.HandlerFunc(s.handleStatObject)))
	mux.Handle("GET /v1/read/{key}", api("read", s.handleRead))
	mux.Handle("GET /v1/codecs", s.shell("codecs", http.HandlerFunc(s.handleCodecs)))
	// Ops endpoints bypass admission and deadlines: a saturated or
	// draining server must still answer its probes.
	mux.Handle("GET /healthz", s.shell("healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("GET /readyz", s.shell("readyz", http.HandlerFunc(s.handleReadyz)))
	mux.Handle("GET /metrics", s.shell("metrics", http.HandlerFunc(s.handleMetrics)))
	return mux
}

// codec resolves a registry codec by name.
func (s *Server) codec(name string) (compress.Codec, bool) {
	c, ok := s.codecs[name]
	return c, ok
}
