package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// Liveness and readiness are separate verdicts: /healthz stays 200 across
// SetReady flips, /readyz follows them. positgw's health checker and any
// balancer key off /readyz; supervisors key off /healthz.
func TestReadyzFollowsSetReady(t *testing.T) {
	s, ts := newTestServer(t, Config{AccessLog: io.Discard})

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		return resp.StatusCode, doc
	}

	if code, doc := get("/readyz"); code != http.StatusOK || doc["status"] != "ready" {
		t.Fatalf("fresh server readyz = %d %v, want 200 ready", code, doc)
	}

	s.SetReady(false)
	if code, doc := get("/readyz"); code != http.StatusServiceUnavailable || doc["status"] != "unready" {
		t.Fatalf("unready readyz = %d %v, want 503 unready", code, doc)
	}
	// The liveness verdict must not follow the readiness flip.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while unready = %d, want 200", code)
	}
	// The API keeps serving while unready: drain means "no NEW traffic",
	// and routers enforce that — the server itself still answers.
	resp, err := http.Get(ts.URL + "/v1/codecs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("codecs while unready = %d, want 200", resp.StatusCode)
	}

	s.SetReady(true)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after re-ready = %d, want 200", code)
	}
}
