package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"positbench/internal/compress"
	"positbench/internal/container"
	"positbench/internal/trace"
)

// The object tier: positd can hold named compressed objects and serve
// random-access reads out of them. PUT /v1/objects/{key} ingests a
// compressed stream (or a bare container frame), validates its index
// trailer once, and pins the parsed index next to the bytes;
// GET /v1/read/{key} then maps an HTTP Range (or explicit ?off=&len=)
// onto the minimal chunk set, decodes only those chunks through the
// shared content-addressed cache, and answers 206/416/200 with the
// standard semantics. A v1 object (no trailer) stays readable — range
// requests on it fall back to a full 200 sequential decode, never an
// error.

// maxObjectKeyLen bounds object key length; the charset is the URL-safe
// subset validated by validObjectKey.
const maxObjectKeyLen = 128

// validObjectKey accepts [a-zA-Z0-9._-]{1,128}: path-safe, log-safe,
// header-safe.
func validObjectKey(key string) bool {
	if key == "" || len(key) > maxObjectKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// storedObject is one ingested object: the compressed bytes exactly as
// uploaded, plus everything validated once at PUT time so reads never
// re-parse.
type storedObject struct {
	key   string
	data  []byte
	codec string
	bare  bool             // a single container frame, not a chunked stream
	index *container.Index // non-nil only for indexed (v2) streams
}

// rawLen returns the decoded size when the index declares it, else -1.
func (o *storedObject) rawLen() int64 {
	if o.index != nil {
		return o.index.RawLen
	}
	return -1
}

// objectStore is the bounded in-memory object tier. Overwrites of an
// existing key are allowed and re-accounted; past the byte budget a PUT
// is refused with 507 rather than evicting — objects are explicit state,
// not cache.
type objectStore struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	objs  map[string]*storedObject

	puts         atomic.Int64
	putRejected  atomic.Int64
	reads        atomic.Int64 // GET /v1/read answered 2xx
	rangeReads   atomic.Int64 // of those, 206 partials
	fullReads    atomic.Int64 // of those, 200 whole-object
	fallbackSeq  atomic.Int64 // reads served by sequential fallback (no trailer)
	unsatisfied  atomic.Int64 // 416s
	bytesServed  atomic.Int64 // decoded bytes handed to read clients
	bytesFetched atomic.Int64 // compressed bytes range reads touched
}

func newObjectStore(maxBytes int64) *objectStore {
	return &objectStore{max: maxBytes, objs: make(map[string]*storedObject)}
}

// put inserts or replaces an object, enforcing the byte budget.
func (st *objectStore) put(obj *storedObject) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	next := st.bytes + int64(len(obj.data))
	if prev, ok := st.objs[obj.key]; ok {
		next -= int64(len(prev.data))
	}
	if next > st.max {
		st.putRejected.Add(1)
		return fmt.Errorf("store full: %d bytes resident + %d incoming exceeds the %d budget",
			st.bytes, len(obj.data), st.max)
	}
	st.objs[obj.key] = obj
	st.bytes = next
	st.puts.Add(1)
	return nil
}

func (st *objectStore) get(key string) (*storedObject, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	obj, ok := st.objs[key]
	return obj, ok
}

// objectStoreStats is the /metrics object_store section.
type objectStoreStats struct {
	Objects         int64 `json:"objects"`
	Bytes           int64 `json:"bytes_resident"`
	MaxBytes        int64 `json:"max_bytes"`
	Puts            int64 `json:"puts"`
	PutRejected     int64 `json:"put_rejected_507"`
	Reads           int64 `json:"reads"`
	RangeReads      int64 `json:"range_reads_206"`
	FullReads       int64 `json:"full_reads_200"`
	SequentialReads int64 `json:"sequential_fallback_reads"`
	Unsatisfiable   int64 `json:"unsatisfiable_416"`
	BytesServed     int64 `json:"bytes_served"`
	BytesFetched    int64 `json:"compressed_bytes_fetched"`
}

func (st *objectStore) snapshot() objectStoreStats {
	st.mu.Lock()
	objects, bytes := int64(len(st.objs)), st.bytes
	st.mu.Unlock()
	return objectStoreStats{
		Objects:         objects,
		Bytes:           bytes,
		MaxBytes:        st.max,
		Puts:            st.puts.Load(),
		PutRejected:     st.putRejected.Load(),
		Reads:           st.reads.Load(),
		RangeReads:      st.rangeReads.Load(),
		FullReads:       st.fullReads.Load(),
		SequentialReads: st.fallbackSeq.Load(),
		Unsatisfiable:   st.unsatisfied.Load(),
		BytesServed:     st.bytesServed.Load(),
		BytesFetched:    st.bytesFetched.Load(),
	}
}

// objectMeta is the JSON document PUT returns (201) and GET
// /v1/objects/{key} serves: what one validated ingest learned.
type objectMeta struct {
	Key        string `json:"key"`
	Bytes      int64  `json:"bytes"`
	Codec      string `json:"codec"`
	Indexed    bool   `json:"indexed"`
	Bare       bool   `json:"bare_frame,omitempty"`
	Chunks     int    `json:"chunks,omitempty"`
	RawLen     int64  `json:"raw_len,omitempty"`
	TrailerLen int64  `json:"trailer_len,omitempty"`
}

func metaFor(obj *storedObject) objectMeta {
	m := objectMeta{
		Key:     obj.key,
		Bytes:   int64(len(obj.data)),
		Codec:   obj.codec,
		Indexed: obj.index != nil,
		Bare:    obj.bare,
	}
	if obj.index != nil {
		m.Chunks = len(obj.index.Chunks)
		m.RawLen = obj.index.RawLen
		m.TrailerLen = obj.index.TrailerLen
	}
	return m
}

// handlePutObject ingests one compressed object. The trailer is parsed
// and fully validated here, once: a corrupt index is rejected at the door
// (400) instead of haunting every future read, and a trailer-less v1
// stream is accepted with the sequential-fallback flag pinned in its
// metadata.
func (s *Server) handlePutObject(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validObjectKey(key) {
		writeErrorStatus(w, http.StatusBadRequest, "bad_key",
			fmt.Sprintf("object key %q: want 1-%d chars of [a-zA-Z0-9._-]", key, maxObjectKeyLen))
		return
	}
	if err := s.checkContentLength(r); err != nil {
		writeError(w, err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, err)
		return
	}
	if len(data) == 0 {
		writeErrorStatus(w, http.StatusBadRequest, "empty_object", "refusing to store an empty object")
		return
	}

	name, bare, err := sniffCodec(bufio.NewReader(bytes.NewReader(data)))
	if err != nil {
		writeError(w, err)
		return
	}
	if _, ok := s.codec(name); !ok {
		writeErrorStatus(w, http.StatusBadRequest, "unknown_codec",
			fmt.Sprintf("object names codec %q, registry has %v", name, s.names))
		return
	}
	obj := &storedObject{key: key, data: data, codec: name, bare: bare}
	if !bare {
		ix, err := container.ParseTrailer(bytes.NewReader(data), int64(len(data)))
		switch {
		case err == nil:
			obj.index = ix
		case errors.Is(err, container.ErrNoTrailer):
			// A v1 stream: store it, reads fall back to sequential decode.
		default:
			// A trailer is present but lies; reject now, while the client
			// can still tell which upload was bad.
			writeError(w, err)
			return
		}
	}
	if err := s.store.put(obj); err != nil {
		writeErrorStatus(w, http.StatusInsufficientStorage, "store_full", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(metaFor(obj))
}

// handleStatObject serves the stored metadata for one object.
func (s *Server) handleStatObject(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.store.get(r.PathValue("key"))
	if !ok {
		writeErrorStatus(w, http.StatusNotFound, "unknown_object",
			fmt.Sprintf("no object %q", r.PathValue("key")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if obj.index != nil {
		w.Header().Set("Accept-Ranges", "bytes")
	}
	json.NewEncoder(w).Encode(metaFor(obj))
}

// readWindow is one resolved byte window over an object's decoded space.
type readWindow struct {
	off    int64
	length int64 // -1 means "to end"
	ranged bool  // a range was requested (header or params)
}

// resolveWindow interprets ?off=&len= (which take precedence) or a Range
// header. Returns the window, or an unsatisfiable marker (ok=false), or a
// client error.
func resolveWindow(r *http.Request, size int64) (win readWindow, ok bool, err error) {
	q := r.URL.Query()
	if q.Get("off") != "" || q.Get("len") != "" {
		off, perr := intParam(r, "off", 0)
		if perr != nil {
			return win, false, fmt.Errorf("query parameter \"off\": %w", perr)
		}
		length, perr := intParam(r, "len", -1)
		if perr != nil {
			return win, false, fmt.Errorf("query parameter \"len\": %w", perr)
		}
		if off < 0 {
			return win, false, fmt.Errorf("query parameter \"off\": negative offset %d", off)
		}
		if q.Get("len") != "" && length <= 0 {
			return win, false, fmt.Errorf("query parameter \"len\": want a positive length, got %d", length)
		}
		if off >= size {
			return win, false, nil // unsatisfiable
		}
		return readWindow{off: off, length: length, ranged: true}, true, nil
	}
	return resolveRangeHeader(r.Header.Get("Range"), size)
}

// resolveRangeHeader parses a single-range `bytes=` header (RFC 9110
// §14.1.2: a-b, a-, -n). Malformed or multi-range headers are ignored —
// the RFC lets a server serve the whole representation — so only a
// well-formed range that misses the object entirely is unsatisfiable.
func resolveRangeHeader(hdr string, size int64) (win readWindow, ok bool, err error) {
	spec, found := strings.CutPrefix(hdr, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return readWindow{length: -1}, true, nil
	}
	lo, hi, found := strings.Cut(strings.TrimSpace(spec), "-")
	if !found {
		return readWindow{length: -1}, true, nil
	}
	if lo == "" { // suffix form: last n bytes
		n, perr := strconv.ParseInt(hi, 10, 64)
		if perr != nil || n < 0 {
			return readWindow{length: -1}, true, nil
		}
		if n == 0 {
			return win, false, nil // "bytes=-0" names no byte
		}
		off := size - n
		if off < 0 {
			off = 0
		}
		return readWindow{off: off, length: -1, ranged: true}, true, nil
	}
	start, perr := strconv.ParseInt(lo, 10, 64)
	if perr != nil || start < 0 {
		return readWindow{length: -1}, true, nil
	}
	if start >= size {
		return win, false, nil
	}
	if hi == "" {
		return readWindow{off: start, length: -1, ranged: true}, true, nil
	}
	end, perr := strconv.ParseInt(hi, 10, 64)
	if perr != nil || end < start {
		return readWindow{length: -1}, true, nil
	}
	return readWindow{off: start, length: end - start + 1, ranged: true}, true, nil
}

// handleRead serves decoded bytes out of a stored object. Indexed objects
// honor Range/?off=&len= with 206/416 semantics and decode only the
// overlapping chunks through the shared chunk cache; objects without an
// index answer every read with a full 200 sequential decode.
func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.store.get(r.PathValue("key"))
	if !ok {
		writeErrorStatus(w, http.StatusNotFound, "unknown_object",
			fmt.Sprintf("no object %q", r.PathValue("key")))
		return
	}
	codec, ok := s.codec(obj.codec)
	if !ok {
		writeErrorStatus(w, http.StatusBadRequest, "unknown_codec",
			fmt.Sprintf("object was stored with codec %q, registry has %v", obj.codec, s.names))
		return
	}
	lim, err := s.requestLimits(r)
	if err != nil {
		badParam(w, "max_out", err)
		return
	}
	workers, err := s.requestWorkers(r)
	if err != nil {
		badParam(w, "workers", err)
		return
	}
	cw := w.(*countingWriter)
	start := time.Now()

	if obj.index == nil {
		s.readSequential(cw, r, obj, codec, lim, workers, start)
		return
	}

	win, satisfiable, err := resolveWindow(r, obj.index.RawLen)
	if err != nil {
		writeErrorStatus(w, http.StatusBadRequest, "bad_param", err.Error())
		return
	}
	if !satisfiable {
		s.store.unsatisfied.Add(1)
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", obj.index.RawLen))
		writeErrorStatus(w, http.StatusRequestedRangeNotSatisfiable, "unsatisfiable_range",
			fmt.Sprintf("requested window misses the %d-byte object", obj.index.RawLen))
		return
	}

	ra := container.NewReaderAtIndex(bytes.NewReader(obj.data), obj.index, codec, container.ReaderAtOptions{
		Limits:  lim,
		Workers: workers,
		Cache:   s.chunkCache,
	})
	rr, err := ra.Range(win.off, win.length)
	if err != nil {
		writeError(w, err)
		return
	}
	// The window end after clamping, mirroring what Range() resolved.
	last := obj.index.RawLen
	if win.length >= 0 && win.off+win.length < last {
		last = win.off + win.length
	}

	sp := trace.FromContext(r.Context()).Child("range-read")
	sp.Annotate("key", obj.key)
	sp.Annotate("off", strconv.FormatInt(win.off, 10))
	sp.Annotate("len", strconv.FormatInt(last-win.off, 10))

	w.Header().Set("Content-Type", contentTypeBinary)
	w.Header().Set("X-Positd-Codec", obj.codec)
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Length", strconv.FormatInt(last-win.off, 10))
	if win.ranged {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", win.off, last-1, obj.index.RawLen))
		w.WriteHeader(http.StatusPartialContent)
	}
	n, err := io.Copy(w, rr)
	sp.Annotate("chunks", strconv.Itoa(rr.Chunks()))
	sp.Annotate("cache_hits", strconv.Itoa(rr.CacheHits()))
	sp.SetBytes(rr.CompBytes(), n)
	sp.End()
	if err != nil {
		s.abortStream(cw, r, err)
		return
	}
	s.store.reads.Add(1)
	if win.ranged {
		s.store.rangeReads.Add(1)
	} else {
		s.store.fullReads.Add(1)
	}
	s.store.bytesServed.Add(n)
	s.store.bytesFetched.Add(rr.CompBytes())
	s.metrics.recordCodec(obj.codec, "read", time.Since(start), rr.CompBytes(), n)
}

// readSequential is the fallback for objects without an index trailer:
// every read — ranged or not — decodes the whole object front to back and
// answers 200, the pinned v1 contract.
func (s *Server) readSequential(cw *countingWriter, r *http.Request, obj *storedObject, codec compress.Codec, lim compress.DecodeLimits, workers int, start time.Time) {
	sp := trace.FromContext(r.Context()).Child("range-read")
	sp.Annotate("key", obj.key)
	sp.Annotate("fallback", "sequential")
	defer sp.End()

	cw.Header().Set("Content-Type", contentTypeBinary)
	cw.Header().Set("X-Positd-Codec", obj.codec)
	var n int64
	var err error
	if obj.bare {
		out, derr := compress.DecompressLimits(codec, obj.data, lim)
		if derr != nil {
			writeError(cw, derr)
			return
		}
		wn, werr := cw.Write(out)
		n, err = int64(wn), werr
	} else {
		pr := compress.NewParallelReaderContext(r.Context(), codec, bytes.NewReader(obj.data), lim, workers)
		defer pr.Close()
		n, err = io.Copy(cw, pr)
	}
	sp.SetBytes(int64(len(obj.data)), n)
	if err != nil {
		s.abortStream(cw, r, err)
		return
	}
	s.store.reads.Add(1)
	s.store.fullReads.Add(1)
	s.store.fallbackSeq.Add(1)
	s.store.bytesServed.Add(n)
	s.metrics.recordCodec(obj.codec, "read", time.Since(start), int64(len(obj.data)), n)
}
