package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"positbench/internal/advisor"
	"positbench/internal/trace"
)

// TestAutoRoundtrip drives the full auto path: the advisor picks a codec
// from the stream head, the whole body (larger than the sample budget, so
// the prefix-replay path is exercised) streams through it, and
// /v1/decompress inverts the result via the container's codec sniff.
func TestAutoRoundtrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	orig := sampleF32(64 << 10) // 256 KiB, 4x the default sample budget

	resp, comp := postBytes(t, ts.URL+"/v1/compress/auto?chunk=8192", orig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto status = %d: %s", resp.StatusCode, comp)
	}
	chosen := resp.Header.Get("X-Positd-Codec")
	if chosen == "" || chosen == "auto" {
		t.Fatalf("X-Positd-Codec = %q, want a concrete codec", chosen)
	}
	if src := resp.Header.Get(headerAutoSource); src != advisor.SourceTrial {
		t.Fatalf("first auto request source = %q, want %q", src, advisor.SourceTrial)
	}
	if resp.Header.Get(headerAutoFallback) != "" {
		t.Fatal("healthy float data must not fall back")
	}
	if resp.Header.Get(headerAutoConfidence) == "" {
		t.Fatal("missing confidence header")
	}

	resp2, out := postBytes(t, ts.URL+"/v1/decompress", comp)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("decompress status = %d: %s", resp2.StatusCode, out)
	}
	if got := resp2.Header.Get("X-Positd-Codec"); got != chosen {
		t.Fatalf("decompress sniffed %q, auto chose %q", got, chosen)
	}
	if !bytes.Equal(out, orig) {
		t.Fatalf("auto roundtrip mismatch: %d bytes in, %d out", len(orig), len(out))
	}

	// An identical body is an identical sample: the second request must be
	// served from the decision cache and choose the same codec.
	resp3, _ := postBytes(t, ts.URL+"/v1/compress/auto?chunk=8192", orig)
	if src := resp3.Header.Get(headerAutoSource); src != advisor.SourceCache {
		t.Fatalf("second auto request source = %q, want %q", src, advisor.SourceCache)
	}
	if got := resp3.Header.Get("X-Positd-Codec"); got != chosen {
		t.Fatalf("cached decision chose %q, first chose %q", got, chosen)
	}
}

// TestAutoMetrics checks the /metrics surface: auto operations are
// accounted under the chosen codec's "auto" op (never "compress"), and the
// advisor section exports decisions and the cache hit rate.
func TestAutoMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	orig := sampleF32(4096)
	var chosen string
	for i := 0; i < 3; i++ {
		resp, body := postBytes(t, ts.URL+"/v1/compress/auto", orig)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("auto status = %d: %s", resp.StatusCode, body)
		}
		chosen = resp.Header.Get("X-Positd-Codec")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap metricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Advisor == nil {
		t.Fatal("/metrics has no advisor section")
	}
	if snap.Advisor.Decisions != 3 || snap.Advisor.CacheHits != 2 || snap.Advisor.CacheMisses != 1 {
		t.Fatalf("advisor stats = %+v, want 3 decisions / 2 hits / 1 miss", snap.Advisor)
	}
	if want := 100 * 2.0 / 3.0; snap.Advisor.HitRatePct < want-0.01 || snap.Advisor.HitRatePct > want+0.01 {
		t.Fatalf("hit rate %.2f, want %.2f", snap.Advisor.HitRatePct, want)
	}
	if snap.Advisor.Chosen[chosen] != 3 {
		t.Fatalf("chosen[%s] = %d, want 3", chosen, snap.Advisor.Chosen[chosen])
	}
	auto := snap.Codecs[chosen]["auto"]
	if auto.Ops != 3 || auto.BytesIn != int64(3*len(orig)) {
		t.Fatalf("codecs.%s.auto = %+v, want 3 ops / %d bytes in", chosen, auto, 3*len(orig))
	}
	if auto.Ratio <= 1 {
		t.Fatalf("auto ratio %.3f, want > 1", auto.Ratio)
	}
	if _, hasCompress := snap.Codecs[chosen]["compress"]; hasCompress {
		t.Fatal("auto requests must not pollute the direct-compress op")
	}
}

// TestAutoHints covers ?hint= constraint and rejection.
func TestAutoHints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	orig := sampleF32(2048)

	resp, comp := postBytes(t, ts.URL+"/v1/compress/auto?hint=gzip", orig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hinted auto status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Positd-Codec"); got != "gzip" {
		t.Fatalf("hint=gzip chose %q", got)
	}
	if resp2, out := postBytes(t, ts.URL+"/v1/decompress", comp); resp2.StatusCode != http.StatusOK || !bytes.Equal(out, orig) {
		t.Fatalf("hinted roundtrip failed: status %d", resp2.StatusCode)
	}

	// Comma-separated and repeated hints both parse.
	resp3, _ := postBytes(t, ts.URL+"/v1/compress/auto?hint=gzip,zstd&hint=lz4", orig)
	switch resp3.Header.Get("X-Positd-Codec") {
	case "gzip", "zstd", "lz4":
	default:
		t.Fatalf("constrained choice %q outside hint set", resp3.Header.Get("X-Positd-Codec"))
	}

	resp4, body := postBytes(t, ts.URL+"/v1/compress/auto?hint=nope", orig)
	wantAPIError(t, resp4, body, http.StatusBadRequest, "bad_param")
}

// TestAutoLCPipeline forces the LC candidate and verifies the decided
// pipeline travels in the response header and the stream decompresses
// through the registry's self-describing "lc" entry.
func TestAutoLCPipeline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	orig := sampleF32(8192)

	resp, comp := postBytes(t, ts.URL+"/v1/compress/auto?hint=lc", orig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lc auto status = %d: %s", resp.StatusCode, comp)
	}
	if got := resp.Header.Get("X-Positd-Codec"); got != "lc" {
		t.Fatalf("hint=lc chose %q", got)
	}
	if resp.Header.Get(headerAutoPipeline) == "" {
		t.Fatal("lc decision must name its pipeline")
	}
	resp2, out := postBytes(t, ts.URL+"/v1/decompress", comp)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("lc decompress status = %d: %s", resp2.StatusCode, out)
	}
	if !bytes.Equal(out, orig) {
		t.Fatal("lc auto roundtrip mismatch")
	}
}

// TestAutoEmptyBody: nothing to sample degrades to the default codec with
// the fallback marker, and still produces a valid (empty) stream.
func TestAutoEmptyBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, comp := postBytes(t, ts.URL+"/v1/compress/auto", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty auto status = %d", resp.StatusCode)
	}
	if resp.Header.Get(headerAutoFallback) != "true" {
		t.Fatal("empty body should be a fallback decision")
	}
	if got := resp.Header.Get("X-Positd-Codec"); got != advisor.DefaultCodecName {
		t.Fatalf("fallback codec %q, want %q", got, advisor.DefaultCodecName)
	}
	// The stream is just the terminator; decompress yields no bytes but
	// must not error.
	resp2, out := postBytes(t, ts.URL+"/v1/decompress", comp)
	if resp2.StatusCode == http.StatusOK && len(out) != 0 {
		t.Fatalf("empty roundtrip returned %d bytes", len(out))
	}
}

// TestAutoDecisionTraced asserts the advise span subtree lands in the
// debug trace ring with its stages and decision annotations.
func TestAutoDecisionTraced(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if resp, body := postBytes(t, ts.URL+"/v1/compress/auto", sampleF32(2048)); resp.StatusCode != http.StatusOK {
		t.Fatalf("auto status = %d: %s", resp.StatusCode, body)
	}

	dts := httptest.NewServer(s.DebugTracesHandler())
	defer dts.Close()
	resp, err := http.Get(dts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Traces []*trace.Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	var advise *trace.SpanData
	for _, tr := range doc.Traces {
		if tr.Root.Name != "auto" {
			continue
		}
		for _, c := range tr.Root.Children {
			if c.Name == "advise" {
				advise = c
			}
		}
	}
	if advise == nil {
		t.Fatal("no advise span in /debug/traces")
	}
	var stages int
	for _, c := range advise.Children {
		if c.Name == "fingerprint" || (len(c.Name) > 6 && c.Name[:6] == "trial:") {
			stages++
		}
	}
	if stages < 2 {
		t.Fatalf("advise span has %d decision stages, want fingerprint + trials", stages)
	}
	attrs := map[string]string{}
	for _, a := range advise.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["codec"] == "" || attrs["source"] == "" || attrs["confidence"] == "" {
		t.Fatalf("advise span attrs = %v, want codec/source/confidence", attrs)
	}
}
