package server

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestKeepAliveAfterAbandonedBody pins the fix for a connection-reuse
// panic: a full-duplex handler returning with the request body not read to
// EOF leaves net/http's keep-alive machinery arming its background read
// after the abort handshake already ran, and the connection's next read
// panics with "invalid concurrent Body.Read call". The panic is recovered
// and logged by net/http asynchronously — after the response is on the
// wire — so the requests all "succeed" and only the server log betrays the
// broken connection. Each scenario here abandons a body mid-read on a
// keep-alive connection; the test then waits for the async log line that
// must not appear.
func TestKeepAliveAfterAbandonedBody(t *testing.T) {
	var logBuf bytes.Buffer
	prevOut := log.Writer()
	log.SetOutput(io.MultiWriter(prevOut, &logBuf))
	defer log.SetOutput(prevOut)

	_, ts := newTestServer(t, Config{MaxBodyBytes: 1 << 10})
	big := bytes.Repeat([]byte("x"), 8<<10)

	// Declared length over the cap: rejected before any body read.
	resp, err := http.Post(ts.URL+"/v1/compress/gzip", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Chunked upload tripping the bounding reader mid-stream: the handler
	// aborts with most of the body unread.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/compress/gzip", struct{ io.Reader }{bytes.NewReader(big)})
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Decompress rejecting a stream after a partial sniff, remainder unread
	// (body larger than the sniffing bufio's buffer).
	frame := append([]byte("pBNCH"), bytes.Repeat([]byte("y"), 6<<10)...)
	resp, err = http.Post(ts.URL+"/v1/decompress", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The panic fires on the server's conn goroutine after the response was
	// delivered; give it time to reach the log.
	time.Sleep(200 * time.Millisecond)
	if s := logBuf.String(); strings.Contains(s, "invalid concurrent Body.Read") {
		t.Fatalf("keep-alive connection panicked after an abandoned body:\n%s", s)
	}
}
