package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/container"
	"positbench/internal/posit"
)

// newTestServer builds a Server plus an httptest front end. Access logs are
// discarded unless the config says otherwise.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.AccessLog == nil {
		cfg.AccessLog = io.Discard
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// sampleF32 builds a deterministic float-field body: compressible, non-trivial,
// and valid input for every endpoint including /v1/convert and /v1/analyze.
func sampleF32(n int) []byte {
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i)/37.0)) * float32(1+i%5)
	}
	return posit.EncodeFloat32LE(vals)
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	return postBytes(t, url, []byte(body))
}

func postBytes(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response of POST %s: %v", url, err)
	}
	return resp, out
}

// wantAPIError asserts status and the machine-readable error kind.
func wantAPIError(t *testing.T, resp *http.Response, body []byte, status int, kind string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status = %d (%s), want %d", resp.StatusCode, bytes.TrimSpace(body), status)
	}
	var ae apiError
	if err := json.Unmarshal(body, &ae); err != nil {
		t.Fatalf("error body %q is not JSON: %v", body, err)
	}
	if ae.Kind != kind {
		t.Fatalf("error kind = %q (%s), want %q", ae.Kind, ae.Error, kind)
	}
}

// TestRoundtripEveryCodec is the core acceptance test: a body POSTed through
// /v1/compress/{codec} and back through /v1/decompress must come out
// byte-identical, for every codec in the registry, over a multi-chunk stream.
func TestRoundtripEveryCodec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	orig := sampleF32(8 << 10) // 32 KiB, several 8 KiB chunks
	for _, name := range all.Names() {
		t.Run(name, func(t *testing.T) {
			resp, comp := postBytes(t, ts.URL+"/v1/compress/"+name+"?chunk=8192", orig)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("compress status = %d: %s", resp.StatusCode, comp)
			}
			if got := resp.Header.Get("X-Positd-Codec"); got != name {
				t.Fatalf("X-Positd-Codec = %q, want %q", got, name)
			}
			if resp.Header.Get("Content-Type") != contentTypeStream {
				t.Fatalf("Content-Type = %q", resp.Header.Get("Content-Type"))
			}
			resp2, out := postBytes(t, ts.URL+"/v1/decompress", comp)
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("decompress status = %d: %s", resp2.StatusCode, out)
			}
			if got := resp2.Header.Get("X-Positd-Codec"); got != name {
				t.Fatalf("decompress X-Positd-Codec = %q, want %q", got, name)
			}
			if !bytes.Equal(out, orig) {
				t.Fatalf("roundtrip mismatch: %d bytes in, %d bytes out", len(orig), len(out))
			}
		})
	}
}

// TestDecompressBareFrame feeds /v1/decompress a single container frame (the
// compressbench on-disk format) rather than a chunked stream.
func TestDecompressBareFrame(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	orig := sampleF32(2048)
	for _, c := range all.Codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			frame, err := c.Compress(orig)
			if err != nil {
				t.Fatal(err)
			}
			resp, out := postBytes(t, ts.URL+"/v1/decompress", frame)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d: %s", resp.StatusCode, out)
			}
			if !bytes.Equal(out, orig) {
				t.Fatalf("bare-frame roundtrip mismatch")
			}
		})
	}
}

func TestCompressUnknownCodec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/compress/nope", "data")
	wantAPIError(t, resp, body, http.StatusNotFound, "unknown_codec")
}

func TestCompressBadParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/compress/gzip?workers=abc", "data")
	wantAPIError(t, resp, body, http.StatusBadRequest, "bad_param")
}

// TestOversizedBody covers 413 on both detection paths: a declared
// Content-Length over the cap (rejected before any read) and a chunked upload
// that trips the bounding reader mid-stream.
func TestOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1 << 10})
	big := sampleF32(2 << 10) // 8 KiB > 1 KiB cap

	t.Run("DeclaredLength", func(t *testing.T) {
		resp, body := postBytes(t, ts.URL+"/v1/compress/gzip", big)
		wantAPIError(t, resp, body, http.StatusRequestEntityTooLarge, "body_too_large")
	})

	t.Run("ChunkedUpload", func(t *testing.T) {
		req, err := http.NewRequest("POST", ts.URL+"/v1/compress/gzip", struct{ io.Reader }{bytes.NewReader(big)})
		if err != nil {
			t.Fatal(err)
		}
		// Hiding the reader's length forces chunked transfer encoding, so the
		// server cannot see the size up front.
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		wantAPIError(t, resp, body, http.StatusRequestEntityTooLarge, "body_too_large")
	})

	t.Run("AnalyzeDeclaredLength", func(t *testing.T) {
		resp, body := postBytes(t, ts.URL+"/v1/analyze", big)
		wantAPIError(t, resp, body, http.StatusRequestEntityTooLarge, "body_too_large")
	})
}

// TestDecompressFaultClasses drives each corruption class through the HTTP
// path and asserts the taxonomy-mapped status and kind.
func TestDecompressFaultClasses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	codec, err := all.Get("gzip")
	if err != nil {
		t.Fatal(err)
	}
	orig := sampleF32(2048)
	frame, err := codec.Compress(orig)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("EmptyBody", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/decompress", "")
		wantAPIError(t, resp, body, http.StatusBadRequest, "truncated")
	})

	t.Run("BadMagic", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/decompress", strings.Repeat("X", 64))
		wantAPIError(t, resp, body, http.StatusBadRequest, "bad_magic")
	})

	t.Run("TruncatedHeader", func(t *testing.T) {
		resp, body := postBytes(t, ts.URL+"/v1/decompress", frame[:6])
		wantAPIError(t, resp, body, http.StatusBadRequest, "truncated")
	})

	t.Run("UnsupportedVersion", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		mut[len(container.Magic)] = 0x7F
		resp, body := postBytes(t, ts.URL+"/v1/decompress", mut)
		wantAPIError(t, resp, body, http.StatusBadRequest, "unsupported_version")
	})

	t.Run("CorruptPayload", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		mut[len(mut)-1] ^= 0xFF
		resp, body := postBytes(t, ts.URL+"/v1/decompress", mut)
		wantAPIError(t, resp, body, http.StatusBadRequest, "corrupt")
	})

	t.Run("UnknownStreamCodec", func(t *testing.T) {
		// A well-formed frame naming a codec the registry does not serve.
		payload := []byte("data")
		f := append([]byte(nil), container.Magic[:]...)
		f = append(f, container.Version, byte(len("mystery")))
		f = append(f, "mystery"...)
		f = binary.AppendUvarint(f, uint64(len(payload)))
		f = binary.AppendUvarint(f, uint64(len(payload)))
		f = binary.LittleEndian.AppendUint32(f, container.Checksum(payload))
		f = binary.LittleEndian.AppendUint32(f, container.Checksum(payload))
		f = append(f, payload...)
		resp, body := postBytes(t, ts.URL+"/v1/decompress", f)
		wantAPIError(t, resp, body, http.StatusBadRequest, "unknown_codec")
	})

	t.Run("OutputLimit", func(t *testing.T) {
		resp, body := postBytes(t, ts.URL+"/v1/decompress?max_out=16", frame)
		wantAPIError(t, resp, body, http.StatusRequestEntityTooLarge, "limit_exceeded")
	})
}

// TestSaturationSheds429 fills the admission semaphore with a request whose
// body never finishes, then asserts the next request is shed immediately with
// 429 + Retry-After rather than queued.
func TestSaturationSheds429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		req, err := http.NewRequest("POST", ts.URL+"/v1/compress/gzip", pr)
		if err != nil {
			done <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("blocked request finished with status %d", resp.StatusCode)
			}
		}
		done <- err
	}()

	// Wait until the slow request actually holds the semaphore.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocked request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, ts.URL+"/v1/compress/gzip", "shed me")
	wantAPIError(t, resp, body, http.StatusTooManyRequests, "saturated")
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if got := s.metrics.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	// Ops endpoints bypass admission: the saturated server still answers.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation = %d, want 200", hresp.StatusCode)
	}

	pw.Write(sampleF32(64))
	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("blocked request failed: %v", err)
	}
}

func TestConvertRoundtrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	vals := []float32{0, 1, -1, 0.5, 3.75, -123.25, 1e-3, 6.5e4}
	body := posit.EncodeFloat32LE(vals)

	resp, words := postBytes(t, ts.URL+"/v1/convert?to=posit&n=32&es=3", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("convert status = %d: %s", resp.StatusCode, words)
	}
	if got := resp.Header.Get(headerValues); got != fmt.Sprint(len(vals)) {
		t.Fatalf("%s = %q, want %d", headerValues, got, len(vals))
	}
	if len(words) != 4*len(vals) {
		t.Fatalf("posit body = %d bytes, want %d", len(words), 4*len(vals))
	}

	resp2, back := postBytes(t, ts.URL+"/v1/convert?to=float32&n=32&es=3", words)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("inverse status = %d: %s", resp2.StatusCode, back)
	}
	got, err := posit.DecodeFloat32LE(back)
	if err != nil {
		t.Fatal(err)
	}

	// The HTTP path must agree with the library exactly.
	cfg := posit.Config{N: 32, ES: 3}
	want := cfg.ToFloat32Slice(nil, cfg.FromFloat32Slice(nil, vals))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d: HTTP roundtrip %g, library roundtrip %g", i, got[i], want[i])
		}
	}
}

func TestConvertRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, url, body string
		status          int
		kind            string
	}{
		{"BadTarget", "/v1/convert?to=doubles", "\x00\x00\x00\x00", http.StatusBadRequest, "bad_param"},
		{"BadConfig", "/v1/convert?n=64", "\x00\x00\x00\x00", http.StatusBadRequest, "bad_param"},
		{"Misaligned", "/v1/convert", "abc", http.StatusBadRequest, "misaligned_input"},
		{"Empty", "/v1/convert", "", http.StatusBadRequest, "empty_input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+tc.url, tc.body)
			wantAPIError(t, resp, body, tc.status, tc.kind)
		})
	}
}

func TestAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	vals := []float32{0, 1.5, -2.25, float32(math.Inf(1)), float32(math.NaN()), 1e-40}
	resp, body := postBytes(t, ts.URL+"/v1/analyze", posit.EncodeFloat32LE(vals))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var got analyzeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("analyze body not JSON: %v\n%s", err, body)
	}
	if got.Values != len(vals) {
		t.Fatalf("values = %d, want %d", got.Values, len(vals))
	}
	wantClasses := map[string]int{"zero": 1, "normal": 3, "inf": 1, "nan": 1, "subnormal": 1}
	for class, want := range wantClasses {
		if class == "normal" {
			continue // counted below
		}
		if got.Classes[class] != want {
			t.Fatalf("classes[%s] = %d, want %d (%v)", class, got.Classes[class], want, got.Classes)
		}
	}
	total := 0
	for _, n := range got.Classes {
		total += n
	}
	if total != len(vals) {
		t.Fatalf("class counts sum to %d, want %d", total, len(vals))
	}
	if got.Posit.Config == "" || got.Posit.Exact < 0 {
		t.Fatalf("posit roundtrip block missing: %+v", got.Posit)
	}

	t.Run("Misaligned", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/analyze", "abcde")
		wantAPIError(t, resp, body, http.StatusBadRequest, "misaligned_input")
	})
	t.Run("Empty", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/analyze", "")
		wantAPIError(t, resp, body, http.StatusBadRequest, "empty_input")
	})
}

func TestCodecsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/codecs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []codecsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	// The registry is all.Names() plus the "lc" entry the advisor adds so
	// auto-mode LC streams stay decompressible.
	want := append(all.Names(), "lc")
	if len(got) != len(want) {
		t.Fatalf("got %d codecs, want %d", len(got), len(want))
	}
	for i, entry := range got {
		if entry.Name != want[i] {
			t.Fatalf("codec %d = %q, want %q", i, entry.Name, want[i])
		}
		if !entry.AdvisorEligible {
			t.Fatalf("codec %q not advisor-eligible; default advisor should cover the registry", entry.Name)
		}
	}
	// Capability hints: the frame forwards the inner codec's weight class
	// and stage tracing, so fpc32 must read light+traced while bzip2 is
	// neither.
	byName := map[string]codecsResponse{}
	for _, entry := range got {
		byName[entry.Name] = entry
	}
	if e := byName["fpc32"]; !e.LightDecoder {
		t.Fatalf("fpc32 hints = %+v, want light decoder", e)
	}
	if e := byName["bzip2"]; e.LightDecoder {
		t.Fatalf("bzip2 hints = %+v, want heavy decoder", e)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Generate some traffic first so /metrics has something to show.
	orig := sampleF32(1024)
	resp, comp := postBytes(t, ts.URL+"/v1/compress/gzip", orig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d", resp.StatusCode)
	}
	if resp2, _ := postBytes(t, ts.URL+"/v1/decompress", comp); resp2.StatusCode != http.StatusOK {
		t.Fatalf("decompress status = %d", resp2.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthzResponse
	json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if health.Status != "ok" || health.Codecs != len(all.Names())+1 { // +1: the advisor's "lc" entry
		t.Fatalf("healthz = %+v", health)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snap.Requests["compress"].Total < 1 || snap.Requests["decompress"].Total < 1 {
		t.Fatalf("route counters missing: %+v", snap.Requests)
	}
	gz := snap.Codecs["gzip"]
	if gz["compress"].Ops < 1 || gz["decompress"].Ops < 1 {
		t.Fatalf("codec counters missing: %+v", snap.Codecs)
	}
	if gz["compress"].Ratio <= 1 {
		t.Fatalf("gzip compress ratio = %v, want > 1 on smooth data", gz["compress"].Ratio)
	}
	if gz["compress"].Latency.P99US < gz["compress"].Latency.P50US {
		t.Fatalf("latency quantiles not monotone: %+v", gz["compress"].Latency)
	}
}

func TestAccessLogWritesJSONLines(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{AccessLog: &buf})
	if resp, _ := post(t, ts.URL+"/v1/compress/gzip", "hello"); resp.StatusCode != http.StatusOK {
		t.Fatalf("compress failed")
	}
	line := strings.TrimSpace(buf.String())
	var rec accessRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line %q not JSON: %v", line, err)
	}
	if rec.Route != "compress" || rec.Status != http.StatusOK || rec.Method != "POST" {
		t.Fatalf("access record = %+v", rec)
	}
}

// syncBuffer is a mutex-free stand-in safe here because accessLogger already
// serializes writes; reads happen only after the response returns.
type syncBuffer struct{ bytes.Buffer }

func TestRequestDeadline(t *testing.T) {
	// A client that sends headers and then stalls forever must not pin a
	// worker: the connection read deadline fires, the body read errors, and
	// the stalled request ends with 408 well before any client-side timeout.
	_, ts := newTestServer(t, Config{RequestTimeout: 200 * time.Millisecond})
	pr, pw := io.Pipe()
	// Escape hatch so a regression cannot wedge the whole test binary: the
	// transport's write loop blocks in pr.Read until the pipe dies.
	timer := time.AfterFunc(10*time.Second, func() { pw.CloseWithError(io.ErrClosedPipe) })
	defer timer.Stop()
	defer pw.Close()

	req, err := http.NewRequest("POST", ts.URL+"/v1/compress/gzip", pr)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	elapsed := time.Since(start)
	if err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		wantAPIError(t, resp, body, http.StatusRequestTimeout, "deadline_exceeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("stalled request took %v, server deadline never fired", elapsed)
	}
}

func TestNewRejectsDuplicateCodecs(t *testing.T) {
	cs := all.Codecs()
	if _, err := New(Config{Codecs: []compress.Codec{cs[0], cs[0]}, AccessLog: io.Discard}); err == nil {
		t.Fatal("duplicate codec registry accepted")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/decompress")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST route = %d, want 405", resp.StatusCode)
	}
}
