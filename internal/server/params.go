package server

import "net/http"

// clampedInt64Param is the one shared resolver behind every per-request
// resource knob (?workers=, ?chunk=, ?max_out=). The policy, identical on
// every route: absent, non-positive, or at/above the server's ceiling
// resolves to the configured default (a client can lower a limit, never
// raise it); a value below the floor clamps up to the floor (a hostile
// ?chunk=1 must not explode a body into millions of frames). Only a
// non-integer value is an error.
func clampedInt64Param(r *http.Request, name string, def, floor, ceil int64) (int64, error) {
	v, err := intParam(r, name, 0)
	if err != nil {
		return def, err
	}
	if v <= 0 || v >= ceil {
		return def, nil
	}
	if v < floor {
		return floor, nil
	}
	return v, nil
}
