package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"positbench/internal/trace"
)

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read GET %s: %v", url, err)
	}
	return resp, body
}

func TestRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{AccessLog: &logBuf})

	// A valid inbound ID is propagated.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/compress/gzip", strings.NewReader("hello request id"))
	req.Header.Set("X-Request-ID", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id-42" {
		t.Errorf("echoed X-Request-ID = %q, want client-id-42", got)
	}

	// A hostile inbound ID is replaced with a generated one.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/compress/gzip", strings.NewReader("x"))
	req.Header.Set("X-Request-ID", "bad id with junk")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == "" || strings.Contains(got, " ") {
		t.Errorf("hostile inbound ID not replaced: %q", got)
	}

	// No inbound ID: one is minted.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID minted for bare request")
	}

	// The access log carries the propagated ID.
	if !bytes.Contains(logBuf.Bytes(), []byte(`"request_id":"client-id-42"`)) {
		t.Errorf("access log missing propagated request_id: %s", logBuf.Bytes())
	}
}

func TestValidRequestID(t *testing.T) {
	cases := []struct {
		id string
		ok bool
	}{
		{"abc-123_X.z", true},
		{"550e8400-e29b-41d4-a716-446655440000", true},
		{"", false},
		{strings.Repeat("a", maxRequestIDLen), true},
		{strings.Repeat("a", maxRequestIDLen+1), false},
		{"has space", false},
		{"newline\n", false},
		{"quote\"", false},
	}
	for _, tc := range cases {
		if got := validRequestID(tc.id); got != tc.ok {
			t.Errorf("validRequestID(%q) = %v, want %v", tc.id, got, tc.ok)
		}
	}
}

func TestMetricsEngineSection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postBytes(t, ts.URL+"/v1/compress/gzip", sampleF32(4096))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d", resp.StatusCode)
	}
	_ = body

	mresp, mbody := get(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}
	var snap struct {
		Inflight int64 `json:"inflight"`
		Engine   struct {
			QueueDepth     int64   `json:"queue_depth"`
			WorkersBusy    int64   `json:"workers_busy"`
			Utilization    float64 `json:"worker_utilization"`
			CompressChunks int64   `json:"compress_chunks"`
			TracesCaptured uint64  `json:"traces_captured"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Engine.CompressChunks < 1 {
		t.Error("engine.compress_chunks did not move after a compress request")
	}
	if snap.Engine.QueueDepth != 0 {
		t.Errorf("engine.queue_depth = %d after requests drained, want 0", snap.Engine.QueueDepth)
	}
	if snap.Inflight != 0 {
		t.Errorf("inflight = %d after requests drained, want 0", snap.Inflight)
	}
	if snap.Engine.TracesCaptured < 1 {
		t.Error("engine.traces_captured did not move with tracing enabled")
	}
}

func TestDebugTracesSpanTree(t *testing.T) {
	// The queue-wait stage under each chunk only exists on the scheduler
	// path; on a 1-CPU runner the engine falls back to the serial writer,
	// so force the scheduler (the server resolves workers in-process).
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	s, ts := newTestServer(t, Config{ChunkSize: 8 << 10})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/compress/bzip2?workers=2", bytes.NewReader(sampleF32(8192)))
	req.Header.Set("X-Request-ID", "trace-roundtrip-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d", resp.StatusCode)
	}

	dbg := httptest.NewServer(s.DebugTracesHandler())
	defer dbg.Close()
	dresp, dbody := get(t, dbg.URL)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", dresp.StatusCode)
	}
	var dump struct {
		Capacity int            `json:"capacity"`
		Traces   []*trace.Trace `json:"traces"`
	}
	if err := json.Unmarshal(dbody, &dump); err != nil {
		t.Fatalf("/debug/traces not JSON: %v", err)
	}
	if dump.Capacity != trace.DefaultCapacity {
		t.Errorf("capacity = %d, want %d", dump.Capacity, trace.DefaultCapacity)
	}
	var tr *trace.Trace
	for _, cand := range dump.Traces {
		if cand.ID == "trace-roundtrip-1" {
			tr = cand
		}
	}
	if tr == nil {
		t.Fatalf("trace for request ID not captured (have %d traces)", len(dump.Traces))
	}
	if tr.Root.Name != "compress" {
		t.Errorf("root span name = %q, want compress", tr.Root.Name)
	}
	var chunk *trace.SpanData
	for _, c := range tr.Root.Children {
		if c.Name == "chunk" {
			chunk = c
		}
	}
	if chunk == nil {
		t.Fatal("no chunk span under the request root")
	}
	stages := map[string]*trace.SpanData{}
	for _, c := range chunk.Children {
		stages[c.Name] = c
	}
	for _, want := range []string{"queue-wait", "compress", "frame-write"} {
		if stages[want] == nil {
			t.Errorf("chunk span missing %q stage (have %v)", want, chunkStageNames(chunk))
		}
	}
	// The codec-internal stages ride under the worker compress span.
	if cs := stages["compress"]; cs != nil {
		inner := map[string]bool{}
		for _, c := range cs.Children {
			inner[c.Name] = true
		}
		n := 0
		for _, stage := range []string{"rle1", "bwt", "mtf-rle2", "huffman"} {
			if inner[stage] {
				n++
			}
		}
		if n < 2 {
			t.Errorf("compress span has %d codec-internal stages, want >= 2 (children %v)", n, chunkStageNames(cs))
		}
	}
}

func chunkStageNames(sp *trace.SpanData) []string {
	var names []string
	for _, c := range sp.Children {
		names = append(names, c.Name)
	}
	return names
}

func TestTracingDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceCapacity: -1})
	resp, _ := postBytes(t, ts.URL+"/v1/compress/gzip", sampleF32(1024))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d", resp.StatusCode)
	}
	// Request IDs still flow with tracing off.
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID with tracing disabled")
	}
	dbg := httptest.NewServer(s.DebugTracesHandler())
	defer dbg.Close()
	dresp, dbody := get(t, dbg.URL)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", dresp.StatusCode)
	}
	var dump struct {
		Capacity int               `json:"capacity"`
		Traces   []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(dbody, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Capacity != 0 || len(dump.Traces) != 0 {
		t.Errorf("disabled tracer reported capacity=%d traces=%d", dump.Capacity, len(dump.Traces))
	}
}
