package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"

	"positbench/internal/trace"
)

// Request IDs tie the three observability surfaces together: the client
// sees X-Request-ID echoed on the response, the access log carries it per
// line, and the trace ring keys each captured trace by it. An incoming
// header is honored when it is well-formed (so a caller can stitch positd
// into its own distributed trace); anything else gets a fresh random ID.

type ridKey struct{}

// maxRequestIDLen bounds what we accept from the wire; longer IDs are
// replaced, not truncated, so an ID in the log always matches the client's.
const maxRequestIDLen = 64

// validRequestID accepts the unreserved URL characters, which covers
// UUIDs, ULIDs, and hex IDs while keeping log lines and JSON clean.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// newRequestID returns a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// ensureRequestID resolves the request's ID (propagating a valid inbound
// X-Request-ID, minting one otherwise), echoes it on the response, and
// stores it in the request context for the access log and tracer.
func ensureRequestID(w http.ResponseWriter, r *http.Request) (*http.Request, string) {
	id := r.Header.Get("X-Request-ID")
	if !validRequestID(id) {
		id = newRequestID()
	}
	w.Header().Set("X-Request-ID", id)
	return r.WithContext(context.WithValue(r.Context(), ridKey{}, id)), id
}

// requestIDFrom recovers the ID stored by ensureRequestID.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// traced starts a root span for the request and threads it through the
// context, where the parallel engines pick it up chunk by chunk. With
// tracing disabled (nil tracer) the span is nil and every downstream span
// call is a single branch.
func (s *Server) traced(route string, next http.Handler) http.Handler {
	if s.tracer == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := s.tracer.Start(route, requestIDFrom(r.Context()))
		sp.Annotate("path", r.URL.Path)
		defer sp.End()
		next.ServeHTTP(w, r.WithContext(trace.NewContext(r.Context(), sp)))
	})
}

// debugTracesResponse is the GET /debug/traces document.
type debugTracesResponse struct {
	Capacity int            `json:"capacity"`
	Traces   []*trace.Trace `json:"traces"`
}

// DebugTracesHandler dumps the trace ring buffer, most recent first. It is
// not part of Handler's mux: positd mounts it on the pprof listener so
// trace internals stay off the serving port.
func (s *Server) DebugTracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		resp := debugTracesResponse{}
		if s.tracer != nil {
			resp.Capacity = s.tracer.Capacity()
			resp.Traces = s.tracer.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}
