package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"positbench/internal/compress"
	"positbench/internal/sdrbench"
)

// HTTP mapping of the decode error taxonomy. Corruption in all its
// refinements is the client's fault (400); resource-limit trips are 413
// because the request entity — or what it inflates to — is too large for
// the policy in force; everything unrecognized is a 500.
//
//	ErrBadMagic / ErrVersion / ErrTruncated / ErrCorrupt -> 400
//	ErrLimitExceeded, body over cap                       -> 413
//	request deadline expired                              -> 408
//	client disconnected                                   -> 499 (logged only)

// apiError is the JSON error body every non-2xx API response carries.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// statusFor triages an error into an HTTP status and a stable machine-
// readable kind. Order matters: the most specific sentinels are tested
// before their ErrCorrupt parent.
func statusFor(err error) (int, string) {
	var maxBytes *http.MaxBytesError
	switch {
	case errors.Is(err, compress.ErrLimitExceeded):
		return http.StatusRequestEntityTooLarge, "limit_exceeded"
	case errors.As(err, &maxBytes):
		return http.StatusRequestEntityTooLarge, "body_too_large"
	case errors.Is(err, compress.ErrBadMagic):
		return http.StatusBadRequest, "bad_magic"
	case errors.Is(err, compress.ErrVersion):
		return http.StatusBadRequest, "unsupported_version"
	case errors.Is(err, compress.ErrTruncated):
		return http.StatusBadRequest, "truncated"
	case errors.Is(err, compress.ErrCorrupt):
		return http.StatusBadRequest, "corrupt"
	case errors.Is(err, sdrbench.ErrEmptyInput):
		return http.StatusBadRequest, "empty_input"
	case errors.Is(err, sdrbench.ErrMisaligned):
		return http.StatusBadRequest, "misaligned_input"
	case errors.Is(err, sdrbench.ErrTooLarge):
		return http.StatusRequestEntityTooLarge, "body_too_large"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, os.ErrDeadlineExceeded):
		return http.StatusRequestTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest, "client_closed_request"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// statusClientClosedRequest is nginx's conventional status for a client
// that went away; it never reaches the wire but keeps logs and metrics
// honest about whose fault the abort was.
const statusClientClosedRequest = 499

// writeError sends the JSON error body for err.
func writeError(w http.ResponseWriter, err error) {
	status, kind := statusFor(err)
	writeErrorStatus(w, status, kind, err.Error())
}

// writeErrorStatus sends a JSON error body with an explicit status.
func writeErrorStatus(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	blob, _ := json.Marshal(apiError{Error: msg, Kind: kind})
	w.Write(append(blob, '\n'))
}

// badParam reports an unusable query parameter.
func badParam(w http.ResponseWriter, name string, err error) {
	writeErrorStatus(w, http.StatusBadRequest, "bad_param", fmt.Sprintf("query parameter %q: %v", name, err))
}

// intParam parses an optional integer query parameter, returning def when
// absent.
func intParam(r *http.Request, name string, def int64) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not an integer: %q", raw)
	}
	return v, nil
}

// requestLimits resolves the decode limits for one request: the server's
// configured cap, lowered — never raised — by an explicit ?max_out=N.
func (s *Server) requestLimits(r *http.Request) (compress.DecodeLimits, error) {
	ceiling := s.cfg.MaxOutputBytes
	if ceiling <= 0 {
		ceiling = compress.DefaultMaxOutputBytes
	}
	maxOut, err := clampedInt64Param(r, "max_out", s.cfg.MaxOutputBytes, 1, ceiling)
	return compress.DecodeLimits{MaxOutputBytes: maxOut}, err
}

// requestWorkers resolves the worker-pool size for one request: the
// server's default, lowered — never raised — by ?workers=N.
func (s *Server) requestWorkers(r *http.Request) (int, error) {
	w, err := clampedInt64Param(r, "workers", int64(s.cfg.Workers), 1, int64(s.cfg.Workers))
	return int(w), err
}

// requestChunk resolves the streaming chunk size for one request,
// clamped to [minChunkSize, the server's configured size].
func (s *Server) requestChunk(r *http.Request) (int, error) {
	c, err := clampedInt64Param(r, "chunk", int64(s.cfg.ChunkSize), minChunkSize, int64(s.cfg.ChunkSize))
	return int(c), err
}

// minChunkSize stops a hostile ?chunk=1 from exploding a large body into
// millions of frames.
const minChunkSize = 4 << 10

// checkContentLength rejects declared-oversized bodies before any byte is
// read; chunked uploads (ContentLength < 0) are caught by the bounding
// reader instead.
func (s *Server) checkContentLength(r *http.Request) error {
	if r.ContentLength > s.cfg.MaxBodyBytes {
		return &http.MaxBytesError{Limit: s.cfg.MaxBodyBytes}
	}
	return nil
}
