package server

import (
	"io"
	"net/http/httptest"
	"strconv"
	"testing"

	"positbench/internal/compress"
)

// TestClampedInt64Param pins the one shared policy behind ?workers=,
// ?chunk=, and ?max_out=: defaults for absent/non-positive/too-large,
// floor clamping, and errors only for non-integers.
func TestClampedInt64Param(t *testing.T) {
	const (
		def   = 100
		floor = 10
		ceil  = 100
	)
	cases := []struct {
		name    string
		query   string
		want    int64
		wantErr bool
	}{
		{name: "absent", query: "", want: def},
		{name: "zero", query: "p=0", want: def},
		{name: "negative", query: "p=-3", want: def},
		{name: "at ceiling", query: "p=100", want: def},
		{name: "above ceiling", query: "p=1000", want: def},
		{name: "in range", query: "p=42", want: 42},
		{name: "at floor", query: "p=10", want: 10},
		{name: "below floor clamps", query: "p=3", want: floor},
		{name: "not an integer", query: "p=abc", wantErr: true},
		{name: "float", query: "p=1.5", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := httptest.NewRequest("GET", "/?"+tc.query, nil)
			got, err := clampedInt64Param(r, "p", def, floor, ceil)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got %d", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("got %d, want %d", got, tc.want)
			}
		})
	}
}

// TestRequestResolvers pins the three per-request resolvers to their
// documented behavior through the shared validator.
func TestRequestResolvers(t *testing.T) {
	s, err := New(Config{ChunkSize: 64 << 10, Workers: 8, MaxOutputBytes: 1 << 20, AccessLog: io.Discard})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("workers", func(t *testing.T) {
		cases := []struct {
			query string
			want  int
		}{
			{"", 8}, {"workers=0", 8}, {"workers=-1", 8}, {"workers=99", 8},
			{"workers=8", 8}, {"workers=3", 3}, {"workers=1", 1},
		}
		for _, tc := range cases {
			r := httptest.NewRequest("POST", "/?"+tc.query, nil)
			got, err := s.requestWorkers(r)
			if err != nil || got != tc.want {
				t.Fatalf("%q -> (%d, %v), want %d", tc.query, got, err, tc.want)
			}
		}
		if _, err := s.requestWorkers(httptest.NewRequest("POST", "/?workers=x", nil)); err == nil {
			t.Fatal("workers=x should error")
		}
	})

	t.Run("chunk", func(t *testing.T) {
		cases := []struct {
			query string
			want  int
		}{
			{"", 64 << 10}, {"chunk=0", 64 << 10}, {"chunk=1000000", 64 << 10},
			{"chunk=8192", 8192},
			{"chunk=1", minChunkSize}, // hostile tiny chunk clamps to the floor
			{"chunk=" + strconv.Itoa(minChunkSize-1), minChunkSize},
		}
		for _, tc := range cases {
			r := httptest.NewRequest("POST", "/?"+tc.query, nil)
			got, err := s.requestChunk(r)
			if err != nil || got != tc.want {
				t.Fatalf("%q -> (%d, %v), want %d", tc.query, got, err, tc.want)
			}
		}
	})

	t.Run("max_out", func(t *testing.T) {
		cases := []struct {
			query string
			want  int64
		}{
			{"", 1 << 20},
			{"max_out=0", 1 << 20},
			{"max_out=2097152", 1 << 20}, // raising is refused
			{"max_out=4096", 4096},       // lowering is honored
		}
		for _, tc := range cases {
			r := httptest.NewRequest("POST", "/?"+tc.query, nil)
			lim, err := s.requestLimits(r)
			if err != nil || lim.MaxOutputBytes != tc.want {
				t.Fatalf("%q -> (%d, %v), want %d", tc.query, lim.MaxOutputBytes, err, tc.want)
			}
		}
	})

	t.Run("max_out unset config uses package ceiling", func(t *testing.T) {
		s2, err := New(Config{AccessLog: io.Discard})
		if err != nil {
			t.Fatal(err)
		}
		r := httptest.NewRequest("POST", "/?max_out=4096", nil)
		lim, err := s2.requestLimits(r)
		if err != nil || lim.MaxOutputBytes != 4096 {
			t.Fatalf("lowering under default ceiling failed: (%d, %v)", lim.MaxOutputBytes, err)
		}
		r = httptest.NewRequest("POST", "/", nil)
		lim, err = s2.requestLimits(r)
		if err != nil || lim.MaxOutputBytes != 0 {
			t.Fatalf("absent max_out with unset config must stay 0 (package default %d applies downstream), got %d",
				compress.DefaultMaxOutputBytes, lim.MaxOutputBytes)
		}
	})
}
