package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"positbench/internal/compress"
	"positbench/internal/container"
	"positbench/internal/ieee"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
)

// Content types for the two wire formats the data plane speaks.
const (
	// contentTypeStream is the chunked parallel stream: uvarint-framed
	// container frames with a zero terminator, exactly what
	// compress.ParallelWriter emits.
	contentTypeStream = "application/x-positbench-stream"
	contentTypeBinary = "application/octet-stream"
)

// handleCompress streams the request body through the named codec's
// parallel chunked writer. The response never buffers whole: frames go out
// as chunks complete, in order.
func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	codec, ok := s.codec(r.PathValue("codec"))
	if !ok {
		writeErrorStatus(w, http.StatusNotFound, "unknown_codec",
			fmt.Sprintf("unknown codec %q (have %v)", r.PathValue("codec"), s.names))
		return
	}
	if err := s.checkContentLength(r); err != nil {
		writeError(w, err)
		return
	}
	chunkSize, err := s.requestChunk(r)
	if err != nil {
		badParam(w, "chunk", err)
		return
	}
	workers, err := s.requestWorkers(r)
	if err != nil {
		badParam(w, "workers", err)
		return
	}

	start := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	cw := w.(*countingWriter) // installed by shell on every route
	// The handler reads the body while frames stream out; HTTP/1 closes the
	// request body on first response write unless full duplex is on.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", contentTypeStream)
	w.Header().Set("X-Positd-Codec", codec.Name())

	pw := compress.NewParallelWriterContext(r.Context(), codec, w, chunkSize, workers)
	// Every compressed stream leaves with a seek-index trailer: ~35 bytes
	// per chunk buys clients random access via PUT /v1/objects +
	// GET /v1/read, and v1 readers never see it (it sits past the stream
	// terminator).
	pw.SetIndexSink(container.NewIndexBuilder())
	n, err := io.Copy(pw, body)
	if err != nil {
		// Poison before Close so the partial tail chunk is not flushed: if
		// no frame is out yet this keeps the response clean for a proper
		// error status.
		pw.CloseWithError(err)
		s.abortStream(cw, r, err)
		return
	}
	if err := pw.Close(); err != nil {
		s.abortStream(cw, r, err)
		return
	}
	s.metrics.recordCodec(codec.Name(), "compress", time.Since(start), n, cw.bytes)
}

// handleDecompress inverts handleCompress: the codec is identified from
// the container frame header inside the stream, so the endpoint needs no
// codec path segment. Both wire formats decode: the chunked parallel
// stream, and a bare container frame as written by `compressbench -z`.
func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	if err := s.checkContentLength(r); err != nil {
		writeError(w, err)
		return
	}
	lim, err := s.requestLimits(r)
	if err != nil {
		badParam(w, "max_out", err)
		return
	}
	workers, err := s.requestWorkers(r)
	if err != nil {
		badParam(w, "workers", err)
		return
	}

	start := time.Now()
	body := bufio.NewReader(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	name, bare, err := sniffCodec(body)
	if err != nil {
		writeError(w, err)
		return
	}
	codec, ok := s.codec(name)
	if !ok {
		writeErrorStatus(w, http.StatusBadRequest, "unknown_codec",
			fmt.Sprintf("stream names codec %q, registry has %v", name, s.names))
		return
	}
	cw := w.(*countingWriter)
	w.Header().Set("Content-Type", contentTypeBinary)
	w.Header().Set("X-Positd-Codec", name)

	var bytesIn int64
	if bare {
		// A single frame: bounded whole-body read, one decode.
		frame, err := io.ReadAll(body)
		if err != nil {
			writeError(w, err)
			return
		}
		bytesIn = int64(len(frame))
		out, err := compress.DecompressLimits(codec, frame, lim)
		if err != nil {
			writeError(w, err)
			return
		}
		if _, err := w.Write(out); err != nil {
			return // client gone; access log records the short write
		}
	} else {
		// Read-ahead decompression writes output while frames are still
		// being fetched from the body, which needs full duplex on HTTP/1.
		// The bare-frame path above reads the whole body before its first
		// write, so it stays half duplex and keeps the server's own
		// pre-response body discard protecting connection reuse.
		_ = http.NewResponseController(w).EnableFullDuplex()
		pr := compress.NewParallelReaderContext(r.Context(), codec, countReads(body, &bytesIn), lim, workers)
		defer pr.Close()
		if _, err := io.Copy(w, pr); err != nil {
			s.abortStream(cw, r, err)
			return
		}
		// The stream terminator ends the copy without observing the body's
		// EOF; surface it here so the connection stays safely reusable.
		drainBody(cw, r)
	}
	s.metrics.recordCodec(name, "decompress", time.Since(start), bytesIn, cw.bytes)
}

// abortStream ends a request whose data plane failed. If the status line
// has not been sent the error maps to a proper status; once bytes are on
// the wire the only honest signal left is killing the connection so the
// client cannot mistake a truncated body for a complete one.
func (s *Server) abortStream(cw *countingWriter, r *http.Request, err error) {
	if !cw.wrote {
		drainBody(cw, r)
		writeError(cw, err)
		return
	}
	status, kind := statusFor(err)
	log.Printf("positd: %s %s: aborting mid-stream: %v (kind %s, would-be status %d)",
		r.Method, r.URL.Path, err, kind, status)
	panic(http.ErrAbortHandler)
}

// maxDrainBytes bounds how much of an unread request body drainBody will
// consume to keep a connection reusable, matching net/http's own
// post-handler discard bound; past it the connection is retired instead.
const maxDrainBytes = 256 << 10

// drainBody consumes what remains of a full-duplex request body so its EOF
// is observed inside the handler. net/http coordinates its keep-alive
// background read with the handler only when the body hits EOF before the
// handler returns: with full duplex enabled the server skips its
// pre-response discard, and a body first drained inside finishRequest
// re-arms the background read after the abort handshake has already run —
// the connection's next keep-alive read then panics with "invalid
// concurrent Body.Read call". Every full-duplex handler must therefore
// route early returns through here (abortStream does) or read the body to
// EOF itself. A remainder past maxDrainBytes is not worth reading just for
// reuse: the response is marked Connection: close while the status line is
// unsent, else the connection is aborted outright.
func drainBody(cw *countingWriter, r *http.Request) {
	n, err := io.Copy(io.Discard, io.LimitReader(r.Body, maxDrainBytes+1))
	if err != nil || n <= maxDrainBytes {
		// EOF reached (LimitReader masks it as a clean stop), or the body
		// read failed — a dead connection has no reuse to protect.
		return
	}
	if !cw.wrote {
		cw.Header().Set("Connection", "close")
		return
	}
	panic(http.ErrAbortHandler)
}

// sniffCodec identifies the codec of an incoming compressed body from a
// bounded peek at its first bytes, before any decode resources are
// committed. A body opening with the container magic is a bare frame; a
// chunked stream opens with a uvarint frame length followed by the first
// chunk's container frame.
func sniffCodec(br *bufio.Reader) (name string, bare bool, err error) {
	prefix, err := br.Peek(binary.MaxVarintLen64 + container.MaxHeaderLen)
	if err != nil && len(prefix) == 0 {
		if err == io.EOF {
			return "", false, compress.Errorf(compress.ErrTruncated, "server: empty body")
		}
		return "", false, err
	}
	if len(prefix) >= len(container.Magic) {
		bare = true
		for i, b := range container.Magic {
			if prefix[i] != b {
				bare = false
				break
			}
		}
		if bare {
			h, _, err := container.ParseHeader(prefix)
			if err != nil {
				return "", false, err
			}
			return h.Codec, true, nil
		}
	}
	length, used := binary.Uvarint(prefix)
	if used <= 0 {
		return "", false, compress.Errorf(compress.ErrCorrupt, "server: unreadable stream frame prefix")
	}
	if length == 0 {
		return "", false, compress.Errorf(compress.ErrTruncated, "server: stream opens with its terminator")
	}
	h, _, err := container.ParseHeader(prefix[used:])
	if err != nil {
		return "", false, err
	}
	return h.Codec, false, nil
}

// countReads tallies bytes pulled from r into n (single-goroutine use: the
// parallel reader's one fetcher).
func countReads(r io.Reader, n *int64) io.Reader {
	return &countingReader{r: r, n: n}
}

type countingReader struct {
	r io.Reader
	n *int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	*c.n += int64(n)
	return n, err
}

// convertResponseHeaders carry the roundtrip-precision statistics of a
// float32 -> posit conversion, so clients get the Section 4.2 numbers
// without a second pass.
const (
	headerValues   = "X-Positd-Values"
	headerExactPct = "X-Positd-Exact-Pct"
	headerMaxAbsE  = "X-Positd-Max-Abs-Error"
)

// handleConvert converts a raw little-endian body between IEEE-754
// binary32 and posit<n,es> words (?to=posit default, ?to=float32 for the
// inverse; ?n= and ?es= select the posit config, 32/3 default — the
// paper's configuration).
func (s *Server) handleConvert(w http.ResponseWriter, r *http.Request) {
	if err := s.checkContentLength(r); err != nil {
		writeError(w, err)
		return
	}
	n, err := intParam(r, "n", 32)
	if err != nil {
		badParam(w, "n", err)
		return
	}
	es, err := intParam(r, "es", 3)
	if err != nil {
		badParam(w, "es", err)
		return
	}
	if n < 2 || n > 32 || es < 0 || es > 8 {
		writeErrorStatus(w, http.StatusBadRequest, "bad_param",
			fmt.Sprintf("posit<%d,%d> outside the supported range (2 <= n <= 32, 0 <= es <= 8)", n, es))
		return
	}
	cfg := posit.Config{N: uint(n), ES: uint(es)}
	if err := cfg.Validate(); err != nil {
		writeErrorStatus(w, http.StatusBadRequest, "bad_param", err.Error())
		return
	}
	workers, err := s.requestWorkers(r)
	if err != nil {
		badParam(w, "workers", err)
		return
	}
	to := r.URL.Query().Get("to")
	if to == "" {
		to = "posit"
	}

	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, err)
		return
	}
	if ctxErr := r.Context().Err(); ctxErr != nil {
		writeError(w, ctxErr)
		return
	}

	switch to {
	case "posit":
		floats, err := sdrbench.Parse(data)
		if err != nil {
			writeError(w, err)
			return
		}
		words := cfg.FromFloat32SliceWorkers(nil, floats, workers)
		st := cfg.RoundtripStatsWorkers(floats, workers)
		w.Header().Set("Content-Type", contentTypeBinary)
		w.Header().Set(headerValues, fmt.Sprint(st.Total))
		w.Header().Set(headerExactPct, fmt.Sprintf("%.4f", st.PrecisePct()))
		w.Header().Set(headerMaxAbsE, fmt.Sprintf("%g", st.MaxAbsE))
		w.Write(posit.EncodeWordsLE(words))
	case "float32", "float":
		if len(data) == 0 {
			writeError(w, sdrbench.ErrEmptyInput)
			return
		}
		words, err := posit.DecodeWordsLE(data)
		if err != nil {
			writeErrorStatus(w, http.StatusBadRequest, "misaligned_input", err.Error())
			return
		}
		floats := cfg.ToFloat32SliceWorkers(nil, words, workers)
		w.Header().Set("Content-Type", contentTypeBinary)
		w.Header().Set(headerValues, fmt.Sprint(len(floats)))
		w.Write(posit.EncodeFloat32LE(floats))
	default:
		writeErrorStatus(w, http.StatusBadRequest, "bad_param",
			fmt.Sprintf("?to=%q: want \"posit\" or \"float32\"", to))
	}
}

// analyzeResponse is the POST /v1/analyze JSON document: the paper's
// field-level view of one .f32 input.
type analyzeResponse struct {
	Values  int              `json:"values"`
	Classes map[string]int   `json:"classes"`
	Range   analyzeRange     `json:"range"`
	Expo    analyzeExponent  `json:"exponent"`
	Posit   analyzeRoundtrip `json:"posit_roundtrip"`
}

type analyzeRange struct {
	MinFinite float64 `json:"min_finite"`
	MaxFinite float64 `json:"max_finite"`
	MinAbs    float64 `json:"min_abs"`
	MaxAbs    float64 `json:"max_abs"`
}

type analyzeExponent struct {
	Mode int            `json:"mode"`
	Bins map[string]int `json:"bins"` // biased exponent -> count, populated bins only
}

type analyzeRoundtrip struct {
	Config      string  `json:"config"`
	Exact       int     `json:"exact"`
	ExactPct    float64 `json:"exact_pct"`
	MaxAbsError float64 `json:"max_abs_error"`
}

// handleAnalyze reports IEEE-754 field statistics and posit roundtrip
// precision for a raw .f32 body (?es= selects the posit config, 3
// default).
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if err := s.checkContentLength(r); err != nil {
		writeError(w, err)
		return
	}
	es, err := intParam(r, "es", 3)
	if err != nil {
		badParam(w, "es", err)
		return
	}
	cfg := posit.Config{N: 32, ES: uint(es)}
	if err := cfg.Validate(); err != nil {
		writeErrorStatus(w, http.StatusBadRequest, "bad_param", err.Error())
		return
	}
	workers, err := s.requestWorkers(r)
	if err != nil {
		badParam(w, "workers", err)
		return
	}
	floats, err := sdrbench.Load(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), 0)
	if err != nil {
		writeError(w, err)
		return
	}
	if ctxErr := r.Context().Err(); ctxErr != nil {
		writeError(w, ctxErr)
		return
	}

	sum := ieee.Summarize(floats)
	var hist ieee.Histogram
	hist.AddSlice(floats)
	st := cfg.RoundtripStatsWorkers(floats, workers)

	bins := map[string]int{}
	for e, n := range hist.Bins {
		if n > 0 {
			bins[fmt.Sprint(e)] = n
		}
	}
	resp := analyzeResponse{
		Values: sum.Total,
		Classes: map[string]int{
			"zero":      sum.Zeros,
			"subnormal": sum.Subnormals,
			"normal":    sum.Normals,
			"inf":       sum.Infs,
			"nan":       sum.NaNs,
		},
		Range: analyzeRange{
			MinFinite: sum.MinFinite,
			MaxFinite: sum.MaxFinite,
			MinAbs:    sum.MinAbs,
			MaxAbs:    sum.MaxAbs,
		},
		Expo: analyzeExponent{Mode: hist.Mode(), Bins: bins},
		Posit: analyzeRoundtrip{
			Config:      cfg.String(),
			Exact:       st.Exact,
			ExactPct:    st.PrecisePct(),
			MaxAbsError: st.MaxAbsE,
		},
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// codecsResponse is one GET /v1/codecs entry: identity plus the capability
// hints clients and the gateway introspect instead of hard-coding names —
// whether the decoder is light enough for the serial fallback path, whether
// the codec emits per-stage trace spans, and whether the auto-mode advisor
// considers it a candidate.
type codecsResponse struct {
	Name            string `json:"name"`
	Version         string `json:"version,omitempty"`
	Source          string `json:"source,omitempty"`
	LightDecoder    bool   `json:"light_decoder"`
	TracedStages    bool   `json:"traced_stages"`
	AdvisorEligible bool   `json:"advisor_eligible"`
}

// handleCodecs lists the registry in table order.
func (s *Server) handleCodecs(w http.ResponseWriter, r *http.Request) {
	out := make([]codecsResponse, 0, len(s.names))
	for _, name := range s.names {
		c := s.codecs[name]
		entry := codecsResponse{
			Name:            name,
			LightDecoder:    compress.DecodeIsLight(c),
			AdvisorEligible: s.advisor.Eligible(name),
		}
		if d, ok := c.(compress.Describer); ok {
			info := d.Info()
			entry.Version = info.Version
			entry.Source = info.Source
		}
		_, tc := c.(compress.TracedCompressor)
		_, td := c.(compress.TracedDecompressor)
		entry.TracedStages = tc || td
		out = append(out, entry)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
