package server

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestGracefulDrain verifies the shutdown contract cmd/positd relies on:
// http.Server.Shutdown stops accepting new work but lets an in-flight
// request — one that was admitted before the signal — run to completion and
// deliver its full response.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{AccessLog: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Start a request whose body arrives in two installments, so it is
	// mid-flight when Shutdown is called.
	first := sampleF32(1024)
	second := sampleF32(512)
	pr, pw := io.Pipe()
	type result struct {
		status int
		body   []byte
		err    error
	}
	resC := make(chan result, 1)
	go func() {
		req, err := http.NewRequest("POST", base+"/v1/compress/gzip", pr)
		if err != nil {
			resC <- result{err: err}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			resC <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		resC <- result{status: resp.StatusCode, body: body, err: err}
	}()

	if _, err := pw.Write(first); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown must block on the in-flight request, not cut it off.
	shutC := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutC <- hs.Shutdown(ctx)
	}()

	select {
	case err := <-shutC:
		t.Fatalf("Shutdown returned (%v) while a request was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// New connections are refused during the drain.
	quick := &http.Client{Timeout: time.Second}
	if resp, err := quick.Get(base + "/healthz"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Log("note: listener accepted during drain (request raced Shutdown)")
	}

	// Finish the body; the in-flight request must complete normally.
	if _, err := pw.Write(second); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	res := <-resC
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d during drain, want 200", res.status)
	}
	if err := <-shutC; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// The drained response must still decode to the full two-installment body.
	s2, err := New(Config{AccessLog: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	rec := newLocalRoundtrip(t, s2, res.body)
	want := append(append([]byte(nil), first...), second...)
	if !bytes.Equal(rec, want) {
		t.Fatalf("drained stream decoded to %d bytes, want %d", len(rec), len(want))
	}
}

// newLocalRoundtrip decompresses a stream through a fresh in-process handler.
func newLocalRoundtrip(t *testing.T, s *Server, comp []byte) []byte {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/decompress", "application/octet-stream", bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress status = %d: %s", resp.StatusCode, out)
	}
	return out
}
