package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"positbench/internal/compress"
	"positbench/internal/container"
	"positbench/internal/trace"
)

// Auto-mode response headers: the decision's evidence, so a caller can see
// what was chosen and why without a second request.
const (
	headerAutoPipeline   = "X-Positd-Auto-Pipeline"
	headerAutoSource     = "X-Positd-Auto-Source"
	headerAutoConfidence = "X-Positd-Auto-Confidence"
	headerAutoFallback   = "X-Positd-Auto-Fallback"
)

// handleAuto is POST /v1/compress/auto: the advisor picks the codec from
// the stream's head, then the body streams through the chosen codec exactly
// like handleCompress. The sample is the head prefix (bounded by the
// advisor's budget) because the server must not buffer the body to reach
// later windows; the offline positadvise tool samples the whole file.
// ?hint=a,b restricts candidates; the chosen codec lands in X-Positd-Codec
// and the operation is accounted under the "auto" op so direct-compress
// metrics stay untouched.
func (s *Server) handleAuto(w http.ResponseWriter, r *http.Request) {
	if err := s.checkContentLength(r); err != nil {
		writeError(w, err)
		return
	}
	chunkSize, err := s.requestChunk(r)
	if err != nil {
		badParam(w, "chunk", err)
		return
	}
	workers, err := s.requestWorkers(r)
	if err != nil {
		badParam(w, "workers", err)
		return
	}
	var hints []string
	for _, raw := range r.URL.Query()["hint"] {
		hints = append(hints, strings.Split(raw, ",")...)
	}

	start := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	// The decision sample is the stream head: read up to the advisor's
	// budget, decide, then replay the prefix ahead of the rest of the body.
	prefix := make([]byte, s.advisor.SampleBytes())
	n, err := io.ReadFull(body, prefix)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		writeError(w, err)
		return
	}
	prefix = prefix[:n]

	dec, err := s.advisor.Decide(r.Context(), prefix, hints, trace.FromContext(r.Context()))
	if err != nil {
		badParam(w, "hint", err)
		return
	}
	codec, err := s.advisor.CodecFor(dec)
	if err != nil {
		writeError(w, err)
		return
	}

	cw := w.(*countingWriter) // installed by shell on every route
	// See handleCompress: frames stream out while the body is still being
	// read, which needs full duplex on HTTP/1.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", contentTypeStream)
	w.Header().Set("X-Positd-Codec", dec.Codec)
	if dec.Pipeline != "" {
		w.Header().Set(headerAutoPipeline, dec.Pipeline)
	}
	w.Header().Set(headerAutoSource, dec.Source)
	w.Header().Set(headerAutoConfidence, fmt.Sprintf("%.3f", dec.Confidence))
	if dec.Fallback {
		w.Header().Set(headerAutoFallback, "true")
	}

	pw := compress.NewParallelWriterContext(r.Context(), codec, w, chunkSize, workers)
	pw.SetIndexSink(container.NewIndexBuilder()) // auto streams are seekable too
	total, err := io.Copy(pw, io.MultiReader(bytes.NewReader(prefix), body))
	if err != nil {
		pw.CloseWithError(err)
		s.abortStream(cw, r, err)
		return
	}
	if err := pw.Close(); err != nil {
		s.abortStream(cw, r, err)
		return
	}
	s.metrics.recordCodec(dec.Codec, "auto", time.Since(start), total, cw.bytes)
}
