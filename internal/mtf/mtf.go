// Package mtf implements the move-to-front transform and the bzip2-style
// run-length codings that bracket it: RLE1 (byte-level run clamping applied
// before the BWT) and the RUNA/RUNB zero-run coding applied after MTF.
package mtf

import "positbench/internal/compress"

// Encode applies the move-to-front transform in place semantics: the result
// has the same length as src. Small output values indicate recently used
// bytes, which is what makes post-BWT data highly compressible.
func Encode(src []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, b := range src {
		var j int
		for table[j] != b {
			j++
		}
		out[i] = byte(j)
		copy(table[1:j+1], table[:j])
		table[0] = b
	}
	return out
}

// Decode inverts Encode.
func Decode(src []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, j := range src {
		b := table[j]
		out[i] = b
		copy(table[1:int(j)+1], table[:j])
		table[0] = b
	}
	return out
}

// RLE1 applies bzip2's first run-length stage: any run of 4..259 identical
// bytes becomes the 4 bytes followed by a count byte (run-4). This bounds
// the damage pathological runs do to the rotation sort.
func RLE1(src []byte) []byte {
	out := make([]byte, 0, len(src)+len(src)/4+16)
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < 259 {
			run++
		}
		if run >= 4 {
			out = append(out, b, b, b, b, byte(run-4))
			i += run
		} else {
			out = append(out, src[i:i+run]...)
			i += run
		}
	}
	return out
}

// UnRLE1 inverts RLE1 with no output bound; use UnRLE1Limit on untrusted
// input.
func UnRLE1(src []byte) ([]byte, error) {
	return UnRLE1Limit(src, 0)
}

// UnRLE1Limit inverts RLE1, failing with compress.ErrLimitExceeded once the
// output would exceed maxOut bytes (maxOut <= 0 means unbounded). The bound
// is enforced before each run is materialized, so a hostile stream cannot
// force a large allocation.
func UnRLE1Limit(src []byte, maxOut int) ([]byte, error) {
	out := make([]byte, 0, len(src)*2)
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < 4 {
			run++
		}
		if run == 4 {
			if i+4 >= len(src) {
				return nil, compress.Errorf(compress.ErrTruncated, "mtf: truncated RLE1 run")
			}
			total := 4 + int(src[i+4])
			if maxOut > 0 && len(out)+total > maxOut {
				return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: RLE1 output exceeds %d bytes", maxOut)
			}
			for j := 0; j < total; j++ {
				out = append(out, b)
			}
			i += 5
		} else {
			if maxOut > 0 && len(out)+run > maxOut {
				return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: RLE1 output exceeds %d bytes", maxOut)
			}
			out = append(out, src[i:i+run]...)
			i += run
		}
	}
	return out, nil
}

// Zero-run symbols produced by EncodeZeroRuns. Symbols RunA and RunB encode
// zero-run lengths in bijective base 2 (bzip2's RUNA/RUNB scheme); byte
// value v > 0 becomes symbol v+1. The caller appends its own EOB symbol.
const (
	RunA = 0
	RunB = 1
)

// EncodeZeroRuns converts an MTF byte stream into zero-run symbols:
// runs of zeros are emitted as RUNA/RUNB digits (bijective base 2, least
// significant digit first); a nonzero byte v becomes symbol v+1.
// The resulting alphabet is 0..256.
func EncodeZeroRuns(src []byte) []uint16 {
	out := make([]uint16, 0, len(src))
	i := 0
	for i < len(src) {
		if src[i] != 0 {
			out = append(out, uint16(src[i])+1)
			i++
			continue
		}
		run := 0
		for i < len(src) && src[i] == 0 {
			run++
			i++
		}
		// Bijective base-2 digits of run: digits in {1,2} -> {RUNA,RUNB}.
		for run > 0 {
			d := run & 1 // 1 -> RUNA, 0 (i.e. digit 2) -> RUNB
			if d == 1 {
				out = append(out, RunA)
				run = (run - 1) / 2
			} else {
				out = append(out, RunB)
				run = (run - 2) / 2
			}
		}
	}
	return out
}

// DecodeZeroRuns inverts EncodeZeroRuns with no output bound; use
// DecodeZeroRunsLimit on untrusted input.
func DecodeZeroRuns(src []uint16) ([]byte, error) {
	return DecodeZeroRunsLimit(src, 0)
}

// DecodeZeroRunsLimit inverts EncodeZeroRuns, failing with
// compress.ErrLimitExceeded once the output would exceed maxOut bytes
// (maxOut <= 0 means unbounded). A handful of RUNA/RUNB symbols can encode a
// multi-gigabyte zero run, so the bound is checked before the run is
// materialized.
func DecodeZeroRunsLimit(src []uint16, maxOut int) ([]byte, error) {
	out := make([]byte, 0, len(src))
	i := 0
	for i < len(src) {
		s := src[i]
		if s > 1 {
			if s > 256 {
				return nil, compress.Errorf(compress.ErrCorrupt, "mtf: symbol %d out of range", s)
			}
			if maxOut > 0 && len(out) >= maxOut {
				return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: zero-run output exceeds %d bytes", maxOut)
			}
			out = append(out, byte(s-1))
			i++
			continue
		}
		// Collect RUNA/RUNB digits.
		const maxRun = 1 << 31
		run := 0
		weight := 1
		for i < len(src) && src[i] <= 1 {
			if src[i] == RunA {
				run += weight
			} else {
				run += 2 * weight
			}
			weight *= 2
			if run > maxRun || weight > maxRun {
				return nil, compress.Errorf(compress.ErrCorrupt, "mtf: zero run too long")
			}
			i++
		}
		if maxOut > 0 && len(out)+run > maxOut {
			return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: zero-run output exceeds %d bytes", maxOut)
		}
		for j := 0; j < run; j++ {
			out = append(out, 0)
		}
	}
	return out, nil
}
