// Package mtf implements the move-to-front transform and the bzip2-style
// run-length codings that bracket it: RLE1 (byte-level run clamping applied
// before the BWT) and the RUNA/RUNB zero-run coding applied after MTF.
package mtf

import "positbench/internal/compress"

// Encode applies the move-to-front transform in place semantics: the result
// has the same length as src. Small output values indicate recently used
// bytes, which is what makes post-BWT data highly compressible.
func Encode(src []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, b := range src {
		var j int
		for table[j] != b {
			j++
		}
		out[i] = byte(j)
		copy(table[1:j+1], table[:j])
		table[0] = b
	}
	return out
}

// Decode inverts Encode.
func Decode(src []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, j := range src {
		b := table[j]
		out[i] = b
		copy(table[1:int(j)+1], table[:j])
		table[0] = b
	}
	return out
}

// RLE1 applies bzip2's first run-length stage: any run of 4..259 identical
// bytes becomes the 4 bytes followed by a count byte (run-4). This bounds
// the damage pathological runs do to the rotation sort.
func RLE1(src []byte) []byte {
	out := make([]byte, 0, len(src)+len(src)/4+16)
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < 259 {
			run++
		}
		if run >= 4 {
			out = append(out, b, b, b, b, byte(run-4))
			i += run
		} else {
			out = append(out, src[i:i+run]...)
			i += run
		}
	}
	return out
}

// UnRLE1 inverts RLE1 with no output bound; use UnRLE1Limit on untrusted
// input.
func UnRLE1(src []byte) ([]byte, error) {
	return UnRLE1Limit(src, 0)
}

// UnRLE1Limit inverts RLE1, failing with compress.ErrLimitExceeded once the
// output would exceed maxOut bytes (maxOut <= 0 means unbounded). The bound
// is enforced before each run is materialized, so a hostile stream cannot
// force a large allocation.
func UnRLE1Limit(src []byte, maxOut int) ([]byte, error) {
	out := make([]byte, 0, len(src)+len(src)/4)
	i := 0
	for i < len(src) {
		// Find the next run of 4 identical bytes at or after i; everything
		// before it is literal and copied in one append. If src[j+3] differs
		// from src[j+2], no run of 4 can start at j, j+1, or j+2, so the
		// scan advances 3 positions per probe over non-run data.
		j := i
		for j+3 < len(src) {
			if src[j+3] != src[j+2] {
				j += 3
				continue
			}
			b := src[j]
			if b == src[j+1] && b == src[j+2] && b == src[j+3] {
				break
			}
			j++
		}
		if j+3 >= len(src) {
			// No further run: the rest of the input is literal.
			if maxOut > 0 && len(out)+len(src)-i > maxOut {
				return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: RLE1 output exceeds %d bytes", maxOut)
			}
			return append(out, src[i:]...), nil
		}
		if maxOut > 0 && len(out)+j-i > maxOut {
			return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: RLE1 output exceeds %d bytes", maxOut)
		}
		out = append(out, src[i:j]...)
		if j+4 >= len(src) {
			return nil, compress.Errorf(compress.ErrTruncated, "mtf: truncated RLE1 run")
		}
		total := 4 + int(src[j+4])
		if maxOut > 0 && len(out)+total > maxOut {
			return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: RLE1 output exceeds %d bytes", maxOut)
		}
		out = appendRepeat(out, src[j], total)
		i = j + 5
	}
	return out, nil
}

// Zero-run symbols produced by EncodeZeroRuns. Symbols RunA and RunB encode
// zero-run lengths in bijective base 2 (bzip2's RUNA/RUNB scheme); byte
// value v > 0 becomes symbol v+1. The caller appends its own EOB symbol.
const (
	RunA = 0
	RunB = 1
)

// EncodeZeroRuns converts an MTF byte stream into zero-run symbols:
// runs of zeros are emitted as RUNA/RUNB digits (bijective base 2, least
// significant digit first); a nonzero byte v becomes symbol v+1.
// The resulting alphabet is 0..256.
func EncodeZeroRuns(src []byte) []uint16 {
	out := make([]uint16, 0, len(src))
	i := 0
	for i < len(src) {
		if src[i] != 0 {
			out = append(out, uint16(src[i])+1)
			i++
			continue
		}
		run := 0
		for i < len(src) && src[i] == 0 {
			run++
			i++
		}
		// Bijective base-2 digits of run: digits in {1,2} -> {RUNA,RUNB}.
		for run > 0 {
			d := run & 1 // 1 -> RUNA, 0 (i.e. digit 2) -> RUNB
			if d == 1 {
				out = append(out, RunA)
				run = (run - 1) / 2
			} else {
				out = append(out, RunB)
				run = (run - 2) / 2
			}
		}
	}
	return out
}

// DecodeZeroRuns inverts EncodeZeroRuns with no output bound; use
// DecodeZeroRunsLimit on untrusted input.
func DecodeZeroRuns(src []uint16) ([]byte, error) {
	return DecodeZeroRunsLimit(src, 0)
}

// DecodeRunsMTFLimit inverts EncodeZeroRuns composed with Encode in a single
// pass: a RUNA/RUNB zero run decodes to repeats of the current front of the
// MTF table, which leaves the table untouched, so the zero bytes of the
// intermediate MTF stream are bulk-filled without ever being re-scanned.
// Post-BWT data is mostly runs, making this the fast path of the bzip2-class
// block decoder. maxOut bounds the output as in DecodeZeroRunsLimit.
func DecodeRunsMTFLimit(src []uint16, maxOut int) ([]byte, error) {
	// A flat 256-byte table with memmove promotion was measured 2x faster
	// here than bzip2's two-level 16x16 sliding-base scheme: a <=255-byte
	// memmove inside one or two L1 lines costs a few cycles on current
	// hardware, while the two-level cascade replaces it with up to 31
	// dependent single-byte loads and stores. The classic structure predates
	// vectorized memmove; do not "upgrade" to it.
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	// When the caller bounds the output it knows the decoded size (the block
	// length), so allocating the bound up front avoids every growth copy.
	capHint := len(src)
	if maxOut > 0 {
		capHint = maxOut
	}
	out := make([]byte, 0, capHint)
	i := 0
	for i < len(src) {
		s := src[i]
		if s > 1 {
			if s > 256 {
				return nil, compress.Errorf(compress.ErrCorrupt, "mtf: symbol %d out of range", s)
			}
			if maxOut > 0 && len(out) >= maxOut {
				return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: zero-run output exceeds %d bytes", maxOut)
			}
			j := int(s - 1)
			b := table[j]
			out = append(out, b)
			if j < 16 {
				// Short moves dominate on MTF output; a register loop beats
				// the memmove call overhead.
				for k := j; k > 0; k-- {
					table[k] = table[k-1]
				}
			} else {
				copy(table[1:j+1], table[:j])
			}
			table[0] = b
			i++
			continue
		}
		run, ni, err := zeroRunLen(src, i)
		if err != nil {
			return nil, err
		}
		i = ni
		if maxOut > 0 && len(out)+run > maxOut {
			return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: zero-run output exceeds %d bytes", maxOut)
		}
		out = appendRepeat(out, table[0], run)
	}
	return out, nil
}

// zeroRunLen collects the RUNA/RUNB digits starting at src[i] (bijective
// base 2, least significant first) and returns the run length and the index
// past the digits.
func zeroRunLen(src []uint16, i int) (run, next int, err error) {
	const maxRun = 1 << 31
	weight := 1
	for i < len(src) && src[i] <= 1 {
		if src[i] == RunA {
			run += weight
		} else {
			run += 2 * weight
		}
		weight *= 2
		if run > maxRun || weight > maxRun {
			return 0, 0, compress.Errorf(compress.ErrCorrupt, "mtf: zero run too long")
		}
		i++
	}
	return run, i, nil
}

// appendRepeat appends count copies of b. Long runs are materialized with
// doubling copies (memmove) instead of a byte loop.
func appendRepeat(out []byte, b byte, count int) []byte {
	n := len(out)
	total := n + count
	for cap(out) < total {
		out = append(out[:cap(out)], 0)
	}
	out = out[:total]
	if count < 16 {
		for ; n < total; n++ {
			out[n] = b
		}
		return out
	}
	fs := n
	out[n] = b
	n++
	for n < total {
		n += copy(out[n:], out[fs:n])
	}
	return out
}

// DecodeZeroRunsLimit inverts EncodeZeroRuns, failing with
// compress.ErrLimitExceeded once the output would exceed maxOut bytes
// (maxOut <= 0 means unbounded). A handful of RUNA/RUNB symbols can encode a
// multi-gigabyte zero run, so the bound is checked before the run is
// materialized.
func DecodeZeroRunsLimit(src []uint16, maxOut int) ([]byte, error) {
	out := make([]byte, 0, len(src))
	i := 0
	for i < len(src) {
		s := src[i]
		if s > 1 {
			if s > 256 {
				return nil, compress.Errorf(compress.ErrCorrupt, "mtf: symbol %d out of range", s)
			}
			if maxOut > 0 && len(out) >= maxOut {
				return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: zero-run output exceeds %d bytes", maxOut)
			}
			out = append(out, byte(s-1))
			i++
			continue
		}
		run, ni, err := zeroRunLen(src, i)
		if err != nil {
			return nil, err
		}
		i = ni
		if maxOut > 0 && len(out)+run > maxOut {
			return nil, compress.Errorf(compress.ErrLimitExceeded, "mtf: zero-run output exceeds %d bytes", maxOut)
		}
		out = appendRepeat(out, 0, run)
	}
	return out, nil
}
