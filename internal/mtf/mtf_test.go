package mtf

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"positbench/internal/compress"
)

func TestMTFKnown(t *testing.T) {
	// "aaab": a is index 97 first, then 0, 0; b is 98 (a moved to front).
	got := Encode([]byte("aaab"))
	want := []byte{97, 0, 0, 98}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if back := Decode(got); !bytes.Equal(back, []byte("aaab")) {
		t.Fatalf("decode %v", back)
	}
}

func TestMTFRoundtripQuick(t *testing.T) {
	f := func(s []byte) bool { return bytes.Equal(Decode(Encode(s)), s) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMTFEmptyAndAllBytes(t *testing.T) {
	if len(Encode(nil)) != 0 || len(Decode(nil)) != 0 {
		t.Fatal("empty")
	}
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	if !bytes.Equal(Decode(Encode(all)), all) {
		t.Fatal("all bytes")
	}
}

func TestRLE1Roundtrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{1, 1, 1},
		{1, 1, 1, 1},
		{1, 1, 1, 1, 1},
		bytes.Repeat([]byte{7}, 259),
		bytes.Repeat([]byte{7}, 260),
		bytes.Repeat([]byte{7}, 600),
		bytes.Repeat([]byte{0xFF}, 262), // count byte collides with data byte
		append(bytes.Repeat([]byte{3}, 10), bytes.Repeat([]byte{4}, 10)...),
		[]byte("abcabcabc"),
	}
	for _, c := range cases {
		enc := RLE1(c)
		back, err := UnRLE1(enc)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !bytes.Equal(back, c) {
			t.Fatalf("case len %d: got len %d", len(c), len(back))
		}
	}
}

func TestRLE1Quick(t *testing.T) {
	f := func(s []byte) bool {
		back, err := UnRLE1(RLE1(s))
		return err == nil && bytes.Equal(back, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRLE1RunHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := make([]byte, 0, 100000)
	for len(s) < 100000 {
		b := byte(rng.Intn(4))
		run := rng.Intn(1000) + 1
		for i := 0; i < run; i++ {
			s = append(s, b)
		}
	}
	enc := RLE1(s)
	if len(enc) >= len(s) {
		t.Fatalf("RLE1 did not shrink run-heavy data: %d -> %d", len(s), len(enc))
	}
	back, err := UnRLE1(enc)
	if err != nil || !bytes.Equal(back, s) {
		t.Fatal("roundtrip failed")
	}
}

func TestUnRLE1Truncated(t *testing.T) {
	if _, err := UnRLE1([]byte{5, 5, 5, 5}); err == nil {
		t.Fatal("truncated run accepted")
	}
}

func TestZeroRunsKnown(t *testing.T) {
	// run=3 zeros -> RUNA RUNA; value 5 -> symbol 6.
	got := EncodeZeroRuns([]byte{0, 0, 0, 5})
	want := []uint16{RunA, RunA, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	back, err := DecodeZeroRuns(got)
	if err != nil || !bytes.Equal(back, []byte{0, 0, 0, 5}) {
		t.Fatalf("decode %v %v", back, err)
	}
}

func TestZeroRunsLengths(t *testing.T) {
	for run := 0; run < 600; run++ {
		src := make([]byte, run, run+1)
		src = append(src, 9)
		enc := EncodeZeroRuns(src)
		back, err := DecodeZeroRuns(enc)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("run %d: got len %d", run, len(back))
		}
	}
}

func TestZeroRunsQuick(t *testing.T) {
	f := func(s []byte) bool {
		back, err := DecodeZeroRuns(EncodeZeroRuns(s))
		return err == nil && bytes.Equal(back, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroRunsBadSymbol(t *testing.T) {
	if _, err := DecodeZeroRuns([]uint16{300}); err == nil {
		t.Fatal("symbol out of range accepted")
	}
}

func TestZeroRunsOverflowGuard(t *testing.T) {
	// 64 RUNB digits would decode to an astronomically long run.
	bad := make([]uint16, 64)
	for i := range bad {
		bad[i] = RunB
	}
	if _, err := DecodeZeroRuns(bad); err == nil {
		t.Fatal("overflowing run accepted")
	}
}

func BenchmarkMTFEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := make([]byte, 1<<20)
	for i := range s {
		s[i] = byte(rng.Intn(8)) // post-BWT-like locality
	}
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(s)
	}
}

func TestUnRLE1Limit(t *testing.T) {
	enc := RLE1(bytes.Repeat([]byte{9}, 200))
	if _, err := UnRLE1Limit(enc, 50); !errors.Is(err, compress.ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
	out, err := UnRLE1Limit(enc, 200)
	if err != nil || len(out) != 200 {
		t.Fatalf("in-bounds decode: %d bytes, %v", len(out), err)
	}
}

func TestDecodeZeroRunsLimit(t *testing.T) {
	// ~30 RUNB digits declare a zero run of about 2^31 bytes.
	syms := make([]uint16, 30)
	for i := range syms {
		syms[i] = RunB
	}
	if _, err := DecodeZeroRunsLimit(syms, 1<<16); !errors.Is(err, compress.ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
	enc := EncodeZeroRuns(make([]byte, 1000))
	out, err := DecodeZeroRunsLimit(enc, 1000)
	if err != nil || len(out) != 1000 {
		t.Fatalf("in-bounds decode: %d bytes, %v", len(out), err)
	}
}
