package sdrbench

import (
	"errors"
	"fmt"
	"io"
	"os"

	"positbench/internal/posit"
)

// Loading real SDRBench inputs. The synthetic generators above stand in for
// the originals inside this repository, but the loader lets the study (and
// the serving path's /v1/analyze endpoint) run over genuine .f32 downloads:
// raw little-endian binary32 streams with no header, exactly as SDRBench
// distributes them.

// Loader error taxonomy, matchable with errors.Is.
var (
	// ErrEmptyInput marks a zero-length .f32 stream: SDRBench files are
	// never empty, so an empty read almost always means a failed download
	// or a wrong path, and silently analyzing zero values would hide that.
	ErrEmptyInput = errors.New("sdrbench: empty input")
	// ErrMisaligned marks a byte length that is not a multiple of 4: the
	// file is truncated mid-value or is not a .f32 stream at all.
	ErrMisaligned = errors.New("sdrbench: input length not a multiple of 4 (truncated or not .f32)")
	// ErrTooLarge marks an input over the caller's byte limit.
	ErrTooLarge = errors.New("sdrbench: input exceeds size limit")
)

// Load reads an entire .f32 stream from r, bounding the read at maxBytes
// (<= 0 selects no limit). It rejects empty and misaligned streams with
// typed errors rather than returning a silently-short value slice.
func Load(r io.Reader, maxBytes int64) ([]float32, error) {
	var data []byte
	var err error
	if maxBytes > 0 {
		// Read one byte past the cap so "exactly at the limit" and "over
		// it" are distinguishable.
		data, err = io.ReadAll(io.LimitReader(r, maxBytes+1))
		if err == nil && int64(len(data)) > maxBytes {
			return nil, fmt.Errorf("%w: more than %d bytes", ErrTooLarge, maxBytes)
		}
	} else {
		data, err = io.ReadAll(r)
	}
	if err != nil {
		return nil, fmt.Errorf("sdrbench: read input: %w", err)
	}
	return Parse(data)
}

// Parse decodes an in-memory .f32 byte stream with the same validation as
// Load.
func Parse(data []byte) ([]float32, error) {
	if len(data) == 0 {
		return nil, ErrEmptyInput
	}
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrMisaligned, len(data))
	}
	floats, err := posit.DecodeFloat32LE(data)
	if err != nil {
		return nil, err // unreachable given the alignment check, but honest
	}
	return floats, nil
}

// LoadFile loads one .f32 file from disk.
func LoadFile(path string) ([]float32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floats, err := Load(f, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return floats, nil
}
