// Package sdrbench provides deterministic synthetic substitutes for the 14
// single-precision SDRBench inputs the paper evaluates (Tables 2 and 3).
//
// The real SDRBench files (25 MB - 1.1 GB of climate, molecular-dynamics,
// cosmology, weather, and quantum-chemistry data) are not redistributable
// inside this repository, so each input is replaced by a seeded generator
// that reproduces the statistical features the paper's results depend on:
//
//   - value smoothness / neighbor correlation (drives LZ and delta stages),
//   - the biased-exponent distribution of Figure 5 (drives posit regime
//     lengths and therefore the float-vs-posit compressibility delta),
//   - zero and subnormal fractions (ICEFRAC, CLOUD, QRAIN),
//   - extreme magnitudes (AEROD large values, QRAIN tiny values) that make
//     posit<32,3> conversion lossy in the documented proportions.
//
// Generators are deterministic: the same name and length always produce the
// same bytes, so every experiment is reproducible.
package sdrbench

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// DatasetInfo is a Table 2 row.
type DatasetInfo struct {
	Name        string
	Description string
}

// Datasets returns the seven SDRBench datasets (Table 2).
func Datasets() []DatasetInfo {
	return []DatasetInfo{
		{"CESM", "Climate simulation"},
		{"EXAALT", "Molecular dynamics simulation"},
		{"HACC", "Cosmology particle simulation"},
		{"ISABEL", "Weather simulation"},
		{"NYX", "Cosmology N-body simulation"},
		{"QMC", "Many-body ab initio Quantum Monte Carlo"},
		{"SCALE", "Climate simulation"},
	}
}

// InputSpec is a Table 3 row plus its generator.
type InputSpec struct {
	Name      string // original SDRBench file name
	Dataset   string
	PaperSize string // size of the original file as reported in Table 3
	// Lossless documents whether the paper found the posit<32,3>
	// conversion of this input to be exact.
	Lossless bool
	gen      func(rng *rand.Rand, out []float32)
}

// DefaultValues is the default number of float32 values per generated
// input (4 MiB of data), a laptop-scale stand-in for the original sizes.
const DefaultValues = 1 << 20

// Inputs returns the 14 evaluated inputs (Table 3) in table order.
func Inputs() []InputSpec {
	return []InputSpec{
		{"AEROD_v_1_1800_3600.f32", "CESM", "25 MB", false, genAEROD},
		{"ICEFRAC_1_1800_3600.f32", "CESM", "25 MB", false, genICEFRAC},
		{"dataset1.y.f32.dat", "EXAALT", "65 MB", true, genEXAALTy},
		{"dataset2.x.f32.dat", "EXAALT", "342 MB", true, genEXAALTx},
		{"vx.f32", "HACC", "1.1 GB", true, genHACCvx},
		{"xx.f32", "HACC", "1.1 GB", true, genHACCxx},
		{"CLOUDf48.bin.f32", "ISABEL", "96 MB", false, genCLOUD},
		{"QRAINf48.bin.f32", "ISABEL", "96 MB", false, genQRAIN},
		{"baryon_density.f32", "NYX", "512 MB", false, genBaryon},
		{"velocity_x.f32", "NYX", "512 MB", false, genVelocity},
		{"einspline.f32", "QMC", "602 MB", true, genEinspline},
		{"einspline.pre.f32", "QMC", "602 MB", true, genEinsplinePre},
		{"PRES-98x1200x1200.f32", "SCALE", "539 MB", true, genPRES},
		{"RH-98x1200x1200.f32", "SCALE", "539 MB", true, genRH},
	}
}

// ByName returns the named input spec.
func ByName(name string) (InputSpec, error) {
	for _, in := range Inputs() {
		if in.Name == name {
			return in, nil
		}
	}
	return InputSpec{}, fmt.Errorf("sdrbench: unknown input %q", name)
}

// Generate produces n float32 values for this input, deterministically.
func (s InputSpec) Generate(n int) []float32 {
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	out := make([]float32, n)
	s.gen(rng, out)
	return out
}

// --- generator building blocks ---------------------------------------------

// smooth fills out with a sum of low-frequency sines plus proportional
// noise: the classic structure of simulated continuum fields.
func smooth(rng *rand.Rand, out []float32, base, amp, noise float64) {
	const waves = 6
	freq := make([]float64, waves)
	phase := make([]float64, waves)
	weight := make([]float64, waves)
	for j := range freq {
		freq[j] = math.Pow(2, float64(j)) * (1 + rng.Float64())
		phase[j] = rng.Float64() * 2 * math.Pi
		weight[j] = 1 / math.Pow(2, float64(j))
	}
	n := float64(len(out))
	for i := range out {
		x := float64(i) / n * 2 * math.Pi
		v := 0.0
		for j := range freq {
			v += weight[j] * math.Sin(freq[j]*x+phase[j])
		}
		out[i] = float32(base + amp*v + noise*amp*rng.NormFloat64())
	}
}

// randomWalk fills out with a bounded random walk (molecular-dynamics-like
// coordinates: neighbors correlate, mantissas are dense).
func randomWalk(rng *rand.Rand, out []float32, start, step, lo, hi float64) {
	v := start
	for i := range out {
		v += step * rng.NormFloat64()
		if v < lo {
			v = lo + (lo - v)
		}
		if v > hi {
			v = hi - (v - hi)
		}
		out[i] = float32(v)
	}
}

// logUniform returns a value with magnitude log-uniform in [2^loExp, 2^hiExp)
// and a dense mantissa.
func logUniform(rng *rand.Rand, loExp, hiExp float64) float64 {
	e := loExp + rng.Float64()*(hiExp-loExp)
	return math.Pow(2, e) * (1 + rng.Float64())
}

// quantize truncates each value's mantissa to keepBits explicit bits,
// modelling the limited effective precision of packed model output and
// instrument data. Real SDRBench fields compress far better than fully
// dense mantissas would suggest precisely because of this structure, and
// it is what lets block-sorting compressors (bzip2) shine on them.
func quantize(out []float32, keepBits uint) {
	mask := uint32(0xFFFFFFFF) << (23 - keepBits)
	for i, v := range out {
		out[i] = math.Float32frombits(math.Float32bits(v) & mask)
	}
}

// quantizeOne truncates a single value's mantissa to keepBits.
func quantizeOne(v float32, keepBits uint) float32 {
	mask := uint32(0xFFFFFFFF) << (23 - keepBits)
	return math.Float32frombits(math.Float32bits(v) & mask)
}

// floorTiny zeroes values whose magnitude is below 2^-24. Generators for
// inputs the paper reports as converting losslessly apply it so that a
// stray near-zero crossing cannot fall outside the posit<32,3> exact
// window and break the documented 100% precision.
func floorTiny(out []float32) {
	const tiny = 1.0 / (1 << 24)
	for i, v := range out {
		if v != 0 && math.Abs(float64(v)) < tiny {
			out[i] = 0
		}
	}
}

// --- the 14 inputs -----------------------------------------------------------

// genAEROD: CESM aerosol optical depth. The paper reports many extremely
// large absolute values; ~90% of values convert exactly to posit<32,3>.
// 90% of values sit within the posit-exact window (|exponent| <= 25); 10%
// are huge (2^60..2^120), far outside it.
func genAEROD(rng *rand.Rand, out []float32) {
	smooth(rng, out, 40, 30, 0.02)
	quantize(out, 12) // packed climate-model output
	for i := range out {
		if rng.Float64() < 0.10 {
			out[i] = float32(logUniform(rng, 60, 120))
		} else if rng.Float64() < 0.05 {
			out[i] *= float32(logUniform(rng, 10, 20)) // moderately large tail
		}
	}
}

// genICEFRAC: CESM sea-ice fraction in [0,1]: large exact-zero regions
// (open ocean), saturated regions near 1, smooth margins, and a sprinkle of
// tiny (even subnormal) fractions that are lossy under posit conversion.
func genICEFRAC(rng *rand.Rand, out []float32) {
	field := make([]float32, len(out))
	smooth(rng, field, 0.2, 0.9, 0.01)
	quantize(field, 12) // packed climate-model output
	for i, v := range field {
		switch {
		case v <= 0:
			out[i] = 0
		case v >= 1:
			out[i] = 1
		default:
			out[i] = v
		}
	}
	for i := range out {
		if out[i] == 0 && rng.Float64() < 0.04 {
			// Trace ice: tiny magnitudes far below the posit-exact window.
			out[i] = float32(logUniform(rng, -140, -90))
		}
	}
}

// genEXAALTy: molecular-dynamics coordinate stream: per-atom random walk,
// values O(10^1..10^2), exact under posit<32,3>.
func genEXAALTy(rng *rand.Rand, out []float32) {
	randomWalk(rng, out, 50, 0.4, 0, 100)
	floorTiny(out)
}

// genEXAALTx: a second, larger MD input with coarser structure.
func genEXAALTx(rng *rand.Rand, out []float32) {
	randomWalk(rng, out, 120, 1.5, 0, 250)
	floorTiny(out)
}

// genHACCvx: cosmology particle velocities: near-Gaussian, spatially
// uncorrelated at file order, magnitudes O(10^2..10^3).
func genHACCvx(rng *rand.Rand, out []float32) {
	for i := range out {
		out[i] = float32(rng.NormFloat64() * 350)
	}
	floorTiny(out)
}

// genHACCxx: particle positions, uniform across the box with slight
// clustering; neighbor values uncorrelated, dense mantissas.
func genHACCxx(rng *rand.Rand, out []float32) {
	for i := range out {
		base := rng.Float64() * 256
		out[i] = float32(base + rng.NormFloat64()*0.01)
	}
	floorTiny(out)
}

// genCLOUD: Hurricane Isabel cloud water mixing ratio: overwhelmingly zero
// (clear air), small positive values in cloud bands, a few tiny values
// below the posit-exact window.
func genCLOUD(rng *rand.Rand, out []float32) {
	field := make([]float32, len(out))
	smooth(rng, field, -0.4, 1.0, 0.02)
	for i, v := range field {
		if v <= 0 {
			out[i] = 0
			continue
		}
		// In-cloud: magnitudes ~2^-20..2^-10 (g/kg scale), with the
		// limited precision of assimilated observations.
		out[i] = quantizeOne(float32(float64(v)*logUniform(rng, -20, -10)), 14)
		if rng.Float64() < 0.02 {
			out[i] = float32(logUniform(rng, -44, -34)) // lossy tail
		}
	}
}

// genQRAIN: rain mixing ratio: many zeros plus tiny magnitudes spanning
// 2^-52..2^-23, reproducing the paper's 73%-precise conversion (values
// below 2^-32 lose mantissa bits to the regime).
func genQRAIN(rng *rand.Rand, out []float32) {
	field := make([]float32, len(out))
	smooth(rng, field, -0.1, 1.0, 0.02)
	for i, v := range field {
		if v <= 0 {
			out[i] = 0 // ~45% zeros
			continue
		}
		out[i] = float32(logUniform(rng, -52, -24))
	}
}

// genBaryon: NYX baryon density: positive, log-normal-ish with a long
// upper tail; a small fraction of values exceed the exact window.
func genBaryon(rng *rand.Rand, out []float32) {
	field := make([]float32, len(out))
	smooth(rng, field, 0, 1.5, 0.05)
	for i, v := range field {
		out[i] = quantizeOne(float32(math.Exp(float64(v))*(0.5+rng.Float64())), 16)
		if rng.Float64() < 0.01 {
			out[i] *= float32(logUniform(rng, 30, 45)) // dense halo tail
		}
	}
}

// genVelocity: NYX velocity_x: symmetric about zero, magnitudes up to
// ~10^7, a sliver beyond the exact window.
func genVelocity(rng *rand.Rand, out []float32) {
	smooth(rng, out, 0, 8.0e6, 0.1)
	for i := range out {
		out[i] += float32(rng.NormFloat64() * 4e5)
		if rng.Float64() < 0.005 {
			out[i] = float32(logUniform(rng, 33, 40)) // shocked region
		}
	}
}

// genEinspline: QMC B-spline coefficients: very smooth, near-unit scale.
func genEinspline(rng *rand.Rand, out []float32) {
	smooth(rng, out, 0.5, 0.5, 0.001)
	quantize(out, 16) // spline coefficients tabulated at single precision
	floorTiny(out)
}

// genEinsplinePre: the preprocessed variant: same structure, wider spread.
func genEinsplinePre(rng *rand.Rand, out []float32) {
	smooth(rng, out, 0, 1.2, 0.005)
	quantize(out, 14)
	floorTiny(out)
}

// genPRES: SCALE-LETKF pressure: smooth, ~10^4..10^5 Pa. Values straddle
// 2^16, which keeps posit<32,3> exact but makes posit<32,2> lossy — one of
// the reasons the paper uses es=3.
func genPRES(rng *rand.Rand, out []float32) {
	smooth(rng, out, 80000, 40000, 0.002)
	quantize(out, 12) // packed LETKF analysis output
	floorTiny(out)
}

// genRH: relative humidity in percent: smooth, 0..100.
func genRH(rng *rand.Rand, out []float32) {
	smooth(rng, out, 50, 45, 0.01)
	quantize(out, 12)
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
		if out[i] > 100 {
			out[i] = 100
		}
	}
	floorTiny(out)
}
