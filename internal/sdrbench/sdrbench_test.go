package sdrbench

import (
	"math"
	"testing"

	"positbench/internal/ieee"
	"positbench/internal/posit"
)

func TestTablesMatchPaper(t *testing.T) {
	ds := Datasets()
	if len(ds) != 7 {
		t.Fatalf("want 7 datasets, got %d", len(ds))
	}
	ins := Inputs()
	if len(ins) != 14 {
		t.Fatalf("want 14 inputs, got %d", len(ins))
	}
	// Two inputs per dataset.
	count := map[string]int{}
	for _, in := range ins {
		count[in.Dataset]++
	}
	for _, d := range ds {
		if count[d.Name] != 2 {
			t.Errorf("dataset %s has %d inputs, want 2", d.Name, count[d.Name])
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, in := range Inputs() {
		a := in.Generate(4096)
		b := in.Generate(4096)
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("%s: nondeterministic at %d", in.Name, i)
			}
		}
	}
}

func TestByName(t *testing.T) {
	in, err := ByName("vx.f32")
	if err != nil || in.Dataset != "HACC" {
		t.Fatalf("ByName: %v %+v", err, in)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("want error")
	}
}

func TestAllFinite(t *testing.T) {
	for _, in := range Inputs() {
		vals := in.Generate(1 << 15)
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite value at %d: %g", in.Name, i, v)
			}
		}
	}
}

// The generators must reproduce the paper's qualitative traits.
func TestInputTraits(t *testing.T) {
	const n = 1 << 16
	get := func(name string) []float32 {
		in, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return in.Generate(n)
	}
	zeroFrac := func(vs []float32) float64 {
		z := 0
		for _, v := range vs {
			if v == 0 {
				z++
			}
		}
		return float64(z) / float64(len(vs))
	}

	// ICEFRAC, CLOUD, QRAIN: many zeros (Figure 5 discussion).
	for _, name := range []string{"ICEFRAC_1_1800_3600.f32", "CLOUDf48.bin.f32", "QRAINf48.bin.f32"} {
		if zf := zeroFrac(get(name)); zf < 0.2 {
			t.Errorf("%s: zero fraction %.2f too low", name, zf)
		}
	}
	// HACC and EXAALT have essentially no zeros.
	for _, name := range []string{"vx.f32", "dataset1.y.f32.dat"} {
		if zf := zeroFrac(get(name)); zf > 0.01 {
			t.Errorf("%s: unexpected zeros: %.3f", name, zf)
		}
	}
	// AEROD: contains extremely large values.
	s := ieee.Summarize(get("AEROD_v_1_1800_3600.f32"))
	if s.MaxAbs < math.Ldexp(1, 60) {
		t.Errorf("AEROD max |v| too small: %g", s.MaxAbs)
	}
	// QRAIN: nonzero values are tiny.
	qs := ieee.Summarize(get("QRAINf48.bin.f32"))
	if qs.MinAbs > math.Ldexp(1, -16) || qs.MaxAbs > 1 {
		t.Errorf("QRAIN magnitudes out of profile: %g..%g", qs.MinAbs, qs.MaxAbs)
	}
	// Most values of near-1.0 inputs have biased exponent near 127
	// (Figure 5's dominant mode).
	var h ieee.Histogram
	h.AddSlice(get("einspline.f32"))
	if m := h.Mode(); m < 120 || m > 134 {
		t.Errorf("einspline exponent mode %d not near 127", m)
	}
}

// Posit conversion precision must land near the paper's Section 4.2
// numbers: lossless files at 100%, AEROD ~90%, QRAIN ~73%, es=3 geomean
// far above es=2.
func TestConversionPrecisionProfile(t *testing.T) {
	const n = 1 << 16
	es3 := posit.Posit32e3
	es2 := posit.Posit32
	var sumLog3, sumLog2 float64
	for _, in := range Inputs() {
		vals := in.Generate(n)
		p3 := es3.RoundtripStats(vals).PrecisePct()
		p2 := es2.RoundtripStats(vals).PrecisePct()
		sumLog3 += math.Log(p3)
		sumLog2 += math.Log(p2)
		if in.Lossless && p3 < 100 {
			t.Errorf("%s: declared lossless but %.2f%% precise under es=3", in.Name, p3)
		}
		switch in.Name {
		case "AEROD_v_1_1800_3600.f32":
			if p3 < 84 || p3 > 96 {
				t.Errorf("AEROD es=3 precision %.1f%%, want ~90%%", p3)
			}
		case "QRAINf48.bin.f32":
			if p3 < 65 || p3 > 81 {
				t.Errorf("QRAIN es=3 precision %.1f%%, want ~73%%", p3)
			}
		}
	}
	g3 := math.Exp(sumLog3 / 14)
	g2 := math.Exp(sumLog2 / 14)
	if g3 < 93 || g3 > 99.5 {
		t.Errorf("es=3 geomean precision %.1f%%, want ~97%%", g3)
	}
	if g2 < 75 || g2 > 92 {
		t.Errorf("es=2 geomean precision %.1f%%, want ~86%%", g2)
	}
	if g3-g2 < 5 {
		t.Errorf("es=3 (%.1f%%) should clearly beat es=2 (%.1f%%)", g3, g2)
	}
}
