package sdrbench

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"positbench/internal/posit"
)

func TestLoadHappyPath(t *testing.T) {
	want := Inputs()[0].Generate(257)
	data := posit.EncodeFloat32LE(want)
	got, err := Load(bytes.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("value %d diverged", i)
		}
	}
}

func TestLoadEmptyInput(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil), 0); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("empty stream: %v, want ErrEmptyInput", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.f32")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("empty file: %v, want ErrEmptyInput", err)
	}
}

func TestLoadOddByteLength(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 4*100 + 1, 4*100 + 3} {
		data := make([]byte, n)
		if _, err := Load(bytes.NewReader(data), 0); !errors.Is(err, ErrMisaligned) {
			t.Fatalf("%d bytes: %v, want ErrMisaligned", n, err)
		}
	}
}

func TestLoadTruncatedFile(t *testing.T) {
	// A real stream cut mid-value: 10 floats minus 2 bytes.
	full := posit.EncodeFloat32LE(Inputs()[1].Generate(10))
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.f32")
	if err := os.WriteFile(path, full[:len(full)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("truncated file: %v, want ErrMisaligned", err)
	}
	// Truncation at a value boundary is undetectable from length alone and
	// must load the remaining whole values.
	if err := os.WriteFile(path, full[:len(full)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("loaded %d values, want 9", len(got))
	}
}

func TestLoadSizeLimit(t *testing.T) {
	data := posit.EncodeFloat32LE(make([]float32, 100)) // 400 bytes
	if _, err := Load(bytes.NewReader(data), 399); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over limit: %v, want ErrTooLarge", err)
	}
	got, err := Load(bytes.NewReader(data), 400)
	if err != nil {
		t.Fatalf("exactly at limit: %v", err)
	}
	if len(got) != 100 {
		t.Fatalf("loaded %d values", len(got))
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.f32")); err == nil {
		t.Fatal("missing file must error")
	}
}
