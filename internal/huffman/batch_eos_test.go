package huffman

import (
	"math/rand"
	"testing"

	"positbench/internal/bitio"
)

// DecodeBatch's fast loop bails out once fewer than MaxBits of lookahead
// remain and hands the tail to the Peek/Consume path, which sees the
// reader's zero-padded lookahead. These tests pin the handoff: symbols
// whose codes straddle the final refill, streams that end exactly on a
// symbol boundary, and agreement with symbol-at-a-time Decode on random
// code sets near EOS.

// encodeStream writes syms with enc and returns the raw bitstream.
func encodeStream(enc *Encoder, syms []int) []byte {
	w := bitio.NewWriter(64 + len(syms))
	for _, s := range syms {
		enc.Encode(w, s)
	}
	return w.Bytes()
}

// buildSet returns an encoder/decoder pair for the given frequencies.
func buildSet(t *testing.T, freqs []int, maxBits int) (*Encoder, *Decoder) {
	t.Helper()
	lengths, err := BuildLengths(freqs, maxBits)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	return enc, dec
}

// TestDecodeBatchFinalRefillStraddle decodes a stream sized so the last
// symbols sit in the final sub-MaxBits lookahead window: every prefix
// length of the symbol stream must batch-decode exactly.
func TestDecodeBatchFinalRefillStraddle(t *testing.T) {
	// Skewed frequencies give a mix of short and max-length codes, so the
	// final window can end mid-symbol for some prefix.
	freqs := []int{4096, 1024, 256, 64, 16, 4, 1, 1, 1, 1}
	enc, dec := buildSet(t, freqs, MaxBits)
	rng := rand.New(rand.NewSource(42))
	syms := make([]int, 200)
	for i := range syms {
		syms[i] = rng.Intn(len(freqs))
	}
	for n := 1; n <= len(syms); n++ {
		stream := encodeStream(enc, syms[:n])
		r := bitio.NewReader(stream)
		dst := make([]uint16, n)
		k, sawStop, err := dec.DecodeBatch(r, dst, -1) // no stop symbol
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if sawStop {
			t.Fatalf("n=%d: phantom stop symbol", n)
		}
		if k != n {
			t.Fatalf("n=%d: decoded %d symbols", n, k)
		}
		for i := range dst {
			if int(dst[i]) != syms[i] {
				t.Fatalf("n=%d: symbol %d = %d, want %d", n, i, dst[i], syms[i])
			}
		}
	}
}

// TestDecodeBatchZeroPaddedEOS checks the zero-padding hazard: after the
// real bits run out the lookahead reads as zeros, which alias the
// all-zero (shortest) canonical code. A batch asked for more symbols than
// the stream holds must either error or stop at the stop symbol — it must
// not fabricate trailing symbols past an EOS marker.
func TestDecodeBatchZeroPaddedEOS(t *testing.T) {
	// Symbol 0 gets the all-zeros code; the last alphabet slot acts as EOS.
	freqs := []int{4096, 64, 16, 4, 1}
	eos := len(freqs) - 1
	enc, dec := buildSet(t, freqs, MaxBits)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		syms := make([]int, n)
		for i := range syms {
			syms[i] = rng.Intn(eos) // body never contains EOS
		}
		stream := encodeStream(enc, append(syms, eos))
		r := bitio.NewReader(stream)
		dst := make([]uint16, n+40) // ask for far more than the stream holds
		k, sawStop, err := dec.DecodeBatch(r, dst, eos)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !sawStop {
			t.Fatalf("trial %d: EOS not seen (decoded %d of %d+1)", trial, k, n)
		}
		if k != n {
			t.Fatalf("trial %d: decoded %d symbols before EOS, want %d", trial, k, n)
		}
		for i := 0; i < n; i++ {
			if int(dst[i]) != syms[i] {
				t.Fatalf("trial %d: symbol %d = %d, want %d", trial, i, dst[i], syms[i])
			}
		}
	}
}

// TestDecodeBatchMatchesDecode cross-checks DecodeBatch against the
// symbol-at-a-time Decode on random code sets, with stream lengths chosen
// to exercise the EOS boundary.
func TestDecodeBatchMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		alpha := 2 + rng.Intn(300)
		freqs := make([]int, alpha)
		for i := range freqs {
			// Exponential-ish spread yields code lengths from 1 bit to the
			// limit; some symbols get zero frequency (no code).
			if rng.Intn(4) == 0 {
				continue
			}
			freqs[i] = 1 << rng.Intn(14)
		}
		// Ensure at least two coded symbols.
		freqs[0] |= 1
		freqs[alpha-1] |= 1
		enc, dec := buildSet(t, freqs, MaxBits)
		coded := make([]int, 0, alpha)
		for s, f := range freqs {
			if f > 0 {
				coded = append(coded, s)
			}
		}
		n := 1 + rng.Intn(80)
		syms := make([]int, n)
		for i := range syms {
			syms[i] = coded[rng.Intn(len(coded))]
		}
		stream := encodeStream(enc, syms)

		// Reference: one symbol at a time.
		ref := bitio.NewReader(stream)
		for i := 0; i < n; i++ {
			got, err := dec.Decode(ref)
			if err != nil {
				t.Fatalf("trial %d: Decode symbol %d: %v", trial, i, err)
			}
			if got != syms[i] {
				t.Fatalf("trial %d: Decode symbol %d = %d, want %d", trial, i, got, syms[i])
			}
		}

		// Batch, split at a random point so the second call starts inside
		// whatever lookahead state the first left behind.
		r := bitio.NewReader(stream)
		dst := make([]uint16, n)
		split := rng.Intn(n + 1)
		k1, saw1, err := dec.DecodeBatch(r, dst[:split], -1)
		if err != nil || saw1 {
			t.Fatalf("trial %d: first batch: k=%d saw=%v err=%v", trial, k1, saw1, err)
		}
		k2, saw2, err := dec.DecodeBatch(r, dst[split:], -1)
		if err != nil || saw2 {
			t.Fatalf("trial %d: second batch: k=%d saw=%v err=%v", trial, k2, saw2, err)
		}
		if k1+k2 != n {
			t.Fatalf("trial %d: decoded %d+%d symbols, want %d", trial, k1, k2, n)
		}
		for i := range dst {
			if int(dst[i]) != syms[i] {
				t.Fatalf("trial %d: batch symbol %d = %d, want %d (split %d)", trial, i, dst[i], syms[i], split)
			}
		}
	}
}
