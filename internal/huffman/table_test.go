package huffman

import (
	"math/rand"
	"testing"

	"positbench/internal/bitio"
)

// deepLengths builds a table whose longest codes exceed rootBits, so Decode
// must exercise the canonical-walk fallback. Fibonacci frequencies give a
// maximally skewed tree.
func deepLengths(t *testing.T) []uint8 {
	t.Helper()
	freqs := make([]int, 24)
	a, b := 1, 1
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	lengths, err := BuildLengths(freqs, MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if int(maxLen) <= rootBits {
		t.Fatalf("test premise broken: maxLen %d does not exceed rootBits %d", maxLen, rootBits)
	}
	return lengths
}

// TestDecodeFastSlowAgree decodes the same stream with the table fast path
// and with the canonical walk alone, symbol by symbol.
func TestDecodeFastSlowAgree(t *testing.T) {
	lengths := deepLengths(t)
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	data := make([]int, 4096)
	for i := range data {
		// Skew toward low symbols (short codes) but hit every symbol so both
		// the root table and the fallback fire.
		data[i] = rng.Intn(rng.Intn(len(lengths)) + 1)
	}
	w := bitio.NewWriter(4096)
	for _, s := range data {
		enc.Encode(w, s)
	}
	dec, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	fast := bitio.NewReader(w.Bytes())
	slow := bitio.NewReader(w.Bytes())
	for i, want := range data {
		gf, err := dec.Decode(fast)
		if err != nil {
			t.Fatalf("fast symbol %d: %v", i, err)
		}
		gs, err := dec.decodeSlow(slow)
		if err != nil {
			t.Fatalf("slow symbol %d: %v", i, err)
		}
		if gf != want || gs != want {
			t.Fatalf("symbol %d: fast=%d slow=%d want %d", i, gf, gs, want)
		}
	}
}

// TestDecodeTruncatedLongCode feeds the decoder a prefix of a long code so
// the zero-padded peek matches nothing valid and the walk must report EOF
// or corruption, never a bogus symbol.
func TestDecodeTruncatedLongCode(t *testing.T) {
	lengths := deepLengths(t)
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	deepest := 0
	for i, l := range lengths {
		if l > lengths[deepest] {
			deepest = i
		}
	}
	w := bitio.NewWriter(8)
	enc.Encode(w, deepest)
	full := w.Bytes()
	dec, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	// Whole code decodes; any strict byte-prefix must fail cleanly. (The
	// deepest code spans >8 bits, so every proper byte prefix truncates it.)
	if got, err := dec.Decode(bitio.NewReader(full)); err != nil || got != deepest {
		t.Fatalf("full: got %d,%v want %d", got, err, deepest)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, err := dec.Decode(bitio.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", cut)
		}
	}
}

// TestDecodeNoAllocs locks in the zero-allocation steady state of table
// decode (satellite allocation-regression gate).
func TestDecodeNoAllocs(t *testing.T) {
	freqs := make([]int, 256)
	rng := rand.New(rand.NewSource(22))
	data := make([]int, 8192)
	for i := range data {
		s := rng.Intn(64)
		data[i] = s
		freqs[s]++
	}
	lengths, err := BuildLengths(freqs, MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := NewEncoder(lengths)
	w := bitio.NewWriter(len(data))
	for _, s := range data {
		enc.Encode(w, s)
	}
	buf := w.Bytes()
	dec, _ := NewDecoder(lengths)
	r := bitio.NewReader(buf)
	n := testing.AllocsPerRun(50, func() {
		r.Reset(buf)
		for range data {
			if _, err := dec.Decode(r); err != nil {
				t.Fatal(err)
			}
		}
	})
	if n != 0 {
		t.Fatalf("Decode allocates %v per run, want 0", n)
	}
}
