// Package huffman implements canonical, length-limited Huffman coding over
// arbitrary alphabets. It is the entropy stage of the bzip2-class and
// zstd-class codecs and of LC's terminal HUF component.
package huffman

import (
	"container/heap"
	"fmt"
	"sort"

	"positbench/internal/bitio"
	"positbench/internal/compress"
)

// MaxBits is the default code-length limit.
const MaxBits = 15

// BuildLengths computes near-optimal code lengths (<= maxBits) for the given
// symbol frequencies. Symbols with zero frequency get length 0 (no code).
// If only one symbol has nonzero frequency it is assigned length 1.
func BuildLengths(freqs []int, maxBits int) ([]uint8, error) {
	if maxBits < 1 || maxBits > 30 {
		return nil, fmt.Errorf("huffman: maxBits %d out of range", maxBits)
	}
	n := len(freqs)
	if n == 0 {
		return nil, fmt.Errorf("huffman: empty alphabet")
	}
	if n > 1<<maxBits {
		return nil, fmt.Errorf("huffman: alphabet size %d exceeds 2^%d", n, maxBits)
	}
	work := make([]int, n)
	copy(work, freqs)
	for {
		lengths, maxLen := buildOnce(work)
		if maxLen <= maxBits {
			return lengths, nil
		}
		// Flatten the distribution and retry; this converges because all
		// frequencies eventually reach 1, which yields a balanced tree of
		// depth ceil(log2(n)) <= maxBits.
		for i, f := range work {
			if f > 0 {
				work[i] = (f + 1) / 2
			}
		}
	}
}

type node struct {
	freq        int
	sym         int // >= 0 for leaves, -1 for internal
	left, right int // node indices
	order       int // tie-break for determinism
}

type nodeHeap struct {
	nodes []node
	idx   []int
}

func (h *nodeHeap) Len() int { return len(h.idx) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.idx[i]], h.nodes[h.idx[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.order < b.order
}
func (h *nodeHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *nodeHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

func buildOnce(freqs []int) ([]uint8, int) {
	n := len(freqs)
	lengths := make([]uint8, n)
	h := &nodeHeap{}
	for i, f := range freqs {
		if f > 0 {
			h.nodes = append(h.nodes, node{freq: f, sym: i, left: -1, right: -1, order: i})
			h.idx = append(h.idx, len(h.nodes)-1)
		}
	}
	switch len(h.idx) {
	case 0:
		return lengths, 0
	case 1:
		lengths[h.nodes[h.idx[0]].sym] = 1
		return lengths, 1
	}
	heap.Init(h)
	order := n
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.nodes = append(h.nodes, node{
			freq: h.nodes[a].freq + h.nodes[b].freq,
			sym:  -1, left: a, right: b, order: order,
		})
		order++
		heap.Push(h, len(h.nodes)-1)
	}
	root := h.idx[0]
	// Iterative depth assignment.
	type frame struct {
		node, depth int
	}
	stack := []frame{{root, 0}}
	maxLen := 0
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.nodes[fr.node]
		if nd.sym >= 0 {
			lengths[nd.sym] = uint8(fr.depth)
			if fr.depth > maxLen {
				maxLen = fr.depth
			}
			continue
		}
		stack = append(stack, frame{nd.left, fr.depth + 1}, frame{nd.right, fr.depth + 1})
	}
	return lengths, maxLen
}

// canonicalCodes assigns canonical codes (shorter codes first, ties by
// symbol order) from a length table.
func canonicalCodes(lengths []uint8) ([]uint32, error) {
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen == 0 {
		return make([]uint32, len(lengths)), nil
	}
	count := make([]int, maxLen+1)
	for _, l := range lengths {
		count[l]++
	}
	count[0] = 0
	next := make([]uint32, maxLen+2)
	code := uint32(0)
	for l := uint8(1); l <= maxLen; l++ {
		code = (code + uint32(count[l-1])) << 1
		next[l] = code
	}
	// Kraft check.
	var kraft uint64
	for _, l := range lengths {
		if l > 0 {
			kraft += 1 << (uint(maxLen) - uint(l))
		}
	}
	if kraft > 1<<uint(maxLen) {
		return nil, compress.Errorf(compress.ErrCorrupt, "huffman: over-subscribed length table")
	}
	codes := make([]uint32, len(lengths))
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		codes[sym] = next[l]
		next[l]++
	}
	return codes, nil
}

// Encoder emits canonical Huffman codes for symbols.
type Encoder struct {
	codes   []uint32
	lengths []uint8
}

// NewEncoder builds an encoder from a length table.
func NewEncoder(lengths []uint8) (*Encoder, error) {
	codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	return &Encoder{codes: codes, lengths: lengths}, nil
}

// Encode appends the code for sym to w.
func (e *Encoder) Encode(w *bitio.Writer, sym int) {
	w.WriteBits(uint64(e.codes[sym]), uint(e.lengths[sym]))
}

// CodeLen returns the code length of sym in bits (0 if sym has no code).
func (e *Encoder) CodeLen(sym int) int { return int(e.lengths[sym]) }

// rootBits is the width of the decoder's one-step lookup table: every code
// of length <= rootBits decodes with a single peek + table index. 2^11
// entries x 4 bytes = 8 KiB per table, built once per NewDecoder; codes
// longer than rootBits (rare by construction: canonical Huffman assigns
// long codes to rare symbols) fall back to the canonical walk.
const rootBits = 11

// Decoder decodes canonical Huffman codes.
type Decoder struct {
	maxLen    uint8
	rootBits  uint     // min(maxLen, rootBits): bits peeked per fast decode
	root      []uint32 // entry = sym<<4 | len; 0 = long code or invalid prefix
	firstCode []uint32 // first canonical code of each length
	firstSym  []int    // index into syms of the first symbol of each length
	counts    []int    // number of codes of each length
	syms      []int    // symbols in canonical order
}

// NewDecoder builds a decoder from a length table.
func NewDecoder(lengths []uint8) (*Decoder, error) {
	if _, err := canonicalCodes(lengths); err != nil {
		return nil, err
	}
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	d := &Decoder{
		maxLen:    maxLen,
		firstCode: make([]uint32, maxLen+1),
		firstSym:  make([]int, maxLen+1),
		counts:    make([]int, maxLen+1),
	}
	type symLen struct {
		sym int
		l   uint8
	}
	var sl []symLen
	for sym, l := range lengths {
		if l > 0 {
			sl = append(sl, symLen{sym, l})
			d.counts[l]++
		}
	}
	sort.Slice(sl, func(i, j int) bool {
		if sl[i].l != sl[j].l {
			return sl[i].l < sl[j].l
		}
		return sl[i].sym < sl[j].sym
	})
	for _, s := range sl {
		d.syms = append(d.syms, s.sym)
	}
	code := uint32(0)
	symIdx := 0
	for l := uint8(1); l <= maxLen; l++ {
		if l > 1 {
			code = (code + uint32(d.counts[l-1])) << 1
		}
		d.firstCode[l] = code
		d.firstSym[l] = symIdx
		symIdx += d.counts[l]
	}
	d.buildRoot(lengths)
	return d, nil
}

// buildRoot fills the one-step lookup table: for each code of length
// l <= d.rootBits, every rootBits-wide bit pattern starting with that code
// maps to (sym, l). Prefixes of longer codes and junk patterns stay 0 and
// take the canonical-walk fallback. Alphabets too large for the packed
// entry layout (never hit by the codecs: symbols must fit 28 bits) simply
// skip the table.
func (d *Decoder) buildRoot(lengths []uint8) {
	if d.maxLen == 0 || len(lengths) > 1<<28 {
		return
	}
	rb := uint(rootBits)
	if uint(d.maxLen) < rb {
		rb = uint(d.maxLen)
	}
	d.rootBits = rb
	d.root = make([]uint32, 1<<rb)
	code := uint32(0)
	symIdx := 0
	for l := uint8(1); l <= d.maxLen; l++ {
		if l > 1 {
			code = (code + uint32(d.counts[l-1])) << 1
		}
		if uint(l) <= rb {
			span := uint(1) << (rb - uint(l)) // table slots per code
			for i := 0; i < d.counts[l]; i++ {
				sym := d.syms[symIdx+i]
				entry := uint32(sym)<<4 | uint32(l)
				base := uint((code + uint32(i))) << (rb - uint(l))
				slots := d.root[base : base+span]
				for j := range slots {
					slots[j] = entry
				}
			}
		}
		symIdx += d.counts[l]
	}
}

// Decode reads one symbol from r. Codes of length <= rootBits resolve with
// one PeekBits and a table index; longer codes (and corrupt prefixes) fall
// back to the canonical walk.
func (d *Decoder) Decode(r *bitio.Reader) (int, error) {
	if d.root != nil {
		if e := d.root[r.PeekBits(d.rootBits)]; e != 0 {
			// The peek is zero-padded at end of stream, so a matched entry
			// may claim more bits than remain; Consume detects that.
			if err := r.Consume(uint(e & 15)); err != nil {
				return 0, err
			}
			return int(e >> 4), nil
		}
	}
	return d.decodeSlow(r)
}

// DecodeBatch decodes symbols into dst until dst is full or the stop symbol
// is decoded (stop is consumed but not stored). It returns the number of
// symbols stored and whether stop ended the batch. One call replaces a
// per-symbol Decode loop, keeping the root-table lookup and the bit reader
// hot across an entire run of symbols.
func (d *Decoder) DecodeBatch(r *bitio.Reader, dst []uint16, stop int) (int, bool, error) {
	k := 0
	root, rb := d.root, d.rootBits
	// Fast section: decode from the lookahead word in registers, settling
	// consumed bits with one Drop per refill instead of a PeekBits+Consume
	// method-call pair per symbol. With >= 57 bits per refill and codes of
	// at most MaxBits, several symbols decode per iteration. The guard
	// nb >= MaxBits guarantees any root entry's length fits the valid bits,
	// so Drop never overruns; near end of stream (nb < MaxBits) the loop
	// below takes over with its zero-padding-aware Peek/Consume handling.
	if root != nil {
		for k < len(dst) {
			w, nb := r.Lookahead()
			if nb < MaxBits {
				break
			}
			n0 := nb
			long := false
			for nb >= MaxBits && k < len(dst) {
				e := root[w>>(64-rb)]
				if e == 0 {
					long = true
					break
				}
				w <<= e & 15
				nb -= uint(e & 15)
				s := int(e >> 4)
				if s == stop {
					r.Drop(n0 - nb)
					return k, true, nil
				}
				dst[k] = uint16(s)
				k++
			}
			r.Drop(n0 - nb)
			if long {
				s, err := d.decodeSlow(r)
				if err != nil {
					return k, false, err
				}
				if s == stop {
					return k, true, nil
				}
				dst[k] = uint16(s)
				k++
			}
		}
	}
	for k < len(dst) {
		var s int
		if root != nil {
			if e := root[r.PeekBits(rb)]; e != 0 {
				if err := r.Consume(uint(e & 15)); err != nil {
					return k, false, err
				}
				s = int(e >> 4)
			} else {
				var err error
				if s, err = d.decodeSlow(r); err != nil {
					return k, false, err
				}
			}
		} else {
			var err error
			if s, err = d.decodeSlow(r); err != nil {
				return k, false, err
			}
		}
		if s == stop {
			return k, true, nil
		}
		dst[k] = uint16(s)
		k++
	}
	return k, false, nil
}

// decodeSlow is the canonical bit-by-bit walk, used for codes longer than
// rootBits and for invalid input.
func (d *Decoder) decodeSlow(r *bitio.Reader) (int, error) {
	var code uint32
	for l := uint8(1); l <= d.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(b)
		if d.counts[l] > 0 && code < d.firstCode[l]+uint32(d.counts[l]) && code >= d.firstCode[l] {
			return d.syms[d.firstSym[l]+int(code-d.firstCode[l])], nil
		}
	}
	return 0, compress.Errorf(compress.ErrCorrupt, "huffman: invalid code")
}

// WriteLengths serializes a length table compactly: 4 bits per nonzero
// length, with zero runs escaped as 0 followed by an 8-bit (run-1) count.
// Lengths above 15 are not supported by this serialization.
func WriteLengths(w *bitio.Writer, lengths []uint8) error {
	for i := 0; i < len(lengths); {
		l := lengths[i]
		if l > 15 {
			return fmt.Errorf("huffman: length %d exceeds serialization limit", l)
		}
		if l != 0 {
			w.WriteBits(uint64(l), 4)
			i++
			continue
		}
		run := 1
		for i+run < len(lengths) && lengths[i+run] == 0 && run < 256 {
			run++
		}
		w.WriteBits(0, 4)
		w.WriteBits(uint64(run-1), 8)
		i += run
	}
	return nil
}

// ReadLengths parses a table of the given alphabet size.
func ReadLengths(r *bitio.Reader, n int) ([]uint8, error) {
	lengths := make([]uint8, n)
	for i := 0; i < n; {
		v, err := r.ReadBits(4)
		if err != nil {
			return nil, err
		}
		if v != 0 {
			lengths[i] = uint8(v)
			i++
			continue
		}
		run, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		i += int(run) + 1
		if i > n {
			return nil, compress.Errorf(compress.ErrCorrupt, "huffman: zero run overflows alphabet")
		}
	}
	return lengths, nil
}
