package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"positbench/internal/bitio"
)

func roundtrip(t *testing.T, freqs []int, data []int, maxBits int) {
	t.Helper()
	lengths, err := BuildLengths(freqs, maxBits)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lengths {
		if int(l) > maxBits {
			t.Fatalf("length %d exceeds limit %d", l, maxBits)
		}
	}
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(1024)
	if err := WriteLengths(w, lengths); err != nil {
		t.Fatal(err)
	}
	for _, s := range data {
		enc.Encode(w, s)
	}
	r := bitio.NewReader(w.Bytes())
	gotLengths, err := ReadLengths(r, len(freqs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lengths {
		if gotLengths[i] != lengths[i] {
			t.Fatalf("length table mismatch at %d", i)
		}
	}
	dec, err := NewDecoder(gotLengths)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range data {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
}

func TestBasicRoundtrip(t *testing.T) {
	freqs := []int{10, 1, 5, 0, 3}
	data := []int{0, 1, 2, 4, 0, 0, 2, 1, 4, 0}
	roundtrip(t, freqs, data, MaxBits)
}

func TestSingleSymbol(t *testing.T) {
	freqs := []int{0, 7, 0}
	data := []int{1, 1, 1, 1}
	roundtrip(t, freqs, data, MaxBits)
}

func TestTwoSymbols(t *testing.T) {
	roundtrip(t, []int{1000000, 1}, []int{0, 1, 0, 0, 1}, MaxBits)
}

func TestSkewedLengthLimit(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; the limiter must clamp.
	freqs := make([]int, 30)
	a, b := 1, 1
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	lengths, err := BuildLengths(freqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lengths {
		if l > 8 {
			t.Fatalf("limit violated: %d", l)
		}
		if l == 0 {
			t.Fatal("nonzero freq got no code")
		}
	}
	data := make([]int, 500)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = rng.Intn(30)
	}
	roundtrip(t, freqs, data, 8)
}

func TestLargeAlphabet(t *testing.T) {
	n := 1024
	freqs := make([]int, n)
	rng := rand.New(rand.NewSource(2))
	for i := range freqs {
		freqs[i] = rng.Intn(1000)
	}
	data := make([]int, 2000)
	for i := range data {
		for {
			s := rng.Intn(n)
			if freqs[s] > 0 {
				data[i] = s
				break
			}
		}
	}
	roundtrip(t, freqs, data, MaxBits)
}

func TestRandomRoundtripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		freqs := make([]int, 256)
		for _, b := range raw {
			freqs[b]++
		}
		data := make([]int, len(raw))
		for i, b := range raw {
			data[i] = int(b)
		}
		lengths, err := BuildLengths(freqs, MaxBits)
		if err != nil {
			return false
		}
		enc, err := NewEncoder(lengths)
		if err != nil {
			return false
		}
		w := bitio.NewWriter(len(raw))
		for _, s := range data {
			enc.Encode(w, s)
		}
		dec, err := NewDecoder(lengths)
		if err != nil {
			return false
		}
		r := bitio.NewReader(w.Bytes())
		for _, want := range data {
			got, err := dec.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := BuildLengths(nil, MaxBits); err == nil {
		t.Fatal("empty alphabet")
	}
	if _, err := BuildLengths([]int{1}, 0); err == nil {
		t.Fatal("bad maxBits")
	}
	if _, err := BuildLengths(make([]int, 1<<16+1), 15); err == nil {
		t.Fatal("alphabet too large for limit")
	}
	// Over-subscribed table must be rejected.
	if _, err := NewDecoder([]uint8{1, 1, 1}); err == nil {
		t.Fatal("over-subscribed table accepted")
	}
	if err := WriteLengths(bitio.NewWriter(8), []uint8{16}); err == nil {
		t.Fatal("length 16 must be rejected by serializer")
	}
	// Truncated input to Decode.
	dec, err := NewDecoder([]uint8{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(bitio.NewReader(nil)); err == nil {
		t.Fatal("want EOF error")
	}
	// Zero-run overflow in ReadLengths.
	w := bitio.NewWriter(8)
	w.WriteBits(0, 4)
	w.WriteBits(255, 8)
	if _, err := ReadLengths(bitio.NewReader(w.Bytes()), 3); err == nil {
		t.Fatal("zero-run overflow accepted")
	}
}

func TestOptimality(t *testing.T) {
	// For a dyadic distribution, Huffman must achieve exactly the entropy.
	freqs := []int{8, 4, 2, 1, 1}
	lengths, err := BuildLengths(freqs, MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{1, 2, 3, 4, 4}
	for i := range want {
		if lengths[i] != want[i] {
			t.Fatalf("lengths = %v, want %v", lengths, want)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]int, 1<<16)
	freqs := make([]int, 256)
	for i := range data {
		s := rng.Intn(64) // skewed
		data[i] = s
		freqs[s]++
	}
	lengths, _ := BuildLengths(freqs, MaxBits)
	enc, _ := NewEncoder(lengths)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(len(data))
		for _, s := range data {
			enc.Encode(w, s)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	data := make([]int, 1<<16)
	freqs := make([]int, 256)
	for i := range data {
		s := rng.Intn(64)
		data[i] = s
		freqs[s]++
	}
	lengths, _ := BuildLengths(freqs, MaxBits)
	enc, _ := NewEncoder(lengths)
	w := bitio.NewWriter(len(data))
	for _, s := range data {
		enc.Encode(w, s)
	}
	buf := w.Bytes()
	dec, _ := NewDecoder(lengths)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(buf)
		for range data {
			if _, err := dec.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
