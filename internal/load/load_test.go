package load

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"positbench/internal/server"
	"positbench/internal/trace"
)

// TestBurstAgainstPositd is the end-to-end observability check: drive a
// short positload burst at an in-process positd, then reconcile the
// server's /metrics against the generator's own bookkeeping and walk a
// complete span tree out of /debug/traces.
func TestBurstAgainstPositd(t *testing.T) {
	srv, err := server.New(server.Config{AccessLog: io.Discard, ChunkSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	dbg := httptest.NewServer(srv.DebugTracesHandler())
	defer dbg.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		QPS:      200,
		Duration: 1500 * time.Millisecond,
		// Exact /metrics reconciliation needs the grace tail: an op cut
		// off at the deadline is work the server counted but we did not.
		Grace:       2 * time.Second,
		MaxInflight: 8,
		Codecs:      []string{"gzip", "bzip2"},
		Values:      8192,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("burst failed: 5xx=%d transport=%d mismatches=%d",
			rep.Status5xx, rep.Transport, rep.Mismatches)
	}
	if rep.Started == 0 || rep.Status2xx == 0 {
		t.Fatalf("burst did no work: started=%d 2xx=%d", rep.Started, rep.Status2xx)
	}
	if rep.Convert.Ops == 0 {
		t.Error("workload mix produced no convert operations")
	}
	for _, label := range []string{"compress", "decompress"} {
		if rep.Latency[label].Count == 0 {
			t.Errorf("no %s latency observations", label)
		}
	}

	// /metrics must reconcile with the generator's own bookkeeping.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Inflight int64 `json:"inflight"`
		Engine   struct {
			QueueDepth     int64  `json:"queue_depth"`
			WorkersBusy    int64  `json:"workers_busy"`
			TracesCaptured uint64 `json:"traces_captured"`
		} `json:"engine"`
		Codecs map[string]map[string]struct {
			Ops      int64 `json:"ops"`
			BytesIn  int64 `json:"bytes_in"`
			BytesOut int64 `json:"bytes_out"`
		} `json:"codecs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Inflight != 0 {
		t.Errorf("inflight = %d after burst drained, want 0", snap.Inflight)
	}
	if snap.Engine.QueueDepth != 0 {
		t.Errorf("engine.queue_depth = %d after burst drained, want 0", snap.Engine.QueueDepth)
	}
	if snap.Engine.WorkersBusy != 0 {
		t.Errorf("engine.workers_busy = %d after burst drained, want 0", snap.Engine.WorkersBusy)
	}
	if snap.Engine.TracesCaptured == 0 {
		t.Error("no traces captured during the burst")
	}
	for codec, want := range rep.Compress {
		got := snap.Codecs[codec]["compress"]
		if got.Ops != want.Ops || got.BytesIn != want.BytesIn || got.BytesOut != want.BytesOut {
			t.Errorf("codec %s compress: server {ops %d in %d out %d} != generator {ops %d in %d out %d}",
				codec, got.Ops, got.BytesIn, got.BytesOut, want.Ops, want.BytesIn, want.BytesOut)
		}
	}
	// Decompress op counts must reconcile too (byte totals include both
	// wire formats, which the server accounts identically).
	var wantDecOps, gotDecOps int64
	for _, want := range rep.Decompress {
		wantDecOps += want.Ops
	}
	for _, ops := range snap.Codecs {
		gotDecOps += ops["decompress"].Ops
	}
	if gotDecOps != wantDecOps {
		t.Errorf("decompress ops: server %d != generator %d", gotDecOps, wantDecOps)
	}

	// /debug/traces must hold a complete span tree for a compress
	// roundtrip: root -> chunk -> {queue-wait, compress, frame-write},
	// with codec-internal stages under the worker compress span.
	dresp, err := http.Get(dbg.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var dump struct {
		Traces []*trace.Trace `json:"traces"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Traces) == 0 {
		t.Fatal("trace ring is empty after the burst")
	}
	var found bool
	for _, tr := range dump.Traces {
		if tr.Root.Name != "compress" {
			continue
		}
		for _, chunk := range tr.Root.Children {
			if chunk.Name != "chunk" {
				continue
			}
			stages := map[string]*trace.SpanData{}
			for _, st := range chunk.Children {
				stages[st.Name] = st
			}
			cs := stages["compress"]
			if stages["queue-wait"] == nil || cs == nil || stages["frame-write"] == nil {
				continue
			}
			inner := 0
			for range cs.Children {
				inner++
			}
			if inner >= 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no trace shows a complete chunk span tree (queue-wait + compress with >= 2 codec stages + frame-write)")
	}
}

// TestOpenLoopDropsUnderSaturation pins the open-loop property: with a
// stalled server and a tiny concurrency cap, excess ticks are dropped
// rather than queued.
func TestOpenLoopDropsUnderSaturation(t *testing.T) {
	release := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer stall.Close()
	defer close(release)

	rep, err := Run(context.Background(), Config{
		BaseURL:     stall.URL,
		QPS:         500,
		Duration:    400 * time.Millisecond,
		MaxInflight: 2,
		Values:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Errorf("stalled server produced no drops (ticks=%d started=%d)", rep.Ticks, rep.Started)
	}
	if rep.Started > int64(2+rep.Ticks/10) {
		t.Errorf("open loop queued behind a stalled server: started=%d with cap 2", rep.Started)
	}
}
