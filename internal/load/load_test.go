package load

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"positbench/internal/compress"
	"positbench/internal/server"
	"positbench/internal/trace"
)

// TestBurstAgainstPositd is the end-to-end observability check: drive a
// short positload burst at an in-process positd, then reconcile the
// server's /metrics against the generator's own bookkeeping and walk a
// complete span tree out of /debug/traces.
func TestBurstAgainstPositd(t *testing.T) {
	// The span shapes and scheduler counters under test only exist on the
	// scheduler path; on a 1-CPU runner every engine would take the serial
	// fallback, so force the scheduler (positd resolves workers in-process).
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	pre := compress.EngineSnapshot()
	srv, err := server.New(server.Config{AccessLog: io.Discard, ChunkSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	dbg := httptest.NewServer(srv.DebugTracesHandler())
	defer dbg.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		QPS:      200,
		Duration: 1500 * time.Millisecond,
		// Exact /metrics reconciliation needs the grace tail: an op cut
		// off at the deadline is work the server counted but we did not.
		Grace:       2 * time.Second,
		MaxInflight: 8,
		Codecs:      []string{"gzip", "bzip2"},
		Values:      8192,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("burst failed: 5xx=%d transport=%d mismatches=%d",
			rep.Status5xx, rep.Transport, rep.Mismatches)
	}
	if rep.Started == 0 || rep.Status2xx == 0 {
		t.Fatalf("burst did no work: started=%d 2xx=%d", rep.Started, rep.Status2xx)
	}
	if rep.Convert.Ops == 0 {
		t.Error("workload mix produced no convert operations")
	}
	for _, label := range []string{"compress", "decompress"} {
		if rep.Latency[label].Count == 0 {
			t.Errorf("no %s latency observations", label)
		}
	}

	// /metrics must reconcile with the generator's own bookkeeping.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Inflight int64 `json:"inflight"`
		Engine   struct {
			QueueDepth        int64   `json:"queue_depth"`
			WorkersBusy       int64   `json:"workers_busy"`
			TracesCaptured    uint64  `json:"traces_captured"`
			SchedSubmitted    int64   `json:"sched_submitted"`
			SchedLocalHits    int64   `json:"sched_local_hits"`
			SchedSteals       int64   `json:"sched_steals"`
			WorkerQueueDepths []int64 `json:"worker_queue_depths"`
			CompressChunks    int64   `json:"compress_chunks"`
			DecompressChunks  int64   `json:"decompress_chunks"`
		} `json:"engine"`
		Codecs map[string]map[string]struct {
			Ops      int64 `json:"ops"`
			BytesIn  int64 `json:"bytes_in"`
			BytesOut int64 `json:"bytes_out"`
		} `json:"codecs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Inflight != 0 {
		t.Errorf("inflight = %d after burst drained, want 0", snap.Inflight)
	}
	if snap.Engine.QueueDepth != 0 {
		t.Errorf("engine.queue_depth = %d after burst drained, want 0", snap.Engine.QueueDepth)
	}
	if snap.Engine.WorkersBusy != 0 {
		t.Errorf("engine.workers_busy = %d after burst drained, want 0", snap.Engine.WorkersBusy)
	}
	if snap.Engine.TracesCaptured == 0 {
		t.Error("no traces captured during the burst")
	}
	// Work-stealing scheduler reconciliation: every chunk submitted during
	// the burst was executed exactly once, from its own deque or stolen —
	// and with the burst fully drained (healthy run, grace tail) the chunk
	// counters account for every submission. Counters are process-global,
	// so everything is measured as a delta from the pre-burst snapshot.
	subs := snap.Engine.SchedSubmitted - pre.SchedSubmitted
	local := snap.Engine.SchedLocalHits - pre.SchedLocalHits
	steals := snap.Engine.SchedSteals - pre.SchedSteals
	if subs == 0 {
		t.Error("burst submitted no chunks to the work-stealing scheduler")
	}
	if local+steals != subs {
		t.Errorf("scheduler leaked work: local %d + stolen %d != submitted %d", local, steals, subs)
	}
	chunks := (snap.Engine.CompressChunks - pre.CompressChunks) +
		(snap.Engine.DecompressChunks - pre.DecompressChunks)
	if chunks != subs {
		t.Errorf("chunk counters disagree with the scheduler: %d chunks executed, %d submitted", chunks, subs)
	}
	for slot, depth := range snap.Engine.WorkerQueueDepths {
		if depth != 0 {
			t.Errorf("worker_queue_depths[%d] = %d after burst drained, want 0", slot, depth)
		}
	}
	for codec, want := range rep.Compress {
		got := snap.Codecs[codec]["compress"]
		if got.Ops != want.Ops || got.BytesIn != want.BytesIn || got.BytesOut != want.BytesOut {
			t.Errorf("codec %s compress: server {ops %d in %d out %d} != generator {ops %d in %d out %d}",
				codec, got.Ops, got.BytesIn, got.BytesOut, want.Ops, want.BytesIn, want.BytesOut)
		}
	}
	// Decompress op counts must reconcile too (byte totals include both
	// wire formats, which the server accounts identically).
	var wantDecOps, gotDecOps int64
	for _, want := range rep.Decompress {
		wantDecOps += want.Ops
	}
	for _, ops := range snap.Codecs {
		gotDecOps += ops["decompress"].Ops
	}
	if gotDecOps != wantDecOps {
		t.Errorf("decompress ops: server %d != generator %d", gotDecOps, wantDecOps)
	}

	// /debug/traces must hold a complete span tree for a compress
	// roundtrip: root -> chunk -> {queue-wait, compress, frame-write},
	// with codec-internal stages under the worker compress span.
	dresp, err := http.Get(dbg.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var dump struct {
		Traces []*trace.Trace `json:"traces"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Traces) == 0 {
		t.Fatal("trace ring is empty after the burst")
	}
	var found bool
	for _, tr := range dump.Traces {
		if tr.Root.Name != "compress" {
			continue
		}
		for _, chunk := range tr.Root.Children {
			if chunk.Name != "chunk" {
				continue
			}
			stages := map[string]*trace.SpanData{}
			for _, st := range chunk.Children {
				stages[st.Name] = st
			}
			cs := stages["compress"]
			if stages["queue-wait"] == nil || cs == nil || stages["frame-write"] == nil {
				continue
			}
			inner := 0
			for range cs.Children {
				inner++
			}
			if inner >= 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no trace shows a complete chunk span tree (queue-wait + compress with >= 2 codec stages + frame-write)")
	}
}

// TestAutoArmReconciles drives a mix that includes the -auto arm and
// reconciles the generator's per-chosen-codec auto bookkeeping exactly
// against the server's codecs.<name>.auto metrics and advisor counters.
func TestAutoArmReconciles(t *testing.T) {
	srv, err := server.New(server.Config{AccessLog: io.Discard, ChunkSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		QPS:      150,
		Duration: 1500 * time.Millisecond,
		// Exact reconciliation needs the grace tail, as in the burst test.
		Grace:        2 * time.Second,
		MaxInflight:  8,
		Codecs:       []string{"gzip"},
		ConvertEvery: -1,
		AutoEvery:    3,
		Values:       4096,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("auto burst failed: 5xx=%d transport=%d mismatches=%d",
			rep.Status5xx, rep.Transport, rep.Mismatches)
	}
	var autoOps int64
	for _, ob := range rep.Auto {
		autoOps += ob.Ops
	}
	if autoOps == 0 {
		t.Fatal("AutoEvery=3 produced no auto operations")
	}
	if rep.Latency["auto"].Count == 0 {
		t.Error("no auto latency observations")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Advisor struct {
			Decisions  int64            `json:"decisions"`
			CacheHits  int64            `json:"cache_hits"`
			Fallbacks  int64            `json:"fallbacks"`
			HitRatePct float64          `json:"hit_rate_pct"`
			Chosen     map[string]int64 `json:"chosen"`
		} `json:"advisor"`
		Codecs map[string]map[string]struct {
			Ops      int64 `json:"ops"`
			BytesIn  int64 `json:"bytes_in"`
			BytesOut int64 `json:"bytes_out"`
		} `json:"codecs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	// Every auto op the generator booked must appear, byte for byte, under
	// the chosen codec's "auto" op on the server.
	for codec, want := range rep.Auto {
		got := snap.Codecs[codec]["auto"]
		if got.Ops != want.Ops || got.BytesIn != want.BytesIn || got.BytesOut != want.BytesOut {
			t.Errorf("codec %s auto: server {ops %d in %d out %d} != generator {ops %d in %d out %d}",
				codec, got.Ops, got.BytesIn, got.BytesOut, want.Ops, want.BytesIn, want.BytesOut)
		}
	}
	// And nothing else: server-side auto ops across all codecs must equal
	// the generator's total, so no op was double-booked under "compress".
	var gotAutoOps int64
	for _, ops := range snap.Codecs {
		gotAutoOps += ops["auto"].Ops
	}
	if gotAutoOps != autoOps {
		t.Errorf("auto ops: server %d != generator %d", gotAutoOps, autoOps)
	}
	if snap.Advisor.Decisions != autoOps {
		t.Errorf("advisor decisions %d != auto ops %d", snap.Advisor.Decisions, autoOps)
	}
	var chosenTotal int64
	for _, n := range snap.Advisor.Chosen {
		chosenTotal += n
	}
	if chosenTotal != autoOps {
		t.Errorf("advisor chosen total %d != auto ops %d", chosenTotal, autoOps)
	}
	// The workload cycles a fixed body set, so repeats must hit the
	// decision cache once the set has been seen.
	if autoOps > 20 && snap.Advisor.CacheHits == 0 {
		t.Error("repeated bodies never hit the advisor cache")
	}
	if snap.Advisor.Fallbacks != 0 {
		t.Errorf("healthy traffic triggered %d advisor fallbacks", snap.Advisor.Fallbacks)
	}
}

// TestOpenLoopDropsUnderSaturation pins the open-loop property: with a
// stalled server and a tiny concurrency cap, excess ticks are dropped
// rather than queued.
func TestOpenLoopDropsUnderSaturation(t *testing.T) {
	release := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer stall.Close()
	defer close(release)

	rep, err := Run(context.Background(), Config{
		BaseURL:     stall.URL,
		QPS:         500,
		Duration:    400 * time.Millisecond,
		MaxInflight: 2,
		Values:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Errorf("stalled server produced no drops (ticks=%d started=%d)", rep.Ticks, rep.Started)
	}
	if rep.Started > int64(2+rep.Ticks/10) {
		t.Errorf("open loop queued behind a stalled server: started=%d with cap 2", rep.Started)
	}
}
