// Package load implements positbench's open-loop HTTP traffic generator:
// the core of cmd/positload and the soak-test driver. It fires a mixed
// codec/convert workload at a positd base URL at a target rate, keeps its
// own per-codec byte bookkeeping (so a test can reconcile the server's
// /metrics against ground truth), verifies every compress response by
// decompressing it back, and reports latency percentiles per operation.
//
// Open loop means the arrival rate does not slow down when the server
// does: ticks that find every worker slot busy are counted as dropped, not
// queued, so saturation shows up in the report instead of silently
// stretching the run.
package load

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"positbench/internal/posit"
	"positbench/internal/sdrbench"
	"positbench/internal/stats"
)

// Config tunes one Run.
type Config struct {
	// BaseURL is the positd root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// QPS is the target operation start rate. <= 0 selects 50.
	QPS float64
	// Duration bounds the run. <= 0 selects 5s. The context passed to Run
	// can end it earlier.
	Duration time.Duration
	// Grace extends the context past Duration so operations already in
	// flight when the last tick fires can finish instead of being cut off
	// mid-request. New ticks never start after Duration. 0 keeps the old
	// behavior (the deadline aborts in-flight work); a soak that wants to
	// reconcile its counters exactly against a server's /metrics needs a
	// Grace, because an aborted upload is work the server saw but the
	// generator never accounted.
	Grace time.Duration
	// Retry429 is how many times one logical operation re-sends after a
	// 429 that carries a Retry-After header, honoring the advertised
	// delay. Each shed response is still counted in Status429 (so server
	// counters reconcile); each re-send is counted in Retried429.
	// 0 selects 2; negative disables retries.
	Retry429 int
	// MaxInflight caps concurrently running operations; ticks beyond it
	// are dropped (open loop). <= 0 selects 16.
	MaxInflight int
	// Codecs is the compress/decompress codec mix. Empty selects
	// gzip+bzip2.
	Codecs []string
	// ConvertEvery mixes one /v1/convert operation in per N codec
	// operations. 0 selects 4; negative disables conversion traffic.
	ConvertEvery int
	// AutoEvery mixes one /v1/compress/auto roundtrip in per N direct
	// codec operations. <= 0 disables auto traffic (the default, so
	// existing reconciliation suites are unchanged).
	AutoEvery int
	// Values is the float32 count per generated request body. <= 0
	// selects 16384 (64 KiB bodies).
	Values int
	// Seed makes the workload deterministic; 0 selects 1.
	Seed int64
	// Client overrides the HTTP client (nil selects a dedicated one with
	// sane timeouts).
	Client *http.Client
}

// OpBytes is the generator-side bookkeeping for one operation class: what
// we uploaded and what came back. For compress operations this mirrors the
// server's per-codec bytes_in/bytes_out exactly.
type OpBytes struct {
	Ops      int64 `json:"ops"`
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
}

// LatencySummary is the percentile view of one operation class.
type LatencySummary struct {
	Count  uint64 `json:"count"`
	MeanUS int64  `json:"mean_us"`
	P50US  int64  `json:"p50_us"`
	P99US  int64  `json:"p99_us"`
}

// Report is the outcome of one Run.
type Report struct {
	Duration  string  `json:"duration"`
	TargetQPS float64 `json:"target_qps"`
	// Ticks is how many operation starts the open loop attempted;
	// Started + Dropped == Ticks.
	Ticks   int64 `json:"ticks"`
	Started int64 `json:"started"`
	Dropped int64 `json:"dropped"`

	Status2xx int64 `json:"status_2xx"`
	Status4xx int64 `json:"status_4xx"`
	Status429 int64 `json:"status_429"`
	Status5xx int64 `json:"status_5xx"`
	// Retried429 counts re-sends after a 429 with Retry-After: shed, then
	// retried. Every shed response is also in Status429.
	Retried429  int64   `json:"retried_429"`
	Transport   int64   `json:"transport_errors"`
	Mismatches  int64   `json:"roundtrip_mismatches"`
	BytesMoved  int64   `json:"bytes_moved"`
	AchievedQPS float64 `json:"achieved_qps"`

	// Compress and Decompress are keyed by codec name; the compress entry
	// for a codec must reconcile with the server's /metrics codec section.
	Compress   map[string]*OpBytes `json:"compress"`
	Decompress map[string]*OpBytes `json:"decompress"`
	Convert    OpBytes             `json:"convert"`
	// Auto is keyed by the codec the server's advisor chose (the
	// X-Positd-Codec response header); each entry must reconcile exactly
	// with the server's codecs.<name>.auto metrics. The decompress half of
	// an auto roundtrip is accounted in Decompress under the chosen codec,
	// because that is where the server accounts it too.
	Auto map[string]*OpBytes `json:"auto,omitempty"`

	Latency map[string]LatencySummary `json:"latency"`
}

// Failed reports whether the run saw anything a soak test must treat as a
// failure: server errors, transport errors, or roundtrip mismatches.
// Shed load (429s, drops) is expected behavior under deliberate overload.
func (r *Report) Failed() bool {
	return r.Status5xx > 0 || r.Transport > 0 || r.Mismatches > 0
}

// loader is the run-scoped state shared by workers.
type loader struct {
	cfg    Config
	client *http.Client
	bodies [][]byte // pregenerated request payloads

	mu         sync.Mutex
	rep        *Report
	histograms map[string]*stats.LatencyHist
}

// Run drives the workload until cfg.Duration elapses or ctx ends, then
// waits for in-flight operations to finish and returns the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("load: BaseURL required")
	}
	if cfg.QPS <= 0 {
		cfg.QPS = 50
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 16
	}
	if len(cfg.Codecs) == 0 {
		cfg.Codecs = []string{"gzip", "bzip2"}
	}
	if cfg.ConvertEvery == 0 {
		cfg.ConvertEvery = 4
	}
	if cfg.Values <= 0 {
		cfg.Values = 16384
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Retry429 == 0 {
		cfg.Retry429 = 2
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * (cfg.Duration + cfg.Grace)}
	}

	l := &loader{
		cfg:    cfg,
		client: client,
		bodies: makeBodies(cfg.Values),
		rep: &Report{
			TargetQPS:  cfg.QPS,
			Compress:   map[string]*OpBytes{},
			Decompress: map[string]*OpBytes{},
			Auto:       map[string]*OpBytes{},
			Latency:    map[string]LatencySummary{},
		},
		histograms: map[string]*stats.LatencyHist{},
	}

	// Ticks stop at Duration; the context runs Grace longer so in-flight
	// operations can complete instead of being aborted at the deadline.
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration+cfg.Grace)
	defer cancel()
	lastTick := time.NewTimer(cfg.Duration)
	defer lastTick.Stop()

	rng := rand.New(rand.NewSource(cfg.Seed))
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	slots := make(chan struct{}, cfg.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	codecOps, sinceAuto := 0, 0

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-lastTick.C:
			break loop
		case <-ticker.C:
		}
		l.rep.Ticks++
		// Decide the operation on the loop goroutine so the sequence is
		// deterministic for a given seed regardless of worker scheduling.
		var op func(*loader)
		switch {
		case cfg.ConvertEvery > 0 && codecOps >= cfg.ConvertEvery:
			codecOps = 0
			body := l.bodies[rng.Intn(len(l.bodies))]
			op = func(l *loader) { l.doConvert(ctx, body) }
		case cfg.AutoEvery > 0 && sinceAuto >= cfg.AutoEvery:
			sinceAuto = 0
			body := l.bodies[rng.Intn(len(l.bodies))]
			op = func(l *loader) { l.doAuto(ctx, body) }
		default:
			codecOps++
			sinceAuto++
			codec := cfg.Codecs[rng.Intn(len(cfg.Codecs))]
			body := l.bodies[rng.Intn(len(l.bodies))]
			op = func(l *loader) { l.doRoundtrip(ctx, codec, body) }
		}
		select {
		case slots <- struct{}{}:
			l.rep.Started++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				op(l)
			}()
		default:
			l.rep.Dropped++ // open loop: never queue behind a busy server
		}
	}
	wg.Wait()

	elapsed := time.Since(start)
	l.rep.Duration = elapsed.Round(time.Millisecond).String()
	if secs := elapsed.Seconds(); secs > 0 {
		l.rep.AchievedQPS = float64(l.rep.Started) / secs
	}
	for name, h := range l.histograms {
		l.rep.Latency[name] = LatencySummary{
			Count:  h.Count(),
			MeanUS: h.Mean().Microseconds(),
			P50US:  h.Quantile(0.5).Microseconds(),
			P99US:  h.Quantile(0.99).Microseconds(),
		}
	}
	return l.rep, nil
}

// makeBodies pregenerates one request payload per sdrbench input, sorted
// by name for determinism: generating floats is CPU work that must not be
// charged to request latency.
func makeBodies(values int) [][]byte {
	inputs := sdrbench.Inputs()
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].Name < inputs[j].Name })
	bodies := make([][]byte, 0, len(inputs))
	for _, in := range inputs {
		bodies = append(bodies, posit.EncodeFloat32LE(in.Generate(values)))
	}
	return bodies
}

// maxRetryAfterWait caps how long a worker slot honors one Retry-After
// hint: a server advertising a longer backoff than this is treated as shed
// for good, so the open loop cannot be parked indefinitely by one response.
const maxRetryAfterWait = 5 * time.Second

// retryAfter extracts a usable delay from a 429's Retry-After header
// (delta-seconds form only; an HTTP-date or garbage yields no retry).
func retryAfter(resp *http.Response) (time.Duration, bool) {
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfterWait {
		return 0, false
	}
	return d, true
}

// post sends one request and fully drains the response, recording the
// status class and latency under the given histogram label. A 429 carrying
// a Retry-After is re-sent up to cfg.Retry429 times after honoring the
// advertised delay; every response, shed or not, is counted, so the class
// totals still reconcile one-to-one with the server's response counters.
func (l *loader) post(ctx context.Context, label, url string, body []byte) ([]byte, int, bool) {
	out, _, status, ok := l.postHdr(ctx, label, url, body)
	return out, status, ok
}

// postHdr is post for callers that also need the response headers (the
// auto arm reads the server's codec choice from X-Positd-Codec).
func (l *loader) postHdr(ctx context.Context, label, url string, body []byte) ([]byte, http.Header, int, bool) {
	for attempt := 0; ; attempt++ {
		out, hdr, status, ok, wait, hinted := l.postOnce(ctx, label, url, body)
		if status != http.StatusTooManyRequests || !hinted || attempt >= l.cfg.Retry429 {
			return out, hdr, status, ok
		}
		select {
		case <-ctx.Done():
			return out, hdr, status, ok
		case <-time.After(wait):
		}
		l.count(func(r *Report) { r.Retried429++ })
	}
}

// postOnce sends one request and fully drains the response, recording the
// status class and latency under the given histogram label. For a 429 it
// also reports the parsed Retry-After hint, so post can honor it.
func (l *loader) postOnce(ctx context.Context, label, url string, body []byte) (_ []byte, hdr http.Header, status int, ok bool, wait time.Duration, hinted bool) {
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		l.count(func(r *Report) { r.Transport++ })
		return nil, nil, 0, false, 0, false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	t0 := time.Now()
	resp, err := l.client.Do(req)
	if err != nil {
		// A request cut off by the run deadline is not a server failure.
		if ctx.Err() == nil {
			l.count(func(r *Report) { r.Transport++ })
		}
		return nil, nil, 0, false, 0, false
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	elapsed := time.Since(t0)
	if err != nil {
		if ctx.Err() == nil {
			l.count(func(r *Report) { r.Transport++ })
		}
		return nil, resp.Header, resp.StatusCode, false, 0, false
	}
	l.mu.Lock()
	h := l.histograms[label]
	if h == nil {
		h = &stats.LatencyHist{}
		l.histograms[label] = h
	}
	h.Observe(elapsed)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		l.rep.Status429++
	case resp.StatusCode >= 500:
		l.rep.Status5xx++
	case resp.StatusCode >= 400:
		l.rep.Status4xx++
	default:
		l.rep.Status2xx++
	}
	l.mu.Unlock()
	if resp.StatusCode == http.StatusTooManyRequests {
		wait, hinted = retryAfter(resp)
	}
	return out, resp.Header, resp.StatusCode, resp.StatusCode >= 200 && resp.StatusCode < 300, wait, hinted
}

// count applies one locked mutation to the report.
func (l *loader) count(f func(*Report)) {
	l.mu.Lock()
	f(l.rep)
	l.mu.Unlock()
}

// opBytes returns the locked bookkeeping cell for codec in m.
func opBytes(m map[string]*OpBytes, codec string) *OpBytes {
	ob := m[codec]
	if ob == nil {
		ob = &OpBytes{}
		m[codec] = ob
	}
	return ob
}

// doRoundtrip runs one compress + decompress + verify operation.
func (l *loader) doRoundtrip(ctx context.Context, codec string, body []byte) {
	comp, _, ok := l.post(ctx, "compress", l.cfg.BaseURL+"/v1/compress/"+codec, body)
	if !ok {
		return
	}
	l.count(func(r *Report) {
		ob := opBytes(r.Compress, codec)
		ob.Ops++
		ob.BytesIn += int64(len(body))
		ob.BytesOut += int64(len(comp))
		r.BytesMoved += int64(len(body)) + int64(len(comp))
	})
	back, _, ok := l.post(ctx, "decompress", l.cfg.BaseURL+"/v1/decompress", comp)
	if !ok {
		return
	}
	l.count(func(r *Report) {
		ob := opBytes(r.Decompress, codec)
		ob.Ops++
		ob.BytesIn += int64(len(comp))
		ob.BytesOut += int64(len(back))
		r.BytesMoved += int64(len(comp)) + int64(len(back))
		if !bytes.Equal(back, body) {
			r.Mismatches++
		}
	})
}

// doAuto runs one auto-mode compress + decompress + verify operation,
// booking the compress half under the codec the server's advisor chose.
func (l *loader) doAuto(ctx context.Context, body []byte) {
	comp, hdr, _, ok := l.postHdr(ctx, "auto", l.cfg.BaseURL+"/v1/compress/auto", body)
	if !ok {
		return
	}
	chosen := hdr.Get("X-Positd-Codec")
	if chosen == "" {
		// A 2xx without the codec header is a server contract violation;
		// surface it the same way a bad roundtrip is surfaced.
		l.count(func(r *Report) { r.Mismatches++ })
		return
	}
	l.count(func(r *Report) {
		ob := opBytes(r.Auto, chosen)
		ob.Ops++
		ob.BytesIn += int64(len(body))
		ob.BytesOut += int64(len(comp))
		r.BytesMoved += int64(len(body)) + int64(len(comp))
	})
	back, _, ok := l.post(ctx, "decompress", l.cfg.BaseURL+"/v1/decompress", comp)
	if !ok {
		return
	}
	l.count(func(r *Report) {
		ob := opBytes(r.Decompress, chosen)
		ob.Ops++
		ob.BytesIn += int64(len(comp))
		ob.BytesOut += int64(len(back))
		r.BytesMoved += int64(len(comp)) + int64(len(back))
		if !bytes.Equal(back, body) {
			r.Mismatches++
		}
	})
}

// doConvert runs one float32 -> posit conversion operation.
func (l *loader) doConvert(ctx context.Context, body []byte) {
	out, _, ok := l.post(ctx, "convert", l.cfg.BaseURL+"/v1/convert?to=posit", body)
	if !ok {
		return
	}
	l.count(func(r *Report) {
		r.Convert.Ops++
		r.Convert.BytesIn += int64(len(body))
		r.Convert.BytesOut += int64(len(out))
		r.BytesMoved += int64(len(body)) + int64(len(out))
	})
}
