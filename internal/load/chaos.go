package load

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"time"
)

// ChaosTarget is one thing the chaos controller may take down and bring
// back: an in-process backend in a soak test, or a child process in a
// shell harness.
type ChaosTarget interface {
	// Name identifies the target in events and logs.
	Name() string
	// Kill takes the target down abruptly (the moral equivalent of
	// kill -9: no drain, no goodbye).
	Kill() error
	// Restart brings the target back up, ready to serve again.
	Restart() error
}

// ChaosDegrader is an optional ChaosTarget extension: a target that can
// also misbehave in place — stall, inject 503s, drip bytes slowly — while
// its listener stays up. Degradation is nastier than a crash for a router:
// the TCP layer still looks healthy, so only response-level signals
// (breakers, probes) can catch it.
type ChaosDegrader interface {
	ChaosTarget
	// Degrade starts the misbehavior; Recover restores healthy service.
	Degrade() error
	Recover() error
}

// FuncTarget adapts a pair of closures into a ChaosTarget.
type FuncTarget struct {
	TargetName string
	KillFn     func() error
	RestartFn  func() error
}

func (f FuncTarget) Name() string   { return f.TargetName }
func (f FuncTarget) Kill() error    { return f.KillFn() }
func (f FuncTarget) Restart() error { return f.RestartFn() }

// ChaosEvent records one controller action for the post-run report.
type ChaosEvent struct {
	At     time.Duration `json:"at"`     // offset from Chaos.Run start
	Target string        `json:"target"` // ChaosTarget.Name()
	Action string        `json:"action"` // "kill" or "restart"
	Err    string        `json:"error,omitempty"`
}

// Chaos is a seeded fault scheduler: it repeatedly picks a target, kills
// it, leaves it down for a while, restarts it, and waits before striking
// again, until the context ends. Every run with the same seed and the same
// target list produces the same kill schedule, so a soak failure replays.
type Chaos struct {
	// Targets is the strike list; at most one is down at a time, so the
	// cluster never loses quorum to the controller itself.
	Targets []ChaosTarget
	// MinUp/MaxUp bound the healthy interval before each strike.
	// Unset selects 300ms..800ms.
	MinUp, MaxUp time.Duration
	// MinDown/MaxDown bound how long a killed target stays down.
	// Unset selects 200ms..600ms.
	MinDown, MaxDown time.Duration
	// Seed makes the schedule deterministic. 0 consults the
	// POSITBENCH_CHAOS_SEED environment variable, then falls back to 1.
	Seed int64
	// Log receives one line per action (nil discards).
	Log io.Writer
}

// ChaosSeed resolves a chaos seed the same way the codec fault harness
// resolves POSITBENCH_FAULT_SEED: an explicit non-zero seed wins, then the
// POSITBENCH_CHAOS_SEED environment variable, then the fixed default —
// so a failing soak can be replayed from its logged seed alone.
func ChaosSeed(explicit int64) (int64, error) {
	if explicit != 0 {
		return explicit, nil
	}
	if env := os.Getenv("POSITBENCH_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("load: POSITBENCH_CHAOS_SEED=%q: %v", env, err)
		}
		return v, nil
	}
	return 1, nil
}

// Run executes the kill/restart schedule until ctx ends, then makes sure
// the last victim is restarted before returning the event log. Action
// errors are recorded in the events, not fatal: a Kill racing a process
// that already exited is normal chaos.
func (c *Chaos) Run(ctx context.Context) ([]ChaosEvent, error) {
	if len(c.Targets) == 0 {
		return nil, fmt.Errorf("load: chaos needs at least one target")
	}
	minUp, maxUp := c.MinUp, c.MaxUp
	if minUp <= 0 {
		minUp = 300 * time.Millisecond
	}
	if maxUp < minUp {
		maxUp = minUp + 500*time.Millisecond
	}
	minDown, maxDown := c.MinDown, c.MaxDown
	if minDown <= 0 {
		minDown = 200 * time.Millisecond
	}
	if maxDown < minDown {
		maxDown = minDown + 400*time.Millisecond
	}
	seed, err := ChaosSeed(c.Seed)
	if err != nil {
		return nil, err
	}
	c.logf("chaos: seed %#x (override with POSITBENCH_CHAOS_SEED)", seed)
	rng := rand.New(rand.NewSource(seed))
	between := func(lo, hi time.Duration) time.Duration {
		if hi <= lo {
			return lo
		}
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}

	start := time.Now()
	var events []ChaosEvent
	act := func(target ChaosTarget, action string, f func() error) {
		ev := ChaosEvent{At: time.Since(start), Target: target.Name(), Action: action}
		if err := f(); err != nil {
			ev.Err = err.Error()
			c.logf("chaos: +%s %s %s: %s", ev.At.Round(time.Millisecond), action, ev.Target, ev.Err)
		} else {
			c.logf("chaos: +%s %s %s", ev.At.Round(time.Millisecond), action, ev.Target)
		}
		events = append(events, ev)
	}

	for {
		if !sleepCtx(ctx, between(minUp, maxUp)) {
			return events, nil
		}
		victim := c.Targets[rng.Intn(len(c.Targets))]
		down, up := victim.Kill, victim.Restart
		downAction, upAction := "kill", "restart"
		// A degradable victim is sometimes degraded in place instead of
		// killed, so the soak also exercises the case where TCP stays up
		// and only breakers/probes can notice.
		if d, ok := victim.(ChaosDegrader); ok && rng.Intn(2) == 0 {
			down, up = d.Degrade, d.Recover
			downAction, upAction = "degrade", "recover"
		}
		act(victim, downAction, down)
		// The victim always comes back, even if the run deadline lands
		// inside the downtime: the soak's final reconciliation needs a
		// whole cluster.
		sleepCtx(ctx, between(minDown, maxDown))
		act(victim, upAction, up)
		if ctx.Err() != nil {
			return events, nil
		}
	}
}

// sleepCtx waits for d or the context, reporting whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (c *Chaos) logf(format string, args ...any) {
	if c.Log == nil {
		return
	}
	fmt.Fprintf(c.Log, format+"\n", args...)
}
