package load

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"positbench/internal/stats"
)

// TestChaosScheduleDeterministicAndBalanced pins the controller contract:
// a seed fully determines the kill schedule, kills alternate with
// restarts for the same victim, and the run never ends with a target down.
func TestChaosScheduleDeterministicAndBalanced(t *testing.T) {
	// Ending the run after a fixed number of strikes (rather than a wall-
	// clock deadline) keeps the comparison exact: a time-bounded run can fit
	// one cycle more or less depending on scheduler load, which is timing
	// drift, not schedule divergence.
	const strikes = 5
	run := func(seed int64) []ChaosEvent {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		var mu sync.Mutex
		down := map[string]bool{}
		kills := 0
		targets := make([]ChaosTarget, 3)
		for i, name := range []string{"b0", "b1", "b2"} {
			name := name
			targets[i] = FuncTarget{
				TargetName: name,
				KillFn: func() error {
					mu.Lock()
					defer mu.Unlock()
					if down[name] {
						return errors.New("double kill")
					}
					down[name] = true
					if kills++; kills == strikes {
						cancel()
					}
					return nil
				},
				RestartFn: func() error {
					mu.Lock()
					defer mu.Unlock()
					if !down[name] {
						return errors.New("restart while up")
					}
					down[name] = false
					return nil
				},
			}
		}
		events, err := (&Chaos{
			Targets: targets,
			MinUp:   10 * time.Millisecond, MaxUp: 30 * time.Millisecond,
			MinDown: 5 * time.Millisecond, MaxDown: 15 * time.Millisecond,
			Seed: seed,
		}).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		for name, d := range down {
			if d {
				t.Fatalf("run ended with %s still down", name)
			}
		}
		return events
	}

	a, b := run(42), run(42)
	if len(a) != 2*strikes {
		t.Fatalf("%d strikes produced %d events, want %d", strikes, len(a), 2*strikes)
	}
	for _, ev := range a {
		if ev.Err != "" {
			t.Fatalf("event %+v carries an action error", ev)
		}
	}
	// Same seed, same schedule (timings drift, the action sequence must
	// not).
	if len(a) != len(b) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Target != b[i].Target || a[i].Action != b[i].Action {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChaosSeedEnvOverride(t *testing.T) {
	if got, err := ChaosSeed(7); err != nil || got != 7 {
		t.Fatalf("explicit seed: got %d, %v", got, err)
	}
	t.Setenv("POSITBENCH_CHAOS_SEED", "0x2a")
	if got, err := ChaosSeed(0); err != nil || got != 0x2a {
		t.Fatalf("env seed: got %d, %v", got, err)
	}
	if _, err := ChaosSeed(0); err != nil {
		t.Fatal(err)
	}
	t.Setenv("POSITBENCH_CHAOS_SEED", "not-a-seed")
	if _, err := ChaosSeed(0); err == nil {
		t.Fatal("garbage POSITBENCH_CHAOS_SEED did not error")
	}
	t.Setenv("POSITBENCH_CHAOS_SEED", "")
	if got, err := ChaosSeed(0); err != nil || got != 1 {
		t.Fatalf("default seed: got %d, %v", got, err)
	}
}

func TestChaosNoTargets(t *testing.T) {
	if _, err := (&Chaos{}).Run(context.Background()); err == nil {
		t.Fatal("chaos with no targets did not error")
	}
}

// TestPostHonorsRetryAfter pins the shed-then-retry contract: a 429 with
// Retry-After is re-sent after the advertised delay, every shed response
// still lands in status_429 (server counters reconcile), and the re-sends
// are visible in retried_429.
func TestPostHonorsRetryAfter(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	var gaps []time.Duration
	last := time.Now()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		mu.Lock()
		hits++
		n := hits
		gaps = append(gaps, time.Since(last))
		last = time.Now()
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("finally"))
	}))
	defer ts.Close()

	l := &loader{
		cfg:        Config{Retry429: 3},
		client:     ts.Client(),
		rep:        &Report{},
		histograms: map[string]*stats.LatencyHist{},
	}
	out, status, ok := l.post(context.Background(), "compress", ts.URL, []byte("x"))
	if !ok || status != http.StatusOK || string(out) != "finally" {
		t.Fatalf("post after sheds = (%q, %d, %v), want the 200 body", out, status, ok)
	}
	if hits != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits)
	}
	for _, gap := range gaps[1:] {
		if gap < 900*time.Millisecond {
			t.Fatalf("retry arrived %v after the 429, before the 1s Retry-After", gap)
		}
	}
	if l.rep.Status429 != 2 || l.rep.Retried429 != 2 || l.rep.Status2xx != 1 {
		t.Fatalf("counters 429=%d retried=%d 2xx=%d, want 2/2/1",
			l.rep.Status429, l.rep.Retried429, l.rep.Status2xx)
	}
}

// TestPostRetryBudgetAndMissingHint: no Retry-After means no retry, and
// the retry budget bounds how long one slot chases a saturated server.
func TestPostRetryBudgetAndMissingHint(t *testing.T) {
	var hits int
	var withHint bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		hits++
		if withHint {
			w.Header().Set("Retry-After", "0")
		}
		http.Error(w, "shed", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	newLoader := func(budget int) *loader {
		return &loader{
			cfg:        Config{Retry429: budget},
			client:     ts.Client(),
			rep:        &Report{},
			histograms: map[string]*stats.LatencyHist{},
		}
	}

	// Hint absent: one attempt, no retries, shed recorded.
	l := newLoader(3)
	if _, status, ok := l.post(context.Background(), "x", ts.URL, nil); ok || status != http.StatusTooManyRequests {
		t.Fatalf("shed post = (%d, %v), want unretried 429", status, ok)
	}
	if hits != 1 || l.rep.Status429 != 1 || l.rep.Retried429 != 0 {
		t.Fatalf("no-hint: hits=%d 429=%d retried=%d, want 1/1/0", hits, l.rep.Status429, l.rep.Retried429)
	}

	// Hint present but server never recovers: budget caps the attempts.
	hits, withHint = 0, true
	l = newLoader(2)
	if _, status, _ := l.post(context.Background(), "x", ts.URL, nil); status != http.StatusTooManyRequests {
		t.Fatalf("exhausted post status = %d, want 429", status)
	}
	if hits != 3 || l.rep.Status429 != 3 || l.rep.Retried429 != 2 {
		t.Fatalf("budget: hits=%d 429=%d retried=%d, want 3/3/2", hits, l.rep.Status429, l.rep.Retried429)
	}

	// Negative budget disables retries even with a hint.
	hits = 0
	l = newLoader(-1)
	l.post(context.Background(), "x", ts.URL, nil)
	if hits != 1 || l.rep.Retried429 != 0 {
		t.Fatalf("disabled: hits=%d retried=%d, want 1/0", hits, l.rep.Retried429)
	}

	// An oversized hint is shed for good, not honored.
	req := httptest.NewRequest("GET", "/", nil)
	_ = req
	resp := &http.Response{Header: http.Header{"Retry-After": []string{"3600"}}}
	if _, ok := retryAfter(resp); ok {
		t.Fatal("an hour-long Retry-After should not be honored")
	}
	resp.Header.Set("Retry-After", strings.Repeat("9", 30))
	if _, ok := retryAfter(resp); ok {
		t.Fatal("garbage Retry-After should not be honored")
	}
}
