package resilience

import (
	"testing"
	"time"
)

// Exact delays with a pinned Rand: equal jitter means
// d·(1-J) + d·J·rand, doubling from Base and capping at Max.
func TestBackoffDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond, Jitter: 0.5,
		Rand: func() float64 { return 0.5 }}
	want := []time.Duration{
		75 * time.Millisecond,  // 100ms: 50 + 25
		150 * time.Millisecond, // 200ms
		300 * time.Millisecond, // 400ms
		600 * time.Millisecond, // 800ms (cap)
		600 * time.Millisecond, // still capped
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

// Jittered delays stay inside [(1-J)·d, d] for every retry number, and the
// un-jittered sequence is exactly exponential-then-capped.
func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 1 * time.Second, Jitter: 0.5}
	for retry := 0; retry < 12; retry++ {
		full := Backoff{Base: b.Base, Max: b.Max, NoJitter: true}.Delay(retry)
		wantFull := b.Base << retry
		if wantFull > b.Max || wantFull <= 0 {
			wantFull = b.Max
		}
		if full != wantFull {
			t.Fatalf("NoJitter Delay(%d) = %v, want %v", retry, full, wantFull)
		}
		for trial := 0; trial < 50; trial++ {
			d := b.Delay(retry)
			if d < full/2 || d > full {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", retry, d, full/2, full)
			}
		}
	}
}

// Overflow in the doubling loop must clamp to Max, not go negative.
func TestBackoffOverflow(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: 24 * time.Hour, NoJitter: true}
	if got := b.Delay(200); got != 24*time.Hour {
		t.Fatalf("Delay(200) = %v, want the cap", got)
	}
	if got := b.Delay(-1); got != 0 {
		t.Fatalf("Delay(-1) = %v, want 0", got)
	}
}

// The zero value is usable and bounded by the package defaults.
func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	for retry := 0; retry < 20; retry++ {
		d := b.Delay(retry)
		if d <= 0 || d > DefaultBackoffMax {
			t.Fatalf("zero-value Delay(%d) = %v outside (0, %v]", retry, d, DefaultBackoffMax)
		}
	}
}
