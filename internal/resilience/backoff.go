package resilience

import (
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with equal jitter. The
// zero value selects the defaults below. Delay is pure given Rand, so tests
// inject a fixed Rand and assert exact values; with a real Rand the result
// is still bounded within [(1-Jitter)·d, d], which the tests pin.
type Backoff struct {
	// Base is the un-jittered delay before the first retry. <= 0 selects
	// DefaultBackoffBase.
	Base time.Duration
	// Max caps the un-jittered exponential growth. <= 0 selects
	// DefaultBackoffMax.
	Max time.Duration
	// Jitter is the randomized fraction of each delay, in [0, 1]: the
	// delay is d·(1-Jitter) + d·Jitter·Rand(). Negative selects
	// DefaultBackoffJitter; 0 must be asked for explicitly with NoJitter.
	Jitter float64
	// NoJitter disables jitter entirely (deterministic delays).
	NoJitter bool
	// Rand supplies the jitter source in [0, 1). Nil selects the global
	// math/rand source.
	Rand func() float64
}

// Defaults for the zero Backoff.
const (
	DefaultBackoffBase   = 25 * time.Millisecond
	DefaultBackoffMax    = 2 * time.Second
	DefaultBackoffJitter = 0.5
)

// Delay returns the pause before retry number retry (0 = the first retry).
// Negative retry values return 0.
func (b Backoff) Delay(retry int) time.Duration {
	if retry < 0 {
		return 0
	}
	base := b.Base
	if base <= 0 {
		base = DefaultBackoffBase
	}
	max := b.Max
	if max <= 0 {
		max = DefaultBackoffMax
	}
	d := base
	for i := 0; i < retry; i++ {
		d *= 2
		if d >= max || d < 0 { // d < 0: overflow
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	if b.NoJitter {
		return d
	}
	jitter := b.Jitter
	if jitter < 0 || jitter > 1 {
		jitter = DefaultBackoffJitter
	} else if jitter == 0 {
		jitter = DefaultBackoffJitter
	}
	rnd := b.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	fixed := float64(d) * (1 - jitter)
	return time.Duration(fixed + float64(d)*jitter*rnd())
}
