package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is admitted; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String renders the state for metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker with deterministic-clock
// transitions:
//
//	closed --(threshold consecutive failures)--> open
//	open   --(cooldown elapsed, next Allow)----> half-open (probe admitted)
//	half-open --(probe success)--> closed
//	half-open --(probe failure)--> open (cooldown restarts)
//
// A success recorded while open (a caller that bypassed the breaker under
// fail-static pressure and got through) also closes it: the backend is
// demonstrably back.
//
// All methods are safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	clock    Clock
	thresh   int
	cooldown time.Duration

	state   BreakerState
	fails   int       // consecutive failures while closed
	until   time.Time // open until (cooldown deadline)
	probing bool      // a half-open probe is outstanding
	opens   uint64    // total closed/half-open -> open transitions
}

// Defaults for NewBreaker arguments <= 0.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 2 * time.Second
)

// NewBreaker returns a closed breaker. threshold <= 0 selects
// DefaultBreakerThreshold, cooldown <= 0 DefaultBreakerCooldown, a nil
// clock the system clock.
func NewBreaker(threshold int, cooldown time.Duration, clock Clock) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if clock == nil {
		clock = System
	}
	return &Breaker{clock: clock, thresh: threshold, cooldown: cooldown}
}

// Allow reports whether a request may proceed, and claims the half-open
// probe slot when the cooldown has elapsed: the first Allow after the
// cooldown returns true and moves the breaker to half-open; further Allows
// return false until that probe's outcome is Recorded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock.Now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Record reports one request outcome to the breaker. Callers that got true
// from Allow must always Record exactly once; callers that force a request
// through a refusing breaker (fail-static) should Record too.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.thresh {
			b.trip()
		}
	case BreakerOpen:
		// Only a forced (fail-static) request reports here. Success proves
		// the backend recovered; failure restarts the cooldown so the next
		// half-open probe is not scheduled off a stale deadline.
		if ok {
			b.reset()
		} else {
			b.until = b.clock.Now().Add(b.cooldown)
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.reset()
		} else {
			b.trip()
		}
	}
}

// trip opens the breaker and restarts the cooldown. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.until = b.clock.Now().Add(b.cooldown)
	b.fails = 0
	b.probing = false
	b.opens++
}

// reset closes the breaker. Caller holds b.mu.
func (b *Breaker) reset() {
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// State returns the breaker's current position without side effects. An
// elapsed cooldown still reports open: only Allow performs the open ->
// half-open transition, so State is a pure observation for metrics.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens reports the total number of times the breaker has opened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
