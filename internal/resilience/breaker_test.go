package resilience

import (
	"sync"
	"testing"
	"time"
)

// The full transition cycle on a fake clock: closed -> open after the
// failure threshold, refusal during cooldown, exactly one half-open probe
// after it, probe failure re-opening, probe success closing.
func TestBreakerTransitions(t *testing.T) {
	fc := NewFakeClock(time.Time{})
	b := NewBreaker(3, time.Second, fc)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}
	// Failures below the threshold keep it closed; a success resets the run.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatalf("breaker opened before threshold (state %v)", b.State())
	}
	b.Record(false) // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Cooldown not quite elapsed: still refusing.
	fc.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted a request 1ms before the cooldown elapsed")
	}
	// Cooldown elapsed: exactly one probe is admitted.
	fc.Advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after the cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted while the probe is outstanding")
	}

	// Probe failure: re-open, cooldown restarts from now.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}
	fc.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused after the restarted cooldown")
	}
	// Probe success: closed, failure count cleared.
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("failure run survived the close (stale consecutive count)")
	}
}

// A forced success while open (fail-static traffic that got through) closes
// the breaker; a forced failure restarts the cooldown.
func TestBreakerForcedOutcomesWhileOpen(t *testing.T) {
	fc := NewFakeClock(time.Time{})
	b := NewBreaker(1, time.Second, fc)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	// Forced failure at t+500ms pushes the half-open deadline to t+1500ms.
	fc.Advance(500 * time.Millisecond)
	b.Record(false)
	fc.Advance(time.Second) // t+1500ms exactly
	if !b.Allow() {
		t.Fatal("probe refused at the restarted cooldown deadline")
	}
	b.Record(false) // probe fails, open again
	b.Record(true)  // forced success: backend is back
	if b.State() != BreakerClosed {
		t.Fatalf("state after forced success = %v, want closed", b.State())
	}
}

// Concurrent Allow calls in half-open admit exactly one probe.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	fc := NewFakeClock(time.Time{})
	b := NewBreaker(1, time.Second, fc)
	b.Record(false)
	fc.Advance(time.Second)
	var admitted int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", admitted)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0, nil)
	if b.thresh != DefaultBreakerThreshold || b.cooldown != DefaultBreakerCooldown {
		t.Fatalf("defaults not applied: threshold=%d cooldown=%v", b.thresh, b.cooldown)
	}
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" || BreakerHalfOpen.String() != "half-open" {
		t.Fatal("state strings changed; metrics consumers depend on them")
	}
}
