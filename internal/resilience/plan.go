package resilience

import (
	"context"
	"errors"
	"time"
)

// TryStats summarizes one Plan.Do execution for metrics and trace
// annotations.
type TryStats struct {
	// Launched is how many arms actually started.
	Launched int
	// Hedges is how many of those launches were latency-triggered (the
	// previous arm had not failed yet, just stalled past HedgeAfter).
	Hedges int
	// Winner is the index of the arm whose value was returned, -1 when Do
	// returned an error.
	Winner int
	// HedgeWon reports whether the winning arm was a hedge launch.
	HedgeWon bool
}

// ErrNoArms is returned by Plan.Do when called with an empty arm list.
var ErrNoArms = errors.New("resilience: no arms to run")

// Plan executes a sequence of alternative attempts ("arms") for one logical
// operation — in a gateway, one proxied request with each arm bound to a
// different backend. Do launches arm 0 and then brings further arms in on
// two triggers:
//
//   - failure: an arm returned an error; the next unstarted arm launches
//     after Delay (capped-exponential backoff in practice),
//   - latency: no arm has resolved within HedgeAfter of the last launch;
//     the next arm launches as a hedge while earlier arms keep running.
//
// The first arm to return a nil error wins: every other outstanding arm's
// context is cancelled, and any late success is passed to Dispose. When all
// arms fail, Do returns the error of the last arm to fail.
//
// The zero Plan retries immediately with no hedging on the system clock.
type Plan[T any] struct {
	// Clock drives hedge timers and backoff waits. Nil selects System.
	Clock Clock
	// HedgeAfter is the stall threshold that launches the next arm while
	// the previous ones are still in flight. <= 0 disables hedging.
	HedgeAfter time.Duration
	// Delay returns the pause before failure-triggered launch of arm i
	// (i >= 1); nil means launch immediately. Backoff.Delay(i-1) is the
	// usual implementation.
	Delay func(i int) time.Duration
	// Dispose receives successful values that lost the race (a hedge whose
	// sibling won first). Nil drops them; resource-carrying values (open
	// response bodies) need a real Dispose.
	Dispose func(T)
}

// armResult carries one arm's outcome.
type armResult[T any] struct {
	val T
	err error
	arm int
}

// Do runs the arms under the plan. Each arm receives a context derived from
// ctx that is cancelled when another arm wins or ctx itself ends; arms must
// return promptly on cancellation. Do never launches a new arm after ctx is
// done, and returns ctx.Err() if it ends with no winner.
func (p Plan[T]) Do(ctx context.Context, arms []func(context.Context) (T, error)) (T, TryStats, error) {
	var zero T
	stats := TryStats{Winner: -1}
	if len(arms) == 0 {
		return zero, stats, ErrNoArms
	}
	clock := p.Clock
	if clock == nil {
		clock = System
	}

	results := make(chan armResult[T], len(arms)) // buffered: arms never block on send
	cancels := make([]context.CancelFunc, len(arms))
	hedged := make([]bool, len(arms))
	launched, outstanding := 0, 0

	launch := func(isHedge bool) {
		i := launched
		launched++
		outstanding++
		stats.Launched = launched
		hedged[i] = isHedge
		if isHedge {
			stats.Hedges++
		}
		actx, cancel := context.WithCancel(ctx)
		cancels[i] = cancel
		go func() {
			v, err := arms[i](actx)
			results <- armResult[T]{val: v, err: err, arm: i}
		}()
	}

	// cleanup cancels every launched arm except keep (-1: all) and disposes
	// late successes in the background; the buffered channel lets arms
	// finish regardless.
	cleanup := func(keep int) {
		for i := 0; i < launched; i++ {
			if i != keep {
				cancels[i]()
			}
		}
		if outstanding > 0 {
			remaining := outstanding
			go func() {
				for i := 0; i < remaining; i++ {
					r := <-results
					if r.err == nil && p.Dispose != nil {
						p.Dispose(r.val)
					}
				}
			}()
		}
	}

	var hedgeCh, delayCh <-chan time.Time
	resetHedge := func() {
		hedgeCh = nil
		if p.HedgeAfter > 0 && launched < len(arms) {
			hedgeCh = clock.After(p.HedgeAfter)
		}
	}

	launch(false)
	resetHedge()
	var lastErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				stats.Winner = r.arm
				stats.HedgeWon = hedged[r.arm]
				cleanup(r.arm)
				// The winner keeps its context until the caller is done
				// with the value; the caller owns calling its release if
				// the value carries one (see Dispose).
				return r.val, stats, nil
			}
			lastErr = r.err
			if launched == len(arms) || ctx.Err() != nil {
				if outstanding == 0 {
					cleanup(-1)
					if ctx.Err() != nil && launched < len(arms) {
						lastErr = ctx.Err()
					}
					return zero, stats, lastErr
				}
				continue // an earlier arm may still win
			}
			// Failure-triggered launch, after the backoff delay. The hedge
			// timer is superseded: the delay channel owns the next launch.
			if delayCh == nil {
				var d time.Duration
				if p.Delay != nil {
					d = p.Delay(launched)
				}
				if d <= 0 {
					launch(false)
					resetHedge()
				} else {
					hedgeCh = nil
					delayCh = clock.After(d)
				}
			}
		case <-delayCh:
			delayCh = nil
			launch(false)
			resetHedge()
		case <-hedgeCh:
			hedgeCh = nil
			if launched < len(arms) && ctx.Err() == nil {
				launch(true)
				resetHedge()
			}
		case <-ctx.Done():
			cleanup(-1)
			if outstanding == 0 && lastErr != nil {
				return zero, stats, lastErr
			}
			return zero, stats, ctx.Err()
		}
	}
}
