package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A first-arm success launches nothing else.
func TestPlanFirstArmWins(t *testing.T) {
	fc := NewFakeClock(time.Time{})
	p := Plan[int]{Clock: fc, HedgeAfter: time.Second}
	extra := false
	v, stats, err := p.Do(context.Background(), []func(context.Context) (int, error){
		func(context.Context) (int, error) { return 42, nil },
		func(context.Context) (int, error) { extra = true; return 0, nil },
	})
	if err != nil || v != 42 {
		t.Fatalf("Do = (%d, %v), want (42, nil)", v, err)
	}
	if extra {
		t.Fatal("second arm launched despite first-arm success")
	}
	want := TryStats{Launched: 1, Hedges: 0, Winner: 0, HedgeWon: false}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
}

func TestPlanNoArms(t *testing.T) {
	var p Plan[int]
	if _, _, err := p.Do(context.Background(), nil); !errors.Is(err, ErrNoArms) {
		t.Fatalf("err = %v, want ErrNoArms", err)
	}
}

// A failure launches the next arm only after the backoff delay, measured on
// the fake clock.
func TestPlanFailureRetryWaitsDelay(t *testing.T) {
	fc := NewFakeClock(time.Time{})
	start := fc.Now()
	p := Plan[string]{Clock: fc, Delay: func(i int) time.Duration {
		if i != 1 {
			t.Errorf("Delay called with arm index %d, want 1", i)
		}
		return 100 * time.Millisecond
	}}
	var launchedAt time.Time
	done := make(chan struct{})
	var v string
	var stats TryStats
	var err error
	go func() {
		defer close(done)
		v, stats, err = p.Do(context.Background(), []func(context.Context) (string, error){
			func(context.Context) (string, error) { return "", errors.New("arm0 down") },
			func(context.Context) (string, error) { launchedAt = fc.Now(); return "ok", nil },
		})
	}()
	fc.BlockUntil(1) // the backoff timer for arm 1
	fc.Advance(99 * time.Millisecond)
	if w := fc.Waiters(); w != 1 {
		t.Fatalf("backoff timer fired 1ms early (waiters=%d)", w)
	}
	fc.Advance(1 * time.Millisecond)
	<-done
	if err != nil || v != "ok" {
		t.Fatalf("Do = (%q, %v), want (ok, nil)", v, err)
	}
	if got := launchedAt.Sub(start); got != 100*time.Millisecond {
		t.Fatalf("arm 1 launched %v after start, want 100ms", got)
	}
	want := TryStats{Launched: 2, Hedges: 0, Winner: 1, HedgeWon: false}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
}

// A stalled arm triggers a hedge after HedgeAfter; the hedge wins and the
// stalled loser observes cancellation.
func TestPlanHedgeWinsCancelsLoser(t *testing.T) {
	fc := NewFakeClock(time.Time{})
	p := Plan[string]{Clock: fc, HedgeAfter: 50 * time.Millisecond}
	loserCancelled := make(chan struct{})
	done := make(chan struct{})
	var v string
	var stats TryStats
	var err error
	go func() {
		defer close(done)
		v, stats, err = p.Do(context.Background(), []func(context.Context) (string, error){
			func(ctx context.Context) (string, error) {
				<-ctx.Done() // stall until cancelled by the winner
				close(loserCancelled)
				return "", ctx.Err()
			},
			func(context.Context) (string, error) { return "hedge", nil },
		})
	}()
	fc.BlockUntil(1) // the hedge timer
	fc.Advance(50 * time.Millisecond)
	<-done
	if err != nil || v != "hedge" {
		t.Fatalf("Do = (%q, %v), want (hedge, nil)", v, err)
	}
	want := TryStats{Launched: 2, Hedges: 1, Winner: 1, HedgeWon: true}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	select {
	case <-loserCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled loser never observed cancellation")
	}
}

// The hedge timer re-arms after every launch: a plan over three stalled arms
// brings them in one HedgeAfter apart.
func TestPlanHedgeTimerRearms(t *testing.T) {
	fc := NewFakeClock(time.Time{})
	p := Plan[int]{Clock: fc, HedgeAfter: 50 * time.Millisecond}
	release := make(chan struct{})
	stall := func(ctx context.Context) (int, error) {
		select {
		case <-release:
			return 3, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	done := make(chan struct{})
	var stats TryStats
	var err error
	go func() {
		defer close(done)
		_, stats, err = p.Do(context.Background(), []func(context.Context) (int, error){stall, stall, stall})
	}()
	fc.BlockUntil(1)
	fc.Advance(50 * time.Millisecond) // launches arm 1
	fc.BlockUntil(1)                  // a fresh hedge timer proves arm 1 launched
	fc.Advance(50 * time.Millisecond) // launches arm 2; no further timer (no arms left)
	close(release)
	<-done
	if err != nil {
		t.Fatalf("Do err = %v", err)
	}
	// Any of the three released arms may win the race; the re-arming is
	// what's under test.
	if stats.Launched != 3 || stats.Hedges != 2 {
		t.Fatalf("stats = %+v, want 3 launches and 2 hedges", stats)
	}
}

// When every arm fails, Do returns the error of the last arm to fail.
func TestPlanAllFail(t *testing.T) {
	var p Plan[int] // zero value: immediate retries, no hedging
	errLast := errors.New("arm2 down")
	_, stats, err := p.Do(context.Background(), []func(context.Context) (int, error){
		func(context.Context) (int, error) { return 0, errors.New("arm0 down") },
		func(context.Context) (int, error) { return 0, errors.New("arm1 down") },
		func(context.Context) (int, error) { return 0, errLast },
	})
	if !errors.Is(err, errLast) {
		t.Fatalf("err = %v, want %v", err, errLast)
	}
	if stats.Launched != 3 || stats.Winner != -1 {
		t.Fatalf("stats = %+v, want 3 launches and no winner", stats)
	}
}

// A loser that succeeds after the winner is handed to Dispose, not leaked.
func TestPlanDisposesLateSuccess(t *testing.T) {
	fc := NewFakeClock(time.Time{})
	disposed := make(chan string, 1)
	p := Plan[string]{
		Clock:      fc,
		HedgeAfter: 50 * time.Millisecond,
		Dispose:    func(v string) { disposed <- v },
	}
	done := make(chan struct{})
	var v string
	var err error
	go func() {
		defer close(done)
		v, _, err = p.Do(context.Background(), []func(context.Context) (string, error){
			func(ctx context.Context) (string, error) {
				<-ctx.Done()
				return "late", nil // succeeds anyway, ignoring cancellation
			},
			func(context.Context) (string, error) { return "winner", nil },
		})
	}()
	fc.BlockUntil(1)
	fc.Advance(50 * time.Millisecond)
	<-done
	if err != nil || v != "winner" {
		t.Fatalf("Do = (%q, %v), want (winner, nil)", v, err)
	}
	select {
	case got := <-disposed:
		if got != "late" {
			t.Fatalf("disposed %q, want %q", got, "late")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late success never disposed")
	}
}

// Cancelling the caller's context ends Do promptly with ctx.Err.
func TestPlanContextCancel(t *testing.T) {
	fc := NewFakeClock(time.Time{})
	p := Plan[int]{Clock: fc, HedgeAfter: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := p.Do(ctx, []func(context.Context) (int, error){
			func(ctx context.Context) (int, error) {
				close(started)
				<-ctx.Done()
				return 0, ctx.Err()
			},
			func(context.Context) (int, error) { return 1, nil }, // never reached
		})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after context cancellation")
	}
}
