// Package resilience provides the failure-handling primitives behind the
// positgw gateway: an injectable clock, capped exponential backoff with
// jitter, a per-backend circuit breaker, and a hedged multi-try execution
// plan (retries plus latency-triggered hedging with loser cancellation).
//
// Every primitive takes its notion of time through the Clock interface so
// the state machines are testable deterministically: a test drives a
// FakeClock forward and asserts exact transitions, with no time.Sleep and
// no wall-clock dependence. Production code passes System (or nil, which
// selects System everywhere).
package resilience

import (
	"sort"
	"sync"
	"time"
)

// Clock is the time source the resilience primitives observe. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers one value once d has elapsed.
	// Abandoned channels must not leak unboundedly (time.After semantics).
	After(d time.Duration) <-chan time.Time
}

// System is the wall-clock Clock.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced Clock for deterministic tests. Timers
// fire synchronously inside Advance, in deadline order.
type FakeClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a FakeClock starting at start (a zero start selects
// an arbitrary fixed epoch, so tests need not invent one).
func NewFakeClock(start time.Time) *FakeClock {
	if start.IsZero() {
		start = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	c := &FakeClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires when the fake time has advanced by d.
// A non-positive d fires immediately (before After returns).
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, &fakeWaiter{at: c.now.Add(d), ch: ch})
	c.cond.Broadcast()
	return ch
}

// Advance moves the fake time forward by d, firing every timer whose
// deadline is reached, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	sort.SliceStable(c.waiters, func(i, j int) bool { return c.waiters[i].at.Before(c.waiters[j].at) })
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
}

// BlockUntil returns once at least n timers are outstanding. Tests use it
// to rendezvous with code under test before calling Advance, removing the
// race between "the timer was created" and "the clock moved".
func (c *FakeClock) BlockUntil(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.waiters) < n {
		c.cond.Wait()
	}
}

// Waiters reports how many timers are outstanding.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
