package posit

import (
	"math"
	"testing"
)

func TestTypedP32e3(t *testing.T) {
	a := FromFloat64P32e3(1.5)
	b := FromFloat64P32e3(2.5)
	if got := a.Add(b).Float64(); got != 4 {
		t.Fatalf("add: %g", got)
	}
	if got := b.Sub(a).Float64(); got != 1 {
		t.Fatalf("sub: %g", got)
	}
	if got := a.Mul(b).Float64(); got != 3.75 {
		t.Fatalf("mul: %g", got)
	}
	if got := b.Div(a).Float64(); math.Abs(got-5.0/3) > 1e-7 {
		t.Fatalf("div: %g", got)
	}
	if got := FromFloat64P32e3(9).Sqrt().Float64(); got != 3 {
		t.Fatalf("sqrt: %g", got)
	}
	if a.Neg().Float64() != -1.5 || a.Neg().Abs().Float64() != 1.5 {
		t.Fatal("neg/abs")
	}
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("cmp")
	}
	nar := FromFloat64P32e3(math.NaN())
	if !nar.IsNaR() || nar.String() != "NaR" {
		t.Fatalf("NaR handling: %q", nar.String())
	}
	if a.String() != "1.5" {
		t.Fatalf("String: %q", a.String())
	}
	if a.Bits() != 0x42000000 {
		t.Fatalf("bits: %#x", a.Bits())
	}
}

func TestTypedP32(t *testing.T) {
	a := FromFloat64P32(3)
	b := FromFloat64P32(4)
	if got := a.Mul(a).Add(b.Mul(b)).Sqrt().Float64(); got != 5 {
		t.Fatalf("hypot(3,4): %g", got)
	}
	if a.Sub(a).Float64() != 0 {
		t.Fatal("sub")
	}
	if a.Div(b).Float64() != 0.75 {
		t.Fatal("div")
	}
	if FromFloat64P32(math.Inf(1)).IsNaR() != true {
		t.Fatal("inf -> NaR")
	}
	if a.Neg().Abs().Cmp(a) != 0 {
		t.Fatal("neg/abs/cmp")
	}
	if a.String() != "3" {
		t.Fatalf("String: %q", a.String())
	}
	_ = a.Bits()
}

func TestTypedP16(t *testing.T) {
	a := FromFloat64P16(0.5)
	b := FromFloat64P16(0.25)
	if a.Add(b).Float64() != 0.75 {
		t.Fatal("add")
	}
	if a.Mul(b).Float64() != 0.125 {
		t.Fatal("mul")
	}
	if a.Sub(b).Float64() != 0.25 {
		t.Fatal("sub")
	}
	if a.Div(b).Float64() != 2 {
		t.Fatal("div")
	}
	if FromFloat64P16(4).Sqrt().Float64() != 2 {
		t.Fatal("sqrt")
	}
	if a.Neg().Cmp(b) != -1 {
		t.Fatal("cmp")
	}
	if a.Abs() != a {
		t.Fatal("abs")
	}
	if a.IsNaR() {
		t.Fatal("IsNaR")
	}
	if a.String() != "0.5" {
		t.Fatalf("%q", a.String())
	}
	if a.Bits() != 0x3800 {
		t.Fatalf("bits %#x", a.Bits())
	}
}

func TestTypedP8(t *testing.T) {
	a := FromFloat64P8(1)
	b := FromFloat64P8(2)
	if a.Add(b).Float64() != 3 {
		t.Fatal("add")
	}
	if b.Mul(b).Float64() != 4 {
		t.Fatal("mul")
	}
	if b.Sub(a).Float64() != 1 {
		t.Fatal("sub")
	}
	if b.Div(a).Float64() != 2 {
		t.Fatal("div")
	}
	if b.Mul(b).Sqrt().Float64() != 2 {
		t.Fatal("sqrt")
	}
	if a.Neg().Abs().Cmp(a) != 0 {
		t.Fatal("neg/abs")
	}
	if a.IsNaR() {
		t.Fatal("IsNaR")
	}
	if b.String() != "2" {
		t.Fatalf("%q", b.String())
	}
	if a.Bits() != 0x40 {
		t.Fatalf("bits %#x", a.Bits())
	}
}
