package posit

import (
	"math/rand"
	"testing"
)

// Algebraic properties that correctly rounded posit arithmetic must obey.

// Addition is monotonic: a <= b implies a+c <= b+c for any finite c.
func TestAddMonotonic(t *testing.T) {
	c := Posit16
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20000; trial++ {
		a := uint64(rng.Intn(1 << 16))
		b := uint64(rng.Intn(1 << 16))
		x := uint64(rng.Intn(1 << 16))
		if c.IsNaR(a) || c.IsNaR(b) || c.IsNaR(x) {
			continue
		}
		if c.Compare(a, b) > 0 {
			a, b = b, a
		}
		sa, sb := c.Add(a, x), c.Add(b, x)
		if c.Compare(sa, sb) > 0 {
			t.Fatalf("monotonicity broken: %#x+%#x=%#x > %#x+%#x=%#x", a, x, sa, b, x, sb)
		}
	}
}

// Multiplication by a positive value preserves order.
func TestMulMonotonic(t *testing.T) {
	c := Posit16
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20000; trial++ {
		a := uint64(rng.Intn(1 << 16))
		b := uint64(rng.Intn(1 << 16))
		x := uint64(rng.Intn(1<<15-1)) + 1 // strictly positive pattern
		if c.IsNaR(a) || c.IsNaR(b) {
			continue
		}
		if c.Compare(a, b) > 0 {
			a, b = b, a
		}
		pa, pb := c.Mul(a, x), c.Mul(b, x)
		if c.Compare(pa, pb) > 0 {
			t.Fatalf("mul monotonicity broken: a=%#x b=%#x x=%#x", a, b, x)
		}
	}
}

// x - x == 0, x / x == 1, x * 1 == x, sqrt(x)^2 ~ x.
func TestIdentities(t *testing.T) {
	c := Posit32e3
	one := c.FromFloat64(1)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5000; trial++ {
		x := uint64(rng.Uint32())
		if c.IsNaR(x) || c.IsZero(x) {
			continue
		}
		if !c.IsZero(c.Sub(x, x)) {
			t.Fatalf("x-x != 0 for %#x", x)
		}
		if got := c.Div(x, x); got != one {
			t.Fatalf("x/x != 1 for %#x: %#x", x, got)
		}
		if got := c.Mul(x, one); got != x {
			t.Fatalf("x*1 != x for %#x: %#x", x, got)
		}
		if got := c.Add(x, 0); got != x {
			t.Fatalf("x+0 != x for %#x", x)
		}
	}
}

// Division and multiplication are consistent: in the golden zone, where
// the taper is gentle, (a/b)*b stays within a few pattern steps of a (two
// roundings, each at most one step, amplified at most 2x by a regime
// transition between the quotient's region and a's).
func TestDivMulConsistency(t *testing.T) {
	c := Posit16
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10000; trial++ {
		fa := ldexpRand(rng, -8, 8)
		fb := ldexpRand(rng, -8, 8)
		a, b := c.FromFloat64(fa), c.FromFloat64(fb)
		q := c.Div(a, b)
		back := c.Mul(q, b)
		if c.IsNaR(back) {
			t.Fatalf("(a/b)*b = NaR for %g %g", fa, fb)
		}
		d := int64(back) - int64(a)
		if d < 0 {
			d = -d
		}
		if d > 4 {
			t.Fatalf("(a/b)*b too far from a: %#x -> %#x (dist %d, a=%g b=%g)", a, back, d, fa, fb)
		}
	}
}

// ldexpRand returns a random value with magnitude in [2^lo, 2^hi) and
// random sign.
func ldexpRand(rng *rand.Rand, lo, hi int) float64 {
	v := (1 + rng.Float64()) * float64(int64(1)<<uint(rng.Intn(hi-lo)))
	v /= float64(int64(1) << uint(-lo))
	if rng.Intn(2) == 0 {
		v = -v
	}
	return v
}

// Negation is an exact involution and distributes over multiplication.
func TestNegationAlgebra(t *testing.T) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 10000; trial++ {
		a := uint64(rng.Uint32())
		b := uint64(rng.Uint32())
		if c.IsNaR(a) || c.IsNaR(b) {
			continue
		}
		if c.Neg(c.Neg(a)) != a&c.mask() {
			t.Fatalf("neg not involutive for %#x", a)
		}
		if c.Mul(c.Neg(a), b) != c.Neg(c.Mul(a, b)) {
			t.Fatalf("(-a)b != -(ab) for %#x %#x", a, b)
		}
	}
}
