package posit

import (
	"math"
	"testing"
)

// kernelConfigs spans every es the kernel covers.
func kernelConfigs() []Config {
	cs := make([]Config, 0, 6)
	for es := uint(0); es <= 5; es++ {
		cs = append(cs, Config{32, es})
	}
	return cs
}

// checkKernelValue asserts decode32 agrees bit-for-bit with the generic
// ToFloat64 path for pattern p under c.
func checkKernelValue(t *testing.T, c Config, p uint32) {
	t.Helper()
	got := c.decode32(p)
	want := math.Float64bits(c.ToFloat64(uint64(p)))
	if got != want {
		t.Fatalf("%v decode32(%#08x) = %#016x, generic %#016x", c, p, got, want)
	}
}

func TestKernelGate(t *testing.T) {
	for _, c := range kernelConfigs() {
		if !c.kernelOK() {
			t.Errorf("%v: kernelOK = false, want true", c)
		}
	}
	for _, c := range []Config{{32, 6}, {16, 2}, {64, 2}, {8, 0}} {
		if c.kernelOK() {
			t.Errorf("%v: kernelOK = true, want false", c)
		}
	}
}

// TestKernelEdgePatterns covers the specials, the saturation boundaries,
// and every regime run length with minimal and maximal trailing fields.
func TestKernelEdgePatterns(t *testing.T) {
	var pats []uint32
	fixed := []uint32{
		0, 1, 2, 3,
		0x80000000,             // NaR
		0x80000001, 0x7FFFFFFF, // MaxPos and its negation
		0x7FFFFFFE, 0x80000002,
		0x40000000, 0xC0000000, // +-1
		0x40000001, 0xBFFFFFFF,
		0xFFFFFFFF, // -MinPos
		0x55555555, 0xAAAAAAAA,
	}
	pats = append(pats, fixed...)
	for b := 0; b < 32; b++ {
		pats = append(pats, 1<<b, ^uint32(1<<b))
	}
	// Every regime run length, run of ones and of zeros, with the tail all
	// zeros and all ones, both signs.
	for run := 1; run <= 31; run++ {
		ones := (uint32(1)<<run - 1) << (31 - run) // run ones at the top of the body
		bodies := []uint32{ones}
		if run < 31 {
			bodies = append(bodies, ones|(uint32(1)<<(30-run)-1)) // tail all ones
			zeros := uint32(1) << (30 - run)                      // run zeros then a one
			bodies = append(bodies, zeros, zeros|(zeros-1))
		}
		for _, body := range bodies {
			body &= 0x7FFFFFFF
			pats = append(pats, body, -body&0xFFFFFFFF|0x80000000)
		}
	}
	for _, c := range kernelConfigs() {
		for _, p := range pats {
			checkKernelValue(t, c, p)
		}
	}
}

// TestKernelStratified sweeps all 16-bit patterns through the high, middle,
// and low halves of the word, plus a pseudo-random fill, for every es.
func TestKernelStratified(t *testing.T) {
	for _, c := range kernelConfigs() {
		for v := uint32(0); ; v++ {
			checkKernelValue(t, c, v<<16)
			checkKernelValue(t, c, v<<8)
			checkKernelValue(t, c, v)
			checkKernelValue(t, c, v<<16|^v&0xFFFF)
			if v == 0xFFFF {
				break
			}
		}
		// splitmix64-style fill for unstructured coverage.
		s := uint64(0x9E3779B97F4A7C15) * uint64(c.ES+1)
		for i := 0; i < 1<<18; i++ {
			s += 0x9E3779B97F4A7C15
			z := s
			z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
			z = (z ^ z>>27) * 0x94D049BB133111EB
			checkKernelValue(t, c, uint32(z^z>>31))
		}
	}
}

// TestKernelBatchMatchesScalar pins the slice entry point: the unrolled
// batch (including its tail) and the worker split must reproduce the
// per-value conversion, and non-kernel configs must keep the generic path.
func TestKernelBatchMatchesScalar(t *testing.T) {
	src := make([]uint32, 1003) // not a multiple of 8: exercises the tail
	s := uint64(12345)
	for i := range src {
		s = s*6364136223846793005 + 1442695040888963407
		src[i] = uint32(s >> 32)
	}
	src[0], src[1], src[2] = 0, 0x80000000, 0x7FFFFFFF
	for _, c := range []Config{Posit32, Posit32e3, {32, 0}, {32, 6}, {16, 2}} {
		if c.N != 32 {
			// Map the patterns into range for narrow configs.
			continue
		}
		for _, workers := range []int{1, 3} {
			got := c.ToFloat32SliceWorkers(nil, src, workers)
			for i, p := range src {
				want := c.ToFloat32(uint64(p))
				if math.Float32bits(got[i]) != math.Float32bits(want) {
					t.Fatalf("%v workers=%d: slice[%d] = %x, want %x (pattern %#08x)",
						c, workers, i, math.Float32bits(got[i]), math.Float32bits(want), p)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
